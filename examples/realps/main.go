// Realps runs an actual distributed training job — real TCP sockets,
// real goroutine workers, real gradient descent — using the psrpc
// parameter-server framework, and prints the same barrier-wait
// measurements the paper instruments in TensorFlow. One worker is made
// an artificial straggler so the signature the paper describes is
// visible: the straggler itself waits the least while its peers wait
// the most.
//
//	go run ./examples/realps
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/psrpc"
)

func main() {
	const (
		workers    = 4
		dim        = 16
		iterations = 150
	)
	_, trueW := psrpc.MakeLinRegData(7, 1, dim, 0)
	computes := make([]psrpc.ComputeFunc, workers)
	for w := 0; w < workers; w++ {
		shard := psrpc.MakeLinRegShard(trueW, int64(w+1), 128, 0.01)
		inner := shard.Compute(32)
		straggler := w == workers-1
		computes[w] = func(model []float32, step int) ([]float32, float32) {
			if straggler && step%3 == 0 {
				time.Sleep(1 * time.Millisecond) // an oversubscribed CPU
			}
			return inner(model, step)
		}
	}

	res, err := psrpc.TrainLocal(psrpc.ServerConfig{
		Workers:      workers,
		InitialModel: make([]float32, dim),
		LearningRate: 0.05,
		Iterations:   iterations,
	}, computes)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("distributed linear regression: %d workers x %d iterations\n",
		workers, iterations)
	fmt.Printf("global step: %d, loss %.4f -> %.6f\n",
		res.GlobalStep, res.Losses[0], res.Losses[len(res.Losses)-1])

	totals := make([]time.Duration, workers)
	counts := make([]int, workers)
	for _, rec := range res.Waits {
		totals[rec.Worker] += rec.Wait
		counts[rec.Worker]++
	}
	fmt.Println("average barrier wait per worker (the straggler waits least):")
	for w := 0; w < workers; w++ {
		tag := ""
		if w == workers-1 {
			tag = "  <- straggler"
		}
		fmt.Printf("  worker %d: %8v%s\n", w, totals[w]/time.Duration(counts[w]), tag)
	}
}
