// Quickstart: run three concurrent parameter-server training jobs whose
// PSes share one host, first under the kernel's default FIFO scheduling
// and then under TensorLights (TLs-One), and compare completion times.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	tensorlights "repro"
)

func main() {
	base := tensorlights.ExperimentConfig{
		PlacementIndex: 1,    // all PSes colocated: heaviest contention
		NumJobs:        21,   // the paper's grid-search workload
		LocalBatch:     4,    // small batches -> frequent updates
		Steps:          1200, // scaled down from the paper's 30000
		Seed:           42,
	}

	fifoCfg := base
	fifoCfg.Policy = tensorlights.FIFO
	fifo, err := tensorlights.RunExperiment(fifoCfg)
	if err != nil {
		log.Fatal(err)
	}

	tlsCfg := base
	tlsCfg.Policy = tensorlights.TLsOne
	tls, err := tensorlights.RunExperiment(tlsCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("quickstart: 21 jobs, all parameter servers on one host")
	fmt.Printf("  FIFO     avg JCT %6.1f s   wait variance %.5f s^2\n",
		fifo.AvgJCT, fifo.BarrierWaitVariance)
	fmt.Printf("  TLs-One  avg JCT %6.1f s   wait variance %.5f s^2\n",
		tls.AvgJCT, tls.BarrierWaitVariance)
	fmt.Printf("  improvement: %.0f%% faster, %.0f%% less straggler variance\n",
		100*(1-tls.AvgJCT/fifo.AvgJCT),
		100*(1-tls.BarrierWaitVariance/fifo.BarrierWaitVariance))
}
