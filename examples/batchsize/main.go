// Batchsize uses the local batch size as a contention-intensity knob
// (paper §V, Result #4): smaller batches compute less per step, so
// model/gradient updates fire more often and the network contends
// harder. TensorLights' advantage grows as contention intensifies.
//
//	go run ./examples/batchsize
package main

import (
	"fmt"
	"log"

	tensorlights "repro"
)

func main() {
	fmt.Println("contention sweep on placement #1 (all PSes on one host)")
	fmt.Println("local batch   FIFO avg JCT   TLs-One avg JCT   improvement")
	for _, batch := range []int{1, 2, 4, 8} {
		var avg [2]float64
		for i, pol := range []tensorlights.Policy{tensorlights.FIFO, tensorlights.TLsOne} {
			res, err := tensorlights.RunExperiment(tensorlights.ExperimentConfig{
				Policy:         pol,
				PlacementIndex: 1,
				LocalBatch:     batch,
				Steps:          1200,
				Seed:           11,
			})
			if err != nil {
				log.Fatal(err)
			}
			avg[i] = res.AvgJCT
		}
		fmt.Printf("  %4d %14.1f s %15.1f s %12.0f%%\n",
			batch, avg[0], avg[1], 100*(1-avg[1]/avg[0]))
	}
	fmt.Println("\nsmaller batches -> more frequent bursts -> heavier contention")
	fmt.Println("-> larger TensorLights improvement (paper: up to 31%).")
}
