// Fairness contrasts TLs-One and TLs-RR (paper §IV-C): strict static
// priorities finish high-priority jobs first, while rotating the
// assignment every T seconds keeps all concurrent grid-search instances
// at similar progress — which is what lets a DL engineer compare their
// accuracy mid-flight. This example drives the internal engine directly
// to extract per-job progress traces.
//
//	go run ./examples/fairness
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

func main() {
	for _, pol := range []core.Policy{core.PolicyOne, core.PolicyRR} {
		p1, _ := cluster.PlacementByIndex(1)
		res, err := sweep.Run(sweep.RunConfig{
			Label:         pol.String(),
			TargetSteps:   2000,
			Placement:     p1,
			TLs:           core.Config{Policy: pol, IntervalSec: 10},
			ProgressEvery: 200,
			Cluster:       cluster.Config{Seed: 3},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", pol)
		fmt.Printf("JCTs: min %.1f s, max %.1f s, spread %.0f%% of mean\n",
			metrics.Percentile(res.JCTs, 0), metrics.Percentile(res.JCTs, 1),
			100*(metrics.Percentile(res.JCTs, 1)-metrics.Percentile(res.JCTs, 0))/metrics.Mean(res.JCTs))

		// Progress disparity halfway through the run: the spread of
		// global steps across jobs at a fixed wall-clock instant.
		halfway := 0.5 * res.SimTime
		var steps []float64
		var ids []int
		for id := range res.Progress {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			s := 0
			for _, pt := range res.Progress[id] {
				if pt.At <= halfway {
					s = pt.Step
				}
			}
			steps = append(steps, float64(s))
		}
		sum := metrics.Summarize(steps)
		fmt.Printf("global step at t=%.0f s: min %.0f, max %.0f, Jain fairness index %.3f\n\n",
			halfway, sum.Min, sum.Max, metrics.JainIndex(steps))
	}
	fmt.Println("TLs-One trades fairness for raw priority; TLs-RR rotates the")
	fmt.Println("'green light' every T seconds so concurrent jobs stay comparable.")
}
