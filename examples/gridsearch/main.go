// Gridsearch reproduces the paper's motivating scenario at reduced
// scale: a grid search launches 21 identical ResNet-32 jobs, and the
// cluster scheduler's PS placement determines how much the jobs suffer
// from model-update contention. The example sweeps Table I's placements
// under FIFO and under TLs-RR (the fair variant a grid search wants,
// so all search instances progress together).
//
//	go run ./examples/gridsearch
package main

import (
	"fmt"
	"log"

	tensorlights "repro"
)

func main() {
	fmt.Println("grid search: 21 x ResNet-32/CIFAR-10, one PS + 20 workers each")
	fmt.Println("placement (Table I)      FIFO avg JCT    TLs-RR avg JCT    TLs-RR vs FIFO")
	for _, idx := range []int{1, 2, 4, 8} {
		var avg [2]float64
		for i, pol := range []tensorlights.Policy{tensorlights.FIFO, tensorlights.TLsRR} {
			res, err := tensorlights.RunExperiment(tensorlights.ExperimentConfig{
				Policy:         pol,
				PlacementIndex: idx,
				Steps:          1200, // scaled down from 30000
				Seed:           7,
			})
			if err != nil {
				log.Fatal(err)
			}
			avg[i] = res.AvgJCT
		}
		fmt.Printf("  #%d %-18s %8.1f s %15.1f s %12.0f%%\n",
			idx, placementName(idx), avg[0], avg[1], 100*(1-avg[1]/avg[0]))
	}
	fmt.Println("\nTensorLights helps most where PSes colocate (#1) and is")
	fmt.Println("work-conserving: uniform placements (#8) keep FIFO performance.")
}

func placementName(idx int) string {
	names := map[int]string{1: "(21)", 2: "(5, 16)", 4: "(7, 7, 7)", 8: "(1 x 21)"}
	return names[idx]
}
