package tensorlights

import (
	"fmt"
	"strings"
	"testing"
)

const testSteps = 600

func TestRunExperimentFIFO(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		Policy:         FIFO,
		PlacementIndex: 8,
		Steps:          testSteps,
		Seed:           42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JCTs) != 21 || res.AvgJCT <= 0 {
		t.Fatalf("result %+v", res)
	}
	if res.TcReconfigurations != 0 {
		t.Fatal("FIFO must not touch tc")
	}
	if res.Events == 0 || res.SimulatedSeconds <= 0 {
		t.Fatal("bookkeeping")
	}
}

func TestRunExperimentTensorLightsWins(t *testing.T) {
	base := ExperimentConfig{PlacementIndex: 1, Steps: testSteps, Seed: 42}
	fifoCfg := base
	fifoCfg.Policy = FIFO
	fifo, err := RunExperiment(fifoCfg)
	if err != nil {
		t.Fatal(err)
	}
	oneCfg := base
	oneCfg.Policy = TLsOne
	one, err := RunExperiment(oneCfg)
	if err != nil {
		t.Fatal(err)
	}
	if one.AvgJCT >= fifo.AvgJCT {
		t.Fatalf("TLs-One (%.1f) not faster than FIFO (%.1f) under full colocation",
			one.AvgJCT, fifo.AvgJCT)
	}
	if one.BarrierWaitVariance >= fifo.BarrierWaitVariance {
		t.Fatalf("TLs-One variance %.5f not below FIFO %.5f",
			one.BarrierWaitVariance, fifo.BarrierWaitVariance)
	}
	if one.TcReconfigurations == 0 {
		t.Fatal("TLs-One never configured tc")
	}
}

func TestRunExperimentCustomPlacement(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		Policy:    TLsRR,
		Placement: "10, 11",
		Steps:     300,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JCTs) != 21 {
		t.Fatal("custom placement run")
	}
}

func TestRunExperimentUtilization(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		Policy:             FIFO,
		PlacementIndex:     1,
		Steps:              300,
		Seed:               1,
		MeasureUtilization: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Utilization) != 21 {
		t.Fatalf("utilization hosts %d", len(res.Utilization))
	}
}

func TestRunExperimentAsync(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		Policy:         FIFO,
		PlacementIndex: 8,
		Steps:          300,
		Async:          true,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgJCT <= 0 {
		t.Fatal("async run")
	}
}

func TestRunExperimentErrors(t *testing.T) {
	if _, err := RunExperiment(ExperimentConfig{PlacementIndex: 99, Steps: 10}); err == nil {
		t.Fatal("bad placement index accepted")
	}
	if _, err := RunExperiment(ExperimentConfig{Placement: "nope", Steps: 10}); err == nil {
		t.Fatal("bad custom placement accepted")
	}
	if _, err := RunExperiment(ExperimentConfig{Model: "gpt5", Steps: 10}); err == nil {
		t.Fatal("bad model accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	if FIFO.String() != "FIFO" || TLsOne.String() != "TLs-One" || TLsRR.String() != "TLs-RR" {
		t.Fatal("policy names")
	}
}

func TestModelsAndPlacements(t *testing.T) {
	models := Models()
	if len(models) < 5 {
		t.Fatal("models")
	}
	found := false
	for _, m := range models {
		if m == "resnet32" {
			found = true
		}
	}
	if !found {
		t.Fatal("resnet32 missing from zoo")
	}
	p := Placements()
	if !strings.Contains(p, "#1: 21") || !strings.Contains(p, "#4: 7, 7, 7") {
		t.Fatalf("placements:\n%s", p)
	}
}

func TestReproduceFunctionsSmall(t *testing.T) {
	o := ReproOptions{Steps: 400, Seed: 42}
	for name, fn := range map[string]func(ReproOptions) (string, error){
		"fig3":   ReproduceFigure3,
		"fig6":   ReproduceFigure6,
		"table2": ReproduceTableII,
	} {
		out, err := fn(o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) < 50 {
			t.Fatalf("%s output too small:\n%s", name, out)
		}
	}
}

func TestToRunConfigMapping(t *testing.T) {
	rc, err := toRunConfig(ExperimentConfig{
		Policy:            TLsRR,
		PlacementIndex:    3,
		Model:             "alexnet",
		NumJobs:           5,
		LocalBatch:        8,
		Steps:             1000,
		Bands:             4,
		RotateIntervalSec: 7,
		Seed:              9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rc.Placement.Index != 3 || rc.Model.Name != "alexnet" || rc.NumJobs != 5 ||
		rc.LocalBatch != 8 || rc.TargetSteps != 1000 || rc.Cluster.Seed != 9 {
		t.Fatalf("%+v", rc)
	}
	if rc.TLs.Bands != 4 || rc.TLs.IntervalSec != 7 {
		t.Fatalf("TLs config %+v", rc.TLs)
	}
	if rc.TLs.Policy.String() != "TLs-RR" {
		t.Fatal("policy mapping")
	}
}

func TestNewPolicyFacadeMapping(t *testing.T) {
	if TLsLPF.String() != "TLs-LPF" || StaticRate.String() != "StaticRate" {
		t.Fatal("extended policy names")
	}
	res, err := RunExperiment(ExperimentConfig{
		Policy:         TLsLPF,
		PlacementIndex: 1,
		Steps:          300,
		Seed:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TcReconfigurations == 0 {
		t.Fatal("LPF never reconfigured")
	}
}

func TestTraceCSVOutput(t *testing.T) {
	var buf strings.Builder
	_, err := RunExperiment(ExperimentConfig{
		PlacementIndex: 8,
		Steps:          300,
		Seed:           1,
		TraceCSV:       &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "at,kind,job,host,worker,value,detail\n") {
		t.Fatalf("trace header missing:\n%.120s", out)
	}
	if !strings.Contains(out, "job_finish") || !strings.Contains(out, "flow_done") {
		t.Fatal("trace missing event kinds")
	}
}

func TestReproduceRemainingFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run reproduction in -short mode")
	}
	o := ReproOptions{Steps: 300, Seed: 42}
	for name, fn := range map[string]func(ReproOptions) (string, error){
		"fig2":  ReproduceFigure2,
		"fig5a": ReproduceFigure5a,
		"fig5b": ReproduceFigure5b,
	} {
		out, err := fn(o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) < 100 {
			t.Fatalf("%s output too small", name)
		}
	}
}

// faultyQuickstart is the quickstart config plus a full fault schedule:
// PS-host flaps with loss and tc outages riding along, and one worker
// crash that the PS must detect and restart.
func faultyQuickstart() ExperimentConfig {
	return ExperimentConfig{
		Policy:         TLsOne,
		PlacementIndex: 1,
		Steps:          300,
		Seed:           42,
		Faults: FaultConfig{
			FlapPSHosts:       true,
			FlapFirstAtSec:    1,
			FlapEverySec:      4,
			FlapDurationSec:   0.5,
			FlapJitterSec:     0.3,
			HorizonSec:        12,
			DropProb:          0.05,
			TCOutage:          true,
			Crashes:           []WorkerCrash{{Job: 0, Worker: 2, AtSec: 3}},
			DetectTimeoutSec:  0.2,
			RestartBackoffSec: 0.1,
			MaxRestarts:       2,
		},
	}
}

func TestRunExperimentWithFaults(t *testing.T) {
	clean := faultyQuickstart()
	clean.Faults = FaultConfig{}
	base, err := RunExperiment(clean)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunExperiment(faultyQuickstart())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JCTs) != 21 || len(res.FailedJobs) != 0 {
		t.Fatalf("jobs lost: %d JCTs, failed %v", len(res.JCTs), res.FailedJobs)
	}
	if res.AvgJCT <= base.AvgJCT {
		t.Fatalf("faults did not slow the run: %.1f vs clean %.1f", res.AvgJCT, base.AvgJCT)
	}
	if res.WorkerRestarts != 1 || res.DegradedWorkers != 0 {
		t.Fatalf("crash recovery: restarts %d degraded %d", res.WorkerRestarts, res.DegradedWorkers)
	}
	if res.DroppedChunks == 0 {
		t.Fatal("drop windows lost no chunks")
	}
	if base.WorkerRestarts != 0 || base.DroppedChunks != 0 || base.TcRetries != 0 {
		t.Fatalf("clean run shows fault accounting: %+v", base)
	}
}

// TestQuickstartWithFaultsDeterministic is the determinism regression:
// the same seeded config with fault injection enabled must produce
// byte-identical results on every run.
func TestQuickstartWithFaultsDeterministic(t *testing.T) {
	fingerprint := func(r *Result) string {
		return fmt.Sprintf("jcts=%x avg=%x bw=%x bv=%x sim=%x ev=%d tc=%d restarts=%d degraded=%d failed=%v dropped=%d retries=%d fallbacks=%d repairs=%d",
			r.JCTs, r.AvgJCT, r.BarrierWaitMean, r.BarrierWaitVariance,
			r.SimulatedSeconds, r.Events, r.TcReconfigurations,
			r.WorkerRestarts, r.DegradedWorkers, r.FailedJobs, r.DroppedChunks,
			r.TcRetries, r.TcFallbacks, r.TcRepairs)
	}
	a, err := RunExperiment(faultyQuickstart())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunExperiment(faultyQuickstart())
	if err != nil {
		t.Fatal(err)
	}
	if fa, fb := fingerprint(a), fingerprint(b); fa != fb {
		t.Fatalf("same seed + faults diverged:\n%s\n%s", fa, fb)
	}
	other := faultyQuickstart()
	other.Seed = 43
	c, err := RunExperiment(other)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(a) == fingerprint(c) {
		t.Fatal("different seeds produced identical faulted runs")
	}
}

func TestVersion(t *testing.T) {
	if Version == "" {
		t.Fatal("version")
	}
}

func TestRunExperimentCollectiveOnly(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		Policy: TLsOne,
		Steps:  90,
		Seed:   42,
		Collective: &CollectiveConfig{
			Jobs:  2,
			Ranks: 3,
			Model: "resnet32",
		},
		NumJobs: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JCTs) != 0 {
		t.Fatalf("phantom PS jobs: %d JCTs", len(res.JCTs))
	}
	if len(res.CollectiveJCTs) != 2 || res.CollectiveAvgJCT <= 0 {
		t.Fatalf("collective result %+v", res)
	}
	if res.TcReconfigurations == 0 {
		t.Fatal("TLs never configured tc for the rings")
	}
}

func TestRunExperimentMixedWorkload(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		Policy:    TLsRR,
		NumJobs:   2,
		Placement: "2", // both PSes colocated on host 0
		Steps:     100,
		Seed:      42,
		Collective: &CollectiveConfig{
			Jobs:       2,
			Ranks:      3,
			Model:      "resnet32",
			Iterations: 3,
			Algorithm:  "tree",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JCTs) != 2 || len(res.CollectiveJCTs) != 2 {
		t.Fatalf("mixed run: %d PS, %d collective JCTs",
			len(res.JCTs), len(res.CollectiveJCTs))
	}
}

func TestRunExperimentCollectivePeerCrash(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		Steps: 90,
		Seed:  42,
		Collective: &CollectiveConfig{
			Jobs:  1,
			Ranks: 3,
			Model: "resnet32",
		},
		NumJobs: 0,
		Faults: FaultConfig{
			// Collective job IDs start at 1000 (see cluster.CollectiveIDBase).
			PeerCrashes:       []WorkerCrash{{Job: 1000, Worker: 1, AtSec: 0.3}},
			DetectTimeoutSec:  1,
			RestartBackoffSec: 0.5,
			MaxRestarts:       2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RingStalls == 0 || res.WorkerRestarts == 0 {
		t.Fatalf("peer crash not recovered: stalls %d restarts %d",
			res.RingStalls, res.WorkerRestarts)
	}
	if len(res.CollectiveJCTs) != 1 {
		t.Fatalf("job lost: failed %v", res.FailedJobs)
	}
}

func TestRunExperimentCollectiveErrors(t *testing.T) {
	base := func() ExperimentConfig {
		return ExperimentConfig{Steps: 30, NumJobs: 0,
			Collective: &CollectiveConfig{Jobs: 1, Ranks: 3, Model: "resnet32"}}
	}
	bad := base()
	bad.Collective.Algorithm = "butterfly"
	if _, err := RunExperiment(bad); err == nil {
		t.Fatal("bad algorithm accepted")
	}
	bad = base()
	bad.Collective.Model = "gpt5"
	if _, err := RunExperiment(bad); err == nil {
		t.Fatal("bad collective model accepted")
	}
	bad = base()
	bad.Collective.Ranks = 22
	if _, err := RunExperiment(bad); err == nil {
		t.Fatal("ring larger than the testbed accepted")
	}
}

func TestReproduceCollectiveSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run reproduction in -short mode")
	}
	out, err := ReproduceCollective(ReproOptions{Steps: 300, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"allreduce", "mixed", "TLs-RR", "FIFO"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunExperimentScheduler(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		Policy: TLsRR,
		Steps:  300,
		Seed:   42,
		Scheduler: &SchedulerConfig{
			Placement:        "phase-aware",
			Oversubscription: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JCTs) != 9 || res.AvgJCT <= 0 {
		t.Fatalf("result %+v", res)
	}
	if res.Events == 0 || res.SimulatedSeconds <= 0 {
		t.Fatal("bookkeeping")
	}
	// Trace export includes the scheduler's placement decisions.
	var buf strings.Builder
	_, err = RunExperiment(ExperimentConfig{
		Policy: FIFO, Steps: 300, Seed: 42,
		Scheduler: &SchedulerConfig{Placement: "contention-aware"},
		TraceCSV:  &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sched_place") {
		t.Fatal("trace CSV missing sched_place events")
	}
	// Unknown placement policy fails early.
	if _, err := RunExperiment(ExperimentConfig{
		Steps: 300, Scheduler: &SchedulerConfig{Placement: "bogus"},
	}); err == nil {
		t.Fatal("bogus placement should fail")
	}
}

func TestReproduceSchedulerSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 36-trial scheduler grid")
	}
	out, err := ReproduceScheduler(ReproOptions{Steps: 300, Seed: 42, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"contention-aware", "phase-aware", "spread", "naive spread avg JCT"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ReproduceScheduler output missing %q:\n%s", want, out)
		}
	}
}
