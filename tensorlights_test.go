package tensorlights

import (
	"strings"
	"testing"
)

const testSteps = 600

func TestRunExperimentFIFO(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		Policy:         FIFO,
		PlacementIndex: 8,
		Steps:          testSteps,
		Seed:           42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JCTs) != 21 || res.AvgJCT <= 0 {
		t.Fatalf("result %+v", res)
	}
	if res.TcReconfigurations != 0 {
		t.Fatal("FIFO must not touch tc")
	}
	if res.Events == 0 || res.SimulatedSeconds <= 0 {
		t.Fatal("bookkeeping")
	}
}

func TestRunExperimentTensorLightsWins(t *testing.T) {
	base := ExperimentConfig{PlacementIndex: 1, Steps: testSteps, Seed: 42}
	fifoCfg := base
	fifoCfg.Policy = FIFO
	fifo, err := RunExperiment(fifoCfg)
	if err != nil {
		t.Fatal(err)
	}
	oneCfg := base
	oneCfg.Policy = TLsOne
	one, err := RunExperiment(oneCfg)
	if err != nil {
		t.Fatal(err)
	}
	if one.AvgJCT >= fifo.AvgJCT {
		t.Fatalf("TLs-One (%.1f) not faster than FIFO (%.1f) under full colocation",
			one.AvgJCT, fifo.AvgJCT)
	}
	if one.BarrierWaitVariance >= fifo.BarrierWaitVariance {
		t.Fatalf("TLs-One variance %.5f not below FIFO %.5f",
			one.BarrierWaitVariance, fifo.BarrierWaitVariance)
	}
	if one.TcReconfigurations == 0 {
		t.Fatal("TLs-One never configured tc")
	}
}

func TestRunExperimentCustomPlacement(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		Policy:    TLsRR,
		Placement: "10, 11",
		Steps:     300,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JCTs) != 21 {
		t.Fatal("custom placement run")
	}
}

func TestRunExperimentUtilization(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		Policy:             FIFO,
		PlacementIndex:     1,
		Steps:              300,
		Seed:               1,
		MeasureUtilization: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Utilization) != 21 {
		t.Fatalf("utilization hosts %d", len(res.Utilization))
	}
}

func TestRunExperimentAsync(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		Policy:         FIFO,
		PlacementIndex: 8,
		Steps:          300,
		Async:          true,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgJCT <= 0 {
		t.Fatal("async run")
	}
}

func TestRunExperimentErrors(t *testing.T) {
	if _, err := RunExperiment(ExperimentConfig{PlacementIndex: 99, Steps: 10}); err == nil {
		t.Fatal("bad placement index accepted")
	}
	if _, err := RunExperiment(ExperimentConfig{Placement: "nope", Steps: 10}); err == nil {
		t.Fatal("bad custom placement accepted")
	}
	if _, err := RunExperiment(ExperimentConfig{Model: "gpt5", Steps: 10}); err == nil {
		t.Fatal("bad model accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	if FIFO.String() != "FIFO" || TLsOne.String() != "TLs-One" || TLsRR.String() != "TLs-RR" {
		t.Fatal("policy names")
	}
}

func TestModelsAndPlacements(t *testing.T) {
	models := Models()
	if len(models) < 5 {
		t.Fatal("models")
	}
	found := false
	for _, m := range models {
		if m == "resnet32" {
			found = true
		}
	}
	if !found {
		t.Fatal("resnet32 missing from zoo")
	}
	p := Placements()
	if !strings.Contains(p, "#1: 21") || !strings.Contains(p, "#4: 7, 7, 7") {
		t.Fatalf("placements:\n%s", p)
	}
}

func TestReproduceFunctionsSmall(t *testing.T) {
	o := ReproOptions{Steps: 400, Seed: 42}
	for name, fn := range map[string]func(ReproOptions) (string, error){
		"fig3":   ReproduceFigure3,
		"fig6":   ReproduceFigure6,
		"table2": ReproduceTableII,
	} {
		out, err := fn(o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) < 50 {
			t.Fatalf("%s output too small:\n%s", name, out)
		}
	}
}

func TestToRunConfigMapping(t *testing.T) {
	rc, err := toRunConfig(ExperimentConfig{
		Policy:            TLsRR,
		PlacementIndex:    3,
		Model:             "alexnet",
		NumJobs:           5,
		LocalBatch:        8,
		Steps:             1000,
		Bands:             4,
		RotateIntervalSec: 7,
		Seed:              9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rc.Placement.Index != 3 || rc.Model.Name != "alexnet" || rc.NumJobs != 5 ||
		rc.LocalBatch != 8 || rc.TargetSteps != 1000 || rc.Cluster.Seed != 9 {
		t.Fatalf("%+v", rc)
	}
	if rc.TLs.Bands != 4 || rc.TLs.IntervalSec != 7 {
		t.Fatalf("TLs config %+v", rc.TLs)
	}
	if rc.TLs.Policy.String() != "TLs-RR" {
		t.Fatal("policy mapping")
	}
}

func TestNewPolicyFacadeMapping(t *testing.T) {
	if TLsLPF.String() != "TLs-LPF" || StaticRate.String() != "StaticRate" {
		t.Fatal("extended policy names")
	}
	res, err := RunExperiment(ExperimentConfig{
		Policy:         TLsLPF,
		PlacementIndex: 1,
		Steps:          300,
		Seed:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TcReconfigurations == 0 {
		t.Fatal("LPF never reconfigured")
	}
}

func TestTraceCSVOutput(t *testing.T) {
	var buf strings.Builder
	_, err := RunExperiment(ExperimentConfig{
		PlacementIndex: 8,
		Steps:          300,
		Seed:           1,
		TraceCSV:       &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "at,kind,job,host,worker,value,detail\n") {
		t.Fatalf("trace header missing:\n%.120s", out)
	}
	if !strings.Contains(out, "job_finish") || !strings.Contains(out, "flow_done") {
		t.Fatal("trace missing event kinds")
	}
}

func TestReproduceRemainingFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run reproduction in -short mode")
	}
	o := ReproOptions{Steps: 300, Seed: 42}
	for name, fn := range map[string]func(ReproOptions) (string, error){
		"fig2":  ReproduceFigure2,
		"fig5a": ReproduceFigure5a,
		"fig5b": ReproduceFigure5b,
	} {
		out, err := fn(o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) < 100 {
			t.Fatalf("%s output too small", name)
		}
	}
}

func TestVersion(t *testing.T) {
	if Version == "" {
		t.Fatal("version")
	}
}
