// Command experiments regenerates every table and figure in the paper's
// evaluation section (Figures 2, 3, 5a, 5b, 6 and Table II), plus the
// fault-recovery comparison (faultrec), the collective-workload
// comparison (collective), the scheduling-policy comparison
// (policy, including the telemetry-driven TLs-LAS/TLs-SRSF/
// TLs-Interleave), the leaf-spine topology sweep (topology:
// placement strategy x core oversubscription x policy) and the online
// cluster-scheduler sweep (scheduler: contention-aware and phase-aware
// placement vs the naive baselines, crossed with end-host policies)
// and the open-world sweep (openworld: arrival process x homogeneous
// vs heterogeneous hosts x end-host policy, one unified stream of PS
// and collective jobs per cell),
// and prints the measured rows
// next to the paper's reported numbers. At full scale
// (-steps 30000, the paper's setting) the complete suite is a large
// computation; -steps 3000 gives the same shapes in a few minutes.
//
// Usage:
//
//	experiments                     # everything, full scale
//	experiments -steps 3000         # everything, scaled down
//	experiments -only fig5a         # one experiment
//	experiments -csvdir out/        # also write plot-ready CSVs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/sweep"
)

// renderable is what every figure/table result provides.
type renderable interface {
	Render() string
	WriteCSV(io.Writer) error
}

func main() {
	var (
		steps    = flag.Int("steps", 30000, "target global steps per job (paper: 30000)")
		seed     = flag.Int64("seed", 1, "random seed")
		only     = flag.String("only", "", "run a single experiment: fig2|fig3|fig5a|fig5b|fig6|table2|faultrec|collective|replicate|churn|policy|topology|scheduler|openworld")
		parallel = flag.Int("parallel", 0, "concurrent trials (0 = GOMAXPROCS, 1 = sequential)")
		csvdir   = flag.String("csvdir", "", "directory to write per-figure CSV data files")
	)
	flag.Parse()

	o := sweep.Options{Steps: *steps, Seed: *seed, Parallelism: *parallel}
	type exp struct {
		name string
		run  func(sweep.Options) (renderable, error)
	}
	suite := []exp{
		{"fig2", func(o sweep.Options) (renderable, error) { return sweep.Figure2(o) }},
		{"fig3", func(o sweep.Options) (renderable, error) { return sweep.Figure3(o) }},
		{"fig5a", func(o sweep.Options) (renderable, error) { return sweep.Figure5a(o) }},
		{"fig5b", func(o sweep.Options) (renderable, error) { return sweep.Figure5b(o) }},
		{"fig6", func(o sweep.Options) (renderable, error) { return sweep.Figure6(o) }},
		{"table2", func(o sweep.Options) (renderable, error) { return sweep.TableII(o) }},
		{"faultrec", func(o sweep.Options) (renderable, error) { return sweep.FaultRecovery(o) }},
		{"collective", func(o sweep.Options) (renderable, error) { return sweep.Collective(o) }},
		{"replicate", func(o sweep.Options) (renderable, error) { return sweep.ReplicateSweep(o) }},
		{"churn", func(o sweep.Options) (renderable, error) { return sweep.ChurnSweep(o) }},
		{"policy", func(o sweep.Options) (renderable, error) { return sweep.PolicySweep(o) }},
		{"topology", func(o sweep.Options) (renderable, error) { return sweep.TopologySweep(o) }},
		{"scheduler", func(o sweep.Options) (renderable, error) { return sweep.SchedulerSweep(o) }},
		{"openworld", func(o sweep.Options) (renderable, error) { return sweep.OpenWorldSweep(o) }},
	}
	if *csvdir != "" {
		if err := os.MkdirAll(*csvdir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	ran := 0
	for _, e := range suite {
		if *only != "" && !strings.EqualFold(*only, e.name) {
			continue
		}
		ran++
		start := time.Now()
		res, err := e.run(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (steps=%d seed=%d, %.1fs wall) ===\n%s\n",
			e.name, *steps, *seed, time.Since(start).Seconds(), res.Render())
		if *csvdir != "" {
			path := filepath.Join(*csvdir, e.name+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			if err := res.WriteCSV(f); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "experiments: csv %s: %v\n", path, err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("csv written to %s\n\n", path)
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: unknown -only %q\n", *only)
		os.Exit(2)
	}
}
