// Command bench measures the sweep harness and simulation kernel and
// writes the snapshot to BENCH_sweep.json, giving performance work a
// trajectory to move: trials/sec through the sequential and parallel
// Engine paths, ns/event and allocs/event in the kernel, and ns/chunk
// through a contended leaf-spine core link (the simnet hot path).
//
// Usage:
//
//	bench                       # default sizing, writes BENCH_sweep.json
//	bench -steps 1200 -trials 8 -parallel 4 -out BENCH_sweep.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sweep"
)

func main() {
	var (
		steps    = flag.Int("steps", 600, "global steps per trial")
		trials   = flag.Int("trials", 8, "trials in the benchmark grid")
		parallel = flag.Int("parallel", 4, "parallel leg's worker count")
		seed     = flag.Int64("seed", 1, "base seed")
		out      = flag.String("out", "BENCH_sweep.json", "output JSON path")
	)
	flag.Parse()

	rep, err := sweep.MeasureSweepBench(sweep.BenchConfig{
		Steps:       *steps,
		Trials:      *trials,
		Parallelism: *parallel,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("sweep bench: %d trials x %d steps, GOMAXPROCS=%d\n",
		rep.Trials, rep.Steps, rep.GOMAXPROCS)
	fmt.Printf("  sequential: %.2fs (%.2f trials/sec)\n",
		rep.SequentialSec, rep.TrialsPerSecSequential)
	fmt.Printf("  parallel=%d: %.2fs (%.2f trials/sec, %.2fx speedup)\n",
		rep.Parallelism, rep.ParallelSec, rep.TrialsPerSecParallel, rep.Speedup)
	fmt.Printf("  kernel: %d events, %.0f ns/event, %.4f allocs/event\n",
		rep.Events, rep.NsPerEvent, rep.AllocsPerEvent)
	fmt.Printf("  fabric: %d chunks through a contended leaf-spine core link, %.0f ns/chunk\n",
		rep.FabricChunks, rep.FabricNsPerChunk)
	fmt.Printf("report written to %s\n", *out)
}
