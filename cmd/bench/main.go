// Command bench measures the sweep harness and simulation kernel and
// appends the snapshot to the run history in BENCH_sweep.json, giving
// performance work a trajectory to move: trials/sec through the
// sequential and parallel Engine paths, ns/event and allocs/event in
// the kernel, ns/chunk through a contended leaf-spine core link (the
// simnet hot path), and the analytic flow fabric's wall-clock speedup
// over the chunk fabric on fixed scenarios. Each run is keyed by git
// SHA and date and
// diffed against the previous entry; metrics that moved the wrong way
// by more than 25% are flagged as regressions.
//
// Usage:
//
//	bench                       # default sizing, appends to BENCH_sweep.json
//	bench -steps 1200 -trials 8 -parallel 4 -out BENCH_sweep.json
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"repro/internal/sweep"
)

// regressionTol flags metrics that moved the wrong way by more than
// this fraction versus the previous history entry. Wall-clock numbers
// on a shared machine are noisy; 25% separates real regressions from
// scheduler jitter.
const regressionTol = 0.25

// gitSHA returns the short HEAD commit hash, or "" when not in a git
// checkout (the history entry is still useful, just undated by commit).
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// loadHistory reads an existing history file, migrating the legacy
// single-report layout. A missing file is an empty history.
func loadHistory(path string) (*sweep.BenchHistory, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return &sweep.BenchHistory{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sweep.LoadBenchHistory(f)
}

func main() {
	var (
		steps    = flag.Int("steps", 600, "global steps per trial")
		trials   = flag.Int("trials", 8, "trials in the benchmark grid")
		parallel = flag.Int("parallel", 4, "parallel leg's worker count")
		seed     = flag.Int64("seed", 1, "base seed")
		out      = flag.String("out", "BENCH_sweep.json", "output JSON history path")
	)
	flag.Parse()

	rep, err := sweep.MeasureSweepBench(sweep.BenchConfig{
		Steps:       *steps,
		Trials:      *trials,
		Parallelism: *parallel,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	hist, err := loadHistory(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %s: %v\n", *out, err)
		os.Exit(1)
	}
	hist.Append(sweep.BenchRun{
		GitSHA: gitSHA(),
		Date:   time.Now().UTC().Format("2006-01-02"),
		Report: rep,
	})
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	if err := hist.WriteJSON(f); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("sweep bench: %d trials x %d steps, GOMAXPROCS=%d\n",
		rep.Trials, rep.Steps, rep.GOMAXPROCS)
	fmt.Printf("  sequential: %.2fs (%.2f trials/sec)\n",
		rep.SequentialSec, rep.TrialsPerSecSequential)
	fmt.Printf("  parallel=%d: %.2fs (%.2f trials/sec, %.2fx speedup)\n",
		rep.Parallelism, rep.ParallelSec, rep.TrialsPerSecParallel, rep.Speedup)
	fmt.Printf("  kernel: %d events, %.0f ns/event, %.4f allocs/event\n",
		rep.Events, rep.NsPerEvent, rep.AllocsPerEvent)
	fmt.Printf("  fabric: %d chunks through a contended leaf-spine core link, %.0f ns/chunk\n",
		rep.FabricChunks, rep.FabricNsPerChunk)
	for _, p := range rep.ShardScale {
		fmt.Printf("  sharded engine: %d shards @ GOMAXPROCS=%d: %.2fs (%.2fx vs 1 shard)\n",
			p.Shards, p.Procs, p.WallSec, p.Speedup)
	}
	for _, p := range rep.FlowVsChunk {
		fmt.Printf("  flow fabric %s: chunk %.2fs (%d events) vs flow %.2fs (%d events), %.1fx faster\n",
			p.Scenario, p.ChunkSec, p.ChunkEvents, p.FlowSec, p.FlowEvents, p.Speedup)
	}
	for _, p := range rep.OpenWorld {
		fmt.Printf("  open world %s: %d jobs in %.2fs wall (%d events, %.0f events/sec, avg JCT %.1fs)\n",
			p.Scenario, p.Jobs, p.WallSec, p.Events, p.EventsPerSec, p.AvgJCT)
	}
	fmt.Printf("run %d appended to %s\n", len(hist.Runs), *out)
	if len(hist.Runs) > 1 {
		prev := hist.Runs[len(hist.Runs)-2]
		label := prev.GitSHA
		if label == "" {
			label = "previous run"
		}
		if regs := hist.Regressions(regressionTol); len(regs) > 0 {
			fmt.Printf("REGRESSIONS vs %s:\n", label)
			for _, r := range regs {
				fmt.Printf("  %s\n", r)
			}
			os.Exit(3)
		}
		fmt.Printf("no regressions vs %s (tolerance %.0f%%)\n", label, 100*regressionTol)
	}
}
