// Command tcdemo exercises the tc/qdisc layer standalone: it builds a
// two-host fabric, installs the qdisc tree TensorLights uses (htb root,
// priority classes, per-port filters), pushes two competing bursts
// through it, and prints `tc -s`-style statistics showing the
// green/yellow/yield behaviour.
package main

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tc"
)

func main() {
	k := sim.NewKernel()
	rng := sim.NewRNG(7)
	fab := simnet.New(k, rng, simnet.Config{})
	sender := fab.AddHost("sender")
	fab.AddHost("receiver")

	ctl := tc.NewController(fab)
	cmds := []string{
		"qdisc add dev eth0 root htb default 1",
		"class add dev eth0 classid 0 rate 1mbit ceil 10gbit prio 0",
		"class add dev eth0 classid 1 rate 1mbit ceil 10gbit prio 1",
		"filter add dev eth0 pref 0 match sport 5000 flowid 0",
		"filter add dev eth0 pref 1 match sport 5001 flowid 1",
	}
	fmt.Println("configuring sender NIC:")
	for _, c := range cmds {
		fmt.Printf("  tc %s\n", c)
		ctl.MustExec(sender.ID, c)
	}

	// Two 8 MB bursts start simultaneously: PS1 (port 5000, green) and
	// PS2 (port 5001, yellow — it yields).
	mb := int64(1 << 20)
	var done []string
	send := func(port int, name string) {
		fab.Send(simnet.FlowSpec{
			Src: 0, Dst: 1, SrcPort: port, DstPort: 9000 + port,
			Bytes: 8 * mb,
			OnComplete: func(fl *simnet.Flow) {
				done = append(done, fmt.Sprintf("%-8s finished at %6.2f ms (started %.2f ms)",
					name, fl.Finished*1e3, fl.Started*1e3))
			},
		})
	}
	send(5000, "PS1")
	send(5001, "PS2")
	k.Run(nil)

	fmt.Println("\ncompletion order under strict priority:")
	for _, d := range done {
		fmt.Println("  " + d)
	}
	fmt.Println("\nsender qdisc statistics:")
	fmt.Println(ctl.Show(sender.ID))
}
