// Command tlsim runs one TensorLights experiment: a configurable
// workload — concurrent parameter-server training jobs, ring/tree
// all-reduce jobs, or a mix — on the simulated 21-host testbed, under
// FIFO, the paper's TLs-One/TLs-RR, or one of the telemetry-driven
// policies (TLs-LAS, TLs-SRSF, TLs-Interleave).
//
// Usage:
//
//	tlsim -policy tls-one -placement 1 -steps 3000 -batch 4 -seed 42
//	tlsim -policy tls-las -steps 3000 -interval 2
//	tlsim -policy fifo -custom-placement "5, 16" -util
//	tlsim -policy tls-rr -steps 3000 -fault-flap-ps -fault-tc-outage \
//	    -fault-flap-every 30 -fault-crash "0:3:60"
//	tlsim -workload collective -rings 4 -ranks 4 -algorithm ring
//	tlsim -workload mixed -policy tls-rr -jobs 3 -rings 3
//	tlsim -topology leafspine -racks 3 -oversub 2 -strategy network-aware \
//	    -workload collective -rings 3 -ranks 4
//	tlsim -scheduler phase-aware -oversub 2 -policy tls-rr -steps 3000
//	tlsim -arrivals bursty -mix mixed -hetero -policy tls-srsf -steps 3000
//	tlsim -arrivals trace -arrival-trace jobs.csv -policy tls-rr
//	tlsim -shards 3 -policy tls-rr -steps 3000    # sharded engine, same results
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"

	tensorlights "repro"
)

// parseCrashes parses "job:worker:atSec" triples, comma-separated.
func parseCrashes(s string) ([]tensorlights.WorkerCrash, error) {
	if s == "" {
		return nil, nil
	}
	var out []tensorlights.WorkerCrash
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad -fault-crash element %q, want job:worker:atSec", part)
		}
		job, err1 := strconv.Atoi(fields[0])
		worker, err2 := strconv.Atoi(fields[1])
		at, err3 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("bad -fault-crash element %q, want job:worker:atSec", part)
		}
		out = append(out, tensorlights.WorkerCrash{Job: job, Worker: worker, AtSec: at})
	}
	return out, nil
}

func main() {
	var (
		policy     = flag.String("policy", "fifo", "scheduling policy: fifo | tls-one | tls-rr | tls-lpf | static-rate | tls-las | tls-srsf | tls-interleave")
		placement  = flag.Int("placement", 1, "Table I placement index (1-8)")
		custom     = flag.String("custom-placement", "", `custom PS placement, e.g. "5, 16" (overrides -placement)`)
		model      = flag.String("model", "resnet32", "model from the zoo")
		jobs       = flag.Int("jobs", 21, "number of concurrent jobs")
		batch      = flag.Int("batch", 4, "local batch size")
		steps      = flag.Int("steps", 30000, "target global steps per job")
		bands      = flag.Int("bands", 6, "TensorLights priority bands")
		interval   = flag.Float64("interval", 20, "TLs-RR rotation interval T (seconds)")
		async      = flag.Bool("async", false, "asynchronous training (no barrier)")
		seed       = flag.Int64("seed", 1, "random seed")
		util       = flag.Bool("util", false, "measure CPU/NIC utilization")
		workload   = flag.String("workload", "ps", "workload mix: ps | collective | mixed")
		topology   = flag.String("topology", "flat", "fabric topology: flat (the paper's single switch) | leafspine")
		fabric     = flag.String("fabric", "chunk", "fabric engine: chunk (per-chunk discrete events) | flow (analytic flow-level model, typically 10-100x faster)")
		racks      = flag.Int("racks", 3, "leafspine: number of racks (21 hosts must divide evenly)")
		uplinks    = flag.Int("uplinks", 2, "leafspine: spine uplinks per rack (ECMP fan-out)")
		oversub    = flag.Float64("oversub", 1, "leafspine: core oversubscription ratio (1 = non-blocking)")
		strategy   = flag.String("strategy", "", "leafspine: rack placement strategy: pack | spread | network-aware (default spread)")
		schedule   = flag.String("scheduler", "", "run the online cluster-scheduler workload with this placement: random | pack | spread | network-aware | contention-aware | phase-aware")
		arrival    = flag.Float64("arrival-rate", 0, "scheduler/open-world: stochastic job arrival rate per second (0 = default 1/s)")
		arrivals   = flag.String("arrivals", "", "run the open-world workload with this arrival process: poisson | bursty | trace")
		arrTrace   = flag.String("arrival-trace", "", "open-world: CSV replay trace for -arrivals trace (at_sec,kind,model,tasks,local_batch,iterations; default: built-in demo trace)")
		mix        = flag.String("mix", "", "open-world: job mix for stochastic arrivals: mixed | ps | collective")
		hetero     = flag.Bool("hetero", false, "open-world: slow every third host to 60% reference speed")
		rings      = flag.Int("rings", 3, "collective: number of all-reduce jobs")
		ranks      = flag.Int("ranks", 4, "collective: ranks per all-reduce job")
		stride     = flag.Int("ring-stride", 0, "collective: host offset between rings (0 = aligned)")
		algorithm  = flag.String("algorithm", "ring", "collective: all-reduce algorithm, ring | tree")
		collModel  = flag.String("collective-model", "alexnet", "collective: model from the zoo")
		collIters  = flag.Int("iters", 0, "collective: iterations per job (0 = steps/30)")
		buckets    = flag.Int("buckets", 0, "collective: gradient buckets per iteration (0 = default)")
		shards     = flag.Int("shards", 0, "run on the sharded engine with this many event-kernel partitions (0 = single kernel); results are byte-identical at every shard count")
		shardCells = flag.Int("shard-cells", 0, "sharded: placement cells jobs are confined to (0 = one per shard); must split into whole shards")
		traceOut   = flag.String("trace", "", "write a CSV event trace to this file")
		replicates = flag.Int("replicates", 1, "run this many consecutive seeds and report mean ± std avg JCT")
		parallel   = flag.Int("parallel", 0, "concurrent replicate trials (0 = GOMAXPROCS, 1 = sequential)")
		listModel  = flag.Bool("models", false, "list available models and exit")
		listPlace  = flag.Bool("placements", false, "list Table I placements and exit")

		faultFlapPS   = flag.Bool("fault-flap-ps", false, "periodically flap every PS host's NIC (deterministic, seeded)")
		faultFirst    = flag.Float64("fault-flap-first", 10, "first flap time (seconds)")
		faultEvery    = flag.Float64("fault-flap-every", 60, "flap period (seconds)")
		faultDur      = flag.Float64("fault-flap-dur", 3, "flap duration (seconds)")
		faultJitter   = flag.Float64("fault-flap-jitter", 1, "per-flap seeded jitter (seconds)")
		faultHorizon  = flag.Float64("fault-horizon", 600, "stop scheduling flaps after this time (seconds)")
		faultDrop     = flag.Float64("fault-drop", 0, "chunk-loss probability in the window after each flap")
		faultTC       = flag.Bool("fault-tc-outage", false, "fail tc actuation on the host during each flap")
		faultCrash    = flag.String("fault-crash", "", `worker crashes as "job:worker:atSec", comma-separated (job >= 1000 targets a collective ring peer)`)
		faultDetect   = flag.Float64("fault-detect", 5, "crashed-worker detection timeout (seconds)")
		faultBackoff  = flag.Float64("fault-restart-backoff", 2, "worker restart backoff after detection (seconds)")
		faultRestarts = flag.Int("fault-max-restarts", 2, "restart budget per worker before the job degrades")
	)
	flag.Parse()

	if *listModel {
		for _, m := range tensorlights.Models() {
			fmt.Println(m)
		}
		return
	}
	if *listPlace {
		fmt.Print(tensorlights.Placements())
		return
	}

	var pol tensorlights.Policy
	switch *policy {
	case "fifo":
		pol = tensorlights.FIFO
	case "tls-one", "one":
		pol = tensorlights.TLsOne
	case "tls-rr", "rr":
		pol = tensorlights.TLsRR
	case "tls-lpf", "lpf":
		pol = tensorlights.TLsLPF
	case "static-rate", "rate":
		pol = tensorlights.StaticRate
	case "tls-las", "las":
		pol = tensorlights.TLsLAS
	case "tls-srsf", "srsf":
		pol = tensorlights.TLsSRSF
	case "tls-interleave", "interleave":
		pol = tensorlights.TLsInterleave
	default:
		fmt.Fprintf(os.Stderr, "tlsim: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	crashes, err := parseCrashes(*faultCrash)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlsim: %v\n", err)
		os.Exit(2)
	}
	cfg := tensorlights.ExperimentConfig{
		Policy:             pol,
		PlacementIndex:     *placement,
		Placement:          *custom,
		Model:              *model,
		NumJobs:            *jobs,
		LocalBatch:         *batch,
		Steps:              *steps,
		Bands:              *bands,
		RotateIntervalSec:  *interval,
		Async:              *async,
		Seed:               *seed,
		MeasureUtilization: *util,
	}
	if *fabric != "chunk" {
		cfg.FabricMode = *fabric
	}
	if *topology != "flat" {
		cfg.Topology = *topology
		cfg.Racks = *racks
		cfg.UplinksPerLeaf = *uplinks
		cfg.Oversubscription = *oversub
		cfg.PlacementStrategy = *strategy
	}
	switch *workload {
	case "ps":
	case "collective", "mixed":
		cfg.Collective = &tensorlights.CollectiveConfig{
			Jobs:       *rings,
			Ranks:      *ranks,
			Stride:     *stride,
			Algorithm:  *algorithm,
			Model:      *collModel,
			LocalBatch: 1,
			Iterations: *collIters,
			Buckets:    *buckets,
		}
		if *workload == "collective" {
			cfg.NumJobs = 0 // no PS jobs: the cluster is all-reduce-only
		} else if *custom == "" && *jobs != 21 {
			// Table I placements cover exactly 21 PS jobs; for a smaller
			// mixed cluster, colocate all PSes on host 0 (the contended
			// scenario the mixed workload exists to study).
			cfg.Placement = strconv.Itoa(*jobs)
		}
	default:
		fmt.Fprintf(os.Stderr, "tlsim: unknown workload %q\n", *workload)
		os.Exit(2)
	}
	if *shards > 0 {
		cfg.Sharded = &tensorlights.ShardedConfig{Shards: *shards, Cells: *shardCells}
	}
	if *schedule != "" {
		if *faultFlapPS || len(crashes) > 0 {
			fmt.Fprintln(os.Stderr, "tlsim: fault flags are incompatible with -scheduler")
			os.Exit(2)
		}
		// -jobs and -oversub keep their PS-workload defaults (21 and 1),
		// which are wrong for the scheduler trial; only forward them when
		// the user set them explicitly so the trial defaults (9 jobs,
		// 2:1 oversubscription) apply otherwise.
		sc := &tensorlights.SchedulerConfig{
			Placement:         *schedule,
			ArrivalRatePerSec: *arrival,
		}
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "jobs":
				sc.Jobs = *jobs
			case "oversub":
				sc.Oversubscription = *oversub
			}
		})
		cfg.Scheduler = sc
	}
	if *arrivals != "" || *arrTrace != "" || *mix != "" || *hetero {
		if cfg.Scheduler != nil {
			fmt.Fprintln(os.Stderr, "tlsim: -scheduler is incompatible with the open-world flags (-arrivals, -arrival-trace, -mix, -hetero)")
			os.Exit(2)
		}
		if *faultFlapPS || len(crashes) > 0 {
			fmt.Fprintln(os.Stderr, "tlsim: fault flags are incompatible with the open-world workload")
			os.Exit(2)
		}
		// Like -scheduler: only forward -jobs / -oversub when the user
		// set them, so the open-world defaults apply otherwise.
		ow := &tensorlights.OpenWorldConfig{
			Arrivals:          *arrivals,
			Mix:               *mix,
			Heterogeneous:     *hetero,
			ArrivalRatePerSec: *arrival,
		}
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "jobs":
				ow.Jobs = *jobs
			case "oversub":
				ow.Oversubscription = *oversub
			}
		})
		if *arrTrace != "" {
			f, err := os.Open(*arrTrace)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tlsim: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			ow.Trace = f
		}
		cfg.OpenWorld = ow
	}
	if *faultFlapPS || len(crashes) > 0 {
		// Crashes naming a collective job (ID >= CollectiveJobIDBase)
		// are ring-peer crashes; the rest are PS-worker crashes.
		var workerCrashes, peerCrashes []tensorlights.WorkerCrash
		for _, c := range crashes {
			if cfg.Collective != nil && c.Job >= tensorlights.CollectiveJobIDBase {
				peerCrashes = append(peerCrashes, c)
			} else {
				workerCrashes = append(workerCrashes, c)
			}
		}
		cfg.Faults = tensorlights.FaultConfig{
			Crashes:           workerCrashes,
			PeerCrashes:       peerCrashes,
			DetectTimeoutSec:  *faultDetect,
			RestartBackoffSec: *faultBackoff,
			MaxRestarts:       *faultRestarts,
		}
		if *faultFlapPS {
			cfg.Faults.FlapPSHosts = true
			cfg.Faults.FlapFirstAtSec = *faultFirst
			cfg.Faults.FlapEverySec = *faultEvery
			cfg.Faults.FlapDurationSec = *faultDur
			cfg.Faults.FlapJitterSec = *faultJitter
			cfg.Faults.HorizonSec = *faultHorizon
			cfg.Faults.DropProb = *faultDrop
			cfg.Faults.TCOutage = *faultTC
		}
	}
	// Ctrl-C (or SIGTERM) cancels the simulation mid-grid instead of
	// leaving the process to be killed: the context is threaded through
	// the sweep engine down to the event kernel, so runs stop promptly
	// and any partial trace file is clearly marked as such.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *replicates > 1 {
		if *traceOut != "" {
			fmt.Fprintln(os.Stderr, "tlsim: -trace is incompatible with -replicates > 1")
			os.Exit(2)
		}
		stats, err := tensorlights.ReplicateExperimentContext(ctx, cfg, *replicates, *parallel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tlsim: %v\n", err)
			if errors.Is(err, context.Canceled) {
				os.Exit(130) // 128 + SIGINT, the conventional interrupted exit
			}
			os.Exit(1)
		}
		fmt.Printf("workload=%s policy=%s placement=#%d jobs=%d batch=%d steps=%d seeds=%d..%d parallel=%d\n",
			*workload, pol, *placement, cfg.NumJobs, *batch, *steps,
			*seed, *seed+int64(*replicates)-1, *parallel)
		fmt.Printf("avg JCT across seeds: %s (min %.1f, max %.1f)\n",
			stats, stats.Min, stats.Max)
		return
	}
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tlsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		traceFile = f
		cfg.TraceCSV = f
	}
	res, err := tensorlights.RunExperimentContext(ctx, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlsim: %v\n", err)
		if errors.Is(err, context.Canceled) {
			if traceFile != nil {
				// RunExperimentContext already flushed the partial trace
				// with a leading "# partial trace" comment line.
				fmt.Fprintf(os.Stderr, "tlsim: partial event trace written to %s\n", traceFile.Name())
				traceFile.Close() // os.Exit skips the deferred close
			}
			os.Exit(130)
		}
		os.Exit(1)
	}
	if traceFile != nil {
		fmt.Printf("event trace written to %s\n", traceFile.Name())
	}

	if sc := cfg.Scheduler; sc != nil {
		// Echo the trial defaults for anything the user left unset.
		schedJobs, schedOversub, schedRate := sc.Jobs, sc.Oversubscription, sc.ArrivalRatePerSec
		if schedJobs <= 0 {
			schedJobs = 9
		}
		if schedOversub <= 0 {
			schedOversub = 2
		}
		if schedRate <= 0 {
			schedRate = 1
		}
		fmt.Printf("scheduler placement=%s policy=%s oversub=%g:1 jobs=%d arrival-rate=%g/s steps=%d seed=%d\n",
			sc.Placement, pol, schedOversub, schedJobs, schedRate, *steps, *seed)
	} else if ow := cfg.OpenWorld; ow != nil {
		// Echo the trial defaults for anything the user left unset.
		owArrivals, owMix, owJobs, owOversub, owRate := ow.Arrivals, ow.Mix, ow.Jobs, ow.Oversubscription, ow.ArrivalRatePerSec
		if owArrivals == "" {
			owArrivals = "poisson"
		}
		if owMix == "" {
			owMix = "mixed"
		}
		if owJobs <= 0 {
			owJobs = 9
		}
		if owOversub <= 0 {
			owOversub = 2
		}
		if owRate <= 0 {
			owRate = 1
		}
		hosts := "homogeneous"
		if ow.Heterogeneous {
			hosts = "heterogeneous"
		}
		if owArrivals == "trace" {
			fmt.Printf("open world arrivals=trace hosts=%s policy=%s oversub=%g:1 steps=%d seed=%d\n",
				hosts, pol, owOversub, *steps, *seed)
		} else {
			fmt.Printf("open world arrivals=%s mix=%s hosts=%s policy=%s oversub=%g:1 jobs=%d arrival-rate=%g/s steps=%d seed=%d\n",
				owArrivals, owMix, hosts, pol, owOversub, owJobs, owRate, *steps, *seed)
		}
	} else if s := cfg.Sharded; s != nil {
		cells := s.Cells
		if cells == 0 {
			cells = s.Shards
		}
		fmt.Printf("workload=%s policy=%s shards=%d cells=%d jobs=%d batch=%d steps=%d seed=%d\n",
			*workload, pol, s.Shards, cells, cfg.NumJobs, *batch, *steps, *seed)
	} else {
		fmt.Printf("workload=%s policy=%s placement=#%d jobs=%d batch=%d steps=%d seed=%d\n",
			*workload, pol, *placement, cfg.NumJobs, *batch, *steps, *seed)
	}
	if cfg.Topology != "" {
		strat := cfg.PlacementStrategy
		if strat == "" {
			strat = "spread"
		}
		fmt.Printf("topology=%s racks=%d uplinks=%d oversub=%g:1 strategy=%s\n",
			cfg.Topology, cfg.Racks, cfg.UplinksPerLeaf, cfg.Oversubscription, strat)
	}
	fmt.Printf("simulated %.1f s in %d events, %d tc reconfigurations\n",
		res.SimulatedSeconds, res.Events, res.TcReconfigurations)
	if len(res.JCTs) > 0 {
		fmt.Printf("avg JCT: %.1f s\n", res.AvgJCT)
		jcts := append([]float64(nil), res.JCTs...)
		sort.Float64s(jcts)
		fmt.Printf("JCT min/median/max: %.1f / %.1f / %.1f s\n",
			jcts[0], jcts[len(jcts)/2], jcts[len(jcts)-1])
		fmt.Printf("barrier wait: mean %.3f s, variance %.5f s^2\n",
			res.BarrierWaitMean, res.BarrierWaitVariance)
	}
	if cfg.Collective != nil {
		fmt.Printf("all-reduce (%s, %d jobs): avg JCT %.1f s\n",
			*algorithm, len(res.CollectiveJCTs), res.CollectiveAvgJCT)
		cjcts := append([]float64(nil), res.CollectiveJCTs...)
		sort.Float64s(cjcts)
		if len(cjcts) > 0 {
			fmt.Printf("all-reduce JCT min/median/max: %.1f / %.1f / %.1f s\n",
				cjcts[0], cjcts[len(cjcts)/2], cjcts[len(cjcts)-1])
		}
		if res.RingStalls > 0 {
			fmt.Printf("ring stalls: %d\n", res.RingStalls)
		}
	}
	if *faultFlapPS || len(crashes) > 0 {
		fmt.Printf("fault recovery: %d worker restarts, %d degraded, %d jobs lost, %d chunks dropped\n",
			res.WorkerRestarts, res.DegradedWorkers, len(res.FailedJobs), res.DroppedChunks)
		fmt.Printf("tc recovery: %d retries, %d FIFO fallbacks, %d reconcile repairs\n",
			res.TcRetries, res.TcFallbacks, res.TcRepairs)
	}
	if *util {
		fmt.Println("per-host utilization (active window):")
		for _, u := range res.Utilization {
			fmt.Printf("  host%02d cpu=%.0f%% in=%.0f%% out=%.0f%%\n",
				u.Host, 100*u.CPU, 100*u.NetIn, 100*u.NetOut)
		}
	}
}
