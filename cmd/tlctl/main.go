// Command tlctl is the client for the tlsimd daemon.
//
// Usage:
//
//	tlctl [-addr http://127.0.0.1:8080] <command> [flags]
//
// Commands:
//
//	submit   submit an experiment (mini flag set, or -config file.json)
//	get      print one job's status (and result when done)
//	list     list all jobs
//	wait     poll a job until it settles; exit 0 on done, 1 otherwise
//	cancel   cancel a queued or running job
//	drain    ask the daemon to drain gracefully
//	health   check /healthz and /readyz
//
// Examples:
//
//	tlctl submit -policy tls-rr -jobs 4 -steps 3000 -seed 7
//	tlctl submit -config experiment.json -timeout 120
//	tlctl wait j000000
//	tlctl drain
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	tensorlights "repro"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "tlsimd base URL")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tlctl [-addr URL] submit|get|list|wait|cancel|drain|health [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	c := &client{base: *addr, http: &http.Client{Timeout: 30 * time.Second}}
	cmd, rest := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "submit":
		err = c.submit(rest)
	case "get":
		err = c.get(rest)
	case "list":
		err = c.list()
	case "wait":
		err = c.wait(rest)
	case "cancel":
		err = c.cancel(rest)
	case "drain":
		err = c.drain()
	case "health":
		err = c.health()
	default:
		fmt.Fprintf(os.Stderr, "tlctl: unknown command %q\n", cmd)
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlctl: %v\n", err)
		os.Exit(1)
	}
}

type client struct {
	base string
	http *http.Client
}

// do issues one request and decodes the JSON body into out (when non-nil),
// translating non-2xx responses — including 429 shed with Retry-After —
// into errors.
func (c *client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var eb struct {
			Error      string  `json:"error"`
			RetryAfter float64 `json:"retry_after_sec"`
		}
		_ = json.Unmarshal(raw, &eb)
		msg := eb.Error
		if msg == "" {
			msg = string(bytes.TrimSpace(raw))
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			return fmt.Errorf("daemon overloaded (retry after %s s): %s",
				resp.Header.Get("Retry-After"), msg)
		}
		return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, msg)
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

func (c *client) submit(argv []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		configPath = fs.String("config", "", "submit a full ExperimentConfig from this JSON file (overrides the flags below)")
		timeout    = fs.Float64("timeout", 0, "per-job deadline in seconds (0 = daemon default)")
		policy     = fs.String("policy", "tls-rr", "scheduling policy: fifo | tls-one | tls-rr | tls-lpf | static-rate | tls-las | tls-srsf | tls-interleave")
		placement  = fs.Int("placement", 1, "Table I placement index (1-8)")
		custom     = fs.String("custom-placement", "", "custom PS placement (overrides -placement)")
		model      = fs.String("model", "resnet32", "model from the zoo")
		jobs       = fs.Int("jobs", 21, "number of concurrent jobs")
		steps      = fs.Int("steps", 30000, "target global steps per job")
		seed       = fs.Int64("seed", 1, "random seed")
		follow     = fs.Bool("wait", false, "block until the job settles")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	var cfg tensorlights.ExperimentConfig
	if *configPath != "" {
		raw, err := os.ReadFile(*configPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return fmt.Errorf("parse %s: %w", *configPath, err)
		}
	} else {
		pol, err := parsePolicy(*policy)
		if err != nil {
			return err
		}
		cfg = tensorlights.ExperimentConfig{
			Policy:         pol,
			PlacementIndex: *placement,
			Placement:      *custom,
			Model:          *model,
			NumJobs:        *jobs,
			Steps:          *steps,
			Seed:           *seed,
		}
	}
	var st server.JobStatus
	if err := c.do("POST", "/v1/jobs", server.SubmitRequest{Config: cfg, TimeoutSec: *timeout}, &st); err != nil {
		return err
	}
	if st.Deduped && st.State == server.JobDone {
		fmt.Printf("%s: already computed (cache hit)\n", st.ID)
		printStatus(&st, true)
		return nil
	}
	fmt.Printf("%s: %s\n", st.ID, st.State)
	if *follow {
		return c.pollUntilTerminal(st.ID)
	}
	return nil
}

func (c *client) get(argv []string) error {
	if len(argv) != 1 {
		return fmt.Errorf("usage: tlctl get <job-id>")
	}
	var st server.JobStatus
	if err := c.do("GET", "/v1/jobs/"+argv[0], nil, &st); err != nil {
		return err
	}
	printStatus(&st, true)
	return nil
}

func (c *client) list() error {
	var jobs []server.JobStatus
	if err := c.do("GET", "/v1/jobs", nil, &jobs); err != nil {
		return err
	}
	for i := range jobs {
		printStatus(&jobs[i], false)
	}
	return nil
}

func (c *client) wait(argv []string) error {
	if len(argv) != 1 {
		return fmt.Errorf("usage: tlctl wait <job-id>")
	}
	return c.pollUntilTerminal(argv[0])
}

func (c *client) pollUntilTerminal(id string) error {
	for {
		var st server.JobStatus
		if err := c.do("GET", "/v1/jobs/"+id, nil, &st); err != nil {
			return err
		}
		switch st.State {
		case server.JobDone:
			printStatus(&st, true)
			return nil
		case server.JobFailed, server.JobCancelled:
			printStatus(&st, true)
			return fmt.Errorf("job %s settled %s", id, st.State)
		}
		time.Sleep(500 * time.Millisecond)
	}
}

func (c *client) cancel(argv []string) error {
	if len(argv) != 1 {
		return fmt.Errorf("usage: tlctl cancel <job-id>")
	}
	var st server.JobStatus
	if err := c.do("POST", "/v1/jobs/"+argv[0]+"/cancel", nil, &st); err != nil {
		return err
	}
	printStatus(&st, false)
	return nil
}

func (c *client) drain() error {
	if err := c.do("POST", "/v1/drain", nil, nil); err != nil {
		return err
	}
	fmt.Println("draining: daemon refuses new jobs and exits once in-flight work settles")
	return nil
}

func (c *client) health() error {
	live := c.do("GET", "/healthz", nil, nil)
	ready := c.do("GET", "/readyz", nil, nil)
	fmt.Printf("healthz: %s\n", okOr(live))
	fmt.Printf("readyz:  %s\n", okOr(ready))
	if live != nil || ready != nil {
		return fmt.Errorf("daemon not fully available")
	}
	return nil
}

func okOr(err error) string {
	if err != nil {
		return err.Error()
	}
	return "ok"
}

func printStatus(st *server.JobStatus, withResult bool) {
	line := fmt.Sprintf("%s  %-9s attempts=%d", st.ID, st.State, st.Attempts)
	if st.Error != "" {
		line += "  error=" + st.Error
	}
	fmt.Println(line)
	if withResult && st.Result != nil {
		fmt.Printf("  simulated %.1f s in %d events, avg JCT %.1f s\n",
			st.Result.SimulatedSeconds, st.Result.Events, st.Result.AvgJCT)
	}
}

func parsePolicy(s string) (tensorlights.Policy, error) {
	switch s {
	case "fifo":
		return tensorlights.FIFO, nil
	case "tls-one", "one":
		return tensorlights.TLsOne, nil
	case "tls-rr", "rr":
		return tensorlights.TLsRR, nil
	case "tls-lpf", "lpf":
		return tensorlights.TLsLPF, nil
	case "static-rate", "rate":
		return tensorlights.StaticRate, nil
	case "tls-las", "las":
		return tensorlights.TLsLAS, nil
	case "tls-srsf", "srsf":
		return tensorlights.TLsSRSF, nil
	case "tls-interleave", "interleave":
		return tensorlights.TLsInterleave, nil
	}
	return 0, fmt.Errorf("unknown policy %q", s)
}
