// Command tlsimd is the crash-safe simulation-as-a-service daemon: it
// accepts TensorLights experiment submissions over HTTP/JSON, runs
// them on a bounded worker pool, and journals every job transition to
// an append-only JSONL write-ahead log so a killed-and-restarted
// daemon recovers its queue and re-runs interrupted jobs exactly once.
//
// Usage:
//
//	tlsimd -addr :8080 -journal tlsimd.journal.jsonl -workers 4
//
// Then, with tlctl:
//
//	tlctl submit -policy tls-rr -jobs 4 -steps 3000
//	tlctl wait j000000
//	tlctl drain
//
// SIGTERM and SIGINT trigger a graceful drain: submissions are refused
// with 503, in-flight jobs run to completion (up to -drain-timeout,
// after which they are abandoned non-terminally and re-run on the next
// start), and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		journal      = flag.String("journal", "tlsimd.journal.jsonl", "write-ahead journal path (created if missing; replayed on start)")
		workers      = flag.Int("workers", 2, "concurrent experiment workers")
		queue        = flag.Int("queue", 64, "bounded admission queue depth (full queue sheds with 429)")
		retries      = flag.Int("retries", 2, "retry budget per job after the first attempt")
		backoff      = flag.Duration("backoff", 200*time.Millisecond, "base retry backoff (doubles per attempt, with seeded jitter)")
		maxBackoff   = flag.Duration("max-backoff", 10*time.Second, "retry backoff cap")
		timeout      = flag.Duration("timeout", 15*time.Minute, "default per-job deadline (per attempt); jobs may override per submission")
		rate         = flag.Float64("rate", 0, "per-client submissions per second (0 = unlimited)")
		burst        = flag.Int("burst", 10, "per-client submission burst")
		parallelism  = flag.Int("parallel", 0, "sweep parallelism inside one experiment (0 = GOMAXPROCS)")
		queuePolicy  = flag.String("queue-policy", server.QueueFIFO, "queued-job order: fifo (submission order) | srsf (smallest expected remaining work first)")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Minute, "graceful drain bound on SIGTERM; in-flight jobs still running after this are abandoned for restart recovery")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "tlsimd: ", log.LstdFlags)
	s, err := server.New(server.Config{
		JournalPath:    *journal,
		Workers:        *workers,
		QueueDepth:     *queue,
		MaxRetries:     *retries,
		RetryBackoff:   *backoff,
		MaxBackoff:     *maxBackoff,
		DefaultTimeout: *timeout,
		RatePerSec:     *rate,
		RateBurst:      *burst,
		Parallelism:    *parallelism,
		QueuePolicy:    *queuePolicy,
		Logf: func(format string, args ...any) {
			logger.Printf(format, args...)
		},
	})
	if err != nil {
		logger.Fatalf("start: %v", err)
	}
	s.Start()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on %s (journal %s, %d workers, queue %d, %s order)",
		*addr, *journal, *workers, *queue, *queuePolicy)

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-sigCh:
		logger.Printf("%v: draining (bound %v)", sig, *drainTimeout)
	case <-s.DrainBegan():
		logger.Printf("drain requested over HTTP; waiting for in-flight jobs")
	case err := <-serveErr:
		// Listener died underneath us; drain so journaled state is synced
		// before exit.
		logger.Printf("http server: %v — draining", err)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := s.Drain(drainCtx)
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	_ = httpSrv.Shutdown(shutCtx)

	if drainErr != nil && !errors.Is(drainErr, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "tlsimd: forced drain: %v (abandoned jobs will re-run on next start)\n", drainErr)
		os.Exit(1)
	}
	logger.Printf("drained cleanly")
}
