package simnet

import (
	"fmt"

	"repro/internal/flownet"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Fabric modes: the chunk fabric simulates every chunk through every
// hop as discrete events; the flow fabric models transfers as fluid
// flows on an analytic max-min bandwidth-sharing network
// (internal/flownet) and jumps straight to completion times. See
// DESIGN.md §13 for the model and its documented divergences.
const (
	ModeChunk = "chunk"
	ModeFlow  = "flow"
)

// classKey identifies one per-host shaping constraint: an HTB leaf
// class (class >= 0) or the TBF bucket (class == tbfClass).
type classKey struct {
	host  int
	class int
}

const tbfClass = -2

// classLinkInfo is the engine link modelling one shaped class, plus the
// strict-priority band its flows compete in at the egress.
type classLinkInfo struct {
	link int
	band int
}

// flowMode is the fabric's analytic fast path: a flownet.Engine whose
// links mirror the fabric's capacity constraints.
//
// Link mapping:
//   - per host, an egress link and an ingress link at NIC payload rate
//     (rateBytes * rateFactor / WireOverhead; 0 when down, derated by
//     the injected chunk-drop probability);
//   - per core link of the routed topology, one engine link at the
//     core payload rate (ECMP route sets are reused verbatim: a flow
//     crosses exactly the links its chunks would);
//   - per shaped egress class (HTB leaf class, TBF bucket), one virtual
//     link capping that class's aggregate payload throughput at its
//     Ceil/Rate — HTB charges payload bytes, so no overhead factor.
//
// Band mapping: a flow's strict-priority band at its source egress is
// the HTB class Prio (direct traffic gets band -1: it dequeues before
// every class) or the prio qdisc band; its weight is the socket window,
// matching the chunk fabric's window-proportional FIFO sharing. HTB's
// guaranteed-rate (green) phase is approximated as pure strict priority
// by Prio + per-class Ceil: TensorLights configures tiny guarantees and
// large ceils, where borrowing order is what matters.
type flowMode struct {
	f   *Fabric
	eng *flownet.Engine

	egressLink  []int // per host
	ingressLink []int // per host
	coreLink    []int // per topology link ID
	classLinks  map[classKey]classLinkInfo

	// bandDone[host][band] accumulates payload bytes of completed flows
	// per egress band; FlowBandBytes adds in-flight progress on top.
	bandDone []map[int]int64

	// scratch chunk for running tc filter chains against a flow.
	scratch qdisc.Chunk
	// scratch link list for AddFlow/UpdateFlow (the engine copies it).
	linksBuf []int

	completeFn func(any)
}

// flowEngine returns the fabric's analytic engine, building it (and the
// topology) on first use. Call only after every AddHost.
func (f *Fabric) flowEngine() *flowMode {
	if f.flow == nil {
		f.Topology()
		f.flow = newFlowMode(f)
	}
	return f.flow
}

func newFlowMode(f *Fabric) *flowMode {
	fm := &flowMode{
		f:          f,
		classLinks: make(map[classKey]classLinkInfo),
		bandDone:   make([]map[int]int64, len(f.hosts)),
	}
	fm.eng = flownet.NewEngine(f.k, fm.flowDone)
	fm.completeFn = func(a any) { f.completeAnalyticFlow(a.(*Flow)) }
	fm.egressLink = make([]int, len(f.hosts))
	fm.ingressLink = make([]int, len(f.hosts))
	for i, h := range f.hosts {
		fm.egressLink[i] = fm.eng.AddLink(fm.portCap(h.Egress))
		h.Egress.flowLink = fm.egressLink[i]
		fm.ingressLink[i] = fm.eng.AddLink(fm.portCap(h.Ingress))
		h.Ingress.flowLink = fm.ingressLink[i]
	}
	links := f.topo.Links()
	fm.coreLink = make([]int, len(links))
	for _, l := range links {
		fm.coreLink[l.ID] = fm.eng.AddLink(fm.portCap(l.port))
		l.port.flowLink = fm.coreLink[l.ID]
	}
	return fm
}

// portCap is the port's current payload capacity in bytes/sec: the wire
// rate divided by the framing overhead, degraded by fault state. An
// injected chunk-drop probability derates the egress — the fluid
// analogue of losing (and later retransmitting) that fraction of
// chunks.
func (fm *flowMode) portCap(p *Port) float64 {
	if p.down {
		return 0
	}
	c := p.rateBytes * p.rateFactor / fm.f.cfg.WireOverhead
	if p.dir == "egress" && p.host.dropProb > 0 {
		c *= 1 - p.host.dropProb
	}
	return c
}

// notifyFlow pushes a port's current capacity into the analytic engine
// after a fault or reconfiguration; rates recompute immediately. A
// no-op before the engine exists or in chunk mode (flowLink < 0).
func (p *Port) notifyFlow() {
	if fm := p.fabric.flow; fm != nil && p.flowLink >= 0 {
		fm.eng.SetLinkCap(p.flowLink, fm.portCap(p))
	}
}

// classLink returns (creating or refreshing) the virtual link capping a
// shaped egress class.
func (fm *flowMode) classLink(host, class, band int, cap float64) classLinkInfo {
	k := classKey{host: host, class: class}
	info, ok := fm.classLinks[k]
	if !ok {
		info = classLinkInfo{link: fm.eng.AddLink(cap), band: band}
		fm.classLinks[k] = info
		return info
	}
	fm.eng.SetLinkCap(info.link, cap) // no-op when unchanged
	if info.band != band {
		info.band = band
		fm.classLinks[k] = info
	}
	return info
}

// classify runs host src's egress qdisc configuration over a flow and
// returns its strict-priority band and the virtual class link capping
// it (-1 when unshaped). This is the same decision the chunk fabric
// makes per chunk, evaluated once per flow.
func (fm *flowMode) classify(src int, fl *Flow) (band, classLink int) {
	fm.scratch = qdisc.Chunk{
		FlowID:  fl.ID,
		JobID:   fl.Spec.JobID,
		SrcPort: fl.Spec.SrcPort,
		DstPort: fl.Spec.DstPort,
	}
	switch q := fm.f.Host(src).Egress.q.(type) {
	case *qdisc.HTB:
		cl := q.Class(q.Classifier().Classify(&fm.scratch))
		if cl == nil {
			cl = q.Class(q.DefaultClass())
		}
		if cl == nil {
			// Direct traffic dequeues before every class, unshaped.
			return -1, -1
		}
		cfg := cl.Config()
		info := fm.classLink(src, int(cl.ID), cfg.Prio, cfg.Ceil)
		return cfg.Prio, info.link
	case *qdisc.Prio:
		b := int(q.Classifier().Classify(&fm.scratch))
		if b < 0 || b >= q.Bands() {
			b = q.Bands() - 1 // Enqueue's out-of-range clamp
		}
		return b, -1
	case *qdisc.TBF:
		info := fm.classLink(src, tbfClass, 0, q.Rate())
		return 0, info.link
	default: // pfifo, sfq: single band, no shaping
		return 0, -1
	}
}

// sendBurstFlow is SendBurst on the analytic fabric: one engine flow
// per spec instead of per-chunk events. Window sampling and the
// interleave draws consume the same RNG sequence as the chunk fabric,
// so a mode switch never perturbs later draws from shared streams.
func (f *Fabric) sendBurstFlow(src int, specs []FlowSpec) []*Flow {
	now := f.k.Now()
	rng := f.jitterRNG(src)
	flows := make([]*Flow, len(specs))
	admitted := 0
	for i, spec := range specs {
		fl, w := f.sendOneFlow(src, spec, rng, now)
		flows[i] = fl
		admitted += w
	}
	// Burn the injection-jitter draws the chunk fabric would make for
	// the first-window interleave: Intn's rejection sampling consumes a
	// draw count that depends on its argument, so the arguments must
	// match exactly.
	if f.cfg.InjectJitter > 0 && len(specs) > 1 {
		for remaining := admitted; remaining > 0; remaining-- {
			rng.Intn(remaining)
		}
	}
	return flows
}

// sendOneFlow admits one transfer to the analytic engine and returns
// the flow plus its first-window chunk count (the burst jitter burn;
// zero for loopback). Send calls it directly in flow mode so a single
// transfer skips the burst slices.
func (f *Fabric) sendOneFlow(src int, spec FlowSpec, rng *sim.RNG, now float64) (*Flow, int) {
	if spec.Src != src {
		panic("simnet: SendBurst specs must share src")
	}
	if spec.Bytes <= 0 {
		panic("simnet: flow bytes must be positive")
	}
	fm := f.flowEngine()
	fl := f.newFlow()
	fl.ID, fl.Spec, fl.Started, fl.FirstByte, fl.Finished = f.newFlowID(src), spec, now, -1, -1
	fl.window = f.sampleWindow(rng)
	f.flows[fl.ID] = fl
	if spec.Dst == src {
		// Loopback: memory-speed copy, propagation delay only.
		f.k.PostArgAfter(f.cfg.PropDelaySec, fm.completeFn, fl)
		return fl, 0
	}
	fl.route = f.Topology().Route(spec.Src, spec.Dst, spec.SrcPort, spec.DstPort)
	nchunks := int((spec.Bytes + f.cfg.ChunkBytes - 1) / f.cfg.ChunkBytes)
	w := fl.window
	if w > nchunks {
		w = nchunks
	}
	fm.startFlow(fl)
	return fl, w
}

// pathLinks assembles the engine link list for a flow from host src
// into the reusable scratch buffer (the engine copies it).
func (fm *flowMode) pathLinks(src, classLink int, fl *Flow) []int {
	links := fm.linksBuf[:0]
	if classLink >= 0 {
		links = append(links, classLink)
	}
	links = append(links, fm.egressLink[src])
	for _, l := range fl.route {
		links = append(links, fm.coreLink[l.ID])
	}
	links = append(links, fm.ingressLink[fl.Spec.Dst])
	fm.linksBuf = links
	return links
}

// startFlow registers one transfer with the analytic engine.
func (fm *flowMode) startFlow(fl *Flow) {
	src := fl.Spec.Src
	band, classLink := fm.classify(src, fl)
	fl.flowBand = band
	links := fm.pathLinks(src, classLink, fl)
	fl.flowLatency = fm.tailLatency(fl)
	fm.eng.AddFlow(flownet.FlowID(fl.ID), links, fm.egressLink[src], band,
		float64(fl.window), float64(fl.Spec.Bytes), fl)
}

// tailLatency is the store-and-forward pipeline-fill delay between the
// last byte clearing the source egress (when the engine's fluid demand
// reaches zero) and arriving at the destination: per downstream hop,
// one propagation delay plus one full-chunk serialization at that hop's
// healthy rate. Exact for an uncontended equal-rate path; an
// approximation when downstream hops are contended (the engine already
// stretches the bulk transfer, only this tail constant is frozen at
// send time).
func (fm *flowMode) tailLatency(fl *Flow) float64 {
	f := fm.f
	hopBytes := fl.Spec.Bytes
	if f.cfg.ChunkBytes < hopBytes {
		hopBytes = f.cfg.ChunkBytes
	}
	wire := float64(hopBytes) * f.cfg.WireOverhead
	ingress := f.Host(fl.Spec.Dst).Ingress
	if len(fl.route) == 0 {
		return f.cfg.PropDelaySec + wire/ingress.rateBytes
	}
	lat := float64(len(fl.route)+1) * f.cfg.Topology.HopDelaySec
	for _, l := range fl.route {
		lat += wire / l.port.rateBytes
	}
	return lat + wire/ingress.rateBytes
}

// flowDone fires inside the engine's completion event: the last byte
// has cleared the bottleneck; delivery completes after the frozen
// pipeline-fill tail.
func (fm *flowMode) flowDone(id flownet.FlowID, tag any) {
	fl := tag.(*Flow)
	fm.f.k.PostArgAfter(fl.flowLatency, fm.completeFn, fl)
}

// completeAnalyticFlow finishes a flow in flow mode, emitting the same
// trace event and completion callback as the chunk fabric's last-chunk
// delivery.
func (f *Fabric) completeAnalyticFlow(fl *Flow) {
	now := f.k.Now()
	if fl.FirstByte < 0 {
		// Approximate: the analytic model does not track the first
		// chunk's arrival; it lands one pipeline-fill before the last.
		fl.FirstByte = now
	}
	fl.deliveredBytes = fl.Spec.Bytes
	fl.Finished = now
	delete(f.flows, fl.ID)
	f.completed++
	if fm := f.flow; fm != nil && fl.Spec.Dst != fl.Spec.Src {
		m := fm.bandDone[fl.Spec.Src]
		if m == nil {
			m = make(map[int]int64)
			fm.bandDone[fl.Spec.Src] = m
		}
		m[fl.flowBand] += fl.Spec.Bytes
	}
	if f.Tracer != nil {
		f.Tracer.Emit(trace.Event{
			At: fl.Finished, Kind: trace.KindFlowDone,
			Job: fl.Spec.JobID, Host: fl.Spec.Dst, Worker: -1,
			Value:  fl.Finished - fl.Started,
			Detail: fmt.Sprintf("bytes=%d src=%d", fl.Spec.Bytes, fl.Spec.Src),
		})
	}
	if fl.Spec.OnComplete != nil {
		fl.Spec.OnComplete(fl)
	}
	if fl.Spec.Transient {
		f.releaseFlow(fl)
	}
}

// EgressReconfigured tells the analytic fabric that host's egress qdisc
// configuration changed (tc qdisc/class/filter command, or a direct
// SetEgressQdisc): in-flight flows from the host are reclassified in
// place and rates recompute. A no-op in chunk mode, where the qdisc
// itself is the mechanism.
func (f *Fabric) EgressReconfigured(host int) {
	fm := f.flow
	if fm == nil {
		return
	}
	fm.eng.ForEach(func(id flownet.FlowID, tag any) {
		fl := tag.(*Flow)
		if fl.Spec.Src != host {
			return
		}
		band, classLink := fm.classify(host, fl)
		fl.flowBand = band
		links := fm.pathLinks(host, classLink, fl)
		fm.eng.UpdateFlow(id, links, fm.egressLink[host], band, float64(fl.window))
	})
}

// FlowBandBytes returns, in flow mode, the cumulative payload bytes
// sent per egress priority band from host — the analytic analogue of
// the qdisc's per-band dequeued-bytes counters, which stay zero when no
// chunks exist. Returns nil in chunk mode (callers fall back to the
// qdisc counters).
func (f *Fabric) FlowBandBytes(host int) map[int]uint64 {
	fm := f.flow
	if fm == nil {
		return nil
	}
	fm.eng.Sync()
	m := make(map[int]uint64)
	for band, b := range fm.bandDone[host] {
		m[band] = uint64(b)
	}
	fm.eng.ForEach(func(id flownet.FlowID, tag any) {
		fl := tag.(*Flow)
		if fl.Spec.Src != host {
			return
		}
		if rem, ok := fm.eng.Remaining(id); ok {
			m[fl.flowBand] += uint64(float64(fl.Spec.Bytes) - rem)
		}
	})
	return m
}

// FlowEngineResolves returns how many times the analytic engine
// recomputed the allocation (0 in chunk mode) — a diagnostic for the
// rates-change-only-on-events contract.
func (f *Fabric) FlowEngineResolves() uint64 {
	if f.flow == nil {
		return 0
	}
	return f.flow.eng.Resolves()
}
