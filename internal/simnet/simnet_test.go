package simnet

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/trace"
)

func newFabric(t *testing.T, cfg Config, hosts int) (*sim.Kernel, *Fabric) {
	t.Helper()
	k := sim.NewKernel()
	f := New(k, sim.NewRNG(5), cfg)
	for i := 0; i < hosts; i++ {
		f.AddHost("h")
	}
	return k, f
}

func TestSingleFlowTiming(t *testing.T) {
	cfg := Config{
		LinkRateBps:     8e9, // 1 GB/s for round numbers
		PropDelaySec:    1e-3,
		ChunkBytes:      1 << 20,
		WireOverhead:    1.0,
		MinWindowChunks: 4,
		MaxWindowChunks: 4,
	}
	k, f := newFabric(t, cfg, 2)
	var finished float64
	f.Send(FlowSpec{Src: 0, Dst: 1, Bytes: 4 << 20, OnComplete: func(fl *Flow) {
		finished = fl.Finished
	}})
	k.Run(nil)
	// 4 MB over 1 GB/s egress + 1 GB/s ingress pipelined by chunk:
	// egress finishes last chunk at 4 ms; +prop 1 ms; ingress adds one
	// chunk service (1 ms) after the last arrival: ~6 ms.
	want := 0.006
	if math.Abs(finished-want) > 5e-4 {
		t.Fatalf("flow finished at %v, want ~%v", finished, want)
	}
}

func TestFlowAccounting(t *testing.T) {
	k, f := newFabric(t, Config{}, 2)
	var got *Flow
	fl := f.Send(FlowSpec{Src: 0, Dst: 1, Bytes: 999_999, OnComplete: func(fl *Flow) { got = fl }})
	if f.ActiveFlows() != 1 {
		t.Fatal("active flows")
	}
	k.Run(nil)
	if got != fl || !fl.Done() {
		t.Fatal("completion callback")
	}
	if fl.Delivered() != 999_999 {
		t.Fatalf("delivered %d", fl.Delivered())
	}
	if fl.FirstByte < 0 || fl.FirstByte > fl.Finished {
		t.Fatalf("first byte %v finished %v", fl.FirstByte, fl.Finished)
	}
	if f.ActiveFlows() != 0 || f.CompletedFlows() != 1 {
		t.Fatal("fabric accounting")
	}
}

func TestLoopbackBypassesNIC(t *testing.T) {
	k, f := newFabric(t, Config{}, 2)
	done := false
	f.Send(FlowSpec{Src: 0, Dst: 0, Bytes: 10 << 20, OnComplete: func(fl *Flow) { done = true }})
	k.Run(nil)
	if !done {
		t.Fatal("loopback flow never completed")
	}
	if f.Host(0).Egress.Bytes() != 0 {
		t.Fatal("loopback used the NIC")
	}
}

func TestBurstWorkConservation(t *testing.T) {
	k, f := newFabric(t, Config{}, 4)
	var specs []FlowSpec
	total := int64(0)
	for d := 1; d < 4; d++ {
		for i := 0; i < 5; i++ {
			b := int64(1+i) * 100_000
			total += b
			specs = append(specs, FlowSpec{Src: 0, Dst: d, Bytes: b})
		}
	}
	flows := f.SendBurst(0, specs)
	k.Run(nil)
	var delivered int64
	for _, fl := range flows {
		if !fl.Done() {
			t.Fatal("flow incomplete")
		}
		delivered += fl.Delivered()
	}
	if delivered != total {
		t.Fatalf("delivered %d of %d", delivered, total)
	}
	if f.Host(0).Egress.Bytes() != total {
		t.Fatalf("egress bytes %d", f.Host(0).Egress.Bytes())
	}
}

func TestWindowProportionalShare(t *testing.T) {
	// Two flows, windows 1 and 4, fully backlogged on one egress: the
	// window-4 flow must finish well before the window-1 flow.
	cfg := Config{
		MinWindowChunks: 1,
		MaxWindowChunks: 1,
		InjectJitter:    0,
	}
	k := sim.NewKernel()
	f := New(k, sim.NewRNG(5), cfg)
	f.AddHost("src")
	f.AddHost("d1")
	f.AddHost("d2")
	// Hand-build flows with explicit windows via WindowWeights trick:
	// instead, send two bursts with different configured windows by
	// using two fabrics would be awkward — here we exploit sampleWindow
	// determinism: with Min=Max=1 both get window 1; then grow one
	// flow's share by splitting it across 4 parallel flows (same dst),
	// the aggregate behaving like window 4.
	bytes := int64(8 << 20)
	var slowDone, fastDone float64
	f.Send(FlowSpec{Src: 0, Dst: 1, Bytes: bytes, OnComplete: func(fl *Flow) { slowDone = fl.Finished }})
	per := bytes / 4
	fast := 0
	for i := 0; i < 4; i++ {
		f.Send(FlowSpec{Src: 0, Dst: 2, Bytes: per, OnComplete: func(fl *Flow) {
			fast++
			if fast == 4 {
				fastDone = fl.Finished
			}
		}})
	}
	k.Run(nil)
	if fastDone >= slowDone {
		t.Fatalf("4x window share finished at %v, single at %v", fastDone, slowDone)
	}
}

func TestQdiscReplacementMidFlight(t *testing.T) {
	k, f := newFabric(t, Config{}, 3)
	done := 0
	var specs []FlowSpec
	for d := 1; d < 3; d++ {
		for i := 0; i < 10; i++ {
			specs = append(specs, FlowSpec{Src: 0, Dst: d, Bytes: 2 << 20,
				OnComplete: func(*Flow) { done++ }})
		}
	}
	f.SendBurst(0, specs)
	// Swap the qdisc several times while the burst is in flight.
	for i := 1; i <= 3; i++ {
		i := i
		k.Schedule(float64(i)*0.002, func() {
			h := NewHTBForTest(f.Host(0).Egress.RateBytes())
			f.Host(0).SetEgressQdisc(h)
		})
	}
	k.Run(nil)
	if done != len(specs) {
		t.Fatalf("lost flows across qdisc replacement: %d of %d", done, len(specs))
	}
}

// NewHTBForTest builds an htb with one catch-all class, exercising the
// drain path against a shaped qdisc.
func NewHTBForTest(linkRate float64) qdisc.Qdisc {
	h := qdisc.NewHTB(linkRate, 0)
	if err := h.AddClass(0, qdisc.HTBClassConfig{Rate: 125_000, Ceil: linkRate}); err != nil {
		panic(err)
	}
	return h
}

func TestIngressSerialization(t *testing.T) {
	// Two senders each push 8 MB to the same receiver: the receiver's
	// ingress serializes, so total time ~= 2x one transfer.
	cfg := Config{LinkRateBps: 8e9, WireOverhead: 1.0, PropDelaySec: 1e-6}
	k, f := newFabric(t, cfg, 3)
	var last float64
	for src := 0; src < 2; src++ {
		f.Send(FlowSpec{Src: src, Dst: 2, Bytes: 8 << 20, OnComplete: func(fl *Flow) {
			if fl.Finished > last {
				last = fl.Finished
			}
		}})
	}
	k.Run(nil)
	oneTransfer := float64(8<<20) / 1e9
	if last < 1.8*oneTransfer {
		t.Fatalf("ingress did not serialize: last %v, one transfer %v", last, oneTransfer)
	}
	if got := f.Host(2).Ingress.Bytes(); got != 16<<20 {
		t.Fatalf("ingress bytes %d", got)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func() []float64 {
		k := sim.NewKernel()
		f := New(k, sim.NewRNG(33), Config{})
		for i := 0; i < 4; i++ {
			f.AddHost("h")
		}
		var out []float64
		var specs []FlowSpec
		for d := 1; d < 4; d++ {
			for i := 0; i < 6; i++ {
				specs = append(specs, FlowSpec{Src: 0, Dst: d, Bytes: 3 << 20,
					OnComplete: func(fl *Flow) { out = append(out, fl.Finished) }})
			}
		}
		f.SendBurst(0, specs)
		k.Run(nil)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different completion counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different timings")
		}
	}
}

func TestSendBurstPanics(t *testing.T) {
	k, f := newFabric(t, Config{}, 2)
	_ = k
	for _, spec := range []FlowSpec{
		{Src: 1, Dst: 0, Bytes: 100}, // src mismatch with burst src
		{Src: 0, Dst: 1, Bytes: 0},   // no bytes
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("spec %+v accepted", spec)
				}
			}()
			f.SendBurst(0, []FlowSpec{spec})
		}()
	}
}

func TestHostOutOfRangePanics(t *testing.T) {
	_, f := newFabric(t, Config{}, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range host accepted")
		}
	}()
	f.Host(5)
}

func TestConfigDefaults(t *testing.T) {
	_, f := newFabric(t, Config{}, 1)
	cfg := f.Config()
	if cfg.LinkRateBps != 10e9 || cfg.ChunkBytes != 256*1024 {
		t.Fatalf("defaults %+v", cfg)
	}
	if cfg.WireOverhead != 1.25 {
		t.Fatalf("wire overhead default %v", cfg.WireOverhead)
	}
	if len(cfg.WindowWeights) == 0 {
		t.Fatal("window weights default missing")
	}
	if f.NumHosts() != 1 || len(f.Hosts()) != 1 {
		t.Fatal("hosts")
	}
}

func TestSampleWindowDistribution(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, sim.NewRNG(9), Config{WindowWeights: []float64{0, 1, 0, 1}})
	f.AddHost("a")
	f.AddHost("b")
	counts := map[int]int{}
	for i := 0; i < 400; i++ {
		fl := f.Send(FlowSpec{Src: 0, Dst: 1, Bytes: 100})
		counts[fl.Window()]++
	}
	k.Run(nil)
	if counts[1] != 0 || counts[3] != 0 {
		t.Fatalf("zero-weight windows drawn: %v", counts)
	}
	if counts[2] < 100 || counts[4] < 100 {
		t.Fatalf("weighted windows skewed: %v", counts)
	}
}

// Property: every flow in a random burst completes with exactly its
// byte count, regardless of sizes and destinations.
func TestBurstCompletionProperty(t *testing.T) {
	f := func(seed int64, sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 40 {
			sizes = sizes[:40]
		}
		k := sim.NewKernel()
		fab := New(k, sim.NewRNG(seed), Config{})
		for i := 0; i < 5; i++ {
			fab.AddHost("h")
		}
		var specs []FlowSpec
		for i, s := range sizes {
			specs = append(specs, FlowSpec{
				Src: 0, Dst: 1 + i%4, Bytes: int64(s) + 1,
			})
		}
		flows := fab.SendBurst(0, specs)
		k.MaxEvents = 10_000_000
		k.Run(nil)
		for i, fl := range flows {
			if !fl.Done() || fl.Delivered() != int64(sizes[i])+1 {
				return false
			}
		}
		return fab.ActiveFlows() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowTracerEmitsCompletion(t *testing.T) {
	k, f := newFabric(t, Config{}, 2)
	buf := &trace.Buffer{}
	f.Tracer = buf
	f.Send(FlowSpec{Src: 0, Dst: 1, Bytes: 1 << 20, JobID: 3})
	k.Run(nil)
	events := buf.Filter(func(e trace.Event) bool { return e.Kind == trace.KindFlowDone })
	if len(events) != 1 {
		t.Fatalf("flow_done events %d", len(events))
	}
	e := events[0]
	if e.Job != 3 || e.Host != 1 || e.Value <= 0 {
		t.Fatalf("event %+v", e)
	}
}

func TestTBFEgressEndToEnd(t *testing.T) {
	// A TBF-shaped egress drives the port's future-wakeup path: the
	// device must sleep until tokens refill rather than spin or stall.
	cfg := Config{LinkRateBps: 8e9, WireOverhead: 1.0}
	k, f := newFabric(t, cfg, 2)
	rate := 50e6 // 50 MB/s shaping on a 1 GB/s link
	f.Host(0).SetEgressQdisc(qdisc.NewTBF(rate, 512<<10, 0))
	var finished float64
	bytes := int64(16 << 20)
	f.Send(FlowSpec{Src: 0, Dst: 1, Bytes: bytes, OnComplete: func(fl *Flow) {
		finished = fl.Finished
	}})
	k.Run(nil)
	want := float64(bytes) / rate
	if finished < 0.8*want {
		t.Fatalf("tbf egress finished at %v, want >= %v", finished, 0.8*want)
	}
	if f.Host(0).Egress.Qdisc().Kind() != "tbf" {
		t.Fatal("qdisc accessor")
	}
	if f.Host(0).Egress.BusyTime() <= 0 || f.Host(0).Egress.Chunks() == 0 {
		t.Fatal("port accounting")
	}
	if f.Host(0).Egress.QueuedBytes() != 0 {
		t.Fatal("backlog left after completion")
	}
	if f.Kernel() != k {
		t.Fatal("kernel accessor")
	}
}

func TestDeterministicInterleaveWithoutJitter(t *testing.T) {
	// InjectJitter 0 uses the round-robin merge: chunk injection order
	// must be exactly alternating across two equal flows.
	cfg := Config{InjectJitter: -1, MinWindowChunks: 8, MaxWindowChunks: 8}
	k := sim.NewKernel()
	f := New(k, sim.NewRNG(1), cfg)
	f.AddHost("src")
	f.AddHost("d1")
	f.AddHost("d2")
	specs := []FlowSpec{
		{Src: 0, Dst: 1, Bytes: 4 * 256 * 1024},
		{Src: 0, Dst: 2, Bytes: 4 * 256 * 1024},
	}
	flows := f.SendBurst(0, specs)
	// With equal windows and round-robin injection, both flows finish
	// within one chunk service time of each other.
	k.Run(nil)
	gap := flows[0].Finished - flows[1].Finished
	if gap < 0 {
		gap = -gap
	}
	chunkTime := 256 * 1024 * f.Config().WireOverhead / f.Host(0).Egress.RateBytes()
	if gap > 2.5*chunkTime {
		t.Fatalf("round-robin merge skewed: gap %v, chunk time %v", gap, chunkTime)
	}
}
