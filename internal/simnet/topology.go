package simnet

import (
	"fmt"

	"repro/internal/qdisc"
)

// This file makes the fabric behind the NIC ports pluggable. The paper's
// testbed is a single non-blocking switch, which the original simnet
// hard-coded: one propagation hop, host NICs the only contention points.
// A Topology generalizes that: it owns the fabric's internal ("core")
// links — each one a rate-limited Port draining a qdisc, exactly like a
// NIC — and answers route lookups. The flat topology has no core links
// and reproduces the ideal switch byte-for-byte; the leaf-spine topology
// adds two contended hops (leaf uplink, spine downlink) to every
// cross-rack flow, opening the in-network-contention regime that
// CASSINI-style placement work studies.

// TopologyKind names a fabric topology.
type TopologyKind string

const (
	// TopologyFlat is the paper's single non-blocking switch: every
	// host pair is one propagation hop apart and only the NICs contend.
	// It is the default and is behaviour-identical to the pre-topology
	// fabric.
	TopologyFlat TopologyKind = "flat"
	// TopologyLeafSpine is a two-tier Clos fabric: hosts partition into
	// racks, each rack's leaf switch connects to every spine, and
	// cross-rack flows traverse a leaf uplink and a spine downlink —
	// both modelled as contended, rate-limited Ports. Flows pick their
	// spine by a deterministic ECMP flow hash.
	TopologyLeafSpine TopologyKind = "leafspine"
)

// TopologyError is a typed topology-configuration error, mirroring the
// fabric's Config validation but carrying the offending field so tests
// and callers can match on it with errors.As.
type TopologyError struct {
	Field  string // the TopologyConfig field at fault
	Reason string
}

// Error implements error.
func (e *TopologyError) Error() string {
	return fmt.Sprintf("simnet: topology %s: %s", e.Field, e.Reason)
}

func topoErrf(field, format string, args ...any) *TopologyError {
	return &TopologyError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// TopologyConfig selects and sizes the fabric topology. The zero value
// is the flat (ideal switch) topology.
type TopologyConfig struct {
	// Kind picks the topology ("" = flat).
	Kind TopologyKind
	// Racks is the number of racks (= leaf switches) in a leaf-spine
	// fabric. Hosts must divide evenly into racks: host h lives in rack
	// h / (hosts/Racks). Required (>= 1) when Kind is leafspine.
	Racks int
	// UplinksPerLeaf is how many spines each leaf connects to (default
	// 2). Cross-rack flows are ECMP-hashed over the uplinks.
	UplinksPerLeaf int
	// Oversubscription is the rack's host bandwidth divided by its
	// total uplink bandwidth (default 1, non-blocking). Each uplink and
	// downlink serves at hostsPerRack*LinkRate/(UplinksPerLeaf*ratio)
	// bytes/sec, so 2 means cross-rack flows compete for half the
	// bandwidth the hosts can offer — the classic oversubscribed core.
	Oversubscription float64
	// HopDelaySec is the per-segment propagation delay on multi-hop
	// routes (default Config.PropDelaySec). A cross-rack leaf-spine
	// path has three segments: NIC->leaf uplink, uplink->downlink,
	// downlink->NIC.
	HopDelaySec float64
}

// Validate reports static configuration errors (those detectable
// without knowing the host count). All errors are *TopologyError.
func (tc TopologyConfig) Validate() error {
	switch tc.Kind {
	case "", TopologyFlat, TopologyLeafSpine:
	default:
		return topoErrf("Kind", "unknown topology %q", tc.Kind)
	}
	if tc.Racks < 0 {
		return topoErrf("Racks", "%d is negative", tc.Racks)
	}
	if tc.Kind == TopologyLeafSpine && tc.Racks < 1 {
		return topoErrf("Racks", "leafspine needs Racks >= 1, got %d", tc.Racks)
	}
	if tc.UplinksPerLeaf < 0 {
		return topoErrf("UplinksPerLeaf", "%d is negative", tc.UplinksPerLeaf)
	}
	if tc.Oversubscription < 0 {
		return topoErrf("Oversubscription", "%g is negative", tc.Oversubscription)
	}
	if tc.HopDelaySec < 0 {
		return topoErrf("HopDelaySec", "%g is negative", tc.HopDelaySec)
	}
	return nil
}

// ValidateFor additionally checks the host-count-dependent assumptions;
// callers that know the cluster size (e.g. cluster.NewTestbed) should
// use it to surface errors before the fabric panics at build time.
func (tc TopologyConfig) ValidateFor(numHosts int) error {
	if err := tc.Validate(); err != nil {
		return err
	}
	if tc.Kind != TopologyLeafSpine {
		return nil
	}
	if numHosts < 1 {
		return topoErrf("Racks", "leafspine needs >= 1 host, got %d", numHosts)
	}
	if tc.Racks > numHosts {
		return topoErrf("Racks", "%d racks exceed %d hosts", tc.Racks, numHosts)
	}
	if numHosts%tc.Racks != 0 {
		return topoErrf("Racks", "%d hosts do not divide evenly into %d racks",
			numHosts, tc.Racks)
	}
	return nil
}

func (tc *TopologyConfig) fillDefaults(propDelaySec float64) {
	if tc.Kind == "" {
		tc.Kind = TopologyFlat
	}
	if tc.UplinksPerLeaf <= 0 {
		tc.UplinksPerLeaf = 2
	}
	if tc.Oversubscription <= 0 {
		tc.Oversubscription = 1
	}
	if tc.HopDelaySec <= 0 {
		tc.HopDelaySec = propDelaySec
	}
}

// RackOfHost returns the rack of a host under this config without
// building a fabric — placement code uses it to reason about a topology
// before any simulation exists. The flat topology is one rack.
func (tc TopologyConfig) RackOfHost(host, numHosts int) int {
	if tc.Kind != TopologyLeafSpine || tc.Racks < 1 || numHosts < tc.Racks {
		return 0
	}
	return host / (numHosts / tc.Racks)
}

// NumRacksFor returns the rack count for a cluster of numHosts hosts.
func (tc TopologyConfig) NumRacksFor(numHosts int) int {
	if tc.Kind != TopologyLeafSpine || tc.Racks < 1 {
		return 1
	}
	return tc.Racks
}

// Link is one contended core link of the fabric (a leaf uplink or spine
// downlink in the leaf-spine topology). It is built from the same Port
// machinery as host NICs, so qdiscs, band counters and fault
// detach/reattach all work on core links unchanged.
type Link struct {
	// ID is the link's index in the fabric's CoreLinks slice; fault
	// plans address links by it.
	ID int
	// Name is a human-readable identity ("leaf0->spine1" /
	// "spine1->leaf2").
	Name string
	// rack is the rack whose traffic the link carries exclusively: the
	// source rack for an uplink, the destination rack for a downlink.
	// Shard assignment keys on it — a link belongs to its rack's shard.
	rack int
	port *Port
}

// Rack returns the rack the link serves (uplink source / downlink
// destination rack).
func (l *Link) Rack() int { return l.rack }

// Port returns the link's rate-limited server. SetDown, SetRateFactor
// and Qdisc stats all behave exactly as on a host NIC port.
func (l *Link) Port() *Port { return l.port }

// Topology is the routed fabric behind the NIC ports: a route lookup
// over per-link contended Ports plus a per-hop delay (held in
// TopologyConfig.HopDelaySec). Implementations are built once, after
// all hosts exist, and are immutable afterwards.
type Topology interface {
	// Kind names the topology.
	Kind() TopologyKind
	// Links returns the core links in ID order (empty for flat).
	Links() []*Link
	// Route returns the core links, in traversal order, that a flow
	// from src to dst crosses. An empty route is a single-hop path
	// (same switch or same rack): the chunk goes straight from the
	// source NIC to the destination NIC after one propagation delay.
	// Routing is per-flow (ECMP by flow hash) and deterministic: the
	// same four-tuple always takes the same path, independent of seed
	// or call order.
	Route(src, dst, srcPort, dstPort int) []*Link
	// RackOf returns the host's rack (always 0 for flat).
	RackOf(host int) int
	// NumRacks returns the rack count (1 for flat).
	NumRacks() int
}

// --- flat -----------------------------------------------------------

// flatTopology is the ideal single switch: no core links, one rack.
type flatTopology struct{}

func (flatTopology) Kind() TopologyKind                 { return TopologyFlat }
func (flatTopology) Links() []*Link                     { return nil }
func (flatTopology) Route(src, dst, sp, dp int) []*Link { return nil }
func (flatTopology) RackOf(host int) int                { return 0 }
func (flatTopology) NumRacks() int                      { return 1 }

// --- leaf-spine -----------------------------------------------------

// leafSpine is a two-tier Clos fabric. up[r][s] is rack r's uplink to
// spine s; down[r][s] is spine s's downlink into rack r. A cross-rack
// flow hashes onto spine s and traverses up[srcRack][s] then
// down[dstRack][s]; same-rack flows stay inside the non-blocking leaf.
type leafSpine struct {
	cfg          TopologyConfig
	hostsPerRack int
	links        []*Link
	up           [][]*Link
	down         [][]*Link
}

func newLeafSpine(f *Fabric, cfg TopologyConfig) *leafSpine {
	numHosts := f.NumHosts()
	if err := cfg.ValidateFor(numHosts); err != nil {
		panic(err)
	}
	t := &leafSpine{cfg: cfg, hostsPerRack: numHosts / cfg.Racks}
	// Each uplink/downlink carries an equal ECMP share of the rack's
	// core bandwidth: hostBW / (uplinks * oversubscription).
	rackHostBytes := float64(t.hostsPerRack) * f.cfg.LinkRateBps / 8
	linkRate := rackHostBytes / (float64(cfg.UplinksPerLeaf) * cfg.Oversubscription)
	mk := func(name string, rack int) *Link {
		l := &Link{ID: len(t.links), Name: name, rack: rack}
		l.port = newLinkPort(f, l, linkRate, qdisc.NewPFIFO(0))
		t.links = append(t.links, l)
		return l
	}
	t.up = make([][]*Link, cfg.Racks)
	t.down = make([][]*Link, cfg.Racks)
	for r := 0; r < cfg.Racks; r++ {
		t.up[r] = make([]*Link, cfg.UplinksPerLeaf)
		t.down[r] = make([]*Link, cfg.UplinksPerLeaf)
		for s := 0; s < cfg.UplinksPerLeaf; s++ {
			t.up[r][s] = mk(fmt.Sprintf("leaf%d->spine%d", r, s), r)
			t.down[r][s] = mk(fmt.Sprintf("spine%d->leaf%d", s, r), r)
		}
	}
	return t
}

func (t *leafSpine) Kind() TopologyKind { return TopologyLeafSpine }
func (t *leafSpine) Links() []*Link     { return t.links }
func (t *leafSpine) RackOf(host int) int {
	return host / t.hostsPerRack
}
func (t *leafSpine) NumRacks() int { return t.cfg.Racks }

// Route ECMP-hashes the flow's four-tuple onto a spine. The hash is a
// pure function of the tuple — no RNG, no per-run state — so routing is
// stable across runs and seeds, and every chunk of a flow (including
// retransmissions) takes the same path, as flow-hash ECMP does.
func (t *leafSpine) Route(src, dst, srcPort, dstPort int) []*Link {
	rs, rd := t.RackOf(src), t.RackOf(dst)
	if rs == rd {
		return nil
	}
	s := int(flowHash(src, dst, srcPort, dstPort) % uint64(t.cfg.UplinksPerLeaf))
	return []*Link{t.up[rs][s], t.down[rd][s]}
}

// flowHash is FNV-1a over the flow four-tuple.
func flowHash(vals ...int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range vals {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			h ^= u & 0xff
			h *= prime64
			u >>= 8
		}
	}
	return h
}

// buildTopology constructs the configured topology for the fabric's
// current host set.
func buildTopology(f *Fabric) Topology {
	switch f.cfg.Topology.Kind {
	case "", TopologyFlat:
		return flatTopology{}
	case TopologyLeafSpine:
		return newLeafSpine(f, f.cfg.Topology)
	}
	panic(topoErrf("Kind", "unknown topology %q", f.cfg.Topology.Kind))
}
