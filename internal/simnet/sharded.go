package simnet

import (
	"fmt"

	"repro/internal/qdisc"
	"repro/internal/sim"
)

// This file shards one fabric simulation across the kernels of a
// sim.ShardedKernel. The partition is route-aware: on the flat topology
// hosts split into contiguous blocks and every cross-block flow crosses
// shards at its single propagation hop; on leaf-spine, racks are the
// atomic unit — a rack's hosts, its leaf uplinks and the spine
// downlinks into it all belong to the rack's shard, so a cross-shard
// flow runs its egress NIC and uplink on the source shard and is handed
// off exactly once, at the uplink->downlink segment inside the core.
// Both handoffs take one fixed propagation delay (PropDelaySec / the
// topology's HopDelaySec), which is therefore the conservative
// lookahead: no shard can affect another sooner.
//
// Determinism across shard counts additionally requires
// Config.PerHostRNG: with per-host random streams and flow-ID spaces, a
// replica that simulates only its own hosts' sends draws exactly what
// the single-kernel run draws. NewSharded enforces it.

// ShardPlan is a route-aware assignment of a fabric's hosts (and, on
// leaf-spine, racks and core links) to shards, plus the conservative
// lookahead the partition supports.
type ShardPlan struct {
	numShards int
	lookahead float64
	hostShard []int
	rackShard []int
}

// PlanShards partitions a numHosts-host fabric under cfg into shards.
// Leaf-spine fabrics split on rack boundaries (shards must not exceed
// racks); flat fabrics split hosts into contiguous blocks. The returned
// plan's Lookahead is the minimum cross-shard latency: the per-hop core
// delay on leaf-spine, the propagation delay on flat.
func PlanShards(cfg Config, numHosts, shards int) (*ShardPlan, error) {
	if shards < 1 {
		return nil, fmt.Errorf("simnet: shard plan needs >= 1 shard, got %d", shards)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Mode == ModeFlow && shards > 1 {
		return nil, fmt.Errorf("simnet: flow mode runs on a single kernel (the analytic engine recomputes global rates); use shards=1 or Mode=chunk")
	}
	cfg.fillDefaults()
	p := &ShardPlan{numShards: shards, hostShard: make([]int, numHosts)}
	if cfg.Topology.Kind == TopologyLeafSpine {
		if err := cfg.Topology.ValidateFor(numHosts); err != nil {
			return nil, err
		}
		racks := cfg.Topology.Racks
		if shards > racks {
			return nil, fmt.Errorf("simnet: %d shards exceed %d racks (racks are the atomic shard unit)",
				shards, racks)
		}
		p.lookahead = cfg.Topology.HopDelaySec
		p.rackShard = splitContiguous(racks, shards)
		for h := 0; h < numHosts; h++ {
			p.hostShard[h] = p.rackShard[cfg.Topology.RackOfHost(h, numHosts)]
		}
		return p, nil
	}
	if shards > numHosts {
		return nil, fmt.Errorf("simnet: %d shards exceed %d hosts", shards, numHosts)
	}
	p.lookahead = cfg.PropDelaySec
	p.hostShard = splitContiguous(numHosts, shards)
	p.rackShard = []int{0}
	return p, nil
}

// splitContiguous assigns n units to shards in contiguous, balanced
// blocks (the first n%shards blocks get one extra unit).
func splitContiguous(n, shards int) []int {
	out := make([]int, n)
	q, r := n/shards, n%shards
	u := 0
	for s := 0; s < shards; s++ {
		size := q
		if s < r {
			size++
		}
		for i := 0; i < size; i++ {
			out[u] = s
			u++
		}
	}
	return out
}

// NumShards returns the shard count.
func (p *ShardPlan) NumShards() int { return p.numShards }

// Lookahead returns the minimum cross-shard latency in seconds.
func (p *ShardPlan) Lookahead() float64 { return p.lookahead }

// HostShard returns the shard owning host h.
func (p *ShardPlan) HostShard(h int) int { return p.hostShard[h] }

// RackShard returns the shard owning rack r (always 0 on flat).
func (p *ShardPlan) RackShard(r int) int { return p.rackShard[r] }

// LinkShard returns the shard owning a core link: its rack's shard.
func (p *ShardPlan) LinkShard(l *Link) int { return p.rackShard[l.rack] }

// shardBinding attaches a replica fabric to its shard.
type shardBinding struct {
	id   int
	plan *ShardPlan
	sf   *ShardedFabric
}

// handoffToHost ships a chunk to the destination host's shard, arriving
// at its ingress NIC after delay (>= the plan lookahead by
// construction: both handoff segments are exactly one propagation hop).
func (s *shardBinding) handoffToHost(dst int, c *qdisc.Chunk, delay float64) {
	sf := s.sf
	owner := s.plan.HostShard(dst)
	at := sf.reps[s.id].k.Now() + delay
	sf.sk.Send(s.id, owner, at, 0, func() {
		sf.reps[owner].Host(dst).Ingress.Inject(c)
	})
}

// handoffToLink ships a chunk to the shard owning core link linkID
// (identical IDs on every replica — topologies are built identically).
func (s *shardBinding) handoffToLink(owner, linkID int, c *qdisc.Chunk, delay float64) {
	sf := s.sf
	at := sf.reps[s.id].k.Now() + delay
	sf.sk.Send(s.id, owner, at, 0, func() {
		sf.reps[owner].CoreLink(linkID).port.Inject(c)
	})
}

// retireFlow tells the source shard to drop a completed cross-shard
// flow from its registry. The deletion is pure bookkeeping, so its
// (lookahead-delayed) timing is unobservable to the simulation.
func (s *shardBinding) retireFlow(srcShard int, flowID uint64) {
	sf := s.sf
	at := sf.reps[s.id].k.Now() + sf.sk.Lookahead()
	sf.sk.Send(s.id, srcShard, at, 0, func() {
		delete(sf.reps[srcShard].flows, flowID)
	})
}

// ShardedFabric runs one network simulation partitioned across the
// shards of a sim.ShardedKernel. Every shard holds a full replica of
// the fabric (all hosts, same topology, same per-host seeds), but only
// the resources a shard owns under the plan ever carry traffic on it;
// chunks crossing the partition are exchanged through the kernel's
// conservative windows. With Config.PerHostRNG set (required), results
// are independent of the shard count: the same flows see the same
// windows, drops and completion times as on a single kernel.
type ShardedFabric struct {
	sk   *sim.ShardedKernel
	plan *ShardPlan
	reps []*Fabric
}

// NewSharded builds a sharded fabric of numHosts hosts over sk. Each
// replica derives its streams from the same seed, so per-host draws
// match across shard counts. cfg.PerHostRNG must be set; sk's shard
// count must match the plan's, and sk's lookahead must not exceed the
// plan's (cross-shard chunks travel exactly plan.Lookahead()).
func NewSharded(sk *sim.ShardedKernel, seed int64, cfg Config, numHosts int, plan *ShardPlan) *ShardedFabric {
	if !cfg.PerHostRNG {
		panic("simnet: sharded fabrics require Config.PerHostRNG (per-host streams are what make shard counts interchangeable)")
	}
	if cfg.Mode == ModeFlow && sk.NumShards() > 1 {
		panic("simnet: flow mode cannot be sharded; the analytic engine needs a single kernel")
	}
	if sk.NumShards() != plan.NumShards() {
		panic(fmt.Sprintf("simnet: kernel has %d shards, plan %d", sk.NumShards(), plan.NumShards()))
	}
	if sk.Lookahead() > plan.lookahead {
		panic(fmt.Sprintf("simnet: kernel lookahead %g exceeds plan lookahead %g",
			sk.Lookahead(), plan.lookahead))
	}
	sf := &ShardedFabric{sk: sk, plan: plan, reps: make([]*Fabric, sk.NumShards())}
	for s := range sf.reps {
		f := New(sk.Shard(s), sim.NewRNG(seed), cfg)
		for h := 0; h < numHosts; h++ {
			f.AddHost(fmt.Sprintf("host%d", h))
		}
		f.Topology()
		f.shard = &shardBinding{id: s, plan: plan, sf: sf}
		sf.reps[s] = f
	}
	return sf
}

// Plan returns the shard plan.
func (sf *ShardedFabric) Plan() *ShardPlan { return sf.plan }

// Kernel returns the sharded kernel the fabric runs on.
func (sf *ShardedFabric) Kernel() *sim.ShardedKernel { return sf.sk }

// Fabric returns shard s's replica. Mutations (qdiscs, drop
// probabilities, sends) must target the replica that owns the host
// under the plan.
func (sf *ShardedFabric) Fabric(s int) *Fabric { return sf.reps[s] }

// FabricFor returns the replica owning host h.
func (sf *ShardedFabric) FabricFor(h int) *Fabric { return sf.reps[sf.plan.HostShard(h)] }

// Send starts a flow on the replica owning its source host. Call it
// during setup or from events running on that host's shard.
func (sf *ShardedFabric) Send(spec FlowSpec) *Flow {
	return sf.FabricFor(spec.Src).Send(spec)
}

// Run advances the simulation until all shards drain or stop returns
// true (evaluated at window boundaries). It returns events fired.
func (sf *ShardedFabric) Run(stop func() bool) uint64 { return sf.sk.Run(stop) }

// CompletedFlows sums completed flows across shards (each flow counts
// once, on its destination's shard).
func (sf *ShardedFabric) CompletedFlows() uint64 {
	var n uint64
	for _, f := range sf.reps {
		n += f.completed
	}
	return n
}

// ActiveFlows sums in-flight flows across shards. A completed
// cross-shard flow leaves its source-side registry one lookahead after
// delivery, so the sum is exact whenever the fabric is idle.
func (sf *ShardedFabric) ActiveFlows() int {
	n := 0
	for _, f := range sf.reps {
		n += len(f.flows)
	}
	return n
}

// DroppedChunks sums injected chunk losses across shards (drops happen
// on the source shard only).
func (sf *ShardedFabric) DroppedChunks() uint64 {
	var n uint64
	for _, f := range sf.reps {
		n += f.droppedChunks
	}
	return n
}

// LinkStats returns per-core-link cumulative (bytes, busy seconds),
// summed across replicas. Exactly one replica serves traffic on any
// link, so the sums equal the single-kernel fabric's counters.
func (sf *ShardedFabric) LinkStats() (bytes []int64, busy []float64) {
	nLinks := len(sf.reps[0].CoreLinks())
	bytes = make([]int64, nLinks)
	busy = make([]float64, nLinks)
	for _, f := range sf.reps {
		for i, l := range f.CoreLinks() {
			bytes[i] += l.port.txBytes
			busy[i] += l.port.busyTime
		}
	}
	return bytes, busy
}
