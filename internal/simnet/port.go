package simnet

import (
	"fmt"

	"repro/internal/qdisc"
	"repro/internal/sim"
)

// Port is a rate-limited server draining a queueing discipline: one
// direction of a host NIC, or a core link inside a routed topology.
// Egress ports carry the configurable qdisc (where tc — and thus
// TensorLights — operates); ingress ports are fixed FIFO, matching
// Linux, where tc shapes only outbound traffic; link ports serve a
// topology-owned core link (host is nil there, link is set).
type Port struct {
	fabric *Fabric
	host   *Host
	link   *Link
	dir    string // "egress" | "ingress" | "link"

	rateBytes float64 // bytes/sec service rate
	q         qdisc.Qdisc

	// Fault state: a down port holds its queue without serving; a
	// degraded port serves at rateBytes*rateFactor. Both model NIC and
	// link-level failures injected by internal/faults.
	down       bool
	rateFactor float64

	busy bool
	wake *sim.Event
	// serveDone is the long-lived transmission-complete callback; built
	// once per port so serving a chunk allocates no closure.
	serveDone func(any)
	// flowLink is this port's link ID in the analytic flow engine; -1
	// until flow mode builds its link map (always -1 in chunk mode).
	flowLink int
	// Accounting for utilization measurements.
	txBytes  int64
	txChunks int64
	busyTime float64
}

func newPort(f *Fabric, h *Host, dir string, rateBytes float64, q qdisc.Qdisc) *Port {
	p := &Port{fabric: f, host: h, dir: dir, rateBytes: rateBytes, rateFactor: 1, q: q, flowLink: -1}
	p.serveDone = p.finishService
	return p
}

func newLinkPort(f *Fabric, l *Link, rateBytes float64, q qdisc.Qdisc) *Port {
	p := &Port{fabric: f, link: l, dir: "link", rateBytes: rateBytes, rateFactor: 1, q: q, flowLink: -1}
	p.serveDone = p.finishService
	return p
}

// Link returns the core link this port serves, or nil for a NIC port.
func (p *Port) Link() *Link { return p.link }

// Down reports whether the port is administratively down.
func (p *Port) Down() bool { return p.down }

// SetDown raises or lowers the port. While down the port stops serving;
// queued and newly arriving chunks are held (nothing is lost — the
// switch buffers toward a down NIC) and service resumes on the next
// kick after the port comes back up. A chunk already on the wire when
// the port goes down completes its transmission.
func (p *Port) SetDown(down bool) {
	if p.down == down {
		return
	}
	p.down = down
	p.notifyFlow()
	if !down {
		p.kick()
	}
}

// RateFactor returns the current service-rate multiplier (1 = healthy).
func (p *Port) RateFactor() float64 { return p.rateFactor }

// SetRateFactor degrades (or restores) the port's service rate: the
// effective rate becomes rateBytes*f. Used by fault injection to model
// a flapping or auto-negotiated-down NIC. f must be positive.
func (p *Port) SetRateFactor(f float64) {
	if f <= 0 {
		panic(fmt.Sprintf("simnet: rate factor must be positive, got %g", f))
	}
	p.rateFactor = f
	p.notifyFlow()
}

// Qdisc returns the port's queueing discipline.
func (p *Port) Qdisc() qdisc.Qdisc { return p.q }

// RateBytes returns the service rate in bytes/sec.
func (p *Port) RateBytes() float64 { return p.rateBytes }

// flowStats returns the analytic engine and this port's link when flow
// mode is active for the port, syncing the fluid state to now so the
// counters read current.
func (p *Port) flowStats() (*flowMode, int, bool) {
	fm := p.fabric.flow
	if fm == nil || p.flowLink < 0 {
		return nil, 0, false
	}
	fm.eng.Sync()
	return fm, p.flowLink, true
}

// Bytes returns cumulative bytes transmitted through the port.
func (p *Port) Bytes() int64 {
	if fm, l, ok := p.flowStats(); ok {
		return int64(fm.eng.LinkServedBytes(l) + 0.5)
	}
	return p.txBytes
}

// Chunks returns cumulative chunks transmitted through the port. In
// flow mode no chunks exist; the count is the served bytes divided by
// the chunk size, so chunk-rate metrics stay comparable across modes.
func (p *Port) Chunks() int64 {
	if fm, l, ok := p.flowStats(); ok {
		return int64(fm.eng.LinkServedBytes(l) / float64(p.fabric.cfg.ChunkBytes))
	}
	return p.txChunks
}

// BusyTime returns cumulative seconds the port spent serving chunks.
// In flow mode this is the integral of the link's utilization — the
// analytic analogue used by the same metrics.
func (p *Port) BusyTime() float64 {
	if fm, l, ok := p.flowStats(); ok {
		return fm.eng.LinkBusySeconds(l)
	}
	return p.busyTime
}

// QueuedBytes returns the current qdisc backlog in bytes. In flow mode
// it is the bytes still to be served across the port's link — note this
// counts whole remaining transfers, where the chunk fabric counts only
// window-admitted chunks.
func (p *Port) QueuedBytes() int64 {
	if fm, l, ok := p.flowStats(); ok {
		return int64(fm.eng.LinkBacklogBytes(l))
	}
	return p.q.BacklogBytes()
}

// replaceQdisc swaps disciplines, draining queued chunks into the new
// one in the old discipline's dequeue order. Losing a queued chunk here
// would deadlock whichever transfer owned it, so a drain that cannot
// make progress is a model bug and panics.
func (p *Port) replaceQdisc(q qdisc.Qdisc) {
	now := p.fabric.k.Now()
	old := p.q
	p.q = q
	if old != nil {
		for old.Len() > 0 {
			c := old.Dequeue(now)
			if c == nil {
				// Shaped qdisc gating a non-empty queue: advance its
				// virtual clock so tokens refill; no data may be lost
				// on reconfiguration.
				c = forceDrain(old, now)
			}
			q.Enqueue(c, now)
		}
	}
	p.kick()
}

// forceDrain extracts one chunk from a gated, non-empty qdisc by
// advancing its virtual clock until tokens refill.
func forceDrain(q qdisc.Qdisc, now float64) *qdisc.Chunk {
	at := q.ReadyAt(now)
	for i := 0; i < 64; i++ {
		if at >= qdisc.Never {
			break
		}
		if c := q.Dequeue(at); c != nil {
			return c
		}
		// Defensive: nudge past any residual floating-point gating.
		at = q.ReadyAt(at) + 1e-9*float64(int64(1)<<i)
	}
	panic(fmt.Sprintf("simnet: cannot drain %s qdisc with %d chunks queued",
		q.Kind(), q.Len()))
}

// enqueue inserts a chunk without kicking the server; callers batch
// enqueues then kick once.
func (p *Port) enqueue(c *qdisc.Chunk, now float64) {
	p.q.Enqueue(c, now)
}

// Inject enqueues a chunk and kicks the port (used by the switch for
// ingress delivery and by tests).
func (p *Port) Inject(c *qdisc.Chunk) {
	p.q.Enqueue(c, p.fabric.k.Now())
	p.kick()
}

// kick starts service if the port is up, idle and the qdisc can
// transmit.
func (p *Port) kick() {
	if p.busy || p.down {
		return
	}
	now := p.fabric.k.Now()
	at := p.q.ReadyAt(now)
	if at >= qdisc.Never {
		return
	}
	if at <= now {
		p.serveNext()
		return
	}
	// Gated by shaping: arrange a wakeup, replacing any earlier one.
	if p.wake != nil && p.wake.Pending() && p.wake.At() <= at {
		return
	}
	p.fabric.k.Cancel(p.wake)
	p.wake = p.fabric.k.Schedule(at, func() {
		p.wake = nil
		p.kick()
	})
}

// serveNext dequeues one chunk and transmits it.
func (p *Port) serveNext() {
	now := p.fabric.k.Now()
	c := p.q.Dequeue(now)
	if c == nil {
		p.kick() // re-evaluate gating
		return
	}
	p.busy = true
	if p.dir == "egress" {
		// The chunk left the qdisc: the owning socket may admit its
		// next chunk into the freed space.
		p.fabric.chunkDequeued(p, c)
	}
	service := float64(c.Bytes) * p.fabric.cfg.WireOverhead / (p.rateBytes * p.rateFactor)
	p.busyTime += service
	p.txBytes += c.Bytes
	p.txChunks++
	p.fabric.k.PostArgAfter(service, p.serveDone, c)
}

// finishService is the transmission-complete event (serveDone).
func (p *Port) finishService(a any) {
	p.busy = false
	p.finishChunk(a.(*qdisc.Chunk))
	p.kick()
}

// finishChunk routes a served chunk onward: egress hands to the fabric
// topology (a propagation delay then the destination ingress or the
// first core link of the flow's route), a core link forwards along the
// route, and ingress delivers to the flow. An egress chunk may be lost
// on the wire when fault injection has set a drop probability on the
// host; the sender then retransmits it after the retransmission
// timeout, as TCP would.
func (p *Port) finishChunk(c *qdisc.Chunk) {
	switch p.dir {
	case "egress":
		if pr := p.host.dropProb; pr > 0 && p.fabric.dropStream(p.host.ID).Float64() < pr {
			p.fabric.chunkLost(p, c)
			return
		}
		p.fabric.forwardFromEgress(c)
	case "link":
		p.fabric.forwardFromLink(c)
	default:
		p.fabric.chunkDelivered(c)
	}
}
