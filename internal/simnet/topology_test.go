package simnet

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func leafSpineFabric(t *testing.T, cfg Config, hosts int, seed int64) (*sim.Kernel, *Fabric) {
	t.Helper()
	k := sim.NewKernel()
	f := New(k, sim.NewRNG(seed), cfg)
	for i := 0; i < hosts; i++ {
		f.AddHost("h")
	}
	return k, f
}

func TestTopologyConfigValidation(t *testing.T) {
	cases := []struct {
		name      string
		cfg       TopologyConfig
		numHosts  int
		wantField string // "" = valid
	}{
		{"zero value is flat", TopologyConfig{}, 8, ""},
		{"explicit flat", TopologyConfig{Kind: TopologyFlat}, 8, ""},
		{"leafspine ok", TopologyConfig{Kind: TopologyLeafSpine, Racks: 2}, 8, ""},
		{"unknown kind", TopologyConfig{Kind: "torus"}, 8, "Kind"},
		{"negative racks", TopologyConfig{Racks: -1}, 8, "Racks"},
		{"leafspine zero racks", TopologyConfig{Kind: TopologyLeafSpine}, 8, "Racks"},
		{"racks exceed hosts", TopologyConfig{Kind: TopologyLeafSpine, Racks: 9}, 8, "Racks"},
		{"hosts not divisible", TopologyConfig{Kind: TopologyLeafSpine, Racks: 3}, 8, "Racks"},
		{"negative uplinks", TopologyConfig{Kind: TopologyLeafSpine, Racks: 2, UplinksPerLeaf: -1}, 8, "UplinksPerLeaf"},
		{"negative oversub", TopologyConfig{Kind: TopologyLeafSpine, Racks: 2, Oversubscription: -2}, 8, "Oversubscription"},
		{"negative hop delay", TopologyConfig{Kind: TopologyLeafSpine, Racks: 2, HopDelaySec: -1e-6}, 8, "HopDelaySec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.ValidateFor(tc.numHosts)
			if tc.wantField == "" {
				if err != nil {
					t.Fatalf("ValidateFor(%d) = %v, want nil", tc.numHosts, err)
				}
				return
			}
			var terr *TopologyError
			if !errors.As(err, &terr) {
				t.Fatalf("ValidateFor(%d) = %v, want *TopologyError", tc.numHosts, err)
			}
			if terr.Field != tc.wantField {
				t.Fatalf("error field %q, want %q (err: %v)", terr.Field, tc.wantField, terr)
			}
		})
	}
}

func TestFabricValidatesTopology(t *testing.T) {
	err := Config{Topology: TopologyConfig{Kind: "torus"}}.Validate()
	var terr *TopologyError
	if !errors.As(err, &terr) {
		t.Fatalf("Config.Validate = %v, want *TopologyError", err)
	}
	// Host-count-dependent errors surface when the topology is built.
	defer func() {
		r := recover()
		if _, ok := r.(*TopologyError); !ok {
			t.Fatalf("Topology() panic = %v, want *TopologyError", r)
		}
	}()
	_, f := leafSpineFabric(t, Config{
		Topology: TopologyConfig{Kind: TopologyLeafSpine, Racks: 3},
	}, 8, 1)
	f.Topology()
}

func TestFlatTopologyShape(t *testing.T) {
	_, f := leafSpineFabric(t, Config{}, 4, 1)
	topo := f.Topology()
	if topo.Kind() != TopologyFlat {
		t.Fatalf("default kind %q", topo.Kind())
	}
	if len(topo.Links()) != 0 || topo.NumRacks() != 1 || topo.RackOf(3) != 0 {
		t.Fatal("flat topology must have no links and one rack")
	}
	if r := topo.Route(0, 3, 100, 200); r != nil {
		t.Fatalf("flat route = %v, want nil", r)
	}
}

func TestLeafSpineShape(t *testing.T) {
	cfg := Config{
		LinkRateBps: 8e9, // 1 GB/s per host NIC
		Topology: TopologyConfig{
			Kind: TopologyLeafSpine, Racks: 3, UplinksPerLeaf: 2,
			Oversubscription: 2,
		},
	}
	_, f := leafSpineFabric(t, cfg, 12, 1)
	topo := f.Topology()
	if topo.NumRacks() != 3 {
		t.Fatalf("racks %d", topo.NumRacks())
	}
	// 3 racks x 2 uplinks, each with a paired downlink.
	if len(topo.Links()) != 12 {
		t.Fatalf("links %d, want 12", len(topo.Links()))
	}
	for i, l := range topo.Links() {
		if l.ID != i {
			t.Fatalf("link %d has ID %d", i, l.ID)
		}
		// 4 hosts/rack x 1 GB/s over 2 uplinks at 2:1 oversub = 1 GB/s.
		if got := l.Port().RateBytes(); math.Abs(got-1e9) > 1 {
			t.Fatalf("link %s rate %g, want 1e9", l.Name, got)
		}
	}
	if topo.RackOf(0) != 0 || topo.RackOf(4) != 1 || topo.RackOf(11) != 2 {
		t.Fatal("rack assignment")
	}
	// Same-rack routes stay inside the non-blocking leaf.
	if r := topo.Route(0, 3, 10, 20); r != nil {
		t.Fatalf("same-rack route %v, want nil", r)
	}
	// Cross-rack routes are exactly uplink then downlink.
	r := topo.Route(0, 4, 10, 20)
	if len(r) != 2 {
		t.Fatalf("cross-rack route %v, want 2 hops", r)
	}
	if r[0].Name[:4] != "leaf" || r[1].Name[:5] != "spine" {
		t.Fatalf("route order %s then %s", r[0].Name, r[1].Name)
	}
}

// TestECMPRoutingStable is the routing-determinism property: the route
// of a four-tuple is a pure function — identical across fabrics,
// independent of RNG seed and of how many other routes were looked up
// first.
func TestECMPRoutingStable(t *testing.T) {
	cfg := Config{Topology: TopologyConfig{
		Kind: TopologyLeafSpine, Racks: 4, UplinksPerLeaf: 3,
	}}
	_, fa := leafSpineFabric(t, cfg, 16, 1)
	_, fb := leafSpineFabric(t, cfg, 16, 999)
	ta, tb := fa.Topology(), fb.Topology()
	// Warm tb with unrelated lookups: order must not matter.
	for i := 0; i < 50; i++ {
		tb.Route(i%16, (i+7)%16, i, i*3)
	}
	routeKey := func(r []*Link) string {
		s := ""
		for _, l := range r {
			s += fmt.Sprintf("%d,", l.ID)
		}
		return s
	}
	prop := func(src, dst uint8, sp, dp uint16) bool {
		s, d := int(src)%16, int(dst)%16
		ra := ta.Route(s, d, int(sp), int(dp))
		rb := tb.Route(s, d, int(sp), int(dp))
		rb2 := tb.Route(s, d, int(sp), int(dp))
		return routeKey(ra) == routeKey(rb) && routeKey(rb) == routeKey(rb2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestECMPSpreadsAcrossSpines(t *testing.T) {
	cfg := Config{Topology: TopologyConfig{
		Kind: TopologyLeafSpine, Racks: 2, UplinksPerLeaf: 4,
	}}
	_, f := leafSpineFabric(t, cfg, 8, 1)
	topo := f.Topology()
	used := map[int]bool{}
	for port := 0; port < 64; port++ {
		r := topo.Route(0, 4, 5000+port, 6000)
		used[r[0].ID] = true
	}
	if len(used) < 3 {
		t.Fatalf("64 flows hashed onto only %d of 4 uplinks", len(used))
	}
}

// TestLinkByteConservation is the byte-conservation property: every
// byte a NIC sends cross-rack crosses exactly one uplink and one
// downlink, and same-rack bytes cross no core link.
func TestLinkByteConservation(t *testing.T) {
	cfg := Config{
		InjectJitter: 1,
		Topology: TopologyConfig{
			Kind: TopologyLeafSpine, Racks: 2, UplinksPerLeaf: 2,
			Oversubscription: 2,
		},
	}
	k, f := leafSpineFabric(t, cfg, 8, 42)
	topo := f.Topology()
	var crossBytes, sameBytes int64
	specs := []FlowSpec{
		{Src: 0, Dst: 5, SrcPort: 100, DstPort: 200, Bytes: 3 << 20},
		{Src: 0, Dst: 6, SrcPort: 101, DstPort: 201, Bytes: 5 << 20},
		{Src: 0, Dst: 2, SrcPort: 102, DstPort: 202, Bytes: 7 << 20},
		{Src: 0, Dst: 7, SrcPort: 103, DstPort: 203, Bytes: 1 << 19},
	}
	for _, s := range specs {
		if topo.RackOf(s.Src) != topo.RackOf(s.Dst) {
			crossBytes += s.Bytes
		} else {
			sameBytes += s.Bytes
		}
	}
	f.SendBurst(0, specs)
	f.Send(FlowSpec{Src: 6, Dst: 1, SrcPort: 104, DstPort: 204, Bytes: 2 << 20})
	crossBytes += 2 << 20
	k.Run(nil)
	var upBytes, downBytes int64
	for _, l := range topo.Links() {
		if l.Name[:4] == "leaf" {
			upBytes += l.Port().Bytes()
		} else {
			downBytes += l.Port().Bytes()
		}
	}
	if upBytes != crossBytes || downBytes != crossBytes {
		t.Fatalf("uplink bytes %d, downlink bytes %d, want %d each",
			upBytes, downBytes, crossBytes)
	}
	var nicBytes int64
	for _, h := range f.Hosts() {
		nicBytes += h.Egress.Bytes()
	}
	if nicBytes != crossBytes+sameBytes {
		t.Fatalf("NIC egress %d, want %d", nicBytes, crossBytes+sameBytes)
	}
}

// TestOversubscriptionSlowsCrossRack checks the core of the model:
// oversubscription binds only under contention, so two rack-0 senders
// sharing one 4:1-oversubscribed uplink finish ~2x slower cross-rack
// than same-rack, while at 1:1 cross-rack costs nothing.
func TestOversubscriptionSlowsCrossRack(t *testing.T) {
	run := func(oversub float64, dsts [2]int) float64 {
		cfg := Config{
			LinkRateBps:     8e9,
			WireOverhead:    1,
			MinWindowChunks: 4, MaxWindowChunks: 4,
			Topology: TopologyConfig{
				Kind: TopologyLeafSpine, Racks: 2, UplinksPerLeaf: 1,
				Oversubscription: oversub,
			},
		}
		k, f := leafSpineFabric(t, cfg, 8, 7)
		var last float64
		for i, src := range []int{0, 1} {
			f.Send(FlowSpec{Src: src, Dst: dsts[i], SrcPort: 100 + i, DstPort: 200,
				Bytes: 64 << 20, OnComplete: func(fl *Flow) {
					if fl.Finished > last {
						last = fl.Finished
					}
				}})
		}
		k.Run(nil)
		return last
	}
	same := run(4, [2]int{2, 3})
	cross1 := run(1, [2]int{5, 6})
	cross4 := run(4, [2]int{5, 6})
	if cross4 < 1.7*same {
		t.Fatalf("4:1 cross-rack JCT %v not ~2x same-rack %v", cross4, same)
	}
	if cross1 > 1.3*same {
		t.Fatalf("1:1 cross-rack JCT %v should be close to same-rack %v", cross1, same)
	}
}

// TestCoreLinkFaults exercises the Port fault machinery on a core link:
// a downed uplink holds traffic without losing it, and a degraded one
// stretches completion.
func TestCoreLinkFaults(t *testing.T) {
	cfg := Config{
		LinkRateBps:     8e9,
		WireOverhead:    1,
		MinWindowChunks: 4, MaxWindowChunks: 4,
		Topology: TopologyConfig{
			Kind: TopologyLeafSpine, Racks: 2, UplinksPerLeaf: 1,
		},
	}
	k, f := leafSpineFabric(t, cfg, 4, 7)
	up := f.CoreLink(0)
	up.Port().SetDown(true)
	var jct float64
	f.Send(FlowSpec{Src: 0, Dst: 3, SrcPort: 1, DstPort: 2, Bytes: 8 << 20,
		OnComplete: func(fl *Flow) { jct = fl.Finished }})
	k.PostAfter(0.5, func() { up.Port().SetDown(false) })
	k.Run(nil)
	if jct < 0.5 {
		t.Fatalf("flow finished at %v despite downed uplink until 0.5", jct)
	}
	if up.Port().Bytes() != 8<<20 {
		t.Fatalf("uplink carried %d bytes, want %d", up.Port().Bytes(), 8<<20)
	}
}

func TestAddHostAfterTopologyPanics(t *testing.T) {
	_, f := leafSpineFabric(t, Config{}, 2, 1)
	f.Topology()
	defer func() {
		if recover() == nil {
			t.Fatal("AddHost after Topology() should panic")
		}
	}()
	f.AddHost("late")
}
