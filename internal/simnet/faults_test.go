package simnet

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; "" = valid
	}{
		{"zero value", Config{}, ""},
		{"negative weight", Config{WindowWeights: []float64{0.5, -0.1}}, "WindowWeights[1]"},
		{"zero sum", Config{WindowWeights: []float64{0, 0}}, "sum"},
		{"zero entries ok", Config{WindowWeights: []float64{0, 1, 0, 1}}, ""},
		{"min over max", Config{MinWindowChunks: 5, MaxWindowChunks: 2}, "MinWindowChunks 5 > MaxWindowChunks 2"},
		{"min only ok", Config{MinWindowChunks: 8}, ""},
		{"negative rto", Config{RetransmitTimeoutSec: -1}, "RetransmitTimeoutSec"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted MinWindowChunks > MaxWindowChunks")
		}
	}()
	New(sim.NewKernel(), sim.NewRNG(1), Config{MinWindowChunks: 9, MaxWindowChunks: 1})
}

func TestNICDownDelaysButDeliversFlow(t *testing.T) {
	cfg := Config{
		LinkRateBps:     8e9,
		PropDelaySec:    1e-3,
		ChunkBytes:      1 << 20,
		WireOverhead:    1.0,
		MinWindowChunks: 4,
		MaxWindowChunks: 4,
	}
	k, f := newFabric(t, cfg, 2)
	var finished float64
	f.Send(FlowSpec{Src: 0, Dst: 1, Bytes: 4 << 20, OnComplete: func(fl *Flow) {
		finished = fl.Finished
	}})
	// Take host 0's NIC down from t=1ms to t=51ms: the flow (which
	// would finish at ~6ms, see TestSingleFlowTiming) stalls and
	// resumes, losing no data.
	h := f.Host(0)
	k.Schedule(1e-3, func() { h.SetNICDown(true) })
	k.Schedule(51e-3, func() { h.SetNICDown(false) })
	k.Run(nil)
	if finished == 0 {
		t.Fatal("flow never finished with a flapped NIC")
	}
	if finished < 51e-3 {
		t.Fatalf("flow finished at %v, before the NIC came back up", finished)
	}
	if finished > 60e-3 {
		t.Fatalf("flow finished at %v, long after recovery", finished)
	}
	if h.NICDown() {
		t.Fatal("NIC still reported down")
	}
}

func TestRateFactorSlowsService(t *testing.T) {
	cfg := Config{
		LinkRateBps:     8e9,
		PropDelaySec:    1e-6,
		ChunkBytes:      1 << 20,
		WireOverhead:    1.0,
		MinWindowChunks: 8,
		MaxWindowChunks: 8,
	}
	k, f := newFabric(t, cfg, 2)
	f.Host(0).Egress.SetRateFactor(0.1) // 10x slower egress
	var finished float64
	f.Send(FlowSpec{Src: 0, Dst: 1, Bytes: 4 << 20, OnComplete: func(fl *Flow) {
		finished = fl.Finished
	}})
	k.Run(nil)
	// Healthy egress drains 4MB in 4ms; at 0.1x it takes ~40ms.
	if finished < 35e-3 {
		t.Fatalf("flow finished at %v; degraded rate not applied", finished)
	}
	if f.Host(0).Egress.RateFactor() != 0.1 {
		t.Fatal("rate factor not recorded")
	}
}

func TestChunkDropRetransmitsAndDelivers(t *testing.T) {
	cfg := Config{
		LinkRateBps:          8e9,
		ChunkBytes:           64 << 10,
		WireOverhead:         1.0,
		MinWindowChunks:      2,
		MaxWindowChunks:      2,
		RetransmitTimeoutSec: 1e-3,
	}
	k, f := newFabric(t, cfg, 2)
	f.Host(0).SetChunkDropProb(0.3)
	var done int
	const bytes = 8 << 20
	fl := f.Send(FlowSpec{Src: 0, Dst: 1, Bytes: bytes, OnComplete: func(*Flow) { done++ }})
	k.Run(nil)
	if done != 1 || !fl.Done() {
		t.Fatal("lossy flow did not complete")
	}
	if fl.Delivered() != bytes {
		t.Fatalf("delivered %d of %d bytes", fl.Delivered(), bytes)
	}
	if f.DroppedChunks() == 0 {
		t.Fatal("no chunks dropped at p=0.3 over 128 chunks")
	}
}

func TestChunkDropDeterministicAcrossRuns(t *testing.T) {
	run := func() (float64, uint64) {
		k := sim.NewKernel()
		f := New(k, sim.NewRNG(42), Config{
			ChunkBytes: 64 << 10, MinWindowChunks: 2, MaxWindowChunks: 2,
		})
		f.AddHost("a")
		f.AddHost("b")
		f.Host(0).SetChunkDropProb(0.25)
		var finished float64
		f.Send(FlowSpec{Src: 0, Dst: 1, Bytes: 4 << 20, OnComplete: func(fl *Flow) {
			finished = fl.Finished
		}})
		k.Run(nil)
		return finished, f.DroppedChunks()
	}
	t1, d1 := run()
	t2, d2 := run()
	if t1 != t2 || d1 != d2 {
		t.Fatalf("same seed diverged: (%v,%d) vs (%v,%d)", t1, d1, t2, d2)
	}
	if d1 == 0 {
		t.Fatal("expected drops at p=0.25")
	}
}

func TestDropStreamDoesNotPerturbHealthyRuns(t *testing.T) {
	// A run with drop probability 0 must be byte-identical to the
	// pre-fault-injection behaviour: the drop RNG is a separate stream
	// and is never consulted when no drop probability is set.
	run := func(touchDropHost bool) float64 {
		k := sim.NewKernel()
		f := New(k, sim.NewRNG(7), Config{InjectJitter: 1})
		f.AddHost("a")
		f.AddHost("b")
		f.AddHost("c")
		if touchDropHost {
			f.Host(2).SetChunkDropProb(0.5) // host 2 sends nothing
		}
		var last float64
		specs := []FlowSpec{
			{Src: 0, Dst: 1, Bytes: 3 << 20, OnComplete: func(fl *Flow) { last = fl.Finished }},
			{Src: 0, Dst: 1, Bytes: 2 << 20},
		}
		f.SendBurst(0, specs)
		k.Run(nil)
		return last
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("idle drop config changed results: %v vs %v", a, b)
	}
}
