// Package simnet is a discrete-event network fabric: hosts with
// full-duplex NIC ports connected by a non-blocking switch. Transfers
// are flows split into chunks; each host's egress port drains a
// configurable queueing discipline (see internal/qdisc) at link rate,
// and each ingress port serializes arrivals FIFO at link rate. This is
// the substrate on which the paper's contention phenomena play out: the
// egress qdisc at a host running several parameter servers is exactly
// where TensorLights intervenes.
package simnet

import (
	"fmt"

	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config sets fabric-wide parameters.
type Config struct {
	// LinkRateBps is the NIC line rate in bits per second (both
	// directions; links are full duplex). Default 10 Gbps.
	LinkRateBps float64
	// PropDelaySec is the one-way propagation + switching delay.
	// Default 20 microseconds (one switch hop).
	PropDelaySec float64
	// ChunkBytes is the transfer granularity: the size of one
	// application-level socket write. Default 256 KiB.
	ChunkBytes int64
	// WireOverhead multiplies payload bytes to account for TCP/IP and
	// Ethernet framing plus the retransmission/goodput loss of heavily
	// contended TCP (incast). Default 1.25, calibrated so that a fully
	// saturated parameter-server host reproduces the paper's residual
	// contention that egress prioritization cannot remove.
	WireOverhead float64
	// InjectJitter controls the randomized interleaving of concurrent
	// flow writes from one sender (models TCP's noisy sharing).
	// 0 disables shuffling; default 1 shuffles every round.
	InjectJitter float64
	// MinWindowChunks and MaxWindowChunks bound the per-flow socket
	// window: how many chunks of one flow may sit in the egress qdisc
	// at once. Each flow draws a window uniformly from this range at
	// creation. Under backlogged FIFO service a flow's throughput
	// share is proportional to its window — the same mechanism that
	// makes concurrent TCP streams persistently unequal, and thus the
	// source of the paper's random per-worker model-update delays.
	// Defaults 1 and 4.
	MinWindowChunks int
	MaxWindowChunks int
	// WindowWeights, when non-empty, overrides the uniform window
	// draw: WindowWeights[i] is the relative probability of a window
	// of i+1 chunks. This shapes the tail of TCP unfairness — a small
	// probability of a 1-chunk window reproduces the occasional
	// starved connection whose delay scales with queue depth.
	// Default {0.02, 0.33, 0.25, 0.20, 0.20} for windows 1..5,
	// calibrated against the paper's Figure 2/3 contention ratios.
	WindowWeights []float64
	// RetransmitTimeoutSec is the sender's retransmission timeout for
	// chunks lost to an injected per-chunk drop probability (see
	// Host.SetChunkDropProb). Default 5 ms.
	RetransmitTimeoutSec float64
	// PerHostRNG derives an independent window/jitter stream, drop
	// stream and flow-ID space per source host instead of sharing one
	// fabric-wide sequence. Each host's randomness then depends only on
	// its own send history — not on how sends from different hosts
	// interleave — which is what lets a sharded run (each shard
	// simulating a subset of the senders) draw exactly the numbers the
	// single-kernel run draws. Default false: the shared streams keep
	// every existing seeded result byte-identical.
	PerHostRNG bool
	// Topology selects the fabric behind the NIC ports (see
	// TopologyConfig). The zero value is the flat ideal switch the paper
	// assumes, which behaves exactly as the pre-topology fabric did.
	Topology TopologyConfig
	// Mode selects the fabric engine: ModeChunk (default) simulates
	// every chunk through every hop as discrete events; ModeFlow models
	// transfers as fluid flows on the analytic max-min network of
	// internal/flownet and jumps straight to completion times —
	// typically 10–100× fewer events per trial. See DESIGN.md §13 for
	// equivalence bounds and divergences.
	Mode string
}

// Validate reports configuration errors. New panics on an invalid
// config; callers that construct configs from external input should
// call Validate first and surface the error.
func (c Config) Validate() error {
	sum := 0.0
	for i, w := range c.WindowWeights {
		if w < 0 {
			return fmt.Errorf("simnet: WindowWeights[%d] = %g is negative", i, w)
		}
		sum += w
	}
	if len(c.WindowWeights) > 0 && sum <= 0 {
		return fmt.Errorf("simnet: WindowWeights sum to %g; need a positive total", sum)
	}
	if c.MinWindowChunks > 0 && c.MaxWindowChunks > 0 && c.MinWindowChunks > c.MaxWindowChunks {
		return fmt.Errorf("simnet: MinWindowChunks %d > MaxWindowChunks %d",
			c.MinWindowChunks, c.MaxWindowChunks)
	}
	if c.RetransmitTimeoutSec < 0 {
		return fmt.Errorf("simnet: RetransmitTimeoutSec %g is negative", c.RetransmitTimeoutSec)
	}
	switch c.Mode {
	case "", ModeChunk, ModeFlow:
	default:
		return fmt.Errorf("simnet: unknown fabric mode %q (want %q or %q)",
			c.Mode, ModeChunk, ModeFlow)
	}
	return c.Topology.Validate()
}

func (c *Config) fillDefaults() {
	if c.LinkRateBps <= 0 {
		c.LinkRateBps = 10e9
	}
	if c.PropDelaySec <= 0 {
		c.PropDelaySec = 20e-6
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 256 * 1024
	}
	if c.WireOverhead < 1 {
		c.WireOverhead = 1.25
	}
	if c.InjectJitter < 0 {
		c.InjectJitter = 0
	}
	if len(c.WindowWeights) == 0 && c.MinWindowChunks <= 0 && c.MaxWindowChunks <= 0 {
		c.WindowWeights = []float64{0.02, 0.33, 0.25, 0.20, 0.20}
	}
	if c.MinWindowChunks <= 0 {
		c.MinWindowChunks = 1
	}
	if c.MaxWindowChunks < c.MinWindowChunks {
		// Validate rejects an explicit Min > Max; this only fills an
		// unset MaxWindowChunks.
		c.MaxWindowChunks = 4
		if c.MaxWindowChunks < c.MinWindowChunks {
			c.MaxWindowChunks = c.MinWindowChunks
		}
	}
	if c.RetransmitTimeoutSec <= 0 {
		c.RetransmitTimeoutSec = 5e-3
	}
	if c.Mode == "" {
		c.Mode = ModeChunk
	}
	c.Topology.fillDefaults(c.PropDelaySec)
}

// Fabric owns the hosts and moves chunks between them.
type Fabric struct {
	k          *sim.Kernel
	rng        *sim.RNG
	cfg        Config
	hosts      []*Host
	nextFlowID uint64
	flows      map[uint64]*Flow
	completed  uint64
	// dropRNG is a dedicated stream for injected chunk loss so that
	// enabling fault injection never perturbs the window/jitter draws
	// of the main simnet stream.
	dropRNG       *sim.RNG
	droppedChunks uint64
	// topo is the routed fabric behind the NIC ports, built lazily on
	// first use (once the host set is final).
	topo Topology
	// Per-host streams and flow-ID counters, populated by AddHost when
	// cfg.PerHostRNG is set (see Config.PerHostRNG).
	hostRNGs     []*sim.RNG
	hostDropRNGs []*sim.RNG
	hostFlowSeq  []uint64
	// shard binds this fabric to one shard of a ShardedFabric; nil for
	// an ordinary single-kernel fabric.
	shard *shardBinding
	// chunkFree recycles chunk structs: a delivered chunk has no aliases
	// (qdiscs never retain chunks past Dequeue), so steady-state chunk
	// traffic allocates nothing. Each fabric recycles into its own pool —
	// under sharding a chunk may be freed on the destination's shard.
	chunkFree []*qdisc.Chunk
	// flowArena hands out Flow structs from block allocations; flowFree
	// recycles the ones whose spec was marked Transient (the caller
	// promised not to retain them past completion). Non-transient flows
	// are never reused — Send returns them and callers may read
	// Finished/Delivered long after completion — so for those the arena
	// only amortizes the allocator.
	flowArena []Flow
	flowFree  []*Flow
	// Long-lived PostArg callbacks for the per-chunk hot paths; built in
	// New so scheduling a hop/delivery/retransmit allocates no closure.
	deliverIngressFn func(any)
	injectRouteFn    func(any)
	chunkDeliveredFn func(any)
	retransmitFn     func(any)
	// flow is the analytic engine behind ModeFlow, built lazily with
	// the topology; nil in chunk mode.
	flow *flowMode
	// Tracer, when non-nil, receives a flow_done event per completed
	// transfer (value = transfer seconds).
	Tracer trace.Tracer
}

// New creates a fabric on the given kernel. rng seeds the injection
// jitter stream; it must not be shared with other model components.
// New panics on an invalid config; call cfg.Validate to check first.
func New(k *sim.Kernel, rng *sim.RNG, cfg Config) *Fabric {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg.fillDefaults()
	f := &Fabric{
		k:       k,
		rng:     rng.Stream("simnet"),
		dropRNG: rng.Stream("simnet-drop"),
		cfg:     cfg,
		flows:   make(map[uint64]*Flow),
	}
	f.deliverIngressFn = func(a any) {
		c := a.(*qdisc.Chunk)
		f.Host(c.Payload.(*Flow).Spec.Dst).Ingress.Inject(c)
	}
	f.injectRouteFn = func(a any) {
		c := a.(*qdisc.Chunk)
		c.Payload.(*Flow).route[c.Hop].port.Inject(c)
	}
	f.chunkDeliveredFn = func(a any) { f.chunkDelivered(a.(*qdisc.Chunk)) }
	f.retransmitFn = func(a any) {
		c := a.(*qdisc.Chunk)
		f.Host(c.Payload.(*Flow).Spec.Src).Egress.Inject(c)
	}
	return f
}

// getChunk returns a zeroed chunk from the free list, or a fresh one.
func (f *Fabric) getChunk() *qdisc.Chunk {
	if n := len(f.chunkFree); n > 0 {
		c := f.chunkFree[n-1]
		f.chunkFree[n-1] = nil
		f.chunkFree = f.chunkFree[:n-1]
		return c
	}
	return &qdisc.Chunk{}
}

// putChunk recycles a delivered chunk.
func (f *Fabric) putChunk(c *qdisc.Chunk) {
	c.Reset()
	f.chunkFree = append(f.chunkFree, c)
}

// newFlow returns a zeroed Flow from the free list or the arena.
// Callers set every non-zero field themselves (ID, Spec, Started,
// FirstByte, Finished).
func (f *Fabric) newFlow() *Flow {
	if n := len(f.flowFree); n > 0 {
		fl := f.flowFree[n-1]
		f.flowFree[n-1] = nil
		f.flowFree = f.flowFree[:n-1]
		return fl
	}
	if len(f.flowArena) == 0 {
		f.flowArena = make([]Flow, 256)
	}
	fl := &f.flowArena[0]
	f.flowArena = f.flowArena[1:]
	return fl
}

// releaseFlow recycles a completed Transient flow: cleared back to the
// zero state newFlow promises, so pooled and arena flows are
// indistinguishable to the send paths.
func (f *Fabric) releaseFlow(fl *Flow) {
	*fl = Flow{}
	f.flowFree = append(f.flowFree, fl)
}

// Config returns the fabric configuration (defaults filled).
func (f *Fabric) Config() Config { return f.cfg }

// Kernel returns the simulation kernel the fabric runs on.
func (f *Fabric) Kernel() *sim.Kernel { return f.k }

// AddHost creates a host with default (pfifo) egress.
func (f *Fabric) AddHost(name string) *Host {
	rateBytes := f.cfg.LinkRateBps / 8
	h := &Host{
		ID:     len(f.hosts),
		Name:   name,
		fabric: f,
	}
	h.Egress = newPort(f, h, "egress", rateBytes, qdisc.NewPFIFO(0))
	h.Ingress = newPort(f, h, "ingress", rateBytes, qdisc.NewPFIFO(0))
	if f.topo != nil {
		panic("simnet: AddHost after the topology was built")
	}
	if f.cfg.PerHostRNG {
		f.hostRNGs = append(f.hostRNGs, f.rng.Stream(fmt.Sprintf("host-%d", h.ID)))
		f.hostDropRNGs = append(f.hostDropRNGs, f.dropRNG.Stream(fmt.Sprintf("host-%d", h.ID)))
		f.hostFlowSeq = append(f.hostFlowSeq, 0)
	}
	f.hosts = append(f.hosts, h)
	return h
}

// jitterRNG returns the stream that samples host src's flow windows and
// injection interleaving: the per-host stream under PerHostRNG, the
// shared fabric stream otherwise.
func (f *Fabric) jitterRNG(src int) *sim.RNG {
	if f.cfg.PerHostRNG {
		return f.hostRNGs[src]
	}
	return f.rng
}

// dropStream returns the stream that decides injected chunk loss for
// egress transmissions from host src.
func (f *Fabric) dropStream(src int) *sim.RNG {
	if f.cfg.PerHostRNG {
		return f.hostDropRNGs[src]
	}
	return f.dropRNG
}

// newFlowID assigns the next flow ID for a transfer from host src.
// Under PerHostRNG each host numbers its own flows in a disjoint ID
// space (src+1 in the high 32 bits), so a flow's ID — which reaches
// traces via chunk_drop details — does not depend on other hosts' send
// interleaving.
func (f *Fabric) newFlowID(src int) uint64 {
	if f.cfg.PerHostRNG {
		f.hostFlowSeq[src]++
		return uint64(src+1)<<32 | f.hostFlowSeq[src]
	}
	f.nextFlowID++
	return f.nextFlowID
}

// Host returns host i.
func (f *Fabric) Host(i int) *Host {
	if i < 0 || i >= len(f.hosts) {
		panic(fmt.Sprintf("simnet: host %d out of range [0,%d)", i, len(f.hosts)))
	}
	return f.hosts[i]
}

// NumHosts returns the host count.
func (f *Fabric) NumHosts() int { return len(f.hosts) }

// Topology returns the fabric's routed topology, building it on first
// call. Call only after every AddHost: the topology is sized to the
// host set and is immutable once built (AddHost afterwards panics).
func (f *Fabric) Topology() Topology {
	if f.topo == nil {
		f.topo = buildTopology(f)
	}
	return f.topo
}

// CoreLinks returns the fabric's contended core links in ID order
// (empty on the flat topology). Fault injection addresses links through
// this slice.
func (f *Fabric) CoreLinks() []*Link { return f.Topology().Links() }

// CoreLink returns the core link with the given ID.
func (f *Fabric) CoreLink(id int) *Link {
	links := f.CoreLinks()
	if id < 0 || id >= len(links) {
		panic(fmt.Sprintf("simnet: core link %d out of range [0,%d)", id, len(links)))
	}
	return links[id]
}

// Hosts returns the host slice (do not mutate).
func (f *Fabric) Hosts() []*Host { return f.hosts }

// ActiveFlows returns the number of in-flight flows.
func (f *Fabric) ActiveFlows() int { return len(f.flows) }

// DroppedChunks returns the number of chunks lost to injected drops
// (each was subsequently retransmitted).
func (f *Fabric) DroppedChunks() uint64 { return f.droppedChunks }

// chunkLost handles an egress chunk lost on the wire: the sender
// detects the loss after the retransmission timeout and re-injects the
// chunk into its egress qdisc. Delivery accounting is untouched — the
// destination never saw the bytes.
func (f *Fabric) chunkLost(p *Port, ch *qdisc.Chunk) {
	f.droppedChunks++
	if f.Tracer != nil {
		fl := ch.Payload.(*Flow)
		f.Tracer.Emit(trace.Event{
			At: f.k.Now(), Kind: trace.KindChunkDrop,
			Job: fl.Spec.JobID, Host: fl.Spec.Src, Worker: -1,
			Value:  float64(ch.Bytes),
			Detail: fmt.Sprintf("flow=%d seq=%d", fl.ID, ch.Seq),
		})
	}
	ch.Retrans = true
	f.k.PostArgAfter(f.cfg.RetransmitTimeoutSec, f.retransmitFn, ch)
}

// CompletedFlows returns the number of flows fully delivered.
func (f *Fabric) CompletedFlows() uint64 { return f.completed }

// Host is one server with a full-duplex NIC.
type Host struct {
	ID      int
	Name    string
	fabric  *Fabric
	Egress  *Port
	Ingress *Port
	// dropProb is the injected per-chunk loss probability on egress
	// transmissions from this host (0 = healthy NIC).
	dropProb float64
}

// SetNICDown takes the host's NIC down (both directions) or brings it
// back up. While down, queued and arriving chunks are held; no data is
// lost and all service resumes when the NIC comes back — the flap shows
// up purely as delay, the way a link flap under TCP does.
func (h *Host) SetNICDown(down bool) {
	h.Egress.SetDown(down)
	h.Ingress.SetDown(down)
}

// NICDown reports whether the host NIC is currently down.
func (h *Host) NICDown() bool { return h.Egress.Down() }

// SetChunkDropProb sets the injected per-chunk loss probability for
// egress transmissions from this host. Lost chunks are retransmitted by
// the sender after Config.RetransmitTimeoutSec, so flows still complete
// — slower, as under a lossy link with TCP retransmission.
func (h *Host) SetChunkDropProb(p float64) {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("simnet: chunk drop probability %g outside [0,1)", p))
	}
	h.dropProb = p
	h.Egress.notifyFlow()
}

// ChunkDropProb returns the injected per-chunk loss probability.
func (h *Host) ChunkDropProb() float64 { return h.dropProb }

// SetEgressQdisc replaces the egress queueing discipline. Any chunks in
// the old qdisc are drained into the new one in dequeue order, so a tc
// reconfiguration never loses in-flight data.
func (h *Host) SetEgressQdisc(q qdisc.Qdisc) {
	h.Egress.replaceQdisc(q)
	h.fabric.EgressReconfigured(h.ID)
}

// FlowSpec describes one transfer.
type FlowSpec struct {
	Src, Dst         int // host ids
	SrcPort, DstPort int
	JobID            int
	Bytes            int64
	// OnComplete fires when the last byte is received at Dst.
	OnComplete func(fl *Flow)
	// Transient permits the fabric to recycle the Flow struct once the
	// transfer completes and OnComplete (if any) has returned. Callers
	// setting it must not retain the *Flow — neither Send's return value
	// nor the callback argument — past that point. The protocol layers
	// (dl, collective) send millions of fire-and-forget transfers and
	// set it; experiments that inspect flows after the run leave it off.
	Transient bool
}

// Flow is an in-flight or completed transfer.
type Flow struct {
	ID                uint64
	Spec              FlowSpec
	Started           float64
	FirstByte         float64 // first chunk delivery time; -1 until then
	Finished          float64 // completion time; -1 until then
	deliveredBytes    int64
	chunksOutstanding int
	// window is the socket window in chunks; pending holds chunks not
	// yet admitted to the egress qdisc.
	window  int
	pending []*qdisc.Chunk
	// route is the ordered core links the flow's chunks traverse
	// between the source egress and destination ingress NICs (nil on
	// single-hop paths: flat topology, or same-rack in leaf-spine).
	route []*Link
	// Flow-mode state: the frozen pipeline-fill tail between the fluid
	// demand draining and the last byte's arrival, and the egress
	// priority band the flow was classified into (see flowmode.go).
	flowLatency float64
	flowBand    int
}

// Route returns the flow's core-link path (nil for single-hop paths).
func (fl *Flow) Route() []*Link { return fl.route }

// Window returns the flow's socket window in chunks.
func (fl *Flow) Window() int { return fl.window }

// Delivered returns bytes received so far at the destination.
func (fl *Flow) Delivered() int64 { return fl.deliveredBytes }

// Done reports whether the flow has fully arrived.
func (fl *Flow) Done() bool { return fl.Finished >= 0 }

// Send starts a single flow, enqueueing all its chunks in order.
func (f *Fabric) Send(spec FlowSpec) *Flow {
	if f.cfg.Mode == ModeFlow {
		// One transfer, one engine flow: skip SendBurst's result slice
		// (the analytic fabric's arrival path is hot enough to care).
		// The RNG draw sequence matches a one-spec burst exactly.
		if s := f.shard; s != nil && s.plan.HostShard(spec.Src) != s.id {
			panic(fmt.Sprintf("simnet: SendBurst from host %d (shard %d) on shard %d's replica",
				spec.Src, s.plan.HostShard(spec.Src), s.id))
		}
		fl, _ := f.sendOneFlow(spec.Src, spec, f.jitterRNG(spec.Src), f.k.Now())
		return fl
	}
	return f.SendBurst(spec.Src, []FlowSpec{spec})[0]
}

// SendBurst starts several flows from one sender "simultaneously" — the
// way a parameter server writes a model update to all of its workers'
// sockets in one tight loop. Chunks are injected round robin across the
// flows (with seeded shuffling when InjectJitter > 0), which reproduces
// TCP's approximately-fair-but-noisy interleaving inside the egress
// queue: every flow's tail chunk lands near the end of the burst, so
// under FIFO contention the per-flow completion times spread across the
// whole service window.
func (f *Fabric) SendBurst(src int, specs []FlowSpec) []*Flow {
	if s := f.shard; s != nil && s.plan.HostShard(src) != s.id {
		panic(fmt.Sprintf("simnet: SendBurst from host %d (shard %d) on shard %d's replica",
			src, s.plan.HostShard(src), s.id))
	}
	if f.cfg.Mode == ModeFlow {
		return f.sendBurstFlow(src, specs)
	}
	now := f.k.Now()
	rng := f.jitterRNG(src)
	flows := make([]*Flow, len(specs))
	chunkLists := make([][]*qdisc.Chunk, len(specs))
	for i, spec := range specs {
		if spec.Src != src {
			panic("simnet: SendBurst specs must share src")
		}
		if spec.Bytes <= 0 {
			panic("simnet: flow bytes must be positive")
		}
		fl := f.newFlow()
		fl.ID, fl.Spec, fl.Started, fl.FirstByte, fl.Finished = f.newFlowID(src), spec, now, -1, -1
		fl.window = f.sampleWindow(rng)
		flows[i] = fl
		f.flows[fl.ID] = fl
		chunks := f.makeChunks(fl)
		fl.chunksOutstanding = len(chunks)
		if fl.Spec.Dst == src {
			// Loopback: bypass the NIC (and windowing) entirely.
			for _, ch := range chunks {
				f.deliverLoopback(fl, ch)
			}
			continue
		}
		// Routing is a pure flow-hash lookup (no RNG), so computing it
		// here perturbs nothing on the flat topology.
		fl.route = f.Topology().Route(spec.Src, spec.Dst, spec.SrcPort, spec.DstPort)
		// Admit the first window; the rest inject as chunks drain.
		w := fl.window
		if w > len(chunks) {
			w = len(chunks)
		}
		chunkLists[i] = chunks[:w]
		fl.pending = chunks[w:]
	}
	srcHost := f.Host(src)
	for _, ch := range f.interleave(rng, chunkLists) {
		srcHost.Egress.enqueue(ch, now)
	}
	srcHost.Egress.kick()
	return flows
}

// sampleWindow draws a flow's socket window from the configured
// distribution, using the given stream (the sender's under PerHostRNG).
func (f *Fabric) sampleWindow(rng *sim.RNG) int {
	if len(f.cfg.WindowWeights) > 0 {
		total := 0.0
		for _, w := range f.cfg.WindowWeights {
			if w > 0 {
				total += w
			}
		}
		if total > 0 {
			r := rng.Float64() * total
			for i, w := range f.cfg.WindowWeights {
				if w <= 0 {
					continue
				}
				if r < w {
					return i + 1
				}
				r -= w
			}
			return len(f.cfg.WindowWeights)
		}
	}
	w := f.cfg.MinWindowChunks
	if span := f.cfg.MaxWindowChunks - f.cfg.MinWindowChunks; span > 0 {
		w += rng.Intn(span + 1)
	}
	return w
}

// chunkDequeued fires when an egress port transmits a chunk: the flow's
// socket refills the freed qdisc space with its next pending chunk.
// Retransmissions occupy no fresh window space, so they trigger no
// refill.
func (f *Fabric) chunkDequeued(p *Port, ch *qdisc.Chunk) {
	if ch.Retrans {
		ch.Retrans = false
		return
	}
	fl := ch.Payload.(*Flow)
	if len(fl.pending) == 0 {
		return
	}
	next := fl.pending[0]
	fl.pending = fl.pending[1:]
	p.enqueue(next, f.k.Now())
}

// interleave merges the per-flow chunk lists into one injection order,
// preserving each flow's internal order. With InjectJitter > 0 the merge
// is a weighted-random interleave (each next chunk drawn from a flow
// with probability proportional to its remaining chunks), which models
// the persistent unfairness of concurrent TCP streams: some sockets
// randomly drain earlier than others, so per-flow completion times
// spread across the burst's service window. With jitter 0 the merge is
// a deterministic round robin.
func (f *Fabric) interleave(rng *sim.RNG, chunkLists [][]*qdisc.Chunk) []*qdisc.Chunk {
	total := 0
	maxChunks := 0
	for _, cl := range chunkLists {
		total += len(cl)
		if len(cl) > maxChunks {
			maxChunks = len(cl)
		}
	}
	out := make([]*qdisc.Chunk, 0, total)
	if f.cfg.InjectJitter <= 0 || len(chunkLists) == 1 {
		for r := 0; r < maxChunks; r++ {
			for i := range chunkLists {
				if r < len(chunkLists[i]) {
					out = append(out, chunkLists[i][r])
				}
			}
		}
		return out
	}
	next := make([]int, len(chunkLists))
	remaining := total
	for remaining > 0 {
		pick := rng.Intn(remaining)
		for i := range chunkLists {
			left := len(chunkLists[i]) - next[i]
			if pick < left {
				out = append(out, chunkLists[i][next[i]])
				next[i]++
				remaining--
				break
			}
			pick -= left
		}
	}
	return out
}

// makeChunks splits the flow into chunk descriptors.
func (f *Fabric) makeChunks(fl *Flow) []*qdisc.Chunk {
	n := int((fl.Spec.Bytes + f.cfg.ChunkBytes - 1) / f.cfg.ChunkBytes)
	chunks := make([]*qdisc.Chunk, n)
	remaining := fl.Spec.Bytes
	for i := 0; i < n; i++ {
		sz := f.cfg.ChunkBytes
		if remaining < sz {
			sz = remaining
		}
		remaining -= sz
		c := f.getChunk()
		c.FlowID = fl.ID
		c.JobID = fl.Spec.JobID
		c.SrcPort = fl.Spec.SrcPort
		c.DstPort = fl.Spec.DstPort
		c.Bytes = sz
		c.Seq = i
		c.Last = i == n-1
		c.Payload = fl
		chunks[i] = c
	}
	return chunks
}

// forwardFromEgress routes a chunk leaving its source NIC: straight to
// the destination ingress on single-hop paths (the pre-topology
// behaviour, event-for-event), or onto the first core link of the
// flow's route.
func (f *Fabric) forwardFromEgress(c *qdisc.Chunk) {
	fl := c.Payload.(*Flow)
	if len(fl.route) == 0 {
		if s := f.shard; s != nil && s.plan.HostShard(fl.Spec.Dst) != s.id {
			s.handoffToHost(fl.Spec.Dst, c, f.cfg.PropDelaySec)
			return
		}
		f.k.PostArgAfter(f.cfg.PropDelaySec, f.deliverIngressFn, c)
		return
	}
	// The first core link of any route is the source rack's uplink,
	// which the source's own shard owns — never a cross-shard hop.
	c.Hop = 0
	f.k.PostArgAfter(f.cfg.Topology.HopDelaySec, f.injectRouteFn, c)
}

// forwardFromLink advances a chunk that finished serving on a core
// link: to the next link on the route, or into the destination ingress.
func (f *Fabric) forwardFromLink(c *qdisc.Chunk) {
	fl := c.Payload.(*Flow)
	c.Hop++
	hop := f.cfg.Topology.HopDelaySec
	if c.Hop < len(fl.route) {
		next := fl.route[c.Hop]
		if s := f.shard; s != nil {
			if owner := s.plan.LinkShard(next); owner != s.id {
				s.handoffToLink(owner, next.ID, c, hop)
				return
			}
		}
		f.k.PostArgAfter(hop, f.injectRouteFn, c)
		return
	}
	if s := f.shard; s != nil && s.plan.HostShard(fl.Spec.Dst) != s.id {
		s.handoffToHost(fl.Spec.Dst, c, hop)
		return
	}
	f.k.PostArgAfter(hop, f.deliverIngressFn, c)
}

func (f *Fabric) deliverLoopback(fl *Flow, ch *qdisc.Chunk) {
	// Memory-speed copy: model as propagation delay only.
	f.k.PostArgAfter(f.cfg.PropDelaySec, f.chunkDeliveredFn, ch)
}

// chunkDelivered accounts a chunk's arrival at its destination and
// recycles the chunk struct: nothing retains a delivered chunk.
func (f *Fabric) chunkDelivered(ch *qdisc.Chunk) {
	fl := ch.Payload.(*Flow)
	if fl.FirstByte < 0 {
		fl.FirstByte = f.k.Now()
	}
	fl.deliveredBytes += ch.Bytes
	fl.chunksOutstanding--
	f.putChunk(ch)
	if fl.chunksOutstanding == 0 {
		if fl.deliveredBytes != fl.Spec.Bytes {
			panic(fmt.Sprintf("simnet: flow %d delivered %d of %d bytes",
				fl.ID, fl.deliveredBytes, fl.Spec.Bytes))
		}
		fl.Finished = f.k.Now()
		delete(f.flows, fl.ID)
		if s := f.shard; s != nil {
			// A cross-shard flow is registered on its source shard's
			// replica; tell it to retire the entry (bookkeeping only —
			// nothing reads the map between now and delivery).
			if src := s.plan.HostShard(fl.Spec.Src); src != s.id {
				s.retireFlow(src, fl.ID)
			}
		}
		f.completed++
		if f.Tracer != nil {
			f.Tracer.Emit(trace.Event{
				At: fl.Finished, Kind: trace.KindFlowDone,
				Job: fl.Spec.JobID, Host: fl.Spec.Dst, Worker: -1,
				Value:  fl.Finished - fl.Started,
				Detail: fmt.Sprintf("bytes=%d src=%d", fl.Spec.Bytes, fl.Spec.Src),
			})
		}
		if fl.Spec.OnComplete != nil {
			fl.Spec.OnComplete(fl)
		}
		// Cross-shard flows stay with the GC: the source shard's replica
		// may still hold the pointer until its retirement message drains.
		if fl.Spec.Transient && f.shard == nil {
			f.releaseFlow(fl)
		}
	}
}
