package simnet

import (
	"sync"
	"testing"

	"repro/internal/sim"
)

func TestPlanShardsFlat(t *testing.T) {
	cfg := Config{}
	p, err := PlanShards(cfg, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Lookahead() != 20e-6 {
		t.Fatalf("lookahead = %g, want default prop delay 20e-6", p.Lookahead())
	}
	want := []int{0, 0, 0, 1, 1, 1, 2, 2, 3, 3}
	for h, s := range want {
		if got := p.HostShard(h); got != s {
			t.Fatalf("host %d on shard %d, want %d", h, got, s)
		}
	}
	if _, err := PlanShards(cfg, 3, 4); err == nil {
		t.Fatal("expected error for more shards than hosts")
	}
	if _, err := PlanShards(cfg, 3, 0); err == nil {
		t.Fatal("expected error for zero shards")
	}
}

func TestPlanShardsLeafSpine(t *testing.T) {
	cfg := Config{Topology: TopologyConfig{Kind: TopologyLeafSpine, Racks: 4, HopDelaySec: 5e-6}}
	p, err := PlanShards(cfg, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Lookahead() != 5e-6 {
		t.Fatalf("lookahead = %g, want hop delay 5e-6", p.Lookahead())
	}
	// Racks are atomic: hosts 0-7 (racks 0,1) on shard 0, 8-15 on shard 1.
	for h := 0; h < 16; h++ {
		want := 0
		if h >= 8 {
			want = 1
		}
		if got := p.HostShard(h); got != want {
			t.Fatalf("host %d on shard %d, want %d", h, got, want)
		}
	}
	if _, err := PlanShards(cfg, 16, 8); err == nil {
		t.Fatal("expected error for more shards than racks")
	}
}

// flowRecord captures everything observable about one completed flow.
type flowRecord struct {
	src, dst  int
	bytes     int64
	started   float64
	firstByte float64
	finished  float64
}

// shardedScenario runs a fixed mixed workload (cross-shard and
// intra-shard flows, injection jitter, chunk drops on two hosts) on a
// sharded fabric and returns every observable outcome.
func shardedScenario(t *testing.T, cfg Config, numHosts, shards int, parallel bool) (map[uint64]flowRecord, uint64, uint64, []int64, []float64) {
	t.Helper()
	plan, err := PlanShards(cfg, numHosts, shards)
	if err != nil {
		t.Fatal(err)
	}
	sk := sim.NewShardedKernel(shards, plan.Lookahead(), parallel)
	sf := NewSharded(sk, 42, cfg, numHosts, plan)

	var mu sync.Mutex
	records := make(map[uint64]flowRecord)
	done := func(fl *Flow) {
		mu.Lock()
		defer mu.Unlock()
		records[fl.ID] = flowRecord{
			src: fl.Spec.Src, dst: fl.Spec.Dst, bytes: fl.Spec.Bytes,
			started: fl.Started, firstByte: fl.FirstByte, finished: fl.Finished,
		}
	}

	sf.FabricFor(3).Host(3).SetChunkDropProb(0.05)
	sf.FabricFor(numHosts - 1).Host(numHosts - 1).SetChunkDropProb(0.05)

	for h := 0; h < numHosts; h++ {
		h := h
		f := sf.FabricFor(h)
		specs := []FlowSpec{
			{Src: h, Dst: (h + 5) % numHosts, SrcPort: 9000 + h, DstPort: 80,
				JobID: h, Bytes: int64(1<<20 + h*64<<10), OnComplete: done},
			{Src: h, Dst: (h + numHosts/2 + 1) % numHosts, SrcPort: 9100 + h, DstPort: 81,
				JobID: h, Bytes: int64(512<<10 + h*32<<10), OnComplete: done},
		}
		f.Kernel().Schedule(1e-4*float64(h), func() {
			f.SendBurst(h, specs)
		})
	}
	sf.Run(nil)

	if n := sf.ActiveFlows(); n != 0 {
		t.Fatalf("%d flows still active after drain", n)
	}
	bytes, busy := sf.LinkStats()
	return records, sf.CompletedFlows(), sf.DroppedChunks(), bytes, busy
}

func checkShardedEquivalence(t *testing.T, cfg Config, numHosts int) {
	t.Helper()
	base, baseDone, baseDrops, baseBytes, baseBusy := shardedScenario(t, cfg, numHosts, 1, false)
	if baseDone != uint64(2*numHosts) {
		t.Fatalf("baseline completed %d flows, want %d", baseDone, 2*numHosts)
	}
	for _, shards := range []int{2, 3, 4} {
		for _, parallel := range []bool{false, true} {
			recs, done, drops, bytes, busy := shardedScenario(t, cfg, numHosts, shards, parallel)
			if done != baseDone {
				t.Fatalf("shards=%d parallel=%v: completed %d, want %d", shards, parallel, done, baseDone)
			}
			if drops != baseDrops {
				t.Fatalf("shards=%d parallel=%v: drops %d, want %d", shards, parallel, drops, baseDrops)
			}
			if len(recs) != len(base) {
				t.Fatalf("shards=%d parallel=%v: %d records, want %d", shards, parallel, len(recs), len(base))
			}
			for id, want := range base {
				got, ok := recs[id]
				if !ok {
					t.Fatalf("shards=%d parallel=%v: flow %d missing", shards, parallel, id)
				}
				if got != want {
					t.Fatalf("shards=%d parallel=%v: flow %d = %+v, want %+v",
						shards, parallel, id, got, want)
				}
			}
			for i := range baseBytes {
				if bytes[i] != baseBytes[i] || busy[i] != baseBusy[i] {
					t.Fatalf("shards=%d parallel=%v: link %d stats (%d, %g), want (%d, %g)",
						shards, parallel, i, bytes[i], busy[i], baseBytes[i], baseBusy[i])
				}
			}
		}
	}
}

// TestShardedFabricEquivalenceFlat proves byte-identical outcomes for
// 1/2/3/4-shard (sequential and parallel) runs on the flat topology:
// every cross-shard flow is handed off at its propagation hop.
func TestShardedFabricEquivalenceFlat(t *testing.T) {
	cfg := Config{InjectJitter: 1, PerHostRNG: true}
	checkShardedEquivalence(t, cfg, 12)
}

// TestShardedFabricEquivalenceLeafSpine proves the same on a 4-rack
// oversubscribed leaf-spine fabric, where cross-shard flows are handed
// off on the uplink->downlink core segment.
func TestShardedFabricEquivalenceLeafSpine(t *testing.T) {
	cfg := Config{
		InjectJitter: 1,
		PerHostRNG:   true,
		Topology: TopologyConfig{
			Kind: TopologyLeafSpine, Racks: 4, UplinksPerLeaf: 2, Oversubscription: 2,
		},
	}
	checkShardedEquivalence(t, cfg, 16)
}

// TestPerHostRNGPreservesSharedDefault guards the compatibility
// contract: with PerHostRNG unset, the fabric draws from the shared
// streams and flow IDs stay globally sequential, so existing seeded
// goldens are untouched.
func TestPerHostRNGPreservesSharedDefault(t *testing.T) {
	k := sim.NewKernel()
	f := New(k, sim.NewRNG(7), Config{})
	for i := 0; i < 2; i++ {
		f.AddHost("h")
	}
	fl1 := f.Send(FlowSpec{Src: 0, Dst: 1, Bytes: 1024})
	fl2 := f.Send(FlowSpec{Src: 1, Dst: 0, Bytes: 1024})
	if fl1.ID != 1 || fl2.ID != 2 {
		t.Fatalf("flow IDs = %d, %d; want sequential 1, 2", fl1.ID, fl2.ID)
	}
}
