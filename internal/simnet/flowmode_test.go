package simnet

import (
	"math"
	"testing"

	"repro/internal/qdisc"
	"repro/internal/sim"
)

// burstFinish runs one burst on a fresh fabric and returns per-flow
// finish times (plus the fabric, for post-run accounting checks).
func burstFinish(t *testing.T, cfg Config, hosts, src int, specs []FlowSpec) ([]float64, *Fabric) {
	t.Helper()
	k := sim.NewKernel()
	f := New(k, sim.NewRNG(7), cfg)
	for i := 0; i < hosts; i++ {
		f.AddHost("h")
	}
	flows := f.SendBurst(src, specs)
	k.Run(nil)
	out := make([]float64, len(flows))
	for i, fl := range flows {
		if !fl.Done() {
			t.Fatalf("flow %d (mode %q) never completed", i, cfg.Mode)
		}
		out[i] = fl.Finished
	}
	return out, f
}

func relClose(a, b, tol float64) bool {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m || d < 1e-12
}

// TestFlowModeSingleFlowMatchesChunk: on an uncontended path the
// analytic model's completion time is the chunk fabric's exactly — the
// egress serializes Bytes*WO at rate, then one pipeline-fill tail.
func TestFlowModeSingleFlowMatchesChunk(t *testing.T) {
	for _, bytes := range []int64{100, 64 << 10, 1 << 20, 4 << 20, 10<<20 + 12345} {
		cfg := Config{
			LinkRateBps:  8e9,
			PropDelaySec: 1e-3,
			ChunkBytes:   1 << 20,
		}
		spec := []FlowSpec{{Src: 0, Dst: 1, SrcPort: 10, DstPort: 20, Bytes: bytes}}
		chunk, _ := burstFinish(t, cfg, 2, 0, spec)
		cfg.Mode = ModeFlow
		flow, _ := burstFinish(t, cfg, 2, 0, spec)
		if !relClose(chunk[0], flow[0], 1e-9) {
			t.Fatalf("bytes=%d: chunk finished %.9f, flow %.9f", bytes, chunk[0], flow[0])
		}
	}
}

// TestFlowModeLeafSpineCrossRackMatchesChunk: the tail term covers the
// routed pipeline too — per downstream hop one hop delay plus one chunk
// serialization.
func TestFlowModeLeafSpineCrossRackMatchesChunk(t *testing.T) {
	cfg := Config{
		LinkRateBps:  8e9,
		PropDelaySec: 1e-3,
		ChunkBytes:   1 << 20,
		Topology: TopologyConfig{
			Kind: TopologyLeafSpine, Racks: 2, UplinksPerLeaf: 2,
		},
	}
	for _, spec := range []FlowSpec{
		{Src: 0, Dst: 5, SrcPort: 10, DstPort: 20, Bytes: 6 << 20}, // cross-rack
		{Src: 0, Dst: 2, SrcPort: 11, DstPort: 21, Bytes: 6 << 20}, // same-rack
	} {
		chunk, _ := burstFinish(t, cfg, 8, 0, []FlowSpec{spec})
		fcfg := cfg
		fcfg.Mode = ModeFlow
		flow, _ := burstFinish(t, fcfg, 8, 0, []FlowSpec{spec})
		if !relClose(chunk[0], flow[0], 1e-9) {
			t.Fatalf("dst=%d: chunk finished %.9f, flow %.9f", spec.Dst, chunk[0], flow[0])
		}
	}
}

// TestFlowModeBurstLastCompletionMatchesChunk: under FIFO contention
// the two models share the egress differently flow-by-flow, but both
// are work-conserving, so the burst's last completion matches.
func TestFlowModeBurstLastCompletionMatchesChunk(t *testing.T) {
	cfg := Config{
		LinkRateBps:  8e9,
		PropDelaySec: 1e-3,
		ChunkBytes:   1 << 20,
	}
	specs := []FlowSpec{
		{Src: 0, Dst: 1, SrcPort: 10, DstPort: 20, Bytes: 8 << 20},
		{Src: 0, Dst: 2, SrcPort: 11, DstPort: 21, Bytes: 8 << 20},
		{Src: 0, Dst: 3, SrcPort: 12, DstPort: 22, Bytes: 8 << 20},
	}
	last := func(fin []float64) float64 {
		m := 0.0
		for _, v := range fin {
			m = math.Max(m, v)
		}
		return m
	}
	chunk, _ := burstFinish(t, cfg, 4, 0, specs)
	cfg.Mode = ModeFlow
	flow, _ := burstFinish(t, cfg, 4, 0, specs)
	if !relClose(last(chunk), last(flow), 0.02) {
		t.Fatalf("last completion: chunk %.6f, flow %.6f", last(chunk), last(flow))
	}
}

// TestFlowModeLoopback: intra-host flows bypass the NIC in both modes.
func TestFlowModeLoopback(t *testing.T) {
	cfg := Config{Mode: ModeFlow}
	fin, f := burstFinish(t, cfg, 2, 0, []FlowSpec{{Src: 0, Dst: 0, Bytes: 10 << 20}})
	if f.Host(0).Egress.Bytes() != 0 {
		t.Fatal("loopback used the NIC")
	}
	if fin[0] != f.Config().PropDelaySec {
		t.Fatalf("loopback finished at %g, want %g", fin[0], f.Config().PropDelaySec)
	}
}

// htbGreenYellow installs the TensorLights qdisc shape on host 0: HTB
// with a green class 0 (Prio 0) and yellow class 1 (Prio 1), both
// ceiled at the full payload rate, green selected by DstPort 100.
func htbGreenYellow(t *testing.T, f *Fabric, ceil float64) *qdisc.HTB {
	t.Helper()
	h := qdisc.NewHTB(ceil, 1)
	if err := h.AddClass(0, qdisc.HTBClassConfig{Rate: 1e6, Ceil: ceil, Prio: 0}); err != nil {
		t.Fatal(err)
	}
	if err := h.AddClass(1, qdisc.HTBClassConfig{Rate: 1e6, Ceil: ceil, Prio: 1}); err != nil {
		t.Fatal(err)
	}
	m := qdisc.MatchAll()
	m.DstPort = 100
	h.Classifier().Add(qdisc.Filter{Pref: 1, Match: m, Target: 0})
	f.Host(0).SetEgressQdisc(h)
	return h
}

// TestFlowModeHTBStrictPriority: a green flow takes the whole egress
// while a same-sized yellow flow waits, then yellow gets the residual —
// completion times 1x and 2x the line-rate transfer time.
func TestFlowModeHTBStrictPriority(t *testing.T) {
	cfg := Config{
		LinkRateBps:  8e9, // 1 GB/s wire
		WireOverhead: 1.0, // payload rate = 1 GB/s for round numbers
		PropDelaySec: 1e-3,
		ChunkBytes:   1 << 20,
		Mode:         ModeFlow,
	}
	k := sim.NewKernel()
	f := New(k, sim.NewRNG(7), cfg)
	for i := 0; i < 3; i++ {
		f.AddHost("h")
	}
	htbGreenYellow(t, f, 1e9)
	flows := f.SendBurst(0, []FlowSpec{
		{Src: 0, Dst: 1, SrcPort: 10, DstPort: 100, Bytes: 100 << 20}, // green
		{Src: 0, Dst: 2, SrcPort: 11, DstPort: 200, Bytes: 100 << 20}, // yellow
	})
	k.Run(nil)
	bulk := float64(100<<20) / 1e9
	green, yellow := flows[0].Finished, flows[1].Finished
	if !relClose(green, bulk, 0.05) {
		t.Fatalf("green finished %.4f, want ~%.4f (line rate, no sharing)", green, bulk)
	}
	if !relClose(yellow, 2*bulk, 0.05) {
		t.Fatalf("yellow finished %.4f, want ~%.4f (runs after green)", yellow, 2*bulk)
	}
	// Per-band accounting credits each flow to its egress band.
	bands := f.FlowBandBytes(0)
	if bands[0] != 100<<20 || bands[1] != 100<<20 {
		t.Fatalf("band bytes %v, want 100MB in bands 0 and 1", bands)
	}
}

// TestFlowModeReclassifyMidFlight: a tc-style reconfiguration promotes
// an in-flight flow out of a throttled class; the engine recomputes and
// the flow finishes at the new rate.
func TestFlowModeReclassifyMidFlight(t *testing.T) {
	cfg := Config{
		LinkRateBps:  8e9,
		WireOverhead: 1.0,
		PropDelaySec: 1e-3,
		ChunkBytes:   1 << 20,
		Mode:         ModeFlow,
	}
	k := sim.NewKernel()
	f := New(k, sim.NewRNG(7), cfg)
	f.AddHost("h")
	f.AddHost("h")
	h := qdisc.NewHTB(1e9, 1)
	if err := h.AddClass(0, qdisc.HTBClassConfig{Rate: 1e6, Ceil: 1e9, Prio: 0}); err != nil {
		t.Fatal(err)
	}
	// Default class throttled to a quarter of the line rate.
	if err := h.AddClass(1, qdisc.HTBClassConfig{Rate: 1e6, Ceil: 0.25e9, Prio: 1}); err != nil {
		t.Fatal(err)
	}
	f.Host(0).SetEgressQdisc(h)
	fl := f.Send(FlowSpec{Src: 0, Dst: 1, SrcPort: 10, DstPort: 200, Bytes: 100 << 20})
	// Unpromoted: 100MB at 0.25 GB/s = 0.4s. Promote at 0.1s; the
	// remaining 75MB runs at 1 GB/s: finish ~0.175s + tail.
	k.Schedule(0.1, func() {
		m := qdisc.MatchAll()
		m.DstPort = 200
		h.Classifier().Add(qdisc.Filter{Pref: 1, Match: m, Target: 0})
		f.EgressReconfigured(0)
	})
	k.Run(nil)
	if !fl.Done() {
		t.Fatal("flow never completed")
	}
	if !relClose(fl.Finished, 0.175, 0.05) {
		t.Fatalf("promoted flow finished %.4f, want ~0.175", fl.Finished)
	}
}

// TestFlowModeNICFaultStallsAndResumes: downing the source NIC freezes
// the flow; the completion slips by exactly the outage.
func TestFlowModeNICFaultStallsAndResumes(t *testing.T) {
	cfg := Config{
		LinkRateBps:  8e9,
		WireOverhead: 1.0,
		PropDelaySec: 1e-3,
		ChunkBytes:   1 << 20,
		Mode:         ModeFlow,
	}
	k := sim.NewKernel()
	f := New(k, sim.NewRNG(7), cfg)
	f.AddHost("h")
	f.AddHost("h")
	fl := f.Send(FlowSpec{Src: 0, Dst: 1, Bytes: 100 << 20}) // 0.1s at line rate
	k.Schedule(0.02, func() { f.Host(0).SetNICDown(true) })
	k.Schedule(0.07, func() { f.Host(0).SetNICDown(false) })
	k.Run(nil)
	if !relClose(fl.Finished, 0.15, 0.05) {
		t.Fatalf("finished %.4f, want ~0.15 (0.1s transfer + 0.05s outage)", fl.Finished)
	}
}

// TestFlowModeDropProbDeratesEgress: an injected chunk-loss probability
// becomes a fluid capacity derate (the goodput TCP would sustain while
// retransmitting that fraction).
func TestFlowModeDropProbDeratesEgress(t *testing.T) {
	cfg := Config{
		LinkRateBps:  8e9,
		WireOverhead: 1.0,
		PropDelaySec: 1e-3,
		ChunkBytes:   1 << 20,
		Mode:         ModeFlow,
	}
	k := sim.NewKernel()
	f := New(k, sim.NewRNG(7), cfg)
	f.AddHost("h")
	f.AddHost("h")
	f.Host(0).SetChunkDropProb(0.5)
	fl := f.Send(FlowSpec{Src: 0, Dst: 1, Bytes: 100 << 20})
	k.Run(nil)
	bulk := float64(100<<20) / 0.5e9
	if !relClose(fl.Finished, bulk, 0.05) {
		t.Fatalf("finished %.4f, want ~%.4f (half the 1 GB/s line)", fl.Finished, bulk)
	}
	if f.DroppedChunks() != 0 {
		t.Fatal("flow mode simulates no discrete losses")
	}
}

// TestFlowModeShardingRejected: the analytic engine recomputes global
// rates on one kernel; shard plans must refuse flow mode.
func TestFlowModeShardingRejected(t *testing.T) {
	cfg := Config{
		Mode:       ModeFlow,
		PerHostRNG: true,
		Topology:   TopologyConfig{Kind: TopologyLeafSpine, Racks: 2},
	}
	if _, err := PlanShards(cfg, 8, 2); err == nil {
		t.Fatal("PlanShards accepted flow mode with 2 shards")
	}
	if _, err := PlanShards(cfg, 8, 1); err != nil {
		t.Fatalf("PlanShards rejected flow mode with 1 shard: %v", err)
	}
}

// TestFlowModePortAccessors: the utilization accessors read from the
// analytic engine so metrics work unchanged across modes.
func TestFlowModePortAccessors(t *testing.T) {
	cfg := Config{
		LinkRateBps:  8e9,
		WireOverhead: 1.0,
		PropDelaySec: 1e-3,
		ChunkBytes:   1 << 20,
		Mode:         ModeFlow,
	}
	k := sim.NewKernel()
	f := New(k, sim.NewRNG(7), cfg)
	f.AddHost("h")
	f.AddHost("h")
	const bytes = 100 << 20
	f.Send(FlowSpec{Src: 0, Dst: 1, Bytes: bytes})
	k.Schedule(0.05, func() {
		eg := f.Host(0).Egress
		if q := eg.QueuedBytes(); q <= 0 || q >= bytes {
			t.Errorf("mid-flight backlog %d, want in (0, %d)", q, int64(bytes))
		}
		if b := eg.Bytes(); b <= 0 || b >= bytes {
			t.Errorf("mid-flight served %d, want in (0, %d)", b, int64(bytes))
		}
	})
	k.Run(nil)
	eg := f.Host(0).Egress
	if eg.Bytes() != bytes {
		t.Fatalf("egress served %d, want %d", eg.Bytes(), int64(bytes))
	}
	if got, want := eg.Chunks(), int64(bytes/(1<<20)); got != want {
		t.Fatalf("egress chunks %d, want %d", got, want)
	}
	if bt, want := eg.BusyTime(), float64(bytes)/1e9; !relClose(bt, want, 0.01) {
		t.Fatalf("busy time %.4f, want ~%.4f", bt, want)
	}
	if eg.QueuedBytes() != 0 {
		t.Fatalf("backlog %d after completion", eg.QueuedBytes())
	}
	if f.FlowEngineResolves() == 0 {
		t.Fatal("engine never resolved")
	}
}

// TestFlowModeDeterminism: same seed, same completion times.
func TestFlowModeDeterminism(t *testing.T) {
	cfg := Config{Mode: ModeFlow, InjectJitter: 1}
	specs := []FlowSpec{
		{Src: 0, Dst: 1, SrcPort: 10, DstPort: 20, Bytes: 3 << 20},
		{Src: 0, Dst: 2, SrcPort: 11, DstPort: 21, Bytes: 5 << 20},
		{Src: 0, Dst: 3, SrcPort: 12, DstPort: 22, Bytes: 7 << 20},
	}
	a, _ := burstFinish(t, cfg, 4, 0, specs)
	b, _ := burstFinish(t, cfg, 4, 0, specs)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d: %v vs %v", i, a[i], b[i])
		}
	}
}
