// Package tc emulates the Linux traffic-control command-line interface
// over the simulated network fabric. TensorLights' entire actuation path
// in the paper is "run tc on the hosts with contending parameter
// servers"; this package provides the same surface — qdisc/class/filter
// add/change/del plus a `-s`-style stats dump — applied to the egress
// port of a simulated host.
package tc

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/qdisc"
	"repro/internal/simnet"
)

// Controller applies tc commands to hosts in a fabric.
type Controller struct {
	fabric *simnet.Fabric
	// execCount tracks configuration commands applied, a proxy for the
	// "amount of tc reconfigurations" the paper tries to limit.
	execCount int
	// execErrors counts commands that failed (parse errors, semantic
	// errors, and injected actuation faults alike).
	execErrors int
	// execHook, when set, intercepts every command before it is applied.
	// A non-nil return aborts the command with that error — this is how
	// internal/faults models a wedged tc binary or an unreachable host
	// agent.
	execHook func(hostID int, cmd string) error
}

// NewController creates a controller over the fabric.
func NewController(f *simnet.Fabric) *Controller {
	return &Controller{fabric: f}
}

// ExecCount returns how many state-changing commands have been applied.
func (c *Controller) ExecCount() int { return c.execCount }

// ExecErrors returns how many commands failed.
func (c *Controller) ExecErrors() int { return c.execErrors }

// SetExecHook installs (or, with nil, removes) a pre-execution hook.
// See Controller.execHook.
func (c *Controller) SetExecHook(hook func(hostID int, cmd string) error) {
	c.execHook = hook
}

// LinkRateBps returns the host NIC's line rate in bits/sec, which
// callers use to set work-conserving ceils.
func (c *Controller) LinkRateBps(hostID int) float64 {
	return c.fabric.Host(hostID).Egress.RateBytes() * 8
}

// Exec parses and applies one tc command on the given host, e.g.:
//
//	qdisc add dev eth0 root htb default 5
//	qdisc add dev eth0 root prio bands 6
//	qdisc del dev eth0 root
//	class add dev eth0 classid 3 rate 1mbit ceil 10gbit prio 2
//	class change dev eth0 classid 3 prio 4
//	class del dev eth0 classid 3
//	filter add dev eth0 pref 10 match sport 5001 flowid 3
//	filter del dev eth0 pref 10
//	filter del dev eth0 all
//
// The leading "tc" word is optional. Only dev eth0 exists per host.
func (c *Controller) Exec(hostID int, cmd string) error {
	if c.execHook != nil {
		if err := c.execHook(hostID, cmd); err != nil {
			c.execErrors++
			return err
		}
	}
	toks := strings.Fields(cmd)
	if len(toks) > 0 && toks[0] == "tc" {
		toks = toks[1:]
	}
	if len(toks) < 2 {
		c.execErrors++
		return fmt.Errorf("tc: short command %q", cmd)
	}
	host := c.fabric.Host(hostID)
	var err error
	switch toks[0] {
	case "qdisc":
		err = c.execQdisc(host, toks[1:])
	case "class":
		err = c.execClass(host, toks[1:])
	case "filter":
		err = c.execFilter(host, toks[1:])
	default:
		err = fmt.Errorf("tc: unknown object %q", toks[0])
	}
	if err == nil {
		c.execCount++
		// In flow mode the analytic fabric reclassifies in-flight flows
		// against the new configuration; a no-op on the chunk fabric.
		c.fabric.EgressReconfigured(hostID)
	} else {
		c.execErrors++
	}
	return err
}

// MustExec is Exec that panics on error, for static configuration code.
func (c *Controller) MustExec(hostID int, cmd string) {
	if err := c.Exec(hostID, cmd); err != nil {
		panic(err)
	}
}

// args provides keyword-value scanning over a token list.
type args struct {
	toks []string
	pos  int
}

func (a *args) next() (string, bool) {
	if a.pos >= len(a.toks) {
		return "", false
	}
	t := a.toks[a.pos]
	a.pos++
	return t, true
}

func (a *args) expect(what string) (string, error) {
	t, ok := a.next()
	if !ok {
		return "", fmt.Errorf("tc: missing %s", what)
	}
	return t, nil
}

func (a *args) expectInt(what string) (int, error) {
	t, err := a.expect(what)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t)
	if err != nil {
		return 0, fmt.Errorf("tc: bad %s %q", what, t)
	}
	return n, nil
}

// consumeDev checks the "dev eth0" pair.
func (a *args) consumeDev() error {
	t, ok := a.next()
	if !ok {
		return fmt.Errorf("tc: missing 'dev'")
	}
	if t != "dev" {
		return fmt.Errorf("tc: expected 'dev', got %q", t)
	}
	name, ok := a.next()
	if !ok {
		return fmt.Errorf("tc: missing device name")
	}
	if name != "eth0" {
		return fmt.Errorf("tc: unknown device %q (only eth0 exists)", name)
	}
	return nil
}

// ParseRate converts tc rate syntax to bytes/sec. Accepted suffixes:
// bit, kbit, mbit, gbit (decimal, bits/sec) and bps, kbps, mbps, gbps
// (bytes/sec ×1000^k, matching tc's meaning of "bps" = bytes/sec).
func ParseRate(s string) (float64, error) {
	ls := strings.ToLower(s)
	suffixes := []struct {
		suf  string
		mult float64 // to bytes/sec
	}{
		{"gbit", 1e9 / 8}, {"mbit", 1e6 / 8}, {"kbit", 1e3 / 8}, {"bit", 1.0 / 8},
		{"gbps", 1e9}, {"mbps", 1e6}, {"kbps", 1e3}, {"bps", 1},
	}
	for _, sf := range suffixes {
		if strings.HasSuffix(ls, sf.suf) {
			v, err := strconv.ParseFloat(strings.TrimSuffix(ls, sf.suf), 64)
			if err != nil {
				return 0, fmt.Errorf("tc: bad rate %q", s)
			}
			if v <= 0 {
				return 0, fmt.Errorf("tc: non-positive rate %q", s)
			}
			return v * sf.mult, nil
		}
	}
	v, err := strconv.ParseFloat(ls, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("tc: bad rate %q", s)
	}
	return v / 8, nil // bare numbers are bits/sec, like tc
}

// ParseSize converts tc size syntax ("32kb", "1mb", plain bytes) to bytes.
func ParseSize(s string) (float64, error) {
	ls := strings.ToLower(s)
	suffixes := []struct {
		suf  string
		mult float64
	}{
		{"mb", 1 << 20}, {"kb", 1 << 10}, {"b", 1},
	}
	for _, sf := range suffixes {
		if strings.HasSuffix(ls, sf.suf) {
			v, err := strconv.ParseFloat(strings.TrimSuffix(ls, sf.suf), 64)
			if err != nil {
				return 0, fmt.Errorf("tc: bad size %q", s)
			}
			return v * sf.mult, nil
		}
	}
	v, err := strconv.ParseFloat(ls, 64)
	if err != nil {
		return 0, fmt.Errorf("tc: bad size %q", s)
	}
	return v, nil
}

func (c *Controller) execQdisc(host *simnet.Host, toks []string) error {
	a := &args{toks: toks}
	verb, err := a.expect("verb")
	if err != nil {
		return err
	}
	if err := a.consumeDev(); err != nil {
		return err
	}
	if t, ok := a.next(); !ok || t != "root" {
		return fmt.Errorf("tc: only root qdiscs are supported")
	}
	switch verb {
	case "del":
		host.SetEgressQdisc(qdisc.NewPFIFO(0))
		return nil
	case "add", "replace":
	default:
		return fmt.Errorf("tc: unknown qdisc verb %q", verb)
	}
	kind, err := a.expect("qdisc kind")
	if err != nil {
		return err
	}
	linkRate := host.Egress.RateBytes()
	switch kind {
	case "pfifo":
		limit := 0
		for {
			t, ok := a.next()
			if !ok {
				break
			}
			if t == "limit" {
				if limit, err = a.expectInt("limit"); err != nil {
					return err
				}
				if limit < 0 {
					return fmt.Errorf("tc: pfifo: negative limit %d", limit)
				}
			} else {
				return fmt.Errorf("tc: pfifo: unknown option %q", t)
			}
		}
		host.SetEgressQdisc(qdisc.NewPFIFO(limit))
	case "pfifo_fast":
		host.SetEgressQdisc(qdisc.NewPFIFOFast())
	case "prio":
		bands := 3
		for {
			t, ok := a.next()
			if !ok {
				break
			}
			if t == "bands" {
				if bands, err = a.expectInt("bands"); err != nil {
					return err
				}
			} else {
				return fmt.Errorf("tc: prio: unknown option %q", t)
			}
		}
		if bands < 1 || bands > 16 {
			return fmt.Errorf("tc: prio: bands %d out of range [1,16]", bands)
		}
		host.SetEgressQdisc(qdisc.NewPrio(bands))
	case "sfq":
		buckets := 128
		for {
			t, ok := a.next()
			if !ok {
				break
			}
			if t == "buckets" || t == "divisor" {
				if buckets, err = a.expectInt("buckets"); err != nil {
					return err
				}
				if buckets < 1 {
					return fmt.Errorf("tc: sfq: buckets %d must be positive", buckets)
				}
			} else {
				return fmt.Errorf("tc: sfq: unknown option %q", t)
			}
		}
		host.SetEgressQdisc(qdisc.NewSFQ(buckets))
	case "tbf":
		rate := 0.0
		burst := 0.0
		limit := 0
		for {
			t, ok := a.next()
			if !ok {
				break
			}
			switch t {
			case "rate":
				rs, err := a.expect("rate value")
				if err != nil {
					return err
				}
				if rate, err = ParseRate(rs); err != nil {
					return err
				}
			case "burst":
				bs, err := a.expect("burst value")
				if err != nil {
					return err
				}
				if burst, err = ParseSize(bs); err != nil {
					return err
				}
			case "limit":
				if limit, err = a.expectInt("limit"); err != nil {
					return err
				}
			default:
				return fmt.Errorf("tc: tbf: unknown option %q", t)
			}
		}
		if rate <= 0 {
			return fmt.Errorf("tc: tbf requires a rate")
		}
		host.SetEgressQdisc(qdisc.NewTBF(rate, burst, limit))
	case "htb":
		def := -1
		for {
			t, ok := a.next()
			if !ok {
				break
			}
			if t == "default" {
				if def, err = a.expectInt("default class"); err != nil {
					return err
				}
			} else {
				return fmt.Errorf("tc: htb: unknown option %q", t)
			}
		}
		host.SetEgressQdisc(qdisc.NewHTB(linkRate, qdisc.ClassID(def)))
	default:
		return fmt.Errorf("tc: unknown qdisc kind %q", kind)
	}
	return nil
}

func (c *Controller) execClass(host *simnet.Host, toks []string) error {
	a := &args{toks: toks}
	verb, err := a.expect("verb")
	if err != nil {
		return err
	}
	if err := a.consumeDev(); err != nil {
		return err
	}
	htb, ok := host.Egress.Qdisc().(*qdisc.HTB)
	if !ok {
		return fmt.Errorf("tc: class commands require an htb root (have %s)",
			host.Egress.Qdisc().Kind())
	}
	if t, e := a.expect("classid keyword"); e != nil {
		return e
	} else if t != "classid" {
		return fmt.Errorf("tc: expected 'classid', got %q", t)
	}
	id, err := a.expectInt("classid")
	if err != nil {
		return err
	}
	if id < 0 {
		return fmt.Errorf("tc: negative classid %d", id)
	}
	if verb == "del" {
		return htb.DeleteClass(qdisc.ClassID(id))
	}
	var cfg qdisc.HTBClassConfig
	cfg.Prio = -1 // "unspecified" for change
	for {
		t, ok := a.next()
		if !ok {
			break
		}
		switch t {
		case "rate":
			rs, e := a.expect("rate value")
			if e != nil {
				return e
			}
			if cfg.Rate, err = ParseRate(rs); err != nil {
				return err
			}
		case "ceil":
			rs, e := a.expect("ceil value")
			if e != nil {
				return e
			}
			if cfg.Ceil, err = ParseRate(rs); err != nil {
				return err
			}
		case "prio":
			if cfg.Prio, err = a.expectInt("prio"); err != nil {
				return err
			}
		case "burst":
			bs, e := a.expect("burst value")
			if e != nil {
				return e
			}
			if cfg.Burst, err = ParseSize(bs); err != nil {
				return err
			}
		case "cburst":
			bs, e := a.expect("cburst value")
			if e != nil {
				return e
			}
			if cfg.CBurst, err = ParseSize(bs); err != nil {
				return err
			}
		case "quantum":
			qs, e := a.expect("quantum value")
			if e != nil {
				return e
			}
			if cfg.Quantum, err = ParseSize(qs); err != nil {
				return err
			}
		default:
			return fmt.Errorf("tc: class: unknown option %q", t)
		}
	}
	switch verb {
	case "add":
		if cfg.Prio < 0 {
			cfg.Prio = 0
		}
		return htb.AddClass(qdisc.ClassID(id), cfg)
	case "change":
		return htb.ChangeClass(qdisc.ClassID(id), cfg)
	default:
		return fmt.Errorf("tc: unknown class verb %q", verb)
	}
}

// classifierOf returns the filter chain of a classful root qdisc.
func classifierOf(host *simnet.Host) (*qdisc.Classifier, error) {
	switch q := host.Egress.Qdisc().(type) {
	case *qdisc.HTB:
		return q.Classifier(), nil
	case *qdisc.Prio:
		return q.Classifier(), nil
	default:
		return nil, fmt.Errorf("tc: filters require a classful root (have %s)", q.Kind())
	}
}

func (c *Controller) execFilter(host *simnet.Host, toks []string) error {
	a := &args{toks: toks}
	verb, err := a.expect("verb")
	if err != nil {
		return err
	}
	if err := a.consumeDev(); err != nil {
		return err
	}
	cl, err := classifierOf(host)
	if err != nil {
		return err
	}
	pref := 0
	hasPref := false
	match := qdisc.MatchAll()
	target := qdisc.NoClass
	hasTarget := false
	all := false
	for {
		t, ok := a.next()
		if !ok {
			break
		}
		switch t {
		case "pref", "prio":
			if pref, err = a.expectInt("pref"); err != nil {
				return err
			}
			if pref < 0 {
				return fmt.Errorf("tc: filter: negative pref %d", pref)
			}
			hasPref = true
		case "match":
			// Consume key/value pairs until a non-match keyword.
			done := false
			for !done {
				key, ok := a.next()
				if !ok {
					break
				}
				switch key {
				case "sport":
					if match.SrcPort, err = a.expectInt("sport"); err != nil {
						return err
					}
				case "dport":
					if match.DstPort, err = a.expectInt("dport"); err != nil {
						return err
					}
				case "job":
					if match.JobID, err = a.expectInt("job"); err != nil {
						return err
					}
				case "mark":
					if match.Mark, err = a.expectInt("mark"); err != nil {
						return err
					}
				default:
					a.pos-- // not ours; let the outer loop handle it
					done = true
				}
			}
		case "flowid", "classid":
			id, e := a.expectInt("flowid")
			if e != nil {
				return e
			}
			if id < 0 {
				return fmt.Errorf("tc: filter: negative flowid %d", id)
			}
			target = qdisc.ClassID(id)
			hasTarget = true
		case "all":
			all = true
		default:
			return fmt.Errorf("tc: filter: unknown option %q", t)
		}
	}
	switch verb {
	case "add":
		if !hasTarget {
			return fmt.Errorf("tc: filter add needs flowid")
		}
		// The flowid must name an existing destination, as real tc
		// enforces: an htb class already added, or a prio band in range.
		switch q := host.Egress.Qdisc().(type) {
		case *qdisc.HTB:
			if q.Class(target) == nil {
				return fmt.Errorf("tc: filter flowid %d: no such htb class", target)
			}
		case *qdisc.Prio:
			if int(target) >= q.Bands() {
				return fmt.Errorf("tc: filter flowid %d out of prio band range [0,%d)",
					target, q.Bands())
			}
		}
		cl.Add(qdisc.Filter{Pref: pref, Match: match, Target: target})
		return nil
	case "del":
		if all {
			cl.Clear()
			return nil
		}
		if !hasPref {
			return fmt.Errorf("tc: filter del needs pref or 'all'")
		}
		n := cl.RemoveWhere(func(f qdisc.Filter) bool { return f.Pref == pref })
		if n == 0 {
			return fmt.Errorf("tc: no filter with pref %d", pref)
		}
		return nil
	default:
		return fmt.Errorf("tc: unknown filter verb %q", verb)
	}
}

// Show renders a `tc -s qdisc show dev eth0` style summary for a host.
func (c *Controller) Show(hostID int) string {
	host := c.fabric.Host(hostID)
	q := host.Egress.Qdisc()
	var b strings.Builder
	st := q.Stats()
	fmt.Fprintf(&b, "qdisc %s root dev eth0\n", q.Kind())
	fmt.Fprintf(&b, " Sent %d bytes %d pkt (dropped %d, overlimits %d)\n",
		st.DequeuedBytes, st.DequeuedPackets, st.DroppedPackets, st.Overlimits)
	fmt.Fprintf(&b, " backlog %db %dp\n", q.BacklogBytes(), q.Len())
	if htb, ok := q.(*qdisc.HTB); ok {
		for _, id := range htb.Classes() {
			cls := htb.Class(id)
			cs := cls.Stats()
			cfg := cls.Config()
			fmt.Fprintf(&b, "class htb 1:%d prio %d rate %.0fbps ceil %.0fbps\n",
				id, cfg.Prio, cfg.Rate, cfg.Ceil)
			fmt.Fprintf(&b, " Sent %d bytes %d pkt backlog %dp\n",
				cs.DequeuedBytes, cs.DequeuedPackets, cls.Len())
		}
	}
	if pr, ok := q.(*qdisc.Prio); ok {
		for i := 0; i < pr.Bands(); i++ {
			bs := pr.Band(i).Stats()
			fmt.Fprintf(&b, "band %d: Sent %d bytes %d pkt backlog %dp\n",
				i, bs.DequeuedBytes, bs.DequeuedPackets, pr.Band(i).Len())
		}
	}
	if cl, err := classifierOf(host); err == nil {
		for _, f := range cl.Filters() {
			fmt.Fprintf(&b, "filter pref %d %s flowid %d\n", f.Pref, f.Match, f.Target)
		}
	}
	return b.String()
}

// Fingerprint returns a canonical one-line summary of a host's egress
// traffic-control state: root qdisc kind plus, where classful, its
// classes/bands and filter chain. Two hosts with equal fingerprints are
// configured identically (modulo traffic counters). internal/core's
// reconcile loop compares the fingerprint it last installed against the
// one read back here to detect drift after actuation failures and
// repair it.
func (c *Controller) Fingerprint(hostID int) string {
	host := c.fabric.Host(hostID)
	q := host.Egress.Qdisc()
	var b strings.Builder
	b.WriteString(q.Kind())
	switch q := q.(type) {
	case *qdisc.HTB:
		fmt.Fprintf(&b, " default:%d", q.DefaultClass())
		for _, id := range q.Classes() {
			cfg := q.Class(id).Config()
			fmt.Fprintf(&b, " class:%d(rate:%.0f,ceil:%.0f,prio:%d)",
				id, cfg.Rate, cfg.Ceil, cfg.Prio)
		}
	case *qdisc.Prio:
		fmt.Fprintf(&b, " bands:%d", q.Bands())
	}
	if cl, err := classifierOf(host); err == nil {
		for _, f := range cl.Filters() {
			fmt.Fprintf(&b, " filter:%d(%s->%d)", f.Pref, f.Match, f.Target)
		}
	}
	return b.String()
}
