package tc

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func newTestFabric(t *testing.T) (*simnet.Fabric, *Controller) {
	t.Helper()
	k := sim.NewKernel()
	fab := simnet.New(k, sim.NewRNG(1), simnet.Config{})
	fab.AddHost("h0")
	fab.AddHost("h1")
	return fab, NewController(fab)
}

func TestParseRate(t *testing.T) {
	cases := []struct {
		in   string
		want float64 // bytes/sec
	}{
		{"10gbit", 1.25e9},
		{"1gbit", 1.25e8},
		{"100mbit", 1.25e7},
		{"1mbit", 125000},
		{"8kbit", 1000},
		{"8bit", 1},
		{"1gbps", 1e9},
		{"1mbps", 1e6},
		{"1kbps", 1e3},
		{"80bps", 80},
		{"800", 100}, // bare bits/sec
	}
	for _, c := range cases {
		got, err := ParseRate(c.in)
		if err != nil {
			t.Fatalf("%s: %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("%s: got %v want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "fast", "-3mbit", "0gbit", "mbit"} {
		if _, err := ParseRate(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"1kb", 1024},
		{"2mb", 2 << 20},
		{"512b", 512},
		{"100", 100},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if err != nil || got != c.want {
			t.Fatalf("%s: got %v err %v", c.in, got, err)
		}
	}
	if _, err := ParseSize("huge"); err == nil {
		t.Fatal("bad size accepted")
	}
}

func TestQdiscAddKinds(t *testing.T) {
	fab, ctl := newTestFabric(t)
	cases := []struct {
		cmd  string
		kind string
	}{
		{"qdisc add dev eth0 root pfifo limit 100", "pfifo"},
		{"qdisc add dev eth0 root prio bands 6", "prio"},
		{"qdisc add dev eth0 root sfq buckets 64", "sfq"},
		{"qdisc add dev eth0 root tbf rate 1gbit burst 32kb", "tbf"},
		{"qdisc add dev eth0 root htb default 5", "htb"},
	}
	for _, c := range cases {
		if err := ctl.Exec(0, c.cmd); err != nil {
			t.Fatalf("%s: %v", c.cmd, err)
		}
		if got := fab.Host(0).Egress.Qdisc().Kind(); got != c.kind {
			t.Fatalf("%s installed %s", c.cmd, got)
		}
	}
	if ctl.ExecCount() != len(cases) {
		t.Fatalf("exec count %d", ctl.ExecCount())
	}
}

func TestQdiscDelRestoresPfifo(t *testing.T) {
	fab, ctl := newTestFabric(t)
	ctl.MustExec(0, "qdisc add dev eth0 root htb default 0")
	ctl.MustExec(0, "qdisc del dev eth0 root")
	if fab.Host(0).Egress.Qdisc().Kind() != "pfifo" {
		t.Fatal("del did not restore pfifo")
	}
}

func TestLeadingTcWordOptional(t *testing.T) {
	fab, ctl := newTestFabric(t)
	ctl.MustExec(0, "tc qdisc add dev eth0 root prio bands 4")
	if fab.Host(0).Egress.Qdisc().Kind() != "prio" {
		t.Fatal("tc prefix not accepted")
	}
}

func TestFullTensorLightsSequence(t *testing.T) {
	fab, ctl := newTestFabric(t)
	seq := []string{
		"qdisc add dev eth0 root htb default 2",
		"class add dev eth0 classid 0 rate 1mbit ceil 10gbit prio 0",
		"class add dev eth0 classid 1 rate 1mbit ceil 10gbit prio 1",
		"class add dev eth0 classid 2 rate 1mbit ceil 10gbit prio 2",
		"filter add dev eth0 pref 0 match sport 5000 flowid 0",
		"filter add dev eth0 pref 1 match sport 5001 flowid 1",
	}
	for _, c := range seq {
		if err := ctl.Exec(0, c); err != nil {
			t.Fatalf("%s: %v", c, err)
		}
	}
	htb := fab.Host(0).Egress.Qdisc().(*qdisc.HTB)
	if len(htb.Classes()) != 3 {
		t.Fatalf("classes %v", htb.Classes())
	}
	if htb.Classifier().Len() != 2 {
		t.Fatal("filters missing")
	}
	// Classification works end to end.
	got := htb.Classifier().Classify(&qdisc.Chunk{SrcPort: 5001})
	if got != 1 {
		t.Fatalf("classified to %d", got)
	}
	// Unmatched goes to default.
	got = htb.Classifier().Classify(&qdisc.Chunk{SrcPort: 9999})
	if got != 2 {
		t.Fatalf("default classified to %d", got)
	}
}

func TestClassChangeAndDelete(t *testing.T) {
	fab, ctl := newTestFabric(t)
	ctl.MustExec(0, "qdisc add dev eth0 root htb default 0")
	ctl.MustExec(0, "class add dev eth0 classid 0 rate 1mbit ceil 10gbit prio 5")
	ctl.MustExec(0, "class change dev eth0 classid 0 prio 2")
	htb := fab.Host(0).Egress.Qdisc().(*qdisc.HTB)
	if htb.Class(0).Config().Prio != 2 {
		t.Fatal("prio change lost")
	}
	if htb.Class(0).Config().Ceil != 1.25e9 {
		t.Fatal("ceil lost on change")
	}
	ctl.MustExec(0, "class del dev eth0 classid 0")
	if htb.Class(0) != nil {
		t.Fatal("class not deleted")
	}
}

func TestClassRequiresHTB(t *testing.T) {
	_, ctl := newTestFabric(t)
	ctl.MustExec(0, "qdisc add dev eth0 root prio bands 3")
	if err := ctl.Exec(0, "class add dev eth0 classid 0 rate 1mbit"); err == nil {
		t.Fatal("class add on prio accepted")
	}
}

func TestFilterDel(t *testing.T) {
	fab, ctl := newTestFabric(t)
	ctl.MustExec(0, "qdisc add dev eth0 root prio bands 3")
	ctl.MustExec(0, "filter add dev eth0 pref 1 match sport 5000 flowid 0")
	ctl.MustExec(0, "filter add dev eth0 pref 2 match sport 5001 flowid 1")
	ctl.MustExec(0, "filter del dev eth0 pref 1")
	pr := fab.Host(0).Egress.Qdisc().(*qdisc.Prio)
	if pr.Classifier().Len() != 1 {
		t.Fatal("pref-1 filter not removed")
	}
	if err := ctl.Exec(0, "filter del dev eth0 pref 9"); err == nil {
		t.Fatal("deleting missing filter accepted")
	}
	ctl.MustExec(0, "filter del dev eth0 all")
	if pr.Classifier().Len() != 0 {
		t.Fatal("filter del all")
	}
}

func TestFilterMatchKeys(t *testing.T) {
	fab, ctl := newTestFabric(t)
	ctl.MustExec(0, "qdisc add dev eth0 root prio bands 4")
	ctl.MustExec(0, "filter add dev eth0 pref 0 match sport 5000 dport 80 job 3 mark 7 flowid 2")
	pr := fab.Host(0).Egress.Qdisc().(*qdisc.Prio)
	f := pr.Classifier().Filters()[0]
	if f.Match.SrcPort != 5000 || f.Match.DstPort != 80 || f.Match.JobID != 3 || f.Match.Mark != 7 {
		t.Fatalf("match %+v", f.Match)
	}
}

func TestErrors(t *testing.T) {
	_, ctl := newTestFabric(t)
	bad := []string{
		"",
		"qdisc",
		"blah add dev eth0 root pfifo",
		"qdisc add dev eth1 root pfifo",               // unknown device
		"qdisc add dev eth0 parent pfifo",             // non-root
		"qdisc add dev eth0 root mystery",             // unknown kind
		"qdisc add dev eth0 root prio bands 99",       // out of range
		"qdisc add dev eth0 root tbf burst 32kb",      // missing rate
		"qdisc frobnicate dev eth0 root pfifo",        // unknown verb
		"filter add dev eth0 pref 0 match sport 5000", // no flowid
	}
	for _, cmd := range bad {
		if err := ctl.Exec(0, cmd); err == nil {
			t.Fatalf("%q accepted", cmd)
		}
	}
	// Filters require a classful root.
	ctl.MustExec(0, "qdisc add dev eth0 root pfifo")
	if err := ctl.Exec(0, "filter add dev eth0 pref 0 match sport 1 flowid 0"); err == nil {
		t.Fatal("filter on pfifo accepted")
	}
	if ctl.ExecCount() != 1 {
		t.Fatalf("failed commands counted: %d", ctl.ExecCount())
	}
}

func TestMustExecPanics(t *testing.T) {
	_, ctl := newTestFabric(t)
	defer func() {
		if recover() == nil {
			t.Fatal("MustExec did not panic on error")
		}
	}()
	ctl.MustExec(0, "qdisc add dev eth0 root mystery")
}

func TestShow(t *testing.T) {
	_, ctl := newTestFabric(t)
	ctl.MustExec(0, "qdisc add dev eth0 root htb default 1")
	ctl.MustExec(0, "class add dev eth0 classid 0 rate 1mbit ceil 10gbit prio 0")
	ctl.MustExec(0, "filter add dev eth0 pref 3 match sport 5000 flowid 0")
	out := ctl.Show(0)
	for _, want := range []string{"qdisc htb root", "class htb 1:0 prio 0", "filter pref 3", "sport 5000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Show missing %q:\n%s", want, out)
		}
	}
}

func TestLinkRateBps(t *testing.T) {
	_, ctl := newTestFabric(t)
	if got := ctl.LinkRateBps(0); got != 10e9 {
		t.Fatalf("link rate %v", got)
	}
}

// Property: ParseRate on generated "<n>mbit" strings scales linearly.
func TestParseRateProperty(t *testing.T) {
	f := func(n uint16) bool {
		v := int(n%10000) + 1
		got, err := ParseRate(formatMbit(v))
		return err == nil && got == float64(v)*1e6/8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func formatMbit(v int) string {
	return fmtInt(v) + "mbit"
}

func fmtInt(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}

func TestClassCommandErrors(t *testing.T) {
	_, ctl := newTestFabric(t)
	ctl.MustExec(0, "qdisc add dev eth0 root htb default 0")
	bad := []string{
		"class add dev eth0 classid 0 rate nonsense",
		"class add dev eth0 classid 0 ceil nonsense",
		"class add dev eth0 classid 0 burst nonsense",
		"class add dev eth0 classid 0 cburst nonsense",
		"class add dev eth0 classid 0 quantum nonsense",
		"class add dev eth0 classid 0 rate 1mbit bogus 3",
		"class add dev eth0 nochassid 0 rate 1mbit",
		"class frobnicate dev eth0 classid 0 rate 1mbit",
		"class add dev eth0 classid zzz rate 1mbit",
		"class del dev eth0 classid 7",
	}
	for _, cmd := range bad {
		if err := ctl.Exec(0, cmd); err == nil {
			t.Fatalf("%q accepted", cmd)
		}
	}
	// Full option coverage on the happy path.
	ctl.MustExec(0, "class add dev eth0 classid 3 rate 1mbit ceil 2mbit prio 4 burst 64kb cburst 64kb quantum 32kb")
	fab, _ := newTestFabric(t)
	_ = fab
}

func TestShowPrioBands(t *testing.T) {
	_, ctl := newTestFabric(t)
	ctl.MustExec(0, "qdisc add dev eth0 root prio bands 3")
	out := ctl.Show(0)
	if !strings.Contains(out, "band 0:") || !strings.Contains(out, "band 2:") {
		t.Fatalf("prio Show:\n%s", out)
	}
}

func TestFilterErrors(t *testing.T) {
	_, ctl := newTestFabric(t)
	ctl.MustExec(0, "qdisc add dev eth0 root prio bands 3")
	bad := []string{
		"filter add dev eth0 pref x match sport 1 flowid 0",
		"filter add dev eth0 match sport nonsense flowid 0",
		"filter add dev eth0 match dport nonsense flowid 0",
		"filter add dev eth0 match job nonsense flowid 0",
		"filter add dev eth0 match mark nonsense flowid 0",
		"filter add dev eth0 bogus flowid 0",
		"filter del dev eth0",
		"filter frobnicate dev eth0 pref 1",
		"filter add dev eth0 flowid zzz",
	}
	for _, cmd := range bad {
		if err := ctl.Exec(0, cmd); err == nil {
			t.Fatalf("%q accepted", cmd)
		}
	}
}

func TestPFIFOFastViaTc(t *testing.T) {
	fab, ctl := newTestFabric(t)
	ctl.MustExec(0, "qdisc add dev eth0 root pfifo_fast")
	if fab.Host(0).Egress.Qdisc().Kind() != "pfifo_fast" {
		t.Fatal("pfifo_fast not installed")
	}
}
