package tc

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestExecErrorMessagesNameOffendingToken drives every hardened parse
// path and asserts the error text pinpoints what was wrong — a
// controller retrying failed actuation needs errors it can log usefully.
func TestExecErrorMessagesNameOffendingToken(t *testing.T) {
	_, ctl := newTestFabric(t)
	// An htb root with one class, so class/filter commands have a target.
	ctl.MustExec(0, "qdisc add dev eth0 root htb default 5")
	ctl.MustExec(0, "class add dev eth0 classid 5 rate 1mbit ceil 10gbit")

	cases := []struct {
		name string
		cmd  string
		want string // substring the error must contain
	}{
		{"empty", "", `short command ""`},
		{"lone word", "qdisc", `short command "qdisc"`},
		{"unknown object", "frob add dev eth0", `unknown object "frob"`},
		{"missing dev", "qdisc add", "missing 'dev'"},
		{"wrong dev keyword", "qdisc add veth eth0 root pfifo", `expected 'dev', got "veth"`},
		{"unknown device", "qdisc add dev wlan0 root pfifo", `unknown device "wlan0"`},
		{"not root", "qdisc add dev eth0 parent pfifo", "only root qdiscs"},
		{"unknown qdisc verb", "qdisc tweak dev eth0 root", `unknown qdisc verb "tweak"`},
		{"unknown qdisc kind", "qdisc add dev eth0 root codel", `unknown qdisc kind "codel"`},
		{"pfifo bad option", "qdisc add dev eth0 root pfifo depth 9", `pfifo: unknown option "depth"`},
		{"pfifo bad limit", "qdisc add dev eth0 root pfifo limit many", `bad limit "many"`},
		{"pfifo negative limit", "qdisc add dev eth0 root pfifo limit -1", "negative limit -1"},
		{"prio bands range", "qdisc add dev eth0 root prio bands 99", "bands 99 out of range"},
		{"sfq zero buckets", "qdisc add dev eth0 root sfq buckets 0", "buckets 0 must be positive"},
		{"tbf missing rate", "qdisc add dev eth0 root tbf burst 32kb", "tbf requires a rate"},
		{"tbf bad rate", "qdisc add dev eth0 root tbf rate warp9", `bad rate "warp9"`},
		{"htb bad default", "qdisc add dev eth0 root htb default x", `bad default class "x"`},
		{"class missing classid", "class add dev eth0 rate 1mbit", `expected 'classid', got "rate"`},
		{"class bad classid", "class add dev eth0 classid five", `bad classid "five"`},
		{"class negative classid", "class add dev eth0 classid -3", "negative classid -3"},
		{"class bad option", "class add dev eth0 classid 7 weight 2", `class: unknown option "weight"`},
		{"class unknown verb", "class tweak dev eth0 classid 5", `unknown class verb "tweak"`},
		{"filter negative pref", "filter add dev eth0 pref -2 flowid 5", "negative pref -2"},
		{"filter bad sport", "filter add dev eth0 match sport http flowid 5", `bad sport "http"`},
		{"filter negative flowid", "filter add dev eth0 flowid -5", "negative flowid -5"},
		{"filter missing flowid", "filter add dev eth0 pref 1 match sport 80", "needs flowid"},
		{"filter missing class", "filter add dev eth0 flowid 9", "flowid 9: no such htb class"},
		{"filter bad option", "filter add dev eth0 flowid 5 police", `filter: unknown option "police"`},
		{"filter del no pref", "filter del dev eth0", "needs pref or 'all'"},
		{"filter del missing pref", "filter del dev eth0 pref 42", "no filter with pref 42"},
	}
	for _, tc := range cases {
		err := ctl.Exec(0, tc.cmd)
		if err == nil {
			t.Errorf("%s: %q accepted", tc.name, tc.cmd)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the problem (want substring %q)",
				tc.name, err, tc.want)
		}
	}
}

func TestFilterFlowidMustExist(t *testing.T) {
	_, ctl := newTestFabric(t)
	ctl.MustExec(1, "qdisc add dev eth0 root prio bands 4")
	if err := ctl.Exec(1, "filter add dev eth0 match sport 80 flowid 4"); err == nil ||
		!strings.Contains(err.Error(), "out of prio band range") {
		t.Fatalf("prio filter past last band accepted: %v", err)
	}
	if err := ctl.Exec(1, "filter add dev eth0 match sport 80 flowid 3"); err != nil {
		t.Fatalf("in-range prio filter rejected: %v", err)
	}
}

func TestExecHookInterceptsAndCounts(t *testing.T) {
	_, ctl := newTestFabric(t)
	boom := errors.New("tc: injected: binary wedged")
	failing := true
	var seen []string
	ctl.SetExecHook(func(hostID int, cmd string) error {
		seen = append(seen, fmt.Sprintf("%d:%s", hostID, cmd))
		if failing {
			return boom
		}
		return nil
	})
	cmd := "qdisc add dev eth0 root htb default 5"
	if err := ctl.Exec(0, cmd); !errors.Is(err, boom) {
		t.Fatalf("hook error not surfaced: %v", err)
	}
	if ctl.ExecCount() != 0 || ctl.ExecErrors() != 1 {
		t.Fatalf("counters after failed exec: count=%d errors=%d", ctl.ExecCount(), ctl.ExecErrors())
	}
	if ctl.Fingerprint(0) != "pfifo" {
		t.Fatalf("failed command mutated state: %s", ctl.Fingerprint(0))
	}
	failing = false
	if err := ctl.Exec(0, cmd); err != nil {
		t.Fatal(err)
	}
	if ctl.ExecCount() != 1 {
		t.Fatalf("exec count %d", ctl.ExecCount())
	}
	if len(seen) != 2 || seen[0] != "0:"+cmd {
		t.Fatalf("hook observations: %v", seen)
	}
	ctl.SetExecHook(nil)
	if err := ctl.Exec(0, "qdisc del dev eth0 root"); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintReflectsState(t *testing.T) {
	_, ctl := newTestFabric(t)
	if fp := ctl.Fingerprint(0); fp != "pfifo" {
		t.Fatalf("default fingerprint %q", fp)
	}
	ctl.MustExec(0, "qdisc add dev eth0 root htb default 5")
	ctl.MustExec(0, "class add dev eth0 classid 5 rate 1mbit ceil 10gbit prio 5")
	ctl.MustExec(0, "class add dev eth0 classid 1 rate 1mbit ceil 10gbit prio 1")
	ctl.MustExec(0, "filter add dev eth0 pref 10 match sport 5001 flowid 1")
	fp := ctl.Fingerprint(0)
	for _, want := range []string{"htb", "default:5", "class:5", "class:1", "prio:1", "filter:10", "->1"} {
		if !strings.Contains(fp, want) {
			t.Fatalf("fingerprint %q missing %q", fp, want)
		}
	}
	// Identical configuration on another host yields the same fingerprint.
	ctl.MustExec(1, "qdisc add dev eth0 root htb default 5")
	ctl.MustExec(1, "class add dev eth0 classid 5 rate 1mbit ceil 10gbit prio 5")
	ctl.MustExec(1, "class add dev eth0 classid 1 rate 1mbit ceil 10gbit prio 1")
	ctl.MustExec(1, "filter add dev eth0 pref 10 match sport 5001 flowid 1")
	if fp2 := ctl.Fingerprint(1); fp2 != fp {
		t.Fatalf("equal configs, unequal fingerprints:\n%s\n%s", fp, fp2)
	}
	// Drift (a deleted class) changes the fingerprint.
	ctl.MustExec(1, "class del dev eth0 classid 1")
	if ctl.Fingerprint(1) == fp {
		t.Fatal("fingerprint blind to a deleted class")
	}
}
