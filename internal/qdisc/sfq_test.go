package qdisc

import (
	"testing"
	"testing/quick"
)

func TestSFQFairInterleaving(t *testing.T) {
	s := NewSFQ(64)
	// Two flows, one with 10x the chunks of the other: round robin
	// should interleave so the small flow finishes in its first rounds.
	for i := 0; i < 20; i++ {
		s.Enqueue(&Chunk{FlowID: 1, Bytes: 10}, 0)
	}
	for i := 0; i < 2; i++ {
		s.Enqueue(&Chunk{FlowID: 2, Bytes: 10}, 0)
	}
	pos2 := []int{}
	for i := 0; s.Len() > 0; i++ {
		c := s.Dequeue(0)
		if c.FlowID == 2 {
			pos2 = append(pos2, i)
		}
	}
	if len(pos2) != 2 || pos2[1] > 5 {
		t.Fatalf("small flow served at %v, want within first rounds", pos2)
	}
}

func TestSFQPerFlowOrder(t *testing.T) {
	s := NewSFQ(8)
	for i := 0; i < 6; i++ {
		s.Enqueue(&Chunk{FlowID: 3, Seq: i, Bytes: 10}, 0)
	}
	prev := -1
	for s.Len() > 0 {
		c := s.Dequeue(0)
		if c.Seq <= prev {
			t.Fatal("within-flow order broken")
		}
		prev = c.Seq
	}
}

func TestSFQReadyAtStats(t *testing.T) {
	s := NewSFQ(0) // defaults to 128
	if s.Buckets() != 128 {
		t.Fatalf("default buckets %d", s.Buckets())
	}
	if s.ReadyAt(2) != Never {
		t.Fatal("empty sfq ready")
	}
	s.Enqueue(&Chunk{FlowID: 9, Bytes: 77}, 2)
	if s.ReadyAt(3) != 3 {
		t.Fatal("non-empty sfq not ready")
	}
	if s.BacklogBytes() != 77 || s.Len() != 1 {
		t.Fatal("accounting")
	}
	if s.Kind() != "sfq" {
		t.Fatal("kind")
	}
	s.Dequeue(3)
	if s.Stats().DequeuedPackets != 1 {
		t.Fatal("stats")
	}
}

func TestSFQConservationProperty(t *testing.T) {
	f := func(flows []uint8) bool {
		s := NewSFQ(32)
		var in, out int64
		for i, fl := range flows {
			b := int64(fl) + 1
			in += b
			s.Enqueue(&Chunk{FlowID: uint64(fl % 7), Seq: i, Bytes: b}, 0)
		}
		for {
			c := s.Dequeue(0)
			if c == nil {
				break
			}
			out += c.Bytes
		}
		return in == out && s.Len() == 0 && s.BacklogBytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
