package qdisc

import (
	"testing"
	"testing/quick"
)

func mkChunk(flow uint64, sport int, bytes int64) *Chunk {
	return &Chunk{FlowID: flow, SrcPort: sport, DstPort: 9000, JobID: int(flow), Bytes: bytes}
}

func TestPFIFOOrder(t *testing.T) {
	p := NewPFIFO(0)
	for i := 0; i < 10; i++ {
		p.Enqueue(mkChunk(uint64(i), 5000, 100), float64(i))
	}
	if p.Len() != 10 {
		t.Fatalf("len %d", p.Len())
	}
	for i := 0; i < 10; i++ {
		c := p.Dequeue(20)
		if c == nil || c.FlowID != uint64(i) {
			t.Fatalf("dequeue %d returned %+v", i, c)
		}
	}
	if p.Dequeue(20) != nil {
		t.Fatal("empty dequeue returned a chunk")
	}
}

func TestPFIFOLimitDrops(t *testing.T) {
	p := NewPFIFO(3)
	for i := 0; i < 5; i++ {
		p.Enqueue(mkChunk(uint64(i), 5000, 100), 0)
	}
	if p.Len() != 3 {
		t.Fatalf("len %d, want 3", p.Len())
	}
	st := p.Stats()
	if st.DroppedPackets != 2 || st.DroppedBytes != 200 {
		t.Fatalf("drops %+v", st)
	}
	if p.Limit() != 3 {
		t.Fatalf("limit %d", p.Limit())
	}
}

func TestPFIFOReadyAt(t *testing.T) {
	p := NewPFIFO(0)
	if p.ReadyAt(5) != Never {
		t.Fatal("empty queue should be Never")
	}
	p.Enqueue(mkChunk(1, 5000, 100), 5)
	if p.ReadyAt(7) != 7 {
		t.Fatal("non-empty pfifo must be ready immediately")
	}
}

func TestPFIFOStatsAndBacklog(t *testing.T) {
	p := NewPFIFO(0)
	p.Enqueue(mkChunk(1, 5000, 100), 1)
	p.Enqueue(mkChunk(2, 5000, 250), 1)
	if p.BacklogBytes() != 350 {
		t.Fatalf("backlog %d", p.BacklogBytes())
	}
	c := p.Dequeue(2)
	if c.EnqueuedAt() != 1 {
		t.Fatalf("enqueuedAt %v", c.EnqueuedAt())
	}
	st := p.Stats()
	if st.EnqueuedPackets != 2 || st.DequeuedPackets != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Backlog() != 250 {
		t.Fatalf("stats backlog %d", st.Backlog())
	}
	if p.Kind() != "pfifo" {
		t.Fatal("kind")
	}
}

// TestPFIFOConservationProperty: whatever goes in comes out, in order,
// with byte totals conserved.
func TestPFIFOConservationProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		p := NewPFIFO(0)
		var in int64
		for i, s := range sizes {
			b := int64(s%1000) + 1
			in += b
			p.Enqueue(mkChunk(uint64(i), 5000, b), 0)
		}
		var out int64
		prev := int64(-1)
		for {
			c := p.Dequeue(1)
			if c == nil {
				break
			}
			if int64(c.FlowID) <= prev {
				return false // order violated
			}
			prev = int64(c.FlowID)
			out += c.Bytes
		}
		return in == out && p.Len() == 0 && p.BacklogBytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFifoQueueCompaction(t *testing.T) {
	// Exercise the internal ring compaction by cycling many chunks
	// through a queue that stays shallow.
	p := NewPFIFO(0)
	for round := 0; round < 100; round++ {
		for i := 0; i < 10; i++ {
			p.Enqueue(mkChunk(uint64(round*10+i), 5000, 10), 0)
		}
		for i := 0; i < 10; i++ {
			if p.Dequeue(1) == nil {
				t.Fatal("lost a chunk during compaction")
			}
		}
	}
	if p.Len() != 0 {
		t.Fatalf("len %d after drain", p.Len())
	}
}
