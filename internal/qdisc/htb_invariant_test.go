package qdisc

import (
	"math/rand"
	"testing"
)

// TestHTBWorkConservingUnderBursts drives a TensorLights-shaped HTB (six
// leaves, tiny guaranteed rate, full ceil) with randomized burst
// arrivals through a simulated link server, and asserts the egress is
// work-conserving: whenever any class is backlogged, the next chunk is
// transmittable immediately — the link never idles against a backlog.
func TestHTBWorkConservingUnderBursts(t *testing.T) {
	const linkRate = 1e6 // bytes/sec
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(300 + trial)))
		h := NewHTB(linkRate, 0)
		bands := 2 + rng.Intn(5)
		for b := 0; b < bands; b++ {
			if err := h.AddClass(ClassID(b), HTBClassConfig{
				Rate: 1, // tiny guarantee: priority does the real scheduling
				Ceil: linkRate,
				Prio: b,
			}); err != nil {
				t.Fatal(err)
			}
			h.Classifier().Add(Filter{Match: Match{
				SrcPort: 9000 + b, DstPort: AnyValue, JobID: AnyValue, Mark: AnyValue,
			}, Target: ClassID(b)})
		}

		now := 0.0
		flow := uint64(0)
		var served int64
		for step := 0; step < 400; step++ {
			// Randomized burst arrival: a few chunks into a random band.
			if rng.Intn(3) > 0 {
				band := rng.Intn(bands)
				for i := 0; i < 1+rng.Intn(6); i++ {
					flow++
					h.Enqueue(&Chunk{
						FlowID:  flow,
						SrcPort: 9000 + band,
						Bytes:   1 + int64(rng.Intn(64*1024)),
					}, now)
				}
			}
			// Serve the link until idle or a handful of chunks went out.
			for i := 0; i < 3 && h.Len() > 0; i++ {
				at := h.ReadyAt(now)
				if at >= Never {
					t.Fatalf("trial %d t=%.3f: backlog of %d chunks but ReadyAt=Never",
						trial, now, h.Len())
				}
				// Work conservation: with every ceil at the link rate and
				// the server draining at the link rate, tokens refill as
				// fast as they are spent — the qdisc may never ask the
				// link to wait while backlogged.
				if at > now+1e-9 {
					t.Fatalf("trial %d t=%.3f: backlogged htb gated until %.3f (idle %.2gs)",
						trial, now, at, at-now)
				}
				ch := h.Dequeue(at)
				if ch == nil {
					t.Fatalf("trial %d t=%.3f: Dequeue failed at promised ReadyAt", trial, now)
				}
				served += ch.Bytes
				now = at + float64(ch.Bytes)/linkRate // transmission time
			}
			now += rng.Float64() * 0.01
		}
		s := h.Stats()
		if int64(s.DequeuedBytes) != served {
			t.Fatalf("trial %d: stats say %d bytes dequeued, server saw %d",
				trial, s.DequeuedBytes, served)
		}
		if s.Backlog() != h.BacklogBytes() {
			t.Fatalf("trial %d: backlog accounting mismatch", trial)
		}
	}
}

// TestHTBStrictPriorityAcrossBands keeps a high- and a low-priority band
// both continuously backlogged and asserts the egress realizes strict
// priority: the low band's service while the high band is backlogged is
// bounded by its green-token budget (guaranteed rate * time + burst),
// which the TensorLights configuration makes negligible.
func TestHTBStrictPriorityAcrossBands(t *testing.T) {
	const linkRate = 1e6
	const tinyRate = 1    // bytes/sec guaranteed
	const tinyBurst = 256 // bytes
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(900 + trial)))
		h := NewHTB(linkRate, 0)
		for b := 0; b < 2; b++ {
			if err := h.AddClass(ClassID(b), HTBClassConfig{
				Rate:   tinyRate,
				Burst:  tinyBurst,
				CBurst: defaultHTBBurst,
				Ceil:   linkRate,
				Prio:   b,
			}); err != nil {
				t.Fatal(err)
			}
			h.Classifier().Add(Filter{Match: Match{
				SrcPort: 9000 + b, DstPort: AnyValue, JobID: AnyValue, Mark: AnyValue,
			}, Target: ClassID(b)})
		}
		enqueue := func(band, n int, now float64) {
			for i := 0; i < n; i++ {
				h.Enqueue(&Chunk{
					FlowID:  uint64(band*100000 + i),
					SrcPort: 9000 + band,
					Bytes:   1 + int64(rng.Intn(32*1024)),
				}, now)
			}
		}
		now := 0.0
		enqueue(0, 200, now)
		enqueue(1, 200, now)

		var lowWhileHighBacklogged int64
		for h.Class(0).Len() > 0 {
			// Keep both bands backlogged so priority is always contested.
			if h.Class(1).Len() == 0 {
				enqueue(1, 50, now)
			}
			at := h.ReadyAt(now)
			ch := h.Dequeue(at)
			if ch == nil {
				t.Fatalf("trial %d: backlogged htb refused to dequeue", trial)
			}
			if ch.SrcPort == 9001 {
				lowWhileHighBacklogged += ch.Bytes
			}
			now = at + float64(ch.Bytes)/linkRate
		}
		// Green-token budget the low band could legitimately burn while
		// the high band was backlogged.
		budget := int64(tinyBurst+tinyRate*now) + 32*1024 // + one max chunk of slop
		if lowWhileHighBacklogged > budget {
			t.Fatalf("trial %d: low band sent %d bytes while high band backlogged (budget %d over %.3fs)",
				trial, lowWhileHighBacklogged, budget, now)
		}
	}
}
