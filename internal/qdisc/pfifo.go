package qdisc

// PFIFO is the default first-come-first-serve qdisc: chunks dequeue in
// arrival order. This is the paper's baseline ("FIFO"): when bursts from
// several colocated parameter servers overlap, their chunks interleave
// in arrival order and every flow's tail lands near the end of the
// combined backlog — the mechanism behind worker stragglers.
type PFIFO struct {
	q     fifoQueue
	limit int // max queued chunks; 0 = unbounded
	stats Stats
}

// NewPFIFO returns a pfifo with the given chunk limit (0 = unbounded,
// which models a backpressured sender that never loses data).
func NewPFIFO(limit int) *PFIFO {
	return &PFIFO{limit: limit}
}

// Limit returns the configured chunk limit (0 = unbounded).
func (p *PFIFO) Limit() int { return p.limit }

// Enqueue appends the chunk, dropping it if the queue is full.
func (p *PFIFO) Enqueue(c *Chunk, now float64) {
	if p.limit > 0 && p.q.len() >= p.limit {
		p.stats.DroppedPackets++
		p.stats.DroppedBytes += uint64(c.Bytes)
		return
	}
	c.enqueuedAt = now
	p.q.push(c)
	p.stats.EnqueuedPackets++
	p.stats.EnqueuedBytes += uint64(c.Bytes)
}

// Dequeue removes and returns the oldest chunk, or nil when empty.
func (p *PFIFO) Dequeue(now float64) *Chunk {
	c := p.q.pop()
	if c != nil {
		p.stats.DequeuedPackets++
		p.stats.DequeuedBytes += uint64(c.Bytes)
	}
	return c
}

// ReadyAt returns now when non-empty, Never otherwise.
func (p *PFIFO) ReadyAt(now float64) float64 {
	if p.q.len() > 0 {
		return now
	}
	return Never
}

// Len returns the number of queued chunks.
func (p *PFIFO) Len() int { return p.q.len() }

// BacklogBytes returns the queued byte count.
func (p *PFIFO) BacklogBytes() int64 { return p.q.bytes }

// Stats returns a copy of the counters.
func (p *PFIFO) Stats() Stats { return p.stats }

// Kind returns "pfifo".
func (p *PFIFO) Kind() string { return "pfifo" }
