package qdisc

// SFQ approximates stochastic fair queueing: chunks hash by flow into
// buckets that are served round robin, giving concurrent flows an equal
// share of the link. It serves as the idealized "perfectly fair" baseline
// in ablations — fair sharing removes cross-flow starvation but, unlike
// priorities, still stretches every job's burst across the whole
// contention window, so stragglers persist.
type SFQ struct {
	buckets  []fifoQueue
	occupied []bool
	cursor   int
	nQueued  int
	bytes    int64
	stats    Stats
}

// NewSFQ returns an SFQ with the given number of hash buckets.
func NewSFQ(buckets int) *SFQ {
	if buckets < 1 {
		buckets = 128
	}
	return &SFQ{
		buckets:  make([]fifoQueue, buckets),
		occupied: make([]bool, buckets),
	}
}

// Buckets returns the number of hash buckets.
func (s *SFQ) Buckets() int { return len(s.buckets) }

func (s *SFQ) hash(c *Chunk) int {
	// FlowID is already unique per transfer; a multiplicative hash
	// spreads sequential ids across buckets.
	h := c.FlowID * 0x9e3779b97f4a7c15
	return int(h % uint64(len(s.buckets)))
}

// Enqueue hashes the chunk into its flow bucket.
func (s *SFQ) Enqueue(c *Chunk, now float64) {
	b := s.hash(c)
	c.enqueuedAt = now
	s.buckets[b].push(c)
	s.occupied[b] = true
	s.nQueued++
	s.bytes += c.Bytes
	s.stats.EnqueuedPackets++
	s.stats.EnqueuedBytes += uint64(c.Bytes)
}

// Dequeue serves the next occupied bucket after the cursor.
func (s *SFQ) Dequeue(now float64) *Chunk {
	if s.nQueued == 0 {
		return nil
	}
	n := len(s.buckets)
	for i := 0; i < n; i++ {
		idx := (s.cursor + 1 + i) % n
		if !s.occupied[idx] {
			continue
		}
		c := s.buckets[idx].pop()
		if s.buckets[idx].len() == 0 {
			s.occupied[idx] = false
		}
		s.cursor = idx
		s.nQueued--
		s.bytes -= c.Bytes
		s.stats.DequeuedPackets++
		s.stats.DequeuedBytes += uint64(c.Bytes)
		return c
	}
	return nil
}

// ReadyAt returns now when non-empty.
func (s *SFQ) ReadyAt(now float64) float64 {
	if s.nQueued > 0 {
		return now
	}
	return Never
}

// Len returns total queued chunks.
func (s *SFQ) Len() int { return s.nQueued }

// BacklogBytes returns total queued bytes.
func (s *SFQ) BacklogBytes() int64 { return s.bytes }

// Stats returns counters.
func (s *SFQ) Stats() Stats { return s.stats }

// Kind returns "sfq".
func (s *SFQ) Kind() string { return "sfq" }
