package qdisc

import (
	"fmt"
	"sort"
)

// ClassID identifies a class or band inside a classful qdisc, analogous
// to tc's major:minor handles. Band/class numbering starts at 0.
type ClassID int

// NoClass is returned by classifiers when no filter matches.
const NoClass ClassID = -1

// Match is a structured predicate over chunk header fields, mirroring
// what a u32/fw tc filter can express. A field set to AnyValue matches
// everything.
type Match struct {
	SrcPort int
	DstPort int
	JobID   int
	Mark    int
}

// AnyValue is the wildcard for Match fields.
const AnyValue = -1

// MatchAll returns a Match with every field wild.
func MatchAll() Match {
	return Match{SrcPort: AnyValue, DstPort: AnyValue, JobID: AnyValue, Mark: AnyValue}
}

// MatchSrcPort returns a Match on the sender port only (the paper's
// filter: a job is identified by its PS's TCP port).
func MatchSrcPort(port int) Match {
	m := MatchAll()
	m.SrcPort = port
	return m
}

// Matches reports whether the chunk satisfies every non-wild field.
func (m Match) Matches(c *Chunk) bool {
	if m.SrcPort != AnyValue && m.SrcPort != c.SrcPort {
		return false
	}
	if m.DstPort != AnyValue && m.DstPort != c.DstPort {
		return false
	}
	if m.JobID != AnyValue && m.JobID != c.JobID {
		return false
	}
	if m.Mark != AnyValue && m.Mark != c.Mark {
		return false
	}
	return true
}

// String renders the match in tc-ish syntax.
func (m Match) String() string {
	s := ""
	if m.SrcPort != AnyValue {
		s += fmt.Sprintf(" sport %d", m.SrcPort)
	}
	if m.DstPort != AnyValue {
		s += fmt.Sprintf(" dport %d", m.DstPort)
	}
	if m.JobID != AnyValue {
		s += fmt.Sprintf(" job %d", m.JobID)
	}
	if m.Mark != AnyValue {
		s += fmt.Sprintf(" mark %d", m.Mark)
	}
	if s == "" {
		return "match all"
	}
	return "match" + s
}

// Filter binds a Match to a target class with a precedence. Lower Pref
// wins, like tc filter preference values; ties break by insertion order.
type Filter struct {
	Pref   int
	Match  Match
	Target ClassID
	seq    int
}

// Classifier is an ordered filter chain with a default class.
type Classifier struct {
	filters []Filter
	def     ClassID
	nextSeq int
}

// NewClassifier returns a classifier that sends unmatched chunks to def.
func NewClassifier(def ClassID) *Classifier {
	return &Classifier{def: def}
}

// Default returns the class used when no filter matches.
func (cl *Classifier) Default() ClassID { return cl.def }

// SetDefault changes the fallback class.
func (cl *Classifier) SetDefault(def ClassID) { cl.def = def }

// Add installs a filter. Filters are evaluated in (Pref, insertion)
// order; the first match wins.
func (cl *Classifier) Add(f Filter) {
	f.seq = cl.nextSeq
	cl.nextSeq++
	cl.filters = append(cl.filters, f)
	sort.SliceStable(cl.filters, func(i, j int) bool {
		if cl.filters[i].Pref != cl.filters[j].Pref {
			return cl.filters[i].Pref < cl.filters[j].Pref
		}
		return cl.filters[i].seq < cl.filters[j].seq
	})
}

// RemoveWhere deletes all filters for which keep returns true, returning
// how many were removed.
func (cl *Classifier) RemoveWhere(drop func(Filter) bool) int {
	out := cl.filters[:0]
	removed := 0
	for _, f := range cl.filters {
		if drop(f) {
			removed++
			continue
		}
		out = append(out, f)
	}
	cl.filters = out
	return removed
}

// Clear removes every filter.
func (cl *Classifier) Clear() { cl.filters = nil }

// Len returns the number of installed filters.
func (cl *Classifier) Len() int { return len(cl.filters) }

// Filters returns a copy of the filter chain in evaluation order.
func (cl *Classifier) Filters() []Filter {
	out := make([]Filter, len(cl.filters))
	copy(out, cl.filters)
	return out
}

// Classify returns the target class for the chunk.
func (cl *Classifier) Classify(c *Chunk) ClassID {
	for _, f := range cl.filters {
		if f.Match.Matches(c) {
			return f.Target
		}
	}
	return cl.def
}
