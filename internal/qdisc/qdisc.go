// Package qdisc implements packet queueing disciplines modelled on the
// Linux traffic-control (tc) qdiscs that TensorLights drives: pfifo,
// prio, htb, tbf and sfq, plus a port-based classifier. The unit of
// transmission is a Chunk (an application-level write of up to a few
// hundred KB); the network fabric in internal/simnet serializes chunks
// onto links, and the qdisc at each NIC egress decides ordering.
package qdisc

import "math"

// Never is returned by ReadyAt when a qdisc holds no dequeueable chunk.
const Never = math.MaxFloat64

// Chunk is the unit queued through a qdisc. Chunks belong to a Flow (a
// single logical transfer, e.g. one model update to one worker); the
// classification fields mirror what tc filters can match on.
type Chunk struct {
	FlowID  uint64 // unique per transfer
	JobID   int    // owning DL job, -1 if none
	SrcPort int    // TCP source port at the sender (PS port for updates)
	DstPort int    // TCP destination port
	Mark    int    // fwmark analog; settable by filters
	Bytes   int64  // payload size of this chunk
	Seq     int    // index of this chunk within its flow
	Last    bool   // true on the final chunk of the flow
	Retrans bool   // true when re-injected after a wire loss
	// Hop is the index of the core link the chunk is currently
	// traversing on its flow's route (managed by internal/simnet's
	// fabric; always 0 on the flat topology, where flows take no core
	// links). Qdiscs never inspect it.
	Hop int

	// Payload carries opaque fabric state (e.g. delivery target);
	// qdiscs never inspect it.
	Payload any

	enqueuedAt float64
}

// EnqueuedAt returns the time the chunk entered its current qdisc.
func (c *Chunk) EnqueuedAt() float64 { return c.enqueuedAt }

// Reset zeroes the chunk for reuse through a free list. The fabric
// recycles chunk structs once delivered; qdiscs never retain a chunk
// after Dequeue, so a delivered chunk has no aliases.
func (c *Chunk) Reset() { *c = Chunk{} }

// Stats counts qdisc activity, mirroring `tc -s qdisc show`.
type Stats struct {
	EnqueuedPackets uint64
	EnqueuedBytes   uint64
	DequeuedPackets uint64
	DequeuedBytes   uint64
	DroppedPackets  uint64
	DroppedBytes    uint64
	Overlimits      uint64 // dequeue attempts gated by shaping
}

// Backlog returns queued bytes implied by the counters.
func (s *Stats) Backlog() int64 {
	return int64(s.EnqueuedBytes) - int64(s.DequeuedBytes) - int64(s.DroppedBytes)
}

// BandCounter is implemented by classful qdiscs that expose cumulative
// per-band dequeued bytes, keyed by band/class id. Implementations
// return a fresh map on every call: mutating the result cannot corrupt
// the live counters. TensorLights' feedback collector reads these to
// attribute attained service to jobs by their assigned band.
type BandCounter interface {
	BandDequeuedBytes() map[int]uint64
}

// Qdisc is a queueing discipline. Implementations are single-threaded:
// the simulation kernel serializes all calls.
//
// Enqueue may drop the chunk (bounded queues); drops are visible in
// Stats. Dequeue returns nil if nothing may be sent at `now` (empty, or
// gated by shaping); ReadyAt reports the earliest time a subsequent
// Dequeue can succeed, or Never when empty.
type Qdisc interface {
	Enqueue(c *Chunk, now float64)
	Dequeue(now float64) *Chunk
	ReadyAt(now float64) float64
	Len() int
	BacklogBytes() int64
	Stats() Stats
	Kind() string
}

// fifoQueue is a simple chunk ring used by several qdiscs.
type fifoQueue struct {
	items []*Chunk
	head  int
	bytes int64
}

func (q *fifoQueue) push(c *Chunk) {
	q.items = append(q.items, c)
	q.bytes += c.Bytes
}

func (q *fifoQueue) pop() *Chunk {
	if q.head >= len(q.items) {
		return nil
	}
	c := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	q.bytes -= c.Bytes
	// Compact occasionally so memory stays proportional to occupancy.
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		for i := n; i < len(q.items); i++ {
			q.items[i] = nil
		}
		q.items = q.items[:n]
		q.head = 0
	}
	return c
}

func (q *fifoQueue) peek() *Chunk {
	if q.head >= len(q.items) {
		return nil
	}
	return q.items[q.head]
}

func (q *fifoQueue) len() int { return len(q.items) - q.head }
