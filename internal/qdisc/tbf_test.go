package qdisc

import "testing"

func TestTBFRateConformance(t *testing.T) {
	rate := 1e6 // 1 MB/s
	tb := NewTBF(rate, 100<<10, 0)
	n := 30
	for i := 0; i < n; i++ {
		tb.Enqueue(mkChunk(uint64(i), 5000, 100<<10), 0)
	}
	now := 0.0
	got := 0
	for tb.Len() > 0 {
		c := tb.Dequeue(now)
		if c == nil {
			at := tb.ReadyAt(now)
			if at >= Never {
				t.Fatal("ready never with backlog")
			}
			now = at
			continue
		}
		got++
	}
	if got != n {
		t.Fatalf("dequeued %d of %d", got, n)
	}
	eff := float64(n*(100<<10)) / now
	if eff < 0.8*rate || eff > 1.6*rate {
		t.Fatalf("effective rate %.0f, configured %.0f", eff, rate)
	}
}

func TestTBFBurstAllowsLineRate(t *testing.T) {
	tb := NewTBF(1e6, 1<<20, 0)
	// A full bucket lets ~1MB through back-to-back.
	for i := 0; i < 4; i++ {
		tb.Enqueue(mkChunk(uint64(i), 5000, 256<<10), 0)
	}
	sent := 0
	for tb.Dequeue(0) != nil {
		sent++
	}
	if sent < 4 {
		t.Fatalf("burst allowed only %d chunks", sent)
	}
}

func TestTBFGatesWhenEmptyBucket(t *testing.T) {
	tb := NewTBF(1e6, 10<<10, 0)
	tb.Enqueue(mkChunk(1, 5000, 100<<10), 0)
	tb.Enqueue(mkChunk(2, 5000, 100<<10), 0)
	if tb.Dequeue(0) == nil {
		t.Fatal("first chunk should pass on the initial bucket")
	}
	if tb.Dequeue(0) != nil {
		t.Fatal("second chunk must be gated")
	}
	st := tb.Stats()
	if st.Overlimits == 0 {
		t.Fatal("overlimit not counted")
	}
	at := tb.ReadyAt(0)
	if at <= 0 || at >= Never {
		t.Fatalf("ReadyAt %v", at)
	}
	if tb.Dequeue(at) == nil {
		t.Fatal("chunk must pass at the promised time")
	}
}

func TestTBFLimitDrops(t *testing.T) {
	tb := NewTBF(1e6, 1<<20, 2)
	for i := 0; i < 4; i++ {
		tb.Enqueue(mkChunk(uint64(i), 5000, 1024), 0)
	}
	if tb.Len() != 2 {
		t.Fatalf("len %d", tb.Len())
	}
	if tb.Stats().DroppedPackets != 2 {
		t.Fatalf("drops %+v", tb.Stats())
	}
}

func TestTBFSetRate(t *testing.T) {
	tb := NewTBF(1e6, 1<<20, 0)
	tb.SetRate(2e6)
	if tb.Rate() != 2e6 {
		t.Fatal("SetRate")
	}
	tb.SetRate(-1) // ignored
	if tb.Rate() != 2e6 {
		t.Fatal("negative rate accepted")
	}
}

func TestTBFEmptyAndKind(t *testing.T) {
	tb := NewTBF(1e6, 0, 0)
	if tb.Dequeue(0) != nil || tb.ReadyAt(0) != Never {
		t.Fatal("empty tbf behaviour")
	}
	if tb.Kind() != "tbf" {
		t.Fatal("kind")
	}
	if tb.BacklogBytes() != 0 {
		t.Fatal("backlog")
	}
}

func TestTBFPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTBF(0) did not panic")
		}
	}()
	NewTBF(0, 0, 0)
}
