package qdisc

// TBF is a token bucket filter: a single FIFO shaped to a target rate
// with a burst allowance. It is not work-conserving — the paper's §VII
// discusses sender rate control as an alternative to priorities and
// notes that inaccurate rate allocation wastes bandwidth; the ablation
// benchmarks use TBF to demonstrate exactly that.
type TBF struct {
	q          fifoQueue
	rate       float64 // bytes/sec
	burst      float64 // bytes
	tokens     float64
	lastUpdate float64
	limit      int
	stats      Stats
}

// NewTBF returns a token bucket shaping to rate bytes/sec with the given
// burst (bytes). limit bounds queued chunks (0 = unbounded).
func NewTBF(rate, burst float64, limit int) *TBF {
	if rate <= 0 {
		panic("qdisc: tbf rate must be positive")
	}
	if burst <= 0 {
		burst = defaultHTBBurst
	}
	return &TBF{rate: rate, burst: burst, tokens: burst, limit: limit}
}

// Rate returns the shaping rate in bytes/sec.
func (t *TBF) Rate() float64 { return t.rate }

// SetRate retunes the shaping rate, keeping accumulated tokens.
func (t *TBF) SetRate(rate float64) {
	if rate > 0 {
		t.rate = rate
	}
}

func (t *TBF) refill(now float64) {
	dt := now - t.lastUpdate
	if dt <= 0 {
		return
	}
	t.lastUpdate = now
	t.tokens += t.rate * dt
	if t.tokens > t.burst {
		t.tokens = t.burst
	}
}

// Enqueue appends the chunk, dropping when over limit.
func (t *TBF) Enqueue(c *Chunk, now float64) {
	if t.limit > 0 && t.q.len() >= t.limit {
		t.stats.DroppedPackets++
		t.stats.DroppedBytes += uint64(c.Bytes)
		return
	}
	c.enqueuedAt = now
	t.q.push(c)
	t.stats.EnqueuedPackets++
	t.stats.EnqueuedBytes += uint64(c.Bytes)
}

// Dequeue returns the head chunk if the bucket permits, else nil.
func (t *TBF) Dequeue(now float64) *Chunk {
	if now < t.lastUpdate {
		now = t.lastUpdate
	}
	t.refill(now)
	head := t.q.peek()
	if head == nil {
		return nil
	}
	if t.tokens < -tokEps {
		t.stats.Overlimits++
		return nil
	}
	c := t.q.pop()
	t.tokens -= float64(c.Bytes)
	t.stats.DequeuedPackets++
	t.stats.DequeuedBytes += uint64(c.Bytes)
	return c
}

// ReadyAt returns when the bucket next permits a send.
func (t *TBF) ReadyAt(now float64) float64 {
	if t.q.len() == 0 {
		return Never
	}
	if now < t.lastUpdate {
		now = t.lastUpdate
	}
	t.refill(now)
	if t.tokens >= -tokEps {
		return now
	}
	return now + -t.tokens/t.rate
}

// Len returns queued chunks.
func (t *TBF) Len() int { return t.q.len() }

// BacklogBytes returns queued bytes.
func (t *TBF) BacklogBytes() int64 { return t.q.bytes }

// Stats returns counters.
func (t *TBF) Stats() Stats { return t.stats }

// Kind returns "tbf".
func (t *TBF) Kind() string { return "tbf" }
