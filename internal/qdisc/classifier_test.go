package qdisc

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMatchWildcards(t *testing.T) {
	all := MatchAll()
	c := mkChunk(1, 5000, 10)
	c.Mark = 3
	if !all.Matches(c) {
		t.Fatal("MatchAll must match everything")
	}
	m := MatchSrcPort(5000)
	if !m.Matches(c) {
		t.Fatal("sport match failed")
	}
	m = MatchSrcPort(5001)
	if m.Matches(c) {
		t.Fatal("sport mismatch matched")
	}
}

func TestMatchEachField(t *testing.T) {
	c := &Chunk{SrcPort: 10, DstPort: 20, JobID: 30, Mark: 40}
	cases := []struct {
		m    Match
		want bool
	}{
		{Match{SrcPort: 10, DstPort: AnyValue, JobID: AnyValue, Mark: AnyValue}, true},
		{Match{SrcPort: AnyValue, DstPort: 20, JobID: AnyValue, Mark: AnyValue}, true},
		{Match{SrcPort: AnyValue, DstPort: AnyValue, JobID: 30, Mark: AnyValue}, true},
		{Match{SrcPort: AnyValue, DstPort: AnyValue, JobID: AnyValue, Mark: 40}, true},
		{Match{SrcPort: 11, DstPort: AnyValue, JobID: AnyValue, Mark: AnyValue}, false},
		{Match{SrcPort: AnyValue, DstPort: 21, JobID: AnyValue, Mark: AnyValue}, false},
		{Match{SrcPort: AnyValue, DstPort: AnyValue, JobID: 31, Mark: AnyValue}, false},
		{Match{SrcPort: AnyValue, DstPort: AnyValue, JobID: AnyValue, Mark: 41}, false},
		{Match{SrcPort: 10, DstPort: 20, JobID: 30, Mark: 40}, true},
	}
	for i, tc := range cases {
		if got := tc.m.Matches(c); got != tc.want {
			t.Fatalf("case %d: got %v want %v", i, got, tc.want)
		}
	}
}

func TestMatchString(t *testing.T) {
	if MatchAll().String() != "match all" {
		t.Fatalf("got %q", MatchAll().String())
	}
	s := MatchSrcPort(5000).String()
	if !strings.Contains(s, "sport 5000") {
		t.Fatalf("got %q", s)
	}
}

func TestClassifierFirstMatchWins(t *testing.T) {
	cl := NewClassifier(NoClass)
	cl.Add(Filter{Pref: 10, Match: MatchSrcPort(5000), Target: 1})
	cl.Add(Filter{Pref: 20, Match: MatchSrcPort(5000), Target: 2})
	if got := cl.Classify(mkChunk(1, 5000, 10)); got != 1 {
		t.Fatalf("classified to %d, want pref-10 target 1", got)
	}
}

func TestClassifierPrefOrdering(t *testing.T) {
	cl := NewClassifier(NoClass)
	cl.Add(Filter{Pref: 20, Match: MatchSrcPort(5000), Target: 2})
	cl.Add(Filter{Pref: 10, Match: MatchSrcPort(5000), Target: 1})
	if got := cl.Classify(mkChunk(1, 5000, 10)); got != 1 {
		t.Fatalf("lower pref must win, got target %d", got)
	}
	// Same pref: insertion order.
	cl2 := NewClassifier(NoClass)
	cl2.Add(Filter{Pref: 5, Match: MatchSrcPort(6000), Target: 7})
	cl2.Add(Filter{Pref: 5, Match: MatchSrcPort(6000), Target: 8})
	if got := cl2.Classify(mkChunk(1, 6000, 10)); got != 7 {
		t.Fatalf("insertion order tie-break failed, got %d", got)
	}
}

func TestClassifierDefault(t *testing.T) {
	cl := NewClassifier(9)
	if got := cl.Classify(mkChunk(1, 1234, 10)); got != 9 {
		t.Fatalf("default class %d, want 9", got)
	}
	cl.SetDefault(4)
	if cl.Default() != 4 {
		t.Fatal("SetDefault")
	}
}

func TestClassifierRemoveWhere(t *testing.T) {
	cl := NewClassifier(NoClass)
	for i := 0; i < 5; i++ {
		cl.Add(Filter{Pref: i, Match: MatchSrcPort(5000 + i), Target: ClassID(i)})
	}
	n := cl.RemoveWhere(func(f Filter) bool { return f.Pref%2 == 0 })
	if n != 3 || cl.Len() != 2 {
		t.Fatalf("removed %d, left %d", n, cl.Len())
	}
	for _, f := range cl.Filters() {
		if f.Pref%2 == 0 {
			t.Fatal("even pref survived RemoveWhere")
		}
	}
	cl.Clear()
	if cl.Len() != 0 {
		t.Fatal("Clear left filters")
	}
}

// Property: classification is deterministic and always returns either a
// filter's target or the default.
func TestClassifierProperty(t *testing.T) {
	cl := NewClassifier(99)
	targets := map[ClassID]bool{99: true}
	for i := 0; i < 8; i++ {
		cl.Add(Filter{Pref: i % 3, Match: MatchSrcPort(5000 + i%4), Target: ClassID(i)})
		targets[ClassID(i)] = true
	}
	f := func(sport uint8) bool {
		c := mkChunk(1, 5000+int(sport%8), 10)
		got := cl.Classify(c)
		return targets[got] && got == cl.Classify(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
