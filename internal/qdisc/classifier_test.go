package qdisc

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMatchWildcards(t *testing.T) {
	all := MatchAll()
	c := mkChunk(1, 5000, 10)
	c.Mark = 3
	if !all.Matches(c) {
		t.Fatal("MatchAll must match everything")
	}
	m := MatchSrcPort(5000)
	if !m.Matches(c) {
		t.Fatal("sport match failed")
	}
	m = MatchSrcPort(5001)
	if m.Matches(c) {
		t.Fatal("sport mismatch matched")
	}
}

func TestMatchEachField(t *testing.T) {
	c := &Chunk{SrcPort: 10, DstPort: 20, JobID: 30, Mark: 40}
	cases := []struct {
		m    Match
		want bool
	}{
		{Match{SrcPort: 10, DstPort: AnyValue, JobID: AnyValue, Mark: AnyValue}, true},
		{Match{SrcPort: AnyValue, DstPort: 20, JobID: AnyValue, Mark: AnyValue}, true},
		{Match{SrcPort: AnyValue, DstPort: AnyValue, JobID: 30, Mark: AnyValue}, true},
		{Match{SrcPort: AnyValue, DstPort: AnyValue, JobID: AnyValue, Mark: 40}, true},
		{Match{SrcPort: 11, DstPort: AnyValue, JobID: AnyValue, Mark: AnyValue}, false},
		{Match{SrcPort: AnyValue, DstPort: 21, JobID: AnyValue, Mark: AnyValue}, false},
		{Match{SrcPort: AnyValue, DstPort: AnyValue, JobID: 31, Mark: AnyValue}, false},
		{Match{SrcPort: AnyValue, DstPort: AnyValue, JobID: AnyValue, Mark: 41}, false},
		{Match{SrcPort: 10, DstPort: 20, JobID: 30, Mark: 40}, true},
	}
	for i, tc := range cases {
		if got := tc.m.Matches(c); got != tc.want {
			t.Fatalf("case %d: got %v want %v", i, got, tc.want)
		}
	}
}

func TestMatchString(t *testing.T) {
	if MatchAll().String() != "match all" {
		t.Fatalf("got %q", MatchAll().String())
	}
	s := MatchSrcPort(5000).String()
	if !strings.Contains(s, "sport 5000") {
		t.Fatalf("got %q", s)
	}
}

func TestClassifierFirstMatchWins(t *testing.T) {
	cl := NewClassifier(NoClass)
	cl.Add(Filter{Pref: 10, Match: MatchSrcPort(5000), Target: 1})
	cl.Add(Filter{Pref: 20, Match: MatchSrcPort(5000), Target: 2})
	if got := cl.Classify(mkChunk(1, 5000, 10)); got != 1 {
		t.Fatalf("classified to %d, want pref-10 target 1", got)
	}
}

func TestClassifierPrefOrdering(t *testing.T) {
	cl := NewClassifier(NoClass)
	cl.Add(Filter{Pref: 20, Match: MatchSrcPort(5000), Target: 2})
	cl.Add(Filter{Pref: 10, Match: MatchSrcPort(5000), Target: 1})
	if got := cl.Classify(mkChunk(1, 5000, 10)); got != 1 {
		t.Fatalf("lower pref must win, got target %d", got)
	}
	// Same pref: insertion order.
	cl2 := NewClassifier(NoClass)
	cl2.Add(Filter{Pref: 5, Match: MatchSrcPort(6000), Target: 7})
	cl2.Add(Filter{Pref: 5, Match: MatchSrcPort(6000), Target: 8})
	if got := cl2.Classify(mkChunk(1, 6000, 10)); got != 7 {
		t.Fatalf("insertion order tie-break failed, got %d", got)
	}
}

func TestClassifierDefault(t *testing.T) {
	cl := NewClassifier(9)
	if got := cl.Classify(mkChunk(1, 1234, 10)); got != 9 {
		t.Fatalf("default class %d, want 9", got)
	}
	cl.SetDefault(4)
	if cl.Default() != 4 {
		t.Fatal("SetDefault")
	}
}

func TestClassifierRemoveWhere(t *testing.T) {
	cl := NewClassifier(NoClass)
	for i := 0; i < 5; i++ {
		cl.Add(Filter{Pref: i, Match: MatchSrcPort(5000 + i), Target: ClassID(i)})
	}
	n := cl.RemoveWhere(func(f Filter) bool { return f.Pref%2 == 0 })
	if n != 3 || cl.Len() != 2 {
		t.Fatalf("removed %d, left %d", n, cl.Len())
	}
	for _, f := range cl.Filters() {
		if f.Pref%2 == 0 {
			t.Fatal("even pref survived RemoveWhere")
		}
	}
	cl.Clear()
	if cl.Len() != 0 {
		t.Fatal("Clear left filters")
	}
}

// A job can source traffic under several ports — its PS port and a
// collective all-reduce port — and the controller installs one filter
// per port targeting the job's single band. Interleaved chunks from
// both workload classes must land in that band, in any order.
func TestClassifierInterleavedPSAndCollective(t *testing.T) {
	const (
		jobABand = ClassID(0) // job A: PS port 5000 + collective port 7000
		jobBBand = ClassID(1) // job B: collective port 7100 only
		defBand  = ClassID(3)
	)
	cl := NewClassifier(defBand)
	cl.Add(Filter{Pref: 0, Match: MatchSrcPort(5000), Target: jobABand})
	cl.Add(Filter{Pref: 1, Match: MatchSrcPort(7000), Target: jobABand})
	cl.Add(Filter{Pref: 2, Match: MatchSrcPort(7100), Target: jobBBand})

	interleaved := []struct {
		sport int
		want  ClassID
	}{
		{5000, jobABand}, // PS gradient push
		{7100, jobBBand}, // ring segment, job B
		{7000, jobABand}, // ring segment, job A
		{5000, jobABand}, // PS model update
		{7000, jobABand},
		{7100, jobBBand},
		{30042, defBand}, // unmanaged worker traffic falls through
	}
	for i, tc := range interleaved {
		if got := cl.Classify(mkChunk(1, tc.sport, 10)); got != tc.want {
			t.Fatalf("chunk %d (sport %d): band %d, want %d", i, tc.sport, got, tc.want)
		}
	}
	// Dropping the job A filters must not disturb job B's band.
	cl.RemoveWhere(func(f Filter) bool { return f.Target == jobABand })
	if got := cl.Classify(mkChunk(1, 7000, 10)); got != defBand {
		t.Fatalf("departed job's collective port still classified to %d", got)
	}
	if got := cl.Classify(mkChunk(1, 7100, 10)); got != jobBBand {
		t.Fatalf("job B band lost: %d", got)
	}
}

// Property: classification is deterministic and always returns either a
// filter's target or the default.
func TestClassifierProperty(t *testing.T) {
	cl := NewClassifier(99)
	targets := map[ClassID]bool{99: true}
	for i := 0; i < 8; i++ {
		cl.Add(Filter{Pref: i % 3, Match: MatchSrcPort(5000 + i%4), Target: ClassID(i)})
		targets[ClassID(i)] = true
	}
	f := func(sport uint8) bool {
		c := mkChunk(1, 5000+int(sport%8), 10)
		got := cl.Classify(c)
		return targets[got] && got == cl.Classify(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
