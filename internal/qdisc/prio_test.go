package qdisc

import "testing"

func newTestPrio(bands int) *Prio {
	p := NewPrio(bands)
	for b := 0; b < bands; b++ {
		p.Classifier().Add(Filter{Pref: b, Match: MatchSrcPort(5000 + b), Target: ClassID(b)})
	}
	return p
}

func TestPrioStrictOrdering(t *testing.T) {
	p := newTestPrio(3)
	// Enqueue low priority first, then high.
	p.Enqueue(mkChunk(1, 5002, 10), 0) // band 2
	p.Enqueue(mkChunk(2, 5001, 10), 0) // band 1
	p.Enqueue(mkChunk(3, 5000, 10), 0) // band 0
	want := []uint64{3, 2, 1}
	for i, w := range want {
		c := p.Dequeue(1)
		if c == nil || c.FlowID != w {
			t.Fatalf("dequeue %d: got %+v, want flow %d", i, c, w)
		}
	}
}

func TestPrioHighBandPreempts(t *testing.T) {
	p := newTestPrio(2)
	p.Enqueue(mkChunk(1, 5001, 10), 0)
	p.Enqueue(mkChunk(2, 5001, 10), 0)
	if c := p.Dequeue(0); c.FlowID != 1 {
		t.Fatal("band1 head")
	}
	// A band-0 chunk arriving later jumps ahead of remaining band 1.
	p.Enqueue(mkChunk(3, 5000, 10), 0)
	if c := p.Dequeue(0); c.FlowID != 3 {
		t.Fatal("band 0 did not preempt band 1")
	}
	if c := p.Dequeue(0); c.FlowID != 2 {
		t.Fatal("band 1 remainder lost")
	}
}

func TestPrioUnmatchedGoesToLastBand(t *testing.T) {
	p := newTestPrio(3)
	p.Enqueue(mkChunk(1, 7777, 10), 0) // no filter matches
	if p.Band(2).Len() != 1 {
		t.Fatal("unmatched chunk not in last band")
	}
}

func TestPrioOutOfRangeTargetClamps(t *testing.T) {
	p := NewPrio(2)
	p.Classifier().Add(Filter{Pref: 0, Match: MatchSrcPort(5000), Target: 17})
	p.Enqueue(mkChunk(1, 5000, 10), 0)
	if p.Band(1).Len() != 1 {
		t.Fatal("out-of-range target must clamp to last band, not drop")
	}
}

func TestPrioFIFOWithinBand(t *testing.T) {
	p := newTestPrio(2)
	for i := 0; i < 5; i++ {
		p.Enqueue(mkChunk(uint64(i), 5000, 10), 0)
	}
	for i := 0; i < 5; i++ {
		if c := p.Dequeue(0); c.FlowID != uint64(i) {
			t.Fatalf("within-band order broken at %d", i)
		}
	}
}

func TestPrioReadyAtLenBacklog(t *testing.T) {
	p := newTestPrio(3)
	if p.ReadyAt(1) != Never {
		t.Fatal("empty prio should be Never")
	}
	p.Enqueue(mkChunk(1, 5001, 30), 2)
	p.Enqueue(mkChunk(2, 5002, 20), 2)
	if p.ReadyAt(3) != 3 {
		t.Fatal("non-empty prio must be ready")
	}
	if p.Len() != 2 || p.BacklogBytes() != 50 {
		t.Fatalf("len %d backlog %d", p.Len(), p.BacklogBytes())
	}
	if p.Kind() != "prio" || p.Bands() != 3 {
		t.Fatal("accessors")
	}
	st := p.Stats()
	if st.EnqueuedPackets != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPrioPanicsOnZeroBands(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPrio(0) did not panic")
		}
	}()
	NewPrio(0)
}

// Work conservation: as long as any band holds chunks, Dequeue returns
// one — a prio qdisc never idles the link.
func TestPrioWorkConserving(t *testing.T) {
	p := newTestPrio(4)
	total := 0
	for b := 0; b < 4; b++ {
		for i := 0; i < 3; i++ {
			p.Enqueue(mkChunk(uint64(b*10+i), 5000+b, 10), 0)
			total++
		}
	}
	for i := 0; i < total; i++ {
		if p.Dequeue(0) == nil {
			t.Fatalf("prio idled with %d chunks queued", p.Len())
		}
	}
	if p.Len() != 0 {
		t.Fatal("leftover chunks")
	}
}

func TestPFIFOFastDefaults(t *testing.T) {
	p := NewPFIFOFast()
	if p.Kind() != "pfifo_fast" || p.Bands() != 3 {
		t.Fatal("pfifo_fast shape")
	}
	// Unmarked traffic lands in band 1 (the best-effort band) and
	// dequeues FIFO.
	for i := 0; i < 5; i++ {
		p.Enqueue(mkChunk(uint64(i), 5000+i, 10), 0)
	}
	if p.Band(1).Len() != 5 {
		t.Fatalf("band occupancy: %d %d %d", p.Band(0).Len(), p.Band(1).Len(), p.Band(2).Len())
	}
	for i := 0; i < 5; i++ {
		if c := p.Dequeue(0); c.FlowID != uint64(i) {
			t.Fatal("pfifo_fast is not FIFO for unmarked traffic")
		}
	}
}
