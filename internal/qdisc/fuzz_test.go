package qdisc

import (
	"testing"
)

// fuzzReader consumes a fuzz input as a stream of small integers.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) done() bool { return r.pos >= len(r.data) }

func (r *fuzzReader) byte() byte {
	if r.done() {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// int31 returns a non-negative int derived from up to 4 bytes.
func (r *fuzzReader) int31() int {
	v := 0
	for i := 0; i < 4; i++ {
		v = v<<8 | int(r.byte())
	}
	if v < 0 {
		v = -v
	}
	return v
}

// key returns a classification key: mostly small non-negative ints, but
// also AnyValue and larger/negative values to stress wildcard handling.
func (r *fuzzReader) key() int {
	switch b := r.byte(); {
	case b < 32:
		return AnyValue
	case b < 64:
		return -int(b) // negative non-wildcard keys must not confuse matching
	default:
		return int(b) % 50
	}
}

// FuzzClassifier interprets the input as a program of filter-chain
// mutations (add/remove/clear/set-default with arbitrary port, job and
// mark keys) interleaved with classifications, and checks the chain's
// contract: Classify never panics, is deterministic, and only ever
// returns the default class or an installed filter's target.
func FuzzClassifier(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x80, 5, 200, 2, 0x40, 1, 0x90, 9})
	f.Add([]byte{
		1, 100, 100, 100, 100, 3, // add a filter
		1, 10, 10, 10, 10, 4, // and another
		2, 200, 200, 200, 200, // classify
		3,    // remove some
		4, 7, // set default
		2, 0, 0, 0, 0, // classify again
		5, // clear
		2, 1, 2, 3, 4,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		cl := NewClassifier(ClassID(r.byte() % 8))
		for !r.done() {
			switch r.byte() % 6 {
			case 0, 1: // add a filter
				cl.Add(Filter{
					Pref: int(r.byte() % 10),
					Match: Match{
						SrcPort: r.key(),
						DstPort: r.key(),
						JobID:   r.key(),
						Mark:    r.key(),
					},
					Target: ClassID(r.byte() % 10),
				})
			case 2, 3: // classify an arbitrary chunk
				c := &Chunk{
					SrcPort: r.key(),
					DstPort: r.key(),
					JobID:   r.key(),
					Mark:    r.key(),
				}
				got := cl.Classify(c)
				if got2 := cl.Classify(c); got2 != got {
					t.Fatalf("classification not deterministic: %d then %d", got, got2)
				}
				if got != cl.Default() {
					found := false
					for _, fl := range cl.Filters() {
						if fl.Target == got {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("classified to %d, which no filter targets (default %d)",
							got, cl.Default())
					}
				}
			case 4: // remove an arbitrary subset
				pref := int(r.byte() % 10)
				before := cl.Len()
				removed := cl.RemoveWhere(func(fl Filter) bool { return fl.Pref == pref })
				if cl.Len() != before-removed {
					t.Fatalf("RemoveWhere accounting: %d - %d != %d", before, removed, cl.Len())
				}
			case 5:
				switch r.byte() % 4 {
				case 0:
					cl.Clear()
					if cl.Len() != 0 {
						t.Fatal("Clear left filters behind")
					}
				default:
					cl.SetDefault(ClassID(r.byte() % 10))
				}
			}
		}
		// The filter chain must be in (Pref, insertion) order.
		fs := cl.Filters()
		for i := 1; i < len(fs); i++ {
			if fs[i].Pref < fs[i-1].Pref {
				t.Fatalf("filter chain out of Pref order at %d", i)
			}
		}
	})
}

// checkHTBAccounting asserts the counters' conservation law: everything
// enqueued is either dequeued, dropped, or still queued.
func checkHTBAccounting(t *testing.T, h *HTB) {
	t.Helper()
	s := h.Stats()
	if got, want := h.BacklogBytes(), s.Backlog(); got != want {
		t.Fatalf("backlog accounting: queues hold %d bytes, stats imply %d", got, want)
	}
	if s.DequeuedBytes+s.DroppedBytes > s.EnqueuedBytes {
		t.Fatalf("conservation violated: out %d + dropped %d > in %d",
			s.DequeuedBytes, s.DroppedBytes, s.EnqueuedBytes)
	}
	if h.Len() < 0 || h.BacklogBytes() < 0 {
		t.Fatalf("negative backlog: len %d, bytes %d", h.Len(), h.BacklogBytes())
	}
}

// FuzzHTBDequeue interprets the input as a program of class mutations,
// arbitrary-key enqueues and time-advancing dequeues against an HTB,
// checking it never panics and the drop/backlog accounting stays
// consistent throughout.
func FuzzHTBDequeue(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 0, 2, 50, 10, 3, 5, 2, 60, 20, 3, 9})
	f.Add([]byte{
		0, 1, 10, 1, // add class 1
		0, 2, 20, 0, // add class 2
		2, 30, 8, // enqueue
		2, 40, 8,
		3, 10, // dequeue
		4, 1, 5, 0, // change class
		3, 200,
		5, 2, // delete class
		1, 3, // set default
		2, 99, 4,
		3, 255,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		h := NewHTB(1+float64(r.int31()%1_000_000), ClassID(r.byte()%6))
		now := 0.0
		flow := uint64(0)
		for !r.done() {
			switch r.byte() % 8 {
			case 0: // add a class (invalid configs must error, not panic)
				id := ClassID(r.byte() % 6)
				rate := float64(r.int31()%2_000_000) - 500_000 // may be <= 0
				ceil := float64(r.int31() % 2_000_000)
				_ = h.AddClass(id, HTBClassConfig{
					Rate:    rate,
					Ceil:    ceil,
					Burst:   float64(r.int31() % 100_000),
					CBurst:  float64(r.int31() % 100_000),
					Prio:    int(r.byte()%4) - 1,
					Quantum: float64(r.int31()%100_000) - 10_000,
				})
			case 1:
				h.SetDefaultClass(ClassID(r.byte() % 8))
			case 2: // enqueue a chunk with arbitrary classification keys
				flow++
				h.Enqueue(&Chunk{
					FlowID:  flow,
					JobID:   r.key(),
					SrcPort: r.key(),
					DstPort: r.key(),
					Mark:    r.key(),
					Bytes:   1 + int64(r.int31()%defaultHTBBurst),
				}, now)
			case 3: // advance time and dequeue
				now += float64(r.byte()) * 0.01
				before := h.BacklogBytes()
				if ch := h.Dequeue(now); ch != nil {
					if got := h.BacklogBytes(); got != before-ch.Bytes {
						t.Fatalf("dequeue of %d bytes moved backlog %d -> %d",
							ch.Bytes, before, got)
					}
				}
			case 4:
				_ = h.ChangeClass(ClassID(r.byte()%6), HTBClassConfig{
					Rate: float64(r.int31()%1_000_000) - 100_000,
					Ceil: float64(r.int31() % 1_000_000),
					Prio: int(r.byte()%4) - 1,
				})
			case 5:
				_ = h.DeleteClass(ClassID(r.byte() % 6))
			case 6: // ReadyAt must never promise a time a Dequeue refuses
				at := h.ReadyAt(now)
				if h.Len() > 0 && at >= Never {
					t.Fatalf("backlogged htb (%d chunks) reports ReadyAt=Never", h.Len())
				}
				if at < Never && at >= now {
					if ch := h.Dequeue(at); ch == nil && h.Len() > 0 {
						t.Fatalf("Dequeue(%g) failed after ReadyAt promised it", at)
					}
					now = at
				}
			case 7: // drain a little
				now += 1 + float64(r.byte())
				for i := 0; i < 4; i++ {
					if h.Dequeue(now) == nil {
						break
					}
				}
			}
			checkHTBAccounting(t, h)
		}
	})
}
