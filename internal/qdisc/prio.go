package qdisc

import "fmt"

// Prio is a strict-priority qdisc with N bands (tc's `prio`). Chunks are
// classified into a band by the attached filter chain; Dequeue always
// serves the lowest-numbered non-empty band. Within a band, order is
// FIFO. Strict priority is work-conserving: the link never idles while
// any band holds a chunk, which is why TensorLights preserves aggregate
// throughput while reordering who finishes first.
type Prio struct {
	bands       []*PFIFO
	classifier  *Classifier
	stats       Stats
	isPfifoFast bool
}

// NewPFIFOFast returns Linux's default qdisc: a 3-band prio whose
// priomap sends best-effort traffic to band 1. Without DSCP marking all
// chunks land in one band, so it behaves as pure FIFO — which is
// exactly the paper's baseline ("the conventional first-come-first-
// serve traffic scheduling policy").
func NewPFIFOFast() *Prio {
	p := NewPrio(3)
	p.isPfifoFast = true
	p.classifier.SetDefault(1)
	return p
}

// NewPrio returns a prio qdisc with the given number of bands (>= 1).
// Unmatched chunks fall into the last (lowest-priority) band, like
// pfifo_fast's default band behaviour.
func NewPrio(bands int) *Prio {
	if bands < 1 {
		panic(fmt.Sprintf("qdisc: prio needs >=1 band, got %d", bands))
	}
	p := &Prio{
		bands:      make([]*PFIFO, bands),
		classifier: NewClassifier(ClassID(bands - 1)),
	}
	for i := range p.bands {
		p.bands[i] = NewPFIFO(0)
	}
	return p
}

// Bands returns the number of priority bands.
func (p *Prio) Bands() int { return len(p.bands) }

// Classifier exposes the filter chain for configuration.
func (p *Prio) Classifier() *Classifier { return p.classifier }

// Band returns the backing FIFO for band i (for stats inspection).
func (p *Prio) Band(i int) *PFIFO { return p.bands[i] }

// Enqueue classifies the chunk into a band. Out-of-range targets clamp
// to the last band rather than dropping: misconfiguration should degrade
// to low priority, not lose traffic.
func (p *Prio) Enqueue(c *Chunk, now float64) {
	b := int(p.classifier.Classify(c))
	if b < 0 || b >= len(p.bands) {
		b = len(p.bands) - 1
	}
	p.bands[b].Enqueue(c, now)
	p.stats.EnqueuedPackets++
	p.stats.EnqueuedBytes += uint64(c.Bytes)
}

// Dequeue serves the lowest-numbered non-empty band.
func (p *Prio) Dequeue(now float64) *Chunk {
	for _, b := range p.bands {
		if c := b.Dequeue(now); c != nil {
			p.stats.DequeuedPackets++
			p.stats.DequeuedBytes += uint64(c.Bytes)
			return c
		}
	}
	return nil
}

// ReadyAt returns now when any band is non-empty.
func (p *Prio) ReadyAt(now float64) float64 {
	for _, b := range p.bands {
		if b.Len() > 0 {
			return now
		}
	}
	return Never
}

// Len returns the total queued chunks across bands.
func (p *Prio) Len() int {
	n := 0
	for _, b := range p.bands {
		n += b.Len()
	}
	return n
}

// BacklogBytes returns total queued bytes across bands.
func (p *Prio) BacklogBytes() int64 {
	var n int64
	for _, b := range p.bands {
		n += b.BacklogBytes()
	}
	return n
}

// Stats returns a copy of the aggregate counters; mutating it does not
// affect the qdisc.
func (p *Prio) Stats() Stats { return p.stats }

// BandDequeuedBytes returns cumulative dequeued bytes per band index
// as a fresh map (BandCounter).
func (p *Prio) BandDequeuedBytes() map[int]uint64 {
	out := make(map[int]uint64, len(p.bands))
	for i, b := range p.bands {
		out[i] = b.Stats().DequeuedBytes
	}
	return out
}

// Kind returns "prio", or "pfifo_fast" for the kernel-default variant.
func (p *Prio) Kind() string {
	if p.isPfifoFast {
		return "pfifo_fast"
	}
	return "prio"
}
