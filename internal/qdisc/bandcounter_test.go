package qdisc

import "testing"

// The Feedback collector attributes per-job service from per-band
// dequeue counters; these tests pin the BandCounter contract on both
// managed qdisc shapes: values track what each band actually dequeued,
// and the returned map is a fresh copy every call.

func TestHTBBandDequeuedBytes(t *testing.T) {
	h := newTLsHTB(3)
	var _ BandCounter = h
	if got := h.BandDequeuedBytes(); len(got) != 3 {
		t.Fatalf("expected 3 bands, got %v", got)
	}
	// Two chunks into band 0, one into band 2; drain everything.
	h.Enqueue(mkChunk(1, 5000, 1000), 0)
	h.Enqueue(mkChunk(2, 5000, 500), 0)
	h.Enqueue(mkChunk(3, 5002, 250), 0)
	drainAll(h, 0)
	got := h.BandDequeuedBytes()
	want := map[int]uint64{0: 1500, 1: 0, 2: 250}
	for band, w := range want {
		if got[band] != w {
			t.Fatalf("band %d dequeued %d, want %d (all: %v)", band, got[band], w, got)
		}
	}
	var sum uint64
	for _, v := range got {
		sum += v
	}
	if sum != h.Stats().DequeuedBytes {
		t.Fatalf("band sum %d != total %d", sum, h.Stats().DequeuedBytes)
	}
}

func TestHTBBandDequeuedBytesIsACopy(t *testing.T) {
	h := newTLsHTB(2)
	h.Enqueue(mkChunk(1, 5000, 1000), 0)
	drainAll(h, 0)
	m := h.BandDequeuedBytes()
	m[0] += 999
	m[7] = 1
	fresh := h.BandDequeuedBytes()
	if fresh[0] != 1000 {
		t.Fatalf("mutating the returned map leaked into the qdisc: %v", fresh)
	}
	if _, ok := fresh[7]; ok {
		t.Fatal("injected band survived into a fresh copy")
	}
}

func TestPrioBandDequeuedBytes(t *testing.T) {
	p := NewPrio(3)
	var _ BandCounter = p
	p.Classifier().Add(Filter{Pref: 0, Match: MatchSrcPort(5000), Target: 0})
	p.Classifier().Add(Filter{Pref: 1, Match: MatchSrcPort(5001), Target: 1})
	p.Enqueue(mkChunk(1, 5000, 800), 0)
	p.Enqueue(mkChunk(2, 5001, 400), 0)
	for p.Len() > 0 {
		if p.Dequeue(0) == nil {
			t.Fatal("prio refused to dequeue")
		}
	}
	got := p.BandDequeuedBytes()
	if got[0] != 800 || got[1] != 400 {
		t.Fatalf("prio band counters %v, want band0=800 band1=400", got)
	}
	got[1] = 12345
	if fresh := p.BandDequeuedBytes(); fresh[1] != 400 {
		t.Fatalf("prio counter map is not a copy: %v", fresh)
	}
}
