package qdisc

import (
	"testing"
	"testing/quick"
)

const linkRate = 1.25e9 // 10 Gbps in bytes/sec

// newTLsHTB builds the TensorLights-style tree: tiny guaranteed rates,
// full-link ceils, one class per band.
func newTLsHTB(bands int) *HTB {
	h := NewHTB(linkRate, ClassID(bands-1))
	for b := 0; b < bands; b++ {
		if err := h.AddClass(ClassID(b), HTBClassConfig{
			Rate: 125_000, Ceil: linkRate, Prio: b,
		}); err != nil {
			panic(err)
		}
		h.Classifier().Add(Filter{Pref: b, Match: MatchSrcPort(5000 + b), Target: ClassID(b)})
	}
	return h
}

// drainAll services the htb like a line-rate device, returning chunks in
// transmission order.
func drainAll(h *HTB, start float64) []*Chunk {
	var out []*Chunk
	now := start
	for h.Len() > 0 {
		c := h.Dequeue(now)
		if c == nil {
			at := h.ReadyAt(now)
			if at >= Never {
				break
			}
			now = at
			continue
		}
		out = append(out, c)
		now += float64(c.Bytes) / linkRate
	}
	return out
}

func TestHTBPriorityBorrowOrder(t *testing.T) {
	h := newTLsHTB(3)
	// Fill low-priority band first, then high: high must transmit first
	// once its own chunks arrive (after the tiny green burst is spent).
	for i := 0; i < 8; i++ {
		h.Enqueue(mkChunk(uint64(100+i), 5002, 256<<10), 0)
	}
	for i := 0; i < 8; i++ {
		h.Enqueue(mkChunk(uint64(i), 5000, 256<<10), 0)
	}
	got := drainAll(h, 0)
	if len(got) != 16 {
		t.Fatalf("drained %d of 16", len(got))
	}
	// Count how many band-0 chunks appear in the first 8 slots.
	band0First := 0
	lastBand0 := -1
	for i, c := range got {
		if c.SrcPort == 5000 {
			if i < 8 {
				band0First++
			}
			lastBand0 = i
		}
	}
	// The low band's guaranteed (green) burst legitimately leaks a few
	// chunks — that is htb's rate guarantee — but the high band must
	// dominate the head of the schedule and fully finish well before
	// the low band's tail.
	if band0First < 5 {
		t.Fatalf("only %d of first 8 transmissions were high priority", band0First)
	}
	if lastBand0 > 11 {
		t.Fatalf("high band finished at position %d of 16", lastBand0)
	}
}

func TestHTBWorkConserving(t *testing.T) {
	h := newTLsHTB(6)
	total := int64(0)
	for b := 0; b < 6; b++ {
		for i := 0; i < 4; i++ {
			h.Enqueue(mkChunk(uint64(b*10+i), 5000+b, 256<<10), 0)
			total += 256 << 10
		}
	}
	got := drainAll(h, 0)
	var bytes int64
	for _, c := range got {
		bytes += c.Bytes
	}
	if bytes != total {
		t.Fatalf("transmitted %d of %d bytes", bytes, total)
	}
}

func TestHTBGreenRateConformance(t *testing.T) {
	// A single class with rate R and ceil R (no borrowing headroom
	// beyond its bucket) must average ~R bytes/sec over a long drain.
	h := NewHTB(linkRate, 0)
	rate := 10e6 // 10 MB/s
	if err := h.AddClass(0, HTBClassConfig{Rate: rate, Ceil: rate, Burst: 256 << 10, CBurst: 256 << 10}); err != nil {
		t.Fatal(err)
	}
	n := 40
	for i := 0; i < n; i++ {
		h.Enqueue(mkChunk(uint64(i), 5000, 256<<10), 0)
	}
	now := 0.0
	for h.Len() > 0 {
		c := h.Dequeue(now)
		if c == nil {
			now = h.ReadyAt(now)
			continue
		}
	}
	totalBytes := float64(n * (256 << 10))
	// now is when the last chunk became eligible; effective rate must be
	// within 20% of configured (bursts allow some slack).
	eff := totalBytes / now
	if eff < 0.8*rate || eff > 1.5*rate {
		t.Fatalf("effective rate %.0f, configured %.0f", eff, rate)
	}
}

func TestHTBCeilCapsBorrowing(t *testing.T) {
	// Class with ceil = rate = 10MB/s must not exceed it even when the
	// root has spare capacity.
	h := NewHTB(linkRate, 0)
	if err := h.AddClass(0, HTBClassConfig{Rate: 5e6, Ceil: 10e6, Burst: 256 << 10, CBurst: 256 << 10}); err != nil {
		t.Fatal(err)
	}
	n := 40
	for i := 0; i < n; i++ {
		h.Enqueue(mkChunk(uint64(i), 5000, 256<<10), 0)
	}
	now := 0.0
	for h.Len() > 0 {
		c := h.Dequeue(now)
		if c == nil {
			now = h.ReadyAt(now)
			continue
		}
	}
	eff := float64(n*(256<<10)) / now
	if eff > 1.5*10e6 {
		t.Fatalf("class exceeded ceil: %.0f bytes/sec", eff)
	}
}

func TestHTBDRRQuantumSharing(t *testing.T) {
	// Two same-priority classes with 3:1 quantum should split service
	// roughly 3:1 while both are backlogged.
	h := NewHTB(linkRate, 0)
	_ = h.AddClass(0, HTBClassConfig{Rate: 125_000, Ceil: linkRate, Prio: 0, Quantum: 768 << 10})
	_ = h.AddClass(1, HTBClassConfig{Rate: 125_000, Ceil: linkRate, Prio: 0, Quantum: 256 << 10})
	h.Classifier().Add(Filter{Pref: 0, Match: MatchSrcPort(5000), Target: 0})
	h.Classifier().Add(Filter{Pref: 1, Match: MatchSrcPort(5001), Target: 1})
	for i := 0; i < 40; i++ {
		h.Enqueue(mkChunk(uint64(i), 5000, 256<<10), 0)
		h.Enqueue(mkChunk(uint64(100+i), 5001, 256<<10), 0)
	}
	got := drainAll(h, 0)
	c0 := 0
	for _, c := range got[:32] {
		if c.SrcPort == 5000 {
			c0++
		}
	}
	if c0 < 20 || c0 > 28 {
		t.Fatalf("quantum 3:1 gave class0 %d of first 32 (want ~24)", c0)
	}
}

func TestHTBDirectQueue(t *testing.T) {
	h := NewHTB(linkRate, 5) // default class doesn't exist
	h.Enqueue(mkChunk(1, 5000, 100), 0)
	if h.DirectPackets() != 1 {
		t.Fatalf("direct packets %d", h.DirectPackets())
	}
	if h.Len() != 1 {
		t.Fatal("direct chunk not counted in Len")
	}
	if h.ReadyAt(0) != 0 {
		t.Fatal("direct chunk must be ready immediately")
	}
	c := h.Dequeue(0)
	if c == nil || c.FlowID != 1 {
		t.Fatal("direct chunk not dequeued")
	}
	st := h.Stats()
	if st.DroppedPackets != 0 {
		t.Fatal("direct traffic must not be counted as dropped")
	}
}

func TestHTBDirectBeforeClasses(t *testing.T) {
	h := newTLsHTB(2)
	h.Enqueue(mkChunk(1, 5000, 100), 0) // class 0
	h.Enqueue(mkChunk(2, 7777, 100), 0) // default class 1 exists -> classified
	// Remove classes' filters and point default at a hole: new chunk is direct.
	h.SetDefaultClass(42)
	h.Classifier().Clear()
	h.Enqueue(mkChunk(3, 5000, 100), 0)
	c := h.Dequeue(0)
	if c.FlowID != 3 {
		t.Fatalf("direct chunk must transmit first, got flow %d", c.FlowID)
	}
}

func TestHTBClassManagement(t *testing.T) {
	h := NewHTB(linkRate, 0)
	if err := h.AddClass(0, HTBClassConfig{Rate: 1e6}); err != nil {
		t.Fatal(err)
	}
	if err := h.AddClass(0, HTBClassConfig{Rate: 1e6}); err == nil {
		t.Fatal("duplicate class accepted")
	}
	if err := h.AddClass(1, HTBClassConfig{}); err == nil {
		t.Fatal("class without rate accepted")
	}
	if err := h.AddClass(1, HTBClassConfig{Rate: 2e6, Ceil: 1e6}); err == nil {
		t.Fatal("ceil < rate accepted")
	}
	if err := h.ChangeClass(9, HTBClassConfig{Rate: 1e6}); err == nil {
		t.Fatal("change of missing class accepted")
	}
	if err := h.ChangeClass(0, HTBClassConfig{Prio: 3}); err != nil {
		t.Fatal(err)
	}
	if h.Class(0).Config().Prio != 3 {
		t.Fatal("prio change not applied")
	}
	if h.Class(0).Config().Rate != 1e6 {
		t.Fatal("change must preserve unspecified rate")
	}
	h.Enqueue(mkChunk(1, 0, 10), 0) // default class 0
	if err := h.DeleteClass(0); err == nil {
		t.Fatal("deleted non-empty class")
	}
	if h.Dequeue(0) == nil {
		t.Fatal("dequeue")
	}
	if err := h.DeleteClass(0); err != nil {
		t.Fatal(err)
	}
	if err := h.DeleteClass(0); err == nil {
		t.Fatal("double delete accepted")
	}
	if len(h.Classes()) != 0 {
		t.Fatal("classes left")
	}
}

func TestHTBDefaultClassFallback(t *testing.T) {
	h := newTLsHTB(4)
	h.Enqueue(mkChunk(1, 9999, 64), 0) // unmatched -> default class 3
	if h.Class(3).Len() != 1 {
		t.Fatal("unmatched chunk not in default class")
	}
}

// Property: ReadyAt never promises a time at which Dequeue still fails
// (the invariant behind the device wake-up loop).
func TestHTBReadyAtDequeueAgreement(t *testing.T) {
	f := func(seed int64, sizes []uint8) bool {
		h := newTLsHTB(3)
		now := 0.0
		for i, s := range sizes {
			b := int64(s)*1024 + 512
			h.Enqueue(mkChunk(uint64(i), 5000+i%4, b), now)
		}
		for h.Len() > 0 {
			at := h.ReadyAt(now)
			if at >= Never {
				return false // non-empty qdisc must eventually be ready
			}
			c := h.Dequeue(at)
			if c == nil {
				return false // ReadyAt lied
			}
			now = at + float64(c.Bytes)/linkRate
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Byte conservation through arbitrary enqueue/dequeue interleaving.
func TestHTBConservationProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		h := newTLsHTB(6)
		var in, out int64
		now := 0.0
		for i, s := range sizes {
			b := int64(s)*100 + 1
			in += b
			h.Enqueue(mkChunk(uint64(i), 5000+i%8, b), now)
			if i%3 == 0 {
				if c := h.Dequeue(now); c != nil {
					out += c.Bytes
					now += float64(c.Bytes) / linkRate
				}
			}
		}
		for _, c := range drainAll(h, now) {
			out += c.Bytes
		}
		return in == out && h.BacklogBytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHTBPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHTB(0) did not panic")
		}
	}()
	NewHTB(0, 0)
}

func TestHTBKind(t *testing.T) {
	if newTLsHTB(2).Kind() != "htb" {
		t.Fatal("kind")
	}
}
