package qdisc

import (
	"fmt"
	"sort"
)

// HTB is a two-level hierarchical token bucket: a root class bounded by
// the link ceil, and leaf classes each with a guaranteed rate, a ceil, a
// borrowing priority and a DRR quantum. This mirrors how the paper
// deploys TensorLights: `tc qdisc add ... root htb` plus one leaf class
// per priority band, where each leaf has a tiny guaranteed rate and full
// ceil so that the borrowing priority realizes strict prioritization
// while remaining work-conserving.
//
// Semantics follow htb's documented behaviour:
//
//   - a leaf whose own token bucket is non-negative is "green" and may
//     send at its guaranteed rate regardless of priority;
//   - otherwise, if its ceil bucket and the root bucket are non-negative
//     it is "yellow" and may borrow, with lower Prio values offered the
//     excess bandwidth first;
//   - equal-priority leaves share via deficit round robin weighted by
//     Quantum.
type HTB struct {
	rootRate   float64 // bytes/sec available for borrowing
	rootBurst  float64 // bytes
	rootTokens float64
	lastUpdate float64

	classes    map[ClassID]*HTBClass
	order      []ClassID // stable iteration order (sorted by id)
	classifier *Classifier
	defClass   ClassID
	stats      Stats

	// direct holds chunks that classify to a nonexistent class. Linux
	// htb sends such packets out unshaped at hardware speed ("direct
	// packets"); modelling this matters because a tc reconfiguration
	// momentarily has a classless htb root, and dropping in-flight
	// model updates there would deadlock synchronous training.
	direct        fifoQueue
	directPackets uint64

	// rrPos holds the round-robin cursor per priority level.
	rrPos map[int]int
}

// HTBClassConfig configures a leaf class. Rates are bytes/sec; bursts
// are bytes. Zero Burst/CBurst/Quantum select reasonable defaults.
type HTBClassConfig struct {
	Rate    float64
	Ceil    float64
	Burst   float64
	CBurst  float64
	Prio    int
	Quantum float64
}

// HTBClass is a leaf class with its own FIFO.
type HTBClass struct {
	ID      ClassID
	cfg     HTBClassConfig
	tokens  float64
	ctokens float64
	deficit float64
	q       fifoQueue
	stats   Stats
}

// Config returns the class configuration.
func (c *HTBClass) Config() HTBClassConfig { return c.cfg }

// Stats returns per-class counters.
func (c *HTBClass) Stats() Stats { return c.stats }

// Len returns chunks queued in this class.
func (c *HTBClass) Len() int { return c.q.len() }

// defaultHTBBurst sizes a bucket so one maximum-size chunk always fits.
const defaultHTBBurst = 512 * 1024

// NewHTB creates an htb with the given link rate (bytes/sec). Chunks
// that classify to a nonexistent class fall into defClass; if that is
// also missing at enqueue time the chunk is dropped (matching htb's
// behaviour for an invalid default class).
func NewHTB(linkRate float64, defClass ClassID) *HTB {
	if linkRate <= 0 {
		panic("qdisc: htb link rate must be positive")
	}
	return &HTB{
		rootRate:   linkRate,
		rootBurst:  defaultHTBBurst,
		rootTokens: defaultHTBBurst,
		classes:    make(map[ClassID]*HTBClass),
		classifier: NewClassifier(defClass),
		defClass:   defClass,
		rrPos:      make(map[int]int),
	}
}

// Classifier exposes the filter chain.
func (h *HTB) Classifier() *Classifier { return h.classifier }

// DefaultClass returns the fallback class id.
func (h *HTB) DefaultClass() ClassID { return h.defClass }

// SetDefaultClass changes the fallback class id.
func (h *HTB) SetDefaultClass(id ClassID) {
	h.defClass = id
	h.classifier.SetDefault(id)
}

// AddClass installs a new leaf class.
func (h *HTB) AddClass(id ClassID, cfg HTBClassConfig) error {
	if _, ok := h.classes[id]; ok {
		return fmt.Errorf("qdisc: htb class %d exists", id)
	}
	if cfg.Rate <= 0 {
		return fmt.Errorf("qdisc: htb class %d needs positive rate", id)
	}
	if cfg.Ceil <= 0 {
		cfg.Ceil = cfg.Rate
	}
	if cfg.Ceil < cfg.Rate {
		return fmt.Errorf("qdisc: htb class %d ceil %.0f < rate %.0f", id, cfg.Ceil, cfg.Rate)
	}
	if cfg.Burst <= 0 {
		cfg.Burst = defaultHTBBurst
	}
	if cfg.CBurst <= 0 {
		cfg.CBurst = defaultHTBBurst
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 256 * 1024
	}
	if cfg.Prio < 0 {
		cfg.Prio = 0
	}
	c := &HTBClass{ID: id, cfg: cfg, tokens: cfg.Burst, ctokens: cfg.CBurst}
	h.classes[id] = c
	h.order = append(h.order, id)
	sort.Slice(h.order, func(i, j int) bool { return h.order[i] < h.order[j] })
	return nil
}

// ChangeClass updates an existing class's configuration in place,
// preserving its queue (tc class change).
func (h *HTB) ChangeClass(id ClassID, cfg HTBClassConfig) error {
	c, ok := h.classes[id]
	if !ok {
		return fmt.Errorf("qdisc: htb class %d not found", id)
	}
	if cfg.Rate <= 0 {
		cfg.Rate = c.cfg.Rate
	}
	if cfg.Ceil <= 0 {
		cfg.Ceil = c.cfg.Ceil
	}
	if cfg.Ceil < cfg.Rate {
		return fmt.Errorf("qdisc: htb class %d ceil %.0f < rate %.0f", id, cfg.Ceil, cfg.Rate)
	}
	if cfg.Burst <= 0 {
		cfg.Burst = c.cfg.Burst
	}
	if cfg.CBurst <= 0 {
		cfg.CBurst = c.cfg.CBurst
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = c.cfg.Quantum
	}
	if cfg.Prio < 0 {
		cfg.Prio = c.cfg.Prio
	}
	c.cfg = cfg
	if c.tokens > cfg.Burst {
		c.tokens = cfg.Burst
	}
	if c.ctokens > cfg.CBurst {
		c.ctokens = cfg.CBurst
	}
	return nil
}

// DeleteClass removes a class. Deleting a non-empty class returns an
// error, matching tc's refusal to delete classes with active traffic.
func (h *HTB) DeleteClass(id ClassID) error {
	c, ok := h.classes[id]
	if !ok {
		return fmt.Errorf("qdisc: htb class %d not found", id)
	}
	if c.q.len() > 0 {
		return fmt.Errorf("qdisc: htb class %d is non-empty", id)
	}
	delete(h.classes, id)
	for i, cid := range h.order {
		if cid == id {
			h.order = append(h.order[:i], h.order[i+1:]...)
			break
		}
	}
	return nil
}

// Class returns the leaf with the given id, or nil.
func (h *HTB) Class(id ClassID) *HTBClass { return h.classes[id] }

// Classes returns leaf ids in stable order.
func (h *HTB) Classes() []ClassID {
	out := make([]ClassID, len(h.order))
	copy(out, h.order)
	return out
}

// DirectPackets returns how many chunks bypassed shaping because they
// classified to a nonexistent class.
func (h *HTB) DirectPackets() uint64 { return h.directPackets }

// Enqueue classifies and queues the chunk. Chunks whose class (and the
// default class) do not exist go to the direct queue, as in Linux htb.
func (h *HTB) Enqueue(c *Chunk, now float64) {
	id := h.classifier.Classify(c)
	cl, ok := h.classes[id]
	if !ok {
		cl, ok = h.classes[h.defClass]
	}
	if !ok {
		c.enqueuedAt = now
		h.direct.push(c)
		h.directPackets++
		h.stats.EnqueuedPackets++
		h.stats.EnqueuedBytes += uint64(c.Bytes)
		return
	}
	c.enqueuedAt = now
	cl.q.push(c)
	cl.stats.EnqueuedPackets++
	cl.stats.EnqueuedBytes += uint64(c.Bytes)
	h.stats.EnqueuedPackets++
	h.stats.EnqueuedBytes += uint64(c.Bytes)
}

// tokEps absorbs floating-point residue in token arithmetic so that a
// Dequeue at the exact time ReadyAt promised always succeeds.
const tokEps = 1e-3 // bytes

// refill advances every token bucket to now.
func (h *HTB) refill(now float64) {
	dt := now - h.lastUpdate
	if dt <= 0 {
		return
	}
	h.lastUpdate = now
	h.rootTokens += h.rootRate * dt
	if h.rootTokens > h.rootBurst {
		h.rootTokens = h.rootBurst
	}
	for _, id := range h.order {
		cl := h.classes[id]
		cl.tokens += cl.cfg.Rate * dt
		if cl.tokens > cl.cfg.Burst {
			cl.tokens = cl.cfg.Burst
		}
		cl.ctokens += cl.cfg.Ceil * dt
		if cl.ctokens > cl.cfg.CBurst {
			cl.ctokens = cl.cfg.CBurst
		}
	}
}

// prioLevels returns the sorted distinct priorities of non-empty classes.
func (h *HTB) prioLevels() []int {
	seen := map[int]bool{}
	var levels []int
	for _, id := range h.order {
		cl := h.classes[id]
		if cl.q.len() == 0 {
			continue
		}
		if !seen[cl.cfg.Prio] {
			seen[cl.cfg.Prio] = true
			levels = append(levels, cl.cfg.Prio)
		}
	}
	sort.Ints(levels)
	return levels
}

// pickDRR selects the next eligible class at a priority level using a
// quantum-weighted round robin cursor.
func (h *HTB) pickDRR(level int, eligible func(*HTBClass) bool) *HTBClass {
	var ring []*HTBClass
	for _, id := range h.order {
		cl := h.classes[id]
		if cl.cfg.Prio == level && cl.q.len() > 0 && eligible(cl) {
			ring = append(ring, cl)
		}
	}
	if len(ring) == 0 {
		return nil
	}
	pos := h.rrPos[level] % len(ring)
	cl := ring[pos]
	head := cl.q.peek()
	cl.deficit -= float64(head.Bytes)
	if cl.deficit <= 0 {
		cl.deficit += cl.cfg.Quantum
		if cl.deficit < 0 {
			cl.deficit = 0
		}
		h.rrPos[level] = (pos + 1) % len(ring)
	}
	return cl
}

// Dequeue returns the next chunk allowed to transmit at now, or nil if
// all non-empty classes are rate-gated.
func (h *HTB) Dequeue(now float64) *Chunk {
	// Token state is monotone: queries behind the token clock (e.g.
	// during a reconfiguration drain) evaluate at the clock instead.
	if now < h.lastUpdate {
		now = h.lastUpdate
	}
	h.refill(now)
	// Direct packets go out first, unshaped (Linux htb behaviour).
	if ch := h.direct.pop(); ch != nil {
		h.stats.DequeuedPackets++
		h.stats.DequeuedBytes += uint64(ch.Bytes)
		return ch
	}
	// Pass 1: green classes send on their own guaranteed rate.
	for _, level := range h.prioLevels() {
		cl := h.pickDRR(level, func(c *HTBClass) bool { return c.tokens >= -tokEps })
		if cl == nil {
			continue
		}
		ch := cl.q.pop()
		cl.tokens -= float64(ch.Bytes)
		cl.ctokens -= float64(ch.Bytes)
		h.charge(cl, ch)
		return ch
	}
	// Pass 2: yellow classes borrow root bandwidth in priority order.
	if h.rootTokens >= -tokEps {
		for _, level := range h.prioLevels() {
			cl := h.pickDRR(level, func(c *HTBClass) bool { return c.ctokens >= -tokEps })
			if cl == nil {
				continue
			}
			ch := cl.q.pop()
			cl.ctokens -= float64(ch.Bytes)
			h.rootTokens -= float64(ch.Bytes)
			h.charge(cl, ch)
			return ch
		}
	}
	if h.Len() > 0 {
		h.stats.Overlimits++
	}
	return nil
}

func (h *HTB) charge(cl *HTBClass, ch *Chunk) {
	cl.stats.DequeuedPackets++
	cl.stats.DequeuedBytes += uint64(ch.Bytes)
	h.stats.DequeuedPackets++
	h.stats.DequeuedBytes += uint64(ch.Bytes)
}

// ReadyAt reports the earliest time some class can transmit.
func (h *HTB) ReadyAt(now float64) float64 {
	if now < h.lastUpdate {
		now = h.lastUpdate
	}
	h.refill(now)
	if h.direct.len() > 0 {
		return now
	}
	ready := Never
	for _, id := range h.order {
		cl := h.classes[id]
		if cl.q.len() == 0 {
			continue
		}
		// Time until green: own bucket refills to zero.
		tGreen := now
		if cl.tokens < 0 {
			tGreen = now + -cl.tokens/cl.cfg.Rate
		}
		if tGreen < ready {
			ready = tGreen
		}
		// Time until yellow: both ceil bucket and root refill.
		tYellow := now
		if cl.ctokens < 0 {
			tYellow = now + -cl.ctokens/cl.cfg.Ceil
		}
		if h.rootTokens < 0 {
			tRoot := now + -h.rootTokens/h.rootRate
			if tRoot > tYellow {
				tYellow = tRoot
			}
		}
		if tYellow < ready {
			ready = tYellow
		}
	}
	return ready
}

// Len returns total queued chunks.
func (h *HTB) Len() int {
	n := h.direct.len()
	for _, id := range h.order {
		n += h.classes[id].q.len()
	}
	return n
}

// BacklogBytes returns total queued bytes.
func (h *HTB) BacklogBytes() int64 {
	n := h.direct.bytes
	for _, id := range h.order {
		n += h.classes[id].q.bytes
	}
	return n
}

// Stats returns a copy of the aggregate counters; mutating it does not
// affect the qdisc.
func (h *HTB) Stats() Stats { return h.stats }

// BandDequeuedBytes returns cumulative dequeued bytes per class id as
// a fresh map (BandCounter).
func (h *HTB) BandDequeuedBytes() map[int]uint64 {
	out := make(map[int]uint64, len(h.order))
	for _, id := range h.order {
		out[int(id)] = h.classes[id].stats.DequeuedBytes
	}
	return out
}

// Kind returns "htb".
func (h *HTB) Kind() string { return "htb" }
