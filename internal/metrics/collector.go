package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Collector is a minimal Prometheus-text-format metric registry for
// long-running processes (the tlsimd daemon exposes one at /metrics).
// It supports monotonically increasing counters, settable gauges, and
// gauge functions sampled at scrape time. Registration is idempotent:
// asking for an existing (name, labels) series returns the same
// underlying value, so package-level wiring can re-register freely.
//
// The exposition is deliberately tiny — no histogram/summary types, no
// client_golang dependency — but the output is valid Prometheus text
// (HELP/TYPE comments, label escaping, deterministic ordering) so any
// scraper can consume it.
type Collector struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration order is irrelevant; render sorts
}

// family groups every labeled series of one metric name.
type family struct {
	name   string
	help   string
	typ    string // "counter" or "gauge"
	series map[string]*series
	fns    map[string]func() float64 // gauge functions, by label key
}

// series is one (name, labels) time series.
type series struct {
	labels string // rendered label set, "" or `{k="v",...}`
	bits   atomic.Uint64
}

func (s *series) add(delta float64) {
	for {
		old := s.bits.Load()
		next := f2b(b2f(old) + delta)
		if s.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (s *series) set(v float64)  { s.bits.Store(f2b(v)) }
func (s *series) value() float64 { return b2f(s.bits.Load()) }
func f2b(f float64) uint64       { return math.Float64bits(f) }
func b2f(b uint64) float64       { return math.Float64frombits(b) }

// NewCollector returns an empty registry.
func NewCollector() *Collector {
	return &Collector{families: map[string]*family{}}
}

// Counter is a monotonically increasing metric.
type Counter struct{ s *series }

// Inc adds 1.
func (c *Counter) Inc() { c.s.add(1) }

// Add adds delta; negative deltas panic (counters only go up).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		panic("metrics: counter decrement")
	}
	c.s.add(delta)
}

// Value returns the current count (tests and status pages).
func (c *Counter) Value() float64 { return c.s.value() }

// Gauge is a metric that can go up and down.
type Gauge struct{ s *series }

// Set assigns the gauge.
func (g *Gauge) Set(v float64) { g.s.set(v) }

// Add shifts the gauge by delta (may be negative).
func (g *Gauge) Add(delta float64) { g.s.add(delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.s.value() }

// Label is one key=value metric label.
type Label struct{ Key, Value string }

// Counter registers (or retrieves) a counter series. Labels are
// optional; the same name may carry many label sets but only one help
// string and type (enforced: re-registering a name as a different type
// panics — it is always a programming error).
func (c *Collector) Counter(name, help string, labels ...Label) *Counter {
	s := c.register(name, help, "counter", labels)
	return &Counter{s: s}
}

// Gauge registers (or retrieves) a gauge series.
func (c *Collector) Gauge(name, help string, labels ...Label) *Gauge {
	s := c.register(name, help, "gauge", labels)
	return &Gauge{s: s}
}

// GaugeFunc registers a gauge sampled by calling fn at scrape time —
// for values that already live elsewhere (queue depth, cache size).
// fn must be safe to call from the scrape goroutine.
func (c *Collector) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.familyLocked(name, help, "gauge")
	if f.fns == nil {
		f.fns = map[string]func() float64{}
	}
	f.fns[renderLabels(labels)] = fn
}

func (c *Collector) register(name, help, typ string, labels []Label) *series {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.familyLocked(name, help, typ)
	key := renderLabels(labels)
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labels: key}
	f.series[key] = s
	return s
}

func (c *Collector) familyLocked(name, help, typ string) *family {
	f, ok := c.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: map[string]*series{}}
		c.families[name] = f
		c.names = append(c.names, name)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.typ, typ))
	}
	return f
}

// renderLabels renders a sorted, escaped Prometheus label block, "" for
// no labels. Sorting makes the series key canonical: the same label set
// in any order is the same series.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in Prometheus text exposition
// format. Families are sorted by name and series by label block, so the
// output is deterministic — scrape diffs and golden tests stay stable.
func (c *Collector) WritePrometheus(w io.Writer) error {
	c.mu.Lock()
	names := append([]string(nil), c.names...)
	sort.Strings(names)
	type line struct{ labels string; v float64 }
	type block struct {
		name, help, typ string
		lines           []line
	}
	blocks := make([]block, 0, len(names))
	for _, name := range names {
		f := c.families[name]
		b := block{name: f.name, help: f.help, typ: f.typ}
		for key, s := range f.series {
			b.lines = append(b.lines, line{labels: key, v: s.value()})
		}
		for key, fn := range f.fns {
			b.lines = append(b.lines, line{labels: key, v: fn()})
		}
		sort.Slice(b.lines, func(i, j int) bool { return b.lines[i].labels < b.lines[j].labels })
		blocks = append(blocks, b)
	}
	c.mu.Unlock()

	for _, b := range blocks {
		if b.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", b.name, b.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", b.name, b.typ); err != nil {
			return err
		}
		for _, l := range b.lines {
			if _, err := fmt.Fprintf(w, "%s%s %v\n", b.name, l.labels, l.v); err != nil {
				return err
			}
		}
	}
	return nil
}
