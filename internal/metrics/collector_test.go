package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCollectorPrometheusOutput(t *testing.T) {
	c := NewCollector()
	jobs := c.Counter("tlsimd_jobs_completed_total", "Jobs run to completion.")
	jobs.Inc()
	jobs.Add(2)
	rejQ := c.Counter("tlsimd_jobs_rejected_total", "Rejected submissions.", Label{"reason", "queue_full"})
	rejR := c.Counter("tlsimd_jobs_rejected_total", "Rejected submissions.", Label{"reason", "rate_limited"})
	rejQ.Inc()
	rejR.Add(4)
	depth := c.Gauge("tlsimd_queue_depth", "Jobs waiting in the bounded queue.")
	depth.Set(7)
	depth.Add(-2)
	c.GaugeFunc("tlsimd_cache_entries", "Content-addressed result cache size.", func() float64 { return 3 })

	var b strings.Builder
	if err := c.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP tlsimd_jobs_completed_total Jobs run to completion.",
		"# TYPE tlsimd_jobs_completed_total counter",
		"tlsimd_jobs_completed_total 3",
		`tlsimd_jobs_rejected_total{reason="queue_full"} 1`,
		`tlsimd_jobs_rejected_total{reason="rate_limited"} 4`,
		"# TYPE tlsimd_queue_depth gauge",
		"tlsimd_queue_depth 5",
		"tlsimd_cache_entries 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Deterministic: a second render must be byte-identical.
	var b2 strings.Builder
	if err := c.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Fatal("two renders of the same registry differ")
	}
}

func TestCollectorIdempotentRegistration(t *testing.T) {
	c := NewCollector()
	a := c.Counter("x_total", "X.")
	b := c.Counter("x_total", "X.")
	a.Inc()
	b.Inc()
	if a.Value() != 2 || b.Value() != 2 {
		t.Fatalf("re-registration did not return the same series: %v vs %v", a.Value(), b.Value())
	}
	// Same name, different label sets: distinct series.
	l1 := c.Counter("y_total", "Y.", Label{"k", "a"})
	l2 := c.Counter("y_total", "Y.", Label{"k", "b"})
	l1.Inc()
	if l2.Value() != 0 {
		t.Fatal("label sets alias the same series")
	}
	// Label order must not matter for series identity.
	m1 := c.Gauge("z", "Z.", Label{"a", "1"}, Label{"b", "2"})
	m2 := c.Gauge("z", "Z.", Label{"b", "2"}, Label{"a", "1"})
	m1.Set(9)
	if m2.Value() != 9 {
		t.Fatal("label order changed series identity")
	}
}

func TestCollectorTypeConflictPanics(t *testing.T) {
	c := NewCollector()
	c.Counter("t_total", "T.")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge should panic")
		}
	}()
	c.Gauge("t_total", "T.")
}

func TestCollectorConcurrentUse(t *testing.T) {
	c := NewCollector()
	ctr := c.Counter("conc_total", "Concurrency.")
	g := c.Gauge("conc_gauge", "Concurrency.")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				ctr.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if ctr.Value() != 8000 {
		t.Fatalf("lost increments: %v", ctr.Value())
	}
	if g.Value() != 0 {
		t.Fatalf("gauge drifted: %v", g.Value())
	}
}
