package metrics

import (
	"fmt"

	"repro/internal/cpusim"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// HostSnapshot captures one host's cumulative counters at an instant.
type HostSnapshot struct {
	At      float64
	CPUBusy float64 // thread-seconds
	NetOut  int64   // bytes
	NetIn   int64   // bytes
	EgressQ int64   // queued bytes at snapshot time
}

// HostUtil is utilization over a window, each in [0,1] of capacity.
type HostUtil struct {
	Host   int
	CPU    float64
	NetOut float64
	NetIn  float64
}

// LinkSnapshot captures one fabric core link's cumulative counters.
type LinkSnapshot struct {
	At       float64
	Bytes    int64
	BusyTime float64
}

// LinkUtil is one core link's utilization over a window.
type LinkUtil struct {
	Link  int
	Name  string
	Util  float64 // busy fraction of the window, [0,1]
	Bytes int64   // bytes carried during the window
}

// UtilizationSampler periodically snapshots every host's CPU busy time
// and NIC byte counters, the simulated equivalent of running vmstat and
// ifstat on each server. Windowed utilization is computed from counter
// differences, so any [start, end] aligned to sample ticks is exact.
//
// Goroutine-safety: a sampler is bound to one kernel and is only ever
// touched from that kernel's goroutine (sweep.Run constructs one per
// trial), so it needs — and has — no locking. Do not share a sampler
// across trials run by sweep's parallel Engine.
type UtilizationSampler struct {
	k        *sim.Kernel
	fabric   *simnet.Fabric
	cpus     []*cpusim.CPU
	interval float64
	running  bool
	stopped  bool
	// series[host] is the snapshot time series.
	series [][]HostSnapshot
	// linkSeries[link] is the core-link snapshot series (empty on the
	// flat topology, which has no core links).
	linkSeries [][]LinkSnapshot
	links      []*simnet.Link
	// Tracer, when non-nil before Start, receives a link_util event per
	// core link per tick (Host = link ID, Value = busy fraction since
	// the previous tick).
	Tracer trace.Tracer
}

// NewUtilizationSampler creates a sampler; call Start to begin.
func NewUtilizationSampler(k *sim.Kernel, fabric *simnet.Fabric, cpus []*cpusim.CPU, intervalSec float64) *UtilizationSampler {
	if intervalSec <= 0 {
		intervalSec = 1
	}
	links := fabric.CoreLinks()
	return &UtilizationSampler{
		k:          k,
		fabric:     fabric,
		cpus:       cpus,
		interval:   intervalSec,
		series:     make([][]HostSnapshot, fabric.NumHosts()),
		linkSeries: make([][]LinkSnapshot, len(links)),
		links:      links,
	}
}

// Start takes the first snapshot now and schedules the rest.
func (s *UtilizationSampler) Start() {
	if s.running {
		return
	}
	s.running = true
	s.tick()
}

// Stop halts sampling after the current tick.
func (s *UtilizationSampler) Stop() { s.stopped = true }

func (s *UtilizationSampler) tick() {
	if s.stopped {
		s.running = false
		return
	}
	s.snapshot()
	s.k.PostAfter(s.interval, s.tick)
}

func (s *UtilizationSampler) snapshot() {
	now := s.k.Now()
	for h := 0; h < s.fabric.NumHosts(); h++ {
		host := s.fabric.Host(h)
		s.series[h] = append(s.series[h], HostSnapshot{
			At:      now,
			CPUBusy: s.cpus[h].BusyTime(),
			NetOut:  host.Egress.Bytes(),
			NetIn:   host.Ingress.Bytes(),
			EgressQ: host.Egress.QueuedBytes(),
		})
	}
	for i, l := range s.links {
		snap := LinkSnapshot{At: now, Bytes: l.Port().Bytes(), BusyTime: l.Port().BusyTime()}
		if s.Tracer != nil {
			util := 0.0
			if prev := s.linkSeries[i]; len(prev) > 0 {
				if dt := now - prev[len(prev)-1].At; dt > 0 {
					util = (snap.BusyTime - prev[len(prev)-1].BusyTime) / dt
				}
			}
			s.Tracer.Emit(trace.Event{
				At: now, Kind: trace.KindLinkUtil, Job: -1, Host: l.ID,
				Worker: -1, Value: util, Detail: l.Name,
			})
		}
		s.linkSeries[i] = append(s.linkSeries[i], snap)
	}
}

// Series returns the snapshot series for a host.
func (s *UtilizationSampler) Series(host int) []HostSnapshot { return s.series[host] }

// LinkSeries returns the snapshot series for a core link.
func (s *UtilizationSampler) LinkSeries(link int) []LinkSnapshot { return s.linkSeries[link] }

// LinkWindow computes per-core-link utilization over [start, end],
// mirroring Window for the fabric's internal links. Returns an empty
// slice on the flat topology.
func (s *UtilizationSampler) LinkWindow(start, end float64) ([]LinkUtil, error) {
	if end <= start {
		return nil, fmt.Errorf("metrics: bad window [%.3f, %.3f]", start, end)
	}
	out := make([]LinkUtil, 0, len(s.linkSeries))
	for i, series := range s.linkSeries {
		a, err := linkSnapshotAtOrBefore(series, start)
		if err != nil {
			return nil, fmt.Errorf("link %d: %w", i, err)
		}
		b, err := linkSnapshotAtOrBefore(series, end)
		if err != nil {
			return nil, fmt.Errorf("link %d: %w", i, err)
		}
		dt := b.At - a.At
		if dt <= 0 {
			return nil, fmt.Errorf("metrics: link %d window collapsed (%.3f)", i, dt)
		}
		out = append(out, LinkUtil{
			Link:  s.links[i].ID,
			Name:  s.links[i].Name,
			Util:  (b.BusyTime - a.BusyTime) / dt,
			Bytes: b.Bytes - a.Bytes,
		})
	}
	return out, nil
}

// linkSnapshotAtOrBefore finds the latest link snapshot with At <= t.
func linkSnapshotAtOrBefore(series []LinkSnapshot, t float64) (LinkSnapshot, error) {
	var found *LinkSnapshot
	for i := range series {
		if series[i].At <= t+1e-9 {
			found = &series[i]
		} else {
			break
		}
	}
	if found == nil {
		return LinkSnapshot{}, fmt.Errorf("metrics: no snapshot at or before t=%.3f", t)
	}
	return *found, nil
}

// snapshotAtOrBefore finds the latest snapshot with At <= t.
func snapshotAtOrBefore(series []HostSnapshot, t float64) (HostSnapshot, error) {
	var found *HostSnapshot
	for i := range series {
		if series[i].At <= t+1e-9 {
			found = &series[i]
		} else {
			break
		}
	}
	if found == nil {
		return HostSnapshot{}, fmt.Errorf("metrics: no snapshot at or before t=%.3f", t)
	}
	return *found, nil
}

// Window computes per-host utilization over [start, end] — the paper's
// "active window" (100 s to 1250 s after launch for Table II).
func (s *UtilizationSampler) Window(start, end float64) ([]HostUtil, error) {
	if end <= start {
		return nil, fmt.Errorf("metrics: bad window [%.3f, %.3f]", start, end)
	}
	out := make([]HostUtil, 0, len(s.series))
	for h, series := range s.series {
		a, err := snapshotAtOrBefore(series, start)
		if err != nil {
			return nil, fmt.Errorf("host %d: %w", h, err)
		}
		b, err := snapshotAtOrBefore(series, end)
		if err != nil {
			return nil, fmt.Errorf("host %d: %w", h, err)
		}
		dt := b.At - a.At
		if dt <= 0 {
			return nil, fmt.Errorf("metrics: host %d window collapsed (%.3f)", h, dt)
		}
		host := s.fabric.Host(h)
		rate := host.Egress.RateBytes()
		out = append(out, HostUtil{
			Host:   h,
			CPU:    (b.CPUBusy - a.CPUBusy) / (dt * s.cpus[h].Threads()),
			NetOut: float64(b.NetOut-a.NetOut) / (dt * rate),
			NetIn:  float64(b.NetIn-a.NetIn) / (dt * rate),
		})
	}
	return out, nil
}

// AverageUtil averages utilization across the given host subset.
func AverageUtil(utils []HostUtil, hosts []int) HostUtil {
	if len(hosts) == 0 {
		return HostUtil{Host: -1}
	}
	want := make(map[int]bool, len(hosts))
	for _, h := range hosts {
		want[h] = true
	}
	var acc HostUtil
	n := 0
	for _, u := range utils {
		if !want[u.Host] {
			continue
		}
		acc.CPU += u.CPU
		acc.NetOut += u.NetOut
		acc.NetIn += u.NetIn
		n++
	}
	if n == 0 {
		return HostUtil{Host: -1}
	}
	acc.Host = -1
	acc.CPU /= float64(n)
	acc.NetOut /= float64(n)
	acc.NetIn /= float64(n)
	return acc
}
