package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cpusim"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Mean(xs), 5) {
		t.Fatalf("mean %v", Mean(xs))
	}
	if !almost(Variance(xs), 4) {
		t.Fatalf("variance %v", Variance(xs))
	}
	if !almost(Std(xs), 2) {
		t.Fatalf("std %v", Std(xs))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("empty-input conventions")
	}
}

func TestMedianPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if !almost(Median(xs), 3) {
		t.Fatal("median")
	}
	if !almost(Percentile(xs, 0), 1) || !almost(Percentile(xs, 1), 5) {
		t.Fatal("extremes")
	}
	if !almost(Percentile(xs, 0.25), 2) {
		t.Fatalf("p25 %v", Percentile(xs, 0.25))
	}
	// Interpolation between points.
	if !almost(Percentile([]float64{0, 10}, 0.5), 5) {
		t.Fatal("interpolation")
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	s := Summarize(xs)
	if s.Count != 5 || !almost(s.Min, 1) || !almost(s.Max, 5) || !almost(s.Median, 3) {
		t.Fatalf("%+v", s)
	}
	if s.String() == "" {
		t.Fatal("summary string")
	}
	var empty Summary
	if Summarize(nil) != empty {
		t.Fatal("empty summarize")
	}
}

func TestSummarizeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, r := range raw {
			if !math.IsNaN(r) && !math.IsInf(r, 0) {
				xs = append(xs, math.Mod(r, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Median+1e-9 && s.Median <= s.Max+1e-9 &&
			s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Variance >= 0 &&
			s.P25 <= s.P75+1e-9 && s.P90 <= s.P99+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.Len() != 4 {
		t.Fatal("len")
	}
	if !almost(c.At(2), 0.5) || !almost(c.At(0.5), 0) || !almost(c.At(10), 1) {
		t.Fatalf("At: %v %v %v", c.At(2), c.At(0.5), c.At(10))
	}
	if !almost(c.Quantile(0), 1) || !almost(c.Quantile(1), 4) {
		t.Fatal("quantiles")
	}
	pts := c.Points(5)
	if len(pts) != 5 || pts[0][1] != 0 || pts[4][1] != 1 {
		t.Fatalf("points %v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] < pts[i-1][1] {
			t.Fatal("CDF points not monotone")
		}
	}
	empty := NewCDF(nil)
	if empty.At(1) != 0 || empty.Quantile(0.5) != 0 || empty.Points(3) != nil {
		t.Fatal("empty CDF")
	}
}

func TestRatioAndNormalize(t *testing.T) {
	if !almost(Ratio(6, 3), 2) {
		t.Fatal("ratio")
	}
	if !math.IsInf(Ratio(1, 0), 1) {
		t.Fatal("ratio by zero")
	}
	out, err := NormalizeBy([]float64{2, 6}, []float64{4, 3})
	if err != nil || !almost(out[0], 0.5) || !almost(out[1], 2) {
		t.Fatalf("%v %v", out, err)
	}
	if _, err := NormalizeBy([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func newSampledCluster(t *testing.T) (*sim.Kernel, *simnet.Fabric, []*cpusim.CPU, *UtilizationSampler) {
	t.Helper()
	k := sim.NewKernel()
	fab := simnet.New(k, sim.NewRNG(1), simnet.Config{LinkRateBps: 8e9, WireOverhead: 1.0})
	cpus := make([]*cpusim.CPU, 2)
	for i := range cpus {
		fab.AddHost("h")
		cpus[i] = cpusim.NewCPU(k, 2)
	}
	s := NewUtilizationSampler(k, fab, cpus, 0.5)
	return k, fab, cpus, s
}

func TestUtilizationSamplerCPU(t *testing.T) {
	k, _, cpus, s := newSampledCluster(t)
	s.Start()
	// One task of 5 thread-seconds on a 2-thread CPU: 50% utilization.
	cpus[0].Submit(5, 1, nil)
	k.RunUntil(10)
	s.Stop()
	utils, err := s.Window(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(utils[0].CPU-0.25) > 0.03 {
		t.Fatalf("cpu util %v, want ~0.25 (5 thread-sec / 20 capacity)", utils[0].CPU)
	}
	if utils[1].CPU != 0 {
		t.Fatal("idle host shows CPU usage")
	}
}

func TestUtilizationSamplerNet(t *testing.T) {
	k, fab, _, s := newSampledCluster(t)
	s.Start()
	// 1 GB/s link; send 2 GB over ~2 seconds within a 4-second window.
	fab.Send(simnet.FlowSpec{Src: 0, Dst: 1, Bytes: 2 << 30})
	k.RunUntil(4)
	s.Stop()
	utils, err := s.Window(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(utils[0].NetOut-0.5) > 0.1 {
		t.Fatalf("egress util %v, want ~0.5", utils[0].NetOut)
	}
	if math.Abs(utils[1].NetIn-0.5) > 0.1 {
		t.Fatalf("ingress util %v, want ~0.5", utils[1].NetIn)
	}
	if utils[0].NetIn != 0 {
		t.Fatal("sender shows inbound traffic")
	}
}

func TestSamplerWindowErrors(t *testing.T) {
	k, _, _, s := newSampledCluster(t)
	s.Start()
	k.RunUntil(2)
	if _, err := s.Window(3, 1); err == nil {
		t.Fatal("inverted window accepted")
	}
	if _, err := s.Window(-5, -1); err == nil {
		t.Fatal("window before first snapshot accepted")
	}
	if len(s.Series(0)) == 0 {
		t.Fatal("series empty")
	}
}

func TestAverageUtil(t *testing.T) {
	utils := []HostUtil{
		{Host: 0, CPU: 0.2, NetIn: 0.4, NetOut: 0.6},
		{Host: 1, CPU: 0.4, NetIn: 0.2, NetOut: 0.2},
		{Host: 2, CPU: 1.0, NetIn: 1.0, NetOut: 1.0},
	}
	avg := AverageUtil(utils, []int{0, 1})
	if !almost(avg.CPU, 0.3) || !almost(avg.NetIn, 0.3) || !almost(avg.NetOut, 0.4) {
		t.Fatalf("%+v", avg)
	}
	if AverageUtil(utils, nil).Host != -1 {
		t.Fatal("empty host set")
	}
	if AverageUtil(utils, []int{9}).CPU != 0 {
		t.Fatal("unknown host set")
	}
}

func TestJainIndex(t *testing.T) {
	if !almost(JainIndex([]float64{5, 5, 5, 5}), 1) {
		t.Fatal("equal shares must give 1")
	}
	// One job hogging everything among n: index -> 1/n.
	if !almost(JainIndex([]float64{1, 0, 0, 0}), 0.25) {
		t.Fatalf("max imbalance %v", JainIndex([]float64{1, 0, 0, 0}))
	}
	if JainIndex(nil) != 0 {
		t.Fatal("empty input")
	}
	if JainIndex([]float64{0, 0}) != 1 {
		t.Fatal("all-zero input treated as equal")
	}
	mixed := JainIndex([]float64{4, 2, 2})
	if mixed <= 0.25 || mixed >= 1 {
		t.Fatalf("mixed index %v out of (1/n,1)", mixed)
	}
}
