// Package metrics provides the statistics and measurement machinery the
// paper's evaluation uses: summary statistics and CDFs over barrier wait
// times and job completion times, plus windowed CPU and NIC utilization
// sampling (the vmstat/ifstat analog).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	Count    int
	Mean     float64
	Variance float64 // population variance
	Std      float64
	Min      float64
	P25      float64
	Median   float64
	P75      float64
	P90      float64
	P95      float64
	P99      float64
	Max      float64
}

// Summarize computes descriptive statistics. An empty input returns a
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs)}
	s.Mean = Mean(xs)
	s.Variance = Variance(xs)
	s.Std = math.Sqrt(s.Variance)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.P25 = percentileSorted(sorted, 0.25)
	s.Median = percentileSorted(sorted, 0.50)
	s.P75 = percentileSorted(sorted, 0.75)
	s.P90 = percentileSorted(sorted, 0.90)
	s.P95 = percentileSorted(sorted, 0.95)
	s.P99 = percentileSorted(sorted, 0.99)
	return s
}

// String renders the headline numbers.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g median=%.4g std=%.4g min=%.4g max=%.4g",
		s.Count, s.Mean, s.Median, s.Std, s.Min, s.Max)
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the largest value (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Variance returns the population variance (0 for n < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 0.5) }

// Percentile returns the p-quantile (p in [0,1]) with linear
// interpolation; 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF is an empirical cumulative distribution.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples.
func NewCDF(xs []float64) *CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the p-quantile (inverse CDF).
func (c *CDF) Quantile(p float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return percentileSorted(c.sorted, p)
}

// Points returns n evenly spaced (x, P(X<=x)) pairs for plotting.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n < 2 {
		return nil
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		p := float64(i) / float64(n-1)
		out = append(out, [2]float64{percentileSorted(c.sorted, p), p})
	}
	return out
}

// Ratio returns a/b, guarding against division by ~zero.
func Ratio(a, b float64) float64 {
	if math.Abs(b) < 1e-12 {
		return math.Inf(1)
	}
	return a / b
}

// JainIndex computes Jain's fairness index of xs: 1.0 when all values
// are equal, approaching 1/n under maximal imbalance. The fairness
// examples use it to quantify TLs-RR's equal-progress property.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// NormalizeBy divides each element of xs by the matching element of base
// (element-wise normalized metrics, as in the paper's Figure 5).
func NormalizeBy(xs, base []float64) ([]float64, error) {
	if len(xs) != len(base) {
		return nil, fmt.Errorf("metrics: normalize length mismatch %d vs %d", len(xs), len(base))
	}
	out := make([]float64, len(xs))
	for i := range xs {
		out[i] = Ratio(xs[i], base[i])
	}
	return out, nil
}
