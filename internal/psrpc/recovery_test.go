package psrpc

import (
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count drops back to at most
// base, failing the test if it does not settle.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
		runtime.NumGoroutine(), base, buf[:n])
}

func TestDialRetriesUntilServerUp(t *testing.T) {
	// Reserve an address, free it, and bring the listener up only after
	// the worker's first dial attempts have failed.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	accepted := make(chan struct{})
	go func() {
		time.Sleep(120 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return
		}
		defer ln2.Close()
		conn, err := ln2.Accept()
		if err == nil {
			conn.Close()
			close(accepted)
		}
	}()
	conn, err := Dial(addr, DialConfig{Timeout: time.Second, Retries: 8, Backoff: 40 * time.Millisecond})
	if err != nil {
		t.Fatalf("dial did not survive a late-starting PS: %v", err)
	}
	conn.Close()
	select {
	case <-accepted:
	case <-time.After(2 * time.Second):
		t.Fatal("listener never accepted")
	}
}

func TestDialFailsAfterRetryBudget(t *testing.T) {
	// Reserve-then-close: nothing listens here during the attempts.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	start := time.Now()
	if _, err := Dial(addr, DialConfig{Timeout: 200 * time.Millisecond, Retries: 2, Backoff: 10 * time.Millisecond}); err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	// 3 attempts with 10ms+20ms backoff: well under a second.
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("dial retry budget not honored: took %v", elapsed)
	}
}

// serveWith runs a server plus custom worker goroutines and returns the
// serve result.
func serveWith(t *testing.T, cfg ServerConfig, workers []func(addr string)) (*ServerResult, error) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	var wg sync.WaitGroup
	for _, w := range workers {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w(addr)
		}()
	}
	res, serveErr := srv.Serve(ln)
	wg.Wait()
	return res, serveErr
}

func TestWorkerDeathDegradesBarrier(t *testing.T) {
	const iters = 6
	shard, _ := MakeLinRegData(3, 32, 4, 0.01)
	normal := func(id int) func(string) {
		return func(addr string) {
			_, _ = RunWorker(addr, id, shard.Compute(8))
		}
	}
	// Worker 2 participates for two iterations, then its process dies.
	flaky := func(addr string) {
		conn, err := Dial(addr, DialConfig{})
		if err != nil {
			return
		}
		defer conn.Close()
		_ = WriteMessage(conn, &Message{Type: MsgHello, Worker: 2})
		compute := shard.Compute(8)
		for i := 0; i < 2; i++ {
			m, err := ReadMessage(conn)
			if err != nil || m.Type != MsgModel {
				return
			}
			grad, loss := compute(m.Vec, i)
			_ = WriteMessage(conn, &Message{
				Type: MsgGradient, Worker: 2, Step: m.Step, Aux: loss, Vec: grad,
			})
		}
	}
	res, err := serveWith(t, ServerConfig{
		Workers: 3, InitialModel: make([]float32, 4), LearningRate: 0.05,
		Iterations: iters, TolerateFailures: true,
	}, []func(string){normal(0), normal(1), flaky})
	if err != nil {
		t.Fatalf("server did not tolerate the worker death: %v", err)
	}
	if len(res.Losses) != iters {
		t.Fatalf("completed %d iterations, want %d", len(res.Losses), iters)
	}
	if len(res.LostWorkers) != 1 || res.LostWorkers[0] != 2 {
		t.Fatalf("lost workers %v, want [2]", res.LostWorkers)
	}
	// Worker 2 contributed 2 gradients; the survivors all 6.
	if res.GlobalStep >= 3*iters || res.GlobalStep < 2*iters {
		t.Fatalf("global step %d outside degraded range [%d,%d)", res.GlobalStep, 2*iters, 3*iters)
	}
}

func TestStalledWorkerHitsRPCDeadline(t *testing.T) {
	const iters = 4
	shard, _ := MakeLinRegData(4, 32, 4, 0.01)
	normal := func(id int) func(string) {
		return func(addr string) {
			_, _ = RunWorker(addr, id, shard.Compute(8))
		}
	}
	// Worker 2 registers, then never sends a single gradient. Without
	// the per-RPC deadline the barrier would wedge forever. It unblocks
	// only when the server gives up on it and closes the connection.
	stalled := func(addr string) {
		conn, err := Dial(addr, DialConfig{})
		if err != nil {
			return
		}
		defer conn.Close()
		_ = WriteMessage(conn, &Message{Type: MsgHello, Worker: 2})
		buf := make([]byte, 256)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}
	res, err := serveWith(t, ServerConfig{
		Workers: 3, InitialModel: make([]float32, 4), LearningRate: 0.05,
		Iterations: iters, TolerateFailures: true, RPCTimeout: 150 * time.Millisecond,
	}, []func(string){normal(0), normal(1), stalled})
	if err != nil {
		t.Fatalf("server did not survive the stalled worker: %v", err)
	}
	if len(res.LostWorkers) != 1 || res.LostWorkers[0] != 2 {
		t.Fatalf("lost workers %v, want [2]", res.LostWorkers)
	}
	if len(res.Losses) != iters {
		t.Fatalf("completed %d iterations, want %d", len(res.Losses), iters)
	}
}

func TestWorkerDeathWithoutToleranceAborts(t *testing.T) {
	dieNow := func(addr string) {
		conn, err := Dial(addr, DialConfig{})
		if err != nil {
			return
		}
		_ = WriteMessage(conn, &Message{Type: MsgHello, Worker: 0})
		conn.Close()
	}
	_, err := serveWith(t, ServerConfig{
		Workers: 1, InitialModel: make([]float32, 4), LearningRate: 0.05,
		Iterations: 50,
	}, []func(string){dieNow})
	if err == nil {
		t.Fatal("strict server accepted a dead worker")
	}
}

func TestShutdownMidTrainingDrains(t *testing.T) {
	base := runtime.NumGoroutine()
	const iters = 10_000 // far more than can run before shutdown
	shard, _ := MakeLinRegData(5, 32, 4, 0.01)
	inner := shard.Compute(8)
	slow := func(model []float32, step int) ([]float32, float32) {
		time.Sleep(time.Millisecond)
		return inner(model, step)
	}
	srv, err := NewServer(ServerConfig{
		Workers: 2, InitialModel: make([]float32, 4), LearningRate: 0.05,
		Iterations: iters,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, workerErrs[w] = RunWorker(addr, w, slow)
		}()
	}
	go func() {
		time.Sleep(100 * time.Millisecond)
		srv.Shutdown()
	}()
	res, err := srv.Serve(ln)
	wg.Wait()
	if err != nil {
		t.Fatalf("graceful shutdown surfaced an error: %v", err)
	}
	if res.GlobalStep == 0 {
		t.Fatal("shutdown before any progress")
	}
	if res.GlobalStep >= 2*iters {
		t.Fatal("shutdown did not stop training early")
	}
	for w, werr := range workerErrs {
		if werr != nil {
			t.Fatalf("worker %d did not exit cleanly: %v", w, werr)
		}
	}
	srv.Shutdown() // idempotent
	waitGoroutines(t, base)
}

func TestShutdownWhileAccepting(t *testing.T) {
	base := runtime.NumGoroutine()
	srv, err := NewServer(ServerConfig{
		Workers: 2, InitialModel: make([]float32, 4), LearningRate: 0.05,
		Iterations: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := srv.Serve(ln)
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	srv.Shutdown()
	select {
	case err := <-errCh:
		if err != ErrShutdown {
			t.Fatalf("serve returned %v, want ErrShutdown", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("serve did not unblock on shutdown")
	}
	waitGoroutines(t, base)
}

func TestTrainLocalLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	shard, _ := MakeLinRegData(6, 32, 4, 0.01)
	if _, err := TrainLocal(ServerConfig{
		Workers: 3, InitialModel: make([]float32, 4), LearningRate: 0.05,
		Iterations: 20,
	}, []ComputeFunc{shard.Compute(8), shard.Compute(8), shard.Compute(8)}); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base)
}
