package psrpc

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestSharedLinkStrictPriority(t *testing.T) {
	// Submit low-priority writes first, then high: with a slow link the
	// high-priority writes must overtake the queued low ones.
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()

	// Drain the reader side, recording arrival order by first byte.
	var mu sync.Mutex
	var order []byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 8<<10)
		for {
			if _, err := io.ReadFull(client, buf); err != nil {
				return
			}
			mu.Lock()
			order = append(order, buf[0])
			mu.Unlock()
		}
	}()

	link := NewSharedLink(1 << 20) // 1 MB/s: each 8 KB write takes ~8 ms
	defer link.Close()
	lo := link.Writer(server, 5)
	hi := link.Writer(server, 0)

	payload := func(tag byte) []byte {
		b := make([]byte, 8<<10)
		b[0] = tag
		return b
	}
	var wg sync.WaitGroup
	// Occupy the link with one low write, then queue more low writes
	// and a high write behind it.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); lo.Write(payload('L')) }()
	}
	time.Sleep(2 * time.Millisecond) // let the low writes enqueue
	wg.Add(1)
	go func() { defer wg.Done(); hi.Write(payload('H')) }()
	wg.Wait()
	server.Close()
	<-done

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 4 {
		t.Fatalf("writes received %d", len(order))
	}
	// The high write may be behind the in-flight low write but must
	// precede at least one queued low write.
	hiPos := -1
	for i, tag := range order {
		if tag == 'H' {
			hiPos = i
		}
	}
	if hiPos < 0 || hiPos > 1 {
		t.Fatalf("high-priority write served at position %d of %v", hiPos, order)
	}
}

func TestSharedLinkWorkConserving(t *testing.T) {
	server, client := net.Pipe()
	defer client.Close()
	go io.Copy(io.Discard, client)
	link := NewSharedLink(8 << 20)
	defer link.Close()
	w := link.Writer(server, 3)
	total := 0
	for i := 0; i < 16; i++ {
		n, err := w.Write(make([]byte, 4<<10))
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if link.Sent() != int64(total) {
		t.Fatalf("sent %d, want %d", link.Sent(), total)
	}
	server.Close()
}

func TestSharedLinkPacing(t *testing.T) {
	server, client := net.Pipe()
	defer client.Close()
	go io.Copy(io.Discard, client)
	rate := 4 << 20 // 4 MB/s
	link := NewSharedLink(float64(rate))
	defer link.Close()
	w := link.Writer(server, 0)
	bytes := 1 << 20 // 1 MB in 16 writes
	start := time.Now()
	for i := 0; i < 16; i++ {
		if _, err := w.Write(make([]byte, bytes/16)); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	want := time.Duration(float64(bytes) / float64(rate) * float64(time.Second))
	if elapsed < want/2 {
		t.Fatalf("link not pacing: %v for %d bytes (want >= %v)", elapsed, bytes, want/2)
	}
	server.Close()
}

func TestSharedLinkSetPriority(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()
	go io.Copy(io.Discard, client)
	link := NewSharedLink(1 << 30)
	defer link.Close()
	w := link.Writer(server, 2)
	if w.Priority() != 2 {
		t.Fatal("priority accessor")
	}
	w.SetPriority(0)
	if w.Priority() != 0 {
		t.Fatal("SetPriority")
	}
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestSharedLinkClosedRejectsWrites(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()
	link := NewSharedLink(1 << 20)
	link.Close()
	time.Sleep(time.Millisecond)
	w := link.Writer(server, 0)
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("write on closed link accepted")
	}
}

func TestTwoJobsThroughSharedLink(t *testing.T) {
	// Two real training jobs contend for one userspace link. The
	// high-priority job's model updates jump the queue, so it finishes
	// its iterations first — TensorLights end to end on sockets.
	const dim = 16384              // 64 KB updates
	link := NewSharedLink(8 << 20) // keep the link saturated
	defer link.Close()

	runJob := func(prio int) (*ServerResult, error) {
		_, trueW := MakeLinRegData(int64(prio)+50, 1, dim, 0)
		shard := MakeLinRegShard(trueW, int64(prio)+60, 8, 0.01)
		computes := []ComputeFunc{shard.Compute(8), shard.Compute(8)}
		return TrainLocalShaped(ServerConfig{
			Workers:      2,
			InitialModel: make([]float32, dim),
			LearningRate: 0.01,
			Iterations:   30,
		}, computes, func(conn net.Conn) io.Writer {
			return link.Writer(conn, prio)
		})
	}

	type out struct {
		prio int
		at   time.Time
		err  error
	}
	results := make(chan out, 2)
	for _, prio := range []int{0, 5} {
		prio := prio
		go func() {
			_, err := runJob(prio)
			results <- out{prio: prio, at: time.Now(), err: err}
		}()
	}
	finishes := map[int]time.Time{}
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("job prio %d: %v", r.prio, r.err)
		}
		finishes[r.prio] = r.at
	}
	margin := finishes[5].Sub(finishes[0])
	if margin < 50*time.Millisecond {
		t.Fatalf("high-priority job only %v ahead of low-priority", margin)
	}
}
