package psrpc

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// SharedLink is a userspace analog of a host NIC egress: writes from
// several parameter servers in one process are serialized at a
// configured rate, and pending writes are served in strict priority
// order — the TensorLights mechanism realized over real sockets. It is
// work-conserving: the link never idles while any queue holds data.
type SharedLink struct {
	rate float64 // bytes/sec

	mu     sync.Mutex
	cond   *sync.Cond
	queues map[int][]*writeReq // priority -> FIFO
	closed bool
	sent   int64
}

type writeReq struct {
	conn net.Conn
	data []byte
	done chan error
}

// NewSharedLink starts the link's pump goroutine. Call Close when done.
func NewSharedLink(rateBytesPerSec float64) *SharedLink {
	if rateBytesPerSec <= 0 {
		panic("psrpc: shared link rate must be positive")
	}
	l := &SharedLink{
		rate:   rateBytesPerSec,
		queues: map[int][]*writeReq{},
	}
	l.cond = sync.NewCond(&l.mu)
	go l.pump()
	return l
}

// Sent returns cumulative bytes pushed through the link.
func (l *SharedLink) Sent() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sent
}

// Close stops the pump; queued writes fail.
func (l *SharedLink) Close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.cond.Broadcast()
}

// pump serves the highest-priority (lowest value) non-empty queue,
// pacing to the configured rate.
func (l *SharedLink) pump() {
	for {
		l.mu.Lock()
		var req *writeReq
		for !l.closed {
			best := -1
			for prio, q := range l.queues {
				if len(q) == 0 {
					continue
				}
				if best == -1 || prio < best {
					best = prio
				}
			}
			if best >= 0 {
				q := l.queues[best]
				req = q[0]
				l.queues[best] = q[1:]
				break
			}
			l.cond.Wait()
		}
		if req == nil { // closed
			for _, q := range l.queues {
				for _, r := range q {
					r.done <- fmt.Errorf("psrpc: shared link closed")
				}
			}
			l.mu.Unlock()
			return
		}
		l.sent += int64(len(req.data))
		l.mu.Unlock()

		start := time.Now()
		_, err := req.conn.Write(req.data)
		// Pace to the link rate (minus the time the write itself took).
		target := time.Duration(float64(len(req.data)) / l.rate * float64(time.Second))
		if rest := target - time.Since(start); rest > 0 {
			time.Sleep(rest)
		}
		req.done <- err
	}
}

// linkQuantum is the preemption granularity: one write is split into
// quanta so a higher-priority job waits at most one quantum, the way a
// kernel qdisc preempts between packets rather than between
// application-level writes.
const linkQuantum = 16 << 10

// enqueue submits one write, split into priority-preemptible quanta,
// and blocks until every quantum is transmitted.
func (l *SharedLink) enqueue(conn net.Conn, prio int, data []byte) error {
	// Copy: the caller may reuse its buffer after Write returns.
	buf := make([]byte, len(data))
	copy(buf, data)
	n := (len(buf) + linkQuantum - 1) / linkQuantum
	if n == 0 {
		n = 1
	}
	done := make(chan error, n)
	reqs := make([]*writeReq, 0, n)
	for off := 0; off < len(buf) || off == 0; off += linkQuantum {
		end := off + linkQuantum
		if end > len(buf) {
			end = len(buf)
		}
		reqs = append(reqs, &writeReq{conn: conn, data: buf[off:end], done: done})
		if end == len(buf) {
			break
		}
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("psrpc: shared link closed")
	}
	// All quanta of one write enter the same priority queue together,
	// preserving within-write order.
	l.queues[prio] = append(l.queues[prio], reqs...)
	l.mu.Unlock()
	l.cond.Signal()
	var firstErr error
	for range reqs {
		if err := <-done; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// LinkWriter adapts one connection's writes onto the shared link with a
// mutable priority band — the per-job filter of the tc analogy.
type LinkWriter struct {
	link *SharedLink
	conn net.Conn
	mu   sync.Mutex
	prio int
}

// Writer wraps conn so all writes pass through the link at prio.
func (l *SharedLink) Writer(conn net.Conn, prio int) *LinkWriter {
	return &LinkWriter{link: l, conn: conn, prio: prio}
}

// SetPriority re-bands the writer (TLs-RR's rotation, in userspace).
func (w *LinkWriter) SetPriority(prio int) {
	w.mu.Lock()
	w.prio = prio
	w.mu.Unlock()
}

// Priority returns the current band.
func (w *LinkWriter) Priority() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.prio
}

// Write submits the bytes through the shared link, blocking until they
// are on the wire.
func (w *LinkWriter) Write(p []byte) (int, error) {
	if err := w.link.enqueue(w.conn, w.Priority(), p); err != nil {
		return 0, err
	}
	return len(p), nil
}

var _ io.Writer = (*LinkWriter)(nil)
