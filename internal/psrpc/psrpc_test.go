package psrpc

import (
	"bytes"
	"math"
	"net"
	"testing"
	"testing/quick"
	"time"
)

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{Type: MsgGradient, Worker: 7, Step: 42, Aux: 1.5,
		Vec: []float32{1, -2.5, 3e-7, 0}}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.Worker != m.Worker || got.Step != m.Step || got.Aux != m.Aux {
		t.Fatalf("header %+v", got)
	}
	for i := range m.Vec {
		if got.Vec[i] != m.Vec[i] {
			t.Fatalf("vec %v", got.Vec)
		}
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(typ uint8, worker, step uint32, aux float32, vec []float32) bool {
		for i, v := range vec {
			if math.IsNaN(float64(v)) {
				vec[i] = 0
			}
		}
		m := &Message{Type: MsgType(typ), Worker: worker, Step: step, Aux: aux, Vec: vec}
		if math.IsNaN(float64(aux)) {
			m.Aux = 0
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			return false
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			return false
		}
		if got.Type != m.Type || got.Worker != m.Worker || got.Step != m.Step || got.Aux != m.Aux {
			return false
		}
		if len(got.Vec) != len(m.Vec) {
			return false
		}
		for i := range m.Vec {
			if got.Vec[i] != m.Vec[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadMessageTruncated(t *testing.T) {
	m := &Message{Type: MsgModel, Vec: []float32{1, 2, 3}}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadMessage(bytes.NewReader(raw[:len(raw)-2])); err == nil {
		t.Fatal("truncated frame accepted")
	}
	if _, err := ReadMessage(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadMessageHugeLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteMessage(&buf, &Message{Type: MsgModel})
	raw := buf.Bytes()
	// Corrupt the length field to a huge value.
	raw[13], raw[14], raw[15], raw[16] = 0xff, 0xff, 0xff, 0x7f
	if _, err := ReadMessage(bytes.NewReader(raw)); err == nil {
		t.Fatal("oversized length accepted")
	}
}

func TestServerConfigValidate(t *testing.T) {
	good := ServerConfig{Workers: 2, InitialModel: []float32{0}, LearningRate: 0.1, Iterations: 3}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, bad := range []ServerConfig{
		{Workers: 0, InitialModel: []float32{0}, LearningRate: 0.1, Iterations: 1},
		{Workers: 1, InitialModel: nil, LearningRate: 0.1, Iterations: 1},
		{Workers: 1, InitialModel: []float32{0}, LearningRate: 0.1, Iterations: 0},
		{Workers: 1, InitialModel: []float32{0}, LearningRate: 0, Iterations: 1},
	} {
		if bad.Validate() == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestDistributedTrainingConverges(t *testing.T) {
	// 4 workers, disjoint shards of the same ground truth: synchronous
	// distributed SGD must drive MSE near the noise floor.
	const dim = 8
	workers := 4
	_, trueW := MakeLinRegData(99, 1, dim, 0)
	var computes []ComputeFunc
	var full LinRegData
	for w := 0; w < workers; w++ {
		shard := MakeLinRegShard(trueW, 100+int64(w), 64, 0.01)
		computes = append(computes, shard.Compute(16))
		full.X = append(full.X, shard.X...)
		full.Y = append(full.Y, shard.Y...)
	}
	res, err := TrainLocal(ServerConfig{
		Workers:      workers,
		InitialModel: make([]float32, dim),
		LearningRate: 0.05,
		Iterations:   200,
	}, computes)
	if err != nil {
		t.Fatal(err)
	}
	if res.GlobalStep != workers*200 {
		t.Fatalf("global step %d, want %d", res.GlobalStep, workers*200)
	}
	mse := MSE(res.FinalModel, &full)
	if mse > 0.05 {
		t.Fatalf("distributed training did not converge: MSE %.4f", mse)
	}
	// Loss curve must be decreasing overall.
	if res.Losses[len(res.Losses)-1] > res.Losses[0]/2 {
		t.Fatalf("loss not decreasing: first %.4f last %.4f",
			res.Losses[0], res.Losses[len(res.Losses)-1])
	}
}

func TestBarrierWaitsRecorded(t *testing.T) {
	workers := 3
	var computes []ComputeFunc
	for w := 0; w < workers; w++ {
		shard, _ := MakeLinRegData(int64(w), 16, 4, 0.01)
		inner := shard.Compute(4)
		w := w
		computes = append(computes, func(model []float32, step int) ([]float32, float32) {
			// Worker 0 is an artificial straggler.
			if w == 0 {
				time.Sleep(2 * time.Millisecond)
			}
			return inner(model, step)
		})
	}
	res, err := TrainLocal(ServerConfig{
		Workers:      workers,
		InitialModel: make([]float32, 4),
		LearningRate: 0.01,
		Iterations:   10,
	}, computes)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Waits) != workers*10 {
		t.Fatalf("wait records %d, want %d", len(res.Waits), workers*10)
	}
	// The straggler (worker 0) waits less than its peers on average —
	// the paper's signature of straggling.
	var wait0, waitOthers time.Duration
	var n0, nOthers int
	for _, rec := range res.Waits {
		if rec.Worker == 0 {
			wait0 += rec.Wait
			n0++
		} else {
			waitOthers += rec.Wait
			nOthers++
		}
	}
	if wait0/time.Duration(n0) >= waitOthers/time.Duration(nOthers) {
		t.Fatalf("straggler waited more than peers: %v vs %v",
			wait0/time.Duration(n0), waitOthers/time.Duration(nOthers))
	}
}

func TestConcurrentJobs(t *testing.T) {
	// Two jobs training simultaneously in one process — the smallest
	// version of the paper's grid search.
	results := make([]*ServerResult, 2)
	errs := make([]error, 2)
	done := make(chan int, 2)
	for jb := 0; jb < 2; jb++ {
		jb := jb
		go func() {
			shard, _ := MakeLinRegData(int64(jb)*7+1, 32, 4, 0.01)
			results[jb], errs[jb] = TrainLocal(ServerConfig{
				Workers:      2,
				InitialModel: make([]float32, 4),
				LearningRate: 0.05,
				Iterations:   50,
			}, []ComputeFunc{shard.Compute(8), shard.Compute(8)})
			done <- jb
		}()
	}
	for i := 0; i < 2; i++ {
		<-done
	}
	for jb := 0; jb < 2; jb++ {
		if errs[jb] != nil {
			t.Fatalf("job %d: %v", jb, errs[jb])
		}
		if results[jb].GlobalStep != 100 {
			t.Fatalf("job %d global step %d", jb, results[jb].GlobalStep)
		}
	}
}

func TestTrainLocalComputeCountMismatch(t *testing.T) {
	_, err := TrainLocal(ServerConfig{
		Workers: 2, InitialModel: []float32{0}, LearningRate: 0.1, Iterations: 1,
	}, nil)
	if err == nil {
		t.Fatal("mismatched compute funcs accepted")
	}
}

func TestServerRejectsDuplicateWorker(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Workers: 2, InitialModel: []float32{0}, LearningRate: 0.1, Iterations: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go func() {
		for i := 0; i < 2; i++ {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return
			}
			// Both connections claim worker id 0.
			_ = WriteMessage(conn, &Message{Type: MsgHello, Worker: 0})
		}
	}()
	if _, err := srv.Serve(ln); err == nil {
		t.Fatal("duplicate worker id accepted")
	}
}

func TestMakeLinRegDataShape(t *testing.T) {
	d, trueW := MakeLinRegData(1, 10, 3, 0)
	if len(d.X) != 10 || len(d.Y) != 10 || len(trueW) != 3 {
		t.Fatal("shapes")
	}
	// Zero noise: MSE of the true weights is ~0.
	if mse := MSE(trueW, d); mse > 1e-9 {
		t.Fatalf("true weights MSE %v", mse)
	}
}

func TestComputeGradientDescends(t *testing.T) {
	d, _ := MakeLinRegData(2, 32, 4, 0)
	compute := d.Compute(32)
	model := make([]float32, 4)
	before := MSE(model, d)
	for step := 0; step < 50; step++ {
		grad, _ := compute(model, step)
		for j := range model {
			model[j] -= 0.05 * grad[j]
		}
	}
	after := MSE(model, d)
	if after >= before/10 {
		t.Fatalf("gradient descent stalled: %.4f -> %.4f", before, after)
	}
}
