package psrpc

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"
)

// ComputeFunc produces a gradient (and reported loss) for the given
// model at one local step — the worker's "process one local batch".
type ComputeFunc func(model []float32, step int) (grad []float32, loss float32)

// DialConfig tunes Dial's retry behavior. The zero value uses the
// defaults noted per field.
type DialConfig struct {
	// Timeout bounds each connection attempt. Default 2s.
	Timeout time.Duration
	// Retries is how many times to retry after the first failed
	// attempt. Default 4.
	Retries int
	// Backoff is the wait before the first retry; it doubles on each
	// subsequent retry. Default 50ms.
	Backoff time.Duration
}

func (c *DialConfig) fillDefaults() {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Retries <= 0 {
		c.Retries = 4
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
}

// Dial connects to the PS with per-attempt timeouts and exponential
// backoff between attempts. A worker task restarted by its job's
// recovery path races the PS coming (back) up, so a refused connection
// is usually transient.
func Dial(addr string, cfg DialConfig) (net.Conn, error) {
	cfg.fillDefaults()
	backoff := cfg.Backoff
	var lastErr error
	for attempt := 0; attempt <= cfg.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		conn, err := net.DialTimeout("tcp", addr, cfg.Timeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("psrpc: dial %s: %d attempts failed: %w",
		addr, cfg.Retries+1, lastErr)
}

// RunWorker connects to the PS at addr (retrying with backoff while the
// PS comes up), registers as worker id, and participates in synchronous
// training until the PS sends Done. It returns the per-iteration losses
// this worker reported.
func RunWorker(addr string, id int, compute ComputeFunc) ([]float32, error) {
	conn, err := Dial(addr, DialConfig{})
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return RunWorkerConn(conn, id, compute)
}

// RunWorkerConn runs the worker protocol over an existing connection
// (used by tests with in-memory pipes).
func RunWorkerConn(conn net.Conn, id int, compute ComputeFunc) ([]float32, error) {
	if err := WriteMessage(conn, &Message{Type: MsgHello, Worker: uint32(id)}); err != nil {
		return nil, err
	}
	var losses []float32
	for step := 0; ; step++ {
		m, err := ReadMessage(conn)
		if err != nil {
			if err == io.EOF {
				return losses, nil
			}
			return losses, err
		}
		switch m.Type {
		case MsgDone:
			return losses, nil
		case MsgModel:
			grad, loss := compute(m.Vec, step)
			if len(grad) != len(m.Vec) {
				return losses, fmt.Errorf("psrpc: compute returned %d params, want %d",
					len(grad), len(m.Vec))
			}
			losses = append(losses, loss)
			if err := WriteMessage(conn, &Message{
				Type: MsgGradient, Worker: uint32(id), Step: m.Step, Aux: loss, Vec: grad,
			}); err != nil {
				return losses, err
			}
		default:
			return losses, fmt.Errorf("psrpc: unexpected %s from PS", m.Type)
		}
	}
}

// LinRegData is a synthetic linear-regression shard: targets are
// generated from TrueW plus noise, so distributed SGD on MSE must
// recover TrueW — giving the tests a real convergence criterion.
type LinRegData struct {
	X [][]float32
	Y []float32
}

// MakeLinRegData samples n points of dimension d from a ground-truth
// weight vector derived from the seed.
func MakeLinRegData(seed int64, n, d int, noise float64) (*LinRegData, []float32) {
	rng := rand.New(rand.NewSource(seed))
	trueW := make([]float32, d)
	for i := range trueW {
		trueW[i] = float32(rng.NormFloat64())
	}
	data := &LinRegData{X: make([][]float32, n), Y: make([]float32, n)}
	for i := 0; i < n; i++ {
		x := make([]float32, d)
		var y float64
		for j := range x {
			x[j] = float32(rng.NormFloat64())
			y += float64(x[j]) * float64(trueW[j])
		}
		data.X[i] = x
		data.Y[i] = float32(y + noise*rng.NormFloat64())
	}
	return data, trueW
}

// MakeLinRegShard samples n points from an existing ground-truth
// weight vector — use it to give each worker a disjoint shard of one
// consistent dataset, as a data-parallel job would.
func MakeLinRegShard(trueW []float32, seed int64, n int, noise float64) *LinRegData {
	rng := rand.New(rand.NewSource(seed))
	data := &LinRegData{X: make([][]float32, n), Y: make([]float32, n)}
	for i := 0; i < n; i++ {
		x := make([]float32, len(trueW))
		var y float64
		for j := range x {
			x[j] = float32(rng.NormFloat64())
			y += float64(x[j]) * float64(trueW[j])
		}
		data.X[i] = x
		data.Y[i] = float32(y + noise*rng.NormFloat64())
	}
	return data
}

// Compute returns a ComputeFunc performing minibatch MSE gradient
// descent over the shard, cycling batches by step.
func (d *LinRegData) Compute(batch int) ComputeFunc {
	if batch < 1 || batch > len(d.X) {
		batch = len(d.X)
	}
	return func(model []float32, step int) ([]float32, float32) {
		grad := make([]float32, len(model))
		start := (step * batch) % len(d.X)
		var loss float64
		for b := 0; b < batch; b++ {
			i := (start + b) % len(d.X)
			var pred float64
			for j, w := range model {
				pred += float64(w) * float64(d.X[i][j])
			}
			err := pred - float64(d.Y[i])
			loss += err * err
			for j := range grad {
				grad[j] += float32(2 * err * float64(d.X[i][j]) / float64(batch))
			}
		}
		return grad, float32(loss / float64(batch))
	}
}
