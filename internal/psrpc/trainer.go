package psrpc

import (
	"fmt"
	"io"
	"net"
	"sync"
)

// TrainLocal runs one complete synchronous training job in-process: a
// PS listening on a loopback TCP port and one goroutine per worker with
// its own data shard and compute function. It is the executable analog
// of one grid-search instance in the paper's workload.
func TrainLocal(cfg ServerConfig, computes []ComputeFunc) (*ServerResult, error) {
	if len(computes) != cfg.Workers {
		return nil, fmt.Errorf("psrpc: %d compute funcs for %d workers",
			len(computes), cfg.Workers)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("psrpc: listen: %w", err)
	}
	addr := ln.Addr().String()

	var wg sync.WaitGroup
	workerErrs := make([]error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, workerErrs[w] = RunWorker(addr, w, computes[w])
		}()
	}
	res, serveErr := srv.Serve(ln)
	wg.Wait()
	if serveErr != nil {
		return nil, serveErr
	}
	for w, err := range workerErrs {
		if err != nil {
			return nil, fmt.Errorf("psrpc: worker %d: %w", w, err)
		}
	}
	return res, nil
}

// TrainLocalShaped is TrainLocal with the PS's outbound writes routed
// through a caller-provided wrapper (e.g. a SharedLink priority band),
// so several concurrent jobs can contend for one userspace "NIC".
func TrainLocalShaped(cfg ServerConfig, computes []ComputeFunc, wrap func(net.Conn) io.Writer) (*ServerResult, error) {
	cfg.WrapConn = wrap
	return TrainLocal(cfg, computes)
}

// MSE computes the mean squared error of a model on a shard — used to
// verify convergence of distributed training.
func MSE(model []float32, d *LinRegData) float64 {
	var sum float64
	for i := range d.X {
		var pred float64
		for j, w := range model {
			pred += float64(w) * float64(d.X[i][j])
		}
		err := pred - float64(d.Y[i])
		sum += err * err
	}
	return sum / float64(len(d.X))
}
