package psrpc

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// ServerConfig configures a parameter server.
type ServerConfig struct {
	// Workers is the number of workers to expect.
	Workers int
	// InitialModel seeds the parameter vector; the PS owns it.
	InitialModel []float32
	// LearningRate scales averaged gradients at the PS.
	LearningRate float32
	// Iterations is the number of synchronous barriers to run; the
	// global step reaches Workers*Iterations, as in the paper.
	Iterations int
	// WrapConn optionally wraps each worker connection's outbound path
	// (e.g. through a SharedLink priority band); inbound reads always
	// use the raw connection, mirroring tc's egress-only shaping.
	WrapConn func(net.Conn) io.Writer
}

// Validate reports configuration errors.
func (c ServerConfig) Validate() error {
	if c.Workers < 1 {
		return fmt.Errorf("psrpc: need >=1 worker")
	}
	if len(c.InitialModel) == 0 {
		return fmt.Errorf("psrpc: empty model")
	}
	if c.Iterations < 1 {
		return fmt.Errorf("psrpc: need >=1 iteration")
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("psrpc: learning rate must be positive")
	}
	return nil
}

// BarrierRecord measures one worker's wait at one barrier: the elapsed
// real time between its gradient arriving at the PS and the barrier
// releasing — the paper's straggler indicator, on real sockets.
type BarrierRecord struct {
	Iteration int
	Worker    int
	Wait      time.Duration
}

// ServerResult summarizes a completed training run.
type ServerResult struct {
	FinalModel []float32
	GlobalStep int
	// Waits holds Workers*(Iterations) barrier records.
	Waits []BarrierRecord
	// Losses[iteration] is the mean worker-reported loss.
	Losses []float32
}

// Server is a synchronous parameter server.
type Server struct {
	cfg   ServerConfig
	model []float32
}

// NewServer validates the config and builds a server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, model: make([]float32, len(cfg.InitialModel))}
	copy(s.model, cfg.InitialModel)
	return s, nil
}

// gradMsg pairs a decoded gradient with its arrival time.
type gradMsg struct {
	msg     *Message
	arrived time.Time
	err     error
}

// Serve accepts exactly cfg.Workers connections on ln and runs the
// synchronous training loop to completion. It closes the listener when
// done.
func (s *Server) Serve(ln net.Listener) (*ServerResult, error) {
	defer ln.Close()
	conns := make([]net.Conn, 0, s.cfg.Workers)
	outs := make([]io.Writer, 0, s.cfg.Workers)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	seen := make(map[uint32]bool)
	for len(conns) < s.cfg.Workers {
		conn, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("psrpc: accept: %w", err)
		}
		hello, err := ReadMessage(conn)
		if err != nil || hello.Type != MsgHello {
			conn.Close()
			return nil, fmt.Errorf("psrpc: bad hello: %v", err)
		}
		if seen[hello.Worker] {
			conn.Close()
			return nil, fmt.Errorf("psrpc: duplicate worker %d", hello.Worker)
		}
		seen[hello.Worker] = true
		conns = append(conns, conn)
		var out io.Writer = conn
		if s.cfg.WrapConn != nil {
			out = s.cfg.WrapConn(conn)
		}
		outs = append(outs, out)
	}

	// One reader goroutine per worker feeds gradients into a channel;
	// the barrier is the PS collecting one gradient per worker.
	grads := make(chan gradMsg, s.cfg.Workers)
	var wg sync.WaitGroup
	for _, conn := range conns {
		conn := conn
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m, err := ReadMessage(conn)
				if err != nil {
					grads <- gradMsg{err: err}
					return
				}
				if m.Type == MsgDone {
					return
				}
				grads <- gradMsg{msg: m, arrived: time.Now()}
			}
		}()
	}

	res := &ServerResult{}
	globalStep := 0
	for iter := 0; iter < s.cfg.Iterations; iter++ {
		// Model update: broadcast to every worker.
		for _, out := range outs {
			if err := WriteMessage(out, &Message{
				Type: MsgModel, Step: uint32(iter), Vec: s.model,
			}); err != nil {
				return nil, fmt.Errorf("psrpc: broadcast: %w", err)
			}
		}
		// Barrier: collect one gradient per worker.
		sum := make([]float64, len(s.model))
		arrivals := make([]gradMsg, 0, s.cfg.Workers)
		var lossSum float64
		for n := 0; n < s.cfg.Workers; n++ {
			g := <-grads
			if g.err != nil {
				return nil, fmt.Errorf("psrpc: worker read: %w", g.err)
			}
			if len(g.msg.Vec) != len(s.model) {
				return nil, fmt.Errorf("psrpc: gradient length %d != model %d",
					len(g.msg.Vec), len(s.model))
			}
			for i, v := range g.msg.Vec {
				sum[i] += float64(v)
			}
			lossSum += float64(g.msg.Aux)
			arrivals = append(arrivals, g)
			globalStep++
		}
		release := time.Now()
		for _, g := range arrivals {
			res.Waits = append(res.Waits, BarrierRecord{
				Iteration: iter,
				Worker:    int(g.msg.Worker),
				Wait:      release.Sub(g.arrived),
			})
		}
		res.Losses = append(res.Losses, float32(lossSum/float64(s.cfg.Workers)))
		// Apply the averaged gradient.
		n := float32(s.cfg.Workers)
		for i := range s.model {
			s.model[i] -= s.cfg.LearningRate * float32(sum[i]) / n
		}
	}
	for _, out := range outs {
		_ = WriteMessage(out, &Message{Type: MsgDone})
	}
	wg.Wait()
	res.FinalModel = append([]float32(nil), s.model...)
	res.GlobalStep = globalStep
	return res, nil
}
