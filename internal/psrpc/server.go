package psrpc

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// ErrShutdown is returned by Serve when Shutdown is called before
// training started (while still accepting workers).
var ErrShutdown = errors.New("psrpc: server shut down")

// ServerConfig configures a parameter server.
type ServerConfig struct {
	// Workers is the number of workers to expect.
	Workers int
	// InitialModel seeds the parameter vector; the PS owns it.
	InitialModel []float32
	// LearningRate scales averaged gradients at the PS.
	LearningRate float32
	// Iterations is the number of synchronous barriers to run; the
	// global step reaches Workers*Iterations, as in the paper.
	Iterations int
	// WrapConn optionally wraps each worker connection's outbound path
	// (e.g. through a SharedLink priority band); inbound reads always
	// use the raw connection, mirroring tc's egress-only shaping.
	WrapConn func(net.Conn) io.Writer
	// RPCTimeout bounds each barrier's gradient collection: any worker
	// whose gradient has not arrived this long after the model
	// broadcast is treated as dead. Zero disables the deadline (a
	// stalled worker blocks the barrier forever, matching plain
	// synchronous training).
	RPCTimeout time.Duration
	// TolerateFailures keeps training going when a worker connection
	// dies or times out mid-run: the barrier degrades to the surviving
	// workers instead of aborting the job. The run still fails if every
	// worker is lost.
	TolerateFailures bool
}

// Validate reports configuration errors.
func (c ServerConfig) Validate() error {
	if c.Workers < 1 {
		return fmt.Errorf("psrpc: need >=1 worker")
	}
	if len(c.InitialModel) == 0 {
		return fmt.Errorf("psrpc: empty model")
	}
	if c.Iterations < 1 {
		return fmt.Errorf("psrpc: need >=1 iteration")
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("psrpc: learning rate must be positive")
	}
	if c.RPCTimeout < 0 {
		return fmt.Errorf("psrpc: negative RPCTimeout")
	}
	return nil
}

// BarrierRecord measures one worker's wait at one barrier: the elapsed
// real time between its gradient arriving at the PS and the barrier
// releasing — the paper's straggler indicator, on real sockets.
type BarrierRecord struct {
	Iteration int
	Worker    int
	Wait      time.Duration
}

// ServerResult summarizes a completed training run.
type ServerResult struct {
	FinalModel []float32
	GlobalStep int
	// Waits holds one barrier record per applied gradient.
	Waits []BarrierRecord
	// Losses[iteration] is the mean worker-reported loss.
	Losses []float32
	// LostWorkers lists worker ids whose connections died mid-run (only
	// populated with TolerateFailures; otherwise a death aborts Serve).
	LostWorkers []int
}

// Server is a synchronous parameter server.
type Server struct {
	cfg   ServerConfig
	model []float32

	mu      sync.Mutex
	ln      net.Listener
	stopped bool
	stopCh  chan struct{}
}

// NewServer validates the config and builds a server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		model:  make([]float32, len(cfg.InitialModel)),
		stopCh: make(chan struct{}),
	}
	copy(s.model, cfg.InitialModel)
	return s, nil
}

// Shutdown stops the server gracefully. If Serve is still accepting
// workers it unblocks with ErrShutdown; if training is underway, the
// in-flight barrier drains, workers get a Done message, reader
// goroutines exit, and Serve returns the partial result. Safe to call
// from any goroutine, and more than once.
func (s *Server) Shutdown() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return
	}
	s.stopped = true
	close(s.stopCh)
	if s.ln != nil {
		s.ln.Close()
	}
}

func (s *Server) isStopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped
}

// wkr is the server's per-worker connection state.
type wkr struct {
	id    uint32
	conn  net.Conn
	out   io.Writer
	alive bool
}

// gradMsg pairs a decoded gradient (or a terminal read error) with its
// arrival time and originating worker slot.
type gradMsg struct {
	idx     int
	msg     *Message
	arrived time.Time
	err     error
}

// failWorker marks a worker dead and closes its connection (unblocking
// its reader). With TolerateFailures it records the loss and training
// continues on the survivors; otherwise it returns the fatal error.
func (s *Server) failWorker(res *ServerResult, w *wkr, err error) error {
	w.alive = false
	w.conn.Close()
	if !s.cfg.TolerateFailures {
		return fmt.Errorf("psrpc: worker %d: %w", w.id, err)
	}
	res.LostWorkers = append(res.LostWorkers, int(w.id))
	return nil
}

// Serve accepts exactly cfg.Workers connections on ln and runs the
// synchronous training loop to completion (or until Shutdown). It
// closes the listener when done.
func (s *Server) Serve(ln net.Listener) (*ServerResult, error) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		ln.Close()
		return nil, ErrShutdown
	}
	s.ln = ln
	s.mu.Unlock()
	defer ln.Close()

	workers := make([]*wkr, 0, s.cfg.Workers)
	defer func() {
		for _, w := range workers {
			w.conn.Close()
		}
	}()
	seen := make(map[uint32]bool)
	for len(workers) < s.cfg.Workers {
		conn, err := ln.Accept()
		if err != nil {
			if s.isStopped() {
				return nil, ErrShutdown
			}
			return nil, fmt.Errorf("psrpc: accept: %w", err)
		}
		hello, err := ReadMessage(conn)
		if err != nil || hello.Type != MsgHello {
			conn.Close()
			return nil, fmt.Errorf("psrpc: bad hello: %v", err)
		}
		if seen[hello.Worker] {
			conn.Close()
			return nil, fmt.Errorf("psrpc: duplicate worker %d", hello.Worker)
		}
		seen[hello.Worker] = true
		var out io.Writer = conn
		if s.cfg.WrapConn != nil {
			out = s.cfg.WrapConn(conn)
		}
		workers = append(workers, &wkr{id: hello.Worker, conn: conn, out: out, alive: true})
	}

	// One reader goroutine per worker feeds gradients into a channel;
	// the barrier is the PS collecting one gradient per live worker. The
	// channel is buffered for the worst case (every reader delivering a
	// final error on top of unconsumed gradients) so readers never block
	// on exit and wg.Wait below cannot deadlock.
	grads := make(chan gradMsg, 2*s.cfg.Workers+2)
	var wg sync.WaitGroup
	for i, w := range workers {
		i, conn := i, w.conn
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m, err := ReadMessage(conn)
				if err != nil {
					grads <- gradMsg{idx: i, err: err}
					return
				}
				if m.Type == MsgDone {
					return
				}
				grads <- gradMsg{idx: i, msg: m, arrived: time.Now()}
			}
		}()
	}

	alive := func() int {
		n := 0
		for _, w := range workers {
			if w.alive {
				n++
			}
		}
		return n
	}

	res := &ServerResult{}
	globalStep := 0
	stopped := false
	for iter := 0; iter < s.cfg.Iterations && !stopped; iter++ {
		select {
		case <-s.stopCh:
			stopped = true
			continue
		default:
		}
		// Model update: broadcast to every live worker.
		for _, w := range workers {
			if !w.alive {
				continue
			}
			if err := WriteMessage(w.out, &Message{
				Type: MsgModel, Step: uint32(iter), Vec: s.model,
			}); err != nil {
				if ferr := s.failWorker(res, w, err); ferr != nil {
					return nil, ferr
				}
			}
		}
		// Barrier: collect one gradient per live worker. A worker dying
		// mid-barrier shrinks the barrier rather than wedging it.
		need := alive()
		if need == 0 {
			return nil, fmt.Errorf("psrpc: all %d workers lost at iteration %d",
				s.cfg.Workers, iter)
		}
		sum := make([]float64, len(s.model))
		arrivals := make([]gradMsg, 0, need)
		contributed := make([]bool, len(workers))
		var lossSum float64
		got := 0
		handle := func(g gradMsg) error {
			if g.err != nil {
				w := workers[g.idx]
				if !w.alive {
					return nil // already handled (e.g. closed by failWorker)
				}
				if ferr := s.failWorker(res, w, g.err); ferr != nil {
					return ferr
				}
				if !contributed[g.idx] {
					need--
				}
				return nil
			}
			if len(g.msg.Vec) != len(s.model) {
				return fmt.Errorf("psrpc: gradient length %d != model %d",
					len(g.msg.Vec), len(s.model))
			}
			contributed[g.idx] = true
			for i, v := range g.msg.Vec {
				sum[i] += float64(v)
			}
			lossSum += float64(g.msg.Aux)
			arrivals = append(arrivals, g)
			got++
			globalStep++
			return nil
		}
		var deadline <-chan time.Time
		var timer *time.Timer
		if s.cfg.RPCTimeout > 0 {
			timer = time.NewTimer(s.cfg.RPCTimeout)
			deadline = timer.C
		}
		for got < need {
			select {
			case g := <-grads:
				if err := handle(g); err != nil {
					return nil, err
				}
			case <-deadline:
				// Per-RPC deadline: every worker still owing a gradient
				// for this barrier is declared dead. failWorker closes
				// its connection, unblocking its reader.
				for idx, w := range workers {
					if !w.alive || contributed[idx] {
						continue
					}
					err := fmt.Errorf("no gradient within %v at iteration %d",
						s.cfg.RPCTimeout, iter)
					if ferr := s.failWorker(res, w, err); ferr != nil {
						return nil, ferr
					}
					need--
				}
			}
		}
		if timer != nil {
			timer.Stop()
		}
		if got == 0 {
			return nil, fmt.Errorf("psrpc: all %d workers lost at iteration %d",
				s.cfg.Workers, iter)
		}
		release := time.Now()
		for _, g := range arrivals {
			res.Waits = append(res.Waits, BarrierRecord{
				Iteration: iter,
				Worker:    int(workers[g.idx].id),
				Wait:      release.Sub(g.arrived),
			})
		}
		res.Losses = append(res.Losses, float32(lossSum/float64(got)))
		// Apply the gradient averaged over actual contributors.
		n := float32(got)
		for i := range s.model {
			s.model[i] -= s.cfg.LearningRate * float32(sum[i]) / n
		}
	}
	for _, w := range workers {
		if w.alive {
			_ = WriteMessage(w.out, &Message{Type: MsgDone})
		}
	}
	wg.Wait()
	res.FinalModel = append([]float32(nil), s.model...)
	res.GlobalStep = globalStep
	return res, nil
}
