// Package psrpc is a miniature but real parameter-server training
// framework over TCP: one PS process-part exchanging full-vector model
// and gradient updates with N workers, synchronized by a per-iteration
// barrier — the same communication pattern the paper instruments in
// TensorFlow. The repository's evaluation runs on the discrete-event
// simulator (internal/simnet), which scales to the paper's 21-host
// testbed; psrpc complements it with an executable end-host stack whose
// barrier-wait measurements come from real sockets and goroutines.
package psrpc

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// MsgType tags protocol messages.
type MsgType uint8

// Protocol message types.
const (
	// MsgHello is the worker's registration (Worker field set).
	MsgHello MsgType = iota + 1
	// MsgModel carries the full model vector PS -> worker.
	MsgModel
	// MsgGradient carries the full gradient vector worker -> PS.
	MsgGradient
	// MsgDone tells the worker training ended.
	MsgDone
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgModel:
		return "model"
	case MsgGradient:
		return "gradient"
	case MsgDone:
		return "done"
	}
	return fmt.Sprintf("msgtype(%d)", uint8(t))
}

// Message is one protocol frame. Vec is the parameter or gradient
// vector; Aux carries the worker's reported loss on gradients.
type Message struct {
	Type   MsgType
	Worker uint32
	Step   uint32
	Aux    float32
	Vec    []float32
}

// maxVecLen bounds decoded vectors (64 M parameters) so a corrupt
// header cannot trigger a huge allocation.
const maxVecLen = 64 << 20

// headerLen is the fixed frame header size.
const headerLen = 1 + 4 + 4 + 4 + 4

// WriteMessage frames and writes m.
func WriteMessage(w io.Writer, m *Message) error {
	if len(m.Vec) > maxVecLen {
		return fmt.Errorf("psrpc: vector too long (%d)", len(m.Vec))
	}
	buf := make([]byte, headerLen+4*len(m.Vec))
	buf[0] = byte(m.Type)
	binary.LittleEndian.PutUint32(buf[1:], m.Worker)
	binary.LittleEndian.PutUint32(buf[5:], m.Step)
	binary.LittleEndian.PutUint32(buf[9:], math.Float32bits(m.Aux))
	binary.LittleEndian.PutUint32(buf[13:], uint32(len(m.Vec)))
	for i, v := range m.Vec {
		binary.LittleEndian.PutUint32(buf[headerLen+4*i:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

// ReadMessage reads one frame.
func ReadMessage(r io.Reader) (*Message, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	m := &Message{
		Type:   MsgType(hdr[0]),
		Worker: binary.LittleEndian.Uint32(hdr[1:]),
		Step:   binary.LittleEndian.Uint32(hdr[5:]),
		Aux:    math.Float32frombits(binary.LittleEndian.Uint32(hdr[9:])),
	}
	n := binary.LittleEndian.Uint32(hdr[13:])
	if n > maxVecLen {
		return nil, fmt.Errorf("psrpc: vector length %d exceeds limit", n)
	}
	if n > 0 {
		body := make([]byte, 4*n)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil, err
		}
		m.Vec = make([]float32, n)
		for i := range m.Vec {
			m.Vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
		}
	}
	return m, nil
}
