package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/dl"
	"repro/internal/sim"
)

func TestGenerateDefaults(t *testing.T) {
	arrivals, err := Generate(ChurnConfig{}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 21 {
		t.Fatalf("arrivals %d", len(arrivals))
	}
	prev := -1.0
	for i, a := range arrivals {
		if a.At <= prev {
			t.Fatal("arrival times not strictly increasing")
		}
		prev = a.At
		if a.Spec.ID != i {
			t.Fatal("job ids not sequential")
		}
		if err := a.Spec.Validate(); err != nil {
			t.Fatalf("arrival %d: %v", i, err)
		}
		if a.Spec.NumWorkers != 20 {
			t.Fatalf("workers %d", a.Spec.NumWorkers)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a1, _ := Generate(ChurnConfig{NumJobs: 10}, sim.NewRNG(5))
	a2, _ := Generate(ChurnConfig{NumJobs: 10}, sim.NewRNG(5))
	for i := range a1 {
		if a1[i].At != a2[i].At || a1[i].Spec.PSHost != a2[i].Spec.PSHost {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestGenerateArrivalRate(t *testing.T) {
	cfg := ChurnConfig{NumJobs: 400, ArrivalRatePerSec: 2}
	arrivals, err := Generate(cfg, sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	span := arrivals[len(arrivals)-1].At
	rate := float64(len(arrivals)) / span
	if rate < 1.5 || rate > 2.5 {
		t.Fatalf("empirical rate %.2f, want ~2", rate)
	}
}

func TestGenerateMix(t *testing.T) {
	cfg := ChurnConfig{
		NumJobs:   300,
		Templates: HeterogeneousMix(4000),
	}
	arrivals, err := Generate(cfg, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, a := range arrivals {
		counts[a.Spec.Model.Name]++
	}
	if counts[dl.ResNet32.Name] < 100 || counts[dl.ResNet56.Name] < 40 ||
		counts[dl.InceptionV3.Name] < 20 {
		t.Fatalf("mix skewed: %v", counts)
	}
}

func TestGeneratePSAwareAvoidsColocation(t *testing.T) {
	cfg := ChurnConfig{NumJobs: 21, SchedPolicy: cluster.PolicyPSAware}
	arrivals, err := Generate(cfg, sim.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	perHost := map[int]int{}
	for _, a := range arrivals {
		perHost[a.Spec.PSHost]++
	}
	for h, n := range perHost {
		if n > 1 {
			t.Fatalf("ps-aware colocated %d PSes on host %d", n, h)
		}
	}
}

func TestGenerateRandomProducesColocation(t *testing.T) {
	cfg := ChurnConfig{NumJobs: 21, SchedPolicy: cluster.PolicyRandom}
	arrivals, err := Generate(cfg, sim.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	perHost := map[int]int{}
	maxColoc := 0
	for _, a := range arrivals {
		perHost[a.Spec.PSHost]++
		if perHost[a.Spec.PSHost] > maxColoc {
			maxColoc = perHost[a.Spec.PSHost]
		}
	}
	// Birthday bound: 21 random picks of 21 hosts collide with
	// overwhelming probability.
	if maxColoc < 2 {
		t.Fatal("random placement produced no colocation")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(ChurnConfig{
		Templates: []JobTemplate{{Model: dl.ResNet32, Weight: 0}},
	}, sim.NewRNG(1)); err == nil {
		t.Fatal("zero-weight template accepted")
	}
	if _, err := Generate(ChurnConfig{
		Templates: []JobTemplate{{Model: dl.ResNet32, Weight: 1}},
	}, sim.NewRNG(1)); err == nil {
		t.Fatal("incomplete template accepted")
	}
}

// Property: every generated spec is valid and every job's workers avoid
// its PS host, for any job count and rate.
func TestGenerateProperty(t *testing.T) {
	f := func(jobsRaw uint8, rateRaw uint8, seed int64) bool {
		cfg := ChurnConfig{
			NumJobs:           int(jobsRaw%30) + 1,
			ArrivalRatePerSec: float64(rateRaw%20)/10 + 0.05,
		}
		arrivals, err := Generate(cfg, sim.NewRNG(seed))
		if err != nil {
			return false
		}
		for _, a := range arrivals {
			if a.Spec.Validate() != nil {
				return false
			}
		}
		return len(arrivals) == cfg.NumJobs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
