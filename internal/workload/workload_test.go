package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/dl"
	"repro/internal/sim"
)

func TestGenerateDefaults(t *testing.T) {
	arrivals, err := Generate(ChurnConfig{}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 21 {
		t.Fatalf("arrivals %d", len(arrivals))
	}
	prev := -1.0
	for i, a := range arrivals {
		if a.At <= prev {
			t.Fatal("arrival times not strictly increasing")
		}
		prev = a.At
		if a.Spec.ID != i {
			t.Fatal("job ids not sequential")
		}
		if err := a.Spec.Validate(); err != nil {
			t.Fatalf("arrival %d: %v", i, err)
		}
		if a.Spec.NumWorkers != 20 {
			t.Fatalf("workers %d", a.Spec.NumWorkers)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a1, _ := Generate(ChurnConfig{NumJobs: 10}, sim.NewRNG(5))
	a2, _ := Generate(ChurnConfig{NumJobs: 10}, sim.NewRNG(5))
	for i := range a1 {
		if a1[i].At != a2[i].At || a1[i].Spec.PSHost != a2[i].Spec.PSHost {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestGenerateArrivalRate(t *testing.T) {
	cfg := ChurnConfig{NumJobs: 400, ArrivalRatePerSec: 2}
	arrivals, err := Generate(cfg, sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	span := arrivals[len(arrivals)-1].At
	rate := float64(len(arrivals)) / span
	if rate < 1.5 || rate > 2.5 {
		t.Fatalf("empirical rate %.2f, want ~2", rate)
	}
}

func TestGenerateMix(t *testing.T) {
	cfg := ChurnConfig{
		NumJobs:   300,
		Templates: HeterogeneousMix(4000),
	}
	arrivals, err := Generate(cfg, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, a := range arrivals {
		counts[a.Spec.Model.Name]++
	}
	if counts[dl.ResNet32.Name] < 100 || counts[dl.ResNet56.Name] < 40 ||
		counts[dl.InceptionV3.Name] < 20 {
		t.Fatalf("mix skewed: %v", counts)
	}
}

func TestGeneratePSAwareAvoidsColocation(t *testing.T) {
	cfg := ChurnConfig{NumJobs: 21, SchedPolicy: cluster.PolicyPSAware}
	arrivals, err := Generate(cfg, sim.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	perHost := map[int]int{}
	for _, a := range arrivals {
		perHost[a.Spec.PSHost]++
	}
	for h, n := range perHost {
		if n > 1 {
			t.Fatalf("ps-aware colocated %d PSes on host %d", n, h)
		}
	}
}

func TestGenerateRandomProducesColocation(t *testing.T) {
	cfg := ChurnConfig{NumJobs: 21, SchedPolicy: cluster.PolicyRandom}
	arrivals, err := Generate(cfg, sim.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	perHost := map[int]int{}
	maxColoc := 0
	for _, a := range arrivals {
		perHost[a.Spec.PSHost]++
		if perHost[a.Spec.PSHost] > maxColoc {
			maxColoc = perHost[a.Spec.PSHost]
		}
	}
	// Birthday bound: 21 random picks of 21 hosts collide with
	// overwhelming probability.
	if maxColoc < 2 {
		t.Fatal("random placement produced no colocation")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(ChurnConfig{
		Templates: []JobTemplate{{Model: dl.ResNet32, Weight: 0}},
	}, sim.NewRNG(1)); err == nil {
		t.Fatal("zero-weight template accepted")
	}
	if _, err := Generate(ChurnConfig{
		Templates: []JobTemplate{{Model: dl.ResNet32, Weight: 1}},
	}, sim.NewRNG(1)); err == nil {
		t.Fatal("incomplete template accepted")
	}
}

// TestTemplateWeightChiSquare is a seeded goodness-of-fit check on the
// weighted template sampler: 2000 draws through Generate against the
// HeterogeneousMix weights 0.5/0.3/0.2. The chi-square statistic over
// the three model counts must stay below the df=2, p=0.001 critical
// value (13.82) — generous enough to never flake on a fixed seed, tight
// enough to catch a broken walk in pickTemplate (e.g. comparing against
// unnormalized weights or skipping the last template).
func TestTemplateWeightChiSquare(t *testing.T) {
	const draws = 2000
	templates := HeterogeneousMix(4000)
	cfg := ChurnConfig{
		NumJobs:           draws,
		ArrivalRatePerSec: 5,
		Templates:         templates,
	}
	arrivals, err := Generate(cfg, sim.NewRNG(12345))
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != draws {
		t.Fatalf("generated %d arrivals, want %d", len(arrivals), draws)
	}
	counts := map[string]int{}
	for _, a := range arrivals {
		counts[a.Spec.Model.Name]++
	}
	total := 0.0
	for _, tpl := range templates {
		total += tpl.Weight
	}
	chi2 := 0.0
	for _, tpl := range templates {
		expected := float64(draws) * tpl.Weight / total
		diff := float64(counts[tpl.Model.Name]) - expected
		chi2 += diff * diff / expected
		t.Logf("%-12s observed %4d expected %6.1f", tpl.Model.Name, counts[tpl.Model.Name], expected)
	}
	// Critical value for df = len(templates)-1 = 2 at p = 0.001.
	const critical = 13.82
	if chi2 > critical {
		t.Fatalf("chi-square %.2f exceeds %.2f: sampler does not follow template weights (counts %v)",
			chi2, critical, counts)
	}
}

// TestChurnConfigValidateRejectsBadRates: zero and negative arrival
// rates must be rejected by Validate, and a negative rate must fail
// Generate outright instead of being silently coerced to the default
// (the pre-Validate behavior). An unset (zero) rate through Generate
// still picks up the 0.1/s default.
func TestChurnConfigValidateRejectsBadRates(t *testing.T) {
	for _, rate := range []float64{0, -1, -0.001} {
		cfg := ChurnConfig{NumJobs: 3, ArrivalRatePerSec: rate}
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted ArrivalRatePerSec %g", rate)
		}
	}
	if err := (ChurnConfig{ArrivalRatePerSec: 2}).Validate(); err != nil {
		t.Errorf("Validate rejected a positive rate: %v", err)
	}
	if _, err := Generate(ChurnConfig{NumJobs: 3, ArrivalRatePerSec: -1}, sim.NewRNG(1)); err == nil {
		t.Error("Generate accepted a negative arrival rate")
	}
	arrivals, err := Generate(ChurnConfig{NumJobs: 3}, sim.NewRNG(1))
	if err != nil {
		t.Fatalf("Generate with unset rate must use the default: %v", err)
	}
	if len(arrivals) != 3 {
		t.Fatalf("got %d arrivals, want 3", len(arrivals))
	}
}

// Property: every generated spec is valid and every job's workers avoid
// its PS host, for any job count and rate.
func TestGenerateProperty(t *testing.T) {
	f := func(jobsRaw uint8, rateRaw uint8, seed int64) bool {
		cfg := ChurnConfig{
			NumJobs:           int(jobsRaw%30) + 1,
			ArrivalRatePerSec: float64(rateRaw%20)/10 + 0.05,
		}
		arrivals, err := Generate(cfg, sim.NewRNG(seed))
		if err != nil {
			return false
		}
		for _, a := range arrivals {
			if a.Spec.Validate() != nil {
				return false
			}
		}
		return len(arrivals) == cfg.NumJobs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
