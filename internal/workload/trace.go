package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/dl"
	"repro/internal/sim"
)

// The trace CSV schema: one arrival per row, absolute arrival time in
// seconds, the unified job kind, a model-zoo name, and the job shape.
// Lines starting with '#' are comments; the header row is optional.
const traceHeader = "at_sec,kind,model,tasks,local_batch,iterations"

// ExampleTraceCSV is a tiny well-formed trace, used in docs and tests.
const ExampleTraceCSV = `# open-world arrival trace
at_sec,kind,model,tasks,local_batch,iterations
0.5,ps,resnet56,3,4,20
1.2,ring,alexnet,3,1,10
3.0,tree,resnet50,3,1,10
7.5,ps,dcgan,3,4,20
`

// TraceEntry is one recorded arrival.
type TraceEntry struct {
	AtSec      float64
	Kind       Kind
	ModelName  string
	Tasks      int
	LocalBatch int
	Iterations int
}

// Trace is a recorded arrival sequence for empirical replay. It
// implements Process (returning the recorded times verbatim), and
// GenerateOpen additionally takes each job's shape from the entry
// instead of drawing from a template mix.
type Trace struct {
	Entries []TraceEntry
}

// ParseTrace reads the CSV schema "at_sec,kind,model,tasks,local_batch,
// iterations". The header row is optional and '#' comments are allowed.
// Parsing is purely syntactic; call Validate for semantic checks
// (ordering, model names, positive shapes).
func ParseTrace(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.Comment = '#'
	cr.FieldsPerRecord = 6
	cr.TrimLeadingSpace = true
	t := &Trace{}
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace: %w", err)
		}
		if first {
			first = false
			if strings.EqualFold(strings.TrimSpace(rec[0]), "at_sec") {
				continue // header row
			}
		}
		at, err := strconv.ParseFloat(strings.TrimSpace(rec[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace row %d: bad at_sec %q (schema: %s)",
				len(t.Entries)+1, rec[0], traceHeader)
		}
		var ints [3]int
		for i, f := range rec[3:] {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("workload: trace row %d: bad integer %q (schema: %s)",
					len(t.Entries)+1, f, traceHeader)
			}
			ints[i] = v
		}
		t.Entries = append(t.Entries, TraceEntry{
			AtSec:      at,
			Kind:       Kind(strings.TrimSpace(rec[1])),
			ModelName:  strings.TrimSpace(rec[2]),
			Tasks:      ints[0],
			LocalBatch: ints[1],
			Iterations: ints[2],
		})
	}
	return t, nil
}

// Validate rejects traces that cannot replay: empty traces,
// out-of-order or non-finite timestamps, unknown kinds or model names,
// and non-positive job shapes.
func (t *Trace) Validate() error {
	if t == nil || len(t.Entries) == 0 {
		return fmt.Errorf("workload: trace is empty")
	}
	prev := math.Inf(-1)
	for i, e := range t.Entries {
		if math.IsNaN(e.AtSec) || math.IsInf(e.AtSec, 0) || e.AtSec < 0 {
			return fmt.Errorf("workload: trace row %d: at_sec %g must be finite and >= 0", i+1, e.AtSec)
		}
		if e.AtSec < prev {
			return fmt.Errorf("workload: trace row %d: out-of-order timestamp %g after %g", i+1, e.AtSec, prev)
		}
		prev = e.AtSec
		if err := e.Kind.Validate(); err != nil {
			return fmt.Errorf("workload: trace row %d: %w", i+1, err)
		}
		if _, err := dl.ModelByName(e.ModelName); err != nil {
			return fmt.Errorf("workload: trace row %d: %w", i+1, err)
		}
		minTasks := 1
		if e.Kind.Collective() {
			minTasks = 2
		}
		if e.Tasks < minTasks {
			return fmt.Errorf("workload: trace row %d: tasks %d must be >= %d", i+1, e.Tasks, minTasks)
		}
		if e.LocalBatch < 1 || e.Iterations < 1 {
			return fmt.Errorf("workload: trace row %d: local_batch and iterations must be positive", i+1)
		}
	}
	return nil
}

// Name implements Process.
func (t *Trace) Name() string { return "trace" }

// Times implements Process: trace replay consumes no randomness and
// returns the recorded times verbatim.
func (t *Trace) Times(n int, _ *sim.RNG) ([]float64, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if n > len(t.Entries) {
		return nil, fmt.Errorf("workload: trace has %d entries, %d arrivals requested", len(t.Entries), n)
	}
	times := make([]float64, n)
	for i := range times {
		times[i] = t.Entries[i].AtSec
	}
	return times, nil
}

// Spec lowers entry i to a unified JobSpec (ports assigned by
// GenerateOpen's convention).
func (t *Trace) spec(i int) (JobSpec, error) {
	e := t.Entries[i]
	m, err := dl.ModelByName(e.ModelName)
	if err != nil {
		return JobSpec{}, fmt.Errorf("workload: trace row %d: %w", i+1, err)
	}
	return JobSpec{
		ID:         i,
		Name:       fmt.Sprintf("open-%02d-%s-%s", i, e.Kind, m.Name),
		Kind:       e.Kind,
		Model:      m,
		Tasks:      e.Tasks,
		LocalBatch: e.LocalBatch,
		Iterations: e.Iterations,
		Port:       portFor(e.Kind, i),
	}, nil
}

// DemoTrace is the built-in replay trace the open-world sweep's "trace"
// arrival axis uses: a submission burst at t=0.5-3 s mixing PS and
// collective jobs, a quiet gap, then a second smaller burst — the
// pattern trace-driven replay exists to reproduce. Iteration counts
// scale with iters so the sweep's Steps knob works unchanged.
func DemoTrace(iters int) *Trace {
	if iters < 1 {
		iters = 1
	}
	mk := func(at float64, kind Kind, model string, tasks, batch int) TraceEntry {
		return TraceEntry{AtSec: at, Kind: kind, ModelName: model,
			Tasks: tasks, LocalBatch: batch, Iterations: iters}
	}
	return &Trace{Entries: []TraceEntry{
		mk(0.5, KindPS, "resnet56", 3, 4),
		mk(1.0, KindRing, "alexnet", 3, 1),
		mk(1.4, KindPS, "dcgan", 3, 4),
		mk(2.2, KindTree, "resnet50", 3, 1),
		mk(2.9, KindPS, "resnet32", 3, 4),
		mk(9.0, KindRing, "resnet50", 3, 1),
		mk(9.6, KindPS, "resnet56", 3, 4),
		mk(10.3, KindRing, "alexnet", 3, 1),
		mk(11.1, KindPS, "dcgan", 3, 4),
	}}
}
