// Package workload generates DL job workloads beyond the paper's
// simultaneous grid search: Poisson job arrivals, heterogeneous model
// mixes, and production-style PS placement through the cluster
// scheduler. This exercises the "batch processing mode" of §IV-B —
// jobs arriving and departing over time, with TensorLights
// reconfiguring priorities on each arrival and departure.
package workload

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/dl"
	"repro/internal/sim"
)

// JobTemplate is one entry of a heterogeneous job mix.
type JobTemplate struct {
	Model             dl.Model
	LocalBatch        int
	TargetGlobalSteps int
	// Weight is the template's relative draw probability.
	Weight float64
}

// ChurnConfig describes a Poisson arrival workload.
type ChurnConfig struct {
	// NumJobs is how many jobs arrive in total.
	NumJobs int
	// ArrivalRatePerSec is the Poisson arrival rate (jobs/second).
	ArrivalRatePerSec float64
	// Templates is the job mix; empty selects the paper's ResNet-32
	// grid-search job.
	Templates []JobTemplate
	// Hosts is the cluster size (default 21).
	Hosts int
	// SchedPolicy places each arriving job's PS (production clusters
	// are PS-agnostic, so colocation arises naturally under
	// PolicyRandom; PolicyPSAware is the paper's §VII fix).
	SchedPolicy cluster.SchedPolicy
}

func (c *ChurnConfig) fillDefaults() {
	if c.NumJobs <= 0 {
		c.NumJobs = 21
	}
	// Only an unset (zero) rate gets the default; a negative rate is a
	// configuration error that Validate rejects rather than masks.
	if c.ArrivalRatePerSec == 0 {
		c.ArrivalRatePerSec = 0.1
	}
	if c.Hosts <= 0 {
		c.Hosts = 21
	}
	if len(c.Templates) == 0 {
		c.Templates = []JobTemplate{{
			Model:             dl.ResNet32,
			LocalBatch:        4,
			TargetGlobalSteps: 6000,
			Weight:            1,
		}}
	}
}

// Validate reports configuration errors. The arrival rate must be a
// positive, finite number of jobs per second — a zero or negative rate
// would make the Poisson inter-arrival draw meaningless. Generate fills
// defaults first (so an unset rate becomes 0.1/s) and then validates,
// so an explicitly negative rate always errors.
func (c ChurnConfig) Validate() error {
	if !(c.ArrivalRatePerSec > 0) { // also catches NaN
		return fmt.Errorf("workload: ArrivalRatePerSec %g must be positive", c.ArrivalRatePerSec)
	}
	if math.IsInf(c.ArrivalRatePerSec, 1) {
		return fmt.Errorf("workload: ArrivalRatePerSec must be finite")
	}
	return nil
}

// Arrival is one job arrival event.
type Arrival struct {
	At   float64
	Spec dl.JobSpec
}

// Generate builds the arrival sequence. It is deterministic for a
// given rng stream.
func Generate(cfg ChurnConfig, rng *sim.RNG) ([]Arrival, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	stream := rng.Stream("workload")
	sched := cluster.NewScheduler(cfg.SchedPolicy, cfg.Hosts, 12, stream)
	totalWeight := 0.0
	for _, tpl := range cfg.Templates {
		if tpl.Weight <= 0 {
			return nil, fmt.Errorf("workload: template %q needs positive weight", tpl.Model.Name)
		}
		if tpl.LocalBatch < 1 || tpl.TargetGlobalSteps < 1 {
			return nil, fmt.Errorf("workload: template %q incomplete", tpl.Model.Name)
		}
		totalWeight += tpl.Weight
	}
	arrivals := make([]Arrival, 0, cfg.NumJobs)
	at := 0.0
	for id := 0; id < cfg.NumJobs; id++ {
		at += stream.Expo(1 / cfg.ArrivalRatePerSec)
		tpl := pickTemplate(cfg.Templates, totalWeight, stream)
		psHost, err := sched.Place(cluster.TaskReq{
			JobID: id, Kind: cluster.KindPS, CPUDemand: 0.5,
		})
		if err != nil {
			return nil, err
		}
		var workers []int
		for h := 0; h < cfg.Hosts; h++ {
			if h != psHost {
				workers = append(workers, h)
			}
		}
		arrivals = append(arrivals, Arrival{
			At: at,
			Spec: dl.JobSpec{
				ID:                id,
				Name:              fmt.Sprintf("churn-%02d-%s", id, tpl.Model.Name),
				Model:             tpl.Model,
				NumWorkers:        len(workers),
				LocalBatch:        tpl.LocalBatch,
				TargetGlobalSteps: tpl.TargetGlobalSteps,
				PSHost:            psHost,
				PSPort:            5000 + id,
				WorkerHosts:       workers,
			},
		})
	}
	return arrivals, nil
}

func pickTemplate(templates []JobTemplate, total float64, rng *sim.RNG) JobTemplate {
	r := rng.Float64() * total
	for _, tpl := range templates {
		if r < tpl.Weight {
			return tpl
		}
		r -= tpl.Weight
	}
	return templates[len(templates)-1]
}

// GridSearchMix is the paper's homogeneous workload as a template set.
func GridSearchMix(steps int) []JobTemplate {
	return []JobTemplate{{
		Model: dl.ResNet32, LocalBatch: 4, TargetGlobalSteps: steps, Weight: 1,
	}}
}

// HeterogeneousMix mixes small and large models, where the paper's
// smallest-update-first priority order avoids head-of-line blocking.
func HeterogeneousMix(steps int) []JobTemplate {
	return []JobTemplate{
		{Model: dl.ResNet32, LocalBatch: 4, TargetGlobalSteps: steps, Weight: 0.5},
		{Model: dl.ResNet56, LocalBatch: 4, TargetGlobalSteps: steps, Weight: 0.3},
		{Model: dl.InceptionV3, LocalBatch: 4, TargetGlobalSteps: steps / 4, Weight: 0.2},
	}
}
