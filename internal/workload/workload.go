// Package workload is the unified front door for experiment
// generation: every job — the paper's PS grid search, churn arrivals,
// ring/tree collectives — is described by one placement-free JobSpec
// that lowers to the concrete runtimes (dl.JobSpec, collective.JobSpec)
// once a scheduler has picked hosts. Arrival times come from pluggable
// processes (Poisson, Markov-modulated bursty, trace-driven replay),
// exercising the "batch processing mode" of §IV-B — jobs arriving and
// departing over time, with TensorLights reconfiguring priorities on
// each arrival and departure.
package workload

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/dl"
	"repro/internal/sim"
)

// JobTemplate is one entry of a heterogeneous job mix.
type JobTemplate struct {
	// Kind is the unified job kind (zero value = PS, the paper's
	// pattern; legacy churn templates never set it).
	Kind              Kind
	Model             dl.Model
	LocalBatch        int
	TargetGlobalSteps int
	// Tasks is the worker/rank count for open-world generation. Zero
	// means "all non-PS hosts", which is what the legacy churn
	// workload does.
	Tasks int
	// Iterations is the per-task iteration target for open-world
	// generation (legacy churn uses TargetGlobalSteps instead).
	Iterations int
	// Weight is the template's relative draw probability.
	Weight float64
}

// ChurnConfig describes a Poisson arrival workload.
type ChurnConfig struct {
	// NumJobs is how many jobs arrive in total.
	NumJobs int
	// ArrivalRatePerSec is the Poisson arrival rate (jobs/second).
	ArrivalRatePerSec float64
	// Templates is the job mix; empty selects the paper's ResNet-32
	// grid-search job.
	Templates []JobTemplate
	// Hosts is the cluster size (default 21).
	Hosts int
	// SlotsPerHost is the flat scheduler's per-host CPU slot capacity
	// in threads (default 12, the paper's dual-hyperthreaded 6-core
	// hosts). It was a hardcoded magic number inside Generate before.
	SlotsPerHost float64
	// SchedPolicy places each arriving job's PS (production clusters
	// are PS-agnostic, so colocation arises naturally under
	// PolicyRandom; PolicyPSAware is the paper's §VII fix).
	SchedPolicy cluster.SchedPolicy
}

func (c *ChurnConfig) fillDefaults() {
	if c.NumJobs <= 0 {
		c.NumJobs = 21
	}
	// Only an unset (zero) rate gets the default; a negative rate is a
	// configuration error that Validate rejects rather than masks.
	if c.ArrivalRatePerSec == 0 {
		c.ArrivalRatePerSec = 0.1
	}
	if c.Hosts <= 0 {
		c.Hosts = 21
	}
	if c.SlotsPerHost == 0 {
		c.SlotsPerHost = 12
	}
	if len(c.Templates) == 0 {
		c.Templates = []JobTemplate{{
			Model:             dl.ResNet32,
			LocalBatch:        4,
			TargetGlobalSteps: 6000,
			Weight:            1,
		}}
	}
}

// Validate reports configuration errors. The arrival rate must be a
// positive, finite number of jobs per second — a zero or negative rate
// would make the Poisson inter-arrival draw meaningless — and the slot
// capacity a positive, finite thread count. Generate fills defaults
// first (so an unset rate becomes 0.1/s and unset slots become 12) and
// then validates, so an explicitly negative value always errors.
func (c ChurnConfig) Validate() error {
	if !(c.ArrivalRatePerSec > 0) { // also catches NaN
		return fmt.Errorf("workload: ArrivalRatePerSec %g must be positive", c.ArrivalRatePerSec)
	}
	if math.IsInf(c.ArrivalRatePerSec, 1) {
		return fmt.Errorf("workload: ArrivalRatePerSec must be finite")
	}
	// Zero means "unset" (Generate fills the 12-thread default before
	// validating); anything else must be a positive finite thread count.
	if c.SlotsPerHost != 0 && !(c.SlotsPerHost > 0) { // also catches NaN
		return fmt.Errorf("workload: SlotsPerHost %g must be positive", c.SlotsPerHost)
	}
	if math.IsInf(c.SlotsPerHost, 1) {
		return fmt.Errorf("workload: SlotsPerHost must be finite")
	}
	return nil
}

// Arrival is one job arrival event, already lowered to the PS runtime
// spec (the legacy churn consumers drive dl.Job directly).
type Arrival struct {
	At   float64
	Spec dl.JobSpec
}

// Generate builds the churn arrival sequence. It is deterministic for
// a given rng stream, and its output is byte-identical to the
// pre-unified-layer generator: the same draws in the same order, with
// each job now expressed as a unified JobSpec and lowered through
// LowerPS onto the flat scheduler's placement.
func Generate(cfg ChurnConfig, rng *sim.RNG) ([]Arrival, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	stream := rng.Stream("workload")
	sched := cluster.NewScheduler(cfg.SchedPolicy, cfg.Hosts, cfg.SlotsPerHost, stream)
	totalWeight := 0.0
	for _, tpl := range cfg.Templates {
		if tpl.Weight <= 0 {
			return nil, fmt.Errorf("workload: template %q needs positive weight", tpl.Model.Name)
		}
		if tpl.LocalBatch < 1 || tpl.TargetGlobalSteps < 1 {
			return nil, fmt.Errorf("workload: template %q incomplete", tpl.Model.Name)
		}
		totalWeight += tpl.Weight
	}
	arrivals := make([]Arrival, 0, cfg.NumJobs)
	at := 0.0
	for id := 0; id < cfg.NumJobs; id++ {
		at += stream.Expo(1 / cfg.ArrivalRatePerSec)
		tpl := pickTemplate(cfg.Templates, totalWeight, stream)
		psHost, err := sched.Place(cluster.TaskReq{
			JobID: id, Kind: cluster.KindPS, CPUDemand: 0.5,
		})
		if err != nil {
			return nil, err
		}
		hosts := make([]int, 0, cfg.Hosts)
		hosts = append(hosts, psHost)
		for h := 0; h < cfg.Hosts; h++ {
			if h != psHost {
				hosts = append(hosts, h)
			}
		}
		unified := JobSpec{
			ID:            id,
			Name:          fmt.Sprintf("churn-%02d-%s", id, tpl.Model.Name),
			Kind:          KindPS,
			Model:         tpl.Model,
			Tasks:         len(hosts) - 1,
			LocalBatch:    tpl.LocalBatch,
			PSGlobalSteps: tpl.TargetGlobalSteps,
			Port:          5000 + id,
		}
		spec, err := unified.LowerPS(hosts)
		if err != nil {
			return nil, err
		}
		arrivals = append(arrivals, Arrival{At: at, Spec: spec})
	}
	return arrivals, nil
}

func pickTemplate(templates []JobTemplate, total float64, rng *sim.RNG) JobTemplate {
	r := rng.Float64() * total
	for _, tpl := range templates {
		if r < tpl.Weight {
			return tpl
		}
		r -= tpl.Weight
	}
	return templates[len(templates)-1]
}

// GridSearchMix is the paper's homogeneous workload as a template set.
func GridSearchMix(steps int) []JobTemplate {
	return []JobTemplate{{
		Model: dl.ResNet32, LocalBatch: 4, TargetGlobalSteps: steps, Weight: 1,
	}}
}

// HeterogeneousMix mixes small and large models, where the paper's
// smallest-update-first priority order avoids head-of-line blocking.
func HeterogeneousMix(steps int) []JobTemplate {
	return []JobTemplate{
		{Model: dl.ResNet32, LocalBatch: 4, TargetGlobalSteps: steps, Weight: 0.5},
		{Model: dl.ResNet56, LocalBatch: 4, TargetGlobalSteps: steps, Weight: 0.3},
		{Model: dl.InceptionV3, LocalBatch: 4, TargetGlobalSteps: steps / 4, Weight: 0.2},
	}
}

// --- open-world generation -------------------------------------------

// Port conventions of the open-world generator: PS jobs claim one port
// each above basePSPort; collective jobs get a 100-port block above
// baseCollectivePort (mirroring the scheduler sweep's layout, and
// keeping both families disjoint for any realistic job count).
const (
	basePSPort         = 5000
	baseCollectivePort = 7000
)

// portFor assigns job i's TCP source port by kind.
func portFor(kind Kind, i int) int {
	if kind.Collective() {
		return baseCollectivePort + 100*i
	}
	return basePSPort + i
}

// OpenArrival is one open-world arrival: a unified, not-yet-placed
// JobSpec plus its arrival time. The consumer routes Spec.SchedReq()
// through the online scheduler tier and lowers onto the decision.
type OpenArrival struct {
	At   float64
	Spec JobSpec
}

// OpenConfig describes an open-world arrival workload: how many jobs,
// which arrival process, and which job mix.
type OpenConfig struct {
	// Jobs is the total number of arrivals (default 9; for trace-driven
	// replay, 0 means "the whole trace").
	Jobs int
	// Arrivals is the arrival process (default Poisson at 1 job/s).
	// When it is a *Trace, each job's kind/model/shape comes from the
	// trace entry and Mix is ignored.
	Arrivals Process
	// Mix is the job mix for stochastic processes (default
	// OpenWorldMix(30)).
	Mix []JobTemplate
}

func (c *OpenConfig) fillDefaults() {
	if c.Arrivals == nil {
		c.Arrivals = Poisson{RatePerSec: 1}
	}
	if tr, ok := c.Arrivals.(*Trace); ok && c.Jobs <= 0 && tr != nil {
		c.Jobs = len(tr.Entries)
	}
	if c.Jobs <= 0 {
		c.Jobs = 9
	}
	if len(c.Mix) == 0 {
		c.Mix = OpenWorldMix(30)
	}
}

// GenerateOpen builds the open-world arrival sequence: arrival times
// from the configured process (stream "open-arrivals") and job shapes
// from the weighted mix (stream "open-mix") or, for trace replay, from
// the recorded entries. Placement is deliberately absent — that is the
// scheduler tier's decision at each arrival instant.
func GenerateOpen(cfg OpenConfig, rng *sim.RNG) ([]OpenArrival, error) {
	cfg.fillDefaults()
	times, err := cfg.Arrivals.Times(cfg.Jobs, rng.Stream("open-arrivals"))
	if err != nil {
		return nil, err
	}
	if tr, ok := cfg.Arrivals.(*Trace); ok {
		arrivals := make([]OpenArrival, cfg.Jobs)
		for i := range arrivals {
			spec, err := tr.spec(i)
			if err != nil {
				return nil, err
			}
			arrivals[i] = OpenArrival{At: times[i], Spec: spec}
		}
		return arrivals, nil
	}
	totalWeight := 0.0
	for _, tpl := range cfg.Mix {
		if tpl.Weight <= 0 {
			return nil, fmt.Errorf("workload: template %q needs positive weight", tpl.Model.Name)
		}
		if tpl.Tasks < 1 || tpl.LocalBatch < 1 || tpl.Iterations < 1 {
			return nil, fmt.Errorf("workload: open-world template %q needs positive tasks, batch and iterations", tpl.Model.Name)
		}
		totalWeight += tpl.Weight
	}
	mixStream := rng.Stream("open-mix")
	arrivals := make([]OpenArrival, cfg.Jobs)
	for i := range arrivals {
		tpl := pickTemplate(cfg.Mix, totalWeight, mixStream)
		spec := JobSpec{
			ID:         i,
			Name:       fmt.Sprintf("open-%02d-%s-%s", i, tpl.Kind, tpl.Model.Name),
			Kind:       tpl.Kind,
			Model:      tpl.Model,
			Tasks:      tpl.Tasks,
			LocalBatch: tpl.LocalBatch,
			Iterations: tpl.Iterations,
			Port:       portFor(tpl.Kind, i),
		}
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		arrivals[i] = OpenArrival{At: times[i], Spec: spec}
	}
	return arrivals, nil
}

// OpenWorldMix is the default open-world job mix: PS and collective
// jobs in one stream, small updates (DCGAN, ResNet-56) against
// communication elephants (AlexNet ring), plus a tree all-reduce for
// the latency-bound pattern. Every job spans 3 tasks so the mix fits
// the 12-host leaf-spine sweep cluster with several jobs resident.
func OpenWorldMix(iters int) []JobTemplate {
	if iters < 1 {
		iters = 1
	}
	return []JobTemplate{
		{Kind: KindPS, Model: dl.DCGAN, Tasks: 3, LocalBatch: 4, Iterations: iters, Weight: 0.3},
		{Kind: KindPS, Model: dl.ResNet56, Tasks: 3, LocalBatch: 4, Iterations: 2 * iters, Weight: 0.3},
		{Kind: KindRing, Model: dl.AlexNet, Tasks: 3, LocalBatch: 1, Iterations: iters, Weight: 0.25},
		{Kind: KindTree, Model: dl.ResNet50, Tasks: 3, LocalBatch: 1, Iterations: iters, Weight: 0.15},
	}
}

// PSOnlyMix is the open-world mix restricted to parameter-server jobs.
func PSOnlyMix(iters int) []JobTemplate {
	if iters < 1 {
		iters = 1
	}
	return []JobTemplate{
		{Kind: KindPS, Model: dl.DCGAN, Tasks: 3, LocalBatch: 4, Iterations: iters, Weight: 0.4},
		{Kind: KindPS, Model: dl.ResNet56, Tasks: 3, LocalBatch: 4, Iterations: 2 * iters, Weight: 0.4},
		{Kind: KindPS, Model: dl.InceptionV3, Tasks: 3, LocalBatch: 2, Iterations: iters, Weight: 0.2},
	}
}

// CollectiveOnlyMix is the open-world mix restricted to collectives.
func CollectiveOnlyMix(iters int) []JobTemplate {
	if iters < 1 {
		iters = 1
	}
	return []JobTemplate{
		{Kind: KindRing, Model: dl.AlexNet, Tasks: 3, LocalBatch: 1, Iterations: iters, Weight: 0.4},
		{Kind: KindRing, Model: dl.ResNet50, Tasks: 3, LocalBatch: 1, Iterations: iters, Weight: 0.4},
		{Kind: KindTree, Model: dl.ResNet50, Tasks: 3, LocalBatch: 1, Iterations: iters, Weight: 0.2},
	}
}

// NamedMix resolves a mix name from the CLI (-mix flag): "mixed"
// (default), "ps" or "collective".
func NamedMix(name string, iters int) ([]JobTemplate, error) {
	switch name {
	case "", "mixed":
		return OpenWorldMix(iters), nil
	case "ps":
		return PSOnlyMix(iters), nil
	case "collective":
		return CollectiveOnlyMix(iters), nil
	}
	return nil, fmt.Errorf("workload: unknown mix %q (want mixed, ps or collective)", name)
}

// TwoTierSpeeds builds a deterministic heterogeneous speed-factor
// vector: every slowEvery-th host (ids slowEvery-1, 2*slowEvery-1, ...)
// runs at slowFactor, the rest at 1.0. Deterministic rather than drawn,
// so heterogeneous-vs-homogeneous comparisons differ only in hardware,
// never in random layout.
func TwoTierSpeeds(hosts, slowEvery int, slowFactor float64) []float64 {
	if hosts <= 0 {
		return nil
	}
	speeds := make([]float64, hosts)
	for i := range speeds {
		speeds[i] = 1
		if slowEvery > 0 && slowFactor > 0 && (i+1)%slowEvery == 0 {
			speeds[i] = slowFactor
		}
	}
	return speeds
}
