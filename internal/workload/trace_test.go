package workload

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestParseTraceExample(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader(ExampleTraceCSV))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if len(tr.Entries) != 4 {
		t.Fatalf("got %d entries, want 4", len(tr.Entries))
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	e := tr.Entries[1]
	if e.AtSec != 1.2 || e.Kind != KindRing || e.ModelName != "alexnet" ||
		e.Tasks != 3 || e.LocalBatch != 1 || e.Iterations != 10 {
		t.Errorf("entry 1 parsed wrong: %+v", e)
	}
	times, err := tr.Times(4, sim.NewRNG(1))
	if err != nil {
		t.Fatalf("Times: %v", err)
	}
	want := []float64{0.5, 1.2, 3.0, 7.5}
	for i, at := range times {
		if at != want[i] {
			t.Errorf("time %d = %g, want %g", i, at, want[i])
		}
	}
}

// Headerless traces parse too: the header row is optional.
func TestParseTraceHeaderless(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader("0.5,ps,resnet56,3,4,20\n1.0,ring,alexnet,3,1,10\n"))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if len(tr.Entries) != 2 || tr.Validate() != nil {
		t.Fatalf("headerless trace parsed wrong: %+v", tr.Entries)
	}
}

func TestTraceValidateEmpty(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader("# only comments\nat_sec,kind,model,tasks,local_batch,iterations\n"))
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if err := tr.Validate(); err == nil {
		t.Error("Validate accepted an empty trace")
	}
	var nilTrace *Trace
	if err := nilTrace.Validate(); err == nil {
		t.Error("Validate accepted a nil trace")
	}
}

func TestTraceValidateOutOfOrder(t *testing.T) {
	tr := &Trace{Entries: []TraceEntry{
		{AtSec: 2, Kind: KindPS, ModelName: "resnet32", Tasks: 3, LocalBatch: 4, Iterations: 5},
		{AtSec: 1, Kind: KindPS, ModelName: "resnet32", Tasks: 3, LocalBatch: 4, Iterations: 5},
	}}
	err := tr.Validate()
	if err == nil {
		t.Fatal("Validate accepted out-of-order timestamps")
	}
	if !strings.Contains(err.Error(), "out-of-order") {
		t.Errorf("error %q does not name the out-of-order timestamp", err)
	}
}

func TestTraceValidateUnknownModel(t *testing.T) {
	tr := &Trace{Entries: []TraceEntry{
		{AtSec: 0, Kind: KindPS, ModelName: "resnet999", Tasks: 3, LocalBatch: 4, Iterations: 5},
	}}
	err := tr.Validate()
	if err == nil {
		t.Fatal("Validate accepted an unknown model name")
	}
	if !strings.Contains(err.Error(), "resnet999") {
		t.Errorf("error %q does not name the unknown model", err)
	}
}

func TestTraceValidateBadEntries(t *testing.T) {
	base := TraceEntry{AtSec: 0, Kind: KindPS, ModelName: "resnet32", Tasks: 3, LocalBatch: 4, Iterations: 5}
	mutate := map[string]func(*TraceEntry){
		"unknown kind":  func(e *TraceEntry) { e.Kind = "mesh" },
		"negative time": func(e *TraceEntry) { e.AtSec = -1 },
		"zero tasks":    func(e *TraceEntry) { e.Tasks = 0 },
		"ring one rank": func(e *TraceEntry) { e.Kind = KindRing; e.Tasks = 1 },
		"zero batch":    func(e *TraceEntry) { e.LocalBatch = 0 },
		"zero iters":    func(e *TraceEntry) { e.Iterations = 0 },
	}
	for name, f := range mutate {
		e := base
		f(&e)
		if err := (&Trace{Entries: []TraceEntry{e}}).Validate(); err == nil {
			t.Errorf("Validate accepted %s", name)
		}
	}
}

func TestParseTraceSyntaxErrors(t *testing.T) {
	for name, body := range map[string]string{
		"bad float":   "abc,ps,resnet32,3,4,5\n",
		"bad int":     "1.0,ps,resnet32,x,4,5\n",
		"wrong width": "1.0,ps,resnet32,3,4\n",
	} {
		if _, err := ParseTrace(strings.NewReader(body)); err == nil {
			t.Errorf("ParseTrace accepted %s", name)
		}
	}
}

func TestTraceTimesBounds(t *testing.T) {
	tr := DemoTrace(5)
	if err := tr.Validate(); err != nil {
		t.Fatalf("DemoTrace invalid: %v", err)
	}
	if _, err := tr.Times(len(tr.Entries)+1, sim.NewRNG(1)); err == nil {
		t.Error("Times accepted n beyond the trace length")
	}
}
