package workload

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/dl"
	"repro/internal/scheduler"
)

// Kind is the communication pattern of a unified job spec. It is the
// one switch every layer keys off: lowering picks the runtime
// (dl.JobSpec vs collective.JobSpec), and the cluster-scheduler tier
// charges rack uplinks according to the pattern's traffic matrix.
type Kind string

const (
	// KindPS is a parameter-server job: Tasks workers push gradient
	// updates to one PS host (occupying Tasks+1 hosts in total).
	KindPS Kind = "ps"
	// KindRing is bucketized ring all-reduce across Tasks ranks.
	KindRing Kind = "ring"
	// KindTree is binomial-tree all-reduce across Tasks ranks.
	KindTree Kind = "tree"
)

// ParseKind validates a kind name ("" defaults to PS, the paper's
// workload).
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case "":
		return KindPS, nil
	case KindPS, KindRing, KindTree:
		return Kind(s), nil
	}
	return "", fmt.Errorf("workload: unknown job kind %q (want ps, ring or tree)", s)
}

// Validate reports whether the kind is known.
func (k Kind) Validate() error {
	_, err := ParseKind(string(k))
	return err
}

// Collective reports whether the kind lowers to a collective job.
func (k Kind) Collective() bool { return k == KindRing || k == KindTree }

// JobSpec is the unified, placement-free description of one training
// job — the single job abstraction every workload generator emits and
// every experiment consumes. It deliberately carries no hosts: the
// cluster-scheduler tier (or a legacy flat scheduler) decides placement
// at arrival time, and Lower* stamps the decision into the concrete
// runtime spec.
type JobSpec struct {
	ID   int
	Name string
	// Kind selects the communication pattern (default PS).
	Kind  Kind
	Model dl.Model
	// Tasks is the worker count for PS jobs and the rank count for
	// collectives. A PS job occupies Tasks+1 hosts (the scheduler picks
	// the PS host as Hosts[0]).
	Tasks      int
	LocalBatch int
	// Iterations is the per-worker/per-rank iteration target.
	Iterations int
	// Port is the job's TCP source port — the single observable
	// TensorLights classifies on (PSPort for PS jobs, the collective
	// send port for rings and trees).
	Port int
	// PSGlobalSteps, when positive on a PS job, overrides the global
	// step target (otherwise Tasks*Iterations). The legacy churn
	// workload carries global-step targets that are not multiples of
	// the worker count, so re-expressing it on the unified layer needs
	// the exact value, not a per-worker count.
	PSGlobalSteps int
}

// Validate reports spec errors. It checks everything that can be
// checked before placement; host-count feasibility is the scheduler's
// job.
func (s JobSpec) Validate() error {
	kind, err := ParseKind(string(s.Kind))
	if err != nil {
		return fmt.Errorf("workload: job %d: %w", s.ID, err)
	}
	if err := s.Model.Validate(); err != nil {
		return fmt.Errorf("workload: job %d: %w", s.ID, err)
	}
	minTasks := 1
	if kind.Collective() {
		minTasks = 2
	}
	if s.Tasks < minTasks {
		return fmt.Errorf("workload: job %d (%s) needs >=%d tasks, got %d",
			s.ID, kind, minTasks, s.Tasks)
	}
	if s.LocalBatch < 1 {
		return fmt.Errorf("workload: job %d needs a positive local batch", s.ID)
	}
	if s.Iterations < 1 && !(kind == KindPS && s.PSGlobalSteps > 0) {
		return fmt.Errorf("workload: job %d needs a positive iteration target", s.ID)
	}
	if s.Port <= 0 {
		return fmt.Errorf("workload: job %d needs a positive port", s.ID)
	}
	return nil
}

// kind returns the spec's kind with the default applied.
func (s JobSpec) kind() Kind {
	if s.Kind == "" {
		return KindPS
	}
	return s.Kind
}

// RuntimeID is the job id used at the runtime layers. Collective jobs
// are offset by cluster.CollectiveIDBase so a mixed arrival stream
// never collides PS and collective ids inside shared components
// (TensorLights core, feedback collector, tracer).
func (s JobSpec) RuntimeID() int {
	if s.kind().Collective() {
		return cluster.CollectiveIDBase + s.ID
	}
	return s.ID
}

// SchedReq translates the spec into the cluster-scheduler tier's
// request: the placer needs only the traffic pattern, model footprint
// and task count.
func (s JobSpec) SchedReq() scheduler.JobReq {
	kind := scheduler.KindPS
	if s.kind().Collective() {
		kind = scheduler.KindCollective
	}
	return scheduler.JobReq{
		ID:         s.RuntimeID(),
		Kind:       kind,
		Model:      s.Model,
		Tasks:      s.Tasks,
		LocalBatch: s.LocalBatch,
	}
}

// globalSteps is the PS global-step target implied by the spec.
func (s JobSpec) globalSteps() int {
	if s.PSGlobalSteps > 0 {
		return s.PSGlobalSteps
	}
	return s.Tasks * s.Iterations
}

// LowerPS lowers a PS-kind spec onto a placement: hosts[0] is the PS
// and hosts[1:] are the workers, exactly the layout scheduler.Decision
// hands back for KindPS.
func (s JobSpec) LowerPS(hosts []int) (dl.JobSpec, error) {
	if s.kind() != KindPS {
		return dl.JobSpec{}, fmt.Errorf("workload: job %d is %s, not ps", s.ID, s.kind())
	}
	if err := s.Validate(); err != nil {
		return dl.JobSpec{}, err
	}
	if len(hosts) != s.Tasks+1 {
		return dl.JobSpec{}, fmt.Errorf("workload: job %d needs %d hosts (PS + %d workers), got %d",
			s.ID, s.Tasks+1, s.Tasks, len(hosts))
	}
	workers := append([]int(nil), hosts[1:]...)
	return dl.JobSpec{
		ID:                s.RuntimeID(),
		Name:              s.Name,
		Model:             s.Model,
		NumWorkers:        len(workers),
		LocalBatch:        s.LocalBatch,
		TargetGlobalSteps: s.globalSteps(),
		PSHost:            hosts[0],
		PSPort:            s.Port,
		WorkerHosts:       workers,
	}, nil
}

// LowerCollective lowers a ring/tree-kind spec onto a placement: hosts
// is the rank order (the scheduler already groups same-rack hosts so
// the ring crosses each rack boundary once).
func (s JobSpec) LowerCollective(hosts []int) (collective.JobSpec, error) {
	if !s.kind().Collective() {
		return collective.JobSpec{}, fmt.Errorf("workload: job %d is %s, not a collective", s.ID, s.kind())
	}
	if err := s.Validate(); err != nil {
		return collective.JobSpec{}, err
	}
	if len(hosts) != s.Tasks {
		return collective.JobSpec{}, fmt.Errorf("workload: job %d needs %d ranks, got %d hosts",
			s.ID, s.Tasks, len(hosts))
	}
	algo := collective.Ring
	if s.kind() == KindTree {
		algo = collective.Tree
	}
	return collective.JobSpec{
		ID:               s.RuntimeID(),
		Name:             s.Name,
		Model:            s.Model,
		Algorithm:        algo,
		Hosts:            append([]int(nil), hosts...),
		LocalBatch:       s.LocalBatch,
		TargetIterations: s.Iterations,
		Port:             s.Port,
	}, nil
}
