package workload

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// drawTimes runs a process from a fresh seed.
func drawTimes(t *testing.T, p Process, n int, seed int64) []float64 {
	t.Helper()
	times, err := p.Times(n, sim.NewRNG(seed).Stream("arrivals-test"))
	if err != nil {
		t.Fatalf("%s.Times: %v", p.Name(), err)
	}
	return times
}

// Seeded determinism: for every arrival process, the same seed must
// reproduce the arrival sequence exactly (float-for-float, hence
// byte-for-byte in any CSV export), and a different seed must not.
func TestArrivalProcessesSeededDeterminism(t *testing.T) {
	procs := []Process{
		Poisson{RatePerSec: 0.7},
		Bursty{},
		Bursty{OnRatePerSec: 10, OffRatePerSec: 0.2, MeanOnSec: 1, MeanOffSec: 3},
		DemoTrace(5),
	}
	for _, p := range procs {
		n := 50
		if tr, ok := p.(*Trace); ok {
			n = len(tr.Entries)
		}
		a := drawTimes(t, p, n, 42)
		b := drawTimes(t, p, n, 42)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different sequences", p.Name())
		}
		if _, isTrace := p.(*Trace); !isTrace {
			c := drawTimes(t, p, 50, 43)
			if reflect.DeepEqual(a, c) {
				t.Errorf("%s: different seeds produced identical sequences", p.Name())
			}
		}
		for i, at := range a {
			if math.IsNaN(at) || at < 0 || (i > 0 && at < a[i-1]) {
				t.Fatalf("%s: non-monotone or invalid time %g at %d", p.Name(), at, i)
			}
		}
	}
}

// chiSquareExpo bins samples into k equal-probability bins of the
// exponential distribution with the given mean and returns the
// chi-square statistic (df = k-1).
func chiSquareExpo(samples []float64, mean float64, k int) float64 {
	counts := make([]int, k)
	for _, s := range samples {
		// CDF of Expo(mean) at s.
		u := 1 - math.Exp(-s/mean)
		bin := int(u * float64(k))
		if bin >= k {
			bin = k - 1
		}
		counts[bin]++
	}
	expected := float64(len(samples)) / float64(k)
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	return chi2
}

// The bursty process's on/off dwell times must follow the configured
// exponential means: chi-square over 10 equal-probability bins, df=9,
// p=0.001 critical value 27.88.
func TestBurstyDwellChiSquare(t *testing.T) {
	b := Bursty{OnRatePerSec: 5, OffRatePerSec: 0.1, MeanOnSec: 2, MeanOffSec: 6}
	phases, err := b.Phases(4000, sim.NewRNG(99).Stream("dwell"))
	if err != nil {
		t.Fatal(err)
	}
	var on, off []float64
	for _, ph := range phases {
		if ph.On {
			on = append(on, ph.DurSec)
		} else {
			off = append(off, ph.DurSec)
		}
	}
	if len(on) < 1000 || len(off) < 1000 {
		t.Fatalf("phase split %d on / %d off, want ~2000 each", len(on), len(off))
	}
	const critical = 27.88 // chi-square df=9, p=0.001
	if chi2 := chiSquareExpo(on, b.MeanOnSec, 10); chi2 > critical {
		t.Errorf("on dwell chi-square %.2f exceeds %.2f for mean %g", chi2, critical, b.MeanOnSec)
	}
	if chi2 := chiSquareExpo(off, b.MeanOffSec, 10); chi2 > critical {
		t.Errorf("off dwell chi-square %.2f exceeds %.2f for mean %g", chi2, critical, b.MeanOffSec)
	}
	// Phases alternate starting in the off phase, and stamp their start
	// times contiguously.
	at := 0.0
	for i, ph := range phases {
		if ph.On != (i%2 == 1) {
			t.Fatalf("phase %d: On=%v, want alternation starting off", i, ph.On)
		}
		if math.Abs(ph.StartSec-at) > 1e-9 {
			t.Fatalf("phase %d starts at %g, want %g", i, ph.StartSec, at)
		}
		at += ph.DurSec
	}
}

// A bursty stream's long-run arrival rate must sit between the off and
// on rates — the modulation sanity check.
func TestBurstyRateBetweenPhases(t *testing.T) {
	b := Bursty{OnRatePerSec: 5, OffRatePerSec: 0.1, MeanOnSec: 2, MeanOffSec: 6}
	times := drawTimes(t, b, 3000, 7)
	rate := float64(len(times)) / times[len(times)-1]
	if rate <= b.OffRatePerSec || rate >= b.OnRatePerSec {
		t.Errorf("long-run rate %.3f/s outside (%g, %g)", rate, b.OffRatePerSec, b.OnRatePerSec)
	}
}

func TestPoissonMeanGap(t *testing.T) {
	p := Poisson{RatePerSec: 2}
	times := drawTimes(t, p, 5000, 11)
	mean := times[len(times)-1] / float64(len(times))
	if math.Abs(mean-0.5) > 0.05 {
		t.Errorf("mean inter-arrival %.3f s, want ~0.5 s", mean)
	}
}

func TestArrivalProcessValidation(t *testing.T) {
	if _, err := (Poisson{RatePerSec: -1}).Times(3, sim.NewRNG(1)); err == nil {
		t.Error("Poisson accepted a negative rate")
	}
	if _, err := (Poisson{RatePerSec: math.Inf(1)}).Times(3, sim.NewRNG(1)); err == nil {
		t.Error("Poisson accepted an infinite rate")
	}
	if _, err := (Bursty{MeanOnSec: -2}).Times(3, sim.NewRNG(1)); err == nil {
		t.Error("Bursty accepted a negative dwell mean")
	}
	if _, err := (Bursty{OffRatePerSec: math.NaN()}).Times(3, sim.NewRNG(1)); err == nil {
		t.Error("Bursty accepted a NaN rate")
	}
}

func TestParseProcess(t *testing.T) {
	for name, want := range map[string]string{
		"": "poisson", "poisson": "poisson", "bursty": "bursty",
	} {
		p, err := ParseProcess(name, 1)
		if err != nil {
			t.Fatalf("ParseProcess(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Errorf("ParseProcess(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := ParseProcess("uniform", 1); err == nil {
		t.Error("ParseProcess accepted an unknown process name")
	}
}
