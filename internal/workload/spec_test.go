package workload

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/dl"
	"repro/internal/scheduler"
	"repro/internal/sim"
)

func TestParseKind(t *testing.T) {
	for s, want := range map[string]Kind{
		"": KindPS, "ps": KindPS, "ring": KindRing, "tree": KindTree,
	} {
		k, err := ParseKind(s)
		if err != nil || k != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", s, k, err, want)
		}
	}
	if _, err := ParseKind("mesh"); err == nil {
		t.Error("ParseKind accepted an unknown kind")
	}
}

func TestJobSpecLowerPS(t *testing.T) {
	s := JobSpec{
		ID: 3, Name: "j3", Kind: KindPS, Model: dl.ResNet56,
		Tasks: 3, LocalBatch: 4, Iterations: 10, Port: 5003,
	}
	spec, err := s.LowerPS([]int{7, 1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if spec.ID != 3 || spec.PSHost != 7 || spec.PSPort != 5003 || spec.NumWorkers != 3 {
		t.Errorf("lowered PS spec wrong: %+v", spec)
	}
	if spec.TargetGlobalSteps != 30 {
		t.Errorf("TargetGlobalSteps = %d, want Tasks*Iterations = 30", spec.TargetGlobalSteps)
	}
	if got := spec.WorkerHosts; len(got) != 3 || got[0] != 1 || got[2] != 5 {
		t.Errorf("WorkerHosts = %v, want [1 2 5]", got)
	}
	if err := spec.Validate(); err != nil {
		t.Errorf("lowered spec invalid: %v", err)
	}

	// PSGlobalSteps overrides Tasks*Iterations (the legacy churn path
	// carries exact global targets).
	s.PSGlobalSteps = 6000
	spec, err = s.LowerPS([]int{7, 1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if spec.TargetGlobalSteps != 6000 {
		t.Errorf("TargetGlobalSteps = %d, want override 6000", spec.TargetGlobalSteps)
	}

	if _, err := s.LowerPS([]int{7, 1}); err == nil {
		t.Error("LowerPS accepted the wrong host count")
	}
	if _, err := (JobSpec{Kind: KindRing}).LowerPS([]int{0, 1}); err == nil {
		t.Error("LowerPS accepted a collective spec")
	}
}

func TestJobSpecLowerCollective(t *testing.T) {
	s := JobSpec{
		ID: 2, Name: "ring2", Kind: KindRing, Model: dl.AlexNet,
		Tasks: 3, LocalBatch: 1, Iterations: 8, Port: 7200,
	}
	spec, err := s.LowerCollective([]int{4, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if spec.ID != cluster.CollectiveIDBase+2 {
		t.Errorf("runtime ID = %d, want offset by CollectiveIDBase", spec.ID)
	}
	if spec.Algorithm != collective.Ring || spec.TargetIterations != 8 || spec.Port != 7200 {
		t.Errorf("lowered collective spec wrong: %+v", spec)
	}
	if err := spec.Validate(); err != nil {
		t.Errorf("lowered spec invalid: %v", err)
	}

	s.Kind = KindTree
	spec, err = s.LowerCollective([]int{4, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Algorithm != collective.Tree {
		t.Errorf("tree kind lowered to %q", spec.Algorithm)
	}

	if _, err := s.LowerCollective([]int{4, 5}); err == nil {
		t.Error("LowerCollective accepted the wrong host count")
	}
	if _, err := (JobSpec{Kind: KindPS}).LowerCollective([]int{0, 1}); err == nil {
		t.Error("LowerCollective accepted a PS spec")
	}
}

func TestJobSpecSchedReq(t *testing.T) {
	ps := JobSpec{ID: 1, Kind: KindPS, Model: dl.ResNet32, Tasks: 3, LocalBatch: 4, Iterations: 5, Port: 5001}
	req := ps.SchedReq()
	if req.Kind != scheduler.KindPS || req.ID != 1 || req.Tasks != 3 {
		t.Errorf("PS SchedReq wrong: %+v", req)
	}
	ring := JobSpec{ID: 1, Kind: KindRing, Model: dl.ResNet32, Tasks: 3, LocalBatch: 1, Iterations: 5, Port: 7100}
	req = ring.SchedReq()
	if req.Kind != scheduler.KindCollective || req.ID != cluster.CollectiveIDBase+1 {
		t.Errorf("ring SchedReq wrong: %+v", req)
	}
}

func TestJobSpecValidate(t *testing.T) {
	good := JobSpec{ID: 0, Kind: KindPS, Model: dl.ResNet32, Tasks: 1, LocalBatch: 1, Iterations: 1, Port: 5000}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := map[string]JobSpec{
		"unknown kind": {Kind: "mesh", Model: dl.ResNet32, Tasks: 2, LocalBatch: 1, Iterations: 1, Port: 1},
		"no model":     {Kind: KindPS, Tasks: 1, LocalBatch: 1, Iterations: 1, Port: 1},
		"ring 1 rank":  {Kind: KindRing, Model: dl.ResNet32, Tasks: 1, LocalBatch: 1, Iterations: 1, Port: 1},
		"no iters":     {Kind: KindRing, Model: dl.ResNet32, Tasks: 2, LocalBatch: 1, Port: 1},
		"no port":      {Kind: KindPS, Model: dl.ResNet32, Tasks: 1, LocalBatch: 1, Iterations: 1},
		"no batch":     {Kind: KindPS, Model: dl.ResNet32, Tasks: 1, Iterations: 1, Port: 1},
	}
	for name, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate accepted %s", name)
		}
	}
	// A PS spec without Iterations but with PSGlobalSteps is complete.
	psOnly := JobSpec{Kind: KindPS, Model: dl.ResNet32, Tasks: 1, LocalBatch: 1, PSGlobalSteps: 100, Port: 1}
	if err := psOnly.Validate(); err != nil {
		t.Errorf("PSGlobalSteps-only spec rejected: %v", err)
	}
}

func TestGenerateOpenDeterministicAndMixed(t *testing.T) {
	gen := func(seed int64) []OpenArrival {
		arr, err := GenerateOpen(OpenConfig{Jobs: 24}, sim.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		return arr
	}
	a, b := gen(5), gen(5)
	for i := range a {
		if a[i].At != b[i].At || a[i].Spec != b[i].Spec {
			t.Fatalf("arrival %d differs across identical seeds", i)
		}
	}
	var ps, coll int
	ports := map[int]bool{}
	for i, arr := range a {
		if err := arr.Spec.Validate(); err != nil {
			t.Fatalf("arrival %d invalid: %v", i, err)
		}
		if i > 0 && arr.At < a[i-1].At {
			t.Fatalf("arrival %d out of order", i)
		}
		if ports[arr.Spec.Port] {
			t.Fatalf("duplicate port %d", arr.Spec.Port)
		}
		ports[arr.Spec.Port] = true
		if arr.Spec.Kind.Collective() {
			coll++
		} else {
			ps++
		}
	}
	if ps == 0 || coll == 0 {
		t.Errorf("default mix produced %d PS and %d collective jobs; want both kinds", ps, coll)
	}
}

func TestGenerateOpenTraceDriven(t *testing.T) {
	tr := DemoTrace(4)
	arr, err := GenerateOpen(OpenConfig{Arrivals: tr}, sim.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != len(tr.Entries) {
		t.Fatalf("got %d arrivals, want the whole trace (%d)", len(arr), len(tr.Entries))
	}
	for i, a := range arr {
		e := tr.Entries[i]
		if a.At != e.AtSec || string(a.Spec.Kind) != string(e.Kind) || a.Spec.Model.Name != e.ModelName {
			t.Errorf("arrival %d does not replay entry: %+v vs %+v", i, a, e)
		}
	}
}

func TestGenerateOpenErrors(t *testing.T) {
	if _, err := GenerateOpen(OpenConfig{
		Mix: []JobTemplate{{Kind: KindPS, Model: dl.ResNet32, Tasks: 1, LocalBatch: 1, Iterations: 1, Weight: 0}},
	}, sim.NewRNG(1)); err == nil {
		t.Error("GenerateOpen accepted a zero-weight template")
	}
	if _, err := GenerateOpen(OpenConfig{
		Mix: []JobTemplate{{Kind: KindRing, Model: dl.ResNet32, Tasks: 2, LocalBatch: 1, Weight: 1}},
	}, sim.NewRNG(1)); err == nil {
		t.Error("GenerateOpen accepted a template without iterations")
	}
	if _, err := GenerateOpen(OpenConfig{Arrivals: Poisson{RatePerSec: -1}}, sim.NewRNG(1)); err == nil {
		t.Error("GenerateOpen accepted an invalid arrival process")
	}
}

func TestNamedMix(t *testing.T) {
	for _, name := range []string{"", "mixed", "ps", "collective"} {
		mix, err := NamedMix(name, 10)
		if err != nil || len(mix) == 0 {
			t.Errorf("NamedMix(%q): %v", name, err)
		}
	}
	if _, err := NamedMix("chaos", 10); err == nil {
		t.Error("NamedMix accepted an unknown name")
	}
	for _, tpl := range PSOnlyMix(10) {
		if tpl.Kind.Collective() {
			t.Error("PSOnlyMix contains a collective template")
		}
	}
	for _, tpl := range CollectiveOnlyMix(10) {
		if !tpl.Kind.Collective() {
			t.Error("CollectiveOnlyMix contains a PS template")
		}
	}
}

func TestTwoTierSpeeds(t *testing.T) {
	s := TwoTierSpeeds(12, 3, 0.6)
	if len(s) != 12 {
		t.Fatalf("got %d speeds, want 12", len(s))
	}
	slow := 0
	for i, v := range s {
		want := 1.0
		if (i+1)%3 == 0 {
			want = 0.6
		}
		if v != want {
			t.Errorf("host %d speed %g, want %g", i, v, want)
		}
		if v != 1 {
			slow++
		}
	}
	if slow != 4 {
		t.Errorf("%d slow hosts, want 4", slow)
	}
	for i, v := range TwoTierSpeeds(4, 0, 0.5) {
		if v != 1 {
			t.Errorf("slowEvery=0 host %d speed %g, want 1", i, v)
		}
	}
}
