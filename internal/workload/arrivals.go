package workload

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Process is a pluggable arrival process: given a seeded RNG stream it
// produces n monotonically non-decreasing arrival times. Every
// implementation is deterministic for a given stream — the sweep
// determinism contract (sequential vs parallel byte-identical CSVs)
// depends on it.
type Process interface {
	// Name identifies the process in CSV exports and CLI flags.
	Name() string
	// Times returns the first n arrival times in seconds.
	Times(n int, rng *sim.RNG) ([]float64, error)
}

// ParseProcess builds a named arrival process with its default
// parameters ("" and "poisson" → Poisson at ratePerSec; "bursty" → the
// default Markov-modulated process with its on-rate scaled to
// ratePerSec). Trace-driven replay is constructed from a Trace value
// directly, not by name, because it needs the recorded entries.
func ParseProcess(name string, ratePerSec float64) (Process, error) {
	if ratePerSec <= 0 {
		ratePerSec = 1
	}
	switch name {
	case "", "poisson":
		return Poisson{RatePerSec: ratePerSec}, nil
	case "bursty":
		return Bursty{OnRatePerSec: 4 * ratePerSec}, nil
	}
	return nil, fmt.Errorf("workload: unknown arrival process %q (want poisson, bursty or trace)", name)
}

// Poisson is the classic memoryless arrival process: i.i.d.
// exponential inter-arrival gaps at RatePerSec.
type Poisson struct {
	RatePerSec float64
}

// Name implements Process.
func (p Poisson) Name() string { return "poisson" }

// Validate reports configuration errors.
func (p Poisson) Validate() error {
	if !(p.RatePerSec > 0) || math.IsInf(p.RatePerSec, 1) {
		return fmt.Errorf("workload: poisson rate %g must be positive and finite", p.RatePerSec)
	}
	return nil
}

// Times implements Process.
func (p Poisson) Times(n int, rng *sim.RNG) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	times := make([]float64, 0, n)
	at := 0.0
	for len(times) < n {
		at += rng.Expo(1 / p.RatePerSec)
		times = append(times, at)
	}
	return times, nil
}

// Bursty is a two-state Markov-modulated Poisson process (MMPP): the
// process alternates between an "on" phase with a high arrival rate and
// an "off" phase with a low one, with exponentially distributed phase
// dwell times. This is the canonical model for bursty cluster traces —
// submission storms (a hyperparameter sweep landing, a nightly
// pipeline) separated by quiet stretches — and the regime where
// TensorLights' reconfiguration on every arrival is stressed hardest.
type Bursty struct {
	// OnRatePerSec / OffRatePerSec are the arrival rates inside each
	// phase (defaults 4/s and 0.05/s).
	OnRatePerSec  float64
	OffRatePerSec float64
	// MeanOnSec / MeanOffSec are the mean phase dwell times (defaults
	// 2 s on, 6 s off). Dwells are exponential, making the phase
	// process Markov.
	MeanOnSec  float64
	MeanOffSec float64
}

func (b Bursty) withDefaults() Bursty {
	if b.OnRatePerSec == 0 {
		b.OnRatePerSec = 4
	}
	if b.OffRatePerSec == 0 {
		b.OffRatePerSec = 0.05
	}
	if b.MeanOnSec == 0 {
		b.MeanOnSec = 2
	}
	if b.MeanOffSec == 0 {
		b.MeanOffSec = 6
	}
	return b
}

// Name implements Process.
func (b Bursty) Name() string { return "bursty" }

// Validate reports configuration errors (after defaulting).
func (b Bursty) Validate() error {
	d := b.withDefaults()
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"OnRatePerSec", d.OnRatePerSec},
		{"OffRatePerSec", d.OffRatePerSec},
		{"MeanOnSec", d.MeanOnSec},
		{"MeanOffSec", d.MeanOffSec},
	} {
		if !(v.val > 0) || math.IsInf(v.val, 1) {
			return fmt.Errorf("workload: bursty %s %g must be positive and finite", v.name, v.val)
		}
	}
	return nil
}

// Phase is one dwell of the modulating Markov chain.
type Phase struct {
	On       bool
	StartSec float64
	DurSec   float64
}

// Phases draws the first n phases of the modulating chain (starting in
// the off phase, like Times). Exposed so tests can check the dwell-time
// distributions against the configured means without re-implementing
// the draw order.
func (b Bursty) Phases(n int, rng *sim.RNG) ([]Phase, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	d := b.withDefaults()
	phases := make([]Phase, 0, n)
	at, on := 0.0, false
	for len(phases) < n {
		mean := d.MeanOffSec
		if on {
			mean = d.MeanOnSec
		}
		dur := rng.Expo(mean)
		phases = append(phases, Phase{On: on, StartSec: at, DurSec: dur})
		at += dur
		on = !on
	}
	return phases, nil
}

// Times implements Process. The chain starts in the off phase at t=0.
// Each candidate gap is exponential at the current phase's rate; a gap
// that would cross the phase boundary is discarded and redrawn in the
// next phase — statistically exact for an MMPP because the exponential
// is memoryless, and deterministic because the draw order (phase dwell,
// then gaps within the phase) is fixed.
func (b Bursty) Times(n int, rng *sim.RNG) ([]float64, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	d := b.withDefaults()
	times := make([]float64, 0, n)
	at, on := 0.0, false
	phaseEnd := rng.Expo(d.MeanOffSec)
	for len(times) < n {
		rate := d.OffRatePerSec
		if on {
			rate = d.OnRatePerSec
		}
		gap := rng.Expo(1 / rate)
		if at+gap >= phaseEnd {
			// The candidate lands past the phase boundary: jump to the
			// boundary, flip phase, and redraw at the new rate.
			at = phaseEnd
			on = !on
			mean := d.MeanOffSec
			if on {
				mean = d.MeanOnSec
			}
			phaseEnd += rng.Expo(mean)
			continue
		}
		at += gap
		times = append(times, at)
	}
	return times, nil
}
