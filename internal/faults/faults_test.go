package faults

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dl"
	"repro/internal/simnet"
	"repro/internal/trace"
)

func testbed(seed int64) *cluster.Testbed {
	return cluster.NewTestbed(cluster.Config{Hosts: 4, Seed: seed})
}

// jobSpec places a 3-worker ResNet32 job with PS on host 0 and crash
// recovery enabled.
func jobSpec(id, steps int) dl.JobSpec {
	return dl.JobSpec{
		ID: id, Name: fmt.Sprintf("j%d", id), Model: dl.ResNet32,
		NumWorkers: 3, LocalBatch: 4, TargetGlobalSteps: steps,
		PSHost: 0, PSPort: 5000 + id, WorkerHosts: []int{1, 2, 3},
		Recovery: dl.RecoveryConfig{
			DetectTimeoutSec:  0.05,
			RestartBackoffSec: 0.02,
			MaxRestarts:       3,
		},
	}
}

// launch starts the specs and, when ctl is non-nil, wires arrivals and
// departures the way internal/sweep does.
func launch(t *testing.T, tb *cluster.Testbed, specs []dl.JobSpec, ctl *core.Controller) []*dl.Job {
	t.Helper()
	jobs, err := tb.Launch(specs, 0.01, func(j *dl.Job) {
		if ctl != nil {
			ctl.JobArrived(core.JobInfo{
				ID: j.Spec.ID, PSHost: j.Spec.PSHost, PSPort: j.Spec.PSPort,
				UpdateBytes: j.Spec.Model.UpdateBytes(),
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		j := j
		if ctl != nil {
			j.OnFinish = func(*dl.Job) { ctl.JobDeparted(j.Spec.ID) }
			j.OnFail = func(*dl.Job) { ctl.JobDeparted(j.Spec.ID) }
		}
	}
	return jobs
}

// soloJCT measures the fault-free JCT of one job so fault windows below
// can be placed mid-run.
func soloJCT(t *testing.T, steps int) float64 {
	t.Helper()
	tb := testbed(7)
	jobs := launch(t, tb, []dl.JobSpec{jobSpec(0, steps)}, nil)
	tb.RunToCompletion(jobs, 0)
	if !jobs[0].Done() {
		t.Fatal("reference job did not finish")
	}
	return jobs[0].JCT()
}

func TestLinkFlapDelaysButCompletes(t *testing.T) {
	ref := soloJCT(t, 10)
	tb := testbed(7)
	jobs := launch(t, tb, []dl.JobSpec{jobSpec(0, 10)}, nil)
	inj := New(tb.K, tb.RNG, tb.Fabric, nil)
	buf := &trace.Buffer{}
	inj.Tracer = buf
	// Take the PS host's NIC down mid-run for a quarter of the run.
	inj.LinkFlap(0, 0.3*ref, 0.25*ref)
	tb.RunToCompletion(jobs, 0)
	if !jobs[0].Done() {
		t.Fatal("job did not survive the link flap")
	}
	if jobs[0].JCT() <= ref {
		t.Fatalf("flap did not delay the job: JCT %.3f <= fault-free %.3f", jobs[0].JCT(), ref)
	}
	if tb.Fabric.Host(0).NICDown() {
		t.Fatal("NIC still down after the flap window")
	}
	var down, up int
	for _, e := range buf.Events() {
		switch e.Kind {
		case trace.KindLinkDown:
			down++
		case trace.KindLinkUp:
			up++
		}
	}
	if down != 1 || up != 1 {
		t.Fatalf("trace has %d link_down / %d link_up events, want 1/1", down, up)
	}
	if inj.Counts().LinkFlaps != 1 {
		t.Fatalf("counts %+v", inj.Counts())
	}
}

func TestDropWindowRetransmitsAndCompletes(t *testing.T) {
	ref := soloJCT(t, 10)
	tb := testbed(7)
	jobs := launch(t, tb, []dl.JobSpec{jobSpec(0, 10)}, nil)
	inj := New(tb.K, tb.RNG, tb.Fabric, nil)
	// Lossy for the first half of the fault-free JCT; the job outlives
	// the window, so its end event fires before the run stops.
	inj.DropWindow(0, 0, 0.5*ref, 0.2)
	tb.RunToCompletion(jobs, 0)
	if !jobs[0].Done() {
		t.Fatal("job did not survive chunk loss")
	}
	if tb.Fabric.DroppedChunks() == 0 {
		t.Fatal("no chunks dropped despite 20% loss window")
	}
	if got := tb.Fabric.Host(0).ChunkDropProb(); got != 0 {
		t.Fatalf("drop probability %g still set after window", got)
	}
	if jobs[0].JCT() <= ref {
		t.Fatalf("loss did not delay the job: JCT %.3f <= fault-free %.3f", jobs[0].JCT(), ref)
	}
}

func TestRateDegradeWindowsNest(t *testing.T) {
	tb := testbed(1)
	inj := New(tb.K, tb.RNG, tb.Fabric, nil)
	inj.RateDegrade(0, 1, 2, 0.5)  // covers [1,3)
	inj.RateDegrade(0, 2, 2, 0.25) // covers [2,4)
	probe := func(at, want float64) {
		tb.K.Schedule(at, func() {
			if got := tb.Fabric.Host(0).Egress.RateFactor(); got != want {
				t.Errorf("rate factor at t=%.1f is %g, want %g", at, got, want)
			}
		})
	}
	probe(0.5, 1)
	probe(1.5, 0.5)
	probe(2.5, 0.25)
	probe(3.5, 0.25) // first window ended, second still open
	probe(4.5, 1)    // all windows closed: full rate restored
	tb.K.RunUntil(5)
	if inj.Counts().RateDegrades != 2 {
		t.Fatalf("counts %+v", inj.Counts())
	}
}

func TestOverlappingLinkFlapsNest(t *testing.T) {
	tb := testbed(1)
	inj := New(tb.K, tb.RNG, tb.Fabric, nil)
	inj.LinkFlap(0, 1, 2) // [1,3)
	inj.LinkFlap(0, 2, 2) // [2,4)
	probe := func(at float64, want bool) {
		tb.K.Schedule(at, func() {
			if got := tb.Fabric.Host(0).NICDown(); got != want {
				t.Errorf("NIC down at t=%.1f is %v, want %v", at, got, want)
			}
		})
	}
	probe(0.5, false)
	probe(1.5, true)
	probe(3.5, true) // first flap ended; second still holds the NIC down
	probe(4.5, false)
	tb.K.RunUntil(5)
}

func TestCrashPlanRestartsWorker(t *testing.T) {
	ref := soloJCT(t, 10)
	tb := testbed(7)
	jobs := launch(t, tb, []dl.JobSpec{jobSpec(0, 10)}, nil)
	inj := New(tb.K, tb.RNG, tb.Fabric, nil)
	plan := Plan{Crashes: []CrashPlan{{Job: 0, Worker: 1, AtSec: 0.4 * ref}}}
	if err := inj.Apply(plan, nil, map[int]*dl.Job{0: jobs[0]}, nil); err != nil {
		t.Fatal(err)
	}
	tb.RunToCompletion(jobs, 0)
	if !jobs[0].Done() {
		t.Fatal("job did not recover from the worker crash")
	}
	if jobs[0].Restarts() != 1 {
		t.Fatalf("restarts %d, want 1", jobs[0].Restarts())
	}
	if jobs[0].DegradedWorkers() != 0 {
		t.Fatal("crash within restart budget must not degrade the job")
	}
	if inj.Counts().Crashes != 1 {
		t.Fatalf("counts %+v", inj.Counts())
	}
}

func TestTCOutageFallsBackThenReconcileRestores(t *testing.T) {
	// Two PSes contend on host 0, so TensorLights wants priority bands
	// there. A tc outage spans the jobs' arrival: the initial applies
	// fail, the controller retries, falls back to FIFO, and — once the
	// outage clears — the reconcile loop reinstalls the bands.
	run := func(outage bool) (*cluster.Testbed, *core.Controller, []*dl.Job, *Injector) {
		tb := testbed(7)
		ctl := core.New(tb.K, tb.TC, tb.RNG, core.Config{
			Policy: core.PolicyOne, RetryBackoffSec: 0.05, MaxExecRetries: 2,
			ReconcileIntervalSec: 0.5,
		})
		inj := New(tb.K, tb.RNG, tb.Fabric, tb.TC)
		if outage {
			inj.TCOutage(0, 0, 1.0)
		}
		jobs := launch(t, tb, []dl.JobSpec{jobSpec(0, 30), jobSpec(1, 30)}, ctl)
		return tb, ctl, jobs, inj
	}

	// Reference: same seed, no fault. Capture the healthy tc state at
	// the probe time.
	tbRef, _, _, _ := run(false)
	var wantFP string
	tbRef.K.Schedule(2.5, func() { wantFP = tbRef.TC.Fingerprint(0) })
	tbRef.K.RunUntil(2.6)
	if wantFP == "" || tbRef.Fabric.Host(0).Egress.Qdisc().Kind() != "htb" {
		t.Fatalf("reference run has no htb state at probe time (fp %q)", wantFP)
	}

	tb, ctl, jobs, inj := run(true)
	// During the outage, after the retry budget burns down, the host
	// must be degraded to FIFO rather than stuck with partial state.
	tb.K.Schedule(0.8, func() {
		if got := ctl.FallbackHosts(); len(got) != 1 || got[0] != 0 {
			t.Errorf("fallback hosts during outage: %v, want [0]", got)
		}
		if kind := tb.Fabric.Host(0).Egress.Qdisc().Kind(); kind != "pfifo" {
			t.Errorf("fallback host serving %s, want pfifo", kind)
		}
	})
	// After the outage clears, reconcile reinstalls the exact state a
	// fault-free run would have.
	tb.K.Schedule(2.5, func() {
		if got := tb.TC.Fingerprint(0); got != wantFP {
			t.Errorf("reconciled state %q != fault-free state %q", got, wantFP)
		}
		if len(ctl.FallbackHosts()) != 0 {
			t.Errorf("host still in fallback after outage cleared")
		}
	})
	tb.RunToCompletion(jobs, 0)
	for _, j := range jobs {
		if !j.Done() {
			t.Fatalf("job %d did not finish", j.Spec.ID)
		}
	}
	if ctl.Stats().Fallbacks == 0 || ctl.Stats().Repairs == 0 {
		t.Fatalf("stats %+v: outage did not exercise fallback+repair", ctl.Stats())
	}
	if inj.Counts().TCOutages != 1 {
		t.Fatalf("counts %+v", inj.Counts())
	}
}

// fullScenario drives every fault kind at once under TLs-RR and returns
// everything observable, for the determinism check.
func fullScenario(t *testing.T) string {
	t.Helper()
	tb := testbed(42)
	ctl := core.New(tb.K, tb.TC, tb.RNG, core.Config{
		Policy: core.PolicyRR, IntervalSec: 1,
		RetryBackoffSec: 0.05, MaxExecRetries: 2, ReconcileIntervalSec: 0.5,
	})
	inj := New(tb.K, tb.RNG, tb.Fabric, tb.TC)
	jobs := launch(t, tb, []dl.JobSpec{jobSpec(0, 15), jobSpec(1, 15)}, ctl)
	plan := Plan{
		FlapPSHosts:     true,
		FlapFirstAtSec:  1,
		FlapEverySec:    2.5,
		FlapDurationSec: 0.3,
		FlapJitterSec:   0.2,
		DropProb:        0.05,
		TCOutage:        true,
		HorizonSec:      8,
		Crashes:         []CrashPlan{{Job: 0, Worker: 2, AtSec: 2.0}},
	}
	if err := inj.Apply(plan, []int{0, 0}, map[int]*dl.Job{0: jobs[0], 1: jobs[1]}, nil); err != nil {
		t.Fatal(err)
	}
	tb.RunToCompletion(jobs, 0)
	for _, j := range jobs {
		if !j.Done() {
			t.Fatalf("job %d did not survive the combined fault scenario", j.Spec.ID)
		}
	}
	return fmt.Sprintf("jct0=%x jct1=%x restarts=%d counts=%+v dropped=%d stats=%+v execs=%d errs=%d",
		jobs[0].JCT(), jobs[1].JCT(), jobs[0].Restarts(), inj.Counts(),
		tb.Fabric.DroppedChunks(), ctl.Stats(), tb.TC.ExecCount(), tb.TC.ExecErrors())
}

func TestCombinedScenarioIsDeterministic(t *testing.T) {
	a := fullScenario(t)
	b := fullScenario(t)
	if a != b {
		t.Fatalf("same-seed fault runs diverged:\n  %s\n  %s", a, b)
	}
	if a == "" {
		t.Fatal("empty scenario result")
	}
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Plan
	}{
		{"negative first", Plan{FlapFirstAtSec: -1}},
		{"every without duration", Plan{FlapEverySec: 1}},
		{"duration without every", Plan{FlapDurationSec: 1}},
		{"no horizon", Plan{FlapPSHosts: true, FlapEverySec: 1, FlapDurationSec: 0.1}},
		{"degrade factor 1", Plan{DegradeFactor: 1}},
		{"drop prob 1", Plan{DropProb: 1}},
		{"negative crash time", Plan{Crashes: []CrashPlan{{AtSec: -1}}}},
		{"negative crash worker", Plan{Crashes: []CrashPlan{{Worker: -1}}}},
	}
	for _, c := range cases {
		if c.p.Validate() == nil {
			t.Errorf("%s: invalid plan accepted", c.name)
		}
	}
	if err := (Plan{}).Validate(); err != nil {
		t.Errorf("zero plan rejected: %v", err)
	}
	if (Plan{}).Active() {
		t.Error("zero plan claims to be active")
	}
	ok := Plan{FlapPSHosts: true, FlapEverySec: 1, FlapDurationSec: 0.1, HorizonSec: 5}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if !ok.Active() {
		t.Error("flapping plan claims to be inactive")
	}
}

func TestApplyRejectsBadTargets(t *testing.T) {
	tb := testbed(1)
	inj := New(tb.K, tb.RNG, tb.Fabric, nil)
	if err := inj.Apply(Plan{Crashes: []CrashPlan{{Job: 9}}}, nil, nil, nil); err == nil {
		t.Error("unknown crash job accepted")
	}
	jobs := launch(t, tb, []dl.JobSpec{jobSpec(0, 10)}, nil)
	if err := inj.Apply(Plan{Crashes: []CrashPlan{{Job: 0, Worker: 99}}}, nil,
		map[int]*dl.Job{0: jobs[0]}, nil); err == nil {
		t.Error("out-of-range crash worker accepted")
	}
	if err := inj.Apply(Plan{
		FlapPSHosts: true, FlapEverySec: 1, FlapDurationSec: 0.1,
		HorizonSec: 2, TCOutage: true,
	}, []int{0}, nil, nil); err == nil {
		t.Error("tc outage accepted without a tc controller")
	}
	if err := inj.Apply(Plan{PeerCrashes: []CrashPlan{{Job: 1000}}},
		nil, nil, nil); err == nil {
		t.Error("unknown peer-crash job accepted")
	}
}

// leafSpineTestbed builds a 2-rack, 8-host testbed so core-link faults
// have links to target.
func leafSpineTestbed(seed int64) *cluster.Testbed {
	return cluster.NewTestbed(cluster.Config{
		Hosts: 8,
		Net: simnet.Config{Topology: simnet.TopologyConfig{
			Kind: simnet.TopologyLeafSpine, Racks: 2, UplinksPerLeaf: 1,
		}},
		Seed: seed,
	})
}

func TestCoreLinkFlapDelaysCrossRackJob(t *testing.T) {
	run := func(plan Plan) float64 {
		tb := leafSpineTestbed(7)
		// PS in rack 0, workers in rack 1: all traffic crosses the core.
		spec := dl.JobSpec{
			ID: 0, Name: "j0", Model: dl.ResNet32,
			NumWorkers: 3, LocalBatch: 4, TargetGlobalSteps: 30,
			PSHost: 0, PSPort: 5000, WorkerHosts: []int{5, 6, 7},
		}
		jobs := launch(t, tb, []dl.JobSpec{spec}, nil)
		inj := New(tb.K, tb.RNG, tb.Fabric, nil)
		if err := inj.Apply(plan, nil, map[int]*dl.Job{0: jobs[0]}, nil); err != nil {
			t.Fatal(err)
		}
		tb.RunToCompletion(jobs, 0)
		if !jobs[0].Done() {
			t.Fatal("job did not finish")
		}
		return jobs[0].JCT()
	}
	clean := run(Plan{})
	// Flap both directions' links mid-run for 1s.
	faulty := run(Plan{CoreLinks: []CoreLinkPlan{
		{Link: 0, AtSec: clean / 2, DurSec: 1},
		{Link: 1, AtSec: clean / 2, DurSec: 1},
		{Link: 2, AtSec: clean / 2, DurSec: 1},
		{Link: 3, AtSec: clean / 2, DurSec: 1},
	}})
	if faulty < clean+0.9 {
		t.Fatalf("core flap JCT %v vs clean %v: flap had no effect", faulty, clean)
	}
	// Degrade is milder than a full flap but still slows the job.
	degraded := run(Plan{CoreLinks: []CoreLinkPlan{
		{Link: 0, AtSec: clean / 2, DurSec: 1, Factor: 0.1},
		{Link: 1, AtSec: clean / 2, DurSec: 1, Factor: 0.1},
	}})
	if degraded <= clean {
		t.Fatalf("core degrade JCT %v vs clean %v: degrade had no effect", degraded, clean)
	}
}

func TestCoreLinkPlanValidation(t *testing.T) {
	bad := []Plan{
		{CoreLinks: []CoreLinkPlan{{Link: -1, DurSec: 1}}},
		{CoreLinks: []CoreLinkPlan{{Link: 0, AtSec: -1, DurSec: 1}}},
		{CoreLinks: []CoreLinkPlan{{Link: 0}}},
		{CoreLinks: []CoreLinkPlan{{Link: 0, DurSec: 1, Factor: 1}}},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad core-link plan %d accepted", i)
		}
	}
	if !(Plan{CoreLinks: []CoreLinkPlan{{Link: 0, DurSec: 1}}}).Active() {
		t.Error("core-link plan claims to be inactive")
	}
	// Apply rejects link IDs beyond the topology (flat has none).
	tb := testbed(1)
	inj := New(tb.K, tb.RNG, tb.Fabric, nil)
	if err := inj.Apply(Plan{CoreLinks: []CoreLinkPlan{{Link: 0, DurSec: 1}}},
		nil, nil, nil); err == nil {
		t.Error("core-link fault on flat topology accepted")
	}
}

// shardFaultTrace applies one flap-heavy plan on a fresh testbed with
// the given host-ownership filter and returns the resulting trace plus
// fired counts. A nil filter owns everything.
func shardFaultTrace(t *testing.T, own func(int) bool) ([]trace.Event, Counts) {
	t.Helper()
	tb := testbed(11)
	inj := New(tb.K, tb.RNG, tb.Fabric, nil)
	buf := &trace.Buffer{}
	inj.Tracer = buf
	inj.OwnHost = own
	plan := Plan{
		FlapHosts:       []int{0, 1, 2, 3},
		FlapFirstAtSec:  0.01,
		FlapEverySec:    0.05,
		FlapDurationSec: 0.02,
		FlapJitterSec:   0.03,
		HorizonSec:      0.2,
	}
	if err := inj.Apply(plan, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	tb.K.RunUntil(1)
	return buf.Events(), inj.Counts()
}

// TestOwnHostFiltersPartitionSchedule is the sharded-faults contract:
// injectors given complementary ownership filters must, in union,
// reproduce the unfiltered injector's schedule exactly — including the
// jittered window times, which depend on RNG draws being made for
// unowned hosts too.
func TestOwnHostFiltersPartitionSchedule(t *testing.T) {
	all, allCounts := shardFaultTrace(t, nil)
	even, evenCounts := shardFaultTrace(t, func(h int) bool { return h%2 == 0 })
	odd, oddCounts := shardFaultTrace(t, func(h int) bool { return h%2 == 1 })

	merged := trace.MergeCanonical(even, odd)
	want := trace.MergeCanonical(all)
	if !reflect.DeepEqual(merged, want) {
		t.Fatalf("union of filtered schedules differs from unfiltered:\n got %d events %+v\nwant %d events %+v",
			len(merged), merged, len(want), want)
	}
	if got := evenCounts.LinkFlaps + oddCounts.LinkFlaps; got != allCounts.LinkFlaps {
		t.Fatalf("filtered flap counts sum to %d, want %d", got, allCounts.LinkFlaps)
	}
	if len(even) == 0 || len(odd) == 0 {
		t.Fatal("a filter shard scheduled nothing; test is vacuous")
	}
}

// TestFilteredApplySkipsForeignCrashes: with an ownership filter set,
// crash entries naming jobs absent from the maps belong to another
// shard and are skipped, not rejected.
func TestFilteredApplySkipsForeignCrashes(t *testing.T) {
	tb := testbed(7)
	jobs := launch(t, tb, []dl.JobSpec{jobSpec(0, 4)}, nil)
	inj := New(tb.K, tb.RNG, tb.Fabric, nil)
	inj.OwnHost = func(int) bool { return true }
	plan := Plan{Crashes: []CrashPlan{
		{Job: 0, Worker: 1, AtSec: 0.01},
		{Job: 99, Worker: 0, AtSec: 0.01}, // other shard's job
	}}
	if err := inj.Apply(plan, nil, map[int]*dl.Job{0: jobs[0]}, nil); err != nil {
		t.Fatalf("filtered Apply rejected a foreign crash entry: %v", err)
	}
	inj.OwnHost = nil
	if err := inj.Apply(plan, nil, map[int]*dl.Job{0: jobs[0]}, nil); err == nil {
		t.Fatal("unfiltered Apply accepted an unknown job ID")
	}
}
