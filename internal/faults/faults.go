// Package faults is a deterministic, kernel-scheduled fault injector
// for the TensorLights stack. It drives three failure surfaces:
//
//   - the network fabric (internal/simnet): NIC/link flaps, NIC rate
//     degradation, and per-chunk loss windows with sender retransmit;
//   - training jobs (internal/dl): worker task crashes, which the PS
//     detects via its barrier watchdog and heals by restart or
//     degradation;
//   - tc actuation (internal/tc): injected Exec failures, which the
//     TensorLights controller (internal/core) rides out with retries, a
//     FIFO fallback, and its reconcile loop.
//
// Every fault is scheduled on the simulation kernel and all randomness
// comes from a dedicated named RNG stream ("faults"), so a given seed
// produces an identical fault schedule — and identical results — on
// every run, and enabling injection never perturbs the draws of healthy
// components.
package faults

import (
	"fmt"
	"sort"

	"repro/internal/collective"
	"repro/internal/dl"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tc"
	"repro/internal/trace"
)

// Counts tallies faults that actually fired (a scheduled window counts
// when it starts).
type Counts struct {
	LinkFlaps    int
	RateDegrades int
	DropWindows  int
	TCOutages    int
	Crashes      int
	// CoreLinkFaults counts flap/degrade windows opened on fabric core
	// links (leaf uplinks / spine downlinks in a routed topology).
	CoreLinkFaults int
	// PeerCrashes counts collective-rank kills — each one stalls its
	// whole ring until detection and restart.
	PeerCrashes int
}

// Injector schedules faults against one testbed. Construct with New
// before running the kernel; all injection methods may also be called
// mid-run (times in the past are clamped to "now").
type Injector struct {
	k      *sim.Kernel
	rng    *sim.RNG
	fabric *simnet.Fabric
	tcc    *tc.Controller
	// Tracer, when non-nil, receives link_down/link_up events.
	Tracer trace.Tracer

	// OwnHost and OwnLink, when non-nil, restrict which hosts and core
	// links Apply actually schedules faults on — the sharded engine
	// gives every shard's injector the same global plan with an
	// ownership filter. Crucially, Apply makes every RNG draw (flap
	// jitter) for every host in the plan whether owned or not, so each
	// shard replays the identical global schedule and then keeps only
	// its own slice. With a filter set, crash entries naming jobs
	// absent from the maps are skipped instead of rejected (the job
	// lives on another shard).
	OwnHost func(host int) bool
	OwnLink func(link int) bool

	// Per-host window depth counters: overlapping windows of the same
	// kind nest, and the fault clears only when the last window ends.
	linkDepth map[int]int
	rateDepth map[int]int
	dropDepth map[int]int
	tcDepth   map[int]int
	// Core-link counterparts, keyed by link ID.
	coreDownDepth map[int]int
	coreRateDepth map[int]int
	counts        Counts
}

// New creates an injector on the testbed's kernel, fabric and tc layer.
// rng should be the testbed's root RNG; the injector draws from its own
// named stream. tcc may be nil if no tc faults will be injected;
// otherwise New installs the tc exec hook (replacing any prior hook).
func New(k *sim.Kernel, rng *sim.RNG, fabric *simnet.Fabric, tcc *tc.Controller) *Injector {
	in := &Injector{
		k:         k,
		rng:       rng.Stream("faults"),
		fabric:    fabric,
		tcc:       tcc,
		linkDepth:     make(map[int]int),
		rateDepth:     make(map[int]int),
		dropDepth:     make(map[int]int),
		tcDepth:       make(map[int]int),
		coreDownDepth: make(map[int]int),
		coreRateDepth: make(map[int]int),
	}
	if tcc != nil {
		tcc.SetExecHook(func(host int, cmd string) error {
			if in.tcDepth[host] > 0 {
				return fmt.Errorf("faults: tc actuation unavailable on host %d", host)
			}
			return nil
		})
	}
	return in
}

// Counts returns the tally of faults fired so far.
func (in *Injector) Counts() Counts { return in.counts }

func (in *Injector) ownsHost(h int) bool { return in.OwnHost == nil || in.OwnHost(h) }

func (in *Injector) ownsLink(l int) bool { return in.OwnLink == nil || in.OwnLink(l) }

// filtered reports whether any ownership filter is installed — Apply
// then treats the plan as one shard's slice of a global schedule.
func (in *Injector) filtered() bool { return in.OwnHost != nil || in.OwnLink != nil }

// window schedules a start/end pair, clamping a start time in the past
// to the current simulation time.
func (in *Injector) window(at, durSec float64, start, end func()) {
	if durSec <= 0 {
		panic(fmt.Sprintf("faults: window duration %g must be positive", durSec))
	}
	if now := in.k.Now(); at < now {
		at = now
	}
	in.k.Post(at, start)
	in.k.Post(at+durSec, end)
}

func (in *Injector) emit(kind trace.Kind, host int, value float64, detail string) {
	if in.Tracer == nil {
		return
	}
	in.Tracer.Emit(trace.Event{
		At: in.k.Now(), Kind: kind, Job: -1, Host: host, Worker: -1,
		Value: value, Detail: detail,
	})
}

// LinkFlap takes the host's NIC down at `at` for durSec seconds. While
// down, queued and arriving chunks are held (no loss); service resumes
// when the flap ends. Overlapping flaps nest: the NIC comes back only
// when the last window closes.
func (in *Injector) LinkFlap(host int, at, durSec float64) {
	h := in.fabric.Host(host)
	in.window(at, durSec,
		func() {
			in.counts.LinkFlaps++
			in.linkDepth[host]++
			if in.linkDepth[host] == 1 {
				h.SetNICDown(true)
				in.emit(trace.KindLinkDown, host, durSec, "nic down")
			}
		},
		func() {
			in.linkDepth[host]--
			if in.linkDepth[host] == 0 {
				h.SetNICDown(false)
				in.emit(trace.KindLinkUp, host, 0, "nic up")
			}
		})
}

// RateDegrade reduces the host NIC's service rate (both directions) to
// factor (0 < factor < 1) for durSec seconds starting at `at`, modelling
// a NIC auto-negotiated down or a congested uplink. Overlapping windows
// nest; the most recent window's factor applies, and full rate returns
// when the last window ends.
func (in *Injector) RateDegrade(host int, at, durSec, factor float64) {
	if factor <= 0 || factor >= 1 {
		panic(fmt.Sprintf("faults: rate degrade factor %g outside (0,1)", factor))
	}
	h := in.fabric.Host(host)
	in.window(at, durSec,
		func() {
			in.counts.RateDegrades++
			in.rateDepth[host]++
			h.Egress.SetRateFactor(factor)
			h.Ingress.SetRateFactor(factor)
			in.emit(trace.KindLinkDown, host, factor, "rate degrade")
		},
		func() {
			in.rateDepth[host]--
			if in.rateDepth[host] == 0 {
				h.Egress.SetRateFactor(1)
				h.Ingress.SetRateFactor(1)
				in.emit(trace.KindLinkUp, host, 1, "rate restored")
			}
		})
}

// CoreLinkFlap takes fabric core link `link` down at `at` for durSec
// seconds — a leaf uplink or spine downlink failing in a routed
// topology. The link's Port holds queued and arriving chunks (no loss)
// and resumes when the flap ends; same-rack and same-host traffic is
// unaffected, unlike a NIC flap. Overlapping windows nest. Panics if
// the fabric's topology has no such link (in particular, on flat).
func (in *Injector) CoreLinkFlap(link int, at, durSec float64) {
	l := in.fabric.CoreLink(link)
	in.window(at, durSec,
		func() {
			in.counts.CoreLinkFaults++
			in.coreDownDepth[link]++
			if in.coreDownDepth[link] == 1 {
				l.Port().SetDown(true)
				in.emit(trace.KindLinkDown, -1, durSec, "core link down "+l.Name)
			}
		},
		func() {
			in.coreDownDepth[link]--
			if in.coreDownDepth[link] == 0 {
				l.Port().SetDown(false)
				in.emit(trace.KindLinkUp, -1, 0, "core link up "+l.Name)
			}
		})
}

// CoreLinkDegrade reduces core link `link`'s service rate to factor
// (0 < factor < 1) for durSec seconds starting at `at` — a congested or
// auto-negotiated-down fabric link. Overlapping windows nest; full rate
// returns when the last window ends.
func (in *Injector) CoreLinkDegrade(link int, at, durSec, factor float64) {
	if factor <= 0 || factor >= 1 {
		panic(fmt.Sprintf("faults: core link degrade factor %g outside (0,1)", factor))
	}
	l := in.fabric.CoreLink(link)
	in.window(at, durSec,
		func() {
			in.counts.CoreLinkFaults++
			in.coreRateDepth[link]++
			l.Port().SetRateFactor(factor)
			in.emit(trace.KindLinkDown, -1, factor, "core link degrade "+l.Name)
		},
		func() {
			in.coreRateDepth[link]--
			if in.coreRateDepth[link] == 0 {
				l.Port().SetRateFactor(1)
				in.emit(trace.KindLinkUp, -1, 1, "core link restored "+l.Name)
			}
		})
}

// DropWindow sets a per-chunk loss probability (0 <= prob < 1) on the
// host's egress for durSec seconds starting at `at`. Lost chunks are
// retransmitted by the sender after the fabric's retransmission timeout,
// so transfers complete — slower, as over a lossy link under TCP.
func (in *Injector) DropWindow(host int, at, durSec, prob float64) {
	if prob < 0 || prob >= 1 {
		panic(fmt.Sprintf("faults: drop probability %g outside [0,1)", prob))
	}
	h := in.fabric.Host(host)
	in.window(at, durSec,
		func() {
			in.counts.DropWindows++
			in.dropDepth[host]++
			h.SetChunkDropProb(prob)
		},
		func() {
			in.dropDepth[host]--
			if in.dropDepth[host] == 0 {
				h.SetChunkDropProb(0)
			}
		})
}

// TCOutage makes every tc command on the host fail for durSec seconds
// starting at `at`, exercising the controller's retry/backoff, FIFO
// fallback and reconcile-repair paths. Requires the injector to have
// been constructed with a tc controller.
func (in *Injector) TCOutage(host int, at, durSec float64) {
	if in.tcc == nil {
		panic("faults: TCOutage requires a tc controller")
	}
	in.window(at, durSec,
		func() {
			in.counts.TCOutages++
			in.tcDepth[host]++
		},
		func() {
			in.tcDepth[host]--
		})
}

// CrashWorker kills the job's worker at `at`. The job's PS notices via
// its barrier watchdog (JobSpec.Recovery.DetectTimeoutSec) and restarts
// the worker after its backoff, or degrades to the survivors once the
// restart budget is exhausted. Crashes scheduled after the job already
// finished or failed are silently skipped.
func (in *Injector) CrashWorker(j *dl.Job, worker int, at float64) {
	if now := in.k.Now(); at < now {
		at = now
	}
	in.k.Post(at, func() {
		if j.Done() || j.Failed() {
			return
		}
		in.counts.Crashes++
		j.CrashWorker(worker)
	})
}

// CrashPeer kills rank `rank` of the collective job at `at`. Unlike a
// PS worker crash, this wedges the entire ring: every surviving rank's
// all-reduce stalls within one step. The job's own failure detector
// (JobSpec.Recovery) notices the stall, restarts the peer and re-runs
// the iteration — or fails the job once the budget is exhausted.
// Crashes scheduled after the job already finished or failed are
// silently skipped.
func (in *Injector) CrashPeer(j *collective.Job, rank int, at float64) {
	if now := in.k.Now(); at < now {
		at = now
	}
	in.k.Post(at, func() {
		if j.Done() || j.Failed() {
			return
		}
		in.counts.PeerCrashes++
		j.CrashPeer(rank)
	})
}

// CrashPlan schedules one worker crash.
type CrashPlan struct {
	Job    int     // job ID (key into Apply's jobs map)
	Worker int     // worker index within the job
	AtSec  float64 // crash time
}

// CoreLinkPlan schedules one fault window on a fabric core link,
// addressed by link ID (index into simnet.Fabric.CoreLinks).
type CoreLinkPlan struct {
	Link   int
	AtSec  float64
	DurSec float64
	// Factor, when in (0,1), degrades the link's rate to that factor;
	// 0 takes the link fully down for the window.
	Factor float64
}

// OutagePlan schedules one standalone tc actuation outage, independent
// of the flap schedule (e.g. a management-path outage with the data
// path healthy).
type OutagePlan struct {
	// Host is the target host ID; -1 targets every PS host passed to
	// Apply.
	Host   int
	AtSec  float64
	DurSec float64
}

// Plan is a declarative fault schedule, the form experiments configure.
// The zero value injects nothing. Apply expands it into injector calls.
type Plan struct {
	// FlapPSHosts flaps every parameter-server host passed to Apply —
	// the paper's most contended hosts, where a flap hurts the most.
	FlapPSHosts bool
	// FlapHosts flaps these additional host IDs.
	FlapHosts []int
	// Flap windows recur every FlapEverySec from FlapFirstAtSec until
	// HorizonSec, each lasting FlapDurationSec. Both FlapEverySec and
	// FlapDurationSec must be positive for flapping to occur.
	FlapFirstAtSec  float64
	FlapEverySec    float64
	FlapDurationSec float64
	// FlapJitterSec adds a per-window uniform [0,jitter) offset drawn
	// from the injector's seeded stream, de-synchronizing flaps across
	// hosts while keeping the schedule reproducible.
	FlapJitterSec float64
	// DegradeFactor, when in (0,1), turns flap windows into rate
	// degradations to that factor instead of full NIC-down windows.
	DegradeFactor float64
	// DropProb, when positive, adds a chunk-loss window of the same
	// duration immediately after each flap window (the lossy recovery
	// period after a link comes back).
	DropProb float64
	// TCOutage makes tc actuation fail on the flapped host for the flap
	// window plus TCOutageExtraSec — modelling the common failure where
	// the host's management path dies with its data path and stays
	// degraded a little longer.
	TCOutage         bool
	TCOutageExtraSec float64
	// HorizonSec bounds the recurring flap schedule. Required when
	// flapping is enabled.
	HorizonSec float64
	// Crashes lists worker crashes to schedule.
	Crashes []CrashPlan
	// PeerCrashes lists collective-rank crashes to schedule: Job keys
	// into Apply's collective jobs map, Worker is the rank index.
	PeerCrashes []CrashPlan
	// TCOutages lists standalone tc outages to schedule.
	TCOutages []OutagePlan
	// CoreLinks lists fault windows on fabric core links (routed
	// topologies only; invalid link IDs fail in Apply).
	CoreLinks []CoreLinkPlan
}

// Active reports whether the plan injects anything.
func (p Plan) Active() bool {
	return p.flapping() || len(p.Crashes) > 0 || len(p.PeerCrashes) > 0 ||
		len(p.TCOutages) > 0 || len(p.CoreLinks) > 0
}

func (p Plan) flapping() bool {
	return p.FlapEverySec > 0 && p.FlapDurationSec > 0 &&
		(p.FlapPSHosts || len(p.FlapHosts) > 0)
}

// Validate reports plan configuration errors.
func (p Plan) Validate() error {
	if p.FlapEverySec < 0 || p.FlapDurationSec < 0 || p.FlapFirstAtSec < 0 ||
		p.FlapJitterSec < 0 || p.TCOutageExtraSec < 0 || p.HorizonSec < 0 {
		return fmt.Errorf("faults: negative duration in plan")
	}
	if (p.FlapEverySec > 0) != (p.FlapDurationSec > 0) {
		return fmt.Errorf("faults: FlapEverySec and FlapDurationSec must both be set (got %g and %g)",
			p.FlapEverySec, p.FlapDurationSec)
	}
	if p.flapping() && p.HorizonSec <= p.FlapFirstAtSec {
		return fmt.Errorf("faults: HorizonSec %g must exceed FlapFirstAtSec %g when flapping",
			p.HorizonSec, p.FlapFirstAtSec)
	}
	if p.DegradeFactor < 0 || p.DegradeFactor >= 1 {
		return fmt.Errorf("faults: DegradeFactor %g outside [0,1)", p.DegradeFactor)
	}
	if p.DropProb < 0 || p.DropProb >= 1 {
		return fmt.Errorf("faults: DropProb %g outside [0,1)", p.DropProb)
	}
	for i, c := range p.Crashes {
		if c.AtSec < 0 {
			return fmt.Errorf("faults: Crashes[%d].AtSec %g is negative", i, c.AtSec)
		}
		if c.Worker < 0 {
			return fmt.Errorf("faults: Crashes[%d].Worker %d is negative", i, c.Worker)
		}
	}
	for i, c := range p.PeerCrashes {
		if c.AtSec < 0 {
			return fmt.Errorf("faults: PeerCrashes[%d].AtSec %g is negative", i, c.AtSec)
		}
		if c.Worker < 0 {
			return fmt.Errorf("faults: PeerCrashes[%d].Worker %d is negative", i, c.Worker)
		}
	}
	for i, o := range p.TCOutages {
		if o.AtSec < 0 {
			return fmt.Errorf("faults: TCOutages[%d].AtSec %g is negative", i, o.AtSec)
		}
		if o.DurSec <= 0 {
			return fmt.Errorf("faults: TCOutages[%d].DurSec %g must be positive", i, o.DurSec)
		}
		if o.Host < -1 {
			return fmt.Errorf("faults: TCOutages[%d].Host %d invalid", i, o.Host)
		}
	}
	for i, c := range p.CoreLinks {
		if c.Link < 0 {
			return fmt.Errorf("faults: CoreLinks[%d].Link %d is negative", i, c.Link)
		}
		if c.AtSec < 0 {
			return fmt.Errorf("faults: CoreLinks[%d].AtSec %g is negative", i, c.AtSec)
		}
		if c.DurSec <= 0 {
			return fmt.Errorf("faults: CoreLinks[%d].DurSec %g must be positive", i, c.DurSec)
		}
		if c.Factor < 0 || c.Factor >= 1 {
			return fmt.Errorf("faults: CoreLinks[%d].Factor %g outside [0,1)", i, c.Factor)
		}
	}
	return nil
}

// Apply expands the plan into scheduled faults. psHosts are the
// parameter-server hosts flapped when FlapPSHosts is set; jobs maps
// PS-job ID to job for crash scheduling, and cjobs maps collective-job
// ID to job for peer-crash scheduling (either may be nil when the plan
// touches no job of that kind). Hosts are deduplicated and processed
// in ascending order so the jitter draws — and thus the schedule — are
// deterministic for a given seed.
func (in *Injector) Apply(p Plan, psHosts []int, jobs map[int]*dl.Job,
	cjobs map[int]*collective.Job) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if (p.TCOutage || len(p.TCOutages) > 0) && in.tcc == nil {
		return fmt.Errorf("faults: plan requests tc outages but injector has no tc controller")
	}
	if p.flapping() {
		hostSet := make(map[int]bool)
		if p.FlapPSHosts {
			for _, h := range psHosts {
				hostSet[h] = true
			}
		}
		for _, h := range p.FlapHosts {
			hostSet[h] = true
		}
		hosts := make([]int, 0, len(hostSet))
		for h := range hostSet {
			hosts = append(hosts, h)
		}
		sort.Ints(hosts)
		for _, h := range hosts {
			for t := p.FlapFirstAtSec; t < p.HorizonSec; t += p.FlapEverySec {
				at := t
				if p.FlapJitterSec > 0 {
					// Draw before the ownership check: every injector
					// consumes the same stream positions, so the global
					// schedule is shard-invariant.
					at += in.rng.Float64() * p.FlapJitterSec
				}
				if !in.ownsHost(h) {
					continue
				}
				if p.DegradeFactor > 0 {
					in.RateDegrade(h, at, p.FlapDurationSec, p.DegradeFactor)
				} else {
					in.LinkFlap(h, at, p.FlapDurationSec)
				}
				if p.DropProb > 0 {
					in.DropWindow(h, at+p.FlapDurationSec, p.FlapDurationSec, p.DropProb)
				}
				if p.TCOutage {
					in.TCOutage(h, at, p.FlapDurationSec+p.TCOutageExtraSec)
				}
			}
		}
	}
	for i, c := range p.CoreLinks {
		if n := len(in.fabric.CoreLinks()); c.Link >= n {
			return fmt.Errorf("faults: CoreLinks[%d] names link %d, but the %s topology has %d core links",
				i, c.Link, in.fabric.Topology().Kind(), n)
		}
		if !in.ownsLink(c.Link) {
			continue
		}
		if c.Factor > 0 {
			in.CoreLinkDegrade(c.Link, c.AtSec, c.DurSec, c.Factor)
		} else {
			in.CoreLinkFlap(c.Link, c.AtSec, c.DurSec)
		}
	}
	for _, o := range p.TCOutages {
		if o.Host == -1 {
			for _, h := range dedupSorted(psHosts) {
				if in.ownsHost(h) {
					in.TCOutage(h, o.AtSec, o.DurSec)
				}
			}
			continue
		}
		if in.ownsHost(o.Host) {
			in.TCOutage(o.Host, o.AtSec, o.DurSec)
		}
	}
	for i, c := range p.Crashes {
		j, ok := jobs[c.Job]
		if !ok {
			if in.filtered() {
				// The job belongs to another shard; its injector owns
				// the crash.
				continue
			}
			return fmt.Errorf("faults: Crashes[%d] names unknown job %d", i, c.Job)
		}
		if c.Worker < 0 || c.Worker >= j.Spec.NumWorkers {
			return fmt.Errorf("faults: Crashes[%d] names worker %d, but job %d has %d workers",
				i, c.Worker, c.Job, j.Spec.NumWorkers)
		}
		in.CrashWorker(j, c.Worker, c.AtSec)
	}
	for i, c := range p.PeerCrashes {
		j, ok := cjobs[c.Job]
		if !ok {
			if in.filtered() {
				continue
			}
			return fmt.Errorf("faults: PeerCrashes[%d] names unknown collective job %d", i, c.Job)
		}
		if c.Worker < 0 || c.Worker >= j.N() {
			return fmt.Errorf("faults: PeerCrashes[%d] names rank %d, but job %d has %d ranks",
				i, c.Worker, c.Job, j.N())
		}
		in.CrashPeer(j, c.Worker, c.AtSec)
	}
	return nil
}

// dedupSorted returns the unique host IDs in ascending order.
func dedupSorted(hosts []int) []int {
	set := make(map[int]bool, len(hosts))
	for _, h := range hosts {
		set[h] = true
	}
	out := make([]int, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sort.Ints(out)
	return out
}
