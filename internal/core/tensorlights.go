// Package core implements TensorLights: end-host traffic prioritization
// that mitigates worker stragglers for distributed deep learning under
// parameter-server traffic contention (Huang, Chen & Ng, IPDPS 2019).
//
// TensorLights watches which hosts run two or more parameter servers
// and, only on those hosts, installs an htb root qdisc with up to six
// priority classes; each contending job's model-update traffic is mapped
// to a class by the job's PS TCP port. TLs-One assigns priorities once
// per arrival/departure; TLs-RR rotates the assignment every interval T
// so that all jobs make fair progress over time — the "traffic lights"
// of the title. The mechanism is work-conserving (every class may borrow
// up to the full link) and needs no changes to applications, the cluster
// scheduler, or hardware: it acts purely through tc.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/tc"
	"repro/internal/trace"
)

// Policy selects the priority assignment mode.
type Policy int

const (
	// PolicyFIFO disables TensorLights: the NIC keeps its default FIFO
	// qdisc. This is the paper's baseline.
	PolicyFIFO Policy = iota
	// PolicyOne is TLs-One: a static priority order, reconfigured only
	// on job arrival and departure.
	PolicyOne
	// PolicyRR is TLs-RR: the priority order rotates every Interval.
	PolicyRR
	// PolicyLPF is an adaptive extension beyond the paper: every
	// Interval, jobs are re-ranked least-progress-first, so whichever
	// job has fallen behind gets the green light next. It pursues
	// TLs-RR's fairness goal with feedback instead of blind rotation.
	PolicyLPF
	// PolicyStaticRate is the paper's §VII transmission-layer
	// alternative: each contending job is pinned to an equal static
	// rate share (rate = ceil = link/N). It is NOT work-conserving —
	// when a job is idle its share is wasted — which is exactly the
	// drawback the paper warns about; the ablation benchmark
	// quantifies it.
	PolicyStaticRate
)

// String names the policy as in the paper.
func (p Policy) String() string {
	switch p {
	case PolicyFIFO:
		return "FIFO"
	case PolicyOne:
		return "TLs-One"
	case PolicyRR:
		return "TLs-RR"
	case PolicyLPF:
		return "TLs-LPF"
	case PolicyStaticRate:
		return "StaticRate"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Order selects how contending jobs are ranked into priority bands.
// The paper deliberately does not constrain this choice (§IV-B).
type Order int

const (
	// OrderArrival ranks by job arrival; deterministic and what grid
	// search (identical update sizes) effectively gets.
	OrderArrival Order = iota
	// OrderRandom shuffles ranks once per (re)configuration.
	OrderRandom
	// OrderSmallestUpdate gives smaller model updates higher priority,
	// avoiding head-of-line blocking behind big updates.
	OrderSmallestUpdate
)

// String names the order.
func (o Order) String() string {
	switch o {
	case OrderArrival:
		return "arrival"
	case OrderRandom:
		return "random"
	case OrderSmallestUpdate:
		return "smallest-update"
	}
	return fmt.Sprintf("Order(%d)", int(o))
}

// Config tunes the controller. Zero values select the paper's settings.
type Config struct {
	// Policy selects a built-in policy by enum value; it resolves
	// through the internal/policy registry by its String() name, so the
	// historical call sites keep working unchanged.
	Policy Policy
	// PolicyName, when non-empty, overrides Policy with any registered
	// policy name (e.g. "TLs-LAS", "TLs-SRSF", "TLs-Interleave").
	// Unknown names fail Validate; New panics on them.
	PolicyName string
	// FeedbackIntervalSec is the telemetry sampling period used by
	// feedback-driven policies; 0 selects the collector's default. The
	// controller itself does not sample — the cluster layer builds the
	// policy.Feedback and attaches it — but the knob travels with the
	// rest of the TLs configuration.
	FeedbackIntervalSec float64
	// Bands is the number of distinct priority classes (the paper uses
	// up to six; tc supports a limited number, so jobs may share).
	Bands int
	// IntervalSec is the TLs-RR rotation period T (20 s in the paper).
	IntervalSec float64
	// Order ranks contending jobs into bands.
	Order Order
	// GuaranteeRateBps is each htb class's guaranteed rate (tiny, so
	// borrowing priority dominates). Default 1 Mbit/s.
	GuaranteeRateBps float64
	// UsePrioQdisc switches from htb (the paper's implementation) to a
	// plain prio qdisc — an ablation showing the mechanism is qdisc-
	// agnostic.
	UsePrioQdisc bool
	// MaxExecRetries bounds re-application attempts after a failed tc
	// command before the host falls back to plain FIFO (default 4).
	MaxExecRetries int
	// RetryBackoffSec is the delay before the first re-application
	// attempt; each further attempt doubles it (default 0.5 s).
	RetryBackoffSec float64
	// ReconcileIntervalSec is the period of the reconcile loop, which
	// re-reads each managed host's installed qdisc state, repairs drift
	// and retries hosts stuck in FIFO fallback (default 10 s; negative
	// disables reconciliation).
	ReconcileIntervalSec float64
	// GridTimers aligns the rotation and reconcile timers to absolute
	// multiples of their intervals (firing at k*interval rather than
	// firstArrival + k*interval), derives the rotation counter from
	// simulated time, anchors the policy's phase the same way, and
	// emits one priority_rotate event per contended host (Host set)
	// instead of a single global one. Timer phase and trace output then
	// depend only on which jobs each host carries — not on when this
	// controller instance saw its first arrival — which is what lets
	// the per-shard controllers of a sharded run reproduce the
	// single-kernel run's actions exactly. Default false: relative
	// timers, byte-identical to the paper's daemon behaviour.
	GridTimers bool
}

func (c *Config) fillDefaults() {
	if c.Bands <= 0 {
		c.Bands = 6
	}
	if c.IntervalSec <= 0 {
		c.IntervalSec = 20
	}
	if c.GuaranteeRateBps <= 0 {
		c.GuaranteeRateBps = 1e6
	}
	if c.MaxExecRetries <= 0 {
		c.MaxExecRetries = 4
	}
	if c.RetryBackoffSec <= 0 {
		c.RetryBackoffSec = 0.5
	}
	if c.ReconcileIntervalSec == 0 {
		c.ReconcileIntervalSec = 10
	}
}

// policyName returns the effective registry name: PolicyName when set,
// otherwise the enum value's canonical name.
func (c *Config) policyName() string {
	if c.PolicyName != "" {
		return c.PolicyName
	}
	return c.Policy.String()
}

// Validate reports whether the configuration can be realized — today,
// that the selected policy resolves in the internal/policy registry.
// Callers taking user input (flags, sweep configs) should Validate
// before New, which treats an unknown policy as a programming error.
func (c *Config) Validate() error {
	if !policy.Known(c.policyName()) {
		return fmt.Errorf("tensorlights: unknown policy %q (registered: %s)",
			c.policyName(), strings.Join(policy.Names(), ", "))
	}
	return nil
}

// RecoveryStats counts the controller's actuation-failure handling.
type RecoveryStats struct {
	// Retries is how many delayed re-application attempts were scheduled
	// after a tc command failed.
	Retries int
	// Fallbacks is how many times a host was dropped to plain FIFO after
	// exhausting its retry budget.
	Fallbacks int
	// Repairs is how many times the reconcile loop restored a host whose
	// installed state had drifted from the desired state, or that had
	// been in FIFO fallback.
	Repairs int
}

// hostState is the controller's per-host desired/installed bookkeeping.
type hostState struct {
	// desired is the full tc command list realizing the host's target
	// configuration; empty means the default FIFO.
	desired []string
	// firstFilter indexes the first filter command within desired, so
	// rotations can rewrite the filter chain without a rebuild.
	firstFilter int
	// njobs is the contending-job count desired was built for.
	njobs int
	// installedFP is the tc fingerprint recorded after the last
	// successful apply; "" when nothing is installed.
	installedFP string
	// attempts counts consecutive failed applies of the current desired
	// state.
	attempts int
	// retryEv is the pending backoff retry, if any.
	retryEv *sim.Event
	// fallback marks a host degraded to FIFO after exhausting retries;
	// the reconcile loop keeps trying to restore it.
	fallback bool
	// assign maps job id -> installed band (class id) for the desired
	// state; the feedback collector uses it to attribute per-band
	// dequeue bytes to jobs.
	assign map[int]int
}

// JobInfo is what TensorLights needs to know about a job — all of it
// observable from outside the application. A parameter-server job is
// described by its PS host and port alone; a collective (all-reduce)
// job, whose prioritized traffic leaves every ring host, additionally
// lists SenderHosts and the source Ports identifying it.
type JobInfo struct {
	ID          int
	PSHost      int
	PSPort      int
	UpdateBytes int64
	// SenderHosts lists every host whose egress carries this job's
	// prioritized traffic. Empty means {PSHost} — the PS-job default,
	// where only the model-update fan-out is classified. A collective
	// job lists all of its ring hosts here, so contention is detected
	// and bands installed wherever its flows originate.
	SenderHosts []int
	// Ports lists the TCP source ports identifying the job's traffic
	// (one `match sport` filter per port on each managed host). Empty
	// means {PSPort}. A job carrying both PS and collective traffic
	// lists both ports; all of them map to the same band.
	Ports []int
	// TargetSteps is the job's declared training length in iterations
	// (0 = undeclared). TLs-SRSF uses it to estimate remaining service.
	TargetSteps int
	arrivalSeq  int
	progress    int
}

// senderHosts returns the hosts whose egress carries the job's traffic.
func (j *JobInfo) senderHosts() []int {
	if len(j.SenderHosts) == 0 {
		return []int{j.PSHost}
	}
	return j.SenderHosts
}

// ports returns the source ports identifying the job's traffic.
func (j *JobInfo) ports() []int {
	if len(j.Ports) == 0 {
		return []int{j.PSPort}
	}
	return j.Ports
}

// onHost reports whether the job's traffic leaves the host.
func (j *JobInfo) onHost(host int) bool {
	for _, h := range j.senderHosts() {
		if h == host {
			return true
		}
	}
	return false
}

// Controller is the TensorLights daemon. It owns actuation (tc command
// synthesis, retry/backoff, reconcile) and delegates every ranking and
// rotation decision to a policy.Policy resolved from the registry.
type Controller struct {
	cfg Config
	k   *sim.Kernel
	tcc *tc.Controller
	rng *sim.RNG

	// pol makes all ranking decisions; passive marks NoOp policies
	// (FIFO), under which the controller leaves NICs untouched;
	// adaptive marks feedback-driven policies, the only ones that emit
	// policy_rank events (so legacy traces stay byte-identical).
	pol      policy.Policy
	passive  bool
	adaptive bool
	fb       *policy.Feedback

	jobs        map[int]*JobInfo
	nextSeq     int
	rotation    int
	rotateEv    *sim.Event
	reconcileEv *sim.Event
	hosts       map[int]*hostState // hosts with a managed (non-FIFO) desired state
	reconfigs   int
	stats       RecoveryStats

	// Tracer, when non-nil, receives tc_config and priority_rotate
	// events.
	Tracer trace.Tracer
}

func (c *Controller) emit(ev trace.Event) {
	if c.Tracer != nil {
		c.Tracer.Emit(ev)
	}
}

// New creates a controller issuing commands through the tc layer. The
// configured policy is resolved from the internal/policy registry; an
// unknown name panics (use Config.Validate to reject user input).
func New(k *sim.Kernel, tcc *tc.Controller, rng *sim.RNG, cfg Config) *Controller {
	cfg.fillDefaults()
	stream := rng.Stream("tensorlights")
	pol, err := policy.New(cfg.policyName(), policy.Params{
		Bands:        cfg.Bands,
		IntervalSec:  cfg.IntervalSec,
		Order:        policy.Order(cfg.Order),
		RNG:          stream,
		TimeAnchored: cfg.GridTimers,
	})
	if err != nil {
		panic("tensorlights: " + err.Error())
	}
	return &Controller{
		cfg:      cfg,
		k:        k,
		tcc:      tcc,
		rng:      stream,
		pol:      pol,
		passive:  policy.IsNoOp(pol),
		adaptive: policy.NeedsFeedback(pol),
		jobs:     make(map[int]*JobInfo),
		hosts:    make(map[int]*hostState),
	}
}

// PolicyName returns the resolved policy's canonical name.
func (c *Controller) PolicyName() string { return c.pol.Name() }

// NeedsFeedback reports whether the resolved policy is feedback-driven
// and a policy.Feedback should be attached before jobs arrive.
func (c *Controller) NeedsFeedback() bool { return c.adaptive }

// AttachFeedback wires the telemetry collector the adaptive policies
// read. The controller forwards job arrival/departure/progress and
// records band assignments after each successful apply; the cluster
// layer owns the collector's probe and sampling loop.
func (c *Controller) AttachFeedback(fb *policy.Feedback) { c.fb = fb }

// Feedback returns the attached collector, or nil.
func (c *Controller) Feedback() *policy.Feedback { return c.fb }

// Config returns the effective configuration.
func (c *Controller) Config() Config { return c.cfg }

// Reconfigs returns how many host reconfigurations have been applied —
// the paper's cost metric for tc churn.
func (c *Controller) Reconfigs() int { return c.reconfigs }

// Stats returns the actuation-failure recovery counters.
func (c *Controller) Stats() RecoveryStats { return c.stats }

// FallbackHosts lists hosts currently degraded to FIFO because tc
// actuation kept failing, in ascending order.
func (c *Controller) FallbackHosts() []int {
	var out []int
	for h, st := range c.hosts {
		if st.fallback {
			out = append(out, h)
		}
	}
	sort.Ints(out)
	return out
}

// JobArrived registers a job and reconfigures every host its traffic
// leaves from, if needed.
func (c *Controller) JobArrived(info JobInfo) {
	if c.passive {
		return
	}
	if _, dup := c.jobs[info.ID]; dup {
		panic(fmt.Sprintf("tensorlights: job %d arrived twice", info.ID))
	}
	info.arrivalSeq = c.nextSeq
	c.nextSeq++
	c.jobs[info.ID] = &info
	if c.fb != nil {
		c.fb.JobArrived(info.ID)
	}
	for _, h := range info.senderHosts() {
		c.setDesired(h)
	}
	c.armRotation()
	c.armReconcile()
}

// JobDeparted deregisters a job; every host carrying its traffic is
// reconfigured (and the TLs qdisc removed entirely where fewer than two
// contending jobs remain).
func (c *Controller) JobDeparted(id int) {
	if c.passive {
		return
	}
	info, ok := c.jobs[id]
	if !ok {
		return
	}
	delete(c.jobs, id)
	if c.fb != nil {
		c.fb.JobDeparted(id)
	}
	for _, h := range info.senderHosts() {
		c.setDesired(h)
	}
	if len(c.jobs) == 0 {
		if c.rotateEv != nil {
			c.k.Cancel(c.rotateEv)
			c.rotateEv = nil
		}
		if c.reconcileEv != nil && len(c.hosts) == 0 {
			// Keep reconciling while any host still carries (or failed
			// to shed) managed state; stop once everything is clean.
			c.k.Cancel(c.reconcileEv)
			c.reconcileEv = nil
		}
	}
}

// JobProgress records a job's latest completed iteration; progress-
// aware policies (LPF, and the feedback-driven set via the collector)
// use it to rank contending jobs. Progress for unknown jobs is ignored
// (the job may already have departed).
func (c *Controller) JobProgress(id, iteration int) {
	if j, ok := c.jobs[id]; ok {
		j.progress = iteration
		if c.fb != nil {
			c.fb.OnProgress(id, iteration)
		}
	}
}

// rotationInterval returns the policy's re-ranking period, or 0 for
// policies that rank only on membership changes.
func (c *Controller) rotationInterval() float64 {
	return policy.Interval(c.pol)
}

// nextGridPoint returns the smallest multiple of ivl strictly after
// now (grid-timer firing times are absolute multiples of the
// interval).
func nextGridPoint(now, ivl float64) float64 {
	n := math.Floor(now/ivl) + 1
	at := n * ivl
	for at <= now {
		n++
		at = n * ivl
	}
	return at
}

// armRotation starts the re-ranking timer on first demand for rotating
// policies.
func (c *Controller) armRotation() {
	ivl := c.rotationInterval()
	if ivl <= 0 || c.rotateEv != nil {
		return
	}
	if c.cfg.GridTimers {
		c.rotateEv = c.k.Schedule(nextGridPoint(c.k.Now(), ivl), c.rotate)
		return
	}
	c.rotateEv = c.k.ScheduleAfter(ivl, c.rotate)
}

// rotate advances the policy to its next phase and reconfigures every
// contended host — the green/yellow light change.
func (c *Controller) rotate() {
	c.rotateEv = nil
	if len(c.jobs) == 0 {
		return
	}
	now := c.k.Now()
	if c.cfg.GridTimers {
		// The timer fires at exact interval multiples; the counter is
		// the multiple, so it never depends on how many times this
		// controller instance has fired.
		c.rotation = int(now/c.rotationInterval() + 0.5)
	} else {
		c.rotation++
	}
	policy.Advance(c.pol, now)
	if c.cfg.GridTimers {
		// Per-host events: each contended host's rotation is its own
		// observable, so a sharded run's merged trace matches whichever
		// controller instance manages the host.
		for _, host := range c.contendedHosts() {
			c.emit(trace.Event{
				At: now, Kind: trace.KindPriorityRotate,
				Job: -1, Host: host, Worker: -1, Value: float64(c.rotation),
			})
			c.rotateHost(host)
		}
	} else {
		c.emit(trace.Event{
			At: now, Kind: trace.KindPriorityRotate,
			Job: -1, Host: -1, Worker: -1, Value: float64(c.rotation),
		})
		for _, host := range c.contendedHosts() {
			c.rotateHost(host)
		}
	}
	c.armRotation()
}

// contendedHosts lists hosts whose egress carries two or more jobs —
// PSes, collective ranks, or a mix. Priority bands rank every
// contending job uniformly, whatever its workload type.
func (c *Controller) contendedHosts() []int {
	count := map[int]int{}
	for _, j := range c.jobs {
		for _, h := range j.senderHosts() {
			count[h]++
		}
	}
	var hosts []int
	for h, n := range count {
		if n >= 2 {
			hosts = append(hosts, h)
		}
	}
	sort.Ints(hosts)
	return hosts
}

// rankedJobs collects the jobs whose prioritized traffic leaves the
// host and asks the policy to rank them. It returns the jobs in rank
// order (the filter installation order) with each job's virtual band
// in [0, cfg.Bands). With fewer than two jobs the policy is not
// consulted and bands is nil. Adaptive policies' decisions are traced
// as policy_rank events.
func (c *Controller) rankedJobs(host int) (jobs []*JobInfo, bands []int) {
	for _, j := range c.jobs {
		if j.onHost(host) {
			jobs = append(jobs, j)
		}
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].arrivalSeq < jobs[k].arrivalSeq })
	if len(jobs) < 2 {
		return jobs, nil
	}
	view := make([]policy.Job, len(jobs))
	byID := make(map[int]*JobInfo, len(jobs))
	for i, j := range jobs {
		view[i] = policy.Job{
			ID:          j.ID,
			ArrivalSeq:  j.arrivalSeq,
			UpdateBytes: j.UpdateBytes,
			TargetSteps: j.TargetSteps,
			Progress:    j.progress,
		}
		byID[j.ID] = j
	}
	bands = c.pol.Rank(host, view, c.fb)
	if len(bands) != len(view) {
		panic(fmt.Sprintf("tensorlights: policy %s ranked %d jobs into %d bands",
			c.pol.Name(), len(view), len(bands)))
	}
	for i, v := range view {
		jobs[i] = byID[v.ID]
	}
	if c.adaptive && c.Tracer != nil {
		var sb strings.Builder
		fmt.Fprintf(&sb, "policy=%s order=", c.pol.Name())
		for i, v := range view {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d:%d", v.ID, bands[i])
		}
		c.emit(trace.Event{
			At: c.k.Now(), Kind: trace.KindPolicyRank,
			Job: -1, Host: host, Worker: -1,
			Value: float64(len(jobs)), Detail: sb.String(),
		})
	}
	return jobs, bands
}

// stateOf returns (creating on demand) the host's bookkeeping record.
func (c *Controller) stateOf(host int) *hostState {
	st, ok := c.hosts[host]
	if !ok {
		st = &hostState{}
		c.hosts[host] = st
	}
	return st
}

// setDesired recomputes a host's target configuration after a
// membership change and starts applying it. Hosts with fewer than two
// local PSes desire the default FIFO — the paper configures tc only
// where PSes contend.
func (c *Controller) setDesired(host int) {
	cmds, firstFilter, njobs, assign := c.desiredCommands(host)
	if len(cmds) == 0 {
		st, ok := c.hosts[host]
		if !ok {
			return // never managed: already FIFO
		}
		st.desired, st.firstFilter, st.njobs, st.assign = nil, 0, 0, nil
		c.cancelRetry(st)
		st.attempts = 0
		c.tryApply(host)
		return
	}
	st := c.stateOf(host)
	st.desired, st.firstFilter, st.njobs, st.assign = cmds, firstFilter, njobs, assign
	c.cancelRetry(st)
	st.attempts = 0
	c.tryApply(host)
}

// rotateHost re-applies a host's configuration for the new rotation.
// On a healthy, installed host only the filter chain is rewritten — the
// qdisc tree stays, so queued traffic keeps flowing in its classes and
// tc churn per rotation stays minimal. Hosts mid-retry or in fallback
// just get their desired state refreshed; the retry/reconcile paths
// will install it.
func (c *Controller) rotateHost(host int) {
	cmds, firstFilter, njobs, assign := c.desiredCommands(host)
	if len(cmds) == 0 {
		c.setDesired(host)
		return
	}
	st := c.stateOf(host)
	st.desired, st.firstFilter, st.njobs, st.assign = cmds, firstFilter, njobs, assign
	if st.installedFP == "" || st.fallback || st.retryEv != nil {
		return
	}
	rewrite := append([]string{"filter del dev eth0 all"}, cmds[firstFilter:]...)
	for _, cmd := range rewrite {
		if err := c.tcc.Exec(host, cmd); err != nil {
			c.applyFailed(host, st, err)
			return
		}
	}
	st.installedFP = c.tcc.Fingerprint(host)
	c.reconfigs++
	c.pushAssignments(host, st)
}

// desiredCommands builds the tc command list realizing TensorLights'
// target state for one host, plus the index of the first filter
// command, the contending-job count, and the job -> installed band
// assignment (what the feedback collector attributes dequeue bytes
// by). An empty list means default FIFO.
func (c *Controller) desiredCommands(host int) (cmds []string, firstFilter, njobs int, assign map[int]int) {
	jobs, bands := c.rankedJobs(host)
	njobs = len(jobs)
	if njobs < 2 {
		return nil, 0, njobs, nil
	}
	if policy.WantsStaticRate(c.pol) {
		// bands are per-job class indices; every job gets its own class.
		cmds = c.staticRateCommands(host, jobs, bands)
	} else {
		// Clamp virtual bands to the host's effective band count, as the
		// paper's limited-band deployment shares bands between ranks.
		eff := c.cfg.Bands
		if njobs < eff {
			eff = njobs
		}
		clamped := make([]int, njobs)
		for i, b := range bands {
			if b < 0 {
				b = 0
			}
			if b >= eff {
				b = eff - 1
			}
			clamped[i] = b
		}
		bands = clamped
		if c.cfg.UsePrioQdisc {
			cmds = c.prioCommands(jobs, bands, eff)
		} else {
			cmds = c.htbCommands(host, jobs, bands, eff)
		}
	}
	assign = make(map[int]int, njobs)
	for i, j := range jobs {
		assign[j.ID] = bands[i]
	}
	firstFilter = len(cmds)
	for i, cmd := range cmds {
		if strings.HasPrefix(cmd, "filter ") {
			firstFilter = i
			break
		}
	}
	return cmds, firstFilter, njobs, assign
}

// tryApply executes the host's desired command list. Installing a root
// qdisc atomically replaces the previous tree, so a full apply needs no
// teardown; an empty desired state is realized by deleting the root.
// Any command failure routes to the retry/backoff/fallback path.
func (c *Controller) tryApply(host int) {
	st := c.stateOf(host)
	st.retryEv = nil
	if len(st.desired) == 0 {
		if st.installedFP != "" || st.fallback {
			if err := c.tcc.Exec(host, "qdisc del dev eth0 root"); err != nil {
				c.applyFailed(host, st, err)
				return
			}
			c.reconfigs++
		}
		delete(c.hosts, host)
		if c.fb != nil {
			c.fb.ClearHost(host)
		}
		return
	}
	for _, cmd := range st.desired {
		if err := c.tcc.Exec(host, cmd); err != nil {
			c.applyFailed(host, st, err)
			return
		}
	}
	st.attempts = 0
	st.fallback = false
	st.installedFP = c.tcc.Fingerprint(host)
	c.reconfigs++
	c.pushAssignments(host, st)
	c.emit(trace.Event{
		At: c.k.Now(), Kind: trace.KindTcConfig,
		Job: -1, Host: host, Worker: -1, Value: float64(st.njobs),
		Detail: fmt.Sprintf("policy=%s jobs=%d", c.pol.Name(), st.njobs),
	})
}

// pushAssignments hands the host's installed job -> band map to the
// feedback collector, which attributes per-band dequeue bytes by it.
func (c *Controller) pushAssignments(host int, st *hostState) {
	if c.fb != nil {
		c.fb.SetAssignments(host, st.assign)
	}
}

// applyFailed handles one failed tc command: schedule a backoff retry,
// or fall back to FIFO once the budget is exhausted.
func (c *Controller) applyFailed(host int, st *hostState, err error) {
	st.attempts++
	st.installedFP = "" // unknown, possibly partial state
	if c.fb != nil {
		c.fb.ClearHost(host) // attribution by band is unreliable now
	}
	c.emit(trace.Event{
		At: c.k.Now(), Kind: trace.KindTcError,
		Job: -1, Host: host, Worker: -1, Value: float64(st.attempts),
		Detail: err.Error(),
	})
	if st.attempts > c.cfg.MaxExecRetries {
		c.fallbackToFIFO(host, st)
		return
	}
	c.stats.Retries++
	backoff := c.cfg.RetryBackoffSec * math.Pow(2, float64(st.attempts-1))
	st.retryEv = c.k.ScheduleAfter(backoff, func() { c.tryApply(host) })
}

// fallbackToFIFO degrades a host whose actuation keeps failing: clear
// whatever half-installed tree remains (best effort) so traffic at
// least flows FIFO instead of through a partial class structure. The
// reconcile loop keeps retrying the desired state.
func (c *Controller) fallbackToFIFO(host int, st *hostState) {
	st.fallback = true
	st.attempts = 0
	st.installedFP = ""
	c.stats.Fallbacks++
	_ = c.tcc.Exec(host, "qdisc del dev eth0 root")
	c.emit(trace.Event{
		At: c.k.Now(), Kind: trace.KindTcFallback,
		Job: -1, Host: host, Worker: -1,
	})
}

// cancelRetry cancels a pending backoff retry, if any.
func (c *Controller) cancelRetry(st *hostState) {
	if st.retryEv != nil {
		c.k.Cancel(st.retryEv)
		st.retryEv = nil
	}
}

// armReconcile starts the periodic reconcile loop on first demand.
func (c *Controller) armReconcile() {
	if c.cfg.ReconcileIntervalSec < 0 || c.reconcileEv != nil {
		return
	}
	if c.cfg.GridTimers {
		c.reconcileEv = c.k.Schedule(nextGridPoint(c.k.Now(), c.cfg.ReconcileIntervalSec), c.reconcile)
		return
	}
	c.reconcileEv = c.k.ScheduleAfter(c.cfg.ReconcileIntervalSec, c.reconcile)
}

// reconcile is the drift-repair loop: for every managed host, compare
// the installed qdisc state (read back via fingerprint) against what
// the controller last applied, and re-apply on mismatch. Hosts in FIFO
// fallback get a fresh attempt each period, so priority bands are
// restored as soon as actuation heals. Hosts are visited in ascending
// id order to keep runs deterministic.
func (c *Controller) reconcile() {
	c.reconcileEv = nil
	ids := make([]int, 0, len(c.hosts))
	for h := range c.hosts {
		ids = append(ids, h)
	}
	sort.Ints(ids)
	for _, host := range ids {
		st := c.hosts[host]
		if st.retryEv != nil {
			continue // a backoff retry is already in flight
		}
		needsRepair := st.fallback
		if !needsRepair && c.tcc.Fingerprint(host) != st.installedFP {
			needsRepair = true // drift: installed state changed under us
		}
		if !needsRepair {
			continue
		}
		st.attempts = 0
		c.tryApply(host)
		if st, ok := c.hosts[host]; !ok || (st.installedFP != "" && !st.fallback) {
			c.stats.Repairs++
			c.emit(trace.Event{
				At: c.k.Now(), Kind: trace.KindTcRepair,
				Job: -1, Host: host, Worker: -1,
			})
		}
	}
	if len(c.jobs) > 0 || len(c.hosts) > 0 {
		c.armReconcile()
	}
}

// htbCommands builds the paper's implementation: htb root, one class
// per band with a tiny guaranteed rate and full-link ceil, and one
// filter per job mapping its PS source port to its band's class.
// Unclassified traffic (gradient pushes from any colocated workers,
// background flows) falls into the last class. bands holds the
// policy's clamped band per job (rank order); eff is the effective
// band count.
func (c *Controller) htbCommands(host int, jobs []*JobInfo, bands []int, eff int) []string {
	def := eff - 1
	ceil := c.tcc.LinkRateBps(host)
	cmds := []string{fmt.Sprintf("qdisc add dev eth0 root htb default %d", def)}
	for b := 0; b < eff; b++ {
		cmds = append(cmds, fmt.Sprintf(
			"class add dev eth0 classid %d rate %.0fbps ceil %.0fbit prio %d",
			b, c.cfg.GuaranteeRateBps/8, ceil, b))
	}
	pref := 0
	for rank, j := range jobs {
		for _, port := range j.ports() {
			cmds = append(cmds, fmt.Sprintf(
				"filter add dev eth0 pref %d match sport %d flowid %d",
				pref, port, bands[rank]))
			pref++
		}
	}
	return cmds
}

// staticRateCommands pins each contending job to an equal static rate
// share: one htb class per job with rate = ceil = link/N and equal
// priority. Without borrowing headroom the allocation is not
// work-conserving; an idle job's share is simply lost. bands holds the
// policy's per-job class index (rank order).
func (c *Controller) staticRateCommands(host int, jobs []*JobInfo, bands []int) []string {
	link := c.tcc.LinkRateBps(host)
	share := link / float64(len(jobs))
	cmds := []string{fmt.Sprintf("qdisc add dev eth0 root htb default %d", len(jobs)-1)}
	for rank := range jobs {
		cmds = append(cmds, fmt.Sprintf(
			"class add dev eth0 classid %d rate %.0fbit ceil %.0fbit prio 0",
			rank, share, share))
	}
	pref := 0
	for rank, j := range jobs {
		for _, port := range j.ports() {
			cmds = append(cmds, fmt.Sprintf(
				"filter add dev eth0 pref %d match sport %d flowid %d",
				pref, port, bands[rank]))
			pref++
		}
	}
	return cmds
}

// prioCommands is the ablation variant using a plain prio qdisc.
func (c *Controller) prioCommands(jobs []*JobInfo, bands []int, eff int) []string {
	cmds := []string{fmt.Sprintf("qdisc add dev eth0 root prio bands %d", eff)}
	pref := 0
	for rank, j := range jobs {
		for _, port := range j.ports() {
			cmds = append(cmds, fmt.Sprintf(
				"filter add dev eth0 pref %d match sport %d flowid %d",
				pref, port, bands[rank]))
			pref++
		}
	}
	return cmds
}
