// Package core implements TensorLights: end-host traffic prioritization
// that mitigates worker stragglers for distributed deep learning under
// parameter-server traffic contention (Huang, Chen & Ng, IPDPS 2019).
//
// TensorLights watches which hosts run two or more parameter servers
// and, only on those hosts, installs an htb root qdisc with up to six
// priority classes; each contending job's model-update traffic is mapped
// to a class by the job's PS TCP port. TLs-One assigns priorities once
// per arrival/departure; TLs-RR rotates the assignment every interval T
// so that all jobs make fair progress over time — the "traffic lights"
// of the title. The mechanism is work-conserving (every class may borrow
// up to the full link) and needs no changes to applications, the cluster
// scheduler, or hardware: it acts purely through tc.
package core

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/tc"
	"repro/internal/trace"
)

// Policy selects the priority assignment mode.
type Policy int

const (
	// PolicyFIFO disables TensorLights: the NIC keeps its default FIFO
	// qdisc. This is the paper's baseline.
	PolicyFIFO Policy = iota
	// PolicyOne is TLs-One: a static priority order, reconfigured only
	// on job arrival and departure.
	PolicyOne
	// PolicyRR is TLs-RR: the priority order rotates every Interval.
	PolicyRR
	// PolicyLPF is an adaptive extension beyond the paper: every
	// Interval, jobs are re-ranked least-progress-first, so whichever
	// job has fallen behind gets the green light next. It pursues
	// TLs-RR's fairness goal with feedback instead of blind rotation.
	PolicyLPF
	// PolicyStaticRate is the paper's §VII transmission-layer
	// alternative: each contending job is pinned to an equal static
	// rate share (rate = ceil = link/N). It is NOT work-conserving —
	// when a job is idle its share is wasted — which is exactly the
	// drawback the paper warns about; the ablation benchmark
	// quantifies it.
	PolicyStaticRate
)

// String names the policy as in the paper.
func (p Policy) String() string {
	switch p {
	case PolicyFIFO:
		return "FIFO"
	case PolicyOne:
		return "TLs-One"
	case PolicyRR:
		return "TLs-RR"
	case PolicyLPF:
		return "TLs-LPF"
	case PolicyStaticRate:
		return "StaticRate"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Order selects how contending jobs are ranked into priority bands.
// The paper deliberately does not constrain this choice (§IV-B).
type Order int

const (
	// OrderArrival ranks by job arrival; deterministic and what grid
	// search (identical update sizes) effectively gets.
	OrderArrival Order = iota
	// OrderRandom shuffles ranks once per (re)configuration.
	OrderRandom
	// OrderSmallestUpdate gives smaller model updates higher priority,
	// avoiding head-of-line blocking behind big updates.
	OrderSmallestUpdate
)

// String names the order.
func (o Order) String() string {
	switch o {
	case OrderArrival:
		return "arrival"
	case OrderRandom:
		return "random"
	case OrderSmallestUpdate:
		return "smallest-update"
	}
	return fmt.Sprintf("Order(%d)", int(o))
}

// Config tunes the controller. Zero values select the paper's settings.
type Config struct {
	Policy Policy
	// Bands is the number of distinct priority classes (the paper uses
	// up to six; tc supports a limited number, so jobs may share).
	Bands int
	// IntervalSec is the TLs-RR rotation period T (20 s in the paper).
	IntervalSec float64
	// Order ranks contending jobs into bands.
	Order Order
	// GuaranteeRateBps is each htb class's guaranteed rate (tiny, so
	// borrowing priority dominates). Default 1 Mbit/s.
	GuaranteeRateBps float64
	// UsePrioQdisc switches from htb (the paper's implementation) to a
	// plain prio qdisc — an ablation showing the mechanism is qdisc-
	// agnostic.
	UsePrioQdisc bool
}

func (c *Config) fillDefaults() {
	if c.Bands <= 0 {
		c.Bands = 6
	}
	if c.IntervalSec <= 0 {
		c.IntervalSec = 20
	}
	if c.GuaranteeRateBps <= 0 {
		c.GuaranteeRateBps = 1e6
	}
}

// JobInfo is what TensorLights needs to know about a job — all of it
// observable from outside the application.
type JobInfo struct {
	ID          int
	PSHost      int
	PSPort      int
	UpdateBytes int64
	arrivalSeq  int
	progress    int
}

// Controller is the TensorLights daemon.
type Controller struct {
	cfg Config
	k   *sim.Kernel
	tcc *tc.Controller
	rng *sim.RNG

	jobs       map[int]*JobInfo
	nextSeq    int
	rotation   int
	rotateEv   *sim.Event
	configured map[int]bool // hosts currently carrying a TLs config
	reconfigs  int

	// Tracer, when non-nil, receives tc_config and priority_rotate
	// events.
	Tracer trace.Tracer
}

func (c *Controller) emit(ev trace.Event) {
	if c.Tracer != nil {
		c.Tracer.Emit(ev)
	}
}

// New creates a controller issuing commands through the tc layer.
func New(k *sim.Kernel, tcc *tc.Controller, rng *sim.RNG, cfg Config) *Controller {
	cfg.fillDefaults()
	return &Controller{
		cfg:        cfg,
		k:          k,
		tcc:        tcc,
		rng:        rng.Stream("tensorlights"),
		jobs:       make(map[int]*JobInfo),
		configured: make(map[int]bool),
	}
}

// Config returns the effective configuration.
func (c *Controller) Config() Config { return c.cfg }

// Reconfigs returns how many host reconfigurations have been applied —
// the paper's cost metric for tc churn.
func (c *Controller) Reconfigs() int { return c.reconfigs }

// JobArrived registers a job and reconfigures its PS host if needed.
func (c *Controller) JobArrived(info JobInfo) {
	if c.cfg.Policy == PolicyFIFO {
		return
	}
	if _, dup := c.jobs[info.ID]; dup {
		panic(fmt.Sprintf("tensorlights: job %d arrived twice", info.ID))
	}
	info.arrivalSeq = c.nextSeq
	c.nextSeq++
	c.jobs[info.ID] = &info
	c.reconfigureHost(info.PSHost)
	c.armRotation()
}

// JobDeparted deregisters a job; its PS host is reconfigured (and the
// TLs qdisc removed entirely when fewer than two PSes remain).
func (c *Controller) JobDeparted(id int) {
	if c.cfg.Policy == PolicyFIFO {
		return
	}
	info, ok := c.jobs[id]
	if !ok {
		return
	}
	delete(c.jobs, id)
	c.reconfigureHost(info.PSHost)
	if len(c.jobs) == 0 && c.rotateEv != nil {
		c.k.Cancel(c.rotateEv)
		c.rotateEv = nil
	}
}

// JobProgress records a job's latest completed iteration; the LPF
// policy uses it to rank contending jobs. Progress for unknown jobs is
// ignored (the job may already have departed).
func (c *Controller) JobProgress(id, iteration int) {
	if j, ok := c.jobs[id]; ok {
		j.progress = iteration
	}
}

// rotatingPolicy reports whether the policy re-ranks on a timer.
func (c *Controller) rotatingPolicy() bool {
	return c.cfg.Policy == PolicyRR || c.cfg.Policy == PolicyLPF
}

// armRotation starts the TLs-RR/TLs-LPF timer on first demand.
func (c *Controller) armRotation() {
	if !c.rotatingPolicy() || c.rotateEv != nil {
		return
	}
	c.rotateEv = c.k.ScheduleAfter(c.cfg.IntervalSec, c.rotate)
}

// rotate advances the round-robin offset and reconfigures every
// contended host — the green/yellow light change.
func (c *Controller) rotate() {
	c.rotateEv = nil
	if len(c.jobs) == 0 {
		return
	}
	c.rotation++
	c.emit(trace.Event{
		At: c.k.Now(), Kind: trace.KindPriorityRotate,
		Job: -1, Host: -1, Worker: -1, Value: float64(c.rotation),
	})
	for _, host := range c.contendedHosts() {
		// A rotation only re-maps jobs to bands, so rewrite the filter
		// chain in place rather than rebuilding the qdisc tree —
		// queued traffic keeps flowing under the existing classes,
		// and the tc churn per rotation stays minimal.
		if c.configured[host] {
			c.rewriteFilters(host)
		} else {
			c.reconfigureHost(host)
		}
	}
	c.rotateEv = c.k.ScheduleAfter(c.cfg.IntervalSec, c.rotate)
}

// contendedHosts lists hosts carrying two or more PSes.
func (c *Controller) contendedHosts() []int {
	count := map[int]int{}
	for _, j := range c.jobs {
		count[j.PSHost]++
	}
	var hosts []int
	for h, n := range count {
		if n >= 2 {
			hosts = append(hosts, h)
		}
	}
	sort.Ints(hosts)
	return hosts
}

// jobsOnHost returns the jobs whose PS runs on host, rank-ordered by
// the configured Order policy.
func (c *Controller) jobsOnHost(host int) []*JobInfo {
	var jobs []*JobInfo
	for _, j := range c.jobs {
		if j.PSHost == host {
			jobs = append(jobs, j)
		}
	}
	if c.cfg.Policy == PolicyLPF {
		sort.Slice(jobs, func(i, k int) bool {
			if jobs[i].progress != jobs[k].progress {
				return jobs[i].progress < jobs[k].progress
			}
			return jobs[i].arrivalSeq < jobs[k].arrivalSeq
		})
		return jobs
	}
	switch c.cfg.Order {
	case OrderRandom:
		sort.Slice(jobs, func(i, k int) bool { return jobs[i].arrivalSeq < jobs[k].arrivalSeq })
		c.rng.Shuffle(len(jobs), func(i, k int) { jobs[i], jobs[k] = jobs[k], jobs[i] })
	case OrderSmallestUpdate:
		sort.Slice(jobs, func(i, k int) bool {
			if jobs[i].UpdateBytes != jobs[k].UpdateBytes {
				return jobs[i].UpdateBytes < jobs[k].UpdateBytes
			}
			return jobs[i].arrivalSeq < jobs[k].arrivalSeq
		})
	default: // OrderArrival
		sort.Slice(jobs, func(i, k int) bool { return jobs[i].arrivalSeq < jobs[k].arrivalSeq })
	}
	return jobs
}

// bandOf maps a job's rotated rank to a priority band. With more jobs
// than bands, consecutive ranks share bands in contiguous groups, as the
// paper's limited-band deployment does. LPF ranks already encode the
// desired order, so only TLs-RR applies the rotation offset.
func (c *Controller) bandOf(rank, njobs int) int {
	r := rank
	if c.cfg.Policy == PolicyRR {
		r = (rank + c.rotation) % njobs
	}
	return r * c.cfg.Bands / njobs
}

// reconfigureHost (re)installs the TensorLights qdisc tree on one host.
// Hosts with fewer than two local PSes revert to the default FIFO — the
// paper configures tc only where PSes contend.
func (c *Controller) reconfigureHost(host int) {
	jobs := c.jobsOnHost(host)
	if len(jobs) < 2 {
		if c.configured[host] {
			c.tcc.MustExec(host, "qdisc del dev eth0 root")
			delete(c.configured, host)
			c.reconfigs++
		}
		return
	}
	switch {
	case c.cfg.Policy == PolicyStaticRate:
		c.configureStaticRate(host, jobs)
	case c.cfg.UsePrioQdisc:
		c.configurePrio(host, jobs)
	default:
		c.configureHTB(host, jobs)
	}
	c.configured[host] = true
	c.reconfigs++
	c.emit(trace.Event{
		At: c.k.Now(), Kind: trace.KindTcConfig,
		Job: -1, Host: host, Worker: -1, Value: float64(len(jobs)),
		Detail: fmt.Sprintf("policy=%s jobs=%d", c.cfg.Policy, len(jobs)),
	})
}

// rewriteFilters re-maps each contending job's PS port to its rotated
// band without touching the qdisc tree.
func (c *Controller) rewriteFilters(host int) {
	jobs := c.jobsOnHost(host)
	if len(jobs) < 2 {
		c.reconfigureHost(host)
		return
	}
	bands := c.cfg.Bands
	if len(jobs) < bands {
		bands = len(jobs)
	}
	c.tcc.MustExec(host, "filter del dev eth0 all")
	for rank, j := range jobs {
		band := c.bandOf(rank, len(jobs))
		if band >= bands {
			band = bands - 1
		}
		c.tcc.MustExec(host, fmt.Sprintf(
			"filter add dev eth0 pref %d match sport %d flowid %d",
			rank, j.PSPort, band))
	}
	c.reconfigs++
}

// configureHTB builds the paper's implementation: htb root, one class
// per band with a tiny guaranteed rate and full-link ceil, and one
// filter per job mapping its PS source port to its band's class.
// Unclassified traffic (gradient pushes from any colocated workers,
// background flows) falls into the last class.
func (c *Controller) configureHTB(host int, jobs []*JobInfo) {
	bands := c.cfg.Bands
	if len(jobs) < bands {
		bands = len(jobs)
	}
	def := bands - 1
	ceil := c.tcc.LinkRateBps(host)
	c.tcc.MustExec(host, fmt.Sprintf("qdisc add dev eth0 root htb default %d", def))
	for b := 0; b < bands; b++ {
		c.tcc.MustExec(host, fmt.Sprintf(
			"class add dev eth0 classid %d rate %.0fbps ceil %.0fbit prio %d",
			b, c.cfg.GuaranteeRateBps/8, ceil, b))
	}
	for rank, j := range jobs {
		band := c.bandOf(rank, len(jobs))
		if band >= bands {
			band = bands - 1
		}
		c.tcc.MustExec(host, fmt.Sprintf(
			"filter add dev eth0 pref %d match sport %d flowid %d",
			rank, j.PSPort, band))
	}
}

// configureStaticRate pins each contending job to an equal static rate
// share: one htb class per job with rate = ceil = link/N and equal
// priority. Without borrowing headroom the allocation is not
// work-conserving; an idle job's share is simply lost.
func (c *Controller) configureStaticRate(host int, jobs []*JobInfo) {
	link := c.tcc.LinkRateBps(host)
	share := link / float64(len(jobs))
	c.tcc.MustExec(host, fmt.Sprintf("qdisc add dev eth0 root htb default %d", len(jobs)-1))
	for rank, j := range jobs {
		c.tcc.MustExec(host, fmt.Sprintf(
			"class add dev eth0 classid %d rate %.0fbit ceil %.0fbit prio 0",
			rank, share, share))
		c.tcc.MustExec(host, fmt.Sprintf(
			"filter add dev eth0 pref %d match sport %d flowid %d",
			rank, j.PSPort, rank))
	}
}

// configurePrio is the ablation variant using a plain prio qdisc.
func (c *Controller) configurePrio(host int, jobs []*JobInfo) {
	bands := c.cfg.Bands
	if len(jobs) < bands {
		bands = len(jobs)
	}
	c.tcc.MustExec(host, fmt.Sprintf("qdisc add dev eth0 root prio bands %d", bands))
	for rank, j := range jobs {
		band := c.bandOf(rank, len(jobs))
		if band >= bands {
			band = bands - 1
		}
		c.tcc.MustExec(host, fmt.Sprintf(
			"filter add dev eth0 pref %d match sport %d flowid %d",
			rank, j.PSPort, band))
	}
}
