package core

import (
	"testing"

	"repro/internal/policy"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tc"
	"repro/internal/trace"
)

func newHarness(hosts int, cfg Config) (*sim.Kernel, *simnet.Fabric, *Controller) {
	k := sim.NewKernel()
	fab := simnet.New(k, sim.NewRNG(1), simnet.Config{})
	for i := 0; i < hosts; i++ {
		fab.AddHost("h")
	}
	ctl := New(k, tc.NewController(fab), sim.NewRNG(1), cfg)
	return k, fab, ctl
}

func job(id, host int) JobInfo {
	return JobInfo{ID: id, PSHost: host, PSPort: 5000 + id, UpdateBytes: 1_868_000}
}

func TestFIFOPolicyIsNoOp(t *testing.T) {
	_, fab, ctl := newHarness(3, Config{Policy: PolicyFIFO})
	ctl.JobArrived(job(0, 0))
	ctl.JobArrived(job(1, 0))
	if fab.Host(0).Egress.Qdisc().Kind() != "pfifo" {
		t.Fatal("FIFO policy must not configure tc")
	}
	ctl.JobDeparted(0)
	if ctl.Reconfigs() != 0 {
		t.Fatal("FIFO policy reconfigured")
	}
}

func TestSinglePSNotConfigured(t *testing.T) {
	_, fab, ctl := newHarness(3, Config{Policy: PolicyOne})
	ctl.JobArrived(job(0, 0))
	if fab.Host(0).Egress.Qdisc().Kind() != "pfifo" {
		t.Fatal("non-contended host was configured")
	}
}

func TestColocationTriggersHTB(t *testing.T) {
	_, fab, ctl := newHarness(3, Config{Policy: PolicyOne})
	ctl.JobArrived(job(0, 0))
	ctl.JobArrived(job(1, 0))
	htb, ok := fab.Host(0).Egress.Qdisc().(*qdisc.HTB)
	if !ok {
		t.Fatal("contended host not running htb")
	}
	// Two jobs -> two classes, filters map each PS port to its band.
	if len(htb.Classes()) != 2 {
		t.Fatalf("classes %v", htb.Classes())
	}
	b0 := htb.Classifier().Classify(&qdisc.Chunk{SrcPort: 5000})
	b1 := htb.Classifier().Classify(&qdisc.Chunk{SrcPort: 5001})
	if b0 == b1 {
		t.Fatal("two contending jobs share a band with bands available")
	}
	// Other hosts untouched.
	if fab.Host(1).Egress.Qdisc().Kind() != "pfifo" {
		t.Fatal("uncontended host touched")
	}
}

func TestDepartureRemovesConfig(t *testing.T) {
	_, fab, ctl := newHarness(3, Config{Policy: PolicyOne})
	ctl.JobArrived(job(0, 0))
	ctl.JobArrived(job(1, 0))
	ctl.JobDeparted(0)
	if fab.Host(0).Egress.Qdisc().Kind() != "pfifo" {
		t.Fatal("config not removed when contention ended")
	}
	ctl.JobDeparted(1)
	ctl.JobDeparted(99) // unknown id is a no-op
}

func TestBandSharingWithManyJobs(t *testing.T) {
	_, fab, ctl := newHarness(2, Config{Policy: PolicyOne, Bands: 6})
	for i := 0; i < 21; i++ {
		ctl.JobArrived(job(i, 0))
	}
	htb := fab.Host(0).Egress.Qdisc().(*qdisc.HTB)
	if len(htb.Classes()) != 6 {
		t.Fatalf("classes %d, want 6 (tc band limit)", len(htb.Classes()))
	}
	// All 21 ports classified; every band used by 3-4 jobs.
	perBand := map[qdisc.ClassID]int{}
	for i := 0; i < 21; i++ {
		b := htb.Classifier().Classify(&qdisc.Chunk{SrcPort: 5000 + i})
		perBand[b]++
	}
	if len(perBand) != 6 {
		t.Fatalf("bands used %d, want 6", len(perBand))
	}
	for b, n := range perBand {
		if n < 3 || n > 4 {
			t.Fatalf("band %d has %d jobs", b, n)
		}
	}
}

func TestClassesAreWorkConserving(t *testing.T) {
	_, fab, ctl := newHarness(2, Config{Policy: PolicyOne})
	ctl.JobArrived(job(0, 0))
	ctl.JobArrived(job(1, 0))
	htb := fab.Host(0).Egress.Qdisc().(*qdisc.HTB)
	link := fab.Host(0).Egress.RateBytes()
	for _, id := range htb.Classes() {
		cfg := htb.Class(id).Config()
		if cfg.Ceil < link*0.99 {
			t.Fatalf("class %d ceil %.0f < link %.0f: not work-conserving", id, cfg.Ceil, link)
		}
	}
}

func TestRotationChangesBands(t *testing.T) {
	k, fab, ctl := newHarness(2, Config{Policy: PolicyRR, IntervalSec: 10, Bands: 6})
	for i := 0; i < 6; i++ {
		ctl.JobArrived(job(i, 0))
	}
	htb := fab.Host(0).Egress.Qdisc().(*qdisc.HTB)
	bandOf := func(port int) qdisc.ClassID {
		return htb.Classifier().Classify(&qdisc.Chunk{SrcPort: port})
	}
	before := bandOf(5000)
	k.RunUntil(11) // one rotation
	after := bandOf(5000)
	if before == after {
		t.Fatal("rotation did not change the band assignment")
	}
	// Rotation must not replace the qdisc tree (queued traffic keeps
	// flowing in its classes).
	if fab.Host(0).Egress.Qdisc() != qdisc.Qdisc(htb) {
		t.Fatal("rotation rebuilt the qdisc")
	}
	// After a full cycle of 6 rotations the assignment returns.
	k.RunUntil(61)
	if got := bandOf(5000); got != before {
		t.Fatalf("after full cycle band %d, want %d", got, before)
	}
}

func TestRotationStopsWhenJobsGone(t *testing.T) {
	k, _, ctl := newHarness(2, Config{Policy: PolicyRR, IntervalSec: 5})
	ctl.JobArrived(job(0, 0))
	ctl.JobArrived(job(1, 0))
	ctl.JobDeparted(0)
	ctl.JobDeparted(1)
	k.RunUntil(100)
	if k.Pending() != 0 {
		t.Fatal("rotation timer leaked after all jobs departed")
	}
}

func TestTLsOneDoesNotRotate(t *testing.T) {
	k, fab, ctl := newHarness(2, Config{Policy: PolicyOne})
	ctl.JobArrived(job(0, 0))
	ctl.JobArrived(job(1, 0))
	htb := fab.Host(0).Egress.Qdisc().(*qdisc.HTB)
	before := htb.Classifier().Classify(&qdisc.Chunk{SrcPort: 5000})
	k.RunUntil(100)
	after := htb.Classifier().Classify(&qdisc.Chunk{SrcPort: 5000})
	if before != after {
		t.Fatal("TLs-One must keep a static assignment")
	}
}

func TestOrderSmallestUpdate(t *testing.T) {
	_, fab, ctl := newHarness(2, Config{Policy: PolicyOne, Order: OrderSmallestUpdate})
	big := job(0, 0)
	big.UpdateBytes = 100 << 20
	small := job(1, 0)
	small.UpdateBytes = 1 << 20
	ctl.JobArrived(big)
	ctl.JobArrived(small)
	htb := fab.Host(0).Egress.Qdisc().(*qdisc.HTB)
	bandSmall := htb.Classifier().Classify(&qdisc.Chunk{SrcPort: small.PSPort})
	bandBig := htb.Classifier().Classify(&qdisc.Chunk{SrcPort: big.PSPort})
	if bandSmall >= bandBig {
		t.Fatalf("smallest-update order: small band %d, big band %d", bandSmall, bandBig)
	}
}

func TestOrderRandomIsDeterministicPerSeed(t *testing.T) {
	collect := func() []qdisc.ClassID {
		_, fab, ctl := newHarness(2, Config{Policy: PolicyOne, Order: OrderRandom})
		for i := 0; i < 6; i++ {
			ctl.JobArrived(job(i, 0))
		}
		htb := fab.Host(0).Egress.Qdisc().(*qdisc.HTB)
		var bands []qdisc.ClassID
		for i := 0; i < 6; i++ {
			bands = append(bands, htb.Classifier().Classify(&qdisc.Chunk{SrcPort: 5000 + i}))
		}
		return bands
	}
	a, b := collect(), collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random order not reproducible for equal seeds")
		}
	}
}

func TestPrioQdiscVariant(t *testing.T) {
	_, fab, ctl := newHarness(2, Config{Policy: PolicyOne, UsePrioQdisc: true})
	ctl.JobArrived(job(0, 0))
	ctl.JobArrived(job(1, 0))
	if fab.Host(0).Egress.Qdisc().Kind() != "prio" {
		t.Fatal("prio variant not installed")
	}
}

func TestMultiHostContention(t *testing.T) {
	_, fab, ctl := newHarness(4, Config{Policy: PolicyOne})
	// Hosts 0 and 1 each get two PSes; host 2 gets one.
	ctl.JobArrived(job(0, 0))
	ctl.JobArrived(job(1, 0))
	ctl.JobArrived(job(2, 1))
	ctl.JobArrived(job(3, 1))
	ctl.JobArrived(job(4, 2))
	if fab.Host(0).Egress.Qdisc().Kind() != "htb" ||
		fab.Host(1).Egress.Qdisc().Kind() != "htb" {
		t.Fatal("contended hosts not configured")
	}
	if fab.Host(2).Egress.Qdisc().Kind() != "pfifo" {
		t.Fatal("single-PS host configured")
	}
}

func TestDuplicateArrivalPanics(t *testing.T) {
	_, _, ctl := newHarness(2, Config{Policy: PolicyOne})
	ctl.JobArrived(job(0, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate arrival accepted")
		}
	}()
	ctl.JobArrived(job(0, 0))
}

func TestTraceEventsEmitted(t *testing.T) {
	k, _, ctl := newHarness(2, Config{Policy: PolicyRR, IntervalSec: 5})
	buf := &trace.Buffer{}
	ctl.Tracer = buf
	ctl.JobArrived(job(0, 0))
	ctl.JobArrived(job(1, 0))
	k.RunUntil(12)
	var cfgs, rots int
	for _, e := range buf.Events() {
		switch e.Kind {
		case trace.KindTcConfig:
			cfgs++
		case trace.KindPriorityRotate:
			rots++
		}
	}
	if cfgs == 0 || rots == 0 {
		t.Fatalf("trace events: cfgs=%d rots=%d", cfgs, rots)
	}
}

func TestPolicyAndOrderStrings(t *testing.T) {
	if PolicyFIFO.String() != "FIFO" || PolicyOne.String() != "TLs-One" || PolicyRR.String() != "TLs-RR" {
		t.Fatal("policy names")
	}
	if OrderArrival.String() != "arrival" || OrderRandom.String() != "random" ||
		OrderSmallestUpdate.String() != "smallest-update" {
		t.Fatal("order names")
	}
	if Policy(99).String() == "" || Order(99).String() == "" {
		t.Fatal("unknown enum strings")
	}
}

func TestConfigDefaults(t *testing.T) {
	_, _, ctl := newHarness(2, Config{Policy: PolicyOne})
	cfg := ctl.Config()
	if cfg.Bands != 6 || cfg.IntervalSec != 20 || cfg.GuaranteeRateBps != 1e6 {
		t.Fatalf("defaults %+v", cfg)
	}
}

// The band spread covers all bands and is monotone in rank for a fixed
// rotation (the math the controller delegates to policy.SpreadBands).
func TestBandSpreadCoversAllBands(t *testing.T) {
	bands := policy.SpreadBands(21, 6, 0)
	seen := map[int]bool{}
	prev := -1
	for rank, b := range bands {
		if b < prev {
			t.Fatalf("band spread not monotone at rank %d", rank)
		}
		prev = b
		seen[b] = true
	}
	if len(seen) != 6 {
		t.Fatalf("bands used %d", len(seen))
	}
}

// collJob describes a ring all-reduce job: its traffic leaves every
// ring host, always from the job's collective port.
func collJob(id int, port int, hosts ...int) JobInfo {
	return JobInfo{
		ID: id, PSHost: hosts[0], PSPort: port, UpdateBytes: 244_000_000,
		SenderHosts: hosts, Ports: []int{port},
	}
}

func TestCollectiveJobConfiguresEveryRingHost(t *testing.T) {
	_, fab, ctl := newHarness(4, Config{Policy: PolicyOne})
	// Two rings sharing hosts 0-2; host 3 carries only ring B.
	ctl.JobArrived(collJob(100, 7000, 0, 1, 2))
	ctl.JobArrived(collJob(101, 7100, 0, 1, 2, 3))
	for h := 0; h <= 2; h++ {
		htb, ok := fab.Host(h).Egress.Qdisc().(*qdisc.HTB)
		if !ok {
			t.Fatalf("host %d not running htb", h)
		}
		a := htb.Classifier().Classify(&qdisc.Chunk{SrcPort: 7000})
		b := htb.Classifier().Classify(&qdisc.Chunk{SrcPort: 7100})
		if a == b {
			t.Fatalf("host %d: rings share a band", h)
		}
	}
	if fab.Host(3).Egress.Qdisc().Kind() != "pfifo" {
		t.Fatal("single-job host 3 was configured")
	}
	// Ring A departs: every host it contended on returns to FIFO.
	ctl.JobDeparted(100)
	for h := 0; h <= 3; h++ {
		if fab.Host(h).Egress.Qdisc().Kind() != "pfifo" {
			t.Fatalf("host %d still configured after contention ended", h)
		}
	}
}

func TestMixedPSAndCollectiveRankedUniformly(t *testing.T) {
	_, fab, ctl := newHarness(4, Config{Policy: PolicyOne, Bands: 6})
	// A PS job on host 0 and a ring crossing host 0: host 0 carries
	// both traffic classes and must rank the two jobs into distinct
	// bands, whatever their workload type.
	ctl.JobArrived(job(0, 0))
	ctl.JobArrived(collJob(100, 7000, 0, 1, 2))
	htb, ok := fab.Host(0).Egress.Qdisc().(*qdisc.HTB)
	if !ok {
		t.Fatal("mixed host not running htb")
	}
	ps := htb.Classifier().Classify(&qdisc.Chunk{SrcPort: 5000})
	ring := htb.Classifier().Classify(&qdisc.Chunk{SrcPort: 7000})
	if ps == ring {
		t.Fatal("PS and collective jobs share a band")
	}
	if ps == htb.Classifier().Default() && ring == htb.Classifier().Default() {
		t.Fatal("both jobs fell through to the default class")
	}
}

func TestMultiPortJobFiltersToOneBand(t *testing.T) {
	_, fab, ctl := newHarness(3, Config{Policy: PolicyOne})
	// One job emitting from two source ports (e.g. PS fan-out plus a
	// collective ring): both filters must land in the same band.
	two := JobInfo{ID: 0, PSHost: 0, PSPort: 5000, UpdateBytes: 1,
		Ports: []int{5000, 7000}}
	ctl.JobArrived(two)
	ctl.JobArrived(job(1, 0))
	htb := fab.Host(0).Egress.Qdisc().(*qdisc.HTB)
	cl := htb.Classifier()
	a := cl.Classify(&qdisc.Chunk{SrcPort: 5000})
	b := cl.Classify(&qdisc.Chunk{SrcPort: 7000})
	if a != b {
		t.Fatalf("one job's two ports map to bands %d and %d", a, b)
	}
	if other := cl.Classify(&qdisc.Chunk{SrcPort: 5001}); other == a {
		t.Fatal("second job shares the first job's band")
	}
	// Filter prefs must be unique across the chain.
	seen := map[int]bool{}
	for _, f := range cl.Filters() {
		if seen[f.Pref] {
			t.Fatalf("duplicate filter pref %d", f.Pref)
		}
		seen[f.Pref] = true
	}
}

func TestCollectiveRotationRotatesRingHosts(t *testing.T) {
	k, fab, ctl := newHarness(3, Config{Policy: PolicyRR, IntervalSec: 5})
	ctl.JobArrived(collJob(100, 7000, 0, 1, 2))
	ctl.JobArrived(collJob(101, 7100, 0, 1, 2))
	htb := fab.Host(1).Egress.Qdisc().(*qdisc.HTB)
	before := htb.Classifier().Classify(&qdisc.Chunk{SrcPort: 7000})
	k.RunUntil(6) // one rotation
	after := htb.Classifier().Classify(&qdisc.Chunk{SrcPort: 7000})
	if before == after {
		t.Fatal("rotation did not move the ring job's band")
	}
}
