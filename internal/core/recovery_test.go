package core

import (
	"fmt"
	"testing"

	"repro/internal/trace"
)

// failWindow installs an exec hook on the controller's tc layer that
// fails every command on the given host while *failing is true.
func failWindow(ctl *Controller, host int, failing *bool) {
	ctl.tcc.SetExecHook(func(h int, cmd string) error {
		if h == host && *failing {
			return fmt.Errorf("tc: injected outage on host %d", h)
		}
		return nil
	})
}

func TestApplyRetriesThroughTransientFailure(t *testing.T) {
	k, fab, ctl := newHarness(2, Config{
		Policy: PolicyOne, RetryBackoffSec: 0.1, MaxExecRetries: 4,
	})
	failing := true
	failWindow(ctl, 0, &failing)
	ctl.JobArrived(job(0, 0))
	ctl.JobArrived(job(1, 0)) // apply fails, retry scheduled
	if fab.Host(0).Egress.Qdisc().Kind() != "pfifo" {
		t.Fatal("failed apply left state installed")
	}
	if ctl.Stats().Retries == 0 {
		t.Fatal("no retry scheduled")
	}
	// Outage clears before the first retry fires.
	k.Schedule(0.05, func() { failing = false })
	k.RunUntil(1)
	if fab.Host(0).Egress.Qdisc().Kind() != "htb" {
		t.Fatalf("retry did not install htb (have %s)", fab.Host(0).Egress.Qdisc().Kind())
	}
	if ctl.Stats().Fallbacks != 0 {
		t.Fatal("transient failure escalated to fallback")
	}
}

func TestRetryBackoffIsExponential(t *testing.T) {
	k, _, ctl := newHarness(2, Config{
		Policy: PolicyOne, RetryBackoffSec: 0.1, MaxExecRetries: 3,
		ReconcileIntervalSec: -1,
	})
	buf := &trace.Buffer{}
	ctl.Tracer = buf
	failing := true
	failWindow(ctl, 0, &failing)
	ctl.JobArrived(job(0, 0))
	ctl.JobArrived(job(1, 0))
	k.RunUntil(10)
	var errAt []float64
	for _, e := range buf.Events() {
		if e.Kind == trace.KindTcError {
			errAt = append(errAt, e.At)
		}
	}
	// Initial failure + 3 retries, at 0, 0.1, 0.3, 0.7.
	if len(errAt) != 4 {
		t.Fatalf("tc_error events %d, want 4: %v", len(errAt), errAt)
	}
	gaps := []float64{errAt[1] - errAt[0], errAt[2] - errAt[1], errAt[3] - errAt[2]}
	for i := 1; i < len(gaps); i++ {
		if gaps[i] < gaps[i-1]*1.9 {
			t.Fatalf("backoff not doubling: gaps %v", gaps)
		}
	}
}

func TestPersistentFailureFallsBackToFIFO(t *testing.T) {
	k, fab, ctl := newHarness(2, Config{
		Policy: PolicyOne, RetryBackoffSec: 0.05, MaxExecRetries: 2,
		ReconcileIntervalSec: -1,
	})
	buf := &trace.Buffer{}
	ctl.Tracer = buf
	failing := true
	failWindow(ctl, 0, &failing)
	ctl.JobArrived(job(0, 0))
	ctl.JobArrived(job(1, 0))
	k.RunUntil(10)
	st := ctl.Stats()
	if st.Fallbacks != 1 || st.Retries != 2 {
		t.Fatalf("stats %+v, want 1 fallback after 2 retries", st)
	}
	if got := ctl.FallbackHosts(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("fallback hosts %v", got)
	}
	if fab.Host(0).Egress.Qdisc().Kind() != "pfifo" {
		t.Fatalf("fallback host not on FIFO (have %s)", fab.Host(0).Egress.Qdisc().Kind())
	}
	var fb int
	for _, e := range buf.Events() {
		if e.Kind == trace.KindTcFallback {
			fb++
		}
	}
	if fb != 1 {
		t.Fatalf("fallback events %d", fb)
	}
}

func TestReconcileRestoresFallbackHost(t *testing.T) {
	k, fab, ctl := newHarness(2, Config{
		Policy: PolicyOne, RetryBackoffSec: 0.05, MaxExecRetries: 1,
		ReconcileIntervalSec: 1,
	})
	buf := &trace.Buffer{}
	ctl.Tracer = buf
	failing := true
	failWindow(ctl, 0, &failing)
	ctl.JobArrived(job(0, 0))
	ctl.JobArrived(job(1, 0))
	k.RunUntil(0.5) // retries exhausted, host in fallback
	if len(ctl.FallbackHosts()) != 1 {
		t.Fatal("host not in fallback")
	}
	// Actuation heals; the next reconcile tick restores the bands.
	failing = false
	k.RunUntil(3)
	if len(ctl.FallbackHosts()) != 0 {
		t.Fatal("reconcile did not clear fallback")
	}
	if fab.Host(0).Egress.Qdisc().Kind() != "htb" {
		t.Fatalf("priority bands not restored (have %s)", fab.Host(0).Egress.Qdisc().Kind())
	}
	if ctl.Stats().Repairs == 0 {
		t.Fatal("repair not counted")
	}
	var repairs int
	for _, e := range buf.Events() {
		if e.Kind == trace.KindTcRepair {
			repairs++
		}
	}
	if repairs == 0 {
		t.Fatal("no tc_repair trace event")
	}
}

func TestReconcileRepairsDrift(t *testing.T) {
	k, fab, ctl := newHarness(2, Config{
		Policy: PolicyOne, ReconcileIntervalSec: 1,
	})
	ctl.JobArrived(job(0, 0))
	ctl.JobArrived(job(1, 0))
	if fab.Host(0).Egress.Qdisc().Kind() != "htb" {
		t.Fatal("setup failed")
	}
	// Something outside the controller wipes the qdisc tree (an operator
	// running `tc qdisc del`, a NIC reset restoring defaults).
	k.Schedule(0.5, func() {
		if err := ctl.tcc.Exec(0, "qdisc del dev eth0 root"); err != nil {
			t.Errorf("drift injection failed: %v", err)
		}
	})
	k.RunUntil(0.9)
	if fab.Host(0).Egress.Qdisc().Kind() != "pfifo" {
		t.Fatal("drift not in effect")
	}
	k.RunUntil(2)
	if fab.Host(0).Egress.Qdisc().Kind() != "htb" {
		t.Fatalf("reconcile did not repair drift (have %s)", fab.Host(0).Egress.Qdisc().Kind())
	}
	if ctl.Stats().Repairs == 0 {
		t.Fatal("drift repair not counted")
	}
}

func TestRotationDuringOutageRecovers(t *testing.T) {
	// TLs-RR rotating while the host's tc is down: the rotation's filter
	// rewrite fails, and once the outage clears the retry/reconcile path
	// must install the CURRENT rotation's assignment.
	k, fab, ctl := newHarness(2, Config{
		Policy: PolicyRR, IntervalSec: 1, Bands: 6,
		RetryBackoffSec: 0.2, MaxExecRetries: 2, ReconcileIntervalSec: 1,
	})
	for i := 0; i < 3; i++ {
		ctl.JobArrived(job(i, 0))
	}
	failing := false
	failWindow(ctl, 0, &failing)
	k.Schedule(0.9, func() { failing = true })  // down across the t=1 rotation
	k.Schedule(2.5, func() { failing = false }) // heals before t=3
	k.RunUntil(10)
	if fab.Host(0).Egress.Qdisc().Kind() != "htb" {
		t.Fatalf("bands not restored after outage (have %s)", fab.Host(0).Egress.Qdisc().Kind())
	}
	if len(ctl.FallbackHosts()) != 0 {
		t.Fatal("host stuck in fallback after outage cleared")
	}
}

func TestRecoveryIsDeterministic(t *testing.T) {
	run := func() (int, int, int, string) {
		k, _, ctl := newHarness(2, Config{
			Policy: PolicyRR, IntervalSec: 1,
			RetryBackoffSec: 0.1, MaxExecRetries: 2, ReconcileIntervalSec: 0.7,
		})
		failing := false
		failWindow(ctl, 0, &failing)
		ctl.JobArrived(job(0, 0))
		ctl.JobArrived(job(1, 0))
		k.Schedule(0.5, func() { failing = true })
		k.Schedule(2.0, func() { failing = false })
		k.RunUntil(8)
		st := ctl.Stats()
		return st.Retries, st.Fallbacks, st.Repairs, ctl.tcc.Fingerprint(0)
	}
	r1, f1, p1, fp1 := run()
	r2, f2, p2, fp2 := run()
	if r1 != r2 || f1 != f2 || p1 != p2 || fp1 != fp2 {
		t.Fatalf("same-seed recovery diverged: (%d,%d,%d,%q) vs (%d,%d,%d,%q)",
			r1, f1, p1, fp1, r2, f2, p2, fp2)
	}
	if p1 == 0 {
		t.Fatal("scenario produced no repairs")
	}
}
