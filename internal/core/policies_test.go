package core

import (
	"testing"

	"repro/internal/qdisc"
	"repro/internal/simnet"
)

// simnetFlow builds a one-shot flow spec recording its finish time.
func simnetFlow(src, dst, sport int, bytes int64, finished *float64) simnet.FlowSpec {
	return simnet.FlowSpec{
		Src: src, Dst: dst, SrcPort: sport, DstPort: 9999, Bytes: bytes,
		OnComplete: func(fl *simnet.Flow) { *finished = fl.Finished },
	}
}

func TestStaticRatePolicy(t *testing.T) {
	_, fab, ctl := newHarness(2, Config{Policy: PolicyStaticRate})
	ctl.JobArrived(job(0, 0))
	ctl.JobArrived(job(1, 0))
	htb, ok := fab.Host(0).Egress.Qdisc().(*qdisc.HTB)
	if !ok {
		t.Fatal("static rate did not install htb")
	}
	link := fab.Host(0).Egress.RateBytes()
	for _, id := range htb.Classes() {
		cfg := htb.Class(id).Config()
		want := link / 2
		if cfg.Ceil < want*0.99 || cfg.Ceil > want*1.01 {
			t.Fatalf("class %d ceil %.0f, want ~%.0f (link/2)", id, cfg.Ceil, want)
		}
		if cfg.Ceil != cfg.Rate {
			t.Fatal("static rate must pin ceil = rate (no borrowing)")
		}
	}
	// Adding a third job shrinks everyone's share.
	ctl.JobArrived(job(2, 0))
	htb = fab.Host(0).Egress.Qdisc().(*qdisc.HTB)
	got := htb.Class(0).Config().Ceil
	want := link / 3
	if got < want*0.99 || got > want*1.01 {
		t.Fatalf("share after third arrival %.0f, want ~%.0f", got, want)
	}
}

func TestStaticRateNotWorkConserving(t *testing.T) {
	// With one job idle, the other cannot exceed its share: sending a
	// burst through the configured qdisc takes ~2x the line-rate time.
	k, fab, ctl := newHarness(2, Config{Policy: PolicyStaticRate})
	ctl.JobArrived(job(0, 0))
	ctl.JobArrived(job(1, 0))
	htb := fab.Host(0).Egress.Qdisc().(*qdisc.HTB)
	_ = htb
	// Drive a 16 MB burst for job 0 only; job 1 stays idle.
	bytes := int64(16 << 20)
	var finished float64
	fab.Send(simnetFlow(0, 1, 5000, bytes, &finished))
	// The reconcile loop keeps ticking while jobs are registered, so run
	// to a horizon instead of draining the event queue.
	k.RunUntil(30)
	if finished == 0 {
		t.Fatal("burst did not finish")
	}
	lineTime := float64(bytes) * fab.Config().WireOverhead / fab.Host(0).Egress.RateBytes()
	shareTime := float64(bytes) / (fab.Host(0).Egress.RateBytes() / 2)
	if finished < 0.85*shareTime {
		t.Fatalf("static rate finished in %.4fs, share time %.4fs: share not enforced",
			finished, shareTime)
	}
	if finished <= lineTime {
		t.Fatalf("static rate ran at line rate (%.4fs <= %.4fs)", finished, lineTime)
	}
}

func TestLPFRanksByProgress(t *testing.T) {
	k, fab, ctl := newHarness(2, Config{Policy: PolicyLPF, IntervalSec: 5, Bands: 6})
	for i := 0; i < 4; i++ {
		ctl.JobArrived(job(i, 0))
	}
	// Job 3 is far behind, job 0 far ahead.
	ctl.JobProgress(0, 100)
	ctl.JobProgress(1, 50)
	ctl.JobProgress(2, 20)
	ctl.JobProgress(3, 1)
	k.RunUntil(6) // one re-rank
	htb := fab.Host(0).Egress.Qdisc().(*qdisc.HTB)
	bandOf := func(port int) qdisc.ClassID {
		return htb.Classifier().Classify(&qdisc.Chunk{SrcPort: port})
	}
	if bandOf(5003) >= bandOf(5000) {
		t.Fatalf("least-progress job not prioritized: job3 band %d, job0 band %d",
			bandOf(5003), bandOf(5000))
	}
	// Progress inverts -> ranking follows at the next interval.
	ctl.JobProgress(3, 500)
	k.RunUntil(11)
	if bandOf(5003) <= bandOf(5002) {
		t.Fatalf("LPF did not adapt: job3 band %d, job2 band %d", bandOf(5003), bandOf(5002))
	}
}

func TestJobProgressUnknownJobIgnored(t *testing.T) {
	_, _, ctl := newHarness(2, Config{Policy: PolicyLPF})
	ctl.JobProgress(99, 5) // must not panic
}

func TestNewPolicyStrings(t *testing.T) {
	if PolicyLPF.String() != "TLs-LPF" || PolicyStaticRate.String() != "StaticRate" {
		t.Fatal("policy names")
	}
}
