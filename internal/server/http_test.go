package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	tensorlights "repro"
)

func httpServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Kill()
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, cfg tensorlights.ExperimentConfig, client string) (*http.Response, JobStatus) {
	t.Helper()
	body, err := json.Marshal(SubmitRequest{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Client-ID", client)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	raw, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(raw, &st)
	return resp, st
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}
	return resp
}

func TestHTTPSubmitPollAndList(t *testing.T) {
	cfg := testConfig(t)
	cfg.Runner = func(ctx context.Context, c tensorlights.ExperimentConfig) (*tensorlights.Result, error) {
		return &tensorlights.Result{AvgJCT: 9}, nil
	}
	s, ts := httpServer(t, cfg)

	resp, st := postJob(t, ts, expCfg(1), "c1")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d, want 202", resp.StatusCode)
	}
	if st.ID == "" {
		t.Fatalf("submit returned no job id: %+v", st)
	}
	waitTerminal(t, s, st.ID)

	var got JobStatus
	if r := getJSON(t, ts, "/v1/jobs/"+st.ID, &got); r.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", r.StatusCode)
	}
	if got.State != JobDone || got.Result == nil || got.Result.AvgJCT != 9 {
		t.Fatalf("polled job: %+v", got)
	}

	var list []*JobStatus
	getJSON(t, ts, "/v1/jobs", &list)
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list: %+v", list)
	}
	if list[0].Result != nil {
		t.Fatalf("list should strip results, got %+v", list[0].Result)
	}

	if r := getJSON(t, ts, "/v1/jobs/nope", nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", r.StatusCode)
	}
}

func TestHTTPOverload429WithRetryAfterHeader(t *testing.T) {
	// HTTP face of the overload acceptance test: full queue → 429 with
	// a parseable Retry-After header; identical resubmission after
	// completion → 200 straight from the dedup cache.
	cfg := testConfig(t)
	cfg.Workers = 1
	cfg.QueueDepth = 1
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	cfg.Runner = func(ctx context.Context, c tensorlights.ExperimentConfig) (*tensorlights.Result, error) {
		started <- struct{}{}
		select {
		case <-gate:
			return &tensorlights.Result{AvgJCT: float64(c.Seed)}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s, ts := httpServer(t, cfg)

	_, first := postJob(t, ts, expCfg(1), "c1")
	<-started
	postJob(t, ts, expCfg(2), "c1") // fills the depth-1 queue

	resp, _ := postJob(t, ts, expCfg(3), "c1")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded submit: %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After header %q, want integer seconds >= 1", ra)
	}

	close(gate)
	waitTerminal(t, s, first.ID)

	// Identical (config, seed) resubmission: 200 + cached result, not
	// another 202.
	resp2, st2 := postJob(t, ts, expCfg(1), "c1")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("dedup resubmit: %d, want 200", resp2.StatusCode)
	}
	if !st2.Deduped || st2.Result == nil || st2.Result.AvgJCT != 1 {
		t.Fatalf("dedup resubmit body: %+v", st2)
	}
}

func TestHTTPCancel(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 1
	cfg.Runner = func(ctx context.Context, c tensorlights.ExperimentConfig) (*tensorlights.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	s, ts := httpServer(t, cfg)
	_, st := postJob(t, ts, expCfg(1), "c1")
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs/"+st.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	fin := waitTerminal(t, s, st.ID)
	if fin.State != JobCancelled {
		t.Fatalf("cancelled via HTTP but settled as %+v", fin)
	}
}

func TestHTTPHealthReadyMetricsAndDrain(t *testing.T) {
	cfg := testConfig(t)
	cfg.Runner = func(ctx context.Context, c tensorlights.ExperimentConfig) (*tensorlights.Result, error) {
		return &tensorlights.Result{AvgJCT: 1}, nil
	}
	s, ts := httpServer(t, cfg)

	if r := getJSON(t, ts, "/healthz", nil); r.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", r.StatusCode)
	}
	if r := getJSON(t, ts, "/readyz", nil); r.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %d", r.StatusCode)
	}

	_, st := postJob(t, ts, expCfg(1), "c1")
	waitTerminal(t, s, st.ID)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	for _, want := range []string{
		"tlsimd_jobs_submitted_total 1",
		"tlsimd_jobs_completed_total 1",
		"tlsimd_queue_depth 0",
		`tlsimd_jobs_rejected_total{reason="queue_full"} 0`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}

	// Drain endpoint: 202, then readiness flips to 503 and submissions
	// get 503.
	dresp, err := ts.Client().Post(ts.URL+"/v1/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("drain: %d, want 202", dresp.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}
	if r := getJSON(t, ts, "/readyz", nil); r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", r.StatusCode)
	}
	sresp, _ := postJob(t, ts, expCfg(2), "c1")
	if sresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: %d, want 503", sresp.StatusCode)
	}
}

func TestHTTPBadSubmitBody(t *testing.T) {
	cfg := testConfig(t)
	_, ts := httpServer(t, cfg)
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: %d, want 400", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
		t.Fatalf("bad body error payload: %v %+v", err, eb)
	}
}
