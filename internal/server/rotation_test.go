package server

import (
	"bytes"
	"context"
	"errors"
	"os"
	"testing"

	tensorlights "repro"
)

func journalLines(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Count(data, []byte("\n"))
}

// TestCompactJournalDropsRedundantRecords exercises CompactJournal
// directly on a hand-built log: a done job keeps submitted + last
// running + done, an in-flight job keeps only submitted, and a second
// pass is a no-op.
func TestCompactJournalDropsRedundantRecords(t *testing.T) {
	path := journalPath(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := expCfg(9)
	must := func(r Record) {
		t.Helper()
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	must(Record{T: recSubmitted, ID: "j000000", Hash: "aaa", Config: &cfg})
	must(Record{T: recRunning, ID: "j000000", Attempt: 1})
	must(Record{T: recRunning, ID: "j000000", Attempt: 2})
	must(Record{T: recDone, ID: "j000000", Result: &tensorlights.Result{AvgJCT: 7}})
	must(Record{T: recSubmitted, ID: "j000001", Hash: "bbb", Config: &cfg})
	must(Record{T: recRunning, ID: "j000001", Attempt: 1})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	kept, dropped, err := CompactJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if kept != 4 || dropped != 2 {
		t.Fatalf("kept %d dropped %d, want 4/2", kept, dropped)
	}
	_, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var types []string
	for _, r := range recs {
		types = append(types, r.T+":"+r.ID)
	}
	want := []string{
		"submitted:j000000", "running:j000000", "done:j000000",
		"submitted:j000001",
	}
	if len(types) != len(want) {
		t.Fatalf("compacted journal holds %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("compacted journal holds %v, want %v", types, want)
		}
	}
	if recs[1].Attempt != 2 {
		t.Fatalf("last running record should survive (attempt 2), got %+v", recs[1])
	}
	if recs[2].Result == nil || recs[2].Result.AvgJCT != 7 {
		t.Fatalf("done record lost its result: %+v", recs[2])
	}

	// Idempotent: a second pass finds nothing to drop and rewrites
	// nothing.
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, dropped, err := CompactJournal(path); err != nil || dropped != 0 {
		t.Fatalf("second compaction: dropped %d, err %v", dropped, err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("no-op compaction rewrote the journal")
	}
}

// TestCompactionOnStartupPreservesState runs real jobs through the
// daemon (including a retried failure), restarts it, and checks that
// the startup compaction shrinks the journal without changing any
// replayed state: terminal outcomes, attempt counts, and the dedup
// cache all survive.
func TestCompactionOnStartupPreservesState(t *testing.T) {
	cfg := testConfig(t)
	boom := errors.New("boom")
	cfg.Runner = func(ctx context.Context, c tensorlights.ExperimentConfig) (*tensorlights.Result, error) {
		if c.Seed == 99 {
			return nil, boom
		}
		return &tensorlights.Result{AvgJCT: float64(c.Seed)}, nil
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ok1, err := s.Submit(expCfg(1), 0, "c")
	if err != nil {
		t.Fatal(err)
	}
	bad, err := s.Submit(expCfg(99), 0, "c")
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, s, ok1.ID); st.State != JobDone {
		t.Fatalf("job 1 settled as %+v", st)
	}
	failed := waitTerminal(t, s, bad.ID)
	if failed.State != JobFailed || failed.Attempts != 3 {
		t.Fatalf("failing job settled as %+v", failed)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	before := journalLines(t, cfg.JournalPath)
	s2, err := New(cfg) // compacts on startup
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Kill()
	after := journalLines(t, cfg.JournalPath)
	// 2 submitted + 1+3 running + 2 terminal = 8 before; the failed
	// job's first two attempts are redundant, so 6 after.
	if after >= before {
		t.Fatalf("compaction did not shrink the journal: %d -> %d lines", before, after)
	}
	st1, err := s2.Status(ok1.ID)
	if err != nil || st1.State != JobDone || st1.Result == nil || st1.Result.AvgJCT != 1 {
		t.Fatalf("done job lost state across compaction: %+v (%v)", st1, err)
	}
	st99, err := s2.Status(bad.ID)
	if err != nil || st99.State != JobFailed || st99.Attempts != 3 || st99.Error == "" {
		t.Fatalf("failed job lost state across compaction: %+v (%v)", st99, err)
	}
	// The dedup cache was rebuilt from the compacted log.
	dup, err := s2.Submit(expCfg(1), 0, "c")
	if err != nil || !dup.Deduped || dup.Result == nil || dup.Result.AvgJCT != 1 {
		t.Fatalf("resubmission not served from cache: %+v (%v)", dup, err)
	}
}

// TestCompactionCrashMidRotateRecovers simulates a kill in the middle
// of a rotation: a partial compaction temp is on disk, the rename
// never happened. The next startup must treat the original journal as
// authoritative, discard the temp, and re-run the interrupted job.
func TestCompactionCrashMidRotateRecovers(t *testing.T) {
	path := journalPath(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := expCfg(5)
	for _, r := range []Record{
		{T: recSubmitted, ID: "j000000", Hash: "aaa", Config: &cfg},
		{T: recRunning, ID: "j000000", Attempt: 1},
	} {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// The crash left a torn, half-written temp behind.
	if err := os.WriteFile(path+compactSuffix, []byte(`{"t":"submi`), 0o644); err != nil {
		t.Fatal(err)
	}

	sc := testConfig(t)
	sc.JournalPath = path
	ran := make(chan int64, 1)
	sc.Runner = func(ctx context.Context, c tensorlights.ExperimentConfig) (*tensorlights.Result, error) {
		ran <- c.Seed
		return &tensorlights.Result{AvgJCT: float64(c.Seed)}, nil
	}
	s, err := New(sc)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()
	if _, err := os.Stat(path + compactSuffix); !os.IsNotExist(err) {
		t.Fatalf("stale compaction temp not cleaned up: %v", err)
	}
	s.Start()
	if st := waitTerminal(t, s, "j000000"); st.State != JobDone || st.Result.AvgJCT != 5 {
		t.Fatalf("interrupted job not recovered: %+v", st)
	}
	if seed := <-ran; seed != 5 {
		t.Fatalf("recovered job ran with seed %d, want 5", seed)
	}
}
