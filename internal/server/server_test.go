package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	tensorlights "repro"
)

// testConfig is a fast-by-default daemon config over a temp journal.
func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		JournalPath:  journalPath(t),
		Workers:      2,
		QueueDepth:   8,
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   5 * time.Millisecond,
		Logf:         t.Logf,
	}
}

// expCfg builds distinct tiny experiment configs keyed by seed.
func expCfg(seed int64) tensorlights.ExperimentConfig {
	return tensorlights.ExperimentConfig{
		Policy:    tensorlights.TLsRR,
		NumJobs:   2,
		Placement: "2",
		Steps:     60,
		Seed:      seed,
	}
}

// waitTerminal polls until the job settles or the deadline passes.
func waitTerminal(t *testing.T, s *Server, id string) *JobStatus {
	t.Helper()
	ch, err := s.Done(id)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s never settled", id)
	}
	st, err := s.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestServerRunsSubmittedJob(t *testing.T) {
	cfg := testConfig(t)
	var calls atomic.Int32
	cfg.Runner = func(ctx context.Context, c tensorlights.ExperimentConfig) (*tensorlights.Result, error) {
		calls.Add(1)
		return &tensorlights.Result{AvgJCT: float64(c.Seed)}, nil
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Kill()

	st, err := s.Submit(expCfg(3), 0, "c1")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobQueued && st.State != JobRunning && st.State != JobDone {
		t.Fatalf("fresh submission in state %q", st.State)
	}
	fin := waitTerminal(t, s, st.ID)
	if fin.State != JobDone || fin.Result == nil || fin.Result.AvgJCT != 3 {
		t.Fatalf("job settled as %+v", fin)
	}
	if fin.Attempts != 1 || calls.Load() != 1 {
		t.Fatalf("clean job took %d attempts / %d calls", fin.Attempts, calls.Load())
	}
}

func TestServerRetriesThenSucceeds(t *testing.T) {
	cfg := testConfig(t)
	var calls atomic.Int32
	cfg.Runner = func(ctx context.Context, c tensorlights.ExperimentConfig) (*tensorlights.Result, error) {
		if calls.Add(1) < 3 {
			return nil, errors.New("transient failure")
		}
		return &tensorlights.Result{AvgJCT: 1}, nil
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Kill()

	st, _ := s.Submit(expCfg(1), 0, "c1")
	fin := waitTerminal(t, s, st.ID)
	if fin.State != JobDone || fin.Attempts != 3 {
		t.Fatalf("got state %q after %d attempts, want done after 3", fin.State, fin.Attempts)
	}
	if got := s.met.retries.Value(); got != 2 {
		t.Fatalf("retry counter %v, want 2", got)
	}
}

func TestServerPanicIsolatedAndRetried(t *testing.T) {
	// An always-panicking job must never crash the daemon: it burns its
	// retry budget, is reported failed with the panic as cause, and a
	// job submitted afterwards still runs.
	cfg := testConfig(t)
	cfg.Workers = 1
	cfg.Runner = func(ctx context.Context, c tensorlights.ExperimentConfig) (*tensorlights.Result, error) {
		if c.Seed == 666 {
			panic("worker exploded")
		}
		return &tensorlights.Result{AvgJCT: 1}, nil
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Kill()

	bad, _ := s.Submit(expCfg(666), 0, "c1")
	good, err := s.Submit(expCfg(1), 0, "c1")
	if err != nil {
		t.Fatal(err)
	}
	finBad := waitTerminal(t, s, bad.ID)
	if finBad.State != JobFailed || !strings.Contains(finBad.Error, "panicked") || !strings.Contains(finBad.Error, "worker exploded") {
		t.Fatalf("panicking job settled as %+v", finBad)
	}
	if finBad.Attempts != 3 {
		t.Fatalf("panicking job got %d attempts, want full budget of 3", finBad.Attempts)
	}
	if got := s.met.panics.Value(); got != 3 {
		t.Fatalf("panic counter %v, want 3", got)
	}
	finGood := waitTerminal(t, s, good.ID)
	if finGood.State != JobDone {
		t.Fatalf("job after the panicking one settled as %+v — daemon did not survive", finGood)
	}
}

func TestServerDeadlineEnforcedAndReported(t *testing.T) {
	// A stuck trial: the runner only returns when its context fires.
	// The per-job deadline must abort each attempt, and the job must
	// settle failed with the deadline as cause — daemon intact.
	cfg := testConfig(t)
	cfg.Runner = func(ctx context.Context, c tensorlights.ExperimentConfig) (*tensorlights.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	cfg.MaxRetries = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Kill()

	st, _ := s.Submit(expCfg(1), 0.02, "c1")
	fin := waitTerminal(t, s, st.ID)
	if fin.State != JobFailed || !strings.Contains(fin.Error, "deadline") {
		t.Fatalf("stuck job settled as %+v, want failed with deadline cause", fin)
	}
	if fin.Attempts != 2 {
		t.Fatalf("stuck job got %d attempts, want 2 (1 retry)", fin.Attempts)
	}
}

func TestServerCancelQueuedAndRunning(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 1
	gate := make(chan struct{})
	started := make(chan string, 8)
	cfg.Runner = func(ctx context.Context, c tensorlights.ExperimentConfig) (*tensorlights.Result, error) {
		started <- fmt.Sprint(c.Seed)
		select {
		case <-gate:
			return &tensorlights.Result{AvgJCT: 1}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Kill()

	run, _ := s.Submit(expCfg(1), 0, "c1")
	<-started // seed 1 now occupies the only worker
	queued, _ := s.Submit(expCfg(2), 0, "c1")

	// Cancel the queued job: settles immediately, worker never runs it.
	stQ, err := s.Cancel(queued.ID)
	if err != nil || stQ.State != JobCancelled {
		t.Fatalf("queued cancel: %v %+v", err, stQ)
	}
	// Cancel the running job: its context fires, no retry is attempted.
	if _, err := s.Cancel(run.ID); err != nil {
		t.Fatal(err)
	}
	finR := waitTerminal(t, s, run.ID)
	if finR.State != JobCancelled || finR.Attempts != 1 {
		t.Fatalf("running cancel settled as %+v", finR)
	}
	select {
	case seed := <-started:
		t.Fatalf("cancelled queued job (seed %s) was executed", seed)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestServerDrainFinishesInFlight(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 1
	gate := make(chan struct{})
	cfg.Runner = func(ctx context.Context, c tensorlights.ExperimentConfig) (*tensorlights.Result, error) {
		select {
		case <-gate:
			return &tensorlights.Result{AvgJCT: 1}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()

	st, _ := s.Submit(expCfg(1), 0, "c1")
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Draining: new submissions are refused while the in-flight job
	// keeps running.
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(expCfg(2), 0, "c1"); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: %v, want ErrDraining", err)
	}
	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	fin, err := s.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != JobDone {
		t.Fatalf("in-flight job settled as %q during graceful drain, want done", fin.State)
	}
}

func TestServerForcedDrainAbandonsForRecovery(t *testing.T) {
	// Drain with an already-expired context: the in-flight job is
	// abandoned non-terminally, and a restart re-runs it.
	cfg := testConfig(t)
	cfg.Workers = 1
	running := make(chan struct{}, 1)
	cfg.Runner = func(ctx context.Context, c tensorlights.ExperimentConfig) (*tensorlights.Result, error) {
		running <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	st, _ := s.Submit(expCfg(1), 0, "c1")
	<-running
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Drain(expired); !errors.Is(err, context.Canceled) {
		t.Fatalf("forced drain returned %v", err)
	}

	cfg2 := testConfig(t)
	cfg2.JournalPath = cfg.JournalPath
	cfg2.Runner = func(ctx context.Context, c tensorlights.ExperimentConfig) (*tensorlights.Result, error) {
		return &tensorlights.Result{AvgJCT: 42}, nil
	}
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	defer s2.Kill()
	fin := waitTerminal(t, s2, st.ID)
	if fin.State != JobDone || fin.Result.AvgJCT != 42 {
		t.Fatalf("abandoned job did not re-run after restart: %+v", fin)
	}
}
