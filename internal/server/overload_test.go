package server

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	tensorlights "repro"
)

// gatedServer builds a Workers=1 daemon whose runner parks on a gate,
// so tests can hold the worker busy and fill the queue behind it.
func gatedServer(t *testing.T, queueDepth int) (*Server, chan struct{}, chan struct{}, *atomic.Int32) {
	t.Helper()
	cfg := testConfig(t)
	cfg.Workers = 1
	cfg.QueueDepth = queueDepth
	gate := make(chan struct{})
	started := make(chan struct{}, 16)
	var calls atomic.Int32
	cfg.Runner = func(ctx context.Context, c tensorlights.ExperimentConfig) (*tensorlights.Result, error) {
		calls.Add(1)
		started <- struct{}{}
		select {
		case <-gate:
			return &tensorlights.Result{AvgJCT: float64(c.Seed)}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() { s.Kill() })
	return s, gate, started, &calls
}

// TestOverloadShedsWithRetryAfter is the overload acceptance test:
// with the single worker busy and the bounded queue full, the next
// submission is shed with a queue_full OverloadError carrying a
// Retry-After hint — it is not silently queued or dropped.
func TestOverloadShedsWithRetryAfter(t *testing.T) {
	s, gate, started, _ := gatedServer(t, 1)

	if _, err := s.Submit(expCfg(1), 0, "c1"); err != nil {
		t.Fatal(err)
	}
	<-started // seed 1 occupies the worker; queue is empty again
	if _, err := s.Submit(expCfg(2), 0, "c1"); err != nil {
		t.Fatal(err) // fills the depth-1 queue
	}

	_, err := s.Submit(expCfg(3), 0, "c1")
	var over *OverloadError
	if !errors.As(err, &over) {
		t.Fatalf("submit into full queue returned %v, want OverloadError", err)
	}
	if over.Reason != "queue_full" || over.RetryAfter <= 0 {
		t.Fatalf("shed with %+v, want queue_full and a positive Retry-After", over)
	}
	if got := s.met.rejQueue.Value(); got != 1 {
		t.Fatalf("queue_full rejection counter %v, want 1", got)
	}

	// Shedding is temporary: once the queue moves, the same config is
	// admitted.
	close(gate)
	st3 := func() *JobStatus {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if st, err := s.Submit(expCfg(3), 0, "c1"); err == nil {
				return st
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatal("queue never drained enough to admit the shed job")
		return nil
	}()
	if fin := waitTerminal(t, s, st3.ID); fin.State != JobDone {
		t.Fatalf("re-submitted job settled as %+v", fin)
	}
}

// TestDedupCacheServesIdenticalResubmission: an identical (config,
// seed) resubmission after completion is answered from the
// content-addressed cache — done immediately, same result, and the
// runner is NOT invoked again. A different seed is a different hash
// and does execute.
func TestDedupCacheServesIdenticalResubmission(t *testing.T) {
	s, gate, started, calls := gatedServer(t, 8)
	close(gate) // runner returns immediately

	first, err := s.Submit(expCfg(7), 0, "c1")
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, s, first.ID)
	if fin.State != JobDone {
		t.Fatalf("first run settled as %+v", fin)
	}
	<-started

	again, err := s.Submit(expCfg(7), 0, "c1")
	if err != nil {
		t.Fatal(err)
	}
	if !again.Deduped || again.State != JobDone || again.Result == nil {
		t.Fatalf("resubmission got %+v, want deduped done with result", again)
	}
	if again.Result.AvgJCT != fin.Result.AvgJCT {
		t.Fatalf("cached result %v differs from original %v", again.Result.AvgJCT, fin.Result.AvgJCT)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("runner executed %d times for identical submissions, want 1", got)
	}
	if got := s.met.deduped.Value(); got != 1 {
		t.Fatalf("dedup counter %v, want 1", got)
	}

	// Different seed → different hash → real execution.
	other, err := s.Submit(expCfg(8), 0, "c1")
	if err != nil {
		t.Fatal(err)
	}
	if other.Deduped {
		t.Fatalf("distinct config was wrongly deduped: %+v", other)
	}
	waitTerminal(t, s, other.ID)
	if got := calls.Load(); got != 2 {
		t.Fatalf("distinct config ran %d times total, want 2", got)
	}
}

// TestDedupCoalescesInFlightDuplicate: submitting a config identical
// to one still queued/running attaches to that job instead of
// consuming a queue slot.
func TestDedupCoalescesInFlightDuplicate(t *testing.T) {
	s, gate, started, calls := gatedServer(t, 2)

	first, err := s.Submit(expCfg(4), 0, "c1")
	if err != nil {
		t.Fatal(err)
	}
	<-started
	dup, err := s.Submit(expCfg(4), 0, "c1")
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Deduped || dup.ID != first.ID {
		t.Fatalf("in-flight duplicate got %+v, want coalesced onto %s", dup, first.ID)
	}
	close(gate)
	waitTerminal(t, s, first.ID)
	if got := calls.Load(); got != 1 {
		t.Fatalf("coalesced duplicate executed separately: %d calls", got)
	}
}

// TestRateLimitShedsBurst: per-client token bucket rejects the
// submission after the burst is spent, with a rate_limited reason and
// a wait hint; a different client is unaffected.
func TestRateLimitShedsBurst(t *testing.T) {
	cfg := testConfig(t)
	cfg.RatePerSec = 0.5
	cfg.RateBurst = 2
	cfg.Runner = func(ctx context.Context, c tensorlights.ExperimentConfig) (*tensorlights.Result, error) {
		return &tensorlights.Result{AvgJCT: 1}, nil
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Kill()

	if _, err := s.Submit(expCfg(1), 0, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(expCfg(2), 0, "alice"); err != nil {
		t.Fatal(err)
	}
	_, err = s.Submit(expCfg(3), 0, "alice")
	var over *OverloadError
	if !errors.As(err, &over) || over.Reason != "rate_limited" {
		t.Fatalf("third rapid submit returned %v, want rate_limited OverloadError", err)
	}
	if over.RetryAfter <= 0 {
		t.Fatalf("rate_limited shed carries no wait hint: %+v", over)
	}
	// A different client has its own bucket.
	if _, err := s.Submit(expCfg(3), 0, "bob"); err != nil {
		t.Fatalf("unrelated client was shed: %v", err)
	}
}
