package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"time"

	tensorlights "repro"
)

// SubmitRequest is the POST /v1/jobs body: the façade ExperimentConfig
// is the wire format, plus an optional per-job deadline.
type SubmitRequest struct {
	Config tensorlights.ExperimentConfig `json:"config"`
	// TimeoutSec overrides the server's default per-job deadline.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// errorBody is every non-2xx JSON response.
type errorBody struct {
	Error      string  `json:"error"`
	RetryAfter float64 `json:"retry_after_sec,omitempty"`
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/jobs             submit an experiment (202; 429 when shed, 503 when draining)
//	GET  /v1/jobs             list jobs (summaries, no results)
//	GET  /v1/jobs/{id}        one job, with result when done
//	POST /v1/jobs/{id}/cancel cancel a queued or running job
//	POST /v1/drain            begin graceful drain (202)
//	GET  /healthz             liveness (200 while the process serves)
//	GET  /readyz              readiness (503 once draining)
//	GET  /metrics             Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /v1/drain", s.handleDrain)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = s.collector.WritePrometheus(w)
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad submit body: %v", err)})
		return
	}
	st, err := s.Submit(req.Config, req.TimeoutSec, clientKey(r))
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	code := http.StatusAccepted
	if st.Deduped && st.State == JobDone {
		code = http.StatusOK // nothing queued; the result is attached
	}
	writeJSON(w, code, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	// Kick the drain off in the background with a generous bound; the
	// process owner (cmd/tlsimd) observes Draining() and exits once the
	// HTTP server is idle.
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		defer cancel()
		_ = s.Drain(ctx)
	}()
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "draining"})
}

func writeSubmitError(w http.ResponseWriter, err error) {
	var over *OverloadError
	switch {
	case errors.As(err, &over):
		secs := math.Ceil(over.RetryAfter.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(secs)))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error(), RetryAfter: secs})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	}
}

// clientKey identifies the submitter for rate limiting: an explicit
// X-Client-ID header wins, else the remote host.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
