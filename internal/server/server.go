package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"math/rand"
	"sync"
	"time"

	tensorlights "repro"
	"repro/internal/metrics"
)

// Config tunes the daemon. The zero value is usable apart from
// JournalPath, which is required.
type Config struct {
	// JournalPath is the append-only JSONL write-ahead log (required).
	JournalPath string
	// Workers is the number of concurrent job runners (default 2).
	Workers int
	// QueueDepth bounds the admission queue; a full queue sheds load
	// with 429 + Retry-After (default 64).
	QueueDepth int
	// MaxRetries is how many times a failed attempt is retried before
	// the job is marked failed (default 2, i.e. up to 3 attempts; a
	// negative value disables retries entirely).
	MaxRetries int
	// RetryBackoff is the base of the exponential backoff between
	// attempts (default 200ms); MaxBackoff caps it (default 10s). Each
	// wait adds up to 50% seeded jitter so synchronized failures do not
	// retry in lockstep.
	RetryBackoff time.Duration
	MaxBackoff   time.Duration
	// DefaultTimeout is the per-job deadline when the submission does
	// not set one (default 15m; <= 0 at submission means this default).
	DefaultTimeout time.Duration
	// RatePerSec and RateBurst rate-limit submissions per client
	// (X-Client-ID header, else remote host). 0 disables limiting.
	RatePerSec float64
	RateBurst  int
	// Parallelism is the sweep-engine parallelism handed to each job's
	// experiment (0 = GOMAXPROCS). Jobs themselves run Workers-wide.
	Parallelism int
	// QueuePolicy orders the admission queue: QueueFIFO (default) runs
	// jobs in submission order; QueueSRSF runs the job with the
	// smallest expected remaining work first (estimated from the
	// submitted config: steps x jobs x model update bytes), which
	// keeps short experiments from stalling behind long ones.
	QueuePolicy string
	// Runner executes one experiment; tests substitute fakes. Defaults
	// to tensorlights.RunExperimentContext.
	Runner func(ctx context.Context, cfg tensorlights.ExperimentConfig) (*tensorlights.Result, error)
	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...any)

	// nowFn overrides the clock (tests only).
	nowFn func() time.Time
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 200 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 10 * time.Second
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 15 * time.Minute
	}
	if c.QueuePolicy == "" {
		c.QueuePolicy = QueueFIFO
	}
	if c.Runner == nil {
		c.Runner = func(ctx context.Context, cfg tensorlights.ExperimentConfig) (*tensorlights.Result, error) {
			return tensorlights.RunExperimentContext(ctx, cfg)
		}
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.nowFn == nil {
		c.nowFn = time.Now
	}
}

// JobState is a job's lifecycle state as exposed over the API.
type JobState string

// Lifecycle: queued → running → done | failed | cancelled. A daemon
// crash can strand a job in queued/running; replay re-queues it.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

func (s JobState) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// job is the server-side record of one submission.
type job struct {
	id         string
	hash       string
	cfg        tensorlights.ExperimentConfig
	timeoutSec float64
	work       float64 // expected work estimate, the SRSF ranking key

	// Guarded by Server.mu.
	state     JobState
	attempts  int
	errMsg    string
	result    *tensorlights.Result
	cancelReq bool
	cancel    context.CancelFunc // non-nil while running
	done      chan struct{}      // closed at terminal state
}

// JobStatus is the API view of a job.
type JobStatus struct {
	ID       string               `json:"id"`
	Hash     string               `json:"hash"`
	State    JobState             `json:"state"`
	Attempts int                  `json:"attempts"`
	Deduped  bool                 `json:"deduped,omitempty"`
	Error    string               `json:"error,omitempty"`
	Result   *tensorlights.Result `json:"result,omitempty"`
}

// Typed submission rejections; the HTTP layer maps them onto status
// codes and Retry-After headers.
var (
	// ErrDraining rejects submissions while the daemon drains (503).
	ErrDraining = errors.New("server: draining, not admitting jobs")
	// ErrUnknownJob is returned for status/cancel of an unknown id (404).
	ErrUnknownJob = errors.New("server: unknown job")
)

// OverloadError is a load-shedding rejection (429 + Retry-After).
type OverloadError struct {
	Reason     string // "queue_full" or "rate_limited"
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("server: overloaded (%s), retry after %s", e.Reason, e.RetryAfter)
}

// retryAfterQueueFull is the backpressure hint when the bounded queue
// rejects a submission.
const retryAfterQueueFull = 5 * time.Second

// Server is the tlsimd daemon core: journal, bounded queue, worker
// pool, dedup cache, rate limiter, and metrics. Create with New, start
// workers with Start, stop with Drain (graceful) or Kill (crash
// simulation, tests).
type Server struct {
	cfg       Config
	journal   *Journal
	collector *metrics.Collector
	limiter   *rateLimiter
	met       serverMetrics

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string          // submission order, for listing and recovery
	byHash   map[string]string // config hash → most recent job id
	cache    map[string]*tensorlights.Result
	pending  []*job // admitted, not yet picked; ordered per QueuePolicy by dequeue
	queued   int    // jobs admitted but not yet picked up by a worker
	nextID   int
	draining bool
	closed   bool // queue channel closed

	// queue carries one wake token per pending job; the job itself
	// lives in s.pending so dequeue can reorder it per QueuePolicy.
	queue   chan struct{}
	workers sync.WaitGroup

	startOnce  sync.Once
	stopOnce   sync.Once
	drainBegan chan struct{} // closed when a drain starts, for the process owner
}

type serverMetrics struct {
	submitted  *metrics.Counter
	deduped    *metrics.Counter
	recovered  *metrics.Counter
	completed  *metrics.Counter
	failed     *metrics.Counter
	cancelled  *metrics.Counter
	retries    *metrics.Counter
	panics     *metrics.Counter
	rejQueue   *metrics.Counter
	rejRate    *metrics.Counter
	rejDrain   *metrics.Counter
	running    *metrics.Gauge
}

// New opens (and replays) the journal and rebuilds the daemon's state:
// every job whose journal tail is non-terminal — submitted or running
// when the previous process died — is re-queued exactly once, in its
// original submission order. Done records repopulate the dedup cache,
// so recovered duplicates are served from cache, not re-run. Call
// Start to begin executing.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	if cfg.JournalPath == "" {
		return nil, errors.New("server: Config.JournalPath is required")
	}
	if cfg.QueuePolicy != QueueFIFO && cfg.QueuePolicy != QueueSRSF {
		return nil, fmt.Errorf("server: unknown queue policy %q (want %s or %s)",
			cfg.QueuePolicy, QueueFIFO, QueueSRSF)
	}
	// Rotate the journal before replaying it: records that a terminal
	// state makes redundant are dropped, so the log stays proportional
	// to the job count rather than the attempt count. Crash-safe — see
	// CompactJournal.
	if kept, dropped, err := CompactJournal(cfg.JournalPath); err != nil {
		return nil, err
	} else if dropped > 0 {
		cfg.Logf("tlsimd: compacted journal %s: kept %d record(s), dropped %d", cfg.JournalPath, kept, dropped)
	}
	journal, recs, err := OpenJournal(cfg.JournalPath)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		journal:    journal,
		collector:  metrics.NewCollector(),
		limiter:    newRateLimiter(cfg.RatePerSec, cfg.RateBurst, cfg.nowFn),
		jobs:       map[string]*job{},
		byHash:     map[string]string{},
		cache:      map[string]*tensorlights.Result{},
		drainBegan: make(chan struct{}),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.registerMetrics()

	// Replay: the last record per job wins.
	for _, r := range recs {
		switch r.T {
		case recSubmitted:
			if r.Config == nil {
				return nil, fmt.Errorf("server: journal: submitted record %s has no config", r.ID)
			}
			j := &job{
				id: r.ID, hash: r.Hash, cfg: *r.Config, timeoutSec: r.TimeoutSec,
				work:  expectedWorkBytes(*r.Config),
				state: JobQueued, done: make(chan struct{}),
			}
			s.jobs[r.ID] = j
			s.order = append(s.order, r.ID)
			s.byHash[r.Hash] = r.ID
			var n int
			if _, err := fmt.Sscanf(r.ID, "j%d", &n); err == nil && n >= s.nextID {
				s.nextID = n + 1
			}
		case recRunning:
			if j := s.jobs[r.ID]; j != nil {
				j.state = JobRunning
				j.attempts = r.Attempt
			}
		case recDone:
			if j := s.jobs[r.ID]; j != nil {
				j.state = JobDone
				j.result = r.Result
				close(j.done)
				if j.hash != "" {
					s.cache[j.hash] = r.Result
				}
			}
		case recFailed:
			if j := s.jobs[r.ID]; j != nil {
				j.state = JobFailed
				j.errMsg = r.Error
				close(j.done)
			}
		case recCancelled:
			if j := s.jobs[r.ID]; j != nil {
				j.state = JobCancelled
				close(j.done)
			}
		default:
			return nil, fmt.Errorf("server: journal: unknown record type %q", r.T)
		}
	}

	// Interrupted jobs: non-terminal journal tail. Reset to queued with
	// a fresh attempt budget — the crashed attempt tells us nothing
	// about the job itself — and size the queue to hold all of them
	// even if the configured depth shrank.
	var interrupted []*job
	for _, id := range s.order {
		j := s.jobs[id]
		if !j.state.terminal() {
			j.state = JobQueued
			j.attempts = 0
			interrupted = append(interrupted, j)
		}
	}
	depth := cfg.QueueDepth
	if len(interrupted) > depth {
		depth = len(interrupted)
	}
	s.queue = make(chan struct{}, depth)
	for _, j := range interrupted {
		s.pending = append(s.pending, j)
		s.queue <- struct{}{}
		s.queued++
		s.met.recovered.Inc()
	}
	if len(interrupted) > 0 {
		cfg.Logf("tlsimd: recovered %d interrupted job(s) from %s", len(interrupted), cfg.JournalPath)
	}
	return s, nil
}

func (s *Server) registerMetrics() {
	c := s.collector
	s.met = serverMetrics{
		submitted: c.Counter("tlsimd_jobs_submitted_total", "Jobs admitted to the queue."),
		deduped:   c.Counter("tlsimd_jobs_deduped_total", "Submissions served from the content-addressed result cache or matched to an in-flight identical job."),
		recovered: c.Counter("tlsimd_jobs_recovered_total", "Interrupted jobs re-queued from the journal at startup."),
		completed: c.Counter("tlsimd_jobs_completed_total", "Jobs run to completion."),
		failed:    c.Counter("tlsimd_jobs_failed_total", "Jobs that exhausted their retry budget."),
		cancelled: c.Counter("tlsimd_jobs_cancelled_total", "Jobs cancelled by request."),
		retries:   c.Counter("tlsimd_job_retries_total", "Attempt retries after failures, panics, or deadline expiries."),
		panics:    c.Counter("tlsimd_job_panics_recovered_total", "Worker panics recovered and converted to job errors."),
		rejQueue:  c.Counter("tlsimd_jobs_rejected_total", "Submissions shed.", metrics.Label{Key: "reason", Value: "queue_full"}),
		rejRate:   c.Counter("tlsimd_jobs_rejected_total", "Submissions shed.", metrics.Label{Key: "reason", Value: "rate_limited"}),
		rejDrain:  c.Counter("tlsimd_jobs_rejected_total", "Submissions shed.", metrics.Label{Key: "reason", Value: "draining"}),
		running:   c.Gauge("tlsimd_jobs_running", "Jobs currently executing."),
	}
	c.GaugeFunc("tlsimd_queue_depth", "Jobs admitted and waiting for a worker.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.queued)
	})
	c.GaugeFunc("tlsimd_cache_entries", "Content-addressed result cache size.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.cache))
	})
}

// Metrics exposes the daemon's metric registry (the /metrics endpoint
// renders it; tests read counters directly).
func (s *Server) Metrics() *metrics.Collector { return s.collector }

// Start launches the worker pool. Idempotent.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		for w := 0; w < s.cfg.Workers; w++ {
			s.workers.Add(1)
			go func() {
				defer s.workers.Done()
				for range s.queue {
					j := s.dequeue()
					if j == nil {
						continue
					}
					if s.baseCtx.Err() != nil {
						// Killed: leave the job queued in the journal;
						// the next start re-runs it.
						continue
					}
					s.runJob(j)
				}
			}()
		}
	})
}

// HashConfig is the content address of a submission: the SHA-256 of
// the canonical JSON encoding of the ExperimentConfig (which includes
// the seed). Two submissions with equal hashes are the same
// deterministic computation, so the daemon serves the cached result
// instead of re-executing.
func HashConfig(cfg tensorlights.ExperimentConfig) (string, error) {
	cfg.TraceCSV = nil // never part of the computation's identity
	b, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("server: hash config: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Submit admits one experiment. client keys the rate limiter.
// Rejections are typed: ErrDraining, *OverloadError.
func (s *Server) Submit(cfg tensorlights.ExperimentConfig, timeoutSec float64, client string) (*JobStatus, error) {
	if cfg.TraceCSV != nil {
		return nil, errors.New("server: TraceCSV is not supported for submitted jobs")
	}
	hash, err := HashConfig(cfg)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.met.rejDrain.Inc()
		return nil, ErrDraining
	}
	// Dedup before admission control: serving a cached result costs no
	// queue slot and no tokens-worth of work.
	if res, ok := s.cache[hash]; ok {
		s.met.deduped.Inc()
		st := &JobStatus{Hash: hash, State: JobDone, Deduped: true, Result: res}
		if id, ok := s.byHash[hash]; ok {
			st.ID = id
			if j := s.jobs[id]; j != nil {
				st.Attempts = j.attempts
			}
		}
		return st, nil
	}
	if id, ok := s.byHash[hash]; ok {
		if j := s.jobs[id]; j != nil && !j.state.terminal() {
			// Identical job already queued or running: coalesce.
			s.met.deduped.Inc()
			return s.statusLocked(j, true), nil
		}
	}
	if ok, wait := s.limiter.allow(client); !ok {
		s.met.rejRate.Inc()
		return nil, &OverloadError{Reason: "rate_limited", RetryAfter: wait}
	}
	if s.queued >= s.cfg.QueueDepth {
		s.met.rejQueue.Inc()
		return nil, &OverloadError{Reason: "queue_full", RetryAfter: retryAfterQueueFull}
	}

	j := &job{
		id:         fmt.Sprintf("j%06d", s.nextID),
		hash:       hash,
		cfg:        cfg,
		timeoutSec: timeoutSec,
		work:       expectedWorkBytes(cfg),
		state:      JobQueued,
		done:       make(chan struct{}),
	}
	s.nextID++
	// Write-ahead: the submitted record hits disk before the job is
	// queued or acknowledged, so an admitted job can never be lost.
	if err := s.journal.Append(Record{
		T: recSubmitted, ID: j.id, Hash: hash, Config: &j.cfg, TimeoutSec: timeoutSec,
	}); err != nil {
		return nil, err
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.byHash[hash] = j.id
	s.pending = append(s.pending, j)
	s.queued++
	s.met.submitted.Inc()
	s.queue <- struct{}{} // never blocks: queued < QueueDepth <= cap(queue)
	return s.statusLocked(j, false), nil
}

// Status returns one job's state.
func (s *Server) Status(id string) (*JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return s.statusLocked(j, false), nil
}

// List returns every job in submission order.
func (s *Server) List() []*JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*JobStatus, 0, len(s.order))
	for _, id := range s.order {
		st := s.statusLocked(s.jobs[id], false)
		st.Result = nil // listings stay light; fetch one job for its result
		out = append(out, st)
	}
	return out
}

// Cancel aborts a job: a queued job is marked cancelled immediately
// (the worker skips it), a running job has its context cancelled and
// settles as cancelled once the simulation stops. Terminal jobs are
// left as-is.
func (s *Server) Cancel(id string) (*JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	if j.state.terminal() {
		return s.statusLocked(j, false), nil
	}
	j.cancelReq = true
	if j.state == JobQueued {
		if err := s.journal.Append(Record{T: recCancelled, ID: j.id}); err != nil {
			return nil, err
		}
		s.settleLocked(j, JobCancelled, "cancelled while queued", nil)
	} else if j.cancel != nil {
		j.cancel()
	}
	return s.statusLocked(j, false), nil
}

// Done exposes the job's completion channel (tests and tlctl wait).
func (s *Server) Done(id string) (<-chan struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return j.done, nil
}

// statusLocked renders a job; callers hold s.mu.
func (s *Server) statusLocked(j *job, deduped bool) *JobStatus {
	return &JobStatus{
		ID:       j.id,
		Hash:     j.hash,
		State:    j.state,
		Attempts: j.attempts,
		Deduped:  deduped,
		Error:    j.errMsg,
		Result:   j.result,
	}
}

// settleLocked moves a job to a terminal state; callers hold s.mu and
// have already journaled the transition.
func (s *Server) settleLocked(j *job, state JobState, errMsg string, res *tensorlights.Result) {
	j.state = state
	j.errMsg = errMsg
	j.result = res
	j.cancel = nil
	switch state {
	case JobDone:
		if res != nil {
			s.cache[j.hash] = res
		}
		s.met.completed.Inc()
	case JobFailed:
		s.met.failed.Inc()
	case JobCancelled:
		s.met.cancelled.Inc()
	}
	close(j.done)
}

// runJob executes one job with bounded retry, exponential backoff with
// seeded jitter, per-attempt deadlines, and panic isolation. It is the
// only writer of running/done/failed records for the job.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.state != JobQueued { // cancelled while queued
		s.queued--
		s.mu.Unlock()
		return
	}
	s.queued--
	j.state = JobRunning
	s.mu.Unlock()

	timeout := s.cfg.DefaultTimeout
	if j.timeoutSec > 0 {
		timeout = time.Duration(j.timeoutSec * float64(time.Second))
	}
	maxAttempts := s.cfg.MaxRetries + 1
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if err := s.journal.Append(Record{T: recRunning, ID: j.id, Attempt: attempt}); err != nil {
			s.cfg.Logf("tlsimd: journal running %s: %v", j.id, err)
		}
		ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
		s.mu.Lock()
		j.attempts = attempt
		j.cancel = cancel
		if j.cancelReq {
			// Cancel arrived between dequeue and attempt start, when
			// j.cancel was still nil; fire it now so the attempt aborts
			// immediately instead of running out its deadline.
			cancel()
		}
		s.mu.Unlock()
		s.met.running.Add(1)
		res, err := s.execute(ctx, j)
		s.met.running.Add(-1)
		cancel()
		s.mu.Lock()
		j.cancel = nil
		cancelReq := j.cancelReq
		s.mu.Unlock()

		switch {
		case err == nil:
			if jerr := s.journal.Append(Record{T: recDone, ID: j.id, Result: res}); jerr != nil {
				s.cfg.Logf("tlsimd: journal done %s: %v", j.id, jerr)
			}
			s.mu.Lock()
			s.settleLocked(j, JobDone, "", res)
			s.mu.Unlock()
			return
		case s.baseCtx.Err() != nil:
			// The daemon itself is going down (kill or forced drain).
			// Leave the job non-terminal in the journal: the next start
			// re-queues and re-runs it.
			return
		case cancelReq:
			if jerr := s.journal.Append(Record{T: recCancelled, ID: j.id}); jerr != nil {
				s.cfg.Logf("tlsimd: journal cancelled %s: %v", j.id, jerr)
			}
			s.mu.Lock()
			s.settleLocked(j, JobCancelled, "cancelled while running", nil)
			s.mu.Unlock()
			return
		}
		lastErr = err
		s.cfg.Logf("tlsimd: job %s attempt %d/%d failed: %v", j.id, attempt, maxAttempts, err)
		if attempt < maxAttempts {
			s.met.retries.Inc()
			if !s.sleep(s.backoff(j, attempt)) {
				return // daemon going down mid-backoff
			}
		}
	}
	if jerr := s.journal.Append(Record{T: recFailed, ID: j.id, Error: lastErr.Error()}); jerr != nil {
		s.cfg.Logf("tlsimd: journal failed %s: %v", j.id, jerr)
	}
	s.mu.Lock()
	s.settleLocked(j, JobFailed, lastErr.Error(), nil)
	s.mu.Unlock()
}

// execute runs one attempt with panic isolation: a panicking runner
// (or simulation layer beneath it) becomes this attempt's error, never
// a daemon crash.
func (s *Server) execute(ctx context.Context, j *job) (res *tensorlights.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.met.panics.Inc()
			err = fmt.Errorf("server: job %s panicked: %v", j.id, r)
		}
	}()
	return s.cfg.Runner(ctx, j.cfg)
}

// backoff computes the wait before the next attempt: exponential from
// RetryBackoff, capped at MaxBackoff, plus up to 50% jitter seeded by
// (job id, attempt) so waits are deterministic per job but spread
// across jobs.
func (s *Server) backoff(j *job, attempt int) time.Duration {
	d := s.cfg.RetryBackoff
	for i := 1; i < attempt && d < s.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > s.cfg.MaxBackoff {
		d = s.cfg.MaxBackoff
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", j.id, attempt)
	r := rand.New(rand.NewSource(int64(h.Sum64())))
	return d + time.Duration(r.Float64()*0.5*float64(d))
}

// sleep waits d or until the daemon starts dying, whichever is first;
// it reports false when interrupted.
func (s *Server) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.baseCtx.Done():
		return false
	}
}

// Drain is the SIGTERM path: stop admitting (submissions get 503),
// let workers finish the queue, flush and close the journal. If ctx
// expires first, in-flight and queued jobs are abandoned — their
// journal state stays non-terminal, so the next start re-runs them
// (crash-equivalent, but with a synced journal).
func (s *Server) Drain(ctx context.Context) error {
	s.stopOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.closed = true
		close(s.queue)
		s.mu.Unlock()
		close(s.drainBegan)
	})
	idle := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(idle)
	}()
	var forced error
	select {
	case <-idle:
	case <-ctx.Done():
		forced = ctx.Err()
		s.baseCancel()
		<-idle
	}
	s.baseCancel()
	if err := s.journal.Close(); err != nil {
		s.cfg.Logf("tlsimd: close journal: %v", err)
	}
	return forced
}

// DrainBegan is closed when the first Drain starts (e.g. via the
// POST /v1/drain endpoint), so the process owner can stop serving.
func (s *Server) DrainBegan() <-chan struct{} { return s.drainBegan }

// Draining reports whether the daemon has stopped admitting jobs.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Kill simulates SIGKILL for crash-recovery tests: abort everything
// immediately — in-flight jobs are interrupted between simulation
// events and written nowhere, so the journal is left exactly as a
// killed process would leave it (non-terminal tails for interrupted
// jobs). The journal file is closed so a restarted Server can reopen
// it on platforms that mind.
func (s *Server) Kill() {
	s.baseCancel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Drain(ctx)
}
