package server

import (
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket: each client key (the
// X-Client-ID header, falling back to the remote host) accrues rate
// tokens per second up to burst, and one submission costs one token.
// When a client is out of tokens the limiter reports how long until
// the next token — surfaced to the client as a Retry-After header.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second; <= 0 disables limiting
	burst   float64
	now     func() time.Time
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxClients bounds the bucket map: beyond it, idle (full) buckets are
// pruned so a scan of spoofed client ids cannot grow memory unbounded.
const maxClients = 4096

func newRateLimiter(rate float64, burst int, now func() time.Time) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &rateLimiter{rate: rate, burst: float64(burst), now: now, buckets: map[string]*bucket{}}
}

// allow spends one token for client, reporting (false, wait) when the
// bucket is empty.
func (l *rateLimiter) allow(client string) (bool, time.Duration) {
	if l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	t := l.now()
	b, ok := l.buckets[client]
	if !ok {
		if len(l.buckets) >= maxClients {
			l.prune()
		}
		b = &bucket{tokens: l.burst, last: t}
		l.buckets[client] = b
	}
	b.tokens += t.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = t
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// prune drops buckets that have refilled to (near) capacity — clients
// idle long enough that forgetting them loses nothing. Called with the
// lock held.
func (l *rateLimiter) prune() {
	t := l.now()
	for k, b := range l.buckets {
		tokens := b.tokens + t.Sub(b.last).Seconds()*l.rate
		if tokens >= l.burst {
			delete(l.buckets, k)
		}
	}
}
