package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	tensorlights "repro"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "journal.jsonl")
}

func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	cfg := tensorlights.ExperimentConfig{NumJobs: 2, Placement: "2", Steps: 50, Seed: 9}
	must := func(r Record) {
		t.Helper()
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	must(Record{T: recSubmitted, ID: "j000000", Hash: "abc", Config: &cfg, TimeoutSec: 1.5})
	must(Record{T: recRunning, ID: "j000000", Attempt: 1})
	must(Record{T: recDone, ID: "j000000", Result: &tensorlights.Result{AvgJCT: 3.5}})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, recs, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	if recs[0].T != recSubmitted || recs[0].Config == nil || recs[0].Config.Seed != 9 || recs[0].TimeoutSec != 1.5 {
		t.Fatalf("submitted record lost fields: %+v", recs[0])
	}
	if recs[1].Attempt != 1 {
		t.Fatalf("running record lost attempt: %+v", recs[1])
	}
	if recs[2].Result == nil || recs[2].Result.AvgJCT != 3.5 {
		t.Fatalf("done record lost result: %+v", recs[2])
	}
}

func TestJournalTornTailDiscarded(t *testing.T) {
	// A crash mid-append leaves a half-written final line. Replay must
	// drop it (it was never acknowledged) and truncate, so the next
	// append starts on a clean line.
	path := journalPath(t)
	full := `{"t":"submitted","id":"j000000","hash":"h"}` + "\n"
	torn := `{"t":"running","id":"j0000` // cut mid-record, no newline
	if err := os.WriteFile(path, []byte(full+torn), 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].T != recSubmitted {
		t.Fatalf("replay got %+v, want just the submitted record", recs)
	}
	if err := j.Append(Record{T: recRunning, ID: "j000000", Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, recs, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].T != recRunning {
		t.Fatalf("post-truncate journal replayed %+v", recs)
	}
}

func TestJournalTornTailWithNewlineDiscarded(t *testing.T) {
	// Same, but the torn bytes happen to end in a newline: the line is
	// unparseable and final, so it is still dropped, not fatal.
	path := journalPath(t)
	data := `{"t":"submitted","id":"j000000","hash":"h"}` + "\n" + `{"t":"runni` + "\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("replay got %d records, want 1", len(recs))
	}
}

func TestJournalMidFileCorruptionFatal(t *testing.T) {
	// Corruption with acknowledged records after it means lost jobs;
	// recovery must refuse to guess.
	path := journalPath(t)
	data := `{"t":"submitted","id":"j000000","hash":"h"}` + "\n" +
		`GARBAGE` + "\n" +
		`{"t":"running","id":"j000000","attempt":1}` + "\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenJournal(path)
	if err == nil || !strings.Contains(err.Error(), "corrupt mid-file") {
		t.Fatalf("got %v, want mid-file corruption error", err)
	}
}

func TestJournalAppendAfterCloseFails(t *testing.T) {
	j, _, err := OpenJournal(journalPath(t))
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Append(Record{T: recRunning, ID: "x"}); err == nil {
		t.Fatal("append after close should fail")
	}
}
