package server

import (
	tensorlights "repro"

	"repro/internal/dl"
)

// Queue policies for Config.QueuePolicy.
const (
	// QueueFIFO runs jobs in submission order.
	QueueFIFO = "fifo"
	// QueueSRSF (smallest remaining service first) runs the queued job
	// with the smallest expected work next. Queued jobs have not
	// started, so remaining service equals the total estimate; ties
	// fall back to submission order.
	QueueSRSF = "srsf"
)

// dequeue pops the next job per the queue policy. Each wake token on
// s.queue corresponds to exactly one entry in s.pending, so a token
// reader always finds a job; nil only on the impossible empty case.
// Jobs cancelled while queued are still returned — runJob skips them,
// which keeps the token/pending accounting one-to-one.
func (s *Server) dequeue() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) == 0 {
		return nil
	}
	best := 0
	if s.cfg.QueuePolicy == QueueSRSF {
		for i := 1; i < len(s.pending); i++ {
			if s.pending[i].work < s.pending[best].work {
				best = i
			}
		}
	}
	j := s.pending[best]
	s.pending = append(s.pending[:best], s.pending[best+1:]...)
	return j
}

// expectedWorkBytes estimates the gradient traffic a submission will
// generate — the SRSF ranking key, derived purely from the submitted
// config. The estimate only has to order jobs, not price them exactly,
// so constant per-step factors shared by every submission (chunking,
// barriers, acks) are ignored and unknown model names fall back to a
// zoo default rather than failing: admission already validated what
// matters, and a misranked job is merely scheduled late, not lost.
func expectedWorkBytes(cfg tensorlights.ExperimentConfig) float64 {
	steps := cfg.Steps
	if steps <= 0 {
		steps = 30000 // the façade's full-scale default
	}
	modelBytes := func(name string, fallback dl.Model) float64 {
		m, err := dl.ModelByName(name)
		if err != nil {
			m = fallback
		}
		return float64(m.UpdateBytes())
	}
	if sc := cfg.Scheduler; sc != nil {
		// The scheduler trial runs a fixed arrival mix of its own;
		// approximate one arrival as the mix's average model.
		jobs := sc.Jobs
		if jobs <= 0 {
			jobs = 9
		}
		iters := steps / 30
		if iters < 2 {
			iters = 2
		}
		avg := float64(dl.AlexNet.UpdateBytes()+dl.ResNet56.UpdateBytes()+dl.ResNet50.UpdateBytes()) / 3
		return float64(jobs) * float64(iters) * avg
	}
	var total float64
	psJobs := cfg.NumJobs
	if psJobs <= 0 && cfg.Collective == nil {
		psJobs = 21 // the façade's default all-PS testbed
	}
	if psJobs > 0 {
		total += float64(psJobs) * float64(steps) * modelBytes(cfg.Model, dl.ResNet32)
	}
	if cc := cfg.Collective; cc != nil {
		jobs := cc.Jobs
		if jobs <= 0 {
			jobs = 3
		}
		ranks := cc.Ranks
		if ranks <= 0 {
			ranks = 4
		}
		iters := cc.Iterations
		if iters <= 0 {
			iters = steps / 30
			if iters < 2 {
				iters = 2
			}
		}
		total += float64(jobs) * float64(iters) * float64(ranks) * modelBytes(cc.Model, dl.AlexNet)
	}
	return total
}
