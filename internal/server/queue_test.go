package server

import (
	"context"
	"testing"

	tensorlights "repro"
)

// sizedCfg builds configs whose expected work differs by orders of
// magnitude, so SRSF ordering is unambiguous.
func sizedCfg(seed int64, steps, jobs int) tensorlights.ExperimentConfig {
	return tensorlights.ExperimentConfig{
		Policy:  tensorlights.TLsRR,
		NumJobs: jobs,
		Steps:   steps,
		Seed:    seed,
	}
}

// runOrderTest submits a blocker plus a large and a small job against a
// single worker and returns the order the runner saw them start in,
// identified by seed.
func runOrderTest(t *testing.T, policy string) []int64 {
	t.Helper()
	cfg := testConfig(t)
	cfg.Workers = 1
	cfg.QueuePolicy = policy
	gate := make(chan struct{})
	started := make(chan int64, 8)
	cfg.Runner = func(ctx context.Context, c tensorlights.ExperimentConfig) (*tensorlights.Result, error) {
		started <- c.Seed
		if c.Seed == 1 { // the blocker holds the only worker
			<-gate
		}
		return &tensorlights.Result{}, nil
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Kill()

	blocker, err := s.Submit(sizedCfg(1, 60, 2), 0, "c")
	if err != nil {
		t.Fatal(err)
	}
	<-started // worker is now wedged on the blocker
	big, err := s.Submit(sizedCfg(2, 30000, 21), 0, "c")
	if err != nil {
		t.Fatal(err)
	}
	small, err := s.Submit(sizedCfg(3, 60, 2), 0, "c")
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	for _, id := range []string{blocker.ID, big.ID, small.ID} {
		if st := waitTerminal(t, s, id); st.State != JobDone {
			t.Fatalf("job %s settled as %+v", id, st)
		}
	}
	order := []int64{1}
	for len(order) < 3 {
		order = append(order, <-started)
	}
	return order
}

func TestQueuePolicySRSFRunsSmallestFirst(t *testing.T) {
	order := runOrderTest(t, QueueSRSF)
	if order[1] != 3 || order[2] != 2 {
		t.Fatalf("srsf order = %v, want small (seed 3) before big (seed 2)", order)
	}
}

func TestQueuePolicyFIFOKeepsSubmissionOrder(t *testing.T) {
	order := runOrderTest(t, QueueFIFO)
	if order[1] != 2 || order[2] != 3 {
		t.Fatalf("fifo order = %v, want submission order", order)
	}
}

func TestQueuePolicyValidated(t *testing.T) {
	cfg := testConfig(t)
	cfg.QueuePolicy = "shortest-job-next"
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown queue policy should be rejected at startup")
	}
}

func TestExpectedWorkBytesOrdersConfigs(t *testing.T) {
	small := expectedWorkBytes(sizedCfg(1, 60, 2))
	if small <= 0 {
		t.Fatalf("small config estimated at %g bytes", small)
	}
	if big := expectedWorkBytes(sizedCfg(1, 30000, 2)); big <= small {
		t.Fatalf("more steps should mean more work: %g <= %g", big, small)
	}
	if wide := expectedWorkBytes(sizedCfg(1, 60, 21)); wide <= small {
		t.Fatalf("more jobs should mean more work: %g <= %g", wide, small)
	}
	heavy := sizedCfg(1, 60, 2)
	heavy.Model = "vgg16"
	if h := expectedWorkBytes(heavy); h <= small {
		t.Fatalf("a bigger model should mean more work: %g <= %g", h, small)
	}

	coll := tensorlights.ExperimentConfig{
		Steps:      60,
		Collective: &tensorlights.CollectiveConfig{Jobs: 3, Ranks: 4},
	}
	if c := expectedWorkBytes(coll); c <= 0 {
		t.Fatalf("collective-only config estimated at %g bytes", c)
	}
	sched := tensorlights.ExperimentConfig{
		Steps:     60,
		Scheduler: &tensorlights.SchedulerConfig{Placement: "contention-aware"},
	}
	if sc := expectedWorkBytes(sched); sc <= 0 {
		t.Fatalf("scheduler config estimated at %g bytes", sc)
	}
}
