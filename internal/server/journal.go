// Package server turns the CLI reproduction into a crash-safe
// simulation-as-a-service daemon: an HTTP/JSON control plane that
// accepts ExperimentConfig submissions, runs them on the parallel sweep
// engine behind a bounded worker queue, and survives worker panics,
// stuck trials, process kills, and overload.
//
// Robustness discipline:
//
//   - Write-ahead JSONL journal: every job transition (submitted →
//     running → done/failed/cancelled) is appended and fsynced before
//     it is acknowledged, so a killed-and-restarted daemon recovers its
//     queue and re-runs interrupted jobs exactly once. Simulations are
//     deterministic given a seed, so a re-run reproduces the lost
//     result byte for byte.
//   - Per-job deadlines via context.Context threaded down through
//     sweep.Engine into the event kernel: a stuck trial is abandoned
//     between events, never wedging a worker forever.
//   - Panic isolation with bounded retry + exponential backoff +
//     seeded jitter before a job is marked failed.
//   - Graceful drain on SIGTERM: stop admitting, finish or abandon
//     in-flight jobs (abandoned jobs stay journaled as running and
//     re-run on the next start), flush the journal.
//   - Overload shedding: a bounded queue returns 429 + Retry-After, a
//     per-client token bucket rate-limits submission storms, and a
//     content-addressed (config, seed) cache dedupes identical
//     submissions instead of re-executing them.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	tensorlights "repro"
)

// Journal record types, in lifecycle order. A job with no terminal
// record (done/failed/cancelled) at replay time was interrupted by a
// crash and is re-enqueued.
const (
	recSubmitted = "submitted"
	recRunning   = "running"
	recDone      = "done"
	recFailed    = "failed"
	recCancelled = "cancelled"
)

// Record is one append-only journal line. Only submitted records carry
// the config; terminal records carry the outcome. Records never carry
// wall-clock timestamps: replayed state must be independent of when the
// daemon (re)started, and results stay byte-comparable across runs.
type Record struct {
	T       string                          `json:"t"`
	ID      string                          `json:"id"`
	Hash    string                          `json:"hash,omitempty"`
	Attempt int                             `json:"attempt,omitempty"`
	Config  *tensorlights.ExperimentConfig  `json:"config,omitempty"`
	// TimeoutSec is the per-job deadline requested at submission
	// (0 = server default).
	TimeoutSec float64              `json:"timeout_sec,omitempty"`
	Result     *tensorlights.Result `json:"result,omitempty"`
	Error      string               `json:"error,omitempty"`
}

// Journal is the append-only JSONL write-ahead log. Append marshals,
// writes, and fsyncs under a mutex: a record either hits the disk
// whole or the crash happened first — replay tolerates a torn final
// line, so the journal is valid after a kill at any byte.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// compactSuffix names the temporary file CompactJournal writes before
// atomically renaming it over the journal. A stale one on disk means a
// crash hit mid-compaction before the rename, so the original journal
// is still authoritative and the temp is garbage.
const compactSuffix = ".compact"

// parseJournal decodes a journal byte image. It returns the records in
// append order and the length of the valid newline-terminated prefix.
// An unterminated or unparseable final line — the signature of a crash
// mid-append — is dropped rather than failing recovery: Append only
// acknowledges a record after writing record + newline and fsyncing,
// so a torn tail was by construction never acknowledged. Corruption
// anywhere earlier is an error, because silently skipping acknowledged
// records would lose jobs.
func parseJournal(path string, data []byte) (recs []Record, good int, err error) {
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Torn tail: the final append never completed, so the
			// record was never acknowledged. Drop it.
			break
		}
		line := data[off : off+nl]
		if len(bytes.TrimSpace(line)) > 0 {
			var r Record
			if err := json.Unmarshal(line, &r); err != nil {
				if len(bytes.TrimSpace(data[off+nl+1:])) > 0 {
					return nil, 0, fmt.Errorf("server: journal %s corrupt mid-file at byte %d: %v", path, off, err)
				}
				break // corrupt final line: same torn-append case
			}
			recs = append(recs, r)
		}
		off += nl + 1
		good = off
	}
	return recs, good, nil
}

// OpenJournal replays the journal at path (creating it if absent) and
// opens it for appending. It returns the replayed records in append
// order, truncating a torn final line (see parseJournal) and removing
// any compaction temp left by a crash mid-rotation.
func OpenJournal(path string) (*Journal, []Record, error) {
	// A leftover temp means the compaction rename never happened; the
	// original journal is complete and the temp is dead weight.
	_ = os.Remove(path + compactSuffix)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("server: read journal: %w", err)
	}
	recs, good, err := parseJournal(path, data)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("server: open journal: %w", err)
	}
	if err := f.Truncate(int64(good)); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("server: truncate journal tail: %w", err)
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("server: seek journal: %w", err)
	}
	return &Journal{f: f, path: path}, recs, nil
}

// Append writes one record and fsyncs before returning: once Append
// returns, the transition survives SIGKILL.
func (j *Journal) Append(r Record) error {
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("server: marshal journal record: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("server: journal %s closed", j.path)
	}
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("server: append journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("server: sync journal: %w", err)
	}
	return nil
}

// Sync flushes the journal file to disk (drain calls it once more on
// the way out; every Append already synced itself).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.f.Sync()
}

// Close syncs and closes the file. Further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// CompactJournal rewrites the journal at path, dropping every record
// that replay makes redundant. For a job with a terminal record only
// the submitted record, the last running record (so attempt counts
// survive) and the final terminal record are kept; for a job still in
// flight only the submitted record is kept, because recovery resets
// interrupted jobs to queued with a fresh attempt budget anyway. The
// compacted log is therefore proportional to the job count, not the
// attempt count.
//
// The rewrite is crash-safe at any byte: the new log is written to
// path+".compact", fsynced, and renamed over the original in one
// atomic step (with the directory synced after). A kill before the
// rename leaves the untouched original plus a temp that OpenJournal
// discards; a kill after leaves the complete compacted log. When
// nothing would be dropped the journal is left alone.
func CompactJournal(path string) (kept, dropped int, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("server: compact journal: %w", err)
	}
	recs, good, err := parseJournal(path, data)
	if err != nil {
		return 0, 0, err
	}
	type jobRecs struct {
		submitted   *Record
		lastRunning *Record
		terminal    *Record
	}
	byID := map[string]*jobRecs{}
	var order []string
	for i := range recs {
		r := &recs[i]
		jr := byID[r.ID]
		if jr == nil {
			jr = &jobRecs{}
			byID[r.ID] = jr
			order = append(order, r.ID)
		}
		switch r.T {
		case recSubmitted:
			if jr.submitted == nil {
				jr.submitted = r
			}
		case recRunning:
			jr.lastRunning = r
		case recDone, recFailed, recCancelled:
			jr.terminal = r
		}
	}
	var out []*Record
	for _, id := range order {
		jr := byID[id]
		if jr.submitted == nil {
			continue // orphan records for a job never submitted: drop
		}
		out = append(out, jr.submitted)
		if jr.terminal != nil {
			if jr.lastRunning != nil {
				out = append(out, jr.lastRunning)
			}
			out = append(out, jr.terminal)
		}
	}
	kept = len(out)
	dropped = len(recs) - kept
	if dropped == 0 && good == len(data) {
		return kept, 0, nil
	}

	tmp := path + compactSuffix
	f, err := os.Create(tmp)
	if err != nil {
		return 0, 0, fmt.Errorf("server: compact journal: %w", err)
	}
	enc := json.NewEncoder(f)
	for _, r := range out {
		if err := enc.Encode(r); err != nil {
			f.Close()
			os.Remove(tmp)
			return 0, 0, fmt.Errorf("server: compact journal: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, 0, fmt.Errorf("server: compact journal: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, 0, fmt.Errorf("server: compact journal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, 0, fmt.Errorf("server: compact journal: %w", err)
	}
	// Sync the directory so the rename itself survives a power cut;
	// best-effort, as some filesystems refuse directory fsync.
	if d, derr := os.Open(filepath.Dir(path)); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return kept, dropped, nil
}
