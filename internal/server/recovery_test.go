package server

import (
	"context"
	"encoding/json"
	"sync/atomic"
	"testing"
	"time"

	tensorlights "repro"
)

// TestCrashRecoveryByteIdenticalResult is the headline robustness
// test: a daemon killed (SIGKILL-equivalent, in-process) mid-job and
// restarted against the same journal must re-run the interrupted job
// exactly once and produce a result byte-identical to an uninterrupted
// run. The restarted daemon runs the REAL simulation — determinism
// from seed to result is what makes crash recovery lossless.
func TestCrashRecoveryByteIdenticalResult(t *testing.T) {
	exp := expCfg(11)

	// Uninterrupted reference: the same experiment through a daemon
	// that is never killed.
	refCfg := testConfig(t)
	ref, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.Start()
	refSt, err := ref.Submit(exp, 0, "ref")
	if err != nil {
		t.Fatal(err)
	}
	refFin := waitTerminal(t, ref, refSt.ID)
	if refFin.State != JobDone {
		t.Fatalf("reference run settled as %+v", refFin)
	}
	ref.Kill()

	// Victim daemon: the runner parks mid-job (as if deep inside a long
	// sweep) until the process dies.
	victimCfg := testConfig(t)
	running := make(chan struct{}, 1)
	victimCfg.Runner = func(ctx context.Context, c tensorlights.ExperimentConfig) (*tensorlights.Result, error) {
		running <- struct{}{}
		<-ctx.Done() // SIGKILL: the attempt just stops
		return nil, ctx.Err()
	}
	victim, err := New(victimCfg)
	if err != nil {
		t.Fatal(err)
	}
	victim.Start()
	st, err := victim.Submit(exp, 0, "c1")
	if err != nil {
		t.Fatal(err)
	}
	<-running // the job is mid-attempt: journal says submitted+running
	victim.Kill()

	// Restart against the same journal with the real runner.
	recCfg := testConfig(t)
	recCfg.JournalPath = victimCfg.JournalPath
	rec, err := New(recCfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.met.recovered.Value(); got != 1 {
		t.Fatalf("recovered %v jobs from journal, want exactly 1", got)
	}
	rec.Start()
	defer rec.Kill()
	fin := waitTerminal(t, rec, st.ID)
	if fin.State != JobDone {
		t.Fatalf("recovered job settled as %+v", fin)
	}
	if fin.Attempts != 1 {
		t.Fatalf("recovered job re-ran %d times, want exactly once", fin.Attempts)
	}
	if fin.ID != st.ID {
		t.Fatalf("recovery minted a new job id %s for %s", fin.ID, st.ID)
	}

	gotJSON, err := json.Marshal(fin.Result)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(refFin.Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("recovered result differs from uninterrupted run:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

// TestCrashRecoverySurvivesDoubleCrash kills the daemon twice — once
// mid-job, once again mid-recovery-run — and checks the third process
// still completes the job once.
func TestCrashRecoverySurvivesDoubleCrash(t *testing.T) {
	exp := expCfg(5)
	path := ""
	var id string
	for round := 0; round < 2; round++ {
		cfg := testConfig(t)
		if path == "" {
			path = cfg.JournalPath
		}
		cfg.JournalPath = path
		running := make(chan struct{}, 1)
		cfg.Runner = func(ctx context.Context, c tensorlights.ExperimentConfig) (*tensorlights.Result, error) {
			running <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		s.Start()
		if round == 0 {
			st, err := s.Submit(exp, 0, "c1")
			if err != nil {
				t.Fatal(err)
			}
			id = st.ID
		}
		<-running
		s.Kill()
	}

	final := testConfig(t)
	final.JournalPath = path
	s, err := New(final)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Kill()
	fin := waitTerminal(t, s, id)
	if fin.State != JobDone || fin.Result == nil {
		t.Fatalf("job did not survive double crash: %+v", fin)
	}
	if len(s.List()) != 1 {
		t.Fatalf("recovery duplicated the job: %d entries", len(s.List()))
	}
}

// TestRecoveryReplaysTerminalStatesWithoutReruns restarts a daemon
// whose journal holds one done and one failed job: neither re-runs,
// the done result is served from the replayed cache, and submitting
// the done config again dedupes instead of executing.
func TestRecoveryReplaysTerminalStatesWithoutReruns(t *testing.T) {
	cfg := testConfig(t)
	var calls atomic.Int64
	okCfg, badCfg := expCfg(1), expCfg(2)
	cfg.Runner = func(ctx context.Context, c tensorlights.ExperimentConfig) (*tensorlights.Result, error) {
		calls.Add(1)
		if c.Seed == 2 {
			return nil, context.DeadlineExceeded
		}
		return &tensorlights.Result{AvgJCT: 7}, nil
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	okSt, _ := s.Submit(okCfg, 0, "c1")
	badSt, _ := s.Submit(badCfg, 0, "c1")
	waitTerminal(t, s, okSt.ID)
	waitTerminal(t, s, badSt.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	callsBefore := calls.Load()

	cfg2 := testConfig(t)
	cfg2.JournalPath = cfg.JournalPath
	cfg2.Runner = cfg.Runner
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	defer s2.Kill()
	if got := s2.met.recovered.Value(); got != 0 {
		t.Fatalf("terminal jobs were re-queued: recovered=%v", got)
	}
	st, err := s2.Status(okSt.ID)
	if err != nil || st.State != JobDone || st.Result == nil {
		t.Fatalf("done job lost across restart: %v %+v", err, st)
	}
	stBad, err := s2.Status(badSt.ID)
	if err != nil || stBad.State != JobFailed || stBad.Error == "" {
		t.Fatalf("failed job lost its cause across restart: %v %+v", err, stBad)
	}
	// Resubmitting the done config hits the replayed cache.
	dedup, err := s2.Submit(okCfg, 0, "c1")
	if err != nil {
		t.Fatal(err)
	}
	if !dedup.Deduped || dedup.State != JobDone || dedup.Result == nil {
		t.Fatalf("resubmission after restart was not served from cache: %+v", dedup)
	}
	if got := calls.Load(); got != callsBefore {
		t.Fatalf("restart re-executed terminal jobs: %d calls, had %d", got, callsBefore)
	}
}
