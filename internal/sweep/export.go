package sweep

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/metrics"
)

// csvWriter is a minimal CSV emitter (values never contain commas).
type csvWriter struct {
	w   io.Writer
	err error
}

func (c *csvWriter) row(cells ...any) {
	if c.err != nil {
		return
	}
	for i, cell := range cells {
		if i > 0 {
			if _, c.err = fmt.Fprint(c.w, ","); c.err != nil {
				return
			}
		}
		switch v := cell.(type) {
		case float64:
			_, c.err = fmt.Fprintf(c.w, "%g", v)
		case string:
			_, c.err = fmt.Fprint(c.w, strings.ReplaceAll(v, ",", ";"))
		default:
			_, c.err = fmt.Fprintf(c.w, "%v", v)
		}
		if c.err != nil {
			return
		}
	}
	_, c.err = fmt.Fprintln(c.w)
}

// WriteCSV exports Figure 2's per-placement rows.
func (r *Figure2Result) WriteCSV(w io.Writer) error {
	c := &csvWriter{w: w}
	c.row("placement", "groups", "avg_jct_s", "min_jct_s", "max_jct_s")
	for _, row := range r.Rows {
		c.row(row.Placement.Index, row.Placement.String(), row.Avg, row.Min, row.Max)
	}
	return c.err
}

// writeCDF exports a named empirical CDF as (series, x, p) rows.
func writeCDF(c *csvWriter, label string, samples []float64, points int) {
	cdf := metrics.NewCDF(samples)
	for _, pt := range cdf.Points(points) {
		c.row(label, pt[0], pt[1])
	}
}

// cdfPoints is the resolution of exported CDFs.
const cdfPoints = 200

// WriteCSV exports Figure 3's four CDFs as (series, x, p) rows.
func (r *Figure3Result) WriteCSV(w io.Writer) error {
	c := &csvWriter{w: w}
	c.row("series", "x", "p")
	for _, d := range []WaitDist{r.MeanP1, r.MeanP8, r.VarP1, r.VarP8} {
		writeCDF(c, d.Label, d.Samples, cdfPoints)
	}
	return c.err
}

// WriteCSV exports Figure 5a's normalized JCT rows.
func (r *Figure5aResult) WriteCSV(w io.Writer) error {
	c := &csvWriter{w: w}
	c.row("placement", "fifo_avg_jct_s", "tls_one_norm", "tls_rr_norm")
	for _, row := range r.Rows {
		c.row(row.Placement.Index, row.FIFOAvg, row.NormOne, row.NormRR)
	}
	return c.err
}

// WriteCSV exports Figure 5b's batch sweep rows.
func (r *Figure5bResult) WriteCSV(w io.Writer) error {
	c := &csvWriter{w: w}
	c.row("local_batch", "fifo_avg_jct_s", "tls_one_norm", "tls_rr_norm")
	for _, row := range r.Rows {
		c.row(row.LocalBatch, row.FIFOAvg, row.NormOne, row.NormRR)
	}
	return c.err
}

// WriteCSV exports Figure 6's six CDFs as (series, x, p) rows.
func (r *Figure6Result) WriteCSV(w io.Writer) error {
	c := &csvWriter{w: w}
	c.row("series", "x", "p")
	for _, pol := range []string{"FIFO", "TLs-One", "TLs-RR"} {
		writeCDF(c, "avg_wait_"+pol, r.Means[pol].Samples, cdfPoints)
	}
	for _, pol := range []string{"FIFO", "TLs-One", "TLs-RR"} {
		writeCDF(c, "wait_variance_"+pol, r.Vars[pol].Samples, cdfPoints)
	}
	return c.err
}

// WriteCSV exports the fault-recovery comparison rows.
func (r *FaultRecoveryResult) WriteCSV(w io.Writer) error {
	c := &csvWriter{w: w}
	c.row("policy", "clean_avg_jct_s", "faulted_avg_jct_s", "slowdown",
		"clean_barrier_mean_s", "faulted_barrier_mean_s",
		"restarts", "degraded_workers", "failed_jobs",
		"link_flaps", "tc_outages", "crashes",
		"tc_retries", "tc_fallbacks", "tc_repairs")
	for _, row := range r.Rows {
		c.row(row.Policy, row.CleanAvgJCT, row.FaultedAvgJCT, row.Slowdown,
			row.CleanBarrierMean, row.FaultedBarrierMean,
			row.Restarts, row.DegradedWorkers, row.FailedJobs,
			row.Faults.LinkFlaps, row.Faults.TCOutages, row.Faults.Crashes,
			row.Tc.Retries, row.Tc.Fallbacks, row.Tc.Repairs)
	}
	return c.err
}

// WriteCSV exports the collective-workload comparison rows.
func (r *CollectiveResult) WriteCSV(w io.Writer) error {
	c := &csvWriter{w: w}
	c.row("scenario", "policy", "avg_jct_s", "p95_jct_s",
		"ps_avg_jct_s", "allreduce_avg_jct_s", "reconfigs")
	for _, row := range r.Rows {
		c.row(row.Scenario, row.Policy, row.AvgJCT, row.P95JCT,
			row.PSAvg, row.AllReduceAvg, row.Reconfigs)
	}
	return c.err
}

// WriteCSV exports the replicate sweep's per-trial rows followed by the
// per-policy aggregates.
func (r *ReplicateResult) WriteCSV(w io.Writer) error {
	c := &csvWriter{w: w}
	c.row("policy", "seed", "avg_jct_s", "p95_jct_s", "barrier_wait_mean_s", "events")
	for _, row := range r.Rows {
		c.row(row.Policy, row.Seed, row.AvgJCT, row.P95JCT, row.BarrierWaitMean, row.Events)
	}
	c.row("policy", "n", "mean_avg_jct_s", "std_s", "min_s", "max_s")
	for i, pol := range r.Policies {
		s := r.Stats[i]
		c.row(pol, s.N, s.Mean, s.Std, s.Min, s.Max)
	}
	return c.err
}

// WriteCSV exports the policy-comparison rows.
func (r *PolicySweepResult) WriteCSV(w io.Writer) error {
	c := &csvWriter{w: w}
	c.row("policy", "avg_jct_s", "p95_jct_s", "max_jct_s",
		"barrier_wait_mean_s", "reconfigs")
	for _, row := range r.Rows {
		c.row(row.Policy, row.AvgJCT, row.P95JCT, row.MaxJCT,
			row.BarrierWaitMean, row.Reconfigs)
	}
	return c.err
}

// WriteCSV exports the churn-sweep policy comparison rows.
func (r *ChurnSweepResult) WriteCSV(w io.Writer) error {
	c := &csvWriter{w: w}
	c.row("policy", "avg_jct_s", "p95_jct_s", "makespan_s", "reconfigs", "max_colocation")
	for _, row := range r.Rows {
		c.row(row.Policy, row.AvgJCT, row.P95JCT, row.MakespanSec,
			row.Reconfigs, row.MaxColocation)
	}
	return c.err
}

// WriteCSV exports the topology sweep's grid rows.
func (r *TopologyResult) WriteCSV(w io.Writer) error {
	c := &csvWriter{w: w}
	c.row("oversub", "strategy", "policy", "avg_jct_s", "p95_jct_s",
		"cross_rack_ratio", "max_link_util", "reconfigs")
	for _, row := range r.Rows {
		c.row(row.Oversub, row.Strategy, row.Policy, row.AvgJCT, row.P95JCT,
			row.CrossRackRatio, row.MaxLinkUtil, row.Reconfigs)
	}
	return c.err
}

// WriteCSV exports the scheduler sweep's grid rows.
func (r *SchedulerResult) WriteCSV(w io.Writer) error {
	c := &csvWriter{w: w}
	c.row("oversub", "placement", "policy", "avg_jct_s", "p95_jct_s",
		"cross_rack_ratio", "max_link_util", "shifted_jobs", "total_shift_s", "reconfigs")
	for _, row := range r.Rows {
		c.row(row.Oversub, row.Placement, row.Policy, row.AvgJCT, row.P95JCT,
			row.CrossRackRatio, row.MaxLinkUtil, row.ShiftedJobs,
			row.TotalShiftSec, row.Reconfigs)
	}
	return c.err
}

// WriteCSV exports the open-world sweep's grid rows.
func (r *OpenWorldResult) WriteCSV(w io.Writer) error {
	c := &csvWriter{w: w}
	c.row("arrivals", "hosts", "policy", "avg_jct_s", "p95_jct_s",
		"ps_jobs", "collective_jobs", "cross_rack_ratio", "max_link_util",
		"reconfigs", "makespan_s")
	for _, row := range r.Rows {
		c.row(row.Arrivals, row.Hosts, row.Policy, row.AvgJCT, row.P95JCT,
			row.PSJobs, row.CollectiveJobs, row.CrossRackRatio,
			row.MaxLinkUtil, row.Reconfigs, row.MakespanSec)
	}
	return c.err
}

// WriteCSV exports Table II's normalized utilization rows.
func (r *TableIIResult) WriteCSV(w io.Writer) error {
	c := &csvWriter{w: w}
	c.row("resource", "host_type", "tls_one_x", "tls_rr_x")
	for _, row := range r.Rows {
		c.row(row.Resource, row.HostType, row.One, row.RR)
	}
	return c.err
}
