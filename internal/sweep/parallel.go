package sweep

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Engine is the deterministic parallel trial runner. It fans a sweep's
// trial grid across a worker pool; every trial owns an isolated
// sim.Kernel and RNG (both are created inside the trial from its seeded
// cluster.Config), so trials share nothing and any interleaving of
// workers produces the same per-trial results. Outputs are gathered
// into index-addressed slices, which restores deterministic grid order
// regardless of completion order: figure tables and CSV exports are
// byte-identical to the sequential path.
//
// Parallelism semantics: <= 0 uses GOMAXPROCS; 1 is the legacy
// sequential path (trials run inline on the calling goroutine, no pool
// is started); N > 1 runs up to N trials concurrently.
type Engine struct {
	Parallelism int
}

// workers resolves the worker count for n trials.
func (e Engine) workers(n int) int {
	p := e.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// ForEach runs fn(0) … fn(n-1) across the pool and returns the
// lowest-index error (all indices are attempted even when one fails,
// so the reported failure does not depend on worker interleaving).
// Callers communicate results by writing into slot i of a pre-sized
// slice: index addressing is what makes the gather deterministic.
func (e Engine) ForEach(n int, fn func(i int) error) error {
	return e.ForEachContext(context.Background(), n, func(_ context.Context, i int) error {
		return fn(i)
	})
}

// ForEachContext is ForEach with cancellation: once ctx is done no new
// trial starts, and the returned error is the lowest-index trial error
// if any trial failed, otherwise ctx's error. Trials already running
// when ctx fires are expected to observe the ctx they were handed and
// return promptly. A trial that panics does not take down the process:
// the panic is recovered in the worker and converted into that trial's
// error (with the trial index and stack attached), preserving the
// lowest-index-error-wins contract.
func (e Engine) ForEachContext(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if e.workers(n) == 1 {
		// Legacy sequential path: no goroutines, fail fast. The error,
		// if any, is necessarily the lowest-index one.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := safeTrial(ctx, i, fn); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < e.workers(n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if ctx.Err() != nil {
					// Cancelled: drain the channel without starting
					// further trials.
					continue
				}
				errs[i] = safeTrial(ctx, i, fn)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// safeTrial runs one trial with panic isolation: a panicking trial is
// converted into an error carrying the trial index and stack trace, so
// one bad trial cannot take down the whole sweep (or, above it, the
// tlsimd daemon process).
func safeTrial(ctx context.Context, i int, fn func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep: trial %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return fn(ctx, i)
}

// Gather maps job over configs on the engine's pool and returns the
// results in input order.
func Gather[C, R any](e Engine, configs []C, job func(C) (R, error)) ([]R, error) {
	results := make([]R, len(configs))
	err := e.ForEach(len(configs), func(i int) error {
		r, err := job(configs[i])
		if err != nil {
			return fmt.Errorf("sweep: trial %d: %w", i, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// Trial names one cell of a sweep's (scenario, policy, seed) grid.
// Sweeps that don't vary one of the axes leave it at its zero value.
type Trial struct {
	Scenario string
	Policy   string
	Seed     int64
}

// GridTrials enumerates the full cross product in canonical grid order:
// scenario-major, then policy, then seed (seeds count consecutively up
// from baseSeed). The order is the contract — result row i of a sweep
// built from GridTrials corresponds to trial i here, sequential or not.
func GridTrials(scenarios, policies []string, baseSeed int64, seeds int) []Trial {
	if seeds < 1 {
		seeds = 1
	}
	if len(scenarios) == 0 {
		scenarios = []string{""}
	}
	if len(policies) == 0 {
		policies = []string{""}
	}
	out := make([]Trial, 0, len(scenarios)*len(policies)*seeds)
	for _, sc := range scenarios {
		for _, pol := range policies {
			for s := 0; s < seeds; s++ {
				out = append(out, Trial{Scenario: sc, Policy: pol, Seed: baseSeed + int64(s)})
			}
		}
	}
	return out
}
