package sweep

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/workload"
)

func TestChurnFIFOCompletes(t *testing.T) {
	res, err := Churn(ChurnOptions{
		Jobs:              8,
		ArrivalRatePerSec: 0.5,
		Steps:             400,
		Seed:              42,
		Policy:            core.PolicyFIFO,
		SchedPolicy:       cluster.PolicyRandom,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JCTs) != 8 || res.AvgJCT <= 0 {
		t.Fatalf("%+v", res)
	}
	if res.Reconfigs != 0 {
		t.Fatal("FIFO churn reconfigured tc")
	}
	if res.MakespanSec <= 0 || res.Events == 0 {
		t.Fatal("bookkeeping")
	}
}

func TestChurnTensorLightsReconfigures(t *testing.T) {
	res, err := Churn(ChurnOptions{
		Jobs:              8,
		ArrivalRatePerSec: 1.0, // fast arrivals: heavy overlap
		Steps:             400,
		Seed:              42,
		Policy:            core.PolicyOne,
		SchedPolicy:       cluster.PolicyBinpack, // force colocation
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxColocation < 2 {
		t.Fatal("binpack produced no colocation; test is vacuous")
	}
	// Arrivals and departures both reconfigure the contended host.
	if res.Reconfigs < res.MaxColocation {
		t.Fatalf("reconfigs %d with colocation %d", res.Reconfigs, res.MaxColocation)
	}
}

func TestChurnTLsBeatsFIFOUnderColocation(t *testing.T) {
	base := ChurnOptions{
		Jobs:              10,
		ArrivalRatePerSec: 2, // near-simultaneous -> strong contention
		Steps:             600,
		Seed:              7,
		SchedPolicy:       cluster.PolicyBinpack,
	}
	fifoOpts := base
	fifoOpts.Policy = core.PolicyFIFO
	fifo, err := Churn(fifoOpts)
	if err != nil {
		t.Fatal(err)
	}
	oneOpts := base
	oneOpts.Policy = core.PolicyOne
	one, err := Churn(oneOpts)
	if err != nil {
		t.Fatal(err)
	}
	if one.AvgJCT >= fifo.AvgJCT {
		t.Fatalf("TLs-One churn avg %.1f not better than FIFO %.1f",
			one.AvgJCT, fifo.AvgJCT)
	}
}

func TestChurnHeterogeneousMix(t *testing.T) {
	res, err := Churn(ChurnOptions{
		Jobs:              6,
		ArrivalRatePerSec: 1,
		Seed:              3,
		Policy:            core.PolicyOne,
		SchedPolicy:       cluster.PolicyRandom,
		Templates:         workload.HeterogeneousMix(300),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerModelAvgJCT) < 2 {
		t.Fatalf("mix produced %d model classes", len(res.PerModelAvgJCT))
	}
}

func TestSlowHostCreatesComputeBoundStragglers(t *testing.T) {
	// A half-speed host at the uniform placement (#8) creates
	// compute-bound stragglers: barrier wait variance rises, and NIC
	// prioritization cannot remove it — the negative control for
	// TensorLights' mechanism.
	p8, _ := cluster.PlacementByIndex(8)
	uniform, err := Run(RunConfig{
		Placement: p8, TargetSteps: 400, Cluster: cluster.Config{Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	slowCfg := cluster.Config{Seed: 5, HostSpeedFactors: []float64{1, 1, 1, 0.5}}
	slow, err := Run(RunConfig{
		Placement: p8, TargetSteps: 400, Cluster: slowCfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	slowVar := mean(slow.BarrierVars)
	uniVar := mean(uniform.BarrierVars)
	if slowVar < 3*uniVar {
		t.Fatalf("slow host variance %.5f not >> uniform %.5f", slowVar, uniVar)
	}
	// And TLs-One cannot fix compute-bound stragglers.
	slowTLs, err := Run(RunConfig{
		Placement: p8, TargetSteps: 400, Cluster: slowCfg,
		TLs: core.Config{Policy: core.PolicyOne},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := mean(slowTLs.BarrierVars); got < 0.8*slowVar {
		t.Fatalf("TLs 'fixed' compute-bound stragglers: %.5f vs %.5f", got, slowVar)
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestGradientCompressionReducesIngressLoad(t *testing.T) {
	// 4x-compressed gradients shrink the PS-host ingress bytes by
	// nearly half (gradients compressed, model updates not) while the
	// job still completes the same steps.
	p1, _ := cluster.PlacementByIndex(1)
	plain, err := Run(RunConfig{
		Placement: p1, TargetSteps: 300, Cluster: cluster.Config{Seed: 4},
		SampleUtilEvery: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Run(RunConfig{
		Placement: p1, TargetSteps: 300, Cluster: cluster.Config{Seed: 4},
		SampleUtilEvery: 0.5, GradCompression: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Compression helps JCT under contention (less ingress pressure).
	if comp.AvgJCT() >= plain.AvgJCT() {
		t.Fatalf("compression did not help: %.1f vs %.1f", comp.AvgJCT(), plain.AvgJCT())
	}
	// Ingress utilization of the PS host drops.
	if comp.Utils[0].NetIn >= plain.Utils[0].NetIn {
		t.Fatalf("ingress util %v not below %v", comp.Utils[0].NetIn, plain.Utils[0].NetIn)
	}
}

func TestReplicate(t *testing.T) {
	calls := 0
	stats, err := Replicate(3, 10, func(seed int64) (float64, error) {
		calls++
		return float64(seed), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || stats.N != 3 {
		t.Fatalf("calls %d stats %+v", calls, stats)
	}
	if stats.Mean != 11 || stats.Min != 10 || stats.Max != 12 {
		t.Fatalf("%+v", stats)
	}
	if stats.Std < 0.9 || stats.Std > 1.1 {
		t.Fatalf("std %v, want 1 (sample std of 10,11,12)", stats.Std)
	}
	if stats.String() == "" {
		t.Fatal("render")
	}
	if _, err := Replicate(0, 0, nil); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := Replicate(2, 0, func(int64) (float64, error) {
		return 0, fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("metric error swallowed")
	}
}
