package sweep

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cluster"
)

// TestTopologySweepShowsPlacementGap asserts the experiment's headline:
// under >= 2:1 core oversubscription, naive spread placement (every
// ring edge crossing racks) yields measurably worse JCTs than
// network-aware packing, and the gap widens with oversubscription.
func TestTopologySweepShowsPlacementGap(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full topology grid")
	}
	r, err := TopologySweep(Options{Steps: 300, Seed: 42, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(TopologyOversubs)*len(TopologyStrategies)*len(topologyPolicyNames) {
		t.Fatalf("grid has %d rows", len(r.Rows))
	}
	gap2, gap4 := r.PlacementGap(2), r.PlacementGap(4)
	if gap2 < 1.15 {
		t.Fatalf("2:1 placement gap %.3fx: network-aware placement should measurably win", gap2)
	}
	if gap4 <= gap2 {
		t.Fatalf("gap should widen with oversubscription: 2:1 %.3fx vs 4:1 %.3fx", gap2, gap4)
	}
	for _, row := range r.Rows {
		if row.AvgJCT <= 0 || row.P95JCT < row.AvgJCT {
			t.Fatalf("row %+v has malformed JCT stats", row)
		}
		switch row.Strategy {
		case string(cluster.StrategySpread):
			if row.CrossRackRatio <= 0.5 {
				t.Fatalf("spread row %+v should be dominated by cross-rack traffic", row)
			}
		case string(cluster.StrategyNetworkAware):
			if row.CrossRackRatio != 0 {
				t.Fatalf("network-aware row %+v should keep all traffic in-rack", row)
			}
		}
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	csv := buf.String()
	if !strings.HasPrefix(csv, "oversub,strategy,policy,") {
		t.Fatalf("CSV header: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if !strings.Contains(csv, "network-aware") || !strings.Contains(csv, "TLs-LAS") {
		t.Fatal("CSV missing expected rows")
	}
}
