package sweep

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
)

// ReplicateStats aggregates one headline scalar across seeds.
type ReplicateStats struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// String renders mean ± std.
func (r ReplicateStats) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", r.Mean, r.Std, r.N)
}

// Replicate evaluates metric for n consecutive seeds starting at
// baseSeed and aggregates the results. Use it to put error bars on any
// headline number (performance gap, improvement percentage, ratio):
//
//	stats, err := sweep.Replicate(3, 1, func(seed int64) (float64, error) {
//	    r, err := sweep.Figure2(sweep.Options{Steps: 3000, Seed: seed})
//	    if err != nil {
//	        return 0, err
//	    }
//	    return r.PerformanceGap(), nil
//	})
func Replicate(n int, baseSeed int64, metric func(seed int64) (float64, error)) (ReplicateStats, error) {
	return ReplicateParallel(n, baseSeed, 1, metric)
}

// ReplicateParallel is Replicate with the seed evaluations fanned over
// the parallel Engine. The aggregation is order-independent up to
// floating-point association, so vals are gathered in seed order and
// folded sequentially: the stats are bit-identical to Replicate's.
// parallelism follows Engine semantics (<= 0 GOMAXPROCS, 1 sequential).
func ReplicateParallel(n int, baseSeed int64, parallelism int, metric func(seed int64) (float64, error)) (ReplicateStats, error) {
	return ReplicateParallelContext(context.Background(), n, baseSeed, parallelism,
		func(_ context.Context, seed int64) (float64, error) { return metric(seed) })
}

// ReplicateParallelContext is ReplicateParallel with cancellation: the
// ctx handed to each metric evaluation is the one to thread into
// RunContext/RunExperimentContext, so an interrupted replicate sweep
// abandons queued seeds and stops in-flight simulations mid-run.
func ReplicateParallelContext(ctx context.Context, n int, baseSeed int64, parallelism int, metric func(ctx context.Context, seed int64) (float64, error)) (ReplicateStats, error) {
	if n < 1 {
		return ReplicateStats{}, fmt.Errorf("sweep: replicate needs n >= 1")
	}
	vals := make([]float64, n)
	err := Engine{Parallelism: parallelism}.ForEachContext(ctx, n, func(ctx context.Context, i int) error {
		seed := baseSeed + int64(i)
		v, err := metric(ctx, seed)
		if err != nil {
			return fmt.Errorf("sweep: replicate seed %d: %w", seed, err)
		}
		vals[i] = v
		return nil
	})
	if err != nil {
		return ReplicateStats{}, err
	}
	return replicateStatsOf(vals), nil
}

// replicateStatsOf folds vals (in order) into summary stats.
func replicateStatsOf(vals []float64) ReplicateStats {
	n := len(vals)
	stats := ReplicateStats{N: n, Min: vals[0], Max: vals[0]}
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v < stats.Min {
			stats.Min = v
		}
		if v > stats.Max {
			stats.Max = v
		}
	}
	stats.Mean = sum / float64(n)
	if n > 1 {
		ss := 0.0
		for _, v := range vals {
			d := v - stats.Mean
			ss += d * d
		}
		stats.Std = math.Sqrt(ss / float64(n-1)) // sample std
	}
	return stats
}

// --- Replicate sweep (first-class experiment) -----------------------

// ReplicateSeeds is how many consecutive seeds the replicate sweep
// runs per policy.
const ReplicateSeeds = 3

// ReplicateRow is one (policy, seed) trial of the replicate sweep.
type ReplicateRow struct {
	Policy          string
	Seed            int64
	AvgJCT          float64
	P95JCT          float64
	BarrierWaitMean float64
	Events          uint64
}

// ReplicateResult reproduces the paper's headline JCT comparison with
// error bars: placement #1, all three policies, ReplicateSeeds seeds
// each. Rows are in canonical grid order (policy-major, seed-minor);
// Stats[i] aggregates average JCT across seeds for Policies[i].
type ReplicateResult struct {
	Policies []string
	Rows     []ReplicateRow
	Stats    []ReplicateStats
}

// Render prints the per-trial rows and the per-policy aggregates.
func (r *ReplicateResult) Render() string {
	t := NewTable("Replicate sweep: avg JCT by policy across seeds (placement #1)",
		"policy", "seed", "avg JCT (s)", "p95 JCT (s)", "barrier wait (s)")
	for _, row := range r.Rows {
		t.AddRow(row.Policy, row.Seed, row.AvgJCT, row.P95JCT, row.BarrierWaitMean)
	}
	s := t.String()
	for i, pol := range r.Policies {
		s += fmt.Sprintf("%s avg JCT: %s\n", pol, r.Stats[i])
	}
	return s
}

// ReplicateSweep runs the (policy, seed) grid on the parallel Engine.
func ReplicateSweep(o Options) (*ReplicateResult, error) {
	o.fillDefaults()
	p1, _ := cluster.PlacementByIndex(1)
	policies := []core.Policy{core.PolicyFIFO, core.PolicyOne, core.PolicyRR}
	names := make([]string, len(policies))
	byName := map[string]core.Policy{}
	for i, pol := range policies {
		names[i] = pol.String()
		byName[names[i]] = pol
	}
	trials := GridTrials(nil, names, o.Seed, ReplicateSeeds)
	results, err := Gather(Engine{Parallelism: o.Parallelism}, trials, func(t Trial) (*RunResult, error) {
		rc := o.baseRun(p1, byName[t.Policy])
		rc.Cluster.Seed = t.Seed
		rc.Label = fmt.Sprintf("%s-seed%d", t.Policy, t.Seed)
		return Run(rc)
	})
	if err != nil {
		return nil, err
	}
	out := &ReplicateResult{Policies: names}
	for i, t := range trials {
		out.Rows = append(out.Rows, ReplicateRow{
			Policy:          t.Policy,
			Seed:            t.Seed,
			AvgJCT:          results[i].AvgJCT(),
			P95JCT:          metrics.Percentile(results[i].JCTs, 0.95),
			BarrierWaitMean: metrics.Mean(results[i].BarrierMeans),
			Events:          results[i].Events,
		})
	}
	for pi := range names {
		vals := make([]float64, ReplicateSeeds)
		for s := 0; s < ReplicateSeeds; s++ {
			vals[s] = out.Rows[pi*ReplicateSeeds+s].AvgJCT
		}
		out.Stats = append(out.Stats, replicateStatsOf(vals))
	}
	return out, nil
}
