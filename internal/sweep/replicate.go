package sweep

import (
	"fmt"
	"math"
)

// ReplicateStats aggregates one headline scalar across seeds.
type ReplicateStats struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// String renders mean ± std.
func (r ReplicateStats) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", r.Mean, r.Std, r.N)
}

// Replicate evaluates metric for n consecutive seeds starting at
// baseSeed and aggregates the results. Use it to put error bars on any
// headline number (performance gap, improvement percentage, ratio):
//
//	stats, err := sweep.Replicate(3, 1, func(seed int64) (float64, error) {
//	    r, err := sweep.Figure2(sweep.Options{Steps: 3000, Seed: seed})
//	    if err != nil {
//	        return 0, err
//	    }
//	    return r.PerformanceGap(), nil
//	})
func Replicate(n int, baseSeed int64, metric func(seed int64) (float64, error)) (ReplicateStats, error) {
	if n < 1 {
		return ReplicateStats{}, fmt.Errorf("sweep: replicate needs n >= 1")
	}
	vals := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v, err := metric(baseSeed + int64(i))
		if err != nil {
			return ReplicateStats{}, fmt.Errorf("sweep: replicate seed %d: %w", baseSeed+int64(i), err)
		}
		vals = append(vals, v)
	}
	stats := ReplicateStats{N: n, Min: vals[0], Max: vals[0]}
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v < stats.Min {
			stats.Min = v
		}
		if v > stats.Max {
			stats.Max = v
		}
	}
	stats.Mean = sum / float64(n)
	if n > 1 {
		ss := 0.0
		for _, v := range vals {
			d := v - stats.Mean
			ss += d * d
		}
		stats.Std = math.Sqrt(ss / float64(n-1)) // sample std
	}
	return stats, nil
}
