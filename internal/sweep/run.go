// Package sweep is the experiment harness: it defines one runnable
// experiment per table and figure in the paper's evaluation, drives the
// simulator across the required parameter sweeps (placements, policies,
// local batch sizes, seeds), and renders the same rows and series the
// paper reports. Independent runs execute in parallel on a worker pool;
// each run is internally single-threaded and deterministic.
package sweep

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/dl"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/trace"
)

// RunConfig fully describes one simulation run.
type RunConfig struct {
	Label       string
	Cluster     cluster.Config
	Model       dl.Model
	NumJobs     int
	LocalBatch  int
	TargetSteps int
	Placement   cluster.Placement
	TLs         core.Config
	StaggerSec  float64
	Async       bool
	// SampleUtilEvery enables utilization sampling at this interval
	// (seconds); 0 disables.
	SampleUtilEvery float64
	// ProgressEvery records job progress points (global steps).
	ProgressEvery int
	// ComputeJitterSigma overrides the default per-step jitter.
	ComputeJitterSigma float64
	// GradCompression divides gradient-update bytes (1/0 = none).
	GradCompression float64
	// Tracer, when non-nil, receives job, barrier, flow and tc events
	// from all layers of the run.
	Tracer trace.Tracer
	// Faults, when Active, is expanded into scheduled fault injections
	// before the run starts (PS-host flaps target this run's PS hosts).
	Faults faults.Plan
	// Recovery is copied onto every job spec; the zero value disables
	// failure detection, so a crashed worker wedges its job's barrier.
	Recovery dl.RecoveryConfig
	// CollectiveSpecs, when non-empty, launches these all-reduce jobs
	// alongside the PS workload (same kernel, same fabric, same stagger)
	// and registers them with TensorLights by their collective port. With
	// NumJobs == 0 the run is all-reduce-only.
	CollectiveSpecs []collective.JobSpec
	// PSSpecs, when non-empty, replaces the generated grid-search
	// workload with these exact PS job specs; NumJobs and Placement are
	// then ignored. RunSharded uses it to pin a shard-stable workload,
	// and callers can replay that exact workload on the single-kernel
	// path for cross-checking.
	PSSpecs []dl.JobSpec
}

func (rc *RunConfig) fillDefaults() {
	if rc.NumJobs <= 0 && len(rc.CollectiveSpecs) == 0 && len(rc.PSSpecs) == 0 {
		rc.NumJobs = 21
	}
	if rc.NumJobs < 0 {
		rc.NumJobs = 0
	}
	if rc.LocalBatch <= 0 {
		rc.LocalBatch = 4
	}
	if rc.TargetSteps <= 0 {
		rc.TargetSteps = 30_000
	}
	if rc.Model.Params == 0 {
		rc.Model = dl.ResNet32
	}
	if rc.StaggerSec <= 0 {
		rc.StaggerSec = 0.1
	}
	if rc.NumJobs > 0 && len(rc.Placement.Groups) == 0 {
		rc.Placement, _ = cluster.PlacementByIndex(1)
	}
}

// RunResult aggregates everything the paper's figures need from one run.
type RunResult struct {
	Config RunConfig

	JCTs         []float64 // per job, in job-id order
	BarrierMeans []float64 // per-barrier mean wait, all jobs pooled
	BarrierVars  []float64 // per-barrier wait variance, all jobs pooled

	SimTime float64
	Events  uint64
	// EventAllocs is how many kernel Event structs were heap-allocated
	// (as opposed to recycled from the pool); see sim.Kernel.EventAllocs.
	EventAllocs uint64
	Wall        time.Duration
	Reconfigs   int

	// Utilization over the active window (when sampling was enabled).
	Utils      []metrics.HostUtil
	UtilWindow [2]float64

	// Progress[jobID] holds (time, step) points when ProgressEvery > 0.
	Progress map[int][]dl.ProgressPoint

	// PSHosts is the set of hosts running at least one PS.
	PSHosts []int

	// Fault-injection and recovery accounting (zero without Faults).
	FaultCounts     faults.Counts
	Restarts        int   // worker restarts summed over all jobs
	DegradedWorkers int   // workers permanently abandoned, all jobs
	FailedJobs      []int // jobs that lost every worker (no JCT recorded)
	DroppedChunks   uint64
	TcRecovery      core.RecoveryStats

	// Collective workload accounting (empty without CollectiveSpecs).
	CollectiveJCTs   []float64 // per all-reduce job, in spec order
	CollectiveStalls int       // ring stalls observed across all jobs

	// Topology accounting: per-core-link totals over the whole run
	// (empty on the flat topology) and the total bytes all host NICs
	// transmitted, for cross-rack traffic ratios.
	LinkStats   []LinkStat
	EgressBytes int64
}

// LinkStat summarizes one fabric core link over a whole run.
type LinkStat struct {
	Link  int
	Name  string
	Bytes int64
	// Util is the link's busy fraction of the full simulated time.
	Util float64
}

// AvgJCT returns the mean job completion time.
func (r *RunResult) AvgJCT() float64 { return metrics.Mean(r.JCTs) }

// Run executes one simulation to completion.
func Run(rc RunConfig) (*RunResult, error) {
	return RunContext(context.Background(), rc)
}

// RunContext is Run with cancellation: when ctx is cancelled (or its
// deadline passes) the simulation stops between events and the context
// error is returned wrapped, so long runs are abortable mid-flight —
// the tlsimd service layer uses this to enforce per-job deadlines and
// tlsim wires SIGINT to it. A background ctx reproduces Run exactly.
func RunContext(ctx context.Context, rc RunConfig) (*RunResult, error) {
	rc.fillDefaults()
	start := time.Now()
	tb := cluster.NewTestbed(rc.Cluster)
	var specs []dl.JobSpec
	var err error
	if len(rc.PSSpecs) > 0 {
		specs = append([]dl.JobSpec(nil), rc.PSSpecs...)
	} else if rc.NumJobs > 0 {
		specs, err = cluster.GridSearchSpecs(rc.Cluster, rc.Model, rc.NumJobs,
			rc.LocalBatch, rc.TargetSteps, rc.Placement)
		if err != nil {
			return nil, err
		}
	}
	for i := range specs {
		specs[i].Async = rc.Async
		specs[i].ProgressEvery = rc.ProgressEvery
		specs[i].ComputeJitterSigma = rc.ComputeJitterSigma
		specs[i].GradCompression = rc.GradCompression
		specs[i].Recovery = rc.Recovery
	}
	if err := rc.TLs.Validate(); err != nil {
		return nil, err
	}
	ctl := core.New(tb.K, tb.TC, tb.RNG, rc.TLs)
	if rc.Tracer != nil {
		tb.Env.Tracer = rc.Tracer
		tb.Fabric.Tracer = rc.Tracer
		ctl.Tracer = rc.Tracer
	}
	if ctl.NeedsFeedback() {
		// Feedback-driven policies get a telemetry collector wired to
		// the fabric. Legacy policies run without one, so their kernel
		// event counts (and hence traces and CSVs) stay untouched.
		fb := policy.NewFeedback(tb.K, policy.FeedbackConfig{
			SampleIntervalSec: rc.TLs.FeedbackIntervalSec,
		})
		fb.Probe = cluster.NewQdiscProbe(tb.Fabric)
		fb.Tracer = rc.Tracer
		ctl.AttachFeedback(fb)
	}
	jobs, err := tb.Launch(specs, rc.StaggerSec, func(j *dl.Job) {
		ctl.JobArrived(core.JobInfo{
			ID:          j.Spec.ID,
			PSHost:      j.Spec.PSHost,
			PSPort:      j.Spec.PSPort,
			UpdateBytes: j.Spec.Model.UpdateBytes(),
			// TargetSteps is in iteration units to match the progress
			// reported at each barrier: every synchronous iteration
			// advances the global step count by one step per worker.
			TargetSteps: (j.Spec.TargetGlobalSteps + j.Spec.NumWorkers - 1) / j.Spec.NumWorkers,
		})
		j.OnFinish = func(j *dl.Job) { ctl.JobDeparted(j.Spec.ID) }
		j.OnFail = func(j *dl.Job) { ctl.JobDeparted(j.Spec.ID) }
		j.OnBarrier = func(j *dl.Job, iter int) { ctl.JobProgress(j.Spec.ID, iter) }
	})
	if err != nil {
		return nil, err
	}
	var cjobs []*collective.Job
	if len(rc.CollectiveSpecs) > 0 {
		cspecs := make([]collective.JobSpec, len(rc.CollectiveSpecs))
		copy(cspecs, rc.CollectiveSpecs)
		for i := range cspecs {
			if cspecs[i].ComputeJitterSigma == 0 {
				cspecs[i].ComputeJitterSigma = rc.ComputeJitterSigma
			}
			if cspecs[i].Recovery == (dl.RecoveryConfig{}) {
				cspecs[i].Recovery = rc.Recovery
			}
		}
		// Every rank's flows carry the job's collective port as source
		// port, so one JobInfo with SenderHosts = the ring keys the whole
		// job into a single priority band on each of its hosts.
		cjobs, err = tb.LaunchCollective(cspecs, rc.StaggerSec, func(j *collective.Job) {
			ctl.JobArrived(core.JobInfo{
				ID:          j.Spec.ID,
				PSHost:      j.Spec.Hosts[0],
				PSPort:      j.Spec.Port,
				UpdateBytes: j.Spec.Model.UpdateBytes(),
				SenderHosts: j.Spec.Hosts,
				Ports:       []int{j.Spec.Port},
				TargetSteps: j.Spec.TargetIterations,
			})
			j.OnFinish = func(j *collective.Job) { ctl.JobDeparted(j.Spec.ID) }
			j.OnFail = func(j *collective.Job) { ctl.JobDeparted(j.Spec.ID) }
			j.OnIteration = func(j *collective.Job, iter int) { ctl.JobProgress(j.Spec.ID, iter) }
		})
		if err != nil {
			return nil, err
		}
	}
	var inj *faults.Injector
	if rc.Faults.Active() {
		tcc := tb.TC
		if !rc.Faults.TCOutage && len(rc.Faults.TCOutages) == 0 {
			tcc = nil // don't install the exec hook unless tc faults are wanted
		}
		inj = faults.New(tb.K, tb.RNG, tb.Fabric, tcc)
		inj.Tracer = rc.Tracer
		var psHosts []int
		seen := map[int]bool{}
		for _, s := range specs {
			if !seen[s.PSHost] {
				seen[s.PSHost] = true
				psHosts = append(psHosts, s.PSHost)
			}
		}
		jobByID := make(map[int]*dl.Job, len(jobs))
		for _, j := range jobs {
			jobByID[j.Spec.ID] = j
		}
		cjobByID := make(map[int]*collective.Job, len(cjobs))
		for _, j := range cjobs {
			cjobByID[j.Spec.ID] = j
		}
		if err := inj.Apply(rc.Faults, psHosts, jobByID, cjobByID); err != nil {
			return nil, err
		}
	}
	var sampler *metrics.UtilizationSampler
	if rc.SampleUtilEvery > 0 {
		sampler = metrics.NewUtilizationSampler(tb.K, tb.Fabric, tb.CPUs, rc.SampleUtilEvery)
		sampler.Tracer = rc.Tracer
		sampler.Start()
	}
	runErr := tb.RunMixedToCompletionCtx(ctx, jobs, cjobs, 0)
	if sampler != nil {
		sampler.Stop()
	}
	if runErr != nil {
		return nil, fmt.Errorf("sweep: run %q cancelled at sim time %.3f s: %w",
			rc.Label, tb.K.Now(), runErr)
	}

	res := &RunResult{
		Config:      rc,
		SimTime:     tb.K.Now(),
		Events:      tb.K.Fired(),
		EventAllocs: tb.K.EventAllocs(),
		Wall:        time.Since(start),
		Reconfigs:   ctl.Reconfigs(),
		Progress:    map[int][]dl.ProgressPoint{},
	}
	psSet := map[int]bool{}
	for _, j := range jobs {
		if j.Failed() {
			// Under fault injection a job may legitimately lose every
			// worker; record it instead of failing the whole run.
			res.FailedJobs = append(res.FailedJobs, j.Spec.ID)
			res.Restarts += j.Restarts()
			res.DegradedWorkers += j.DegradedWorkers()
			continue
		}
		if !j.Done() {
			return nil, fmt.Errorf("sweep: job %d did not finish (step %d/%d)",
				j.Spec.ID, j.GlobalStep(), j.Spec.TargetGlobalSteps)
		}
		res.JCTs = append(res.JCTs, j.JCT())
		res.Restarts += j.Restarts()
		res.DegradedWorkers += j.DegradedWorkers()
		for _, bs := range j.BarrierStats() {
			res.BarrierMeans = append(res.BarrierMeans, bs.Mean)
			res.BarrierVars = append(res.BarrierVars, bs.Variance)
		}
		if rc.ProgressEvery > 0 {
			res.Progress[j.Spec.ID] = j.Progress()
		}
		psSet[j.Spec.PSHost] = true
	}
	for _, j := range cjobs {
		res.Restarts += j.Restarts()
		res.CollectiveStalls += j.Stalls()
		if j.Failed() {
			res.FailedJobs = append(res.FailedJobs, j.Spec.ID)
			continue
		}
		if !j.Done() {
			return nil, fmt.Errorf("sweep: collective job %d did not finish (iteration %d/%d)",
				j.Spec.ID, j.Iterations(), j.Spec.TargetIterations)
		}
		res.CollectiveJCTs = append(res.CollectiveJCTs, j.JCT())
	}
	if inj != nil {
		res.FaultCounts = inj.Counts()
	}
	res.DroppedChunks = tb.Fabric.DroppedChunks()
	res.TcRecovery = ctl.Stats()
	for _, l := range tb.Fabric.CoreLinks() {
		util := 0.0
		if res.SimTime > 0 {
			util = l.Port().BusyTime() / res.SimTime
		}
		res.LinkStats = append(res.LinkStats, LinkStat{
			Link: l.ID, Name: l.Name, Bytes: l.Port().Bytes(), Util: util,
		})
	}
	for _, h := range tb.Fabric.Hosts() {
		res.EgressBytes += h.Egress.Bytes()
	}
	for h := 0; h < tb.Fabric.NumHosts(); h++ {
		if psSet[h] {
			res.PSHosts = append(res.PSHosts, h)
		}
	}
	if sampler != nil && len(res.JCTs) > 0 {
		// Active window: the paper uses [100 s, 1250 s] after launch,
		// a period when all jobs are running. Scale it to the actual
		// run length so short (test-sized) runs still measure steady
		// state: [10%, 90%] of the earliest job finish, capped at the
		// paper's window.
		earliest := res.JCTs[0]
		for _, j := range res.JCTs {
			if j < earliest {
				earliest = j
			}
		}
		wStart, wEnd := 0.1*earliest, 0.9*earliest
		if wStart > 100 {
			wStart = 100
		}
		if wEnd > 1250 {
			wEnd = 1250
		}
		utils, err := sampler.Window(wStart, wEnd)
		if err != nil {
			return nil, err
		}
		res.Utils = utils
		res.UtilWindow = [2]float64{wStart, wEnd}
	}
	return res, nil
}

// RunMany executes runs on the parallel Engine (each run is internally
// single-threaded) and returns results in input order. parallelism <= 0
// uses GOMAXPROCS; 1 runs the legacy sequential path.
func RunMany(rcs []RunConfig, parallelism int) ([]*RunResult, error) {
	return RunManyContext(context.Background(), rcs, parallelism)
}

// RunManyContext is RunMany with cancellation threaded through the
// Engine into every trial: once ctx is done, no new trial starts and
// in-flight simulations stop between events, so a long grid can be
// abandoned mid-sweep (SIGINT in tlsim, drain/deadline in tlsimd).
func RunManyContext(ctx context.Context, rcs []RunConfig, parallelism int) ([]*RunResult, error) {
	results := make([]*RunResult, len(rcs))
	err := Engine{Parallelism: parallelism}.ForEachContext(ctx, len(rcs), func(ctx context.Context, i int) error {
		r, err := RunContext(ctx, rcs[i])
		if err != nil {
			return fmt.Errorf("sweep: run %d (%s): %w", i, rcs[i].Label, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
