package sweep

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
)

// PolicySweepNames are the policies the comparison runs, in table
// order: the paper's baseline and static/rotating assignments, then
// the three telemetry-driven policies from internal/policy.
var PolicySweepNames = []string{
	"FIFO", "TLs-One", "TLs-RR", "TLs-LAS", "TLs-SRSF", "TLs-Interleave",
}

// PolicyRow is one policy's cell of the comparison.
type PolicyRow struct {
	Policy          string
	AvgJCT          float64
	P95JCT          float64
	MaxJCT          float64
	BarrierWaitMean float64
	Reconfigs       int
}

// PolicySweepResult compares every registered scheduling policy on the
// paper's headline scenario: 21 grid-search jobs, all parameter
// servers colocated (placement #1), the strongest contention case. The
// adaptive policies rank with measured telemetry instead of arrival
// order or a blind timer; the experiment quantifies what that buys on
// the JCT tail.
type PolicySweepResult struct {
	Rows []PolicyRow
}

// Row returns the named policy's cell.
func (r *PolicySweepResult) Row(policy string) (PolicyRow, bool) {
	for _, row := range r.Rows {
		if row.Policy == policy {
			return row, true
		}
	}
	return PolicyRow{}, false
}

// BestAdaptive returns the adaptive row with the lowest p95 JCT.
func (r *PolicySweepResult) BestAdaptive() (PolicyRow, bool) {
	var best PolicyRow
	found := false
	for _, name := range []string{"TLs-LAS", "TLs-SRSF", "TLs-Interleave"} {
		row, ok := r.Row(name)
		if !ok {
			continue
		}
		if !found || row.P95JCT < best.P95JCT {
			best, found = row, true
		}
	}
	return best, found
}

// Render prints the comparison table plus the headline delta.
func (r *PolicySweepResult) Render() string {
	t := NewTable("Policy comparison: 21 colocated-PS jobs (placement #1)",
		"policy", "avg JCT (s)", "p95 JCT (s)", "max JCT (s)", "barrier wait (s)", "reconfigs")
	for _, row := range r.Rows {
		t.AddRow(row.Policy, row.AvgJCT, row.P95JCT, row.MaxJCT,
			row.BarrierWaitMean, row.Reconfigs)
	}
	out := t.String()
	if best, ok := r.BestAdaptive(); ok {
		if rr, ok2 := r.Row("TLs-RR"); ok2 && rr.P95JCT > 0 {
			out += fmt.Sprintf("best adaptive (%s) p95 JCT %.4g s vs TLs-RR %.4g s (%.1f%% reduction)\n",
				best.Policy, best.P95JCT, rr.P95JCT, 100*(1-best.P95JCT/rr.P95JCT))
		}
	}
	return out
}

// policyRunConfigs builds one headline run per policy. Rotation and
// telemetry periods scale with the run length the same way the
// collective experiment scales them: the paper's 20 s assumes
// hour-long jobs, while test-sized runs finish in seconds.
func policyRunConfigs(o Options) []RunConfig {
	p1, _ := cluster.PlacementByIndex(1)
	interval := float64(o.Steps) / 200
	var rcs []RunConfig
	for _, name := range PolicySweepNames {
		rcs = append(rcs, RunConfig{
			Label:       "policy-" + name,
			Cluster:     o.Cluster,
			NumJobs:     o.NumJobs,
			LocalBatch:  o.LocalBatch,
			TargetSteps: o.Steps,
			Placement:   p1,
			TLs: core.Config{
				PolicyName:  name,
				IntervalSec: interval,
				// Sample telemetry twice per re-ranking so every Rank
				// call sees fresh attained-service and phase estimates.
				FeedbackIntervalSec: interval / 2,
			},
		})
	}
	return rcs
}

// PolicySweep runs the all-policy comparison on the headline scenario.
func PolicySweep(o Options) (*PolicySweepResult, error) {
	o.fillDefaults()
	rcs := policyRunConfigs(o)
	results, err := RunMany(rcs, o.Parallelism)
	if err != nil {
		return nil, err
	}
	out := &PolicySweepResult{}
	for i, res := range results {
		out.Rows = append(out.Rows, PolicyRow{
			Policy:          PolicySweepNames[i],
			AvgJCT:          metrics.Mean(res.JCTs),
			P95JCT:          metrics.Percentile(res.JCTs, 0.95),
			MaxJCT:          metrics.Max(res.JCTs),
			BarrierWaitMean: metrics.Mean(res.BarrierMeans),
			Reconfigs:       res.Reconfigs,
		})
	}
	return out, nil
}
