package sweep

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dl"
	"repro/internal/faults"
	"repro/internal/metrics"
)

// FaultRecoveryRow compares one policy's fault-free and faulted runs.
type FaultRecoveryRow struct {
	Policy string

	CleanAvgJCT   float64
	FaultedAvgJCT float64
	// Slowdown is FaultedAvgJCT / CleanAvgJCT: how much the fault
	// schedule costs under this policy.
	Slowdown float64

	CleanBarrierMean   float64
	FaultedBarrierMean float64

	// Recovery activity during the faulted run.
	Restarts        int
	DegradedWorkers int
	FailedJobs      int
	Faults          faults.Counts
	Tc              core.RecoveryStats
}

// FaultRecoveryResult is the fault-injection experiment: the same
// workload (placement #1) run fault-free and under a seeded fault
// schedule — PS-host link flaps with tc outages riding along, plus a few
// worker crashes — for FIFO, TLs-One and TLs-RR. It demonstrates that
// every layer's recovery path engages (restarts, tc retry/fallback,
// reconcile repair) and that the reconcile loop restores the priority
// bands after every fault, so TensorLights keeps its advantage over FIFO
// even on a flaky cluster.
type FaultRecoveryResult struct {
	Rows []FaultRecoveryRow
	Plan faults.Plan
}

// Render prints the comparison table plus recovery headlines.
func (r *FaultRecoveryResult) Render() string {
	t := NewTable("Fault recovery: PS-host flaps + tc outages + worker crashes (placement #1)",
		"policy", "clean avg JCT (s)", "faulted avg JCT (s)", "slowdown",
		"restarts", "degraded", "failed jobs", "tc retries", "tc fallbacks", "tc repairs")
	for _, row := range r.Rows {
		t.AddRow(row.Policy, row.CleanAvgJCT, row.FaultedAvgJCT,
			fmt.Sprintf("%.2fx", row.Slowdown), row.Restarts, row.DegradedWorkers,
			row.FailedJobs, row.Tc.Retries, row.Tc.Fallbacks, row.Tc.Repairs)
	}
	out := t.String()
	for _, row := range r.Rows {
		if row.Tc.Fallbacks > 0 {
			out += fmt.Sprintf("%s: reconcile repaired all %d FIFO fallbacks (%d repairs); priority bands restored after every outage\n",
				row.Policy, row.Tc.Fallbacks, row.Tc.Repairs)
		}
	}
	out += fmt.Sprintf("fault schedule: %d link flaps, %d tc outages, %d crashes per faulted run\n",
		r.Rows[0].Faults.LinkFlaps, r.Rows[0].Faults.TCOutages, r.Rows[0].Faults.Crashes)
	return out
}

// faultRecoveryPolicies are the policies the experiment compares.
var faultRecoveryPolicies = []core.Policy{core.PolicyFIFO, core.PolicyOne, core.PolicyRR}

// FaultRecoveryPlan derives the experiment's fault schedule from the
// fault-free FIFO average JCT, so the same relative fault pressure
// applies at any -steps scale: PS hosts flap periodically through 90%
// of the run, each flap takes the host's tc actuation down slightly
// longer than the data path, three jobs each lose a worker once, and
// one long standalone tc outage covers the staggered job-arrival burst
// — so arrival-time reconfigurations exhaust the controller's retry
// budget, it falls back to FIFO, and the reconcile loop must repair the
// host, even under TLs-One (which otherwise only reconfigures on
// arrival and departure). arrivalBurstSec is when the last job arrives.
func FaultRecoveryPlan(cleanFIFOAvgJCT, arrivalBurstSec float64) faults.Plan {
	T := cleanFIFOAvgJCT
	return faults.Plan{
		FlapPSHosts:      true,
		FlapFirstAtSec:   0.10 * T,
		FlapEverySec:     0.25 * T,
		FlapDurationSec:  0.04 * T,
		FlapJitterSec:    0.02 * T,
		TCOutage:         true,
		TCOutageExtraSec: 0.02 * T,
		HorizonSec:       0.90 * T,
		Crashes: []faults.CrashPlan{
			{Job: 0, Worker: 3, AtSec: 0.30 * T},
			{Job: 1, Worker: 7, AtSec: 0.45 * T},
			{Job: 2, Worker: 11, AtSec: 0.60 * T},
		},
		// The outage outlasts the last arrival's whole retry window
		// (retries at +0.01T and +0.03T with the experiment's knobs).
		TCOutages: []faults.OutagePlan{
			{Host: -1, AtSec: 0, DurSec: arrivalBurstSec + 0.05*T},
		},
	}
}

// faultRecoveryRecovery scales the PS failure detector to the run
// length: detection well under one flap period, restart after a short
// backoff, two restarts per worker before degrading.
func faultRecoveryRecovery(cleanFIFOAvgJCT float64) dl.RecoveryConfig {
	T := cleanFIFOAvgJCT
	return dl.RecoveryConfig{
		DetectTimeoutSec:  0.02 * T,
		RestartBackoffSec: 0.01 * T,
		MaxRestarts:       2,
	}
}

// FaultRecovery runs the fault-injection comparison on placement #1.
func FaultRecovery(o Options) (*FaultRecoveryResult, error) {
	o.fillDefaults()
	p1, _ := cluster.PlacementByIndex(1)

	// Phase 1: fault-free baselines (also calibrate the fault schedule).
	var cleanRCs []RunConfig
	for _, pol := range faultRecoveryPolicies {
		rc := o.baseRun(p1, pol)
		rc.Label = fmt.Sprintf("%s-clean", pol)
		cleanRCs = append(cleanRCs, rc)
	}
	clean, err := RunMany(cleanRCs, o.Parallelism)
	if err != nil {
		return nil, err
	}
	T := clean[0].AvgJCT() // FIFO fault-free reference time
	burst := float64(clean[0].Config.NumJobs) * clean[0].Config.StaggerSec
	plan := FaultRecoveryPlan(T, burst)
	recovery := faultRecoveryRecovery(T)

	// Phase 2: the same workload under the seeded fault schedule. The tc
	// retry/reconcile knobs scale with T so repairs land within the run.
	var faultedRCs []RunConfig
	for _, pol := range faultRecoveryPolicies {
		rc := o.baseRun(p1, pol)
		rc.Label = fmt.Sprintf("%s-faulted", pol)
		rc.Faults = plan
		rc.Recovery = recovery
		rc.TLs.MaxExecRetries = 2
		rc.TLs.RetryBackoffSec = 0.01 * T
		rc.TLs.ReconcileIntervalSec = 0.05 * T
		faultedRCs = append(faultedRCs, rc)
	}
	faulted, err := RunMany(faultedRCs, o.Parallelism)
	if err != nil {
		return nil, err
	}

	out := &FaultRecoveryResult{Plan: plan}
	for i, pol := range faultRecoveryPolicies {
		c, f := clean[i], faulted[i]
		out.Rows = append(out.Rows, FaultRecoveryRow{
			Policy:             pol.String(),
			CleanAvgJCT:        c.AvgJCT(),
			FaultedAvgJCT:      f.AvgJCT(),
			Slowdown:           metrics.Ratio(f.AvgJCT(), c.AvgJCT()),
			CleanBarrierMean:   metrics.Mean(c.BarrierMeans),
			FaultedBarrierMean: metrics.Mean(f.BarrierMeans),
			Restarts:           f.Restarts,
			DegradedWorkers:    f.DegradedWorkers,
			FailedJobs:         len(f.FailedJobs),
			Faults:             f.FaultCounts,
			Tc:                 f.TcRecovery,
		})
	}
	return out, nil
}
