package sweep

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
)

// Options scales an experiment. The zero value reproduces the paper's
// full configuration (21 jobs, local batch 4, 30 000 global steps);
// tests and benchmarks pass smaller step counts — the reproduction
// target is the shape of each result, not wall-clock time.
type Options struct {
	Steps       int
	NumJobs     int
	LocalBatch  int
	Seed        int64
	Parallelism int
	Cluster     cluster.Config
}

func (o *Options) fillDefaults() {
	if o.Steps <= 0 {
		o.Steps = 30_000
	}
	if o.NumJobs <= 0 {
		o.NumJobs = 21
	}
	if o.LocalBatch <= 0 {
		o.LocalBatch = 4
	}
	o.Cluster.Seed = o.Seed
}

func (o Options) baseRun(p cluster.Placement, policy core.Policy) RunConfig {
	return RunConfig{
		Label:       fmt.Sprintf("%s-p%d", policy, p.Index),
		Cluster:     o.Cluster,
		NumJobs:     o.NumJobs,
		LocalBatch:  o.LocalBatch,
		TargetSteps: o.Steps,
		Placement:   p,
		TLs:         core.Config{Policy: policy},
	}
}

// --- Figure 2 -------------------------------------------------------

// Figure2Row is one placement's JCT statistics under FIFO.
type Figure2Row struct {
	Placement cluster.Placement
	JCTs      []float64
	Avg       float64
	Min, Max  float64
}

// Figure2Result reproduces Figure 2: job completion time of 21
// concurrent DL jobs under Table I placements, default FIFO scheduling.
type Figure2Result struct {
	Rows []Figure2Row
}

// PerformanceGap returns the paper's metric: the percentage difference
// between the best and worst average JCT across placements (~75%).
func (r *Figure2Result) PerformanceGap() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	best, worst := r.Rows[0].Avg, r.Rows[0].Avg
	for _, row := range r.Rows {
		if row.Avg < best {
			best = row.Avg
		}
		if row.Avg > worst {
			worst = row.Avg
		}
	}
	return 100 * (worst - best) / best
}

// Render prints the figure's data as a table.
func (r *Figure2Result) Render() string {
	t := NewTable("Figure 2: JCT of concurrent DL jobs under various PS placements (FIFO)",
		"placement", "groups", "avg JCT (s)", "min (s)", "max (s)")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("#%d", row.Placement.Index), row.Placement.String(),
			row.Avg, row.Min, row.Max)
	}
	return t.String() + fmt.Sprintf("performance gap (worst vs best avg JCT): %.0f%%\n",
		r.PerformanceGap())
}

// Figure2 runs FIFO across all Table I placements.
func Figure2(o Options) (*Figure2Result, error) {
	o.fillDefaults()
	placements := cluster.Placements21()
	rcs := make([]RunConfig, len(placements))
	for i, p := range placements {
		rcs[i] = o.baseRun(p, core.PolicyFIFO)
	}
	results, err := RunMany(rcs, o.Parallelism)
	if err != nil {
		return nil, err
	}
	out := &Figure2Result{}
	for i, res := range results {
		s := metrics.Summarize(res.JCTs)
		out.Rows = append(out.Rows, Figure2Row{
			Placement: placements[i],
			JCTs:      res.JCTs,
			Avg:       s.Mean,
			Min:       s.Min,
			Max:       s.Max,
		})
	}
	return out, nil
}

// --- Figure 3 -------------------------------------------------------

// WaitDist summarizes a barrier-wait distribution (one CDF in the
// paper's Figure 3/6).
type WaitDist struct {
	Label   string
	Samples []float64
	Summary metrics.Summary
}

// Figure3Result reproduces Figure 3: distributions of per-barrier wait
// time average (a) and variance (b) under placements #1 and #8, FIFO.
type Figure3Result struct {
	MeanP1, MeanP8 WaitDist
	VarP1, VarP8   WaitDist
}

// MeanRatio is the paper's 3.71x: average barrier wait under placement
// #1 over placement #8.
func (r *Figure3Result) MeanRatio() float64 {
	return metrics.Ratio(r.MeanP1.Summary.Mean, r.MeanP8.Summary.Mean)
}

// VarRatio is the paper's 4.37x: wait variance under #1 over #8.
func (r *Figure3Result) VarRatio() float64 {
	return metrics.Ratio(r.VarP1.Summary.Mean, r.VarP8.Summary.Mean)
}

// Render prints distribution summaries and the headline ratios.
func (r *Figure3Result) Render() string {
	t := NewTable("Figure 3: barrier wait time under placements #1 and #8 (FIFO)",
		"series", "n", "mean", "median", "p90", "max")
	for _, d := range []WaitDist{r.MeanP1, r.MeanP8, r.VarP1, r.VarP8} {
		t.AddRow(d.Label, d.Summary.Count, d.Summary.Mean, d.Summary.Median,
			d.Summary.P90, d.Summary.Max)
	}
	return t.String() + fmt.Sprintf(
		"avg wait ratio #1/#8: %.2fx (paper: 3.71x)\nvariance ratio #1/#8: %.2fx (paper: 4.37x)\n",
		r.MeanRatio(), r.VarRatio())
}

// Figure3 runs FIFO on placements #1 and #8 and collects wait stats.
func Figure3(o Options) (*Figure3Result, error) {
	o.fillDefaults()
	p1, _ := cluster.PlacementByIndex(1)
	p8, _ := cluster.PlacementByIndex(8)
	results, err := RunMany([]RunConfig{
		o.baseRun(p1, core.PolicyFIFO),
		o.baseRun(p8, core.PolicyFIFO),
	}, o.Parallelism)
	if err != nil {
		return nil, err
	}
	mk := func(label string, samples []float64) WaitDist {
		return WaitDist{Label: label, Samples: samples, Summary: metrics.Summarize(samples)}
	}
	return &Figure3Result{
		MeanP1: mk("avg wait, placement #1", results[0].BarrierMeans),
		MeanP8: mk("avg wait, placement #8", results[1].BarrierMeans),
		VarP1:  mk("wait variance, placement #1", results[0].BarrierVars),
		VarP8:  mk("wait variance, placement #8", results[1].BarrierVars),
	}, nil
}

// --- Figure 5a ------------------------------------------------------

// Figure5aRow holds one placement's normalized average JCT per policy.
type Figure5aRow struct {
	Placement cluster.Placement
	FIFOAvg   float64
	// NormOne and NormRR are average per-job JCTs normalized over the
	// same job's JCT under FIFO (the paper's normalization).
	NormOne float64
	NormRR  float64
}

// Figure5aResult reproduces Figure 5a: normalized JCT for TLs-One and
// TLs-RR across placements, local batch 4.
type Figure5aResult struct {
	Rows []Figure5aRow
}

// BestImprovement returns the largest percentage JCT reduction for a
// policy across placements (paper: 27% One, 16% RR).
func (r *Figure5aResult) BestImprovement() (one, rr float64) {
	for _, row := range r.Rows {
		if imp := 100 * (1 - row.NormOne); imp > one {
			one = imp
		}
		if imp := 100 * (1 - row.NormRR); imp > rr {
			rr = imp
		}
	}
	return one, rr
}

// Render prints the normalized JCT table.
func (r *Figure5aResult) Render() string {
	t := NewTable("Figure 5a: normalized JCT vs placement (local batch 4; lower is better)",
		"placement", "FIFO avg JCT (s)", "TLs-One (norm)", "TLs-RR (norm)")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("#%d", row.Placement.Index), row.FIFOAvg, row.NormOne, row.NormRR)
	}
	one, rr := r.BestImprovement()
	return t.String() + fmt.Sprintf(
		"best improvement: TLs-One %.0f%% (paper: up to 27%%), TLs-RR %.0f%% (paper: up to 16%%)\n",
		one, rr)
}

// normalizeJCT averages per-job JCT ratios versus the FIFO baseline.
func normalizeJCT(policy, fifo []float64) float64 {
	normed, err := metrics.NormalizeBy(policy, fifo)
	if err != nil {
		return 0
	}
	return metrics.Mean(normed)
}

// Figure5a runs all three policies across all placements.
func Figure5a(o Options) (*Figure5aResult, error) {
	o.fillDefaults()
	placements := cluster.Placements21()
	var rcs []RunConfig
	for _, p := range placements {
		rcs = append(rcs,
			o.baseRun(p, core.PolicyFIFO),
			o.baseRun(p, core.PolicyOne),
			o.baseRun(p, core.PolicyRR))
	}
	results, err := RunMany(rcs, o.Parallelism)
	if err != nil {
		return nil, err
	}
	out := &Figure5aResult{}
	for i, p := range placements {
		fifo := results[3*i].JCTs
		out.Rows = append(out.Rows, Figure5aRow{
			Placement: p,
			FIFOAvg:   metrics.Mean(fifo),
			NormOne:   normalizeJCT(results[3*i+1].JCTs, fifo),
			NormRR:    normalizeJCT(results[3*i+2].JCTs, fifo),
		})
	}
	return out, nil
}

// --- Figure 5b ------------------------------------------------------

// Figure5bRow holds one local batch size's normalized JCTs, placement #1.
type Figure5bRow struct {
	LocalBatch int
	FIFOAvg    float64
	NormOne    float64
	NormRR     float64
}

// Figure5bResult reproduces Figure 5b: normalized JCT versus local
// batch size under placement #1 — smaller batches mean more frequent
// updates and heavier traffic contention.
type Figure5bResult struct {
	Rows []Figure5bRow
}

// BestImprovement returns the largest percentage reductions (paper: 31%
// One / 17% RR at the smallest batch).
func (r *Figure5bResult) BestImprovement() (one, rr float64) {
	for _, row := range r.Rows {
		if imp := 100 * (1 - row.NormOne); imp > one {
			one = imp
		}
		if imp := 100 * (1 - row.NormRR); imp > rr {
			rr = imp
		}
	}
	return one, rr
}

// Render prints the batch-size sweep.
func (r *Figure5bResult) Render() string {
	t := NewTable("Figure 5b: normalized JCT vs local batch size (placement #1; lower is better)",
		"local batch", "FIFO avg JCT (s)", "TLs-One (norm)", "TLs-RR (norm)")
	for _, row := range r.Rows {
		t.AddRow(row.LocalBatch, row.FIFOAvg, row.NormOne, row.NormRR)
	}
	one, rr := r.BestImprovement()
	return t.String() + fmt.Sprintf(
		"best improvement: TLs-One %.0f%% (paper: up to 31%%), TLs-RR %.0f%% (paper: up to 17%%)\n",
		one, rr)
}

// Figure5bBatches is the default batch-size sweep.
var Figure5bBatches = []int{1, 2, 4, 8, 16}

// Figure5b sweeps local batch sizes on placement #1.
func Figure5b(o Options) (*Figure5bResult, error) {
	o.fillDefaults()
	p1, _ := cluster.PlacementByIndex(1)
	var rcs []RunConfig
	for _, b := range Figure5bBatches {
		for _, pol := range []core.Policy{core.PolicyFIFO, core.PolicyOne, core.PolicyRR} {
			rc := o.baseRun(p1, pol)
			rc.LocalBatch = b
			rc.Label = fmt.Sprintf("%s-batch%d", pol, b)
			rcs = append(rcs, rc)
		}
	}
	results, err := RunMany(rcs, o.Parallelism)
	if err != nil {
		return nil, err
	}
	out := &Figure5bResult{}
	for i, b := range Figure5bBatches {
		fifo := results[3*i].JCTs
		out.Rows = append(out.Rows, Figure5bRow{
			LocalBatch: b,
			FIFOAvg:    metrics.Mean(fifo),
			NormOne:    normalizeJCT(results[3*i+1].JCTs, fifo),
			NormRR:     normalizeJCT(results[3*i+2].JCTs, fifo),
		})
	}
	return out, nil
}

// --- Figure 6 -------------------------------------------------------

// Figure6Result reproduces Figure 6: barrier-wait average and variance
// distributions under placement #1 for FIFO, TLs-One and TLs-RR.
type Figure6Result struct {
	Means map[string]WaitDist // keyed by policy name
	Vars  map[string]WaitDist
}

// VarReduction returns mean and median variance reduction of a policy
// versus FIFO in percent (paper: One 26/40, RR 15/30).
func (r *Figure6Result) VarReduction(policy string) (mean, median float64) {
	f := r.Vars["FIFO"].Summary
	p := r.Vars[policy].Summary
	return 100 * (1 - metrics.Ratio(p.Mean, f.Mean)),
		100 * (1 - metrics.Ratio(p.Median, f.Median))
}

// Render prints the distribution table plus reduction headlines.
func (r *Figure6Result) Render() string {
	t := NewTable("Figure 6: barrier wait time under placement #1 by scheduling policy",
		"series", "n", "mean", "median", "p90", "max")
	for _, pol := range []string{"FIFO", "TLs-One", "TLs-RR"} {
		d := r.Means[pol]
		t.AddRow("avg wait, "+pol, d.Summary.Count, d.Summary.Mean, d.Summary.Median,
			d.Summary.P90, d.Summary.Max)
	}
	for _, pol := range []string{"FIFO", "TLs-One", "TLs-RR"} {
		d := r.Vars[pol]
		t.AddRow("wait variance, "+pol, d.Summary.Count, d.Summary.Mean, d.Summary.Median,
			d.Summary.P90, d.Summary.Max)
	}
	var b strings.Builder
	b.WriteString(t.String())
	om, omed := r.VarReduction("TLs-One")
	rm, rmed := r.VarReduction("TLs-RR")
	fmt.Fprintf(&b, "variance reduction vs FIFO: TLs-One mean %.0f%%/median %.0f%% (paper: 26%%/40%%), TLs-RR mean %.0f%%/median %.0f%% (paper: 15%%/30%%)\n",
		om, omed, rm, rmed)
	return b.String()
}

// Figure6 runs the three policies on placement #1.
func Figure6(o Options) (*Figure6Result, error) {
	o.fillDefaults()
	p1, _ := cluster.PlacementByIndex(1)
	policies := []core.Policy{core.PolicyFIFO, core.PolicyOne, core.PolicyRR}
	var rcs []RunConfig
	for _, pol := range policies {
		rcs = append(rcs, o.baseRun(p1, pol))
	}
	results, err := RunMany(rcs, o.Parallelism)
	if err != nil {
		return nil, err
	}
	out := &Figure6Result{Means: map[string]WaitDist{}, Vars: map[string]WaitDist{}}
	for i, pol := range policies {
		name := pol.String()
		out.Means[name] = WaitDist{
			Label:   "avg wait " + name,
			Samples: results[i].BarrierMeans,
			Summary: metrics.Summarize(results[i].BarrierMeans),
		}
		out.Vars[name] = WaitDist{
			Label:   "wait variance " + name,
			Samples: results[i].BarrierVars,
			Summary: metrics.Summarize(results[i].BarrierVars),
		}
	}
	return out, nil
}

// --- Table II -------------------------------------------------------

// TableIIRow is one (resource, host type) normalized utilization pair.
type TableIIRow struct {
	Resource string
	HostType string
	One      float64 // normalized over FIFO
	RR       float64
}

// TableIIResult reproduces Table II: normalized CPU and NIC utilization
// during the active window under placement #1. Values are utilization
// under a TensorLights policy divided by utilization under FIFO; larger
// is better.
type TableIIResult struct {
	Rows   []TableIIRow
	Window [2]float64
}

// Render prints the table.
func (r *TableIIResult) Render() string {
	t := NewTable(fmt.Sprintf("Table II: normalized utilization, placement #1 (active window %.0f-%.0f s)",
		r.Window[0], r.Window[1]),
		"resource", "host type", "TLs-One", "TLs-RR")
	for _, row := range r.Rows {
		t.AddRow(row.Resource, row.HostType, fmt.Sprintf("%.2fx", row.One),
			fmt.Sprintf("%.2fx", row.RR))
	}
	return t.String()
}

// TableII measures utilization for FIFO, TLs-One and TLs-RR on
// placement #1 and normalizes by FIFO.
func TableII(o Options) (*TableIIResult, error) {
	o.fillDefaults()
	p1, _ := cluster.PlacementByIndex(1)
	policies := []core.Policy{core.PolicyFIFO, core.PolicyOne, core.PolicyRR}
	var rcs []RunConfig
	for _, pol := range policies {
		rc := o.baseRun(p1, pol)
		rc.SampleUtilEvery = 1
		rcs = append(rcs, rc)
	}
	results, err := RunMany(rcs, o.Parallelism)
	if err != nil {
		return nil, err
	}
	fifo, one, rr := results[0], results[1], results[2]
	psHosts := fifo.PSHosts
	var workerHosts, allHosts []int
	for h := 0; h < len(fifo.Utils); h++ {
		allHosts = append(allHosts, h)
		isPS := false
		for _, p := range psHosts {
			if p == h {
				isPS = true
			}
		}
		if !isPS {
			workerHosts = append(workerHosts, h)
		}
	}
	norm := func(res *RunResult, hosts []int, get func(metrics.HostUtil) float64) float64 {
		return metrics.Ratio(
			get(metrics.AverageUtil(res.Utils, hosts)),
			get(metrics.AverageUtil(fifo.Utils, hosts)))
	}
	cpu := func(u metrics.HostUtil) float64 { return u.CPU }
	in := func(u metrics.HostUtil) float64 { return u.NetIn }
	outF := func(u metrics.HostUtil) float64 { return u.NetOut }
	out := &TableIIResult{Window: fifo.UtilWindow}
	out.Rows = []TableIIRow{
		{"CPU", "PS", norm(one, psHosts, cpu), norm(rr, psHosts, cpu)},
		{"CPU", "Worker", norm(one, workerHosts, cpu), norm(rr, workerHosts, cpu)},
		{"Network Inbound", "All", norm(one, allHosts, in), norm(rr, allHosts, in)},
		{"Network Outbound", "All", norm(one, allHosts, outF), norm(rr, allHosts, outF)},
	}
	return out, nil
}
