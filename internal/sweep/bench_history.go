package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// BenchRun is one dated benchmark snapshot in the BENCH_sweep.json
// history. GitSHA and Date identify when the snapshot was taken; both
// are best-effort (empty for runs migrated from the legacy
// single-report format or taken outside a git checkout).
type BenchRun struct {
	GitSHA string       `json:"git_sha,omitempty"`
	Date   string       `json:"date,omitempty"` // YYYY-MM-DD, UTC
	Report *BenchReport `json:"report"`
}

// BenchHistory is the append-only run log persisted to
// BENCH_sweep.json, newest run last. Keeping every run in one file
// gives performance work a trajectory: each bench invocation appends
// and diffs itself against the previous entry.
type BenchHistory struct {
	Runs []BenchRun `json:"runs"`
}

// LoadBenchHistory parses a BENCH_sweep.json payload. Both layouts are
// accepted: the current {"runs": [...]} history, and the legacy file
// that held a single bare BenchReport object, which is migrated to a
// one-entry history with no sha/date. Empty input yields an empty
// history.
func LoadBenchHistory(r io.Reader) (*BenchHistory, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("sweep: bench history: %w", err)
	}
	if len(bytes.TrimSpace(data)) == 0 {
		return &BenchHistory{}, nil
	}
	var h BenchHistory
	if err := json.Unmarshal(data, &h); err == nil && h.Runs != nil {
		return &h, nil
	}
	var legacy BenchReport
	if err := json.Unmarshal(data, &legacy); err != nil {
		return nil, fmt.Errorf("sweep: bench history: unrecognized JSON: %w", err)
	}
	if legacy.Trials == 0 && legacy.Events == 0 {
		// An object that is neither a history nor a plausible report
		// (e.g. {}): start fresh rather than carry a zero entry.
		return &BenchHistory{}, nil
	}
	return &BenchHistory{Runs: []BenchRun{{Report: &legacy}}}, nil
}

// Append adds a run to the end of the history.
func (h *BenchHistory) Append(run BenchRun) {
	h.Runs = append(h.Runs, run)
}

// Last returns the newest run, or nil for an empty history.
func (h *BenchHistory) Last() *BenchRun {
	if len(h.Runs) == 0 {
		return nil
	}
	return &h.Runs[len(h.Runs)-1]
}

// Regressions compares the newest run against the one before it and
// reports every metric that moved the wrong way by more than tol (a
// fraction: 0.25 flags a >25% move). Throughput regresses by falling;
// per-event and per-chunk costs regress by rising. When the two runs
// used different sizing (steps/trials/parallelism), wall-clock
// throughput is not comparable and only the per-unit kernel and fabric
// costs are checked.
func (h *BenchHistory) Regressions(tol float64) []string {
	if len(h.Runs) < 2 {
		return nil
	}
	was, now := h.Runs[len(h.Runs)-2].Report, h.Runs[len(h.Runs)-1].Report
	if was == nil || now == nil {
		return nil
	}
	var out []string
	costRose := func(name string, old, cur float64) {
		if old > 0 && cur > old*(1+tol) {
			out = append(out, fmt.Sprintf("%s rose %.0f%% (%.2f -> %.2f)",
				name, 100*(cur/old-1), old, cur))
		}
	}
	rateFell := func(name string, old, cur float64) {
		if old > 0 && cur < old*(1-tol) {
			out = append(out, fmt.Sprintf("%s fell %.0f%% (%.2f -> %.2f)",
				name, 100*(1-cur/old), old, cur))
		}
	}
	sameShape := was.Steps == now.Steps && was.Trials == now.Trials &&
		was.Parallelism == now.Parallelism
	if sameShape {
		rateFell("trials/sec (sequential)", was.TrialsPerSecSequential, now.TrialsPerSecSequential)
		rateFell("trials/sec (parallel)", was.TrialsPerSecParallel, now.TrialsPerSecParallel)
	}
	costRose("ns/event", was.NsPerEvent, now.NsPerEvent)
	costRose("allocs/event", was.AllocsPerEvent, now.AllocsPerEvent)
	costRose("fabric ns/chunk", was.FabricNsPerChunk, now.FabricNsPerChunk)
	// The flow-vs-chunk speedup is a wall-clock ratio on a fixed
	// workload, so it is shape-independent; scenarios are matched by
	// name so adding or reordering scenarios never mispairs runs.
	for _, cur := range now.FlowVsChunk {
		for _, old := range was.FlowVsChunk {
			if old.Scenario == cur.Scenario {
				rateFell(fmt.Sprintf("flow-vs-chunk speedup (%s)", cur.Scenario),
					old.Speedup, cur.Speedup)
			}
		}
	}
	return out
}

// WriteJSON writes the history as indented JSON.
func (h *BenchHistory) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(h)
}
