package sweep

import (
	"fmt"
	"strings"
)

// Table renders aligned ASCII tables for experiment output.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values format with %v, floats with %.4g.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	ncols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i := 0; i < ncols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, ncols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
