package sweep

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dl"
	"repro/internal/faults"
)

// faultyRunConfig is a small fully-colocated workload (3 jobs, PS on
// host 0, 4 workers each) with a fault plan spanning the run.
func faultyRunConfig(seed int64) RunConfig {
	return RunConfig{
		Label:       "faulty",
		Cluster:     cluster.Config{Hosts: 5, Seed: seed},
		NumJobs:     3,
		TargetSteps: 200,
		Placement:   cluster.Placement{Groups: []int{3}},
		TLs: core.Config{
			Policy:               core.PolicyRR,
			IntervalSec:          1,
			MaxExecRetries:       2,
			RetryBackoffSec:      0.05,
			ReconcileIntervalSec: 0.5,
		},
		Faults: faults.Plan{
			FlapPSHosts:     true,
			FlapFirstAtSec:  1,
			FlapEverySec:    3,
			FlapDurationSec: 0.4,
			FlapJitterSec:   0.2,
			DropProb:        0.1,
			TCOutage:        true,
			// Outage outlives the flap by 0.8 s, longer than the 1 s RR
			// rotation period, so every outage eats at least one rotation's
			// tc commands.
			TCOutageExtraSec: 0.8,
			HorizonSec:       10,
			Crashes:          []faults.CrashPlan{{Job: 1, Worker: 2, AtSec: 2}},
		},
		Recovery: dl.RecoveryConfig{
			DetectTimeoutSec:  0.1,
			RestartBackoffSec: 0.05,
			MaxRestarts:       2,
		},
	}
}

// runFingerprint flattens everything fault-relevant about a result into
// one comparable string, with floats in full-precision hex.
func runFingerprint(r *RunResult) string {
	return fmt.Sprintf("jcts=%x events=%d faults=%+v tc=%+v dropped=%d restarts=%d degraded=%d failed=%v",
		r.JCTs, r.Events, r.FaultCounts, r.TcRecovery, r.DroppedChunks,
		r.Restarts, r.DegradedWorkers, r.FailedJobs)
}

func TestRunWithFaultsRecordsRecovery(t *testing.T) {
	res, err := Run(faultyRunConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JCTs) != 3 || len(res.FailedJobs) != 0 {
		t.Fatalf("jobs did not all complete: %d JCTs, failed %v", len(res.JCTs), res.FailedJobs)
	}
	if res.FaultCounts.LinkFlaps == 0 || res.FaultCounts.DropWindows == 0 ||
		res.FaultCounts.TCOutages == 0 || res.FaultCounts.Crashes != 1 {
		t.Fatalf("fault schedule did not fire: %+v", res.FaultCounts)
	}
	if res.Restarts != 1 {
		t.Fatalf("crashed worker restarted %d times, want 1", res.Restarts)
	}
	if res.DroppedChunks == 0 {
		t.Fatal("drop windows lost no chunks")
	}
	if res.TcRecovery.Retries == 0 {
		t.Fatalf("tc outages triggered no retries: %+v", res.TcRecovery)
	}
	// Same-seed reproducibility across the whole fault/recovery surface
	// — the determinism regression for the quickstart-with-faults path.
	again, err := Run(faultyRunConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := runFingerprint(res), runFingerprint(again); a != b {
		t.Fatalf("same seed diverged:\n  %s\n  %s", a, b)
	}
	// A different seed must shift the jittered fault schedule.
	other, err := Run(faultyRunConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	if runFingerprint(res) == runFingerprint(other) {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestRunToleratesFullyFailedJob(t *testing.T) {
	rc := faultyRunConfig(3)
	// Exhaust job 1: no restart budget, crash every one of its 4 workers.
	rc.Recovery.MaxRestarts = 0
	rc.Faults.Crashes = nil
	for w := 0; w < 4; w++ {
		rc.Faults.Crashes = append(rc.Faults.Crashes,
			faults.CrashPlan{Job: 1, Worker: w, AtSec: 1})
	}
	res, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FailedJobs) != 1 || res.FailedJobs[0] != 1 {
		t.Fatalf("failed jobs %v, want [1]", res.FailedJobs)
	}
	if len(res.JCTs) != 2 {
		t.Fatalf("survivors %d, want 2", len(res.JCTs))
	}
	if res.DegradedWorkers != 4 {
		t.Fatalf("degraded workers %d, want 4", res.DegradedWorkers)
	}
}

func TestRunRejectsInvalidFaultPlan(t *testing.T) {
	rc := faultyRunConfig(1)
	rc.Faults.HorizonSec = 0 // flapping without a horizon
	if _, err := Run(rc); err == nil {
		t.Fatal("invalid fault plan accepted")
	}
}

func TestFaultRecoveryExperiment(t *testing.T) {
	r, err := FaultRecovery(Options{Steps: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows %d, want 3", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.FaultedAvgJCT <= row.CleanAvgJCT {
			t.Errorf("%s: faults did not slow the run (%.1f vs %.1f)",
				row.Policy, row.FaultedAvgJCT, row.CleanAvgJCT)
		}
		if row.Faults.LinkFlaps == 0 || row.Faults.TCOutages == 0 {
			t.Errorf("%s: fault schedule did not fire: %+v", row.Policy, row.Faults)
		}
		if row.Faults.Crashes == 0 || row.Restarts == 0 {
			t.Errorf("%s: crash/restart path idle: crashes %d restarts %d",
				row.Policy, row.Faults.Crashes, row.Restarts)
		}
		if row.FailedJobs != 0 {
			t.Errorf("%s: %d jobs failed outright", row.Policy, row.FailedJobs)
		}
	}
	// FIFO installs no qdiscs, so its tc recovery must stay idle; the
	// TLs policies must exercise retry and reconcile-repair.
	if fifo := r.Rows[0]; fifo.Tc != (core.RecoveryStats{}) {
		t.Errorf("FIFO run exercised tc recovery: %+v", fifo.Tc)
	}
	for _, row := range r.Rows[1:] {
		if row.Tc.Retries == 0 {
			t.Errorf("%s: tc outages triggered no retries", row.Policy)
		}
		if row.Tc.Repairs == 0 {
			t.Errorf("%s: reconcile repaired nothing after outages", row.Policy)
		}
	}
	out := r.Render()
	if len(out) == 0 {
		t.Fatal("empty render")
	}
}

func TestFaultRecoveryDeterministic(t *testing.T) {
	o := Options{Steps: 200, Seed: 9, Parallelism: 3}
	a, err := FaultRecovery(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultRecovery(o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("same seed rendered differently:\n%s\nvs\n%s", a.Render(), b.Render())
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d diverged: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}
