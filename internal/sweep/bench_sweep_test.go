package sweep

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// benchTrialConfigs builds n small placement-#1 FIFO trials on
// consecutive seeds — the replicate sweep's trial shape at test scale.
func benchTrialConfigs(n, steps int) []RunConfig {
	o := Options{Steps: steps, Seed: 1}
	o.fillDefaults()
	p1, _ := cluster.PlacementByIndex(1)
	rcs := make([]RunConfig, n)
	for i := range rcs {
		rc := o.baseRun(p1, core.PolicyFIFO)
		rc.Cluster.Seed = int64(1 + i)
		rc.Label = fmt.Sprintf("bench-seed%d", rc.Cluster.Seed)
		rcs[i] = rc
	}
	return rcs
}

// BenchmarkTrial measures one full simulation trial (the unit the
// Engine fans out) and reports kernel events/sec.
func BenchmarkTrial(b *testing.B) {
	rcs := benchTrialConfigs(1, 300)
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(rcs[0])
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkFabricChunk measures the routed simnet hot path — chunks
// served through a contended, oversubscribed leaf-spine core link (the
// scenario measureFabricBench records into BENCH_sweep.json).
func BenchmarkFabricChunk(b *testing.B) {
	b.ReportAllocs()
	var chunks uint64
	for i := 0; i < b.N; i++ {
		n, _ := measureFabricBench(1)
		chunks += n
	}
	b.ReportMetric(float64(chunks)/b.Elapsed().Seconds(), "chunks/sec")
}

// TestFabricChunkPooledAllocs pins the chunk fabric's steady-state
// allocation behavior: once a warm-up burst has primed the chunk free
// list and the kernel's event pool, pushing further bursts through the
// same fabric must not allocate per chunk.
func TestFabricChunkPooledAllocs(t *testing.T) {
	const flowBytes = int64(32 << 20)
	k := sim.NewKernel()
	f := simnet.New(k, sim.NewRNG(1), simnet.Config{})
	f.AddHost("src")
	f.AddHost("dst")
	send := func() {
		f.Send(simnet.FlowSpec{Src: 0, Dst: 1, SrcPort: 1, DstPort: 100, Bytes: flowBytes})
		k.Run(nil)
	}
	send() // warm-up: grows the pools to the burst's working set
	chunks := float64((flowBytes + f.Config().ChunkBytes - 1) / f.Config().ChunkBytes)
	perChunk := testing.AllocsPerRun(3, send) / chunks
	if perChunk > 0.1 {
		t.Errorf("steady-state fabric allocates %.3f allocs/chunk, want ~0 (pooled)", perChunk)
	}
}

// BenchmarkSweepSequential runs a 4-trial grid through the legacy
// sequential path.
func BenchmarkSweepSequential(b *testing.B) {
	rcs := benchTrialConfigs(4, 300)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunMany(rcs, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepParallel runs the same grid on the parallel Engine at
// parallelism 4. The ratio to BenchmarkSweepSequential is the Engine's
// speedup on this machine (bounded by GOMAXPROCS).
func BenchmarkSweepParallel(b *testing.B) {
	rcs := benchTrialConfigs(4, 300)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunMany(rcs, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedTrial measures one sharded-engine trial (the
// shard-scale workload at 4 parallel shards) and reports kernel
// events/sec across all shards — the microbench counterpart of the
// shard_scale entries in BENCH_sweep.json.
func BenchmarkShardedTrial(b *testing.B) {
	rc := shardScaleRun(1, 100)
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := RunSharded(rc, ShardOptions{Shards: 4, PlacementShards: 16, Parallel: true})
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}
