package sweep

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
)

// testSteps keeps integration runs fast; shapes hold at this scale.
const testSteps = 600

func testOptions() Options {
	return Options{Steps: testSteps, Seed: 42}
}

func TestRunSingle(t *testing.T) {
	p, _ := cluster.PlacementByIndex(8)
	res, err := Run(RunConfig{
		Placement:   p,
		TargetSteps: testSteps,
		TLs:         core.Config{Policy: core.PolicyFIFO},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JCTs) != 21 {
		t.Fatalf("JCTs %d", len(res.JCTs))
	}
	if res.AvgJCT() <= 0 || res.SimTime <= 0 || res.Events == 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	// 600 steps / 20 workers = 30 iterations -> ~29 barrier samples per
	// job, 21 jobs.
	if len(res.BarrierMeans) < 21*25 {
		t.Fatalf("barrier samples %d", len(res.BarrierMeans))
	}
	if res.Reconfigs != 0 {
		t.Fatal("FIFO run reconfigured tc")
	}
}

func TestRunDeterministic(t *testing.T) {
	p, _ := cluster.PlacementByIndex(1)
	rc := RunConfig{
		Placement:   p,
		TargetSteps: 300,
		TLs:         core.Config{Policy: core.PolicyOne},
		Cluster:     cluster.Config{Seed: 7},
	}
	a, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.JCTs {
		if a.JCTs[i] != b.JCTs[i] {
			t.Fatal("same config+seed produced different JCTs")
		}
	}
	if a.Events != b.Events {
		t.Fatal("event counts differ")
	}
}

func TestRunManyPreservesOrder(t *testing.T) {
	p1, _ := cluster.PlacementByIndex(1)
	p8, _ := cluster.PlacementByIndex(8)
	rcs := []RunConfig{
		{Label: "a", Placement: p1, TargetSteps: 300},
		{Label: "b", Placement: p8, TargetSteps: 300},
		{Label: "c", Placement: p1, TargetSteps: 300, TLs: core.Config{Policy: core.PolicyOne}},
	}
	results, err := RunMany(rcs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Config.Label != rcs[i].Label {
			t.Fatal("result order scrambled")
		}
	}
	// Parallel run equals serial run.
	serial, err := RunMany(rcs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if results[i].AvgJCT() != serial[i].AvgJCT() {
			t.Fatal("parallel execution changed results")
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	r, err := Figure2(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	// The colocated placement must be the worst, the uniform placement
	// near the best, and the gap substantial (paper: 75%).
	if r.Rows[0].Avg <= r.Rows[7].Avg {
		t.Fatalf("placement #1 (%.1f) not worse than #8 (%.1f)", r.Rows[0].Avg, r.Rows[7].Avg)
	}
	if gap := r.PerformanceGap(); gap < 25 {
		t.Fatalf("performance gap %.0f%%, want substantial", gap)
	}
	out := r.Render()
	if !strings.Contains(out, "#8") || !strings.Contains(out, "performance gap") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFigure3Shape(t *testing.T) {
	r, err := Figure3(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanRatio() < 1.5 {
		t.Fatalf("wait mean ratio %.2f, placement #1 must wait much longer", r.MeanRatio())
	}
	if r.VarRatio() < 1.5 {
		t.Fatalf("wait variance ratio %.2f, placement #1 must straggle more", r.VarRatio())
	}
	if !strings.Contains(r.Render(), "3.71x") {
		t.Fatal("render must cite the paper targets")
	}
}

func TestFigure5aShape(t *testing.T) {
	r, err := Figure5a(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	// At the contended placement TensorLights must clearly win.
	if r.Rows[0].NormOne > 0.9 {
		t.Fatalf("TLs-One norm %.2f at placement #1, want < 0.9", r.Rows[0].NormOne)
	}
	if r.Rows[0].NormRR > 0.95 {
		t.Fatalf("TLs-RR norm %.2f at placement #1", r.Rows[0].NormRR)
	}
	// At the uniform placement it must be work-conserving: within 5%.
	last := r.Rows[7]
	if last.NormOne < 0.95 || last.NormOne > 1.05 {
		t.Fatalf("TLs-One not neutral at #8: %.3f", last.NormOne)
	}
	one, rr := r.BestImprovement()
	if one <= 0 || rr <= 0 {
		t.Fatalf("improvements %f %f", one, rr)
	}
}

func TestFigure5bShape(t *testing.T) {
	r, err := Figure5b(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(Figure5bBatches) {
		t.Fatalf("rows %d", len(r.Rows))
	}
	// FIFO JCT grows with batch size (more compute per step).
	if r.Rows[0].FIFOAvg >= r.Rows[len(r.Rows)-1].FIFOAvg {
		t.Fatal("JCT must grow with local batch size")
	}
	// TensorLights helps more at the smallest batch (heaviest
	// contention) than at the largest.
	smallImp := 1 - r.Rows[0].NormOne
	bigImp := 1 - r.Rows[len(r.Rows)-1].NormOne
	if smallImp <= bigImp {
		t.Fatalf("improvement not larger under heavier contention: %.2f vs %.2f",
			smallImp, bigImp)
	}
}

func TestFigure6Shape(t *testing.T) {
	r, err := Figure6(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []string{"FIFO", "TLs-One", "TLs-RR"} {
		if r.Means[pol].Summary.Count == 0 {
			t.Fatalf("no samples for %s", pol)
		}
	}
	mean, median := r.VarReduction("TLs-One")
	if mean <= 0 || median <= 0 {
		t.Fatalf("TLs-One variance reduction %f/%f, want positive", mean, median)
	}
	// The span of average wait grows under TensorLights (high-priority
	// jobs wait less, low-priority more) — paper's Figure 6a remark.
	if r.Means["TLs-One"].Summary.Max <= r.Means["FIFO"].Summary.Max*0.5 {
		t.Fatal("TLs-One wait span unexpectedly collapsed")
	}
}

func TestTableIIShape(t *testing.T) {
	r, err := TableII(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Fewer stragglers -> utilization must not drop.
		if row.One < 0.95 || row.RR < 0.95 {
			t.Fatalf("utilization regressed: %+v", row)
		}
	}
	if !strings.Contains(r.Render(), "Network Inbound") {
		t.Fatal("render")
	}
}

func TestTableHelper(t *testing.T) {
	tb := NewTable("T", "a", "bb")
	tb.AddRow(1, 2.5)
	tb.AddRow("x", "y")
	if tb.Rows() != 2 {
		t.Fatal("rows")
	}
	out := tb.String()
	for _, want := range []string{"T", "a", "bb", "2.5", "x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunUtilizationSampling(t *testing.T) {
	p, _ := cluster.PlacementByIndex(1)
	res, err := Run(RunConfig{
		Placement:       p,
		TargetSteps:     300,
		SampleUtilEvery: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Utils) != 21 {
		t.Fatalf("utils %d", len(res.Utils))
	}
	if res.UtilWindow[1] <= res.UtilWindow[0] {
		t.Fatalf("window %v", res.UtilWindow)
	}
	// Host 0 (the PS host) must show heavy egress traffic.
	if res.Utils[0].NetOut < 0.1 {
		t.Fatalf("PS host egress util %v", res.Utils[0].NetOut)
	}
	// Normalization guards against accounting bugs: nothing exceeds
	// 100% of capacity.
	for _, u := range res.Utils {
		if u.CPU > 1.001 || u.NetIn > 1.001 || u.NetOut > 1.001 {
			t.Fatalf("utilization above capacity: %+v", u)
		}
	}
}

func TestAverageJCTAggregation(t *testing.T) {
	res := &RunResult{JCTs: []float64{1, 2, 3}}
	if res.AvgJCT() != metrics.Mean(res.JCTs) {
		t.Fatal("AvgJCT")
	}
}

func TestWriteCSVExports(t *testing.T) {
	o := Options{Steps: 300, Seed: 42}
	f3, err := Figure3(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := f3.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 100 {
		t.Fatalf("csv lines %d", len(lines))
	}
	if lines[0] != "series,x,p" {
		t.Fatalf("header %q", lines[0])
	}
	// Every data row must have exactly 3 fields (labels sanitized).
	for _, line := range lines[1:5] {
		if strings.Count(line, ",") != 2 {
			t.Fatalf("row %q has wrong field count", line)
		}
	}
	t2, err := TableII(o)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := t2.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Network Inbound,All") {
		t.Fatalf("table2 csv:\n%s", buf.String())
	}
}
