package sweep

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dl"
	"repro/internal/faults"
)

// TestPolicySweepAdaptiveBeatsRR pins the headline claim of the policy
// engine: on the 21-job colocated-PS scenario, at least one
// telemetry-driven policy improves the p95 JCT over the blind TLs-RR
// rotation. At Steps=300/Seed=42 the measured margin is ~8% (and 3-14%
// across other seeds), so asserting a 1% improvement leaves room for
// benign numeric drift while still failing on a real regression.
func TestPolicySweepAdaptiveBeatsRR(t *testing.T) {
	if testing.Short() {
		t.Skip("full policy sweep")
	}
	res, err := PolicySweep(Options{Steps: 300, Seed: 42, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(PolicySweepNames) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(PolicySweepNames))
	}
	for _, row := range res.Rows {
		if row.AvgJCT <= 0 || row.P95JCT <= 0 || row.MaxJCT < row.P95JCT {
			t.Fatalf("%s: implausible JCTs %+v", row.Policy, row)
		}
	}
	rr, ok := res.Row("TLs-RR")
	if !ok {
		t.Fatal("missing TLs-RR row")
	}
	if rr.Reconfigs == 0 {
		t.Fatal("TLs-RR never rotated; interval scaling broken")
	}
	best, ok := res.BestAdaptive()
	if !ok {
		t.Fatal("no adaptive rows")
	}
	if best.P95JCT >= rr.P95JCT*0.99 {
		t.Fatalf("best adaptive %s p95 %.4f s does not beat TLs-RR %.4f s by >=1%%",
			best.Policy, best.P95JCT, rr.P95JCT)
	}
}

// TestAdaptivePolicySurvivesCrashes runs TLs-LAS under the fault
// injector's worker crashes: the Feedback collector must keep its
// accounting consistent when tracked jobs crash out (departure drops
// their telemetry) and the run must stay deterministic. Crashed
// workers restart, so all jobs still finish.
func TestAdaptivePolicySurvivesCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("full faulted runs")
	}
	run := func() *RunResult {
		t.Helper()
		p, err := cluster.ParsePlacement("8") // all 8 PSes colocated
		if err != nil {
			t.Fatal(err)
		}
		rc := RunConfig{
			Label:       "las-crashes",
			Cluster:     cluster.Config{Seed: 42},
			NumJobs:     8,
			LocalBatch:  4,
			TargetSteps: 300,
			Placement:   p,
			TLs: core.Config{
				PolicyName:          "TLs-LAS",
				IntervalSec:         1.5,
				FeedbackIntervalSec: 0.75,
			},
			Faults: faults.Plan{Crashes: []faults.CrashPlan{
				{Job: 0, Worker: 1, AtSec: 3},
				{Job: 2, Worker: 0, AtSec: 5},
			}},
			Recovery: dl.RecoveryConfig{
				DetectTimeoutSec:  0.5,
				RestartBackoffSec: 0.25,
				MaxRestarts:       2,
			},
		}
		res, err := Run(rc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	if a.FaultCounts.Crashes != 2 {
		t.Fatalf("injected %d crashes, want 2", a.FaultCounts.Crashes)
	}
	if a.Restarts == 0 {
		t.Fatal("no worker restarts recorded")
	}
	if len(a.FailedJobs) != 0 {
		t.Fatalf("jobs failed despite restart budget: %v", a.FailedJobs)
	}
	if len(a.JCTs) != 8 {
		t.Fatalf("%d JCTs, want 8", len(a.JCTs))
	}
	b := run()
	for i := range a.JCTs {
		if a.JCTs[i] != b.JCTs[i] {
			t.Fatalf("faulted adaptive run not deterministic: JCT[%d] %.9g vs %.9g",
				i, a.JCTs[i], b.JCTs[i])
		}
	}
}

// TestPolicySweepCSV checks the export shape: header plus one row per
// policy, in table order.
func TestPolicySweepCSV(t *testing.T) {
	r := &PolicySweepResult{Rows: []PolicyRow{
		{Policy: "FIFO", AvgJCT: 2, P95JCT: 3, MaxJCT: 4, BarrierWaitMean: 0.5, Reconfigs: 0},
		{Policy: "TLs-LAS", AvgJCT: 1, P95JCT: 2, MaxJCT: 3, BarrierWaitMean: 0.25, Reconfigs: 7},
	}}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if lines[0] != "policy,avg_jct_s,p95_jct_s,max_jct_s,barrier_wait_mean_s,reconfigs" {
		t.Fatalf("bad header: %s", lines[0])
	}
	if lines[2] != "TLs-LAS,1,2,3,0.25,7" {
		t.Fatalf("bad row: %s", lines[2])
	}
}
