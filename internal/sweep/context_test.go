package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

func TestEngineRecoversPanicToTrialError(t *testing.T) {
	// A panicking trial must not take down the process: the panic
	// becomes that trial's error (index + cause attached) and the
	// lowest-index-error-wins contract still holds against a plain
	// error at a higher index.
	for _, par := range []int{1, 2, 4} {
		var ran int32
		err := Engine{Parallelism: par}.ForEach(8, func(i int) error {
			atomic.AddInt32(&ran, 1)
			if i == 2 {
				panic("trial blew up")
			}
			if i == 6 {
				return fmt.Errorf("boom 6")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("parallelism %d: panic was swallowed", par)
		}
		if !strings.Contains(err.Error(), "trial 2 panicked") || !strings.Contains(err.Error(), "trial blew up") {
			t.Fatalf("parallelism %d: error %q does not carry the panicking trial", par, err)
		}
		if par > 1 && atomic.LoadInt32(&ran) != 8 {
			t.Fatalf("parallelism %d: parallel path attempted %d trials, want all 8", par, ran)
		}
	}
}

func TestEngineForEachContextCancelStopsDispatch(t *testing.T) {
	// Cancel after the third trial starts: no trial should begin once
	// ctx is done, and the returned error must report cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	var started int32
	err := Engine{Parallelism: 1}.ForEachContext(ctx, 100, func(ctx context.Context, i int) error {
		atomic.AddInt32(&started, 1)
		if i == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&started); n != 3 {
		t.Fatalf("started %d trials after cancellation, want 3", n)
	}
}

func TestEngineForEachContextParallelCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started int32
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- Engine{Parallelism: 2}.ForEachContext(ctx, 64, func(ctx context.Context, i int) error {
			atomic.AddInt32(&started, 1)
			<-release
			return ctx.Err()
		})
	}()
	// Wait for both workers to pick up a trial, then cancel and let
	// them finish: every remaining queued index must be skipped.
	for atomic.LoadInt32(&started) < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&started); n > 4 {
		t.Fatalf("%d trials started after cancellation of 64, want only the in-flight ones", n)
	}
}

func TestRunContextCancelsMidSimulation(t *testing.T) {
	// A real simulation must stop between events when its context is
	// cancelled while the kernel is running, and report how far it got.
	p1, err := cluster.PlacementByIndex(1)
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Steps: 4000, Seed: 1}
	o.fillDefaults()
	rc := o.baseRun(p1, core.PolicyRR)
	rc.Label = "cancel-mid-run"

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Let the simulation get going, then pull the plug. The exact
		// point does not matter; finishing 21 jobs × 4000 steps takes
		// far longer than 30 ms.
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	res, err := RunContext(ctx, rc)
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("got res=%v err=%v, want nil result and context.Canceled", res, err)
	}
	if !strings.Contains(err.Error(), "cancelled at sim time") {
		t.Fatalf("error %q does not report the cancellation point", err)
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	// RunContext with a background ctx must be event-for-event
	// identical to Run: the amortized ctx poll may not perturb results.
	p1, err := cluster.PlacementByIndex(1)
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Steps: 120, Seed: 3}
	o.fillDefaults()
	rc := o.baseRun(p1, core.PolicyOne)
	rc.Label = "ctx-vs-plain"

	plain, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	ctxRes, err := RunContext(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Events != ctxRes.Events || plain.SimTime != ctxRes.SimTime || plain.AvgJCT() != ctxRes.AvgJCT() {
		t.Fatalf("RunContext diverged from Run: events %d vs %d, simtime %v vs %v",
			plain.Events, ctxRes.Events, plain.SimTime, ctxRes.SimTime)
	}
}

func TestRunManyContextCancelAbandonsGrid(t *testing.T) {
	p1, err := cluster.PlacementByIndex(1)
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Steps: 4000, Seed: 1}
	o.fillDefaults()
	var rcs []RunConfig
	for i := 0; i < 6; i++ {
		rc := o.baseRun(p1, core.PolicyFIFO)
		rc.Cluster.Seed = int64(i + 1)
		rc.Label = fmt.Sprintf("grid-%d", i)
		rcs = append(rcs, rc)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	if _, err := RunManyContext(ctx, rcs, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
