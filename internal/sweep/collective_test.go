package sweep

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/dl"
	"repro/internal/faults"
)

func TestRunCollectiveOnly(t *testing.T) {
	rings, err := cluster.RingPlacement(2, 3, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{
		Cluster:         cluster.Config{Hosts: 4, Seed: 3},
		CollectiveSpecs: cluster.CollectiveSpecs(dl.ResNet32, rings, collective.Ring, 4, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	// No PS workload was implied: NumJobs must not default to 21.
	if len(res.JCTs) != 0 {
		t.Fatalf("phantom PS jobs: %d JCTs", len(res.JCTs))
	}
	if len(res.CollectiveJCTs) != 2 {
		t.Fatalf("collective JCTs %d", len(res.CollectiveJCTs))
	}
	for _, jct := range res.CollectiveJCTs {
		if jct <= 0 {
			t.Fatalf("degenerate collective JCT %g", jct)
		}
	}
}

func TestRunCollectivePeerCrashRecovery(t *testing.T) {
	rings, err := cluster.RingPlacement(1, 3, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	specs := cluster.CollectiveSpecs(dl.ResNet32, rings, collective.Ring, 4, 4)
	res, err := Run(RunConfig{
		Cluster:         cluster.Config{Hosts: 4, Seed: 3},
		CollectiveSpecs: specs,
		Recovery: dl.RecoveryConfig{
			DetectTimeoutSec:  1,
			RestartBackoffSec: 0.5,
			MaxRestarts:       2,
		},
		Faults: faults.Plan{
			PeerCrashes: []faults.CrashPlan{{Job: specs[0].ID, Worker: 1, AtSec: 0.2}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultCounts.PeerCrashes != 1 {
		t.Fatalf("peer crashes %d", res.FaultCounts.PeerCrashes)
	}
	if res.Restarts == 0 || res.CollectiveStalls == 0 {
		t.Fatalf("recovery did not engage: restarts %d stalls %d",
			res.Restarts, res.CollectiveStalls)
	}
	if len(res.CollectiveJCTs) != 1 {
		t.Fatalf("job did not recover: %d JCTs, failed %v",
			len(res.CollectiveJCTs), res.FailedJobs)
	}
}

func TestCollectiveShape(t *testing.T) {
	r, err := Collective(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.AvgJCT <= 0 || row.P95JCT < row.AvgJCT*0.5 {
			t.Fatalf("degenerate row %+v", row)
		}
		if row.Policy == core.PolicyFIFO.String() {
			if row.Reconfigs != 0 {
				t.Fatalf("FIFO reconfigured tc: %+v", row)
			}
		} else if row.Reconfigs == 0 {
			t.Fatalf("TLs never reconfigured: %+v", row)
		}
		if row.Scenario == ScenarioMixed && row.PSAvg <= 0 {
			t.Fatalf("mixed row lost its PS jobs: %+v", row)
		}
	}
	// On the all-reduce-only cluster prioritization pipelines the rings:
	// TLs-One must beat FIFO's average JCT clearly.
	fifoAR, _ := r.Row(ScenarioAllReduce, core.PolicyFIFO.String())
	oneAR, _ := r.Row(ScenarioAllReduce, core.PolicyOne.String())
	if oneAR.AvgJCT >= fifoAR.AvgJCT*0.95 {
		t.Fatalf("TLs-One avg %.2f vs FIFO %.2f on all-reduce cluster",
			oneAR.AvgJCT, fifoAR.AvgJCT)
	}
	// The headline acceptance criterion: on the mixed PS + all-reduce
	// contention scenario TLs-RR reduces the p95 JCT below FIFO's.
	fifoMix, ok1 := r.Row(ScenarioMixed, core.PolicyFIFO.String())
	rrMix, ok2 := r.Row(ScenarioMixed, core.PolicyRR.String())
	if !ok1 || !ok2 {
		t.Fatal("missing mixed rows")
	}
	if rrMix.P95JCT >= fifoMix.P95JCT {
		t.Fatalf("TLs-RR p95 %.2f did not beat FIFO p95 %.2f on the mixed cluster",
			rrMix.P95JCT, fifoMix.P95JCT)
	}
	out := r.Render()
	for _, want := range []string{"mixed", "allreduce", "TLs-RR", "reduction"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCollectiveDeterministic(t *testing.T) {
	o := Options{Steps: 300, Seed: 7}
	render := func() (string, string) {
		r, err := Collective(o)
		if err != nil {
			t.Fatal(err)
		}
		var csv strings.Builder
		if err := r.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		return r.Render(), csv.String()
	}
	table1, csv1 := render()
	table2, csv2 := render()
	if table1 != table2 {
		t.Fatal("same seed produced different tables")
	}
	if csv1 != csv2 {
		t.Fatal("same seed produced different CSV bytes")
	}
	lines := strings.Split(strings.TrimSpace(csv1), "\n")
	if lines[0] != "scenario,policy,avg_jct_s,p95_jct_s,ps_avg_jct_s,allreduce_avg_jct_s,reconfigs" {
		t.Fatalf("csv header %q", lines[0])
	}
	if len(lines) != 7 {
		t.Fatalf("csv lines %d", len(lines))
	}
	for _, line := range lines[1:] {
		if strings.Count(line, ",") != 6 {
			t.Fatalf("row %q has wrong field count", line)
		}
	}
}
