package sweep

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/dl"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/scheduler"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The open-world experiment: ROADMAP item 4's regime. Jobs are drawn
// from the unified workload layer — one arrival stream mixing PS and
// collective jobs, arrival times from a pluggable process (Poisson,
// Markov-modulated bursty, trace replay), placement by the online
// cluster-scheduler tier on the leaf-spine topology — and the cluster
// is optionally heterogeneous, with a deterministic subset of hosts
// running at a fractional CPU speed so stragglers arise from hardware,
// not just contention or faults.

// OpenWorldArrivals are the arrival-process axis values the sweep
// crosses.
var OpenWorldArrivals = []string{"poisson", "bursty", "trace"}

// OpenWorldPolicyNames are the end-host TensorLights policies crossed
// with the arrival and heterogeneity axes.
var OpenWorldPolicyNames = []string{"FIFO", "TLs-RR", "TLs-LAS", "TLs-SRSF"}

// openWorldSlowEvery / openWorldSlowFactor define the heterogeneous
// tier: every third host (ids 2, 5, 8, 11 on the 12-host cluster) runs
// at 60% of reference speed. Deterministic, so the heterogeneous and
// homogeneous cells differ only in hardware.
const (
	openWorldSlowEvery  = 3
	openWorldSlowFactor = 0.6
)

// OpenWorldTrialConfig describes one open-world run.
type OpenWorldTrialConfig struct {
	// Steps scales per-job iteration counts exactly like the other
	// sweeps (iterations = Steps/30, min 2).
	Steps int
	Seed  int64
	// Arrivals names the arrival process: "poisson" (default),
	// "bursty" or "trace".
	Arrivals string
	// Trace optionally overrides the built-in workload.DemoTrace for
	// Arrivals == "trace" (e.g. a CSV loaded from disk).
	Trace *workload.Trace
	// Heterogeneous slows every third host to 60% reference speed.
	Heterogeneous bool
	// Oversub is the leaf-spine core oversubscription ratio (default 2).
	Oversub float64
	// Placement is the cluster-scheduler placement policy (default
	// contention-aware).
	Placement scheduler.Policy
	// PolicyName is the end-host TensorLights policy (default FIFO).
	PolicyName string
	// Jobs is the number of arrivals (default 9; trace replay runs the
	// whole trace).
	Jobs int
	// ArrivalRatePerSec scales the stochastic processes (default 1/s).
	ArrivalRatePerSec float64
	// MixName selects the job mix for stochastic arrivals: "mixed"
	// (default), "ps" or "collective".
	MixName string
	// FabricMode selects the network engine ("" or simnet.ModeChunk for
	// the per-chunk fabric, simnet.ModeFlow for the analytic model).
	FabricMode string
	// Tracer, when non-nil, receives events from every layer.
	Tracer trace.Tracer
}

func (c *OpenWorldTrialConfig) fillDefaults() {
	if c.Steps <= 0 {
		c.Steps = 30_000
	}
	if c.Arrivals == "" {
		c.Arrivals = "poisson"
	}
	if c.Oversub <= 0 {
		c.Oversub = 2
	}
	if c.Placement == "" {
		c.Placement = scheduler.PolicyContentionAware
	}
	if c.PolicyName == "" {
		c.PolicyName = "FIFO"
	}
	if c.Jobs <= 0 {
		c.Jobs = 9
	}
	if c.ArrivalRatePerSec <= 0 {
		c.ArrivalRatePerSec = 1.0
	}
}

// OpenWorldTrialResult aggregates one open-world run. JCTs are
// measured from arrival to finish, so scheduler start shifts pay their
// own delay.
type OpenWorldTrialResult struct {
	JCTs           []float64 // per arrival, in arrival order
	AvgJCT         float64
	P95JCT         float64
	PSJobs         int
	CollectiveJobs int
	CrossRackRatio float64
	MaxLinkUtil    float64
	ShiftedJobs    int
	TotalShiftSec  float64
	Reconfigs      int
	MakespanSec    float64
	Events         uint64
}

// openWorldProcess resolves the configured arrival process and mix.
func openWorldProcess(cfg OpenWorldTrialConfig, iters int) (workload.OpenConfig, error) {
	mix, err := workload.NamedMix(cfg.MixName, iters)
	if err != nil {
		return workload.OpenConfig{}, err
	}
	switch cfg.Arrivals {
	case "trace":
		tr := cfg.Trace
		if tr == nil {
			tr = workload.DemoTrace(iters)
		}
		if err := tr.Validate(); err != nil {
			return workload.OpenConfig{}, err
		}
		// Replay the whole trace (entry count wins over cfg.Jobs so the
		// trace axis is self-describing).
		return workload.OpenConfig{Jobs: len(tr.Entries), Arrivals: tr, Mix: mix}, nil
	default:
		proc, err := workload.ParseProcess(cfg.Arrivals, cfg.ArrivalRatePerSec)
		if err != nil {
			return workload.OpenConfig{}, err
		}
		return workload.OpenConfig{Jobs: cfg.Jobs, Arrivals: proc, Mix: mix}, nil
	}
}

// OpenWorldTrial runs one open-world simulation: arrivals from the
// unified workload generator, each placed by the cluster-scheduler
// tier at its arrival instant and lowered to its runtime (dl.Job or
// collective.Job), running under the configured end-host TensorLights
// policy until every job finishes.
func OpenWorldTrial(ctx context.Context, cfg OpenWorldTrialConfig) (*OpenWorldTrialResult, error) {
	cfg.fillDefaults()
	iters := cfg.Steps / 30
	if iters < 2 {
		iters = 2
	}
	topo := simnet.TopologyConfig{
		Kind:             simnet.TopologyLeafSpine,
		Racks:            schedRacks,
		UplinksPerLeaf:   schedUplinks,
		Oversubscription: cfg.Oversub,
	}
	var speeds []float64
	if cfg.Heterogeneous {
		speeds = workload.TwoTierSpeeds(schedHosts, openWorldSlowEvery, openWorldSlowFactor)
	}
	tb := cluster.NewTestbed(cluster.Config{
		Hosts:            schedHosts,
		Seed:             cfg.Seed,
		HostSpeedFactors: speeds,
		Net:              simnet.Config{Topology: topo, Mode: cfg.FabricMode},
	})
	tls := topologyTLs(cfg.PolicyName, cfg.Steps)
	if err := tls.Validate(); err != nil {
		return nil, err
	}
	ctl := core.New(tb.K, tb.TC, tb.RNG, tls)
	fb := policy.NewFeedback(tb.K, policy.FeedbackConfig{
		SampleIntervalSec: tls.FeedbackIntervalSec,
	})
	fb.Probe = cluster.NewQdiscProbe(tb.Fabric)
	if cfg.Tracer != nil {
		tb.Env.Tracer = cfg.Tracer
		tb.Fabric.Tracer = cfg.Tracer
		ctl.Tracer = cfg.Tracer
		fb.Tracer = cfg.Tracer
	}
	if ctl.NeedsFeedback() {
		ctl.AttachFeedback(fb)
	}
	sched, err := scheduler.New(scheduler.Config{
		Hosts:    schedHosts,
		Topo:     topo,
		Policy:   cfg.Placement,
		RNG:      tb.RNG,
		Feedback: fb,
		Tracer:   cfg.Tracer,
	})
	if err != nil {
		return nil, err
	}

	openCfg, err := openWorldProcess(cfg, iters)
	if err != nil {
		return nil, err
	}
	arrivals, err := workload.GenerateOpen(openCfg, tb.RNG)
	if err != nil {
		return nil, err
	}

	res := &OpenWorldTrialResult{JCTs: make([]float64, len(arrivals))}
	finished := 0
	var trialErr error
	fail := func(err error) {
		if trialErr == nil {
			trialErr = err
		}
	}
	for i, arr := range arrivals {
		i, arr := i, arr
		tb.K.Post(arr.At, func() {
			now := tb.K.Now()
			spec := arr.Spec
			id := spec.RuntimeID()
			dec, err := sched.Place(spec.SchedReq(), now)
			if err != nil {
				fail(fmt.Errorf("sweep: open-world placement of job %d: %w", id, err))
				return
			}
			depart := func() {
				ctl.JobDeparted(id)
				fb.JobDeparted(id)
				sched.Release(id)
			}
			if spec.Kind.Collective() {
				cspec, err := spec.LowerCollective(dec.Hosts)
				if err != nil {
					fail(err)
					return
				}
				j, err := collective.NewJob(tb.Env, cspec)
				if err != nil {
					fail(err)
					return
				}
				res.CollectiveJobs++
				j.OnFinish = func(j *collective.Job) {
					res.JCTs[i] = tb.K.Now() - arr.At
					depart()
					finished++
				}
				j.OnFail = func(j *collective.Job) {
					fail(fmt.Errorf("sweep: open-world collective job %d failed", id))
					finished++
				}
				j.OnIteration = func(j *collective.Job, iter int) {
					ctl.JobProgress(id, iter)
					fb.OnProgress(id, iter)
				}
				tb.K.Post(now+dec.ShiftSec, func() {
					j.Start()
					ctl.JobArrived(core.JobInfo{
						ID:          id,
						PSHost:      dec.Hosts[0],
						PSPort:      j.Spec.Port,
						UpdateBytes: spec.Model.UpdateBytes(),
						SenderHosts: dec.Hosts,
						Ports:       []int{j.Spec.Port},
						TargetSteps: spec.Iterations,
					})
					fb.JobArrived(id)
				})
			} else {
				pspec, err := spec.LowerPS(dec.Hosts)
				if err != nil {
					fail(err)
					return
				}
				j, err := dl.NewJob(tb.Env, pspec)
				if err != nil {
					fail(err)
					return
				}
				res.PSJobs++
				j.OnFinish = func(j *dl.Job) {
					res.JCTs[i] = tb.K.Now() - arr.At
					depart()
					finished++
				}
				j.OnFail = func(j *dl.Job) {
					fail(fmt.Errorf("sweep: open-world PS job %d failed", id))
					finished++
				}
				j.OnBarrier = func(j *dl.Job, iter int) {
					ctl.JobProgress(id, iter)
					fb.OnProgress(id, iter)
				}
				tb.K.Post(now+dec.ShiftSec, func() {
					j.Start()
					ctl.JobArrived(core.JobInfo{
						ID:          id,
						PSHost:      j.Spec.PSHost,
						PSPort:      j.Spec.PSPort,
						UpdateBytes: spec.Model.UpdateBytes(),
						TargetSteps: spec.Iterations,
					})
					fb.JobArrived(id)
				})
			}
		})
	}

	tb.K.MaxEvents = 500_000_000
	done := ctx.Done()
	cancelled := done != nil && ctx.Err() != nil
	var sinceCheck int
	total := len(arrivals)
	tb.K.Run(func() bool {
		if cancelled {
			return true
		}
		if done != nil {
			sinceCheck++
			if sinceCheck >= schedCtxCheckEvery {
				sinceCheck = 0
				select {
				case <-done:
					cancelled = true
					return true
				default:
				}
			}
		}
		return finished >= total || trialErr != nil
	})
	if cancelled {
		return nil, fmt.Errorf("sweep: open-world trial cancelled at sim time %.3f s: %w",
			tb.K.Now(), ctx.Err())
	}
	if trialErr != nil {
		return nil, trialErr
	}
	if finished < total {
		return nil, fmt.Errorf("sweep: open-world trial stalled: %d/%d jobs finished after %d events",
			finished, total, tb.K.Fired())
	}

	res.AvgJCT = metrics.Mean(res.JCTs)
	res.P95JCT = metrics.Percentile(res.JCTs, 0.95)
	res.Reconfigs = ctl.Reconfigs()
	res.MakespanSec = tb.K.Now()
	res.Events = tb.K.Fired()
	res.ShiftedJobs, res.TotalShiftSec = sched.Shifts()
	var upBytes, egress int64
	for _, l := range tb.Fabric.CoreLinks() {
		if len(l.Name) >= 4 && l.Name[:4] == "leaf" {
			upBytes += l.Port().Bytes()
		}
		if res.MakespanSec > 0 {
			if u := l.Port().BusyTime() / res.MakespanSec; u > res.MaxLinkUtil {
				res.MaxLinkUtil = u
			}
		}
	}
	for _, h := range tb.Fabric.Hosts() {
		egress += h.Egress.Bytes()
	}
	if egress > 0 {
		res.CrossRackRatio = float64(upBytes) / float64(egress)
	}
	return res, nil
}

// OpenWorldRow is one (arrivals, hosts, policy) cell.
type OpenWorldRow struct {
	Arrivals string
	Hosts    string // "hom" or "het"
	Policy   string

	AvgJCT         float64
	P95JCT         float64
	PSJobs         int
	CollectiveJobs int
	CrossRackRatio float64
	MaxLinkUtil    float64
	Reconfigs      int
	MakespanSec    float64
}

// OpenWorldResult is the open-world experiment: the unified arrival
// stream swept across arrival processes, host heterogeneity and
// end-host TensorLights policies, with placement fixed to the
// contention-aware scheduler tier.
type OpenWorldResult struct {
	Rows []OpenWorldRow
}

// hostsLabel names the heterogeneity axis value.
func hostsLabel(hetero bool) string {
	if hetero {
		return "het"
	}
	return "hom"
}

// Row returns the (arrivals, hosts, policy) cell.
func (r *OpenWorldResult) Row(arrivals string, hetero bool, policy string) (OpenWorldRow, bool) {
	hosts := hostsLabel(hetero)
	for _, row := range r.Rows {
		if row.Arrivals == arrivals && row.Hosts == hosts && row.Policy == policy {
			return row, true
		}
	}
	return OpenWorldRow{}, false
}

// HeteroSlowdown is the pooled heterogeneous-over-homogeneous average
// JCT ratio for one arrival process (> 1 means slow hosts cost JCT).
func (r *OpenWorldResult) HeteroSlowdown(arrivals string) float64 {
	var hom, het []float64
	for _, row := range r.Rows {
		if row.Arrivals != arrivals {
			continue
		}
		switch row.Hosts {
		case "hom":
			hom = append(hom, row.AvgJCT)
		case "het":
			het = append(het, row.AvgJCT)
		}
	}
	h := metrics.Mean(hom)
	if h <= 0 {
		return 0
	}
	return metrics.Mean(het) / h
}

// Render prints the grid plus the headline heterogeneity slowdowns.
func (r *OpenWorldResult) Render() string {
	t := NewTable("Open world: arrival process x host heterogeneity x end-host policy (unified PS+collective stream)",
		"arrivals", "hosts", "policy", "avg JCT (s)", "p95 JCT (s)",
		"ps", "coll", "cross-rack", "max link util", "reconfigs")
	for _, row := range r.Rows {
		t.AddRow(row.Arrivals, row.Hosts, row.Policy,
			row.AvgJCT, row.P95JCT, row.PSJobs, row.CollectiveJobs,
			fmt.Sprintf("%.2f", row.CrossRackRatio),
			fmt.Sprintf("%.2f", row.MaxLinkUtil), row.Reconfigs)
	}
	out := t.String()
	for _, arr := range OpenWorldArrivals {
		if s := r.HeteroSlowdown(arr); s > 0 {
			out += fmt.Sprintf("%s arrivals: heterogeneous hosts cost %.2fx the homogeneous avg JCT\n",
				arr, s)
		}
	}
	return out
}

// OpenWorldSweep runs the full arrivals x heterogeneity x policy grid.
func OpenWorldSweep(o Options) (*OpenWorldResult, error) {
	return OpenWorldSweepContext(context.Background(), o)
}

// OpenWorldSweepContext is OpenWorldSweep with cancellation threaded
// into every trial.
func OpenWorldSweepContext(ctx context.Context, o Options) (*OpenWorldResult, error) {
	o.fillDefaults()
	type cell struct {
		arrivals string
		hetero   bool
		pol      string
	}
	var cells []cell
	for _, arr := range OpenWorldArrivals {
		for _, hetero := range []bool{false, true} {
			for _, pol := range OpenWorldPolicyNames {
				cells = append(cells, cell{arr, hetero, pol})
			}
		}
	}
	results := make([]*OpenWorldTrialResult, len(cells))
	err := Engine{Parallelism: o.Parallelism}.ForEachContext(ctx, len(cells), func(ctx context.Context, i int) error {
		c := cells[i]
		r, err := OpenWorldTrial(ctx, OpenWorldTrialConfig{
			Steps:         o.Steps,
			Seed:          o.Seed,
			Arrivals:      c.arrivals,
			Heterogeneous: c.hetero,
			PolicyName:    c.pol,
		})
		if err != nil {
			return fmt.Errorf("sweep: open-world cell (%s, %s, %s): %w",
				c.arrivals, hostsLabel(c.hetero), c.pol, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &OpenWorldResult{}
	for i, c := range cells {
		r := results[i]
		out.Rows = append(out.Rows, OpenWorldRow{
			Arrivals:       c.arrivals,
			Hosts:          hostsLabel(c.hetero),
			Policy:         c.pol,
			AvgJCT:         r.AvgJCT,
			P95JCT:         r.P95JCT,
			PSJobs:         r.PSJobs,
			CollectiveJobs: r.CollectiveJobs,
			CrossRackRatio: r.CrossRackRatio,
			MaxLinkUtil:    r.MaxLinkUtil,
			Reconfigs:      r.Reconfigs,
			MakespanSec:    r.MakespanSec,
		})
	}
	return out, nil
}
