package sweep

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/dl"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/scheduler"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Scheduler-experiment scale: the topology experiment's 3-rack
// leaf-spine cluster, but with an *online* workload — jobs arrive over
// time and the cluster-scheduler tier decides placement (and, for the
// phase-aware policy, start-time shifts) per arrival instead of the
// sweep hardcoding a static layout.
const (
	schedHosts   = 12
	schedRacks   = 3
	schedUplinks = 2
)

// SchedulerOversubs are the core oversubscription ratios the sweep
// compares; both are oversubscribed, because that is where placement
// and interleaving matter (acceptance contract: >= 2:1).
var SchedulerOversubs = []float64{2, 4}

// SchedulerPlacements are the cluster-scheduler placement policies the
// sweep crosses with the end-host policies.
var SchedulerPlacements = scheduler.Policies()

// schedulerPolicyNames are the end-host TensorLights policies crossed
// with the placement grid.
var schedulerPolicyNames = []string{"FIFO", "TLs-RR", "TLs-LAS"}

// schedMix is the deterministic cyclic arrival mix: a
// communication-bound AlexNet ring, a light ResNet-56 parameter-server
// group, and a ResNet-50 ring, repeating by arrival index. The mix
// pits elephant collectives against PS fan-in on the same uplinks.
type schedArrival struct {
	kind       scheduler.Kind
	model      dl.Model
	tasks      int
	localBatch int
	label      string
}

var schedMix = []schedArrival{
	{scheduler.KindCollective, dl.AlexNet, 3, 1, "alexnet-ring"},
	{scheduler.KindPS, dl.ResNet56, 3, 4, "resnet56-ps"},
	{scheduler.KindCollective, dl.ResNet50, 3, 1, "resnet50-ring"},
}

// SchedulerTrialConfig describes one online-scheduler run.
type SchedulerTrialConfig struct {
	// Steps scales the per-job iteration count exactly like the other
	// sweeps (iterations = Steps/30, min 2).
	Steps int
	Seed  int64
	// Oversub is the leaf-spine core oversubscription ratio (default 2).
	Oversub float64
	// Placement is the cluster-scheduler placement policy (default
	// contention-aware).
	Placement scheduler.Policy
	// PolicyName is the end-host TensorLights policy (default FIFO).
	PolicyName string
	// Jobs is the number of arrivals (default 9: three full mix cycles).
	Jobs int
	// ArrivalRatePerSec is the Poisson arrival rate (default 1/s —
	// dense enough that most jobs overlap, which is where placement
	// and interleaving earn their keep).
	ArrivalRatePerSec float64
	// FabricMode selects the network engine: "" or simnet.ModeChunk for
	// the per-chunk fabric, simnet.ModeFlow for the analytic flow-level
	// model (internal/flownet).
	FabricMode string
	// Tracer, when non-nil, receives events from every layer including
	// the scheduler's sched_place / sched_shift decisions.
	Tracer trace.Tracer
}

func (c *SchedulerTrialConfig) fillDefaults() {
	if c.Steps <= 0 {
		c.Steps = 30_000
	}
	if c.Oversub <= 0 {
		c.Oversub = 2
	}
	if c.Placement == "" {
		c.Placement = scheduler.PolicyContentionAware
	}
	if c.PolicyName == "" {
		c.PolicyName = "FIFO"
	}
	if c.Jobs <= 0 {
		c.Jobs = 9
	}
	if c.ArrivalRatePerSec <= 0 {
		c.ArrivalRatePerSec = 1.0
	}
}

// SchedulerTrialResult aggregates one online-scheduler run. JCTs are
// measured from *arrival* to finish (not from the possibly-shifted
// start), so phase shifts pay their own delay.
type SchedulerTrialResult struct {
	JCTs           []float64 // per arrival, in arrival order
	AvgJCT         float64
	P95JCT         float64
	CrossRackRatio float64
	MaxLinkUtil    float64
	ShiftedJobs    int
	TotalShiftSec  float64
	Reconfigs      int
	MakespanSec    float64
	Events         uint64
}

// schedCtxCheckEvery mirrors cluster's cancellation poll amortization.
const schedCtxCheckEvery = 4096

// SchedulerTrial runs one online-scheduler simulation: Poisson
// arrivals from the cyclic mix, each placed by the cluster-scheduler
// tier at its arrival instant (phase-aware placements may additionally
// delay the start), running under the configured end-host TensorLights
// policy until every job finishes.
func SchedulerTrial(ctx context.Context, cfg SchedulerTrialConfig) (*SchedulerTrialResult, error) {
	cfg.fillDefaults()
	iters := cfg.Steps / 30
	if iters < 2 {
		iters = 2
	}
	topo := simnet.TopologyConfig{
		Kind:             simnet.TopologyLeafSpine,
		Racks:            schedRacks,
		UplinksPerLeaf:   schedUplinks,
		Oversubscription: cfg.Oversub,
	}
	tb := cluster.NewTestbed(cluster.Config{
		Hosts: schedHosts,
		Seed:  cfg.Seed,
		Net:   simnet.Config{Topology: topo, Mode: cfg.FabricMode},
	})
	tls := topologyTLs(cfg.PolicyName, cfg.Steps)
	if err := tls.Validate(); err != nil {
		return nil, err
	}
	ctl := core.New(tb.K, tb.TC, tb.RNG, tls)
	// The trial always runs a Feedback collector: the phase-aware
	// scheduler consumes its period EWMA even under end-host policies
	// that do not need telemetry themselves.
	fb := policy.NewFeedback(tb.K, policy.FeedbackConfig{
		SampleIntervalSec: tls.FeedbackIntervalSec,
	})
	fb.Probe = cluster.NewQdiscProbe(tb.Fabric)
	if cfg.Tracer != nil {
		tb.Env.Tracer = cfg.Tracer
		tb.Fabric.Tracer = cfg.Tracer
		ctl.Tracer = cfg.Tracer
		fb.Tracer = cfg.Tracer
	}
	if ctl.NeedsFeedback() {
		ctl.AttachFeedback(fb)
	}
	sched, err := scheduler.New(scheduler.Config{
		Hosts:    schedHosts,
		Topo:     topo,
		Policy:   cfg.Placement,
		RNG:      tb.RNG,
		Feedback: fb,
		Tracer:   cfg.Tracer,
	})
	if err != nil {
		return nil, err
	}

	// Poisson arrivals from a dedicated stream, so the arrival process
	// is identical across placements and end-host policies.
	arrivals := make([]float64, cfg.Jobs)
	arrStream := tb.RNG.Stream("sched-arrivals")
	at := 0.0
	for i := range arrivals {
		at += arrStream.Expo(1 / cfg.ArrivalRatePerSec)
		arrivals[i] = at
	}

	jcts := make([]float64, cfg.Jobs)
	finished := 0
	var trialErr error
	fail := func(err error) {
		if trialErr == nil {
			trialErr = err
		}
	}
	for i := 0; i < cfg.Jobs; i++ {
		i := i
		mix := schedMix[i%len(schedMix)]
		arrival := arrivals[i]
		tb.K.Post(arrival, func() {
			now := tb.K.Now()
			id := i
			if mix.kind == scheduler.KindCollective {
				id = cluster.CollectiveIDBase + i
			}
			dec, err := sched.Place(scheduler.JobReq{
				ID: id, Kind: mix.kind, Model: mix.model,
				Tasks: mix.tasks, LocalBatch: mix.localBatch,
			}, now)
			if err != nil {
				fail(fmt.Errorf("sweep: scheduler placement of job %d: %w", id, err))
				return
			}
			depart := func() {
				ctl.JobDeparted(id)
				fb.JobDeparted(id)
				sched.Release(id)
			}
			switch mix.kind {
			case scheduler.KindCollective:
				j, err := collective.NewJob(tb.Env, collective.JobSpec{
					ID:               id,
					Name:             fmt.Sprintf("%s-%02d", mix.label, i),
					Model:            mix.model,
					Algorithm:        collective.Ring,
					Hosts:            dec.Hosts,
					LocalBatch:       mix.localBatch,
					TargetIterations: iters,
					Port:             7000 + 100*i,
				})
				if err != nil {
					fail(err)
					return
				}
				j.OnFinish = func(j *collective.Job) {
					jcts[i] = tb.K.Now() - arrival
					depart()
					finished++
				}
				j.OnFail = func(j *collective.Job) {
					fail(fmt.Errorf("sweep: collective job %d failed", id))
					finished++
				}
				j.OnIteration = func(j *collective.Job, iter int) {
					ctl.JobProgress(id, iter)
					fb.OnProgress(id, iter)
				}
				tb.K.Post(now+dec.ShiftSec, func() {
					j.Start()
					ctl.JobArrived(core.JobInfo{
						ID:          id,
						PSHost:      dec.Hosts[0],
						PSPort:      j.Spec.Port,
						UpdateBytes: mix.model.UpdateBytes(),
						SenderHosts: dec.Hosts,
						Ports:       []int{j.Spec.Port},
						TargetSteps: iters,
					})
					fb.JobArrived(id)
				})
			case scheduler.KindPS:
				workers := dec.Hosts[1:]
				j, err := dl.NewJob(tb.Env, dl.JobSpec{
					ID:                id,
					Name:              fmt.Sprintf("%s-%02d", mix.label, i),
					Model:             mix.model,
					NumWorkers:        len(workers),
					LocalBatch:        mix.localBatch,
					TargetGlobalSteps: iters * len(workers),
					PSHost:            dec.Hosts[0],
					PSPort:            5000 + i,
					WorkerHosts:       workers,
				})
				if err != nil {
					fail(err)
					return
				}
				j.OnFinish = func(j *dl.Job) {
					jcts[i] = tb.K.Now() - arrival
					depart()
					finished++
				}
				j.OnFail = func(j *dl.Job) {
					fail(fmt.Errorf("sweep: PS job %d failed", id))
					finished++
				}
				j.OnBarrier = func(j *dl.Job, iter int) {
					ctl.JobProgress(id, iter)
					fb.OnProgress(id, iter)
				}
				tb.K.Post(now+dec.ShiftSec, func() {
					j.Start()
					ctl.JobArrived(core.JobInfo{
						ID:          id,
						PSHost:      j.Spec.PSHost,
						PSPort:      j.Spec.PSPort,
						UpdateBytes: mix.model.UpdateBytes(),
						TargetSteps: iters,
					})
					fb.JobArrived(id)
				})
			}
		})
	}

	tb.K.MaxEvents = 500_000_000
	done := ctx.Done()
	cancelled := done != nil && ctx.Err() != nil
	var sinceCheck int
	tb.K.Run(func() bool {
		if cancelled {
			return true
		}
		if done != nil {
			sinceCheck++
			if sinceCheck >= schedCtxCheckEvery {
				sinceCheck = 0
				select {
				case <-done:
					cancelled = true
					return true
				default:
				}
			}
		}
		return finished >= cfg.Jobs || trialErr != nil
	})
	if cancelled {
		return nil, fmt.Errorf("sweep: scheduler trial cancelled at sim time %.3f s: %w",
			tb.K.Now(), ctx.Err())
	}
	if trialErr != nil {
		return nil, trialErr
	}
	if finished < cfg.Jobs {
		return nil, fmt.Errorf("sweep: scheduler trial stalled: %d/%d jobs finished after %d events",
			finished, cfg.Jobs, tb.K.Fired())
	}

	res := &SchedulerTrialResult{
		JCTs:        jcts,
		AvgJCT:      metrics.Mean(jcts),
		P95JCT:      metrics.Percentile(jcts, 0.95),
		Reconfigs:   ctl.Reconfigs(),
		MakespanSec: tb.K.Now(),
		Events:      tb.K.Fired(),
	}
	res.ShiftedJobs, res.TotalShiftSec = sched.Shifts()
	var upBytes, egress int64
	for _, l := range tb.Fabric.CoreLinks() {
		if len(l.Name) >= 4 && l.Name[:4] == "leaf" {
			upBytes += l.Port().Bytes()
		}
		if res.MakespanSec > 0 {
			if u := l.Port().BusyTime() / res.MakespanSec; u > res.MaxLinkUtil {
				res.MaxLinkUtil = u
			}
		}
	}
	for _, h := range tb.Fabric.Hosts() {
		egress += h.Egress.Bytes()
	}
	if egress > 0 {
		res.CrossRackRatio = float64(upBytes) / float64(egress)
	}
	return res, nil
}

// SchedulerRow is one (oversubscription, placement, policy) cell.
type SchedulerRow struct {
	Oversub   float64
	Placement string
	Policy    string

	AvgJCT         float64
	P95JCT         float64
	CrossRackRatio float64
	MaxLinkUtil    float64
	ShiftedJobs    int
	TotalShiftSec  float64
	Reconfigs      int
}

// SchedulerResult is the scheduler experiment: the same online arrival
// stream swept across cluster-scheduler placement policies, core
// oversubscription ratios, and end-host TensorLights policies. It
// measures how much of the contention fight a smarter cluster tier can
// win before the end-host bands ever see a packet — the
// beyond-the-paper axis ROADMAP item 2 names.
type SchedulerResult struct {
	Rows []SchedulerRow
}

// Row returns the (oversub, placement, policy) cell.
func (r *SchedulerResult) Row(oversub float64, placement, policy string) (SchedulerRow, bool) {
	for _, row := range r.Rows {
		if row.Oversub == oversub && row.Placement == placement && row.Policy == policy {
			return row, true
		}
	}
	return SchedulerRow{}, false
}

// PlacementGap returns spread average JCT over the given placement's
// average JCT at one oversubscription ratio, pooled across end-host
// policies (> 1 means the smarter placement wins).
func (r *SchedulerResult) PlacementGap(oversub float64, placement scheduler.Policy) float64 {
	var spread, other []float64
	for _, row := range r.Rows {
		if row.Oversub != oversub {
			continue
		}
		switch row.Placement {
		case string(scheduler.PolicySpread):
			spread = append(spread, row.AvgJCT)
		case string(placement):
			other = append(other, row.AvgJCT)
		}
	}
	o := metrics.Mean(other)
	if o <= 0 {
		return 0
	}
	return metrics.Mean(spread) / o
}

// Render prints the grid plus the headline placement gaps.
func (r *SchedulerResult) Render() string {
	t := NewTable("Scheduler: online placement x oversubscription x end-host policy (mixed arrivals)",
		"oversub", "placement", "policy", "avg JCT (s)", "p95 JCT (s)",
		"cross-rack", "max link util", "shifted", "shift (s)", "reconfigs")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%g:1", row.Oversub), row.Placement, row.Policy,
			row.AvgJCT, row.P95JCT,
			fmt.Sprintf("%.2f", row.CrossRackRatio),
			fmt.Sprintf("%.2f", row.MaxLinkUtil),
			row.ShiftedJobs, fmt.Sprintf("%.2f", row.TotalShiftSec), row.Reconfigs)
	}
	out := t.String()
	for _, ov := range SchedulerOversubs {
		for _, p := range []scheduler.Policy{scheduler.PolicyContentionAware, scheduler.PolicyPhaseAware} {
			if gap := r.PlacementGap(ov, p); gap > 0 {
				out += fmt.Sprintf("oversub %g:1: naive spread avg JCT is %.2fx %s placement\n",
					ov, gap, p)
			}
		}
	}
	return out
}

// SchedulerSweep runs the full oversub x placement x policy grid.
func SchedulerSweep(o Options) (*SchedulerResult, error) {
	return SchedulerSweepContext(context.Background(), o)
}

// SchedulerSweepContext is SchedulerSweep with cancellation threaded
// into every trial.
func SchedulerSweepContext(ctx context.Context, o Options) (*SchedulerResult, error) {
	o.fillDefaults()
	type cell struct {
		oversub float64
		place   scheduler.Policy
		pol     string
	}
	var cells []cell
	for _, ov := range SchedulerOversubs {
		for _, place := range SchedulerPlacements {
			for _, pol := range schedulerPolicyNames {
				cells = append(cells, cell{ov, place, pol})
			}
		}
	}
	results := make([]*SchedulerTrialResult, len(cells))
	err := Engine{Parallelism: o.Parallelism}.ForEachContext(ctx, len(cells), func(ctx context.Context, i int) error {
		c := cells[i]
		r, err := SchedulerTrial(ctx, SchedulerTrialConfig{
			Steps:      o.Steps,
			Seed:       o.Seed,
			Oversub:    c.oversub,
			Placement:  c.place,
			PolicyName: c.pol,
		})
		if err != nil {
			return fmt.Errorf("sweep: scheduler cell (%g, %s, %s): %w",
				c.oversub, c.place, c.pol, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &SchedulerResult{}
	for i, c := range cells {
		r := results[i]
		out.Rows = append(out.Rows, SchedulerRow{
			Oversub:        c.oversub,
			Placement:      string(c.place),
			Policy:         c.pol,
			AvgJCT:         r.AvgJCT,
			P95JCT:         r.P95JCT,
			CrossRackRatio: r.CrossRackRatio,
			MaxLinkUtil:    r.MaxLinkUtil,
			ShiftedJobs:    r.ShiftedJobs,
			TotalShiftSec:  r.TotalShiftSec,
			Reconfigs:      r.Reconfigs,
		})
	}
	return out, nil
}
