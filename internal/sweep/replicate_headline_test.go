package sweep

import (
	"fmt"
	"os"
	"testing"
)

// TestReplicateHeadlines is an opt-in measurement helper (not run in
// normal test passes): REPLICATE_HEADLINES=1 go test -run
// TestReplicateHeadlines -v ./internal/sweep prints the paper's two
// headline numbers with 3-seed error bars.
func TestReplicateHeadlines(t *testing.T) {
	if os.Getenv("REPLICATE_HEADLINES") == "" {
		t.Skip("set REPLICATE_HEADLINES=1 to run the multi-seed measurement")
	}
	steps := 3000
	gap, err := Replicate(3, 1, func(seed int64) (float64, error) {
		r, err := Figure2(Options{Steps: steps, Seed: seed})
		if err != nil {
			return 0, err
		}
		return r.PerformanceGap(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("Fig2 performance gap: %s %%\n", gap)
	imp, err := Replicate(3, 1, func(seed int64) (float64, error) {
		r, err := Figure5a(Options{Steps: steps, Seed: seed})
		if err != nil {
			return 0, err
		}
		one, _ := r.BestImprovement()
		return one, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("Fig5a best TLs-One improvement: %s %%\n", imp)
}
