package sweep

import (
	"bytes"
	"io"
	"testing"
)

// csvWriter is any sweep result that can export itself as CSV.
type csvResult interface {
	WriteCSV(w io.Writer) error
}

// runBoth runs one sweep at Parallelism 1 and 4 and returns both CSVs.
func runBoth(t *testing.T, name string, run func(Options) (csvResult, error)) (seq, par []byte) {
	t.Helper()
	render := func(parallelism int) []byte {
		o := Options{Steps: 300, Seed: 42, Parallelism: parallelism}
		res, err := run(o)
		if err != nil {
			t.Fatalf("%s at parallelism %d: %v", name, parallelism, err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatalf("%s WriteCSV: %v", name, err)
		}
		return buf.Bytes()
	}
	return render(1), render(4)
}

// TestSweepsDeterministicSequentialVsParallel asserts the acceptance
// contract of the parallel Engine: for every sweep, the same seed
// yields byte-identical CSV output whether trials run sequentially or
// across the worker pool.
func TestSweepsDeterministicSequentialVsParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every sweep twice")
	}
	sweeps := []struct {
		name string
		run  func(Options) (csvResult, error)
	}{
		{"replicate", func(o Options) (csvResult, error) { return ReplicateSweep(o) }},
		{"churn", func(o Options) (csvResult, error) { return ChurnSweep(o) }},
		{"faultrec", func(o Options) (csvResult, error) { return FaultRecovery(o) }},
		{"collective", func(o Options) (csvResult, error) { return Collective(o) }},
		{"policy", func(o Options) (csvResult, error) { return PolicySweep(o) }},
		{"topology", func(o Options) (csvResult, error) { return TopologySweep(o) }},
		{"scheduler", func(o Options) (csvResult, error) { return SchedulerSweep(o) }},
		{"openworld", func(o Options) (csvResult, error) { return OpenWorldSweep(o) }},
	}
	for _, s := range sweeps {
		s := s
		t.Run(s.name, func(t *testing.T) {
			seq, par := runBoth(t, s.name, s.run)
			if len(seq) == 0 {
				t.Fatalf("%s produced an empty CSV", s.name)
			}
			if !bytes.Equal(seq, par) {
				t.Fatalf("%s CSV differs between sequential and parallel runs:\n--- sequential ---\n%s\n--- parallel ---\n%s",
					s.name, seq, par)
			}
		})
	}
}
