package sweep

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/dl"
	"repro/internal/metrics"
)

// Scenario labels for the collective-workload experiment.
const (
	ScenarioAllReduce = "allreduce" // ring all-reduce jobs only
	ScenarioMixed     = "mixed"     // PS jobs + rings sharing hosts
)

// Collective-experiment scale: a small cluster where contention is
// engineered rather than inherited from Table I. All rings are aligned
// (stride 0) so their ranks share NICs, and in the mixed scenario the
// PS host is also every ring's rank-0 host — its egress carries both
// traffic classes, the collective analogue of placement #1.
const (
	collectiveHosts  = 8
	collectiveRanks  = 4
	collectiveRings  = 3
	collectivePSJobs = 3
)

// CollectiveRow is one (scenario, policy) cell of the comparison.
type CollectiveRow struct {
	Scenario string
	Policy   string

	// AvgJCT and P95JCT pool every job in the scenario (PS and
	// all-reduce alike): the paper's scheduling gains are cluster-wide,
	// not per-workload-class.
	AvgJCT float64
	P95JCT float64

	// Per-class means (PSAvg is 0 in the all-reduce-only scenario).
	PSAvg        float64
	AllReduceAvg float64

	Reconfigs int
}

// CollectiveResult is the collective-workload experiment: ring
// all-reduce jobs scheduled by TensorLights exactly like PS jobs — one
// priority band per job, keyed by the job's collective source port —
// compared under FIFO, TLs-One and TLs-RR on an all-reduce-only
// cluster and on a mixed PS + all-reduce cluster.
type CollectiveResult struct {
	Rows []CollectiveRow
}

// Row returns the (scenario, policy) cell.
func (r *CollectiveResult) Row(scenario, policy string) (CollectiveRow, bool) {
	for _, row := range r.Rows {
		if row.Scenario == scenario && row.Policy == policy {
			return row, true
		}
	}
	return CollectiveRow{}, false
}

// Render prints the comparison table.
func (r *CollectiveResult) Render() string {
	t := NewTable("Collective workloads: ring all-reduce under TensorLights (aligned rings)",
		"scenario", "policy", "avg JCT (s)", "p95 JCT (s)", "PS avg (s)", "all-reduce avg (s)", "reconfigs")
	for _, row := range r.Rows {
		ps := "-"
		if row.PSAvg > 0 {
			ps = fmt.Sprintf("%.4g", row.PSAvg)
		}
		t.AddRow(row.Scenario, row.Policy, row.AvgJCT, row.P95JCT, ps,
			row.AllReduceAvg, row.Reconfigs)
	}
	out := t.String()
	if fifo, ok1 := r.Row(ScenarioMixed, core.PolicyRR.String()); ok1 {
		if base, ok2 := r.Row(ScenarioMixed, core.PolicyFIFO.String()); ok2 && base.P95JCT > 0 {
			out += fmt.Sprintf("mixed cluster: TLs-RR p95 JCT %.4g s vs FIFO %.4g s (%.0f%% reduction)\n",
				fifo.P95JCT, base.P95JCT, 100*(1-fifo.P95JCT/base.P95JCT))
		}
	}
	return out
}

// collectivePolicies are the policies the experiment compares.
var collectivePolicies = []core.Policy{core.PolicyFIFO, core.PolicyOne, core.PolicyRR}

// collectiveRunConfigs builds the experiment's 2 scenarios x 3 policies.
func collectiveRunConfigs(o Options) ([]RunConfig, error) {
	// The all-reduce jobs train AlexNet at local batch 1: 244 MB of ring
	// traffic per rank per iteration against ~0.7 s of compute, so the
	// shared NICs — not the CPUs — are the bottleneck and scheduling can
	// matter. (ResNet-32 rings move ~2.8 MB per iteration and are purely
	// compute-bound at any placement.) The PS side of the mixed scenario
	// keeps the paper's ResNet-32 workload.
	iters := o.Steps / 30
	if iters < 2 {
		iters = 2
	}
	// TLs runs rank smallest-update-first, so the PS mice are never
	// stuck behind collective elephants, and TLs-RR rotates fast enough
	// (relative to the scaled-down job length; the paper's 20 s assumes
	// hour-long jobs) that every ring sees high-priority windows.
	tls := func(pol core.Policy) core.Config {
		cfg := core.Config{Policy: pol, Order: core.OrderSmallestUpdate}
		if pol == core.PolicyRR {
			cfg.IntervalSec = float64(o.Steps) / 200
		}
		return cfg
	}
	var rcs []RunConfig
	for _, pol := range collectivePolicies {
		rings, err := cluster.RingPlacement(collectiveRings+1, collectiveRanks, collectiveHosts, 0)
		if err != nil {
			return nil, err
		}
		rcs = append(rcs, RunConfig{
			Label:           fmt.Sprintf("%s-%s", ScenarioAllReduce, pol),
			Cluster:         cluster.Config{Hosts: collectiveHosts, Seed: o.Seed},
			TLs:             tls(pol),
			CollectiveSpecs: cluster.CollectiveSpecs(dl.AlexNet, rings, collective.Ring, 1, iters),
		})
	}
	for _, pol := range collectivePolicies {
		rings, err := cluster.RingPlacement(collectiveRings, collectiveRanks, collectiveHosts, 0)
		if err != nil {
			return nil, err
		}
		rcs = append(rcs, RunConfig{
			Label:       fmt.Sprintf("%s-%s", ScenarioMixed, pol),
			Cluster:     cluster.Config{Hosts: collectiveHosts, Seed: o.Seed},
			NumJobs:     collectivePSJobs,
			LocalBatch:  o.LocalBatch,
			TargetSteps: o.Steps,
			Placement:   cluster.Placement{Index: 1, Groups: []int{collectivePSJobs}},
			TLs:         tls(pol),
			// Twice the iterations: the rings outlast the PS jobs, so the
			// cluster's JCT tail is the contended collective workload.
			CollectiveSpecs: cluster.CollectiveSpecs(dl.AlexNet, rings, collective.Ring, 1, 2*iters),
		})
	}
	return rcs, nil
}

// Collective runs the collective-workload comparison.
func Collective(o Options) (*CollectiveResult, error) {
	o.fillDefaults()
	rcs, err := collectiveRunConfigs(o)
	if err != nil {
		return nil, err
	}
	results, err := RunMany(rcs, o.Parallelism)
	if err != nil {
		return nil, err
	}
	out := &CollectiveResult{}
	for i, res := range results {
		scenario := ScenarioAllReduce
		if i >= len(collectivePolicies) {
			scenario = ScenarioMixed
		}
		pooled := append(append([]float64(nil), res.JCTs...), res.CollectiveJCTs...)
		out.Rows = append(out.Rows, CollectiveRow{
			Scenario:     scenario,
			Policy:       collectivePolicies[i%len(collectivePolicies)].String(),
			AvgJCT:       metrics.Mean(pooled),
			P95JCT:       metrics.Percentile(pooled, 0.95),
			PSAvg:        metrics.Mean(res.JCTs),
			AllReduceAvg: metrics.Mean(res.CollectiveJCTs),
			Reconfigs:    res.Reconfigs,
		})
	}
	return out, nil
}
