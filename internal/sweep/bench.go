package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dl"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// BenchConfig sizes the sweep benchmark. The workload is the replicate
// sweep's trial shape: Trials identical placement-#1 FIFO runs on
// consecutive seeds, first executed sequentially, then on the parallel
// Engine.
type BenchConfig struct {
	Steps       int   // global steps per trial (default 600)
	Trials      int   // trial count (default 2 * Parallelism)
	Parallelism int   // parallel leg's worker count (default 4)
	Seed        int64 // base seed
}

func (c *BenchConfig) fillDefaults() {
	if c.Steps <= 0 {
		c.Steps = 600
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 4
	}
	if c.Trials <= 0 {
		c.Trials = 2 * c.Parallelism
	}
}

// BenchReport is the measured sweep/kernel performance snapshot written
// to BENCH_sweep.json. Trials/sec tracks the Engine's throughput;
// ns/event and allocs/event track the kernel's event loop (allocs/event
// counts Event structs that missed the pool, not total Go allocations).
type BenchReport struct {
	GOMAXPROCS  int   `json:"gomaxprocs"`
	Parallelism int   `json:"parallelism"`
	Trials      int   `json:"trials"`
	Steps       int   `json:"steps"`
	Seed        int64 `json:"seed"`

	SequentialSec          float64 `json:"sequential_sec"`
	ParallelSec            float64 `json:"parallel_sec"`
	TrialsPerSecSequential float64 `json:"trials_per_sec_sequential"`
	TrialsPerSecParallel   float64 `json:"trials_per_sec_parallel"`
	Speedup                float64 `json:"speedup"`

	Events         uint64  `json:"events"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`

	// FabricChunks/FabricNsPerChunk track the simnet hot path: chunks
	// pushed through a contended leaf-spine core link (see
	// measureFabricBench) and the wall-clock cost per chunk.
	FabricChunks     uint64  `json:"fabric_chunks"`
	FabricNsPerChunk float64 `json:"fabric_ns_per_chunk"`

	// ShardScale is the sharded-engine scaling curve: one fixed
	// leaf-spine workload run under RunSharded at 1, 2 and 4 shards with
	// GOMAXPROCS pinned to the shard count. On a single-core machine the
	// curve is flat (windows serialize); it is recorded anyway so the
	// history shows when parallel hardware first pays off.
	ShardScale []ShardScalePoint `json:"shard_scale,omitempty"`

	// FlowVsChunk compares the analytic flow-level fabric
	// (internal/flownet, -fabric flow) against the per-chunk fabric on
	// fixed scenarios: a 12-host scheduler-sweep cell and the
	// 10,240-host leaf-spine workload. Speedup is the chunk wall clock
	// divided by the flow wall clock on the same workload.
	FlowVsChunk []FlowVsChunkPoint `json:"flow_vs_chunk,omitempty"`

	// OpenWorld times the unified open-world trial (mixed PS+collective
	// arrivals through the scheduler tier) on fixed scenarios, so the
	// cost of the cross-cutting workload path is part of the history.
	OpenWorld []OpenWorldBenchPoint `json:"open_world,omitempty"`
}

// OpenWorldBenchPoint is one open-world trial measurement.
type OpenWorldBenchPoint struct {
	Scenario string  `json:"scenario"`
	WallSec  float64 `json:"wall_sec"`
	Events   uint64  `json:"events"`
	Jobs     int     `json:"jobs"`
	AvgJCT   float64 `json:"avg_jct_s"`
	// EventsPerSec is the kernel throughput on this trial.
	EventsPerSec float64 `json:"events_per_sec"`
}

// ShardScalePoint is one sharded-engine measurement.
type ShardScalePoint struct {
	Shards  int     `json:"shards"`
	Procs   int     `json:"procs"` // GOMAXPROCS during the run
	WallSec float64 `json:"wall_sec"`
	Events  uint64  `json:"events"`
	// Speedup is the 1-shard wall clock divided by this point's.
	Speedup float64 `json:"speedup"`
}

// FlowVsChunkPoint is one chunk-vs-flow fabric comparison: the same
// workload run once on each engine.
type FlowVsChunkPoint struct {
	Scenario    string  `json:"scenario"`
	ChunkSec    float64 `json:"chunk_sec"`
	FlowSec     float64 `json:"flow_sec"`
	ChunkEvents uint64  `json:"chunk_events"`
	FlowEvents  uint64  `json:"flow_events"`
	// Speedup is the chunk wall clock divided by the flow wall clock.
	Speedup float64 `json:"speedup"`
}

// benchRunConfigs builds the replicate-shaped trial grid.
func benchRunConfigs(cfg BenchConfig) []RunConfig {
	o := Options{Steps: cfg.Steps, Seed: cfg.Seed}
	o.fillDefaults()
	p1, _ := cluster.PlacementByIndex(1)
	rcs := make([]RunConfig, cfg.Trials)
	for i := range rcs {
		rc := o.baseRun(p1, core.PolicyFIFO)
		rc.Cluster.Seed = cfg.Seed + int64(i)
		rc.Label = fmt.Sprintf("bench-seed%d", rc.Cluster.Seed)
		rcs[i] = rc
	}
	return rcs
}

// measureFabricBench times the simnet hot path in isolation: four
// concurrent cross-rack flows ECMP-sharing the single contended uplink
// of a 2:1-oversubscribed two-rack leaf-spine fabric. Every chunk is
// served by the source NIC's egress qdisc, the leaf uplink, the spine
// downlink and the destination ingress, so ns/chunk prices the full
// routed pipeline — two more queue services per chunk than the flat
// switch.
// The timed window is only a few milliseconds, so a single sample is
// at the mercy of GC pacing and scheduler preemption (observed spread
// on one box: 330-970 ns/chunk). Best-of-5 with a leveled heap prices
// the hot path itself, which is what the regression gate compares.
func measureFabricBench(seed int64) (chunks uint64, nsPerChunk float64) {
	const (
		senders   = 4
		flowBytes = int64(512 << 20)
		reps      = 5
	)
	best := math.Inf(1)
	for rep := 0; rep < reps; rep++ {
		k := sim.NewKernel()
		f := simnet.New(k, sim.NewRNG(seed), simnet.Config{
			Topology: simnet.TopologyConfig{
				Kind:             simnet.TopologyLeafSpine,
				Racks:            2,
				UplinksPerLeaf:   1,
				Oversubscription: 2,
			},
		})
		for i := 0; i < 2*senders; i++ {
			f.AddHost(fmt.Sprintf("bench%d", i))
		}
		runtime.GC()
		start := time.Now()
		for i := 0; i < senders; i++ {
			f.Send(simnet.FlowSpec{
				Src: i, Dst: senders + i,
				SrcPort: i, DstPort: 1000 + i,
				Bytes: flowBytes,
			})
		}
		k.Run(nil)
		if wallSec := time.Since(start).Seconds(); wallSec < best {
			best = wallSec
		}
		if rep == 0 {
			chunkBytes := f.Config().ChunkBytes
			chunks = uint64(senders) * uint64((flowBytes+chunkBytes-1)/chunkBytes)
		}
	}
	return chunks, best * 1e9 / float64(chunks)
}

// flowVsChunk10kRun is the large-topology comparison workload: the
// 10,240-host leaf-spine shape from the sharded goldens (256 racks x 40
// hosts, 16 PS jobs), with ResNet-50 updates — a ~100 MB model, the
// traffic-heavy regime the analytic fabric exists for — and few steps
// so the chunk baseline stays affordable inside a bench run. Both
// fabric modes run it on a single kernel (the analytic engine cannot
// shard), so the chunk leg prices exactly what flow mode replaces.
func flowVsChunk10kRun(seed int64) RunConfig {
	return RunConfig{
		Label: "bench-flow-10k",
		Cluster: cluster.Config{
			Hosts: 10_240,
			Seed:  seed,
			Net: simnet.Config{
				Topology: simnet.TopologyConfig{
					Kind:           simnet.TopologyLeafSpine,
					Racks:          256,
					UplinksPerLeaf: 4,
				},
			},
		},
		Model:       dl.ResNet50,
		NumJobs:     16,
		LocalBatch:  4,
		TargetSteps: 10,
		TLs:         core.Config{Policy: core.PolicyOne},
		StaggerSec:  0.02,
	}
}

// measureFlowVsChunk times the chunk and flow fabrics on two fixed
// scenarios: one online cluster-scheduler cell (the SchedulerSweep unit
// of work — 12-host leaf-spine, Poisson arrivals) and the 10,240-host
// leaf-spine workload. The flow fabric's event count excludes the
// per-chunk service churn, which is where its speedup comes from.
func measureFlowVsChunk(seed int64) ([]FlowVsChunkPoint, error) {
	sched := FlowVsChunkPoint{Scenario: "sched-cell-12h"}
	large := FlowVsChunkPoint{Scenario: "leafspine-10240h"}
	// Pin the 10k workload to the sharded goldens' shard-stable job
	// placement so both modes (and future history entries) run the
	// identical spec set.
	base := flowVsChunk10kRun(seed)
	ccfg := base.Cluster.Normalized()
	plan, err := simnet.PlanShards(ccfg.Net, ccfg.Hosts, 16)
	if err != nil {
		return nil, fmt.Errorf("10k topology plan: %w", err)
	}
	if base.PSSpecs, err = cluster.ShardStableSpecs(ccfg, plan, base.Model,
		base.NumJobs, base.LocalBatch, base.TargetSteps); err != nil {
		return nil, fmt.Errorf("10k topology specs: %w", err)
	}
	// The scheduler cell runs in tens of milliseconds under flow mode,
	// so one sample is noise-bound, and on a shared box the noise comes
	// in multi-second epochs — timing all of one mode's reps and then
	// all of the other's lets one epoch skew the ratio. Interleave the
	// modes round by round and take each mode's best, and run the cell
	// before the 10k legs balloon the heap. Level the GC field before
	// every timed leg so one leg's garbage is never billed to the next.
	sched.ChunkSec, sched.FlowSec = math.Inf(1), math.Inf(1)
	for rep := 0; rep < 3; rep++ {
		for _, mode := range []string{simnet.ModeChunk, simnet.ModeFlow} {
			runtime.GC()
			start := time.Now()
			sres, err := SchedulerTrial(context.Background(), SchedulerTrialConfig{
				Steps:      3000,
				Seed:       seed,
				FabricMode: mode,
			})
			if err != nil {
				return nil, fmt.Errorf("scheduler cell (%s): %w", mode, err)
			}
			wall := time.Since(start).Seconds()
			if mode == simnet.ModeChunk {
				sched.ChunkEvents = sres.Events
				if wall < sched.ChunkSec {
					sched.ChunkSec = wall
				}
			} else {
				sched.FlowEvents = sres.Events
				if wall < sched.FlowSec {
					sched.FlowSec = wall
				}
			}
		}
	}

	// The 10k chunk leg costs ~10s: a single sample is long enough to
	// average its own noise, so neither 10k leg is repeated.
	for _, mode := range []string{simnet.ModeChunk, simnet.ModeFlow} {
		rc := base
		rc.Cluster.Net.Mode = mode
		runtime.GC()
		start := time.Now()
		lres, err := Run(rc)
		if err != nil {
			return nil, fmt.Errorf("10k topology (%s): %w", mode, err)
		}
		largeWall := time.Since(start).Seconds()
		if mode == simnet.ModeChunk {
			large.ChunkSec, large.ChunkEvents = largeWall, lres.Events
		} else {
			large.FlowSec, large.FlowEvents = largeWall, lres.Events
		}
	}
	for _, p := range []*FlowVsChunkPoint{&sched, &large} {
		if p.FlowSec > 0 {
			p.Speedup = p.ChunkSec / p.FlowSec
		}
	}
	return []FlowVsChunkPoint{sched, large}, nil
}

// MeasureSweepBench times the same trial grid through the sequential
// path (parallelism 1) and the parallel Engine, and derives per-event
// kernel costs from the sequential leg's wall clock.
func MeasureSweepBench(cfg BenchConfig) (*BenchReport, error) {
	cfg.fillDefaults()

	rcs := benchRunConfigs(cfg)
	seqStart := time.Now()
	seqResults, err := RunMany(rcs, 1)
	if err != nil {
		return nil, fmt.Errorf("sweep: bench sequential leg: %w", err)
	}
	seqSec := time.Since(seqStart).Seconds()

	parStart := time.Now()
	if _, err := RunMany(rcs, cfg.Parallelism); err != nil {
		return nil, fmt.Errorf("sweep: bench parallel leg: %w", err)
	}
	parSec := time.Since(parStart).Seconds()

	var events, eventAllocs uint64
	for _, r := range seqResults {
		events += r.Events
		eventAllocs += r.EventAllocs
	}
	rep := &BenchReport{
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Parallelism:   cfg.Parallelism,
		Trials:        cfg.Trials,
		Steps:         cfg.Steps,
		Seed:          cfg.Seed,
		SequentialSec: seqSec,
		ParallelSec:   parSec,
		Events:        events,
	}
	if seqSec > 0 {
		rep.TrialsPerSecSequential = float64(cfg.Trials) / seqSec
	}
	if parSec > 0 {
		rep.TrialsPerSecParallel = float64(cfg.Trials) / parSec
		rep.Speedup = seqSec / parSec
	}
	if events > 0 {
		rep.NsPerEvent = seqSec * 1e9 / float64(events)
		rep.AllocsPerEvent = float64(eventAllocs) / float64(events)
	}
	rep.FabricChunks, rep.FabricNsPerChunk = measureFabricBench(cfg.Seed)
	if rep.ShardScale, err = measureShardScale(cfg.Seed, cfg.Steps); err != nil {
		return nil, fmt.Errorf("sweep: bench shard-scale leg: %w", err)
	}
	if rep.FlowVsChunk, err = measureFlowVsChunk(cfg.Seed); err != nil {
		return nil, fmt.Errorf("sweep: bench flow-vs-chunk leg: %w", err)
	}
	if rep.OpenWorld, err = measureOpenWorld(cfg.Seed); err != nil {
		return nil, fmt.Errorf("sweep: bench open-world leg: %w", err)
	}
	return rep, nil
}

// measureOpenWorld times the open-world trial on its stress scenario:
// bursty arrivals on the heterogeneous cluster under TLs-SRSF — the
// cell that exercises every new layer at once (MMPP generation, the
// unified lowering paths, per-host speed factors, adaptive ranking).
// Best-of-3 with a leveled heap, like the other millisecond-scale legs.
func measureOpenWorld(seed int64) ([]OpenWorldBenchPoint, error) {
	p := OpenWorldBenchPoint{Scenario: "openworld-bursty-het-srsf", WallSec: math.Inf(1)}
	for rep := 0; rep < 3; rep++ {
		runtime.GC()
		start := time.Now()
		res, err := OpenWorldTrial(context.Background(), OpenWorldTrialConfig{
			Steps:         3000,
			Seed:          seed,
			Arrivals:      "bursty",
			Heterogeneous: true,
			PolicyName:    "TLs-SRSF",
		})
		if err != nil {
			return nil, err
		}
		wall := time.Since(start).Seconds()
		p.Events, p.Jobs, p.AvgJCT = res.Events, len(res.JCTs), res.AvgJCT
		if wall < p.WallSec {
			p.WallSec = wall
		}
	}
	if p.WallSec > 0 {
		p.EventsPerSec = float64(p.Events) / p.WallSec
	}
	return []OpenWorldBenchPoint{p}, nil
}

// shardScaleRun is the fixed workload the scaling curve measures: a
// 16-rack, 64-host leaf-spine cluster with one PS job per rack cell, so
// it partitions cleanly into 1, 2 and 4 shards.
func shardScaleRun(seed int64, steps int) RunConfig {
	return RunConfig{
		Label: "bench-shard-scale",
		Cluster: cluster.Config{
			Hosts: 64,
			Seed:  seed,
			Net: simnet.Config{
				Topology: simnet.TopologyConfig{
					Kind:           simnet.TopologyLeafSpine,
					Racks:          16,
					UplinksPerLeaf: 2,
				},
			},
		},
		NumJobs:     16,
		LocalBatch:  4,
		TargetSteps: steps,
		TLs:         core.Config{Policy: core.PolicyOne},
		StaggerSec:  0.05,
	}
}

// measureShardScale times shardScaleRun under the sharded engine at 1,
// 2 and 4 shards, pinning GOMAXPROCS to the shard count for the run so
// the curve reflects what the partitioning buys at matching core
// counts. The workload (and so every point's result) is byte-identical
// across the shard counts; only the wall clock may differ.
func measureShardScale(seed int64, steps int) ([]ShardScalePoint, error) {
	rc := shardScaleRun(seed, steps)
	var points []ShardScalePoint
	var base float64
	for _, n := range []int{1, 2, 4} {
		old := runtime.GOMAXPROCS(n)
		start := time.Now()
		res, err := RunSharded(rc, ShardOptions{Shards: n, PlacementShards: 16, Parallel: n > 1})
		wall := time.Since(start).Seconds()
		runtime.GOMAXPROCS(old)
		if err != nil {
			return nil, err
		}
		p := ShardScalePoint{Shards: n, Procs: n, WallSec: wall, Events: res.Events}
		if n == 1 {
			base = wall
		}
		if wall > 0 && base > 0 {
			p.Speedup = base / wall
		}
		points = append(points, p)
	}
	return points, nil
}

// WriteJSON writes the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
