package sweep

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/dl"
	"repro/internal/faults"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// shardedRun executes one sharded run and returns its result (with the
// partitioning-dependent fields zeroed) plus the canonical trace CSV.
func shardedRun(t *testing.T, rc RunConfig, opt ShardOptions) (*RunResult, []byte) {
	t.Helper()
	buf := &trace.Buffer{}
	rc.Tracer = buf
	res, err := RunSharded(rc, opt)
	if err != nil {
		t.Fatalf("RunSharded(shards=%d, parallel=%v): %v", opt.Shards, opt.Parallel, err)
	}
	var csv bytes.Buffer
	if err := buf.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	// Wall clock, event totals and the config echo legitimately depend
	// on the partitioning; everything else must not.
	res.Config = RunConfig{}
	res.Wall = 0
	res.Events = 0
	res.EventAllocs = 0
	return res, csv.Bytes()
}

// checkShardedRunEquivalence runs rc unsharded (1 shard, sequential)
// and under every listed shard count in both sequential and parallel
// window execution, asserting byte-identical results and trace CSVs.
func checkShardedRunEquivalence(t *testing.T, rc RunConfig, placementShards int, shardCounts []int) *RunResult {
	t.Helper()
	base, baseCSV := shardedRun(t, rc, ShardOptions{Shards: 1, PlacementShards: placementShards})
	if len(base.JCTs)+len(base.CollectiveJCTs) == 0 {
		t.Fatal("baseline run finished no jobs; equivalence would be vacuous")
	}
	if len(baseCSV) < 100 {
		t.Fatalf("baseline trace CSV suspiciously small (%d bytes)", len(baseCSV))
	}
	for _, n := range shardCounts {
		for _, par := range []bool{false, true} {
			res, csv := shardedRun(t, rc, ShardOptions{
				Shards: n, PlacementShards: placementShards, Parallel: par,
			})
			if !reflect.DeepEqual(res, base) {
				t.Errorf("shards=%d parallel=%v: RunResult differs from 1-shard baseline\n got %+v\nwant %+v",
					n, par, res, base)
			}
			if !bytes.Equal(csv, baseCSV) {
				t.Errorf("shards=%d parallel=%v: trace CSV differs from 1-shard baseline (%d vs %d bytes)",
					n, par, len(csv), len(baseCSV))
				reportFirstCSVDiff(t, csv, baseCSV)
			}
		}
	}
	return base
}

func reportFirstCSVDiff(t *testing.T, got, want []byte) {
	t.Helper()
	g := bytes.Split(got, []byte("\n"))
	w := bytes.Split(want, []byte("\n"))
	n := len(g)
	if len(w) < n {
		n = len(w)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(g[i], w[i]) {
			t.Errorf("first CSV difference at line %d:\n got %s\nwant %s", i+1, g[i], w[i])
			return
		}
	}
	t.Errorf("CSVs diverge in length: %d vs %d lines", len(g), len(w))
}

// TestRunShardedEquivalenceFlatPS: the paper's PS workload on the flat
// topology, two jobs contending per placement cell under TLs-RR, run
// at 1, 2 and 4 shards.
func TestRunShardedEquivalenceFlatPS(t *testing.T) {
	rc := RunConfig{
		Label:       "sharded-flat-ps",
		Cluster:     cluster.Config{Hosts: 12, Seed: 42},
		Model:       dl.ResNet32,
		NumJobs:     8,
		LocalBatch:  4,
		TargetSteps: 120,
		TLs: core.Config{
			Policy:      core.PolicyRR,
			IntervalSec: 0.5,
		},
		StaggerSec:         0.05,
		ComputeJitterSigma: 0.1,
	}
	checkShardedRunEquivalence(t, rc, 4, []int{2, 4})
}

// TestRunShardedEquivalenceFlatThreeShards covers an odd shard count on
// flat (cells of 4 hosts nest in 1 and 3 contiguous blocks of 12).
func TestRunShardedEquivalenceFlatThreeShards(t *testing.T) {
	rc := RunConfig{
		Label:       "sharded-flat-3",
		Cluster:     cluster.Config{Hosts: 12, Seed: 7},
		Model:       dl.ResNet32,
		NumJobs:     6,
		LocalBatch:  4,
		TargetSteps: 100,
		TLs:         core.Config{Policy: core.PolicyOne},
		StaggerSec:  0.05,
	}
	checkShardedRunEquivalence(t, rc, 3, []int{3})
}

// leafSpineCluster builds a routed 12-rack, 24-host cluster config.
func leafSpineCluster(seed int64) cluster.Config {
	return cluster.Config{
		Hosts: 24,
		Seed:  seed,
		Net: simnet.Config{
			Topology: simnet.TopologyConfig{
				Kind:          simnet.TopologyLeafSpine,
				Racks:         12,
				UplinksPerLeaf: 2,
			},
		},
	}
}

// TestRunShardedEquivalenceLeafSpineFaults: a routed topology where
// each placement cell spans two racks (so cross-rack traffic exercises
// the core links), with NIC flap/drop windows, a worker crash, tc
// outages and a core-link degrade, run at 1, 2 and 3 shards.
func TestRunShardedEquivalenceLeafSpineFaults(t *testing.T) {
	rc := RunConfig{
		Label:       "sharded-ls-faults",
		Cluster:     leafSpineCluster(11),
		Model:       dl.ResNet32,
		NumJobs:     12,
		LocalBatch:  4,
		TargetSteps: 60,
		TLs: core.Config{
			Policy:      core.PolicyRR,
			IntervalSec: 0.5,
		},
		StaggerSec: 0.05,
		Recovery: dl.RecoveryConfig{
			DetectTimeoutSec:  0.2,
			RestartBackoffSec: 0.05,
			MaxRestarts:       3,
		},
		Faults: faults.Plan{
			FlapHosts:       []int{0, 5, 13, 20},
			FlapFirstAtSec:  0.4,
			FlapEverySec:    1.5,
			FlapDurationSec: 0.2,
			FlapJitterSec:   0.3,
			DropProb:        0.03,
			HorizonSec:      4,
			Crashes:         []faults.CrashPlan{{Job: 1, Worker: 0, AtSec: 0.8}},
			TCOutages:       []faults.OutagePlan{{Host: -1, AtSec: 0.6, DurSec: 0.4}},
			CoreLinks:       []faults.CoreLinkPlan{{Link: 0, AtSec: 0.5, DurSec: 0.5, Factor: 0.4}},
		},
	}
	res := checkShardedRunEquivalence(t, rc, 6, []int{2, 3})
	// The equivalence must not be vacuous: every fault class in the plan
	// has to have fired.
	fc := res.FaultCounts
	if fc.LinkFlaps == 0 || fc.DropWindows == 0 || fc.Crashes != 1 ||
		fc.TCOutages == 0 || fc.CoreLinkFaults != 1 {
		t.Fatalf("fault classes missing from the run: %+v", fc)
	}
	if res.Restarts == 0 {
		t.Fatal("crashed worker was never restarted")
	}
}

// TestRunShardedEquivalenceCollective: mixed PS + ring all-reduce jobs
// sharing hosts on a leaf-spine fabric, run at 1, 2 and 4 shards.
func TestRunShardedEquivalenceCollective(t *testing.T) {
	rings := [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}}
	rc := RunConfig{
		Label:      "sharded-collective",
		Cluster: cluster.Config{
			Hosts: 8,
			Seed:  3,
			Net: simnet.Config{
				Topology: simnet.TopologyConfig{
					Kind:          simnet.TopologyLeafSpine,
					Racks:         4,
					UplinksPerLeaf: 1,
				},
			},
		},
		Model:       dl.ResNet32,
		NumJobs:     4,
		LocalBatch:  4,
		TargetSteps: 60,
		TLs: core.Config{
			Policy:      core.PolicyRR,
			IntervalSec: 0.5,
		},
		StaggerSec:      0.05,
		CollectiveSpecs: cluster.CollectiveSpecs(dl.ResNet32, rings, collective.Ring, 4, 15),
	}
	res := checkShardedRunEquivalence(t, rc, 4, []int{2, 4})
	if len(res.JCTs) != 4 || len(res.CollectiveJCTs) != 4 {
		t.Fatalf("finished %d PS + %d collective jobs, want 4 + 4",
			len(res.JCTs), len(res.CollectiveJCTs))
	}
}

// TestRunShardedEquivalenceColocatedPS pins two PS jobs per cell onto a
// shared PS host via PSSpecs, so the TensorLights tc path (band
// install, RR rotation under grid timers) actually reconfigures hosts.
// The spread-out ShardStableSpecs workload never colocates PSes, which
// would leave that machinery untested across shard counts.
func TestRunShardedEquivalenceColocatedPS(t *testing.T) {
	var specs []dl.JobSpec
	for cell := 0; cell < 4; cell++ {
		base := 3 * cell
		for j := 0; j < 2; j++ {
			id := 2*cell + j
			specs = append(specs, dl.JobSpec{
				ID: id, Name: fmt.Sprintf("coloc-%02d", id), Model: dl.ResNet32,
				NumWorkers: 2, LocalBatch: 4, TargetGlobalSteps: 100,
				PSHost: base, PSPort: 5000 + id,
				WorkerHosts: []int{base + 1, base + 2},
			})
		}
	}
	rc := RunConfig{
		Label:      "sharded-coloc",
		Cluster:    cluster.Config{Hosts: 12, Seed: 21},
		TLs:        core.Config{Policy: core.PolicyRR, IntervalSec: 0.5},
		StaggerSec: 0.05,
		PSSpecs:    specs,
	}
	res := checkShardedRunEquivalence(t, rc, 4, []int{2, 4})
	if res.Reconfigs == 0 {
		t.Fatal("colocated PSes never triggered a tc reconfiguration")
	}
}

// TestRunShardedRejectsUnshardable: global observers and shared-RNG
// policies cannot be partitioned and must be refused, as must
// workloads whose jobs straddle shards.
func TestRunShardedRejectsUnshardable(t *testing.T) {
	base := RunConfig{
		Cluster:     cluster.Config{Hosts: 8, Seed: 1},
		NumJobs:     2,
		TargetSteps: 10,
	}
	util := base
	util.SampleUtilEvery = 0.5
	if _, err := RunSharded(util, ShardOptions{Shards: 2}); err == nil {
		t.Error("SampleUtilEvery accepted by sharded run")
	}
	random := base
	random.TLs = core.Config{Policy: core.PolicyOne, Order: core.OrderRandom}
	if _, err := RunSharded(random, ShardOptions{Shards: 2}); err == nil {
		t.Error("OrderRandom accepted by sharded run")
	}
	straddle := base
	straddle.PSSpecs = []dl.JobSpec{{
		ID: 0, Name: "straddle", Model: dl.ResNet32, NumWorkers: 1,
		LocalBatch: 4, TargetGlobalSteps: 10,
		PSHost: 0, PSPort: 5000, WorkerHosts: []int{7},
	}}
	if _, err := RunSharded(straddle, ShardOptions{Shards: 2}); err == nil {
		t.Error("shard-straddling job accepted")
	}
	if _, err := RunSharded(base, ShardOptions{Shards: 0}); err == nil {
		t.Error("0 shards accepted")
	}
	crash := base
	crash.Faults = faults.Plan{Crashes: []faults.CrashPlan{{Job: 99, Worker: 0, AtSec: 1}}}
	crash.Recovery = dl.RecoveryConfig{DetectTimeoutSec: 0.2, RestartBackoffSec: 0.05, MaxRestarts: 1}
	if _, err := RunSharded(crash, ShardOptions{Shards: 2}); err == nil {
		t.Error("crash plan naming an unknown job accepted")
	}
}

// TestRunShardedLargeTopology stands up a >=10k-host leaf-spine fabric
// (256 racks x 40 hosts) and completes a small workload across 4
// parallel shards — the scale target the sharded engine exists for.
func TestRunShardedLargeTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-host topology")
	}
	rc := RunConfig{
		Label: "sharded-10k",
		Cluster: cluster.Config{
			Hosts: 10_240,
			Seed:  5,
			Net: simnet.Config{
				Topology: simnet.TopologyConfig{
					Kind:          simnet.TopologyLeafSpine,
					Racks:         256,
					UplinksPerLeaf: 4,
				},
			},
		},
		Model:       dl.ResNet32,
		NumJobs:     16,
		LocalBatch:  4,
		TargetSteps: 40,
		TLs:         core.Config{Policy: core.PolicyOne},
		StaggerSec:  0.02,
	}
	start := time.Now()
	res, err := RunSharded(rc, ShardOptions{Shards: 4, PlacementShards: 16, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JCTs) != 16 {
		t.Fatalf("finished %d/16 jobs", len(res.JCTs))
	}
	t.Logf("10240 hosts, 16 jobs, %d events in %v (sim time %.2f s)",
		res.Events, time.Since(start), res.SimTime)
}
