package sweep

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dl"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// ChurnOptions configures an arrival/departure experiment: jobs arrive
// as a Poisson process, TensorLights reconfigures on each arrival and
// departure, and the schedule's PS-agnosticism produces natural
// colocation.
type ChurnOptions struct {
	Jobs              int
	ArrivalRatePerSec float64
	Steps             int // per-job global step target
	Seed              int64
	Policy            core.Policy
	// Order selects the priority assignment order for TLs policies
	// (OrderSmallestUpdate avoids head-of-line blocking in mixes).
	Order       core.Order
	SchedPolicy cluster.SchedPolicy
	Templates   []workload.JobTemplate
	Cluster     cluster.Config
}

// ChurnResult summarizes a churn run.
type ChurnResult struct {
	JCTs           []float64
	AvgJCT         float64
	P95JCT         float64
	MakespanSec    float64
	Reconfigs      int
	MaxColocation  int
	PerModelAvgJCT map[string]float64
	Events         uint64
}

// Churn runs the arrival/departure workload to completion.
func Churn(o ChurnOptions) (*ChurnResult, error) {
	if o.Jobs <= 0 {
		o.Jobs = 21
	}
	if o.Steps <= 0 {
		o.Steps = 6000
	}
	o.Cluster.Seed = o.Seed
	tb := cluster.NewTestbed(o.Cluster)
	wl := workload.ChurnConfig{
		NumJobs:           o.Jobs,
		ArrivalRatePerSec: o.ArrivalRatePerSec,
		Templates:         o.Templates,
		Hosts:             tb.Cfg.Hosts,
		SchedPolicy:       o.SchedPolicy,
	}
	if len(wl.Templates) == 0 {
		wl.Templates = workload.GridSearchMix(o.Steps)
	}
	arrivals, err := workload.Generate(wl, tb.RNG)
	if err != nil {
		return nil, err
	}
	ctl := core.New(tb.K, tb.TC, tb.RNG, core.Config{Policy: o.Policy, Order: o.Order})

	jobs := make([]*dl.Job, len(arrivals))
	psPerHost := map[int]int{}
	maxColoc := 0
	for i, arr := range arrivals {
		j, err := dl.NewJob(tb.Env, arr.Spec)
		if err != nil {
			return nil, fmt.Errorf("churn job %d: %w", i, err)
		}
		jobs[i] = j
		psPerHost[arr.Spec.PSHost]++
		if psPerHost[arr.Spec.PSHost] > maxColoc {
			maxColoc = psPerHost[arr.Spec.PSHost]
		}
		j.OnFinish = func(j *dl.Job) { ctl.JobDeparted(j.Spec.ID) }
		j.OnBarrier = func(j *dl.Job, iter int) { ctl.JobProgress(j.Spec.ID, iter) }
		spec := arr.Spec
		job := j
		tb.K.Post(arr.At, func() {
			job.Start()
			ctl.JobArrived(core.JobInfo{
				ID:          spec.ID,
				PSHost:      spec.PSHost,
				PSPort:      spec.PSPort,
				UpdateBytes: spec.Model.UpdateBytes(),
			})
		})
	}
	tb.RunToCompletion(jobs, 0)

	res := &ChurnResult{
		Reconfigs:      ctl.Reconfigs(),
		MaxColocation:  maxColoc,
		MakespanSec:    tb.K.Now(),
		Events:         tb.K.Fired(),
		PerModelAvgJCT: map[string]float64{},
	}
	perModel := map[string][]float64{}
	for _, j := range jobs {
		if !j.Done() {
			return nil, fmt.Errorf("churn: job %d unfinished", j.Spec.ID)
		}
		res.JCTs = append(res.JCTs, j.JCT())
		perModel[j.Spec.Model.Name] = append(perModel[j.Spec.Model.Name], j.JCT())
	}
	res.AvgJCT = metrics.Mean(res.JCTs)
	res.P95JCT = metrics.Percentile(res.JCTs, 0.95)
	for name, xs := range perModel {
		res.PerModelAvgJCT[name] = metrics.Mean(xs)
	}
	return res, nil
}

// --- Churn sweep (first-class experiment) ---------------------------

// ChurnSweepRow is one policy's churn outcome.
type ChurnSweepRow struct {
	Policy        string
	AvgJCT        float64
	P95JCT        float64
	MakespanSec   float64
	Reconfigs     int
	MaxColocation int
}

// ChurnSweepResult compares scheduling policies on the arrival/departure
// workload: a Poisson stream of mixed-model jobs bin-packed onto the
// testbed, so TensorLights reconfigures under natural colocation.
type ChurnSweepResult struct {
	Rows []ChurnSweepRow
}

// Render prints the churn comparison.
func (r *ChurnSweepResult) Render() string {
	t := NewTable("Churn: Poisson arrivals of mixed jobs, bin-packed PSes",
		"policy", "avg JCT (s)", "p95 JCT (s)", "makespan (s)", "reconfigs", "max coloc")
	for _, row := range r.Rows {
		t.AddRow(row.Policy, row.AvgJCT, row.P95JCT, row.MakespanSec,
			row.Reconfigs, row.MaxColocation)
	}
	return t.String()
}

// churnSweepOptions derives the per-policy ChurnOptions from the suite
// options. Churn's grid-search mix steps per job are a fifth of the
// PS sweeps' target (its jobs run concurrently from staggered Poisson
// arrivals, so the workload is already long).
func churnSweepOptions(o Options, policy core.Policy) ChurnOptions {
	return ChurnOptions{
		Jobs:              12,
		ArrivalRatePerSec: 1,
		Steps:             o.Steps / 5,
		Seed:              o.Seed,
		Policy:            policy,
		Order:             core.OrderSmallestUpdate,
		SchedPolicy:       cluster.PolicyBinpack,
		Cluster:           o.Cluster,
	}
}

// ChurnSweep runs the churn workload under each policy on the parallel
// Engine (one trial per policy, each with its own kernel and RNG).
func ChurnSweep(o Options) (*ChurnSweepResult, error) {
	o.fillDefaults()
	policies := []core.Policy{core.PolicyFIFO, core.PolicyOne, core.PolicyRR}
	results, err := Gather(Engine{Parallelism: o.Parallelism}, policies,
		func(pol core.Policy) (*ChurnResult, error) {
			return Churn(churnSweepOptions(o, pol))
		})
	if err != nil {
		return nil, err
	}
	out := &ChurnSweepResult{}
	for i, pol := range policies {
		out.Rows = append(out.Rows, ChurnSweepRow{
			Policy:        pol.String(),
			AvgJCT:        results[i].AvgJCT,
			P95JCT:        results[i].P95JCT,
			MakespanSec:   results[i].MakespanSec,
			Reconfigs:     results[i].Reconfigs,
			MaxColocation: results[i].MaxColocation,
		})
	}
	return out, nil
}
