package sweep

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/dl"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// ShardOptions selects how RunSharded partitions one simulation.
type ShardOptions struct {
	// Shards is the number of event kernels the run is partitioned
	// across (>= 1). On leaf-spine topologies it must not exceed the
	// rack count; on flat, the host count.
	Shards int
	// PlacementShards is the number of placement cells jobs are confined
	// to; 0 means Shards. The generated workload depends only on this
	// value, so fixing it while varying Shards runs the *identical*
	// workload under different partitionings — the basis of the
	// equivalence tests. Every cell must lie inside one shard (cells
	// and shards are both contiguous splits, so any PlacementShards
	// whose cells nest in the shard blocks works; RunSharded rejects a
	// straddling combination).
	PlacementShards int
	// Parallel executes each conservative window with one goroutine per
	// shard; false runs shards sequentially with identical results.
	Parallel bool
}

// RunSharded executes one simulation partitioned across opt.Shards
// event kernels under conservative synchronization, returning the same
// RunResult shape as Run. Every shard holds a full testbed replica
// (same seed, same topology) but launches only the jobs whose hosts it
// owns; with per-host RNG streams, grid-aligned controller timers and a
// shard-stable workload, the result is byte-identical across shard
// counts and across sequential/parallel window execution — only the
// Wall, Events and EventAllocs fields depend on the partitioning.
//
// Restrictions versus Run: the workload must be shard-stable (every
// job's hosts inside one shard — RunSharded generates one with
// cluster.ShardStableSpecs unless rc.PSSpecs pins it), utilization
// sampling is unsupported, and policies that draw from a shared RNG or
// need a feedback collector (OrderRandom, TLs-LAS and friends) are
// rejected: their draws would depend on the partitioning.
func RunSharded(rc RunConfig, opt ShardOptions) (*RunResult, error) {
	rc.fillDefaults()
	if opt.Shards < 1 {
		return nil, fmt.Errorf("sweep: sharded run needs >= 1 shard, got %d", opt.Shards)
	}
	if opt.PlacementShards == 0 {
		opt.PlacementShards = opt.Shards
	}
	if rc.SampleUtilEvery > 0 {
		return nil, fmt.Errorf("sweep: sharded runs do not support utilization sampling (the sampler is a global observer)")
	}
	if rc.TLs.Order == core.OrderRandom {
		return nil, fmt.Errorf("sweep: sharded runs do not support OrderRandom (per-shard controllers would draw different shuffles)")
	}
	if err := rc.TLs.Validate(); err != nil {
		return nil, err
	}
	// Determinism across shard counts requires per-host RNG streams and
	// grid-aligned controller timers on every shard count, including 1.
	rc.Cluster.Net.PerHostRNG = true
	rc.TLs.GridTimers = true

	ccfg := rc.Cluster.Normalized()
	planExec, err := simnet.PlanShards(ccfg.Net, ccfg.Hosts, opt.Shards)
	if err != nil {
		return nil, err
	}
	planPlace, err := simnet.PlanShards(ccfg.Net, ccfg.Hosts, opt.PlacementShards)
	if err != nil {
		return nil, err
	}

	var specs []dl.JobSpec
	if len(rc.PSSpecs) > 0 {
		specs = append([]dl.JobSpec(nil), rc.PSSpecs...)
	} else if rc.NumJobs > 0 {
		specs, err = cluster.ShardStableSpecs(ccfg, planPlace, rc.Model, rc.NumJobs,
			rc.LocalBatch, rc.TargetSteps)
		if err != nil {
			return nil, err
		}
	}
	for i := range specs {
		specs[i].Async = rc.Async
		specs[i].ProgressEvery = rc.ProgressEvery
		specs[i].ComputeJitterSigma = rc.ComputeJitterSigma
		specs[i].GradCompression = rc.GradCompression
		specs[i].Recovery = rc.Recovery
	}
	specShard := make([]int, len(specs))
	for i, sp := range specs {
		if specShard[i], err = cluster.SpecShard(sp, planExec); err != nil {
			return nil, err
		}
	}
	cspecs := make([]collective.JobSpec, len(rc.CollectiveSpecs))
	copy(cspecs, rc.CollectiveSpecs)
	for i := range cspecs {
		if cspecs[i].ComputeJitterSigma == 0 {
			cspecs[i].ComputeJitterSigma = rc.ComputeJitterSigma
		}
		if cspecs[i].Recovery == (dl.RecoveryConfig{}) {
			cspecs[i].Recovery = rc.Recovery
		}
	}
	cspecShard := make([]int, len(cspecs))
	for i, sp := range cspecs {
		if cspecShard[i], err = cluster.CollectiveShard(sp.ID, sp.Hosts, planExec); err != nil {
			return nil, err
		}
	}

	start := time.Now()
	sk := sim.NewShardedKernel(opt.Shards, planExec.Lookahead(), opt.Parallel)
	tbs := make([]*cluster.Testbed, opt.Shards)
	ctls := make([]*core.Controller, opt.Shards)
	bufs := make([]*trace.Buffer, opt.Shards)
	for s := range tbs {
		tbs[s] = cluster.NewTestbedOn(sk.Shard(s), ccfg)
		bufs[s] = &trace.Buffer{}
		ctls[s] = core.New(tbs[s].K, tbs[s].TC, tbs[s].RNG, rc.TLs)
		if ctls[s].NeedsFeedback() {
			return nil, fmt.Errorf("sweep: sharded runs do not support feedback-driven policies (%q)", rc.TLs.PolicyName)
		}
		if rc.Tracer != nil {
			tbs[s].Env.Tracer = bufs[s]
			tbs[s].Fabric.Tracer = bufs[s]
			ctls[s].Tracer = bufs[s]
		}
	}

	// Launch each shard's subset with the offsets the jobs hold in the
	// global launch order, so arrival times don't depend on sharding.
	allJobs := make([]*dl.Job, len(specs))
	allCJobs := make([]*collective.Job, len(cspecs))
	for s := 0; s < opt.Shards; s++ {
		ctl := ctls[s]
		var sSpecs []dl.JobSpec
		var sOff []float64
		var sIdx []int
		for i, sp := range specs {
			if specShard[i] == s {
				sSpecs = append(sSpecs, sp)
				sOff = append(sOff, float64(i)*rc.StaggerSec)
				sIdx = append(sIdx, i)
			}
		}
		jobs, err := tbs[s].LaunchAt(sSpecs, sOff, func(j *dl.Job) {
			ctl.JobArrived(core.JobInfo{
				ID:          j.Spec.ID,
				PSHost:      j.Spec.PSHost,
				PSPort:      j.Spec.PSPort,
				UpdateBytes: j.Spec.Model.UpdateBytes(),
				TargetSteps: (j.Spec.TargetGlobalSteps + j.Spec.NumWorkers - 1) / j.Spec.NumWorkers,
			})
			j.OnFinish = func(j *dl.Job) { ctl.JobDeparted(j.Spec.ID) }
			j.OnFail = func(j *dl.Job) { ctl.JobDeparted(j.Spec.ID) }
			j.OnBarrier = func(j *dl.Job, iter int) { ctl.JobProgress(j.Spec.ID, iter) }
		})
		if err != nil {
			return nil, err
		}
		for k, j := range jobs {
			allJobs[sIdx[k]] = j
		}
		var sCSpecs []collective.JobSpec
		var sCOff []float64
		var sCIdx []int
		for i, sp := range cspecs {
			if cspecShard[i] == s {
				sCSpecs = append(sCSpecs, sp)
				sCOff = append(sCOff, float64(i)*rc.StaggerSec)
				sCIdx = append(sCIdx, i)
			}
		}
		cjobs, err := tbs[s].LaunchCollectiveAt(sCSpecs, sCOff, func(j *collective.Job) {
			ctl.JobArrived(core.JobInfo{
				ID:          j.Spec.ID,
				PSHost:      j.Spec.Hosts[0],
				PSPort:      j.Spec.Port,
				UpdateBytes: j.Spec.Model.UpdateBytes(),
				SenderHosts: j.Spec.Hosts,
				Ports:       []int{j.Spec.Port},
				TargetSteps: j.Spec.TargetIterations,
			})
			j.OnFinish = func(j *collective.Job) { ctl.JobDeparted(j.Spec.ID) }
			j.OnFail = func(j *collective.Job) { ctl.JobDeparted(j.Spec.ID) }
			j.OnIteration = func(j *collective.Job, iter int) { ctl.JobProgress(j.Spec.ID, iter) }
		})
		if err != nil {
			return nil, err
		}
		for k, j := range cjobs {
			allCJobs[sCIdx[k]] = j
		}
	}

	var injs []*faults.Injector
	if rc.Faults.Active() {
		var psHosts []int
		seen := map[int]bool{}
		for _, sp := range specs {
			if !seen[sp.PSHost] {
				seen[sp.PSHost] = true
				psHosts = append(psHosts, sp.PSHost)
			}
		}
		// Validate crash targets globally: per-shard injectors skip
		// foreign job IDs, so a genuinely unknown ID must be caught here.
		jobIDs := map[int]bool{}
		for _, j := range allJobs {
			jobIDs[j.Spec.ID] = true
		}
		for i, c := range rc.Faults.Crashes {
			if !jobIDs[c.Job] {
				return nil, fmt.Errorf("sweep: Faults.Crashes[%d] names unknown job %d", i, c.Job)
			}
		}
		cjobIDs := map[int]bool{}
		for _, j := range allCJobs {
			cjobIDs[j.Spec.ID] = true
		}
		for i, c := range rc.Faults.PeerCrashes {
			if !cjobIDs[c.Job] {
				return nil, fmt.Errorf("sweep: Faults.PeerCrashes[%d] names unknown collective job %d", i, c.Job)
			}
		}
		for s := 0; s < opt.Shards; s++ {
			s := s
			tcc := tbs[s].TC
			if !rc.Faults.TCOutage && len(rc.Faults.TCOutages) == 0 {
				tcc = nil
			}
			inj := faults.New(tbs[s].K, tbs[s].RNG, tbs[s].Fabric, tcc)
			if rc.Tracer != nil {
				inj.Tracer = bufs[s]
			}
			inj.OwnHost = func(h int) bool { return planExec.HostShard(h) == s }
			links := tbs[s].Fabric.CoreLinks()
			inj.OwnLink = func(id int) bool { return planExec.LinkShard(links[id]) == s }
			jobByID := map[int]*dl.Job{}
			for i, j := range allJobs {
				if specShard[i] == s {
					jobByID[j.Spec.ID] = j
				}
			}
			cjobByID := map[int]*collective.Job{}
			for i, j := range allCJobs {
				if cspecShard[i] == s {
					cjobByID[j.Spec.ID] = j
				}
			}
			if err := inj.Apply(rc.Faults, psHosts, jobByID, cjobByID); err != nil {
				return nil, err
			}
			injs = append(injs, inj)
		}
	}

	sk.MaxEvents = 500_000_000
	sk.Run(func() bool {
		for _, j := range allJobs {
			if !j.Done() && !j.Failed() {
				return false
			}
		}
		for _, j := range allCJobs {
			if !j.Done() && !j.Failed() {
				return false
			}
		}
		return true
	})

	res := &RunResult{
		Config:      rc,
		SimTime:     sk.Now(),
		Events:      sk.Fired(),
		EventAllocs: sk.EventAllocs(),
		Wall:        time.Since(start),
		Progress:    map[int][]dl.ProgressPoint{},
	}
	for _, ctl := range ctls {
		res.Reconfigs += ctl.Reconfigs()
		st := ctl.Stats()
		res.TcRecovery.Retries += st.Retries
		res.TcRecovery.Fallbacks += st.Fallbacks
		res.TcRecovery.Repairs += st.Repairs
	}
	psSet := map[int]bool{}
	for _, j := range allJobs {
		if j.Failed() {
			res.FailedJobs = append(res.FailedJobs, j.Spec.ID)
			res.Restarts += j.Restarts()
			res.DegradedWorkers += j.DegradedWorkers()
			continue
		}
		if !j.Done() {
			return nil, fmt.Errorf("sweep: job %d did not finish (step %d/%d)",
				j.Spec.ID, j.GlobalStep(), j.Spec.TargetGlobalSteps)
		}
		res.JCTs = append(res.JCTs, j.JCT())
		res.Restarts += j.Restarts()
		res.DegradedWorkers += j.DegradedWorkers()
		for _, bs := range j.BarrierStats() {
			res.BarrierMeans = append(res.BarrierMeans, bs.Mean)
			res.BarrierVars = append(res.BarrierVars, bs.Variance)
		}
		if rc.ProgressEvery > 0 {
			res.Progress[j.Spec.ID] = j.Progress()
		}
		psSet[j.Spec.PSHost] = true
	}
	for _, j := range allCJobs {
		res.Restarts += j.Restarts()
		res.CollectiveStalls += j.Stalls()
		if j.Failed() {
			res.FailedJobs = append(res.FailedJobs, j.Spec.ID)
			continue
		}
		if !j.Done() {
			return nil, fmt.Errorf("sweep: collective job %d did not finish (iteration %d/%d)",
				j.Spec.ID, j.Iterations(), j.Spec.TargetIterations)
		}
		res.CollectiveJCTs = append(res.CollectiveJCTs, j.JCT())
	}
	for _, inj := range injs {
		c := inj.Counts()
		res.FaultCounts.LinkFlaps += c.LinkFlaps
		res.FaultCounts.RateDegrades += c.RateDegrades
		res.FaultCounts.DropWindows += c.DropWindows
		res.FaultCounts.TCOutages += c.TCOutages
		res.FaultCounts.Crashes += c.Crashes
		res.FaultCounts.CoreLinkFaults += c.CoreLinkFaults
		res.FaultCounts.PeerCrashes += c.PeerCrashes
	}
	for _, tb := range tbs {
		res.DroppedChunks += tb.Fabric.DroppedChunks()
		for _, h := range tb.Fabric.Hosts() {
			res.EgressBytes += h.Egress.Bytes()
		}
	}
	// Exactly one replica carries traffic on any core link (links are
	// rack-owned), so per-link sums across replicas equal the
	// single-kernel counters.
	for i, l := range tbs[0].Fabric.CoreLinks() {
		var bytes int64
		var busy float64
		for _, tb := range tbs {
			cl := tb.Fabric.CoreLinks()[i]
			bytes += cl.Port().Bytes()
			busy += cl.Port().BusyTime()
		}
		util := 0.0
		if res.SimTime > 0 {
			util = busy / res.SimTime
		}
		res.LinkStats = append(res.LinkStats, LinkStat{
			Link: l.ID, Name: l.Name, Bytes: bytes, Util: util,
		})
	}
	for h := 0; h < ccfg.Hosts; h++ {
		if psSet[h] {
			res.PSHosts = append(res.PSHosts, h)
		}
	}
	// Merge per-shard trace streams into one canonical order — the same
	// transform at every shard count, so traces compare byte-for-byte.
	if rc.Tracer != nil {
		streams := make([][]trace.Event, len(bufs))
		for i, b := range bufs {
			streams[i] = b.Events()
		}
		for _, e := range trace.MergeCanonical(streams...) {
			rc.Tracer.Emit(e)
		}
	}
	return res, nil
}
