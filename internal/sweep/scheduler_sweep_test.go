package sweep

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/scheduler"
	"repro/internal/trace"
)

func TestSchedulerTrialDeterministic(t *testing.T) {
	run := func() *SchedulerTrialResult {
		r, err := SchedulerTrial(context.Background(), SchedulerTrialConfig{
			Steps: 300, Seed: 42, Oversub: 2,
			Placement: scheduler.PolicyPhaseAware, PolicyName: "TLs-RR",
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("scheduler trial not deterministic:\n%+v\nvs\n%+v", a, b)
	}
	if len(a.JCTs) != 9 {
		t.Fatalf("expected 9 JCTs, got %d", len(a.JCTs))
	}
	for i, j := range a.JCTs {
		if j <= 0 {
			t.Fatalf("job %d has non-positive JCT %g", i, j)
		}
	}
}

func TestSchedulerTrialCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SchedulerTrial(ctx, SchedulerTrialConfig{Steps: 300, Seed: 1}); err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestSchedulerTrialEmitsPlacementTrace(t *testing.T) {
	buf := &trace.Buffer{}
	_, err := SchedulerTrial(context.Background(), SchedulerTrialConfig{
		Steps: 300, Seed: 42, Oversub: 2,
		Placement: scheduler.PolicyPhaseAware, PolicyName: "FIFO",
		Tracer: buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	places := buf.Filter(func(e trace.Event) bool { return e.Kind == trace.KindSchedPlace })
	if len(places) != 9 {
		t.Fatalf("want 9 sched_place events, got %d", len(places))
	}
}

// TestSchedulerSweepAcceptance pins the PR's headline contract: at
// >= 2:1 oversubscription, contention-aware or phase-aware placement
// beats naive spread on BOTH average and p95 JCT for at least one
// end-host policy.
func TestSchedulerSweepAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full 36-trial grid")
	}
	r, err := SchedulerSweep(Options{Steps: 300, Seed: 42, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(SchedulerOversubs) * len(SchedulerPlacements) * len(schedulerPolicyNames); len(r.Rows) != want {
		t.Fatalf("want %d rows, got %d", want, len(r.Rows))
	}
	for _, ov := range SchedulerOversubs {
		won := false
		for _, pol := range schedulerPolicyNames {
			spread, ok := r.Row(ov, string(scheduler.PolicySpread), pol)
			if !ok {
				t.Fatalf("missing spread row at oversub %g policy %s", ov, pol)
			}
			for _, smart := range []scheduler.Policy{scheduler.PolicyContentionAware, scheduler.PolicyPhaseAware} {
				row, ok := r.Row(ov, string(smart), pol)
				if !ok {
					t.Fatalf("missing %s row at oversub %g policy %s", smart, ov, pol)
				}
				if row.AvgJCT < spread.AvgJCT && row.P95JCT < spread.P95JCT {
					won = true
				}
			}
		}
		if !won {
			t.Errorf("at oversub %g:1 neither contention-aware nor phase-aware beat spread on avg+p95 for any end-host policy", ov)
		}
	}
	// The gap should be substantial at 4:1, not a rounding artifact.
	if gap := r.PlacementGap(4, scheduler.PolicyContentionAware); gap < 1.1 {
		t.Errorf("placement gap at 4:1 = %.3f, want >= 1.1", gap)
	}
	// Phase-aware actually shifts someone somewhere in the grid.
	shifted := 0
	for _, row := range r.Rows {
		if row.Placement == string(scheduler.PolicyPhaseAware) {
			shifted += row.ShiftedJobs
		}
	}
	if shifted == 0 {
		t.Error("phase-aware placement never shifted a job across the grid")
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil || buf.Len() == 0 {
		t.Fatalf("WriteCSV: %v (%d bytes)", err, buf.Len())
	}
	if r.Render() == "" {
		t.Fatal("Render returned empty output")
	}
}
