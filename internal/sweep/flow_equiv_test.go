package sweep

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/dl"
	"repro/internal/faults"
	"repro/internal/simnet"
)

// Chunk-vs-flow equivalence harness: the analytic flow fabric
// (internal/flownet) must reproduce the chunk fabric's per-job
// completion times within a pinned tolerance on every golden config
// shape — flat and leaf-spine, PS and collective, fault-free and
// faulted — while firing far fewer events. DESIGN.md §13 documents the
// model and where the tolerance comes from:
//
//   - uncontended configs agree to ~1e-9 (identical closed forms);
//   - contended configs agree within ~2% on JCTs because both fabrics
//     are work-conserving, so a burst's last completion — which is what
//     a synchronous barrier waits for — matches even though individual
//     flows share the NIC FIFO-style in one model and max-min in the
//     other;
//   - faulted configs carry a looser documented bound (5%): discrete
//     chunk loss + RTO retransmission against a fluid capacity derate,
//     and flap edges that land mid-chunk in one model and mid-fluid in
//     the other.
const (
	flowEquivTol       = 0.02 // contended, fault-free configs
	flowEquivFaultTol  = 0.05 // configs with injected faults
	flowEquivMinFewerX = 2.0  // flow mode must fire at least 2x fewer events
)

// runFlowEquivCase runs rc under both fabric modes and asserts per-job
// JCT agreement within tol, plus an event-count reduction.
func runFlowEquivCase(t *testing.T, rc RunConfig, tol float64) (*RunResult, *RunResult) {
	t.Helper()
	chunk := rc
	chunk.Cluster.Net.Mode = simnet.ModeChunk
	cres, err := Run(chunk)
	if err != nil {
		t.Fatalf("chunk run: %v", err)
	}
	flow := rc
	flow.Cluster.Net.Mode = simnet.ModeFlow
	fres, err := Run(flow)
	if err != nil {
		t.Fatalf("flow run: %v", err)
	}
	compareJCTs := func(kind string, c, f []float64) {
		if len(c) != len(f) {
			t.Fatalf("%s: chunk finished %d jobs, flow %d", kind, len(c), len(f))
		}
		for i := range c {
			rel := math.Abs(f[i]-c[i]) / c[i]
			if rel > tol {
				t.Errorf("%s job %d: chunk JCT %.4f, flow %.4f (%.2f%% > %.0f%%)",
					kind, i, c[i], f[i], 100*rel, 100*tol)
			}
		}
	}
	if len(cres.JCTs)+len(cres.CollectiveJCTs) == 0 {
		t.Fatal("chunk baseline finished no jobs; equivalence would be vacuous")
	}
	compareJCTs("ps", cres.JCTs, fres.JCTs)
	compareJCTs("collective", cres.CollectiveJCTs, fres.CollectiveJCTs)
	if ratio := float64(cres.Events) / float64(fres.Events); ratio < flowEquivMinFewerX {
		t.Errorf("flow mode fired %d events vs chunk %d (%.1fx fewer, want >= %gx)",
			fres.Events, cres.Events, ratio, flowEquivMinFewerX)
	}
	t.Logf("%s: chunk %d events, flow %d (%.1fx fewer); avg JCT %.4f vs %.4f",
		rc.Label, cres.Events, fres.Events,
		float64(cres.Events)/float64(fres.Events), cres.AvgJCT(), fres.AvgJCT())
	return cres, fres
}

// colocatedPSSpecs pins pairs of PS jobs onto shared PS hosts in cells
// of three hosts — the contended shape the tc/TensorLights path needs.
func colocatedPSSpecs(cells, steps int) []dl.JobSpec {
	var specs []dl.JobSpec
	for cell := 0; cell < cells; cell++ {
		base := 3 * cell
		for j := 0; j < 2; j++ {
			id := 2*cell + j
			specs = append(specs, dl.JobSpec{
				ID: id, Name: fmt.Sprintf("coloc-%02d", id), Model: dl.ResNet32,
				NumWorkers: 2, LocalBatch: 4, TargetGlobalSteps: steps,
				PSHost: base, PSPort: 5000 + id,
				WorkerHosts: []int{base + 1, base + 2},
			})
		}
	}
	return specs
}

// spreadPSSpecs places one job per cell on dedicated hosts — the
// uncontended shape where the two models agree almost exactly.
func spreadPSSpecs(cells, steps int) []dl.JobSpec {
	var specs []dl.JobSpec
	for cell := 0; cell < cells; cell++ {
		base := 3 * cell
		specs = append(specs, dl.JobSpec{
			ID: cell, Name: fmt.Sprintf("spread-%02d", cell), Model: dl.ResNet32,
			NumWorkers: 2, LocalBatch: 4, TargetGlobalSteps: steps,
			PSHost: base, PSPort: 5000 + cell,
			WorkerHosts: []int{base + 1, base + 2},
		})
	}
	return specs
}

// TestFlowEquivFlatSpread: uncontended flat PS jobs — the exactness
// case backing the <=2% headline bound (measured agreement is far
// tighter; the loop asserts the pinned tolerance).
func TestFlowEquivFlatSpread(t *testing.T) {
	rc := RunConfig{
		Label:      "flow-equiv-flat-spread",
		Cluster:    cluster.Config{Hosts: 12, Seed: 42},
		TLs:        core.Config{Policy: core.PolicyFIFO},
		StaggerSec: 0.05,
		PSSpecs:    spreadPSSpecs(4, 100),
	}
	runFlowEquivCase(t, rc, flowEquivTol)
}

// TestFlowEquivFlatColocatedPS: the contended shape — two jobs share
// each PS host under TLs-RR rotation, so the tc reconfiguration path
// (band install + rotation) drives in-flight reclassification.
func TestFlowEquivFlatColocatedPS(t *testing.T) {
	rc := RunConfig{
		Label:      "flow-equiv-flat-coloc",
		Cluster:    cluster.Config{Hosts: 12, Seed: 21},
		TLs:        core.Config{Policy: core.PolicyRR, IntervalSec: 0.5},
		StaggerSec: 0.05,
		PSSpecs:    colocatedPSSpecs(4, 100),
	}
	cres, _ := runFlowEquivCase(t, rc, flowEquivTol)
	if cres.Reconfigs == 0 {
		t.Fatal("colocated PSes never triggered a tc reconfiguration")
	}
}

// TestFlowEquivLeafSpine: cross-rack PS jobs on a routed fabric, so
// flows traverse ECMP core links in both models.
func TestFlowEquivLeafSpine(t *testing.T) {
	var specs []dl.JobSpec
	// Each job's PS sits in one rack, workers in the next: all update
	// traffic crosses the core.
	for j := 0; j < 4; j++ {
		base := 4 * j // rack j (4 hosts per rack on 16 hosts / 4 racks)
		specs = append(specs, dl.JobSpec{
			ID: j, Name: fmt.Sprintf("xrack-%02d", j), Model: dl.ResNet32,
			NumWorkers: 2, LocalBatch: 4, TargetGlobalSteps: 80,
			PSHost: base, PSPort: 5000 + j,
			WorkerHosts: []int{(base + 4) % 16, (base + 5) % 16},
		})
	}
	rc := RunConfig{
		Label: "flow-equiv-leafspine",
		Cluster: cluster.Config{
			Hosts: 16,
			Seed:  11,
			Net: simnet.Config{
				Topology: simnet.TopologyConfig{
					Kind:           simnet.TopologyLeafSpine,
					Racks:          4,
					UplinksPerLeaf: 2,
				},
			},
		},
		TLs:        core.Config{Policy: core.PolicyOne},
		StaggerSec: 0.05,
		PSSpecs:    specs,
	}
	chunk, _ := runFlowEquivCase(t, rc, flowEquivTol)
	var core int64
	for _, l := range chunk.LinkStats {
		core += l.Bytes
	}
	if core == 0 {
		t.Fatal("no cross-rack traffic; the leaf-spine case is vacuous")
	}
}

// TestFlowEquivCollective: mixed PS + ring all-reduce jobs sharing a
// leaf-spine fabric (the sharded golden's shape on one kernel).
func TestFlowEquivCollective(t *testing.T) {
	rings := [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}}
	rc := RunConfig{
		Label: "flow-equiv-collective",
		Cluster: cluster.Config{
			Hosts: 8,
			Seed:  3,
			Net: simnet.Config{
				Topology: simnet.TopologyConfig{
					Kind:           simnet.TopologyLeafSpine,
					Racks:          4,
					UplinksPerLeaf: 1,
				},
			},
		},
		TLs:             core.Config{Policy: core.PolicyRR, IntervalSec: 0.5},
		StaggerSec:      0.05,
		PSSpecs:         colocatedPSSpecs(2, 60),
		CollectiveSpecs: cluster.CollectiveSpecs(dl.ResNet32, rings, collective.Ring, 4, 15),
	}
	runFlowEquivCase(t, rc, flowEquivTol)
}

// TestFlowEquivFaults: NIC flaps, chunk-drop windows, a worker crash,
// tc outages and a core-link degrade. Discrete loss/retransmission vs
// fluid derate makes this the loosest documented bound.
func TestFlowEquivFaults(t *testing.T) {
	rc := RunConfig{
		Label: "flow-equiv-faults",
		Cluster: cluster.Config{
			Hosts: 24,
			Seed:  11,
			Net: simnet.Config{
				Topology: simnet.TopologyConfig{
					Kind:           simnet.TopologyLeafSpine,
					Racks:          12,
					UplinksPerLeaf: 2,
				},
			},
		},
		TLs:        core.Config{Policy: core.PolicyRR, IntervalSec: 0.5},
		StaggerSec: 0.05,
		PSSpecs:    colocatedPSSpecs(8, 60),
		Recovery: dl.RecoveryConfig{
			DetectTimeoutSec:  0.2,
			RestartBackoffSec: 0.05,
			MaxRestarts:       3,
		},
		Faults: faults.Plan{
			FlapHosts:       []int{0, 5, 13, 20},
			FlapFirstAtSec:  0.4,
			FlapEverySec:    1.5,
			FlapDurationSec: 0.2,
			FlapJitterSec:   0.3,
			DropProb:        0.03,
			HorizonSec:      4,
			Crashes:         []faults.CrashPlan{{Job: 1, Worker: 0, AtSec: 0.8}},
			TCOutages:       []faults.OutagePlan{{Host: -1, AtSec: 0.6, DurSec: 0.4}},
			CoreLinks:       []faults.CoreLinkPlan{{Link: 0, AtSec: 0.5, DurSec: 0.5, Factor: 0.4}},
		},
	}
	chunk, _ := runFlowEquivCase(t, rc, flowEquivFaultTol)
	fc := chunk.FaultCounts
	if fc.LinkFlaps == 0 || fc.DropWindows == 0 || fc.Crashes != 1 ||
		fc.TCOutages == 0 || fc.CoreLinkFaults != 1 {
		t.Fatalf("fault classes missing from the chunk baseline: %+v", fc)
	}
}
