package sweep

import (
	"bytes"
	"strings"
	"testing"
)

func benchReport(nsPerEvent float64) *BenchReport {
	return &BenchReport{
		GOMAXPROCS: 8, Parallelism: 4, Trials: 8, Steps: 600, Seed: 1,
		SequentialSec: 4, ParallelSec: 1.2,
		TrialsPerSecSequential: 2, TrialsPerSecParallel: 6.7, Speedup: 3.3,
		Events: 1e6, NsPerEvent: nsPerEvent, AllocsPerEvent: 0.01,
		FabricChunks: 8192, FabricNsPerChunk: 400,
	}
}

func TestBenchHistoryRoundTrip(t *testing.T) {
	h := &BenchHistory{}
	h.Append(BenchRun{GitSHA: "abc1234", Date: "2026-08-01", Report: benchReport(250)})
	h.Append(BenchRun{GitSHA: "def5678", Date: "2026-08-08", Report: benchReport(260)})
	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBenchHistory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 2 {
		t.Fatalf("want 2 runs after round trip, got %d", len(got.Runs))
	}
	if got.Last().GitSHA != "def5678" || got.Last().Report.NsPerEvent != 260 {
		t.Fatalf("last run corrupted: %+v", got.Last())
	}
}

func TestBenchHistoryMigratesLegacyReport(t *testing.T) {
	var buf bytes.Buffer
	if err := benchReport(250).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := LoadBenchHistory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Runs) != 1 {
		t.Fatalf("legacy report should migrate to 1 run, got %d", len(h.Runs))
	}
	if h.Runs[0].GitSHA != "" || h.Runs[0].Date != "" {
		t.Fatalf("migrated run should have no sha/date: %+v", h.Runs[0])
	}
	if h.Runs[0].Report == nil || h.Runs[0].Report.Trials != 8 {
		t.Fatalf("migrated report lost fields: %+v", h.Runs[0].Report)
	}
}

func TestBenchHistoryEmptyAndGarbageInput(t *testing.T) {
	h, err := LoadBenchHistory(strings.NewReader(""))
	if err != nil || len(h.Runs) != 0 {
		t.Fatalf("empty input: got %v, %d runs", err, len(h.Runs))
	}
	h, err = LoadBenchHistory(strings.NewReader("{}"))
	if err != nil || len(h.Runs) != 0 {
		t.Fatalf("empty object: got %v, %d runs", err, len(h.Runs))
	}
	if _, err := LoadBenchHistory(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage input should fail to load")
	}
}

func TestBenchHistoryRegressions(t *testing.T) {
	h := &BenchHistory{}
	h.Append(BenchRun{Report: benchReport(250)})
	if regs := h.Regressions(0.25); regs != nil {
		t.Fatalf("single run cannot regress: %v", regs)
	}

	// Within tolerance: no flags.
	h.Append(BenchRun{Report: benchReport(280)})
	if regs := h.Regressions(0.25); len(regs) != 0 {
		t.Fatalf("12%% ns/event rise should pass at 25%% tolerance: %v", regs)
	}

	// Kernel cost doubles and parallel throughput halves: both flagged.
	bad := benchReport(500)
	bad.TrialsPerSecParallel = 3
	h.Append(BenchRun{Report: bad})
	regs := h.Regressions(0.25)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions, got %v", regs)
	}
	joined := strings.Join(regs, "\n")
	if !strings.Contains(joined, "ns/event") || !strings.Contains(joined, "trials/sec (parallel)") {
		t.Fatalf("unexpected regression set: %v", regs)
	}

	// Different sizing: throughput is incomparable, only per-unit costs count.
	resized := benchReport(500)
	resized.Steps = 1200
	resized.TrialsPerSecParallel = 1
	h.Append(BenchRun{Report: resized})
	if regs := h.Regressions(0.25); len(regs) != 0 {
		t.Fatalf("resized run should not flag throughput: %v", regs)
	}
}
