package sweep

import (
	"context"
	"strings"
	"testing"

	"repro/internal/workload"
)

// The acceptance contract: one arrival stream mixes PS and collective
// jobs, every job finishes, and JCTs are measured from arrival.
func TestOpenWorldTrialMixesKinds(t *testing.T) {
	res, err := OpenWorldTrial(context.Background(), OpenWorldTrialConfig{
		Steps: 300, Seed: 42, Arrivals: "poisson",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PSJobs == 0 || res.CollectiveJobs == 0 {
		t.Errorf("stream ran %d PS and %d collective jobs; want both kinds", res.PSJobs, res.CollectiveJobs)
	}
	if res.PSJobs+res.CollectiveJobs != len(res.JCTs) {
		t.Errorf("kind counts %d+%d do not cover %d arrivals",
			res.PSJobs, res.CollectiveJobs, len(res.JCTs))
	}
	for i, jct := range res.JCTs {
		if jct <= 0 {
			t.Errorf("job %d has non-positive JCT %g", i, jct)
		}
	}
	if res.AvgJCT <= 0 || res.MakespanSec <= 0 || res.Events == 0 {
		t.Errorf("degenerate aggregates: %+v", res)
	}
}

// Trace replay must run the whole built-in trace, whatever Jobs says.
func TestOpenWorldTrialTraceReplay(t *testing.T) {
	res, err := OpenWorldTrial(context.Background(), OpenWorldTrialConfig{
		Steps: 300, Seed: 42, Arrivals: "trace", Jobs: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := len(workload.DemoTrace(10).Entries)
	if len(res.JCTs) != want {
		t.Errorf("trace replay ran %d jobs, want the whole trace (%d)", len(res.JCTs), want)
	}
	if res.PSJobs == 0 || res.CollectiveJobs == 0 {
		t.Errorf("demo trace ran %d PS and %d collective jobs; want both", res.PSJobs, res.CollectiveJobs)
	}
}

func TestOpenWorldTrialBursty(t *testing.T) {
	res, err := OpenWorldTrial(context.Background(), OpenWorldTrialConfig{
		Steps: 300, Seed: 42, Arrivals: "bursty", Jobs: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JCTs) != 6 {
		t.Errorf("ran %d jobs, want 6", len(res.JCTs))
	}
}

// Heterogeneous hosts (every third at 60% speed) must cost average JCT
// versus the otherwise-identical homogeneous run: the jobs are
// compute-bound enough that a slow host drags its barrier or ring.
func TestOpenWorldHeterogeneousSlower(t *testing.T) {
	base := OpenWorldTrialConfig{Steps: 300, Seed: 42, Arrivals: "poisson"}
	hom, err := OpenWorldTrial(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	het := base
	het.Heterogeneous = true
	slow, err := OpenWorldTrial(context.Background(), het)
	if err != nil {
		t.Fatal(err)
	}
	if slow.AvgJCT <= hom.AvgJCT {
		t.Errorf("heterogeneous avg JCT %.2f s not above homogeneous %.2f s",
			slow.AvgJCT, hom.AvgJCT)
	}
}

func TestOpenWorldTrialErrors(t *testing.T) {
	if _, err := OpenWorldTrial(context.Background(), OpenWorldTrialConfig{
		Steps: 300, Arrivals: "uniform",
	}); err == nil {
		t.Error("trial accepted an unknown arrival process")
	}
	if _, err := OpenWorldTrial(context.Background(), OpenWorldTrialConfig{
		Steps: 300, MixName: "chaos",
	}); err == nil {
		t.Error("trial accepted an unknown mix name")
	}
	if _, err := OpenWorldTrial(context.Background(), OpenWorldTrialConfig{
		Steps: 300, Arrivals: "trace",
		Trace: &workload.Trace{},
	}); err == nil {
		t.Error("trial accepted an empty trace")
	}
	bad := &workload.Trace{Entries: []workload.TraceEntry{{
		AtSec: 0, Kind: workload.KindPS, ModelName: "nope", Tasks: 3, LocalBatch: 4, Iterations: 5,
	}}}
	if _, err := OpenWorldTrial(context.Background(), OpenWorldTrialConfig{
		Steps: 300, Arrivals: "trace", Trace: bad,
	}); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("trial accepted an unknown trace model: %v", err)
	}
}

func TestOpenWorldResultLookups(t *testing.T) {
	r := &OpenWorldResult{Rows: []OpenWorldRow{
		{Arrivals: "poisson", Hosts: "hom", Policy: "FIFO", AvgJCT: 10},
		{Arrivals: "poisson", Hosts: "het", Policy: "FIFO", AvgJCT: 15},
		{Arrivals: "poisson", Hosts: "hom", Policy: "TLs-RR", AvgJCT: 8},
		{Arrivals: "poisson", Hosts: "het", Policy: "TLs-RR", AvgJCT: 12},
	}}
	row, ok := r.Row("poisson", true, "FIFO")
	if !ok || row.AvgJCT != 15 {
		t.Errorf("Row lookup wrong: %+v %v", row, ok)
	}
	if _, ok := r.Row("bursty", false, "FIFO"); ok {
		t.Error("Row found a missing cell")
	}
	if s := r.HeteroSlowdown("poisson"); s <= 1.0 || s >= 2.0 {
		t.Errorf("HeteroSlowdown = %g, want (27/2)/(18/2) = 1.5", s)
	}
	if out := r.Render(); !strings.Contains(out, "heterogeneous hosts cost") {
		t.Error("Render omits the heterogeneity headline")
	}
}

// The trial must be cancellable: a pre-cancelled context returns an
// error instead of running the simulation to completion.
func TestOpenWorldTrialCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := OpenWorldTrial(ctx, OpenWorldTrialConfig{Steps: 300, Seed: 42}); err == nil {
		t.Error("pre-cancelled trial returned no error")
	}
}
