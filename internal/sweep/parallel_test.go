package sweep

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/trace"
)

func TestEngineForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, par := range []int{0, 1, 2, 7, 100} {
		counts := make([]int32, 37)
		err := Engine{Parallelism: par}.ForEach(len(counts), func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("parallelism %d: index %d visited %d times", par, i, c)
			}
		}
	}
}

func TestEngineForEachReturnsLowestIndexError(t *testing.T) {
	// With several failing indices, the reported error must be the
	// lowest-index one no matter how workers interleave.
	for _, par := range []int{2, 4} {
		for rep := 0; rep < 20; rep++ {
			err := Engine{Parallelism: par}.ForEach(16, func(i int) error {
				if i == 3 || i == 11 {
					return fmt.Errorf("boom %d", i)
				}
				return nil
			})
			if err == nil || err.Error() != "boom 3" {
				t.Fatalf("parallelism %d: got %v, want boom 3", par, err)
			}
		}
	}
}

func TestEngineSequentialFailsFast(t *testing.T) {
	var ran []int
	sentinel := errors.New("stop")
	err := Engine{Parallelism: 1}.ForEach(10, func(i int) error {
		ran = append(ran, i)
		if i == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
	if len(ran) != 3 {
		t.Fatalf("sequential path ran %v after the failure, want fail-fast at index 2", ran)
	}
}

func TestEngineForEachZeroTrials(t *testing.T) {
	if err := (Engine{}).ForEach(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestGatherPreservesInputOrder(t *testing.T) {
	configs := make([]int, 25)
	for i := range configs {
		configs[i] = i * 10
	}
	out, err := Gather(Engine{Parallelism: 5}, configs, func(c int) (int, error) {
		return c + 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*10+1 {
			t.Fatalf("slot %d holds %d, want %d", i, v, i*10+1)
		}
	}
}

func TestGatherWrapsTrialError(t *testing.T) {
	sentinel := errors.New("bad trial")
	_, err := Gather(Engine{Parallelism: 3}, []int{0, 1, 2, 3}, func(c int) (int, error) {
		if c == 2 {
			return 0, sentinel
		}
		return c, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error chain lost the cause: %v", err)
	}
	if !strings.Contains(err.Error(), "trial 2") {
		t.Fatalf("error does not name the trial: %v", err)
	}
}

func TestGridTrialsCanonicalOrder(t *testing.T) {
	got := GridTrials([]string{"a", "b"}, []string{"x", "y"}, 100, 2)
	want := []Trial{
		{"a", "x", 100}, {"a", "x", 101},
		{"a", "y", 100}, {"a", "y", 101},
		{"b", "x", 100}, {"b", "x", 101},
		{"b", "y", 100}, {"b", "y", 101},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d trials, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trial %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestGridTrialsDegenerateAxes(t *testing.T) {
	got := GridTrials(nil, nil, 7, 0)
	if len(got) != 1 || got[0] != (Trial{Seed: 7}) {
		t.Fatalf("empty axes should yield one zero trial with the base seed, got %+v", got)
	}
}

// TestSharedTracerAcrossParallelTrials shares one trace.Buffer across
// every trial of a parallel RunMany — the exact aliasing a caller can
// create through RunConfig.Tracer. Before Buffer grew its mutex, this
// test failed under -race (concurrent Emit appends); it pins the fix.
func TestSharedTracerAcrossParallelTrials(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full trials")
	}
	shared := &trace.Buffer{}
	o := Options{Steps: 120, Seed: 1}
	o.fillDefaults()
	p1, err := cluster.PlacementByIndex(1)
	if err != nil {
		t.Fatal(err)
	}
	var rcs []RunConfig
	for i := 0; i < 4; i++ {
		rc := o.baseRun(p1, core.PolicyOne)
		rc.Cluster.Seed = int64(1 + i)
		rc.Label = fmt.Sprintf("shared-tracer-%d", i)
		rc.Tracer = shared
		rcs = append(rcs, rc)
	}
	if _, err := RunMany(rcs, 4); err != nil {
		t.Fatal(err)
	}
	if shared.Total() == 0 {
		t.Fatal("shared tracer saw no events; the race would go unexercised")
	}
}
