package sweep

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/dl"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

// Topology-experiment scale: a 3-rack leaf-spine cluster sized so each
// rack holds exactly one all-reduce ring. The workload is the
// collective experiment's communication-bound AlexNet rings — on them,
// placement decides whether 244 MB/rank/iteration of ring traffic stays
// inside a non-blocking leaf or fights for oversubscribed uplinks.
const (
	topoHosts   = 12
	topoRacks   = 3
	topoUplinks = 2
	topoRings   = 3
	topoRanks   = 4
)

// TopologyOversubs are the oversubscription ratios the sweep compares:
// non-blocking, the common 2:1, and a heavily oversubscribed 4:1 core.
var TopologyOversubs = []float64{1, 2, 4}

// TopologyStrategies are the placement strategies the sweep compares:
// the naive host-balancing spread against CASSINI-style network-aware
// packing. (Pack is omitted: with one ring per rack it equals
// network-aware here.)
var TopologyStrategies = []cluster.Strategy{cluster.StrategySpread, cluster.StrategyNetworkAware}

// topologyPolicyNames are the scheduling policies crossed with the
// fabric grid: the paper's three plus one telemetry-driven adaptive.
var topologyPolicyNames = []string{"FIFO", "TLs-One", "TLs-RR", "TLs-LAS"}

// TopologyRow is one (oversubscription, strategy, policy) cell.
type TopologyRow struct {
	Oversub  float64
	Strategy string
	Policy   string

	AvgJCT float64
	P95JCT float64
	// CrossRackRatio is leaf-uplink bytes over total NIC egress bytes:
	// 0 when every flow stays in its rack, approaching 1 when all
	// traffic crosses the core.
	CrossRackRatio float64
	// MaxLinkUtil is the busiest core link's busy fraction of the run.
	MaxLinkUtil float64
	Reconfigs   int
}

// TopologyResult is the topology experiment: the same collective
// workload swept across core oversubscription ratios, placement
// strategies and scheduling policies on a leaf-spine fabric. It
// separates what placement can fix (keeping elephants off the core)
// from what end-host scheduling can fix (ordering them at the NIC) —
// the axis the paper's single-switch testbed cannot explore.
type TopologyResult struct {
	Rows []TopologyRow
}

// Row returns the (oversub, strategy, policy) cell.
func (r *TopologyResult) Row(oversub float64, strategy, policy string) (TopologyRow, bool) {
	for _, row := range r.Rows {
		if row.Oversub == oversub && row.Strategy == strategy && row.Policy == policy {
			return row, true
		}
	}
	return TopologyRow{}, false
}

// PlacementGap returns naive-spread average JCT over network-aware
// average JCT at the given oversubscription ratio, pooled across
// policies (> 1 means network-aware placement wins).
func (r *TopologyResult) PlacementGap(oversub float64) float64 {
	var spread, aware []float64
	for _, row := range r.Rows {
		if row.Oversub != oversub {
			continue
		}
		switch row.Strategy {
		case string(cluster.StrategySpread):
			spread = append(spread, row.AvgJCT)
		case string(cluster.StrategyNetworkAware):
			aware = append(aware, row.AvgJCT)
		}
	}
	a := metrics.Mean(aware)
	if a <= 0 {
		return 0
	}
	return metrics.Mean(spread) / a
}

// Render prints the grid plus the headline placement gaps.
func (r *TopologyResult) Render() string {
	t := NewTable("Topology: leaf-spine placement x oversubscription x policy (AlexNet rings)",
		"oversub", "strategy", "policy", "avg JCT (s)", "p95 JCT (s)",
		"cross-rack", "max link util", "reconfigs")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%g:1", row.Oversub), row.Strategy, row.Policy,
			row.AvgJCT, row.P95JCT,
			fmt.Sprintf("%.2f", row.CrossRackRatio),
			fmt.Sprintf("%.2f", row.MaxLinkUtil), row.Reconfigs)
	}
	out := t.String()
	for _, ov := range TopologyOversubs {
		if gap := r.PlacementGap(ov); gap > 0 {
			out += fmt.Sprintf("oversub %g:1: naive spread avg JCT is %.2fx network-aware placement\n",
				ov, gap)
		}
	}
	return out
}

// topologyRunConfigs builds the oversub x strategy x policy grid.
func topologyRunConfigs(o Options) ([]RunConfig, error) {
	iters := o.Steps / 30
	if iters < 2 {
		iters = 2
	}
	var rcs []RunConfig
	for _, ov := range TopologyOversubs {
		topo := simnet.TopologyConfig{
			Kind:             simnet.TopologyLeafSpine,
			Racks:            topoRacks,
			UplinksPerLeaf:   topoUplinks,
			Oversubscription: ov,
		}
		for _, strat := range TopologyStrategies {
			rings, err := cluster.RackRingPlacement(topoRings, topoRanks, topoHosts, topo, strat)
			if err != nil {
				return nil, err
			}
			for _, pol := range topologyPolicyNames {
				cl := o.Cluster
				cl.Hosts = topoHosts
				cl.Seed = o.Seed
				cl.Net.Topology = topo
				rcs = append(rcs, RunConfig{
					Label:   fmt.Sprintf("topo-%g-%s-%s", ov, strat, pol),
					Cluster: cl,
					TLs:     topologyTLs(pol, o.Steps),
					CollectiveSpecs: cluster.CollectiveSpecs(dl.AlexNet, rings,
						collective.Ring, 1, iters),
				})
			}
		}
	}
	return rcs, nil
}

// topologyTLs mirrors the collective experiment's policy scaling:
// smallest-update-first ordering and rotation/telemetry periods scaled
// to the shortened run.
func topologyTLs(name string, steps int) core.Config {
	cfg := core.Config{PolicyName: name, Order: core.OrderSmallestUpdate}
	interval := float64(steps) / 200
	switch name {
	case "FIFO", "TLs-One":
	default:
		cfg.IntervalSec = interval
		cfg.FeedbackIntervalSec = interval / 2
	}
	return cfg
}

// TopologySweep runs the full grid.
func TopologySweep(o Options) (*TopologyResult, error) {
	o.fillDefaults()
	rcs, err := topologyRunConfigs(o)
	if err != nil {
		return nil, err
	}
	results, err := RunMany(rcs, o.Parallelism)
	if err != nil {
		return nil, err
	}
	out := &TopologyResult{}
	i := 0
	for _, ov := range TopologyOversubs {
		for _, strat := range TopologyStrategies {
			for _, pol := range topologyPolicyNames {
				res := results[i]
				i++
				var upBytes int64
				maxUtil := 0.0
				for _, ls := range res.LinkStats {
					if len(ls.Name) >= 4 && ls.Name[:4] == "leaf" {
						upBytes += ls.Bytes
					}
					if ls.Util > maxUtil {
						maxUtil = ls.Util
					}
				}
				ratio := 0.0
				if res.EgressBytes > 0 {
					ratio = float64(upBytes) / float64(res.EgressBytes)
				}
				out.Rows = append(out.Rows, TopologyRow{
					Oversub:        ov,
					Strategy:       string(strat),
					Policy:         pol,
					AvgJCT:         metrics.Mean(res.CollectiveJCTs),
					P95JCT:         metrics.Percentile(res.CollectiveJCTs, 0.95),
					CrossRackRatio: ratio,
					MaxLinkUtil:    maxUtil,
					Reconfigs:      res.Reconfigs,
				})
			}
		}
	}
	return out, nil
}
