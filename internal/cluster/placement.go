// Package cluster builds the simulated testbed (hosts with CPUs and
// NICs), encodes the paper's Table I parameter-server placements, and
// provides a small task scheduler plus a staggered job launcher.
package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// Placement describes how parameter servers of M concurrent jobs are
// grouped onto hosts, in the paper's "m1,...,mK" notation: mk jobs
// colocate their PSes on host k. Each job's workers then run on every
// other host (one worker per host), exactly as in Section III.
type Placement struct {
	// Index is the paper's placement number (1-based); 0 for custom.
	Index int
	// Groups are the colocation counts m1..mK.
	Groups []int
	// Hosts optionally pins group k's parameter servers to host
	// Hosts[k] instead of the default host k. Rack-aware placement
	// strategies use this to steer PS groups onto specific racks; empty
	// means the paper's implicit "group k on host k".
	Hosts []int
}

// String renders the placement like Table I ("5, 16"); pinned
// placements render each group with its host ("5@0, 16@4").
func (p Placement) String() string {
	parts := make([]string, len(p.Groups))
	for i, g := range p.Groups {
		if i < len(p.Hosts) {
			parts[i] = fmt.Sprintf("%d@%d", g, p.Hosts[i])
		} else {
			parts[i] = strconv.Itoa(g)
		}
	}
	return strings.Join(parts, ", ")
}

// Jobs returns the number of jobs the placement covers.
func (p Placement) Jobs() int {
	n := 0
	for _, g := range p.Groups {
		n += g
	}
	return n
}

// MaxColocation returns the largest PS group — the contention level.
func (p Placement) MaxColocation() int {
	m := 0
	for _, g := range p.Groups {
		if g > m {
			m = g
		}
	}
	return m
}

// Validate checks the placement fits the cluster. Group counts must be
// strictly positive (a zero or negative group is meaningless and would
// silently skew the job→host mapping), the placement must be non-empty,
// and the cluster dimensions themselves must be positive — a zero-job
// "valid" placement used to slip through and yield an empty PSHosts.
func (p Placement) Validate(numJobs, numHosts int) error {
	if numJobs < 1 {
		return fmt.Errorf("cluster: placement needs >=1 job, got %d", numJobs)
	}
	if numHosts < 1 {
		return fmt.Errorf("cluster: placement needs >=1 host, got %d", numHosts)
	}
	if len(p.Groups) == 0 {
		return fmt.Errorf("cluster: placement has no groups")
	}
	for _, g := range p.Groups {
		if g < 1 {
			return fmt.Errorf("cluster: placement %q has a zero or negative group", p.String())
		}
	}
	if p.Jobs() != numJobs {
		return fmt.Errorf("cluster: placement %q covers %d jobs, want %d",
			p.String(), p.Jobs(), numJobs)
	}
	if len(p.Groups) > numHosts {
		return fmt.Errorf("cluster: placement %q needs %d hosts, have %d",
			p.String(), len(p.Groups), numHosts)
	}
	if len(p.Hosts) > 0 {
		if len(p.Hosts) != len(p.Groups) {
			return fmt.Errorf("cluster: placement pins %d hosts for %d groups",
				len(p.Hosts), len(p.Groups))
		}
		seen := make(map[int]bool, len(p.Hosts))
		for _, h := range p.Hosts {
			if h < 0 || h >= numHosts {
				return fmt.Errorf("cluster: placement pins host %d outside [0,%d)", h, numHosts)
			}
			if seen[h] {
				return fmt.Errorf("cluster: placement pins host %d twice", h)
			}
			seen[h] = true
		}
	}
	return nil
}

// PSHosts returns the PS host for each job id 0..numJobs-1: group k's
// jobs land on host k (or on Hosts[k] when the placement pins hosts),
// filling groups in order.
func (p Placement) PSHosts(numJobs, numHosts int) ([]int, error) {
	if err := p.Validate(numJobs, numHosts); err != nil {
		return nil, err
	}
	hosts := make([]int, 0, numJobs)
	for k, g := range p.Groups {
		h := k
		if k < len(p.Hosts) {
			h = p.Hosts[k]
		}
		for i := 0; i < g; i++ {
			hosts = append(hosts, h)
		}
	}
	return hosts, nil
}

// ParsePlacement parses "5,16" or "5, 16" into a custom placement.
func ParsePlacement(s string) (Placement, error) {
	var p Placement
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return Placement{}, fmt.Errorf("cluster: bad placement element %q", part)
		}
		p.Groups = append(p.Groups, n)
	}
	if len(p.Groups) == 0 {
		return Placement{}, fmt.Errorf("cluster: empty placement %q", s)
	}
	return p, nil
}

// Placements21 returns the paper's Table I: the eight studied placements
// of 21 parameter servers over 21 hosts, from fully colocated (#1) to
// fully uniform (#8).
func Placements21() []Placement {
	mk := func(idx int, groups ...int) Placement {
		return Placement{Index: idx, Groups: groups}
	}
	ones := make([]int, 21)
	for i := range ones {
		ones[i] = 1
	}
	return []Placement{
		mk(1, 21),
		mk(2, 5, 16),
		mk(3, 10, 11),
		mk(4, 7, 7, 7),
		mk(5, 5, 5, 5, 6),
		mk(6, 4, 4, 4, 4, 5),
		mk(7, 3, 3, 3, 3, 3, 3, 3),
		{Index: 8, Groups: ones},
	}
}

// PlacementByIndex returns Table I's placement #idx.
func PlacementByIndex(idx int) (Placement, error) {
	for _, p := range Placements21() {
		if p.Index == idx {
			return p, nil
		}
	}
	return Placement{}, fmt.Errorf("cluster: no Table I placement #%d", idx)
}
