package cluster

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// TaskKind distinguishes PS from worker tasks. Production cluster
// schedulers (YARN, Borg, Mesos) are agnostic to it — which is exactly
// how PS colocation arises; the paper's §VII proposes making the
// scheduler PS-aware, implemented here as PolicyPSAware.
type TaskKind int

const (
	KindWorker TaskKind = iota
	KindPS
)

// String names the kind.
func (k TaskKind) String() string {
	if k == KindPS {
		return "ps"
	}
	return "worker"
}

// TaskReq is a placement request.
type TaskReq struct {
	JobID int
	Kind  TaskKind
	// CPUDemand is in hardware threads.
	CPUDemand float64
	// Exclude lists hosts the task must avoid (e.g. a job's workers
	// avoid its own PS host).
	Exclude []int
}

// SchedPolicy selects how the scheduler picks hosts.
type SchedPolicy int

const (
	// PolicySpread places on the least-loaded host (CPU demand).
	PolicySpread SchedPolicy = iota
	// PolicyBinpack places on the most-loaded host that still fits.
	PolicyBinpack
	// PolicyRandom places uniformly at random among fitting hosts.
	PolicyRandom
	// PolicyPSAware behaves like PolicySpread for workers but places
	// PS tasks on the host with the fewest PSes (ties by load) —
	// the paper's future-work direction 1.
	PolicyPSAware
)

// String names the policy.
func (p SchedPolicy) String() string {
	switch p {
	case PolicySpread:
		return "spread"
	case PolicyBinpack:
		return "binpack"
	case PolicyRandom:
		return "random"
	case PolicyPSAware:
		return "ps-aware"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Scheduler assigns tasks to hosts by CPU demand and policy.
type Scheduler struct {
	policy   SchedPolicy
	capacity []float64
	used     []float64
	psCount  []int
	rng      *sim.RNG
}

// NewScheduler creates a scheduler over hosts with uniform capacity.
func NewScheduler(policy SchedPolicy, hosts int, threadsPerHost float64, rng *sim.RNG) *Scheduler {
	s := &Scheduler{
		policy:   policy,
		capacity: make([]float64, hosts),
		used:     make([]float64, hosts),
		psCount:  make([]int, hosts),
		rng:      rng.Stream("scheduler"),
	}
	for i := range s.capacity {
		s.capacity[i] = threadsPerHost
	}
	return s
}

// Used returns the CPU demand currently placed on host h.
func (s *Scheduler) Used(h int) float64 { return s.used[h] }

// PSCount returns the number of PS tasks on host h.
func (s *Scheduler) PSCount(h int) int { return s.psCount[h] }

// Place selects a host for the request and commits the demand. Hosts
// may be oversubscribed (as in the paper's testbed, where ~21 worker
// tasks share 12 threads); "fit" for binpack means below 2x capacity.
func (s *Scheduler) Place(req TaskReq) (int, error) {
	excluded := make(map[int]bool, len(req.Exclude))
	for _, h := range req.Exclude {
		excluded[h] = true
	}
	var candidates []int
	for h := range s.capacity {
		if !excluded[h] {
			candidates = append(candidates, h)
		}
	}
	if len(candidates) == 0 {
		return -1, fmt.Errorf("cluster: no host available for job %d %s", req.JobID, req.Kind)
	}
	var pick int
	switch s.policy {
	case PolicySpread:
		pick = s.least(candidates, func(h int) float64 { return s.used[h] })
	case PolicyBinpack:
		fits := candidates[:0]
		for _, h := range candidates {
			if s.used[h]+req.CPUDemand <= 2*s.capacity[h] {
				fits = append(fits, h)
			}
		}
		if len(fits) == 0 {
			fits = candidates
		}
		pick = s.least(fits, func(h int) float64 { return -s.used[h] })
	case PolicyRandom:
		pick = candidates[s.rng.Intn(len(candidates))]
	case PolicyPSAware:
		if req.Kind == KindPS {
			pick = s.least(candidates, func(h int) float64 {
				return float64(s.psCount[h])*1e6 + s.used[h]
			})
		} else {
			pick = s.least(candidates, func(h int) float64 { return s.used[h] })
		}
	default:
		return -1, fmt.Errorf("cluster: unknown policy %v", s.policy)
	}
	s.used[pick] += req.CPUDemand
	if req.Kind == KindPS {
		s.psCount[pick]++
	}
	return pick, nil
}

// least returns the candidate minimizing score, ties by host id for
// determinism.
func (s *Scheduler) least(candidates []int, score func(int) float64) int {
	sorted := append([]int(nil), candidates...)
	sort.Ints(sorted)
	best := sorted[0]
	bestScore := score(best)
	for _, h := range sorted[1:] {
		if sc := score(h); sc < bestScore {
			best, bestScore = h, sc
		}
	}
	return best
}

// PlaceJobs runs the scheduler over numJobs PS+worker sets and returns
// the resulting Placement-equivalent PS assignment plus per-job worker
// hosts. Worker tasks avoid their own PS host, as in the paper.
func (s *Scheduler) PlaceJobs(numJobs, workersPerJob int) (psHosts []int, workerHosts [][]int, err error) {
	psHosts = make([]int, numJobs)
	workerHosts = make([][]int, numJobs)
	for j := 0; j < numJobs; j++ {
		ps, err := s.Place(TaskReq{JobID: j, Kind: KindPS, CPUDemand: 0.5})
		if err != nil {
			return nil, nil, err
		}
		psHosts[j] = ps
		seen := map[int]bool{ps: true}
		for w := 0; w < workersPerJob; w++ {
			var exclude []int
			for h := range seen {
				exclude = append(exclude, h)
			}
			host, err := s.Place(TaskReq{JobID: j, Kind: KindWorker, CPUDemand: 1, Exclude: exclude})
			if err != nil {
				return nil, nil, err
			}
			seen[host] = true
			workerHosts[j] = append(workerHosts[j], host)
		}
	}
	return psHosts, workerHosts, nil
}

// PSPlacementOf summarizes PS host assignments as a Placement (sorted
// group sizes), for comparing scheduler output against Table I.
func PSPlacementOf(psHosts []int) Placement {
	counts := map[int]int{}
	for _, h := range psHosts {
		counts[h]++
	}
	var groups []int
	for _, c := range counts {
		groups = append(groups, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(groups)))
	return Placement{Groups: groups}
}
