package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/dl"
	"repro/internal/sim"
)

func TestPlacements21TableI(t *testing.T) {
	ps := Placements21()
	if len(ps) != 8 {
		t.Fatalf("placements %d, want 8", len(ps))
	}
	wants := []string{
		"21", "5, 16", "10, 11", "7, 7, 7", "5, 5, 5, 6",
		"4, 4, 4, 4, 5", "3, 3, 3, 3, 3, 3, 3",
		"1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1",
	}
	for i, p := range ps {
		if p.Index != i+1 {
			t.Fatalf("placement %d has index %d", i, p.Index)
		}
		if p.String() != wants[i] {
			t.Fatalf("placement #%d renders %q, want %q", p.Index, p.String(), wants[i])
		}
		if p.Jobs() != 21 {
			t.Fatalf("placement #%d covers %d jobs", p.Index, p.Jobs())
		}
		if err := p.Validate(21, 21); err != nil {
			t.Fatalf("placement #%d invalid: %v", p.Index, err)
		}
	}
	// Later placements are more uniform: max colocation non-increasing.
	for i := 1; i < len(ps); i++ {
		if ps[i].MaxColocation() > ps[i-1].MaxColocation() {
			t.Fatal("Table I ordering broken")
		}
	}
}

func TestPlacementByIndex(t *testing.T) {
	p, err := PlacementByIndex(4)
	if err != nil || p.String() != "7, 7, 7" {
		t.Fatalf("%v %v", p, err)
	}
	if _, err := PlacementByIndex(9); err == nil {
		t.Fatal("placement #9 accepted")
	}
}

func TestPSHosts(t *testing.T) {
	p, _ := PlacementByIndex(2) // 5, 16
	hosts, err := p.PSHosts(21, 21)
	if err != nil {
		t.Fatal(err)
	}
	count := map[int]int{}
	for _, h := range hosts {
		count[h]++
	}
	if count[0] != 5 || count[1] != 16 {
		t.Fatalf("PS distribution %v", count)
	}
}

func TestPlacementValidateErrors(t *testing.T) {
	cases := []struct {
		name    string
		groups  []int
		jobs    int
		hosts   int
		wantErr bool
	}{
		{"valid", []int{5, 16}, 21, 21, false},
		{"single group", []int{21}, 21, 21, false},
		{"exact hosts", []int{1, 1}, 2, 2, false},
		{"job count mismatch", []int{5, 16}, 20, 21, true},
		{"too few hosts", []int{5, 16}, 21, 1, true},
		{"zero group", []int{21, 0}, 21, 21, true},
		{"negative group", []int{22, -1}, 21, 21, true},
		{"no groups", nil, 21, 21, true},
		{"zero jobs", nil, 0, 21, true},
		{"negative jobs", []int{-3}, -3, 21, true},
		{"zero hosts", []int{1}, 1, 0, true},
		{"negative hosts", []int{1}, 1, -1, true},
	}
	for _, c := range cases {
		p := Placement{Groups: c.groups}
		err := p.Validate(c.jobs, c.hosts)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: Validate(%d,%d) on %v = %v, wantErr=%v",
				c.name, c.jobs, c.hosts, c.groups, err, c.wantErr)
		}
	}
}

func TestParsePlacement(t *testing.T) {
	p, err := ParsePlacement("5, 16")
	if err != nil || p.String() != "5, 16" {
		t.Fatalf("%v %v", p, err)
	}
	p, err = ParsePlacement("7,7,7")
	if err != nil || len(p.Groups) != 3 {
		t.Fatalf("%v %v", p, err)
	}
	for _, bad := range []string{"", "a,b", "0,21", "-1"} {
		if _, err := ParsePlacement(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestGridSearchSpecs(t *testing.T) {
	cfg := Config{}
	p, _ := PlacementByIndex(1)
	specs, err := GridSearchSpecs(cfg, dl.ResNet32, 21, 4, 3000, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 21 {
		t.Fatalf("specs %d", len(specs))
	}
	for id, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatalf("spec %d: %v", id, err)
		}
		if s.PSHost != 0 {
			t.Fatalf("placement #1 must put every PS on host 0, job %d on %d", id, s.PSHost)
		}
		if s.NumWorkers != 20 {
			t.Fatalf("job %d workers %d", id, s.NumWorkers)
		}
		if s.PSPort != 5000+id {
			t.Fatalf("job %d port %d", id, s.PSPort)
		}
		seen := map[int]bool{}
		for _, h := range s.WorkerHosts {
			if h == s.PSHost || seen[h] {
				t.Fatalf("job %d bad worker host %d", id, h)
			}
			seen[h] = true
		}
	}
}

func TestGridSearchSpecsWorkerLoadBalance(t *testing.T) {
	// Every host runs exactly (21 - #PSes on it) workers.
	cfg := Config{}
	for _, idx := range []int{1, 2, 4, 8} {
		p, _ := PlacementByIndex(idx)
		specs, err := GridSearchSpecs(cfg, dl.ResNet32, 21, 4, 100, p)
		if err != nil {
			t.Fatal(err)
		}
		workerCount := make([]int, 21)
		psCount := make([]int, 21)
		for _, s := range specs {
			psCount[s.PSHost]++
			for _, h := range s.WorkerHosts {
				workerCount[h]++
			}
		}
		for h := 0; h < 21; h++ {
			if workerCount[h] != 21-psCount[h] {
				t.Fatalf("placement #%d host %d: %d workers with %d PSes",
					idx, h, workerCount[h], psCount[h])
			}
		}
	}
}

func TestTestbedConstruction(t *testing.T) {
	tb := NewTestbed(Config{})
	if tb.Fabric.NumHosts() != 21 || len(tb.CPUs) != 21 {
		t.Fatal("default testbed size")
	}
	if tb.CPUs[0].Threads() != 12 {
		t.Fatal("default threads")
	}
	tb2 := NewTestbed(Config{Hosts: 4, ThreadsPerHost: 2})
	if tb2.Fabric.NumHosts() != 4 || tb2.CPUs[3].Threads() != 2 {
		t.Fatal("custom testbed size")
	}
}

func TestLaunchStaggering(t *testing.T) {
	tb := NewTestbed(Config{Hosts: 4, Seed: 1})
	var starts []float64
	specs := []dl.JobSpec{
		{ID: 0, Model: dl.ResNet32, NumWorkers: 2, LocalBatch: 1, TargetGlobalSteps: 4,
			PSHost: 0, PSPort: 5000, WorkerHosts: []int{1, 2}},
		{ID: 1, Model: dl.ResNet32, NumWorkers: 2, LocalBatch: 1, TargetGlobalSteps: 4,
			PSHost: 3, PSPort: 5001, WorkerHosts: []int{1, 2}},
	}
	jobs, err := tb.Launch(specs, 0.5, func(j *dl.Job) {
		starts = append(starts, tb.K.Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.RunToCompletion(jobs, 0)
	if len(starts) != 2 || starts[0] != 0 || starts[1] != 0.5 {
		t.Fatalf("stagger times %v", starts)
	}
	for _, j := range jobs {
		if !j.Done() {
			t.Fatal("launched job unfinished")
		}
	}
}

func TestLaunchRejectsBadSpec(t *testing.T) {
	tb := NewTestbed(Config{Hosts: 4})
	_, err := tb.Launch([]dl.JobSpec{{ID: 0}}, 0.1, nil)
	if err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestSchedulerSpread(t *testing.T) {
	s := NewScheduler(PolicySpread, 4, 12, sim.NewRNG(1))
	hosts := map[int]int{}
	for i := 0; i < 8; i++ {
		h, err := s.Place(TaskReq{JobID: i, Kind: KindWorker, CPUDemand: 1})
		if err != nil {
			t.Fatal(err)
		}
		hosts[h]++
	}
	for h := 0; h < 4; h++ {
		if hosts[h] != 2 {
			t.Fatalf("spread imbalanced: %v", hosts)
		}
	}
}

func TestSchedulerBinpack(t *testing.T) {
	s := NewScheduler(PolicyBinpack, 4, 12, sim.NewRNG(1))
	first, _ := s.Place(TaskReq{CPUDemand: 1})
	second, _ := s.Place(TaskReq{CPUDemand: 1})
	if first != second {
		t.Fatalf("binpack spread tasks: %d then %d", first, second)
	}
}

func TestSchedulerPSAware(t *testing.T) {
	s := NewScheduler(PolicyPSAware, 4, 12, sim.NewRNG(1))
	psHosts := map[int]int{}
	for i := 0; i < 8; i++ {
		h, err := s.Place(TaskReq{JobID: i, Kind: KindPS, CPUDemand: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		psHosts[h]++
	}
	for h := 0; h < 4; h++ {
		if psHosts[h] != 2 {
			t.Fatalf("ps-aware did not spread PSes: %v", psHosts)
		}
	}
	if s.PSCount(0) != 2 {
		t.Fatal("PSCount")
	}
}

func TestSchedulerRandomRespectsExclusion(t *testing.T) {
	s := NewScheduler(PolicyRandom, 4, 12, sim.NewRNG(1))
	for i := 0; i < 50; i++ {
		h, err := s.Place(TaskReq{CPUDemand: 0.1, Exclude: []int{0, 1, 2}})
		if err != nil {
			t.Fatal(err)
		}
		if h != 3 {
			t.Fatalf("excluded host %d chosen", h)
		}
	}
}

func TestSchedulerNoHostAvailable(t *testing.T) {
	s := NewScheduler(PolicySpread, 2, 12, sim.NewRNG(1))
	if _, err := s.Place(TaskReq{Exclude: []int{0, 1}}); err == nil {
		t.Fatal("exhausted exclusion accepted")
	}
}

func TestPlaceJobs(t *testing.T) {
	s := NewScheduler(PolicyPSAware, 21, 12, sim.NewRNG(1))
	psHosts, workerHosts, err := s.PlaceJobs(21, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(psHosts) != 21 || len(workerHosts) != 21 {
		t.Fatal("sizes")
	}
	for j := range psHosts {
		for _, w := range workerHosts[j] {
			if w == psHosts[j] {
				t.Fatalf("job %d worker on its PS host", j)
			}
		}
	}
	// PS-aware placement of 21 jobs on 21 hosts is Table I's #8.
	p := PSPlacementOf(psHosts)
	if p.MaxColocation() != 1 {
		t.Fatalf("ps-aware placement %v", p)
	}
}

func TestPSPlacementOf(t *testing.T) {
	p := PSPlacementOf([]int{0, 0, 0, 1, 1, 2})
	if p.String() != "3, 2, 1" {
		t.Fatalf("got %q", p.String())
	}
}

func TestKindAndPolicyStrings(t *testing.T) {
	if KindPS.String() != "ps" || KindWorker.String() != "worker" {
		t.Fatal("kind strings")
	}
	for _, p := range []SchedPolicy{PolicySpread, PolicyBinpack, PolicyRandom, PolicyPSAware} {
		if p.String() == "" {
			t.Fatal("policy string empty")
		}
	}
}

// Property: any random grouping that sums to the job count yields a
// valid PSHosts assignment covering all jobs.
func TestPlacementProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		var groups []int
		total := 0
		for _, r := range raw {
			g := int(r%5) + 1
			if total+g > 21 {
				break
			}
			groups = append(groups, g)
			total += g
		}
		if total < 21 {
			if 21-total > 0 {
				groups = append(groups, 21-total)
			}
		}
		p := Placement{Groups: groups}
		hosts, err := p.PSHosts(21, 21)
		if err != nil {
			return false
		}
		return len(hosts) == 21
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
