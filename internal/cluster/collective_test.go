package cluster

import (
	"testing"

	"repro/internal/collective"
	"repro/internal/dl"
)

func TestRingPlacement(t *testing.T) {
	// stride 0: all rings aligned on the same hosts.
	rings, err := RingPlacement(3, 4, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rings {
		want := []int{0, 1, 2, 3}
		for k := range want {
			if r[k] != want[k] {
				t.Fatalf("ring %d = %v", i, r)
			}
		}
	}
	// stride 1: rings stagger and wrap.
	rings, err = RingPlacement(3, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r := rings[2]; r[0] != 2 || r[3] != 1 {
		t.Fatalf("staggered ring %v", r)
	}
	for _, bad := range [][4]int{
		{0, 4, 8, 0},  // no jobs
		{1, 1, 8, 0},  // one-rank ring
		{1, 9, 8, 0},  // ring larger than cluster
		{1, 4, 8, -1}, // negative stride
	} {
		if _, err := RingPlacement(bad[0], bad[1], bad[2], bad[3]); err == nil {
			t.Fatalf("RingPlacement(%v) accepted", bad)
		}
	}
}

func TestCollectiveSpecsAndLaunch(t *testing.T) {
	tb := NewTestbed(Config{Hosts: 4, Seed: 1})
	rings, err := RingPlacement(2, 3, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	specs := CollectiveSpecs(dl.ResNet32, rings, collective.Ring, 4, 2)
	if specs[0].ID != CollectiveIDBase || specs[1].ID != CollectiveIDBase+1 {
		t.Fatalf("ids %d %d", specs[0].ID, specs[1].ID)
	}
	if specs[0].Port == specs[1].Port {
		t.Fatal("jobs share a collective port")
	}
	var started []int
	jobs, err := tb.LaunchCollective(specs, 0.1, func(j *collective.Job) {
		started = append(started, j.Spec.ID)
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.RunMixedToCompletion(nil, jobs, 0)
	if len(started) != 2 {
		t.Fatalf("onStart fired %d times", len(started))
	}
	for _, j := range jobs {
		if !j.Done() {
			t.Fatalf("job %d unfinished", j.Spec.ID)
		}
	}
	// Stagger: job 1 started 0.1s after job 0.
	if jobs[1].StartedAt-jobs[0].StartedAt != 0.1 {
		t.Fatalf("stagger %g", jobs[1].StartedAt-jobs[0].StartedAt)
	}
}

func TestLaunchCollectiveRejectsBadSpec(t *testing.T) {
	tb := NewTestbed(Config{Hosts: 4, Seed: 1})
	specs := CollectiveSpecs(dl.ResNet32, [][]int{{0}}, collective.Ring, 4, 2)
	if _, err := tb.LaunchCollective(specs, 0, nil); err == nil {
		t.Fatal("one-rank ring accepted")
	}
}

func TestMixedClusterCompletes(t *testing.T) {
	tb := NewTestbed(Config{Hosts: 4, Seed: 1})
	p := Placement{Groups: []int{2}}
	psSpecs, err := GridSearchSpecs(tb.Cfg, dl.ResNet32, 2, 4, 30, p)
	if err != nil {
		t.Fatal(err)
	}
	rings, _ := RingPlacement(1, 3, 4, 1)
	// Shift the ring off host 0 (the PS host) so worker/PS placement
	// constraints don't matter; here we only care that both workloads
	// drive to completion on one kernel.
	for k := range rings[0] {
		rings[0][k]++
	}
	cSpecs := CollectiveSpecs(dl.ResNet32, rings, collective.Ring, 4, 5)
	psJobs, err := tb.Launch(psSpecs, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	cJobs, err := tb.LaunchCollective(cSpecs, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	tb.RunMixedToCompletion(psJobs, cJobs, 0)
	for _, j := range psJobs {
		if !j.Done() {
			t.Fatalf("PS job %d unfinished", j.Spec.ID)
		}
	}
	if !cJobs[0].Done() {
		t.Fatal("collective job unfinished")
	}
}
