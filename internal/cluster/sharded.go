package cluster

import (
	"fmt"

	"repro/internal/dl"
	"repro/internal/simnet"
)

// ShardStableSpecs builds a grid-search-style workload whose jobs are
// each confined to one shard of the given plan: job j runs entirely —
// PS and workers — on the hosts of shard j mod NumShards, with the PS
// rotating over the shard's hosts as jobs stack up. Under such a
// placement every byte of cluster traffic stays inside one shard, so a
// sharded engine can simulate each shard's jobs on its own kernel and
// merge results without any cross-shard traffic (the fabric-level
// cross-shard handoff is still exercised by simnet's own tests).
//
// The spec list is identical for every shard count that yields the
// same plan host blocks — callers comparing shardings must derive the
// specs from one canonical plan (see sweep.RunSharded).
func ShardStableSpecs(cfg Config, plan *simnet.ShardPlan, m dl.Model, numJobs, localBatch, targetSteps int) ([]dl.JobSpec, error) {
	cfg.fillDefaults()
	n := plan.NumShards()
	shardHosts := make([][]int, n)
	for h := 0; h < cfg.Hosts; h++ {
		s := plan.HostShard(h)
		shardHosts[s] = append(shardHosts[s], h)
	}
	for s, hosts := range shardHosts {
		if len(hosts) < 2 {
			return nil, fmt.Errorf("cluster: shard %d has %d hosts; need >= 2 (PS + worker)", s, len(hosts))
		}
	}
	specs := make([]dl.JobSpec, numJobs)
	for id := 0; id < numJobs; id++ {
		hosts := shardHosts[id%n]
		ps := hosts[(id/n)%len(hosts)]
		var workers []int
		for _, h := range hosts {
			if h != ps {
				workers = append(workers, h)
			}
		}
		specs[id] = dl.JobSpec{
			ID:                id,
			Name:              fmt.Sprintf("grid-%02d", id),
			Model:             m,
			NumWorkers:        len(workers),
			LocalBatch:        localBatch,
			TargetGlobalSteps: targetSteps,
			PSHost:            ps,
			PSPort:            5000 + id,
			WorkerHosts:       workers,
		}
	}
	return specs, nil
}

// SpecShard returns the shard a spec's hosts live on under the plan, or
// an error if the spec straddles shards (not shard-stable).
func SpecShard(spec dl.JobSpec, plan *simnet.ShardPlan) (int, error) {
	s := plan.HostShard(spec.PSHost)
	for _, h := range spec.WorkerHosts {
		if plan.HostShard(h) != s {
			return 0, fmt.Errorf("cluster: job %d straddles shards %d and %d (host %d)",
				spec.ID, s, plan.HostShard(h), h)
		}
	}
	return s, nil
}

// CollectiveShard returns the shard a collective ring lives on, or an
// error if its hosts straddle shards.
func CollectiveShard(id int, hosts []int, plan *simnet.ShardPlan) (int, error) {
	if len(hosts) == 0 {
		return 0, fmt.Errorf("cluster: collective job %d has no hosts", id)
	}
	s := plan.HostShard(hosts[0])
	for _, h := range hosts[1:] {
		if plan.HostShard(h) != s {
			return 0, fmt.Errorf("cluster: collective job %d straddles shards %d and %d (host %d)",
				id, s, plan.HostShard(h), h)
		}
	}
	return s, nil
}
