package cluster

import (
	"fmt"
	"sort"

	"repro/internal/simnet"
)

// Strategy names a rack-aware placement policy. Strategies only matter
// on multi-rack topologies; on the flat switch every strategy collapses
// to the paper's default placement.
type Strategy string

const (
	// StrategyPack fills racks one at a time: jobs land on the fewest
	// racks possible, concentrating NIC contention but keeping traffic
	// off the oversubscribed core.
	StrategyPack Strategy = "pack"
	// StrategySpread round-robins jobs across racks — the naive
	// "balance the hosts" policy that maximizes cross-rack traffic.
	StrategySpread Strategy = "spread"
	// StrategyNetworkAware places to minimize bytes crossing the
	// oversubscribed core (CASSINI-style): collective rings are packed
	// into single racks and balanced across them; PS groups are spread
	// so no rack's uplinks carry more than their share of the
	// unavoidable worker fan-in.
	StrategyNetworkAware Strategy = "network-aware"
)

// ParseStrategy validates a strategy name ("" = spread).
func ParseStrategy(s string) (Strategy, error) {
	switch Strategy(s) {
	case "":
		return StrategySpread, nil
	case StrategyPack, StrategySpread, StrategyNetworkAware:
		return Strategy(s), nil
	}
	return "", fmt.Errorf("cluster: unknown placement strategy %q (want pack, spread or network-aware)", s)
}

// RackAwarePlacement pins a PS placement's groups onto hosts according
// to the strategy. Groups keep their Table I colocation counts; only
// which host (and so which rack) each group occupies changes. Workers
// still run on every non-PS host, so a PS job's fan-in inevitably
// crosses racks; pack concentrates the PS-side uplink load on one rack
// while spread and network-aware balance it across all of them.
func RackAwarePlacement(p Placement, numHosts int, topo simnet.TopologyConfig, strat Strategy) (Placement, error) {
	if err := topo.ValidateFor(numHosts); err != nil {
		return Placement{}, err
	}
	racks := topo.NumRacksFor(numHosts)
	if racks <= 1 {
		return p, nil
	}
	if len(p.Groups) > numHosts {
		return Placement{}, fmt.Errorf("cluster: placement %q needs %d hosts, have %d",
			p.String(), len(p.Groups), numHosts)
	}
	hostsPerRack := numHosts / racks
	pinned := p
	pinned.Hosts = make([]int, len(p.Groups))
	switch strat {
	case StrategyPack:
		// Host k in rack-major order — the default layout already packs.
		for k := range pinned.Hosts {
			pinned.Hosts[k] = k
		}
	case StrategySpread, StrategyNetworkAware:
		// Largest groups first across racks, so the heaviest PS fan-ins
		// land on distinct uplink sets; slot g/racks within the rack.
		order := make([]int, len(p.Groups))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return p.Groups[order[a]] > p.Groups[order[b]]
		})
		for g, k := range order {
			rack := g % racks
			slot := g / racks
			if slot >= hostsPerRack {
				return Placement{}, fmt.Errorf("cluster: placement %q does not fit %d racks of %d hosts",
					p.String(), racks, hostsPerRack)
			}
			pinned.Hosts[k] = rack*hostsPerRack + slot
		}
	default:
		return Placement{}, fmt.Errorf("cluster: unknown placement strategy %q", strat)
	}
	return pinned, nil
}

// RackRingPlacement places numJobs all-reduce rings of ranksPerJob
// ranks each over a multi-rack topology. On a single-rack (flat)
// topology it falls back to RingPlacement with stride ranksPerJob.
//
//   - pack packs each ring entirely inside one rack (error if a ring
//     does not fit), assigning rings to racks round-robin.
//   - spread puts consecutive ranks of a ring in different racks, so
//     every ring edge crosses the core — the worst case an
//     oversubscribed fabric can see.
//   - network-aware packs like pack but balances ring load across
//     racks by spare capacity, the placement a CASSINI-style scheduler
//     would pick.
func RackRingPlacement(numJobs, ranksPerJob, numHosts int, topo simnet.TopologyConfig, strat Strategy) ([][]int, error) {
	if err := topo.ValidateFor(numHosts); err != nil {
		return nil, err
	}
	racks := topo.NumRacksFor(numHosts)
	if racks <= 1 {
		return RingPlacement(numJobs, ranksPerJob, numHosts, ranksPerJob)
	}
	if numJobs < 1 {
		return nil, fmt.Errorf("cluster: ring placement needs >=1 job, got %d", numJobs)
	}
	if ranksPerJob < 2 {
		return nil, fmt.Errorf("cluster: ring placement needs >=2 ranks per job, got %d", ranksPerJob)
	}
	if ranksPerJob > numHosts {
		return nil, fmt.Errorf("cluster: ring of %d ranks does not fit %d hosts",
			ranksPerJob, numHosts)
	}
	hostsPerRack := numHosts / racks
	rings := make([][]int, numJobs)
	switch strat {
	case StrategyPack, StrategyNetworkAware:
		if ranksPerJob > hostsPerRack {
			return nil, fmt.Errorf("cluster: %s cannot fit a ring of %d ranks in racks of %d hosts",
				strat, ranksPerJob, hostsPerRack)
		}
		// Rings round-robin across racks; within a rack, successive
		// rings shift so their NICs overlap as little as possible. For
		// pack vs network-aware the rack choice differs: pack fills
		// rack 0 before touching rack 1, network-aware balances.
		perRack := make([]int, racks)
		for i := 0; i < numJobs; i++ {
			rack := 0
			if strat == StrategyNetworkAware {
				for r := 1; r < racks; r++ {
					if perRack[r] < perRack[rack] {
						rack = r
					}
				}
			} else {
				rack = (i * ranksPerJob / hostsPerRack) % racks
			}
			ring := make([]int, ranksPerJob)
			for k := 0; k < ranksPerJob; k++ {
				ring[k] = rack*hostsPerRack + (perRack[rack]*ranksPerJob+k)%hostsPerRack
			}
			perRack[rack]++
			rings[i] = ring
		}
	case StrategySpread:
		// Rank k of ring i on rack k%racks: every hop crosses the core.
		for i := 0; i < numJobs; i++ {
			ring := make([]int, ranksPerJob)
			for k := 0; k < ranksPerJob; k++ {
				rack := k % racks
				slot := (i + k/racks) % hostsPerRack
				ring[k] = rack*hostsPerRack + slot
			}
			rings[i] = ring
		}
	default:
		return nil, fmt.Errorf("cluster: unknown placement strategy %q", strat)
	}
	return rings, nil
}

// OrderRingByRack reorders a ring's hosts to group same-rack hosts
// consecutively, minimizing the number of ring edges that cross racks
// (a ring visiting R racks needs at least R crossings, and grouping
// achieves exactly R). The relative order within each rack and the
// rack-first-seen order are preserved, so the result is deterministic.
func OrderRingByRack(ring []int, numHosts int, topo simnet.TopologyConfig) []int {
	out := make([]int, 0, len(ring))
	seen := make(map[int]bool)
	for _, h := range ring {
		if seen[h] {
			continue
		}
		r := topo.RackOfHost(h, numHosts)
		out = append(out, h)
		seen[h] = true
		for _, h2 := range ring {
			if !seen[h2] && topo.RackOfHost(h2, numHosts) == r {
				out = append(out, h2)
				seen[h2] = true
			}
		}
	}
	return out
}

// CrossRackHops counts the ring edges (including the wraparound edge)
// whose endpoints sit in different racks.
func CrossRackHops(ring []int, numHosts int, topo simnet.TopologyConfig) int {
	if len(ring) < 2 {
		return 0
	}
	n := 0
	for i, h := range ring {
		next := ring[(i+1)%len(ring)]
		if topo.RackOfHost(h, numHosts) != topo.RackOfHost(next, numHosts) {
			n++
		}
	}
	return n
}
