package cluster

import (
	"errors"
	"testing"

	"repro/internal/simnet"
)

func ls(racks int) simnet.TopologyConfig {
	return simnet.TopologyConfig{Kind: simnet.TopologyLeafSpine, Racks: racks}
}

func TestParseStrategy(t *testing.T) {
	for _, s := range []string{"", "pack", "spread", "network-aware"} {
		if _, err := ParseStrategy(s); err != nil {
			t.Fatalf("ParseStrategy(%q): %v", s, err)
		}
	}
	if _, err := ParseStrategy("random"); err == nil {
		t.Fatal("ParseStrategy should reject unknown strategies")
	}
}

func TestRackAwarePlacementFlatIsIdentity(t *testing.T) {
	p := Placement{Index: 6, Groups: []int{4, 4, 4, 4, 5}}
	got, err := RackAwarePlacement(p, 21, simnet.TopologyConfig{}, StrategySpread)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Hosts) != 0 || got.String() != p.String() {
		t.Fatalf("flat topology must leave the placement unpinned, got %q", got.String())
	}
}

func TestRackAwarePlacementSpread(t *testing.T) {
	// 12 hosts, 3 racks of 4. Three PS groups must land on three racks.
	p := Placement{Groups: []int{3, 2, 1}}
	got, err := RackAwarePlacement(p, 12, ls(3), StrategySpread)
	if err != nil {
		t.Fatal(err)
	}
	topo := ls(3)
	racks := map[int]bool{}
	for _, h := range got.Hosts {
		racks[topo.RackOfHost(h, 12)] = true
	}
	if len(racks) != 3 {
		t.Fatalf("spread put groups on %d racks (hosts %v), want 3", len(racks), got.Hosts)
	}
	// Placement semantics preserved: same group sizes, valid mapping.
	hosts, err := got.PSHosts(6, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 6 {
		t.Fatalf("PSHosts len %d", len(hosts))
	}
}

func TestRackAwarePlacementPack(t *testing.T) {
	p := Placement{Groups: []int{2, 2}}
	got, err := RackAwarePlacement(p, 12, ls(3), StrategyPack)
	if err != nil {
		t.Fatal(err)
	}
	topo := ls(3)
	for _, h := range got.Hosts {
		if topo.RackOfHost(h, 12) != 0 {
			t.Fatalf("pack placed a group outside rack 0: hosts %v", got.Hosts)
		}
	}
}

func TestRackRingPlacementPack(t *testing.T) {
	topo := ls(3)
	rings, err := RackRingPlacement(3, 4, 12, topo, StrategyPack)
	if err != nil {
		t.Fatal(err)
	}
	for i, ring := range rings {
		if CrossRackHops(ring, 12, topo) != 0 {
			t.Fatalf("pack ring %d crosses racks: %v", i, ring)
		}
	}
	// A ring larger than a rack cannot pack.
	if _, err := RackRingPlacement(1, 5, 12, topo, StrategyPack); err == nil {
		t.Fatal("pack should reject a 5-rank ring in 4-host racks")
	}
}

func TestRackRingPlacementSpread(t *testing.T) {
	topo := ls(3)
	rings, err := RackRingPlacement(3, 4, 12, topo, StrategySpread)
	if err != nil {
		t.Fatal(err)
	}
	for i, ring := range rings {
		if CrossRackHops(ring, 12, topo) < 3 {
			t.Fatalf("spread ring %d crosses only %d rack boundaries: %v",
				i, CrossRackHops(ring, 12, topo), ring)
		}
		seen := map[int]bool{}
		for _, h := range ring {
			if seen[h] {
				t.Fatalf("ring %d repeats host %d: %v", i, h, ring)
			}
			seen[h] = true
		}
	}
}

func TestRackRingPlacementNetworkAwareBalances(t *testing.T) {
	topo := ls(3)
	rings, err := RackRingPlacement(3, 4, 12, topo, StrategyNetworkAware)
	if err != nil {
		t.Fatal(err)
	}
	perRack := map[int]int{}
	for _, ring := range rings {
		if CrossRackHops(ring, 12, topo) != 0 {
			t.Fatalf("network-aware ring crosses racks: %v", ring)
		}
		perRack[topo.RackOfHost(ring[0], 12)]++
	}
	// 3 rings over 3 racks must land one per rack.
	for r := 0; r < 3; r++ {
		if perRack[r] != 1 {
			t.Fatalf("network-aware rack load %v, want one ring per rack", perRack)
		}
	}
}

func TestRackRingPlacementValidation(t *testing.T) {
	var terr *simnet.TopologyError
	_, err := RackRingPlacement(1, 4, 10, ls(3), StrategyPack)
	if !errors.As(err, &terr) {
		t.Fatalf("indivisible hosts: err %v, want *simnet.TopologyError", err)
	}
}

func TestOrderRingByRack(t *testing.T) {
	topo := ls(3)
	// Alternating racks: worst-case order with 6 crossings.
	ring := []int{0, 4, 1, 5, 2, 6}
	if got := CrossRackHops(ring, 12, topo); got != 6 {
		t.Fatalf("precondition: %d crossings, want 6", got)
	}
	ordered := OrderRingByRack(ring, 12, topo)
	if got := CrossRackHops(ordered, 12, topo); got != 2 {
		t.Fatalf("ordered ring %v has %d crossings, want 2", ordered, got)
	}
	if len(ordered) != len(ring) {
		t.Fatalf("ordered ring lost hosts: %v", ordered)
	}
}

func TestPlacementPinnedHostsValidation(t *testing.T) {
	cases := []struct {
		name string
		p    Placement
		ok   bool
	}{
		{"valid pins", Placement{Groups: []int{2, 1}, Hosts: []int{4, 0}}, true},
		{"wrong pin count", Placement{Groups: []int{2, 1}, Hosts: []int{4}}, false},
		{"pin out of range", Placement{Groups: []int{2, 1}, Hosts: []int{4, 12}}, false},
		{"duplicate pin", Placement{Groups: []int{2, 1}, Hosts: []int{4, 4}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate(3, 12)
			if tc.ok && err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("Validate should fail")
			}
		})
	}
	hosts, err := (Placement{Groups: []int{2, 1}, Hosts: []int{4, 0}}).PSHosts(3, 12)
	if err != nil {
		t.Fatal(err)
	}
	if hosts[0] != 4 || hosts[1] != 4 || hosts[2] != 0 {
		t.Fatalf("pinned PSHosts %v", hosts)
	}
}

func TestTestbedBuildsLeafSpine(t *testing.T) {
	tb := NewTestbed(Config{Hosts: 12, Net: simnet.Config{Topology: ls(3)}})
	if got := len(tb.Fabric.CoreLinks()); got != 12 {
		t.Fatalf("testbed core links %d, want 12 (3 racks x 2 uplinks x up+down)", got)
	}
}
