package cluster

import (
	"repro/internal/policy"
	"repro/internal/qdisc"
	"repro/internal/simnet"
)

// QdiscProbe implements policy.Probe over the simulated fabric: it
// reads per-band dequeue counters from each host's egress qdisc (when
// the installed qdisc is classful) and the NIC backlog. It is the
// simulation analogue of polling `tc -s class show` and the interface
// queue on a real host — everything TensorLights' feedback loop needs
// is observable from outside the application.
type QdiscProbe struct {
	Fabric *simnet.Fabric
}

// NewQdiscProbe returns a probe over the fabric.
func NewQdiscProbe(f *simnet.Fabric) QdiscProbe { return QdiscProbe{Fabric: f} }

// BandDequeuedBytes returns the host's cumulative per-band dequeued
// bytes, or nil when the installed qdisc exposes no per-band counters.
func (p QdiscProbe) BandDequeuedBytes(host int) map[int]uint64 {
	if host < 0 || host >= p.Fabric.NumHosts() {
		return nil
	}
	// The analytic flow fabric moves no chunks through the qdisc, so its
	// band counters stay zero; the fabric keeps the per-band totals.
	if m := p.Fabric.FlowBandBytes(host); m != nil {
		return m
	}
	if bc, ok := p.Fabric.Host(host).Egress.Qdisc().(qdisc.BandCounter); ok {
		return bc.BandDequeuedBytes()
	}
	return nil
}

// BacklogBytes returns the bytes queued at the host's egress.
func (p QdiscProbe) BacklogBytes(host int) int64 {
	if host < 0 || host >= p.Fabric.NumHosts() {
		return 0
	}
	return p.Fabric.Host(host).Egress.QueuedBytes()
}

var _ policy.Probe = QdiscProbe{}
