package cluster

import (
	"context"
	"fmt"

	"repro/internal/collective"
	"repro/internal/dl"
)

// CollectiveIDBase offsets collective job ids so they never collide
// with PS job ids (0..numJobs-1) in mixed clusters.
const CollectiveIDBase = 1000

// collectivePortBase spaces collective job ports well clear of PS ports
// (5000+id) and worker ports (30000+); job i claims port 7000+100*i and
// its ranks' receive ports follow it.
const collectivePortBase = 7000

// RingPlacement places numJobs all-reduce rings of ranksPerJob ranks
// each over numHosts hosts: job i's rank k runs on host
// (i*stride + k) mod numHosts. stride 0 aligns every ring on the same
// hosts (maximal NIC contention, the collective analogue of Table I's
// fully colocated placement #1); stride 1 staggers rings one host
// apart; stride >= ranksPerJob makes rings disjoint while they fit.
func RingPlacement(numJobs, ranksPerJob, numHosts, stride int) ([][]int, error) {
	if numJobs < 1 {
		return nil, fmt.Errorf("cluster: ring placement needs >=1 job, got %d", numJobs)
	}
	if ranksPerJob < 2 {
		return nil, fmt.Errorf("cluster: ring placement needs >=2 ranks per job, got %d", ranksPerJob)
	}
	if ranksPerJob > numHosts {
		return nil, fmt.Errorf("cluster: ring of %d ranks does not fit %d hosts",
			ranksPerJob, numHosts)
	}
	if stride < 0 {
		return nil, fmt.Errorf("cluster: negative ring stride %d", stride)
	}
	rings := make([][]int, numJobs)
	for i := 0; i < numJobs; i++ {
		ring := make([]int, ranksPerJob)
		for k := 0; k < ranksPerJob; k++ {
			ring[k] = (i*stride + k) % numHosts
		}
		rings[i] = ring
	}
	return rings, nil
}

// CollectiveSpecs builds one all-reduce job per ring, mirroring
// GridSearchSpecs for the collective workload: identical synchronous
// jobs (grid-search instances) differing only in placement and port.
func CollectiveSpecs(m dl.Model, rings [][]int, alg collective.Algorithm,
	localBatch, targetIters int) []collective.JobSpec {
	specs := make([]collective.JobSpec, len(rings))
	for i, ring := range rings {
		specs[i] = collective.JobSpec{
			ID:               CollectiveIDBase + i,
			Name:             fmt.Sprintf("allreduce-%02d", i),
			Model:            m,
			Algorithm:        alg,
			Hosts:            ring,
			LocalBatch:       localBatch,
			TargetIterations: targetIters,
			Port:             collectivePortBase + 100*i,
		}
	}
	return specs
}

// LaunchCollective creates the all-reduce jobs and schedules their
// starts staggerSec apart, mirroring Launch. onStart, if non-nil, fires
// at each job's start time — TensorLights hooks job arrivals here.
func (tb *Testbed) LaunchCollective(specs []collective.JobSpec, staggerSec float64,
	onStart func(*collective.Job)) ([]*collective.Job, error) {
	offsets := make([]float64, len(specs))
	for i := range offsets {
		offsets[i] = float64(i) * staggerSec
	}
	return tb.LaunchCollectiveAt(specs, offsets, onStart)
}

// LaunchCollectiveAt is LaunchCollective with an explicit start offset
// per spec, mirroring LaunchAt for sharded runs.
func (tb *Testbed) LaunchCollectiveAt(specs []collective.JobSpec, offsets []float64,
	onStart func(*collective.Job)) ([]*collective.Job, error) {
	if len(offsets) != len(specs) {
		return nil, fmt.Errorf("cluster: %d offsets for %d collective specs", len(offsets), len(specs))
	}
	jobs := make([]*collective.Job, len(specs))
	for i, spec := range specs {
		j, err := collective.NewJob(tb.Env, spec)
		if err != nil {
			return nil, err
		}
		jobs[i] = j
	}
	for i, j := range jobs {
		j := j
		cb := onStart
		tb.K.Post(tb.K.Now()+offsets[i], func() {
			j.Start()
			if cb != nil {
				cb(j)
			}
		})
	}
	return jobs, nil
}

// RunMixedToCompletion drives the kernel until every PS job and every
// collective job finishes or fails. maxEvents guards against runaway
// simulations (0 = default guard).
func (tb *Testbed) RunMixedToCompletion(jobs []*dl.Job, cjobs []*collective.Job, maxEvents uint64) {
	_ = tb.RunMixedToCompletionCtx(context.Background(), jobs, cjobs, maxEvents)
}

// ctxCheckEvery is how many kernel events fire between context polls in
// RunMixedToCompletionCtx. Polling a context is a synchronized channel
// peek; amortizing it keeps the ~ns/event hot loop unaffected while
// still bounding cancellation latency to a few thousand events.
const ctxCheckEvery = 4096

// RunMixedToCompletionCtx is RunMixedToCompletion with cancellation:
// when ctx is cancelled the kernel stops between events (the simulation
// state stays consistent — no event is half-fired) and the context's
// error is returned. A nil or never-cancelled ctx reproduces
// RunMixedToCompletion exactly, event for event.
func (tb *Testbed) RunMixedToCompletionCtx(ctx context.Context, jobs []*dl.Job, cjobs []*collective.Job, maxEvents uint64) error {
	if maxEvents == 0 {
		maxEvents = 500_000_000
	}
	if ctx == nil {
		ctx = context.Background()
	}
	tb.K.MaxEvents = maxEvents
	done := ctx.Done()
	cancelled := done != nil && ctx.Err() != nil
	var sinceCheck int
	tb.K.Run(func() bool {
		if cancelled {
			return true
		}
		if done != nil {
			sinceCheck++
			if sinceCheck >= ctxCheckEvery {
				sinceCheck = 0
				select {
				case <-done:
					cancelled = true
					return true
				default:
				}
			}
		}
		for _, j := range jobs {
			if !j.Done() && !j.Failed() {
				return false
			}
		}
		for _, j := range cjobs {
			if !j.Done() && !j.Failed() {
				return false
			}
		}
		return true
	})
	if cancelled {
		return ctx.Err()
	}
	return nil
}
