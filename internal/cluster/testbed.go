package cluster

import (
	"fmt"

	"repro/internal/cpusim"
	"repro/internal/dl"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tc"
)

// Config sizes the simulated testbed. Defaults reproduce the paper's:
// 21 hosts, six 3.5 GHz dual-hyperthreaded cores (12 hardware threads)
// each, all links 10 Gbps through one switch.
type Config struct {
	Hosts          int
	ThreadsPerHost float64
	// HostSpeedFactors optionally scales per-host CPU speed (index =
	// host id; missing entries default to 1.0). Use it to model a
	// heterogeneous cluster with compute-bound straggler hosts.
	HostSpeedFactors []float64
	Net              simnet.Config
	Seed             int64
}

func (c *Config) fillDefaults() {
	if c.Hosts <= 0 {
		c.Hosts = 21
	}
	if c.ThreadsPerHost <= 0 {
		c.ThreadsPerHost = 12
	}
}

// Testbed bundles the substrate a workload runs on.
type Testbed struct {
	Cfg    Config
	K      *sim.Kernel
	Fabric *simnet.Fabric
	CPUs   []*cpusim.CPU
	RNG    *sim.RNG
	TC     *tc.Controller
	Env    *dl.Env
}

// NewTestbed builds hosts, NICs and CPUs on a fresh kernel.
func NewTestbed(cfg Config) *Testbed {
	cfg.fillDefaults()
	k := sim.NewKernel()
	rng := sim.NewRNG(cfg.Seed)
	fab := simnet.New(k, rng, cfg.Net)
	cpus := make([]*cpusim.CPU, cfg.Hosts)
	for i := 0; i < cfg.Hosts; i++ {
		fab.AddHost(fmt.Sprintf("host%02d", i))
		cpus[i] = cpusim.NewCPU(k, cfg.ThreadsPerHost)
		if i < len(cfg.HostSpeedFactors) && cfg.HostSpeedFactors[i] > 0 {
			cpus[i].SetSpeed(cfg.HostSpeedFactors[i])
		}
	}
	// Force the topology build now that the host set is final: an
	// invalid rack/host combination fails here, before any workload
	// runs, and fault plans can address core links immediately.
	fab.Topology()
	tb := &Testbed{
		Cfg:    cfg,
		K:      k,
		Fabric: fab,
		CPUs:   cpus,
		RNG:    rng,
		TC:     tc.NewController(fab),
	}
	tb.Env = &dl.Env{K: k, Fabric: fab, CPUs: cpus, RNG: rng}
	return tb
}

// GridSearchSpecs builds the paper's workload: numJobs identical
// synchronous jobs (grid-search instances) with PSes placed per the
// placement and one worker per job on every non-PS host.
func GridSearchSpecs(cfg Config, m dl.Model, numJobs, localBatch, targetSteps int, p Placement) ([]dl.JobSpec, error) {
	cfg.fillDefaults()
	psHosts, err := p.PSHosts(numJobs, cfg.Hosts)
	if err != nil {
		return nil, err
	}
	specs := make([]dl.JobSpec, numJobs)
	for id := 0; id < numJobs; id++ {
		var workers []int
		for h := 0; h < cfg.Hosts; h++ {
			if h != psHosts[id] {
				workers = append(workers, h)
			}
		}
		specs[id] = dl.JobSpec{
			ID:                id,
			Name:              fmt.Sprintf("grid-%02d", id),
			Model:             m,
			NumWorkers:        len(workers),
			LocalBatch:        localBatch,
			TargetGlobalSteps: targetSteps,
			PSHost:            psHosts[id],
			PSPort:            5000 + id,
			WorkerHosts:       workers,
		}
	}
	return specs, nil
}

// Launch creates the jobs and schedules their starts staggerSec apart
// (0.1 s in the paper, to avoid overloading RPC/SSH setup). onStart, if
// non-nil, fires at each job's start time — TensorLights hooks job
// arrivals here.
func (tb *Testbed) Launch(specs []dl.JobSpec, staggerSec float64, onStart func(*dl.Job)) ([]*dl.Job, error) {
	jobs := make([]*dl.Job, len(specs))
	for i, spec := range specs {
		j, err := dl.NewJob(tb.Env, spec)
		if err != nil {
			return nil, err
		}
		jobs[i] = j
	}
	for i, j := range jobs {
		j := j
		tb.K.Post(tb.K.Now()+float64(i)*staggerSec, func() {
			j.Start()
			if onStart != nil {
				onStart(j)
			}
		})
	}
	return jobs, nil
}

// RunToCompletion drives the kernel until every job finishes or fails
// (a job that lost all its workers never reaches Done). maxEvents
// guards against runaway simulations (0 = default guard).
func (tb *Testbed) RunToCompletion(jobs []*dl.Job, maxEvents uint64) {
	tb.RunMixedToCompletion(jobs, nil, maxEvents)
}
