package cluster

import (
	"fmt"

	"repro/internal/cpusim"
	"repro/internal/dl"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tc"
)

// Config sizes the simulated testbed. Defaults reproduce the paper's:
// 21 hosts, six 3.5 GHz dual-hyperthreaded cores (12 hardware threads)
// each, all links 10 Gbps through one switch.
type Config struct {
	Hosts          int
	ThreadsPerHost float64
	// HostSpeedFactors optionally scales per-host CPU speed (index =
	// host id; missing entries default to 1.0). Use it to model a
	// heterogeneous cluster with compute-bound straggler hosts.
	HostSpeedFactors []float64
	Net              simnet.Config
	Seed             int64
}

func (c *Config) fillDefaults() {
	if c.Hosts <= 0 {
		c.Hosts = 21
	}
	if c.ThreadsPerHost <= 0 {
		c.ThreadsPerHost = 12
	}
}

// Normalized returns the config with defaults filled in, so callers
// that size data structures off Hosts (e.g. shard planning) see the
// same host count the testbed will be built with.
func (c Config) Normalized() Config {
	c.fillDefaults()
	return c
}

// Testbed bundles the substrate a workload runs on.
type Testbed struct {
	Cfg    Config
	K      *sim.Kernel
	Fabric *simnet.Fabric
	CPUs   []*cpusim.CPU
	RNG    *sim.RNG
	TC     *tc.Controller
	Env    *dl.Env
}

// NewTestbed builds hosts, NICs and CPUs on a fresh kernel.
func NewTestbed(cfg Config) *Testbed {
	return NewTestbedOn(sim.NewKernel(), cfg)
}

// NewTestbedOn builds the testbed on a caller-supplied kernel. The
// sharded simulation engine uses it to stand up one full testbed
// replica per shard kernel; everything else about construction (host
// set, topology build, RNG derivation from cfg.Seed) is identical to
// NewTestbed, so replicas built from the same config draw the same
// per-host random streams.
func NewTestbedOn(k *sim.Kernel, cfg Config) *Testbed {
	cfg.fillDefaults()
	rng := sim.NewRNG(cfg.Seed)
	fab := simnet.New(k, rng, cfg.Net)
	cpus := make([]*cpusim.CPU, cfg.Hosts)
	for i := 0; i < cfg.Hosts; i++ {
		fab.AddHost(fmt.Sprintf("host%02d", i))
		speed := 1.0
		if i < len(cfg.HostSpeedFactors) && cfg.HostSpeedFactors[i] > 0 {
			speed = cfg.HostSpeedFactors[i]
		}
		cpus[i] = cpusim.NewCPUAtSpeed(k, cfg.ThreadsPerHost, speed)
	}
	// Force the topology build now that the host set is final: an
	// invalid rack/host combination fails here, before any workload
	// runs, and fault plans can address core links immediately.
	fab.Topology()
	tb := &Testbed{
		Cfg:    cfg,
		K:      k,
		Fabric: fab,
		CPUs:   cpus,
		RNG:    rng,
		TC:     tc.NewController(fab),
	}
	tb.Env = &dl.Env{K: k, Fabric: fab, CPUs: cpus, RNG: rng}
	return tb
}

// GridSearchSpecs builds the paper's workload: numJobs identical
// synchronous jobs (grid-search instances) with PSes placed per the
// placement and one worker per job on every non-PS host.
func GridSearchSpecs(cfg Config, m dl.Model, numJobs, localBatch, targetSteps int, p Placement) ([]dl.JobSpec, error) {
	cfg.fillDefaults()
	psHosts, err := p.PSHosts(numJobs, cfg.Hosts)
	if err != nil {
		return nil, err
	}
	specs := make([]dl.JobSpec, numJobs)
	for id := 0; id < numJobs; id++ {
		var workers []int
		for h := 0; h < cfg.Hosts; h++ {
			if h != psHosts[id] {
				workers = append(workers, h)
			}
		}
		specs[id] = dl.JobSpec{
			ID:                id,
			Name:              fmt.Sprintf("grid-%02d", id),
			Model:             m,
			NumWorkers:        len(workers),
			LocalBatch:        localBatch,
			TargetGlobalSteps: targetSteps,
			PSHost:            psHosts[id],
			PSPort:            5000 + id,
			WorkerHosts:       workers,
		}
	}
	return specs, nil
}

// Launch creates the jobs and schedules their starts staggerSec apart
// (0.1 s in the paper, to avoid overloading RPC/SSH setup). onStart, if
// non-nil, fires at each job's start time — TensorLights hooks job
// arrivals here.
func (tb *Testbed) Launch(specs []dl.JobSpec, staggerSec float64, onStart func(*dl.Job)) ([]*dl.Job, error) {
	offsets := make([]float64, len(specs))
	for i := range offsets {
		offsets[i] = float64(i) * staggerSec
	}
	return tb.LaunchAt(specs, offsets, onStart)
}

// LaunchAt is Launch with an explicit start offset (seconds from now)
// per spec. A sharded run launches each shard's job subset with the
// offsets the jobs would have had in the global launch order, so
// arrival times are independent of the sharding.
func (tb *Testbed) LaunchAt(specs []dl.JobSpec, offsets []float64, onStart func(*dl.Job)) ([]*dl.Job, error) {
	if len(offsets) != len(specs) {
		return nil, fmt.Errorf("cluster: %d offsets for %d specs", len(offsets), len(specs))
	}
	jobs := make([]*dl.Job, len(specs))
	for i, spec := range specs {
		j, err := dl.NewJob(tb.Env, spec)
		if err != nil {
			return nil, err
		}
		jobs[i] = j
	}
	for i, j := range jobs {
		j := j
		cb := onStart
		tb.K.Post(tb.K.Now()+offsets[i], func() {
			j.Start()
			if cb != nil {
				cb(j)
			}
		})
	}
	return jobs, nil
}

// RunToCompletion drives the kernel until every job finishes or fails
// (a job that lost all its workers never reaches Done). maxEvents
// guards against runaway simulations (0 = default guard).
func (tb *Testbed) RunToCompletion(jobs []*dl.Job, maxEvents uint64) {
	tb.RunMixedToCompletion(jobs, nil, maxEvents)
}
