package cpusim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestSingleTaskExactTiming(t *testing.T) {
	k := sim.NewKernel()
	c := NewCPU(k, 4)
	done := -1.0
	c.Submit(2.5, 1, func() { done = k.Now() })
	k.Run(nil)
	if math.Abs(done-2.5) > 1e-9 {
		t.Fatalf("finished at %v, want 2.5", done)
	}
	if c.Completed() != 1 {
		t.Fatal("completed count")
	}
}

func TestUndersubscribedRunsAtFullSpeed(t *testing.T) {
	k := sim.NewKernel()
	c := NewCPU(k, 4)
	var finish []float64
	for i := 0; i < 3; i++ {
		c.Submit(1.0, 1, func() { finish = append(finish, k.Now()) })
	}
	k.Run(nil)
	for _, f := range finish {
		if math.Abs(f-1.0) > 1e-9 {
			t.Fatalf("3 tasks on 4 threads must run unslowed, got %v", finish)
		}
	}
}

func TestOversubscribedProcessorSharing(t *testing.T) {
	k := sim.NewKernel()
	c := NewCPU(k, 2)
	var finish []float64
	for i := 0; i < 4; i++ {
		c.Submit(1.0, 1, func() { finish = append(finish, k.Now()) })
	}
	k.Run(nil)
	// 4 demand on 2 threads -> everyone at half speed -> 2.0 s.
	for _, f := range finish {
		if math.Abs(f-2.0) > 1e-9 {
			t.Fatalf("processor sharing wrong: %v", finish)
		}
	}
}

func TestSpeedupChangesOnCompletion(t *testing.T) {
	k := sim.NewKernel()
	c := NewCPU(k, 1)
	var longDone float64
	c.Submit(1.0, 1, nil)
	c.Submit(2.0, 1, func() { longDone = k.Now() })
	k.Run(nil)
	// Both share 1 thread: short finishes at 2 (each got 0.5 rate),
	// then long runs alone: 1 unit left at full speed -> 3.0.
	if math.Abs(longDone-3.0) > 1e-9 {
		t.Fatalf("long task finished at %v, want 3.0", longDone)
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	k := sim.NewKernel()
	c := NewCPU(k, 2)
	c.Submit(1.0, 1, nil)
	c.Submit(1.0, 1, nil)
	c.Submit(1.0, 1, nil)
	k.Run(nil)
	// Total work = 3 thread-seconds regardless of sharing.
	if math.Abs(c.BusyTime()-3.0) > 1e-9 {
		t.Fatalf("busy time %v, want 3.0", c.BusyTime())
	}
}

func TestCancelPreventsCallback(t *testing.T) {
	k := sim.NewKernel()
	c := NewCPU(k, 1)
	fired := false
	task := c.Submit(1.0, 1, func() { fired = true })
	c.Cancel(task)
	k.Run(nil)
	if fired {
		t.Fatal("canceled task fired")
	}
	if c.Active() != 0 {
		t.Fatal("canceled task still active")
	}
	c.Cancel(task) // double cancel is a no-op
	c.Cancel(nil)
}

func TestCancelRestoresSpeed(t *testing.T) {
	k := sim.NewKernel()
	c := NewCPU(k, 1)
	var done float64
	keep := c.Submit(2.0, 1, func() { done = k.Now() })
	_ = keep
	drop := c.Submit(10.0, 1, nil)
	k.ScheduleAfter(1.0, func() { c.Cancel(drop) })
	k.Run(nil)
	// First second shared (0.5 done), then full speed for remaining 1.5.
	if math.Abs(done-2.5) > 1e-9 {
		t.Fatalf("finished at %v, want 2.5", done)
	}
}

func TestZeroWorkCompletes(t *testing.T) {
	k := sim.NewKernel()
	c := NewCPU(k, 1)
	fired := false
	c.Submit(0, 1, func() { fired = true })
	k.Run(nil)
	if !fired {
		t.Fatal("zero-work task never completed")
	}
}

func TestSubmitFromCallback(t *testing.T) {
	k := sim.NewKernel()
	c := NewCPU(k, 1)
	var second float64
	c.Submit(1.0, 1, func() {
		c.Submit(1.0, 1, func() { second = k.Now() })
	})
	k.Run(nil)
	if math.Abs(second-2.0) > 1e-9 {
		t.Fatalf("chained task finished at %v", second)
	}
}

func TestDemandClamping(t *testing.T) {
	k := sim.NewKernel()
	c := NewCPU(k, 4)
	var done float64
	c.Submit(1.0, 7, func() { done = k.Now() }) // demand clamps to 1
	k.Run(nil)
	if math.Abs(done-1.0) > 1e-9 {
		t.Fatalf("demand>1 not clamped: %v", done)
	}
	c.Submit(1.0, -1, nil) // demand defaults to 1, no panic
	k.Run(nil)
}

func TestFractionalDemand(t *testing.T) {
	k := sim.NewKernel()
	c := NewCPU(k, 1)
	var done float64
	c.Submit(1.0, 0.5, func() { done = k.Now() })
	k.Run(nil)
	// Demand 0.5 alone on 1 thread: rate 0.5 -> 2 s.
	if math.Abs(done-2.0) > 1e-9 {
		t.Fatalf("fractional demand timing %v", done)
	}
}

func TestNegativeWorkPanics(t *testing.T) {
	k := sim.NewKernel()
	c := NewCPU(k, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative work accepted")
		}
	}()
	c.Submit(-1, 1, nil)
}

func TestBadThreadsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero threads accepted")
		}
	}()
	NewCPU(sim.NewKernel(), 0)
}

// Property: total busy time equals total completed work for any batch of
// task sizes, and every task completes.
func TestWorkConservationProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		k := sim.NewKernel()
		c := NewCPU(k, 3)
		total := 0.0
		n := 0
		for _, s := range sizes {
			w := float64(s%50) / 10
			total += w
			n++
			c.Submit(w, 1, nil)
		}
		k.Run(nil)
		return math.Abs(c.BusyTime()-total) < 1e-6 && c.Completed() == uint64(n) && c.Active() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: staggered arrivals never finish before their work/speedup
// bound and never exceed the fully-serialized bound.
func TestTimingBoundsProperty(t *testing.T) {
	f := func(sizes []uint8, gaps []uint8) bool {
		k := sim.NewKernel()
		c := NewCPU(k, 2)
		at := 0.0
		total := 0.0
		ok := true
		for i, s := range sizes {
			w := float64(s%40)/10 + 0.1
			total += w
			if i < len(gaps) {
				at += float64(gaps[i]%5) / 10
			}
			submitAt, work := at, w
			k.Schedule(at, func() {
				start := k.Now()
				c.Submit(work, 1, func() {
					elapsed := k.Now() - start
					if elapsed < work-1e-9 {
						ok = false // finished faster than full speed
					}
					_ = submitAt
				})
			})
		}
		k.Run(nil)
		return ok && c.Active() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedFactor(t *testing.T) {
	k := sim.NewKernel()
	c := NewCPU(k, 4)
	c.SetSpeed(0.5)
	if c.Speed() != 0.5 {
		t.Fatal("speed accessor")
	}
	var done float64
	c.Submit(1.0, 1, func() { done = k.Now() })
	k.Run(nil)
	if math.Abs(done-2.0) > 1e-9 {
		t.Fatalf("half-speed task finished at %v, want 2.0", done)
	}
}

func TestSpeedChangeMidTask(t *testing.T) {
	k := sim.NewKernel()
	c := NewCPU(k, 1)
	var done float64
	c.Submit(2.0, 1, func() { done = k.Now() })
	// Full speed for 1s (1 unit done), then half speed for the rest.
	k.ScheduleAfter(1.0, func() { c.SetSpeed(0.5) })
	k.Run(nil)
	if math.Abs(done-3.0) > 1e-9 {
		t.Fatalf("task finished at %v, want 3.0", done)
	}
}

func TestSetSpeedPanicsOnZero(t *testing.T) {
	k := sim.NewKernel()
	c := NewCPU(k, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero speed accepted")
		}
	}()
	c.SetSpeed(0)
}
