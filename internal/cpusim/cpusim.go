// Package cpusim models each host's CPU as a processor-sharing server.
// The paper's testbed runs ~21 worker tasks on 6 dual-hyperthreaded
// cores (12 hardware threads), so compute is oversubscribed: when some
// workers block on late model updates the host's cores idle, and when
// stragglers shrink the same cores do more useful work — the mechanism
// behind Table II's CPU-utilization improvements.
package cpusim

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// CPU is a processor-sharing server with a fixed number of hardware
// threads. Tasks demand up to one thread each; while aggregate demand
// exceeds the thread count, every task slows down proportionally.
type CPU struct {
	k       *sim.Kernel
	threads float64
	speed   float64 // per-thread speed factor (1 = reference host)

	tasks          map[*Task]struct{}
	sumDemand      float64
	lastUpdate     float64
	busyTime       float64 // cumulative thread-seconds of work done
	done           sim.Ticket // armed completion event (zero when none)
	completedTasks uint64

	// onCompletionFn is bound once so rescheduling the (pooled)
	// completion event never allocates a closure; finishedBuf and
	// taskArena keep the submit/retire hot path off the allocator.
	onCompletionFn func()
	finishedBuf    []*Task
	taskArena      []Task
}

// Task is one unit of compute work in progress.
type Task struct {
	cpu       *CPU
	remaining float64 // single-thread seconds left
	demand    float64 // thread demand (usually 1)
	onDone    func()
	canceled  bool
}

// Remaining returns single-thread seconds of work left (advanced to the
// last CPU event, not necessarily to "now").
func (t *Task) Remaining() float64 { return t.remaining }

// NewCPU creates a CPU with the given hardware thread count.
func NewCPU(k *sim.Kernel, threads float64) *CPU {
	return NewCPUAtSpeed(k, threads, 1)
}

// NewCPUAtSpeed creates a CPU with the given thread count and per-
// thread speed factor — the constructor heterogeneous testbeds use, so
// a host is born at its hardware speed rather than mutated after the
// fact.
func NewCPUAtSpeed(k *sim.Kernel, threads, speed float64) *CPU {
	if threads <= 0 {
		panic(fmt.Sprintf("cpusim: threads must be positive, got %g", threads))
	}
	if speed <= 0 {
		panic(fmt.Sprintf("cpusim: speed must be positive, got %g", speed))
	}
	c := &CPU{k: k, threads: threads, speed: speed, tasks: make(map[*Task]struct{})}
	c.onCompletionFn = c.onCompletion
	return c
}

// SetSpeed scales the host's per-thread speed (1 = the reference host
// the model zoo is calibrated on; 0.5 = half as fast). Heterogeneous
// speeds turn some hosts into compute-bound straggler sources, which
// NIC scheduling cannot fix — a useful negative control.
func (c *CPU) SetSpeed(speed float64) {
	if speed <= 0 {
		panic(fmt.Sprintf("cpusim: speed must be positive, got %g", speed))
	}
	c.advance()
	c.speed = speed
	c.reschedule()
}

// Speed returns the host speed factor.
func (c *CPU) Speed() float64 { return c.speed }

// Threads returns the hardware thread count.
func (c *CPU) Threads() float64 { return c.threads }

// Active returns the number of tasks currently computing.
func (c *CPU) Active() int { return len(c.tasks) }

// Completed returns the number of tasks finished so far.
func (c *CPU) Completed() uint64 { return c.completedTasks }

// BusyTime returns cumulative thread-seconds consumed, advanced to now.
// Divide by (threads × wall time) for utilization.
func (c *CPU) BusyTime() float64 {
	c.advance()
	return c.busyTime
}

// speedup is the per-unit-demand execution rate under processor sharing.
func (c *CPU) speedup() float64 {
	if c.sumDemand <= c.threads {
		return c.speed
	}
	return c.speed * c.threads / c.sumDemand
}

// advance applies elapsed work to all tasks.
func (c *CPU) advance() {
	now := c.k.Now()
	dt := now - c.lastUpdate
	if dt <= 0 {
		return
	}
	c.lastUpdate = now
	if len(c.tasks) == 0 {
		return
	}
	s := c.speedup()
	for t := range c.tasks {
		t.remaining -= dt * s * t.demand
		if t.remaining < 0 {
			t.remaining = 0
		}
	}
	c.busyTime += dt * math.Min(c.sumDemand, c.threads)
}

// reschedule points the completion event at the earliest finishing task.
func (c *CPU) reschedule() {
	c.k.CancelTicket(c.done)
	c.done = sim.Ticket{}
	if len(c.tasks) == 0 {
		return
	}
	s := c.speedup()
	earliest := sim.Forever
	for t := range c.tasks {
		eta := t.remaining / (s * t.demand)
		if eta < earliest {
			earliest = eta
		}
	}
	c.done = c.k.PostTicket(c.k.Now()+earliest, c.onCompletionFn)
}

// onCompletion retires every task that has reached zero work.
func (c *CPU) onCompletion() {
	c.done = sim.Ticket{}
	c.advance()
	const eps = 1e-12
	finished := c.finishedBuf[:0]
	for t := range c.tasks {
		if t.remaining <= eps {
			finished = append(finished, t)
		}
	}
	for _, t := range finished {
		delete(c.tasks, t)
		c.sumDemand -= t.demand
	}
	if c.sumDemand < 0 {
		c.sumDemand = 0
	}
	c.reschedule()
	for _, t := range finished {
		c.completedTasks++
		if t.onDone != nil && !t.canceled {
			t.onDone()
		}
	}
	// Callbacks only Submit/Cancel (they cannot re-enter onCompletion
	// synchronously), so the scratch buffer is ours for the whole pass.
	// Drop the callback and task references before parking it: retired
	// tasks live on in their arena block, and a retained onDone would
	// pin everything the closure captured.
	for i, t := range finished {
		t.onDone = nil
		finished[i] = nil
	}
	c.finishedBuf = finished[:0]
}

// Submit adds a task needing `work` single-thread seconds with the given
// thread demand; onDone fires when it completes. Zero work completes on
// the next event tick without a callback race.
func (c *CPU) Submit(work, demand float64, onDone func()) *Task {
	if work < 0 {
		panic("cpusim: negative work")
	}
	if demand <= 0 {
		demand = 1
	}
	if demand > 1 {
		demand = 1
	}
	c.advance()
	// Tasks come from an arena (never reused — Submit hands the pointer
	// back and callers may hold it past completion), so the per-task
	// allocator cost amortizes across a block.
	if len(c.taskArena) == 0 {
		c.taskArena = make([]Task, 128)
	}
	t := &c.taskArena[0]
	c.taskArena = c.taskArena[1:]
	t.cpu, t.remaining, t.demand, t.onDone = c, work, demand, onDone
	c.tasks[t] = struct{}{}
	c.sumDemand += demand
	c.reschedule()
	return t
}

// Cancel removes a task before completion; its callback never fires.
func (c *CPU) Cancel(t *Task) {
	if t == nil || t.canceled {
		return
	}
	t.canceled = true
	t.onDone = nil
	if _, ok := c.tasks[t]; !ok {
		return
	}
	c.advance()
	delete(c.tasks, t)
	c.sumDemand -= t.demand
	if c.sumDemand < 0 {
		c.sumDemand = 0
	}
	c.reschedule()
}
