package collective

import (
	"testing"

	"repro/internal/cpusim"
	"repro/internal/dl"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// newEnv builds a small n-host environment with a shared trace buffer.
func newEnv(seed int64, n int) (*dl.Env, *trace.Buffer) {
	k := sim.NewKernel()
	rng := sim.NewRNG(seed)
	fab := simnet.New(k, rng, simnet.Config{})
	cpus := make([]*cpusim.CPU, n)
	for i := range cpus {
		fab.AddHost("h")
		cpus[i] = cpusim.NewCPU(k, 12)
	}
	buf := &trace.Buffer{}
	return &dl.Env{K: k, Fabric: fab, CPUs: cpus, RNG: rng, Tracer: buf}, buf
}

func spec(alg Algorithm, hosts []int, iters int) JobSpec {
	return JobSpec{
		ID:               1,
		Model:            dl.ResNet32,
		Algorithm:        alg,
		Hosts:            hosts,
		LocalBatch:       4,
		TargetIterations: iters,
		Port:             7000,
		Buckets:          4,
	}
}

func runJob(t *testing.T, env *dl.Env, s JobSpec) *Job {
	t.Helper()
	j, err := NewJob(env, s)
	if err != nil {
		t.Fatal(err)
	}
	j.Start()
	env.K.MaxEvents = 10_000_000
	env.K.Run(nil)
	return j
}

func TestRingAllReduceCompletes(t *testing.T) {
	env, buf := newEnv(1, 4)
	iters := 3
	j := runJob(t, env, spec(Ring, []int{0, 1, 2, 3}, iters))
	if !j.Done() || j.Failed() {
		t.Fatalf("ring job did not finish: it=%d done=%v failed=%v",
			j.Iterations(), j.Done(), j.Failed())
	}
	if j.Iterations() != iters {
		t.Fatalf("iterations %d want %d", j.Iterations(), iters)
	}
	if j.JCT() <= 0 {
		t.Fatalf("JCT %g", j.JCT())
	}
	// Every bucket completes once per iteration.
	done := buf.Filter(func(e trace.Event) bool { return e.Kind == trace.KindBucketDone })
	if len(done) != iters*4 {
		t.Fatalf("bucket_done events %d want %d", len(done), iters*4)
	}
	// Every ring step (2N-2 per bucket) is observed at all ranks.
	steps := buf.Filter(func(e trace.Event) bool { return e.Kind == trace.KindRingStep })
	if len(steps) != iters*4*(2*4-2) {
		t.Fatalf("ring_step events %d want %d", len(steps), iters*4*(2*4-2))
	}
	starts := buf.Filter(func(e trace.Event) bool { return e.Kind == trace.KindJobStart })
	fins := buf.Filter(func(e trace.Event) bool { return e.Kind == trace.KindJobFinish })
	if len(starts) != 1 || len(fins) != 1 {
		t.Fatalf("lifecycle events start=%d finish=%d", len(starts), len(fins))
	}
}

func TestTreeAllReduceCompletes(t *testing.T) {
	// Non-power-of-two world size exercises the binomial tree's general
	// parent/children arithmetic.
	env, buf := newEnv(1, 5)
	iters := 2
	j := runJob(t, env, spec(Tree, []int{0, 1, 2, 3, 4}, iters))
	if !j.Done() {
		t.Fatalf("tree job did not finish: it=%d", j.Iterations())
	}
	done := buf.Filter(func(e trace.Event) bool { return e.Kind == trace.KindBucketDone })
	if len(done) != iters*4 {
		t.Fatalf("bucket_done events %d want %d", len(done), iters*4)
	}
	// One root-reduce marker per bucket per iteration.
	steps := buf.Filter(func(e trace.Event) bool { return e.Kind == trace.KindRingStep })
	if len(steps) != iters*4 {
		t.Fatalf("tree reduce markers %d want %d", len(steps), iters*4)
	}
}

func TestTreeTopology(t *testing.T) {
	env, _ := newEnv(1, 8)
	j, err := NewJob(env, spec(Tree, []int{0, 1, 2, 3, 4, 5, 6, 7}, 1))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		rank int
		kids []int
	}{
		{0, []int{1, 2, 4}},
		{1, nil},
		{2, []int{3}},
		{4, []int{5, 6}},
		{6, []int{7}},
	}
	for _, c := range cases {
		got := j.children(c.rank)
		if len(got) != len(c.kids) {
			t.Fatalf("children(%d) = %v want %v", c.rank, got, c.kids)
		}
		for i := range got {
			if got[i] != c.kids[i] {
				t.Fatalf("children(%d) = %v want %v", c.rank, got, c.kids)
			}
		}
		for _, k := range c.kids {
			if parent(k) != c.rank {
				t.Fatalf("parent(%d) = %d want %d", k, parent(k), c.rank)
			}
		}
	}
}

func TestRingDeterminism(t *testing.T) {
	run := func() float64 {
		env, _ := newEnv(42, 4)
		j := runJob(t, env, spec(Ring, []int{0, 1, 2, 3}, 3))
		return j.FinishedAt
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
}

func TestPeerCrashStallsAndRecovers(t *testing.T) {
	env, buf := newEnv(7, 3)
	s := spec(Ring, []int{0, 1, 2}, 4)
	s.Recovery = dl.RecoveryConfig{DetectTimeoutSec: 2, RestartBackoffSec: 1, MaxRestarts: 2}
	j, err := NewJob(env, s)
	if err != nil {
		t.Fatal(err)
	}
	j.Start()
	env.K.ScheduleAfter(0.05, func() { j.CrashPeer(1) })
	env.K.MaxEvents = 10_000_000
	env.K.Run(nil)
	if !j.Done() {
		t.Fatalf("job did not recover: it=%d failed=%v", j.Iterations(), j.Failed())
	}
	if j.Restarts() != 1 || j.Stalls() != 1 {
		t.Fatalf("restarts=%d stalls=%d", j.Restarts(), j.Stalls())
	}
	stalls := buf.Filter(func(e trace.Event) bool { return e.Kind == trace.KindRingStall })
	if len(stalls) != 1 {
		t.Fatalf("ring_stall events %d", len(stalls))
	}
	crashes := buf.Filter(func(e trace.Event) bool { return e.Kind == trace.KindWorkerCrash })
	restarts := buf.Filter(func(e trace.Event) bool { return e.Kind == trace.KindWorkerRestart })
	if len(crashes) != 1 || len(restarts) != 1 {
		t.Fatalf("crash=%d restart=%d", len(crashes), len(restarts))
	}
	// The re-run discards the aborted attempt: completed iterations
	// still hit the target exactly.
	if j.Iterations() != 4 {
		t.Fatalf("iterations %d", j.Iterations())
	}
}

func TestPeerCrashExhaustsBudget(t *testing.T) {
	env, buf := newEnv(7, 3)
	s := spec(Ring, []int{0, 1, 2}, 50)
	s.Recovery = dl.RecoveryConfig{DetectTimeoutSec: 1, RestartBackoffSec: 0.5, MaxRestarts: 0}
	j, err := NewJob(env, s)
	if err != nil {
		t.Fatal(err)
	}
	j.Start()
	env.K.ScheduleAfter(0.05, func() { j.CrashPeer(2) })
	env.K.MaxEvents = 10_000_000
	env.K.Run(nil)
	if !j.Failed() || j.Done() {
		t.Fatalf("job should have failed: done=%v failed=%v", j.Done(), j.Failed())
	}
	fails := buf.Filter(func(e trace.Event) bool { return e.Kind == trace.KindJobFail })
	if len(fails) != 1 {
		t.Fatalf("job_fail events %d", len(fails))
	}
}

func TestCrashWithoutDetectionWedges(t *testing.T) {
	env, _ := newEnv(7, 3)
	s := spec(Ring, []int{0, 1, 2}, 10)
	j, err := NewJob(env, s)
	if err != nil {
		t.Fatal(err)
	}
	j.Start()
	env.K.ScheduleAfter(0.05, func() { j.CrashPeer(0) })
	env.K.MaxEvents = 10_000_000
	env.K.Run(nil)
	// No detector: the queue drains with the job wedged mid-flight.
	if j.Done() || j.Failed() {
		t.Fatal("wedged job should neither finish nor fail")
	}
	if j.Iterations() >= 10 {
		t.Fatalf("iterations %d", j.Iterations())
	}
}

func TestBucketOverlapBeatsSingleBucket(t *testing.T) {
	// With bucketing, communication overlaps backprop; a single bucket
	// serializes them. Same seed, same work: the bucketized run must
	// not be slower.
	run := func(buckets int) float64 {
		env, _ := newEnv(3, 4)
		s := spec(Ring, []int{0, 1, 2, 3}, 3)
		s.Buckets = buckets
		s.Model = dl.AlexNet // communication-heavy: overlap matters
		j := runJob(t, env, s)
		if !j.Done() {
			t.Fatalf("buckets=%d did not finish", buckets)
		}
		return j.JCT()
	}
	if many, one := run(8), run(1); many > one {
		t.Fatalf("bucketized %g slower than monolithic %g", many, one)
	}
}

func TestSpecValidation(t *testing.T) {
	env, _ := newEnv(1, 4)
	cases := []func(*JobSpec){
		func(s *JobSpec) { s.Hosts = []int{0} },
		func(s *JobSpec) { s.TargetIterations = 0 },
		func(s *JobSpec) { s.LocalBatch = 0 },
		func(s *JobSpec) { s.Port = 0 },
		func(s *JobSpec) { s.Buckets = -1 },
		func(s *JobSpec) { s.Algorithm = "butterfly" },
		func(s *JobSpec) { s.Recovery.MaxRestarts = -1 },
	}
	for i, mutate := range cases {
		s := spec(Ring, []int{0, 1, 2}, 1)
		mutate(&s)
		if _, err := NewJob(env, s); err == nil {
			t.Fatalf("case %d: invalid spec accepted", i)
		}
	}
	// Defaults: empty algorithm -> ring, zero buckets -> 4.
	s := spec("", []int{0, 1}, 1)
	s.Buckets = 0
	j, err := NewJob(env, s)
	if err != nil {
		t.Fatal(err)
	}
	if j.Spec.Algorithm != Ring || j.Spec.Buckets != 4 {
		t.Fatalf("defaults not applied: %+v", j.Spec)
	}
}
