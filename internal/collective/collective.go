// Package collective models synchronous all-reduce training jobs — the
// parameter-server-free communication pattern that dominates today's
// distributed deep learning — over the same sim kernel, network fabric
// and CPU model the parameter-server workload uses. Two algorithms are
// provided: bucketized ring all-reduce (reduce-scatter + all-gather,
// 2·(N−1) segment transfers per rank per bucket) and a binomial tree
// all-reduce (reduce up the tree, broadcast down). Gradients are split
// into buckets that become communicable as backprop produces them, so
// communication overlaps compute, as in NCCL/Horovod.
//
// TensorLights is workload-agnostic: it keys a job's priority off a TCP
// source port. Every flow a collective job puts on the wire is sent
// from the job's Port, so a single `match sport` filter per host
// classifies the whole ring, exactly like a PS job's model-update
// traffic. The question this subsystem answers: do green/yellow NIC
// priorities still tame stragglers when every host is simultaneously a
// sender and a receiver?
package collective

import (
	"fmt"

	"repro/internal/cpusim"
	"repro/internal/dl"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Algorithm selects the all-reduce communication schedule.
type Algorithm string

const (
	// Ring is bucketized ring all-reduce: each bucket is cut into N
	// segments and every rank relays segments around the ring for
	// 2·(N−1) steps (N−1 reduce-scatter + N−1 all-gather).
	Ring Algorithm = "ring"
	// Tree is binomial tree all-reduce: gradients reduce up a binomial
	// tree rooted at rank 0, then the result broadcasts back down. Each
	// message carries the full bucket, so trees trade bandwidth for
	// latency — the classic small-tensor regime.
	Tree Algorithm = "tree"
)

// Validate reports whether the algorithm is known.
func (a Algorithm) Validate() error {
	switch a {
	case Ring, Tree:
		return nil
	}
	return fmt.Errorf("collective: unknown algorithm %q", a)
}

// ParseAlgorithm validates an algorithm name ("" defaults to Ring,
// matching JobSpec's default).
func ParseAlgorithm(s string) (Algorithm, error) {
	switch Algorithm(s) {
	case "":
		return Ring, nil
	case Ring, Tree:
		return Algorithm(s), nil
	}
	return "", fmt.Errorf("collective: unknown algorithm %q (want ring or tree)", s)
}

// JobSpec is the static description of one all-reduce training job.
type JobSpec struct {
	ID    int
	Name  string
	Model dl.Model
	// Algorithm picks the all-reduce schedule (default Ring).
	Algorithm Algorithm
	// Hosts lists each rank's host in ring order; len(Hosts) is the
	// world size N (>= 2). Rank k's ring successor is rank (k+1)%N.
	Hosts []int
	// LocalBatch is samples per rank per iteration.
	LocalBatch int
	// TargetIterations ends the job after this many completed
	// all-reduce iterations.
	TargetIterations int
	// Port is the TCP source port every rank sends collective traffic
	// from — the single observable TensorLights filters on, playing the
	// role the PS port plays for parameter-server jobs.
	Port int
	// Buckets is how many gradient buckets backprop emits per iteration
	// (default 4). Bucket b's transfers start as soon as its share of
	// the compute finishes, overlapping communication with compute.
	Buckets int
	// ComputeJitterSigma is the lognormal sigma on per-chunk compute
	// time (default 0.15, matching the PS workload).
	ComputeJitterSigma float64
	// Recovery reuses the PS workload's detection/restart/budget knobs,
	// but with collective semantics: a crashed peer stalls the whole
	// ring, recovery restarts the current iteration from the last
	// checkpoint, and an exhausted restart budget fails the job — a
	// ring, unlike a PS barrier, cannot degrade to fewer members.
	Recovery dl.RecoveryConfig
}

// Validate reports spec errors.
func (s JobSpec) Validate() error {
	if err := s.Model.Validate(); err != nil {
		return err
	}
	if err := s.Algorithm.Validate(); err != nil && s.Algorithm != "" {
		return err
	}
	if len(s.Hosts) < 2 {
		return fmt.Errorf("collective: job %d needs >=2 ranks, got %d", s.ID, len(s.Hosts))
	}
	if s.TargetIterations < 1 {
		return fmt.Errorf("collective: job %d needs a positive iteration target", s.ID)
	}
	if s.LocalBatch < 1 {
		return fmt.Errorf("collective: job %d needs a positive local batch", s.ID)
	}
	if s.Port <= 0 {
		return fmt.Errorf("collective: job %d needs a positive port", s.ID)
	}
	if s.Buckets < 0 {
		return fmt.Errorf("collective: job %d has negative bucket count %d", s.ID, s.Buckets)
	}
	if err := s.Recovery.Validate(); err != nil {
		return fmt.Errorf("collective: job %d: %w", s.ID, err)
	}
	return nil
}

// rank is the runtime state of one collective worker.
type rank struct {
	idx     int
	host    int
	port    int // receive port (cosmetic; classification keys on SrcPort)
	compute *cpusim.Task

	dead     bool
	restarts int
}

// bucketState tracks one gradient bucket through the current iteration.
// Ring and tree use disjoint subsets of the fields.
type bucketState struct {
	ready []bool // rank's local gradient chunk finished backprop

	// Ring state. sent[i] is the next step rank i will transmit;
	// recvd[i][s] marks step s received at rank i (arrivals can reorder
	// under qdisc scheduling, so a bitmap, not a counter). stepRecv[s]
	// counts ranks holding step s, for the ring_step trace event.
	sent     []int
	recvd    [][]bool
	stepRecv []int

	// Tree state. reduceRecv[i] counts child contributions received at
	// rank i; reduceSent[i] marks its own contribution passed upward.
	reduceRecv []int
	reduceSent []bool

	done     int // ranks holding the fully reduced bucket
	complete bool
}

// reset clears the state for a new iteration, keeping the allocations.
func (st *bucketState) reset() {
	clear(st.ready)
	clear(st.sent)
	for _, r := range st.recvd {
		clear(r)
	}
	clear(st.stepRecv)
	clear(st.reduceRecv)
	clear(st.reduceSent)
	st.done = 0
	st.complete = false
}

// Job is the runtime state of one all-reduce training job.
type Job struct {
	Spec JobSpec
	env  *dl.Env
	rng  *sim.RNG

	StartedAt  float64
	FinishedAt float64 // -1 while running
	FailedAt   float64 // -1 unless the restart budget was exhausted

	iteration int // completed iterations
	buckets   []*bucketState
	bktBytes  []int64
	ranks     []*rank

	// gen is the recovery generation. Every flow and compute callback
	// captures it at scheduling time; a restart bumps it, so stale
	// deliveries from the abandoned iteration are ignored instead of
	// corrupting the re-run's bucket state.
	gen int

	restarts int // rank restarts performed
	stalls   int // detected whole-ring stalls

	// OnFinish fires once when the job reaches its iteration target.
	OnFinish func(*Job)
	// OnFail fires once if the restart budget is exhausted.
	OnFail func(*Job)
	// OnIteration fires after each completed all-reduce iteration;
	// controllers use it to track progress (TLs-LPF ranking).
	OnIteration func(*Job, int)
}

// NewJob builds a job in the environment. Call Start to launch it.
func NewJob(env *dl.Env, spec JobSpec) (*Job, error) {
	if spec.Algorithm == "" {
		spec.Algorithm = Ring
	}
	if spec.Buckets == 0 {
		spec.Buckets = 4
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.ComputeJitterSigma == 0 {
		spec.ComputeJitterSigma = 0.15
	}
	j := &Job{
		Spec:       spec,
		env:        env,
		rng:        env.RNG.Stream(fmt.Sprintf("collective-%d", spec.ID)),
		StartedAt:  -1,
		FinishedAt: -1,
		FailedAt:   -1,
	}
	for i, h := range spec.Hosts {
		j.ranks = append(j.ranks, &rank{idx: i, host: h, port: spec.Port + 1 + i})
	}
	// Bucket b gets an equal share of the update; the last bucket
	// absorbs the rounding remainder.
	total := spec.Model.UpdateBytes()
	per := total / int64(spec.Buckets)
	if per < 1 {
		per = 1
	}
	for b := 0; b < spec.Buckets; b++ {
		bytes := per
		if b == spec.Buckets-1 {
			if rem := total - per*int64(spec.Buckets-1); rem > 0 {
				bytes = rem
			}
		}
		j.bktBytes = append(j.bktBytes, bytes)
	}
	return j, nil
}

// N returns the world size.
func (j *Job) N() int { return len(j.ranks) }

// Running reports whether the job has started and neither finished nor
// failed.
func (j *Job) Running() bool {
	return j.StartedAt >= 0 && j.FinishedAt < 0 && j.FailedAt < 0
}

// Done reports whether the job reached its iteration target.
func (j *Job) Done() bool { return j.FinishedAt >= 0 }

// Failed reports whether the job exhausted its restart budget.
func (j *Job) Failed() bool { return j.FailedAt >= 0 }

func (j *Job) halted() bool { return j.FinishedAt >= 0 || j.FailedAt >= 0 }

// Iterations returns completed all-reduce iterations.
func (j *Job) Iterations() int { return j.iteration }

// Restarts returns rank restarts performed so far.
func (j *Job) Restarts() int { return j.restarts }

// Stalls returns how many whole-ring stalls the failure detector saw.
func (j *Job) Stalls() int { return j.stalls }

// JCT returns the job completion time, or -1 if unfinished.
func (j *Job) JCT() float64 {
	if !j.Done() {
		return -1
	}
	return j.FinishedAt - j.StartedAt
}

func (j *Job) emit(ev trace.Event) {
	if j.env.Tracer != nil {
		j.env.Tracer.Emit(ev)
	}
}

// Start launches the job now.
func (j *Job) Start() {
	if j.StartedAt >= 0 {
		panic(fmt.Sprintf("collective: job %d started twice", j.Spec.ID))
	}
	j.StartedAt = j.env.K.Now()
	j.emit(trace.Event{
		At: j.StartedAt, Kind: trace.KindJobStart,
		Job: j.Spec.ID, Host: j.Spec.Hosts[0], Worker: -1,
		Detail: string(j.Spec.Algorithm),
	})
	j.startIteration()
}

// lastStep is the final ring step index: N−1 reduce-scatter steps then
// N−1 all-gather steps, numbered 0..2N−3.
func (j *Job) lastStep() int { return 2*j.N() - 3 }

// segBytes is the ring segment size for bucket b (bucket/N, rounded up).
func (j *Job) segBytes(b int) int64 {
	n := int64(j.N())
	s := (j.bktBytes[b] + n - 1) / n
	if s < 1 {
		s = 1
	}
	return s
}

// startIteration resets per-bucket state and submits every rank's
// backprop as Buckets sequential compute chunks on its host CPU.
func (j *Job) startIteration() {
	n := j.N()
	// Reuse last iteration's bucket state when the shape is unchanged
	// (the common case — it only shifts when a rank dies); iterations
	// are frequent enough that reallocating every slice each time shows
	// up in the trial profile.
	if len(j.buckets) == j.Spec.Buckets && len(j.buckets) > 0 && len(j.buckets[0].ready) == n {
		for _, st := range j.buckets {
			st.reset()
		}
	} else {
		j.buckets = j.buckets[:0]
		for b := 0; b < j.Spec.Buckets; b++ {
			st := &bucketState{
				ready:      make([]bool, n),
				sent:       make([]int, n),
				recvd:      make([][]bool, n),
				stepRecv:   make([]int, 2*n-2),
				reduceRecv: make([]int, n),
				reduceSent: make([]bool, n),
			}
			for i := range st.recvd {
				st.recvd[i] = make([]bool, 2*n-2)
			}
			j.buckets = append(j.buckets, st)
		}
	}
	gen := j.gen
	for _, r := range j.ranks {
		if r.dead {
			continue
		}
		j.submitCompute(r, 0, gen)
	}
}

// submitCompute runs bucket chunk b of the rank's backprop; when it
// finishes, bucket b becomes communicable and chunk b+1 starts.
func (j *Job) submitCompute(r *rank, b, gen int) {
	work := j.Spec.Model.StepComputeSec(j.Spec.LocalBatch) / float64(j.Spec.Buckets) *
		j.rng.LogNormalFactor(j.Spec.ComputeJitterSigma)
	r.compute = j.env.CPUs[r.host].Submit(work, 1, func() {
		r.compute = nil
		if j.halted() || gen != j.gen || r.dead {
			return
		}
		j.buckets[b].ready[r.idx] = true
		j.advance(b, r.idx, gen)
		if b+1 < j.Spec.Buckets {
			j.submitCompute(r, b+1, gen)
		}
	})
}

// advance pushes rank i's bucket-b protocol as far as it can go.
func (j *Job) advance(b, i, gen int) {
	if j.Spec.Algorithm == Tree {
		j.treeAdvance(b, i, gen)
		return
	}
	j.ringAdvance(b, i, gen)
}

// send puts one collective message on the wire. Every message is sent
// from the job's Port — the classification key — to the destination
// rank's receive port. onArrive is installed as the flow's OnComplete
// directly (one closure per message, not a wrapper pair); the delivered
// *Flow is ignored by every caller.
func (j *Job) send(src, dst *rank, bytes int64, onArrive func(*simnet.Flow)) {
	j.env.Fabric.Send(simnet.FlowSpec{
		Src:        src.host,
		Dst:        dst.host,
		SrcPort:    j.Spec.Port,
		DstPort:    dst.port,
		JobID:      j.Spec.ID,
		Bytes:      bytes,
		OnComplete: onArrive,
		Transient:  true, // nothing retains the flow past OnComplete
	})
}

// ringAdvance transmits every step rank i is eligible for: its own
// bucket must be ready, and step s > 0 additionally needs step s−1 from
// the predecessor (the segment it just reduced or copied).
func (j *Job) ringAdvance(b, i, gen int) {
	st := j.buckets[b]
	r := j.ranks[i]
	for !r.dead && st.sent[i] <= j.lastStep() && st.ready[i] &&
		(st.sent[i] == 0 || st.recvd[i][st.sent[i]-1]) {
		s := st.sent[i]
		st.sent[i]++
		succ := j.ranks[(i+1)%j.N()]
		j.send(r, succ, j.segBytes(b), func(*simnet.Flow) {
			if j.halted() || gen != j.gen || succ.dead {
				return
			}
			j.ringRecv(b, succ.idx, s, gen)
		})
	}
}

// ringRecv records step s arriving at rank i and advances the protocol.
func (j *Job) ringRecv(b, i, s, gen int) {
	st := j.buckets[b]
	if st.recvd[i][s] {
		return
	}
	st.recvd[i][s] = true
	st.stepRecv[s]++
	// Guard on the tracer before building the event: this fires once per
	// completed ring step, and the Sprintf would otherwise allocate even
	// on untraced runs.
	if st.stepRecv[s] == j.N() && j.env.Tracer != nil {
		j.emit(trace.Event{
			At: j.env.K.Now(), Kind: trace.KindRingStep,
			Job: j.Spec.ID, Host: -1, Worker: -1,
			Value: float64(s), Detail: fmt.Sprintf("bucket=%d", b),
		})
	}
	if s == j.lastStep() {
		j.bucketDoneAt(b, gen)
	}
	j.ringAdvance(b, i, gen)
}

// parent returns rank i's binomial-tree parent (clear the lowest set
// bit); only valid for i > 0.
func parent(i int) int { return i - (i & -i) }

// children returns rank i's binomial-tree children in ascending order:
// i + 2^k for every 2^k below i's lowest set bit (all powers for the
// root), bounded by the world size.
func (j *Job) children(i int) []int {
	var out []int
	for bit := 1; i+bit < j.N(); bit <<= 1 {
		if i != 0 && bit >= i&-i {
			break
		}
		out = append(out, i+bit)
	}
	return out
}

// treeAdvance sends rank i's reduced contribution to its parent once
// its local gradient and every child subtree have arrived. At the root
// the reduce phase ends and the broadcast phase begins.
func (j *Job) treeAdvance(b, i, gen int) {
	st := j.buckets[b]
	r := j.ranks[i]
	if r.dead || st.reduceSent[i] || !st.ready[i] || st.reduceRecv[i] < len(j.children(i)) {
		return
	}
	st.reduceSent[i] = true
	if i == 0 {
		j.emit(trace.Event{
			At: j.env.K.Now(), Kind: trace.KindRingStep,
			Job: j.Spec.ID, Host: r.host, Worker: 0,
			Value: float64(b), Detail: "tree_reduce_root",
		})
		j.treeDeliver(b, 0, gen)
		return
	}
	p := j.ranks[parent(i)]
	j.send(r, p, j.bktBytes[b], func(*simnet.Flow) {
		if j.halted() || gen != j.gen || p.dead {
			return
		}
		st.reduceRecv[p.idx]++
		j.treeAdvance(b, p.idx, gen)
	})
}

// treeDeliver marks the fully reduced bucket available at rank i and
// broadcasts it down to i's children.
func (j *Job) treeDeliver(b, i, gen int) {
	r := j.ranks[i]
	if r.dead {
		return
	}
	j.bucketDoneAt(b, gen)
	for _, ci := range j.children(i) {
		c := j.ranks[ci]
		j.send(r, c, j.bktBytes[b], func(*simnet.Flow) {
			if j.halted() || gen != j.gen || c.dead {
				return
			}
			j.treeDeliver(b, c.idx, gen)
		})
	}
}

// bucketDoneAt counts one rank completing bucket b; when all N hold the
// reduced bucket, the bucket is complete.
func (j *Job) bucketDoneAt(b, gen int) {
	st := j.buckets[b]
	st.done++
	if st.done < j.N() {
		return
	}
	st.complete = true
	j.emit(trace.Event{
		At: j.env.K.Now(), Kind: trace.KindBucketDone,
		Job: j.Spec.ID, Host: -1, Worker: -1,
		Value: float64(b), Detail: fmt.Sprintf("iter=%d", j.iteration),
	})
	j.maybeFinishIteration(gen)
}

// maybeFinishIteration closes the iteration once every bucket is fully
// reduced at every rank — the collective's barrier.
func (j *Job) maybeFinishIteration(gen int) {
	for _, st := range j.buckets {
		if !st.complete {
			return
		}
	}
	j.iteration++
	now := j.env.K.Now()
	j.emit(trace.Event{
		At: now, Kind: trace.KindBarrierRelease,
		Job: j.Spec.ID, Host: -1, Worker: -1,
		Value: float64(j.iteration),
	})
	if j.OnIteration != nil {
		j.OnIteration(j, j.iteration)
	}
	if j.iteration >= j.Spec.TargetIterations {
		j.finish(now)
		return
	}
	if gen != j.gen || j.halted() {
		return
	}
	j.startIteration()
}

// finish marks the job done and cancels in-flight compute.
func (j *Job) finish(now float64) {
	j.FinishedAt = now
	j.emit(trace.Event{
		At: now, Kind: trace.KindJobFinish,
		Job: j.Spec.ID, Host: j.Spec.Hosts[0], Worker: -1,
		Value: now - j.StartedAt,
	})
	j.cancelCompute()
	if j.OnFinish != nil {
		j.OnFinish(j)
	}
}

func (j *Job) cancelCompute() {
	for _, r := range j.ranks {
		if r.compute != nil {
			j.env.CPUs[r.host].Cancel(r.compute)
			r.compute = nil
		}
	}
}

// CrashPeer kills rank idx now. Unlike a PS worker crash, the blast
// radius is the whole job: every surviving rank's protocol wedges
// within one ring step, because each depends transitively on the dead
// peer. With Recovery.DetectTimeoutSec > 0 the stall is detected after
// that timeout (emitting ring_stall); the peer restarts after
// RestartBackoffSec and the whole iteration re-runs from the last
// checkpoint. Past MaxRestarts the job fails — a ring cannot shrink.
func (j *Job) CrashPeer(idx int) {
	if idx < 0 || idx >= j.N() {
		panic(fmt.Sprintf("collective: job %d has no rank %d", j.Spec.ID, idx))
	}
	r := j.ranks[idx]
	if j.halted() || r.dead {
		return
	}
	r.dead = true
	if r.compute != nil {
		j.env.CPUs[r.host].Cancel(r.compute)
		r.compute = nil
	}
	j.emit(trace.Event{
		At: j.env.K.Now(), Kind: trace.KindWorkerCrash,
		Job: j.Spec.ID, Host: r.host, Worker: r.idx,
	})
	if d := j.Spec.Recovery.DetectTimeoutSec; d > 0 {
		j.env.K.PostAfter(d, func() { j.stallDetected(r) })
	}
}

// stallDetected is the collective's failure detector firing: the ring
// has been wedged for the detection timeout. Restart the peer if budget
// remains, otherwise fail the job.
func (j *Job) stallDetected(r *rank) {
	if j.halted() || !r.dead {
		return
	}
	j.stalls++
	j.emit(trace.Event{
		At: j.env.K.Now(), Kind: trace.KindRingStall,
		Job: j.Spec.ID, Host: r.host, Worker: r.idx,
		Value: float64(j.iteration), Detail: "peer down, collective wedged",
	})
	if r.restarts >= j.Spec.Recovery.MaxRestarts {
		j.fail(j.env.K.Now())
		return
	}
	j.env.K.PostAfter(j.Spec.Recovery.RestartBackoffSec, func() {
		j.restartPeer(r)
	})
}

// restartPeer revives the crashed rank and re-runs the current
// iteration from scratch at every rank (checkpoint-restore semantics:
// partially reduced buckets from the aborted attempt are discarded).
// Bumping the generation makes every stale in-flight flow and compute
// callback a no-op.
func (j *Job) restartPeer(r *rank) {
	if j.halted() || !r.dead {
		return
	}
	r.dead = false
	r.restarts++
	j.restarts++
	j.gen++
	j.cancelCompute()
	j.emit(trace.Event{
		At: j.env.K.Now(), Kind: trace.KindWorkerRestart,
		Job: j.Spec.ID, Host: r.host, Worker: r.idx,
		Value: float64(r.restarts),
	})
	j.startIteration()
}

// fail marks the job permanently failed.
func (j *Job) fail(now float64) {
	j.FailedAt = now
	j.emit(trace.Event{
		At: now, Kind: trace.KindJobFail,
		Job: j.Spec.ID, Host: j.Spec.Hosts[0], Worker: -1,
		Value: now - j.StartedAt,
	})
	j.cancelCompute()
	if j.OnFail != nil {
		j.OnFail(j)
	}
}
