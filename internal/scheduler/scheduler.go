// Package scheduler is the cluster-scheduler tier that sits above
// cluster/simnet: an online placer that decides, at each job arrival,
// which hosts the job occupies and when it starts. TensorLights proper
// fights contention at the NIC after placement has already decided who
// collides; this tier moves the fight earlier, in two steps the
// related work argues for:
//
//   - Contention-aware placement (Wang et al., arXiv 2002.10105): a
//     link-load model predicts each candidate placement's expected
//     bytes/second on every rack uplink from the dl model zoo and the
//     ring/PS traffic pattern, and the placement minimizing the
//     maximum expected core-link load wins.
//   - Phase-aware interleaving (CASSINI, arXiv 2308.00852): each
//     running job's communication phase (period + offset, fed from the
//     policy Feedback collector's per-iteration EWMA when available)
//     forms an affinity graph over shared bottleneck links, and the
//     arriving job's start is delayed by the time-shift that slots its
//     bursts into the gaps left by its neighbors' (see phase.go).
//
// The scheduler is deliberately model-driven, not measurement-driven:
// placement must happen before the job has sent a byte, so expected
// loads come from the analytic per-iteration cost of the job's model
// and placement, normalized by the job's analytic iteration time. All
// decisions are deterministic given the config and arrival order
// (PolicyRandom draws from its own seeded RNG stream).
package scheduler

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/dl"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// Policy names a placement policy.
type Policy string

const (
	// PolicyRandom places each task on a uniformly random free-ish host
	// — the no-information baseline.
	PolicyRandom Policy = "random"
	// PolicyPack fills racks in order, concentrating NIC contention but
	// keeping traffic off the core.
	PolicyPack Policy = "pack"
	// PolicySpread round-robins tasks across racks — the naive
	// host-balancing policy that maximizes cross-rack traffic.
	PolicySpread Policy = "spread"
	// PolicyNetworkAware puts each job in the rack with the fewest
	// placed tasks (spilling only when full), balancing by task count
	// without modeling traffic volume.
	PolicyNetworkAware Policy = "network-aware"
	// PolicyContentionAware scores candidate racks by the link-load
	// model and picks the placement minimizing the maximum expected
	// uplink bytes/second.
	PolicyContentionAware Policy = "contention-aware"
	// PolicyPhaseAware is contention-aware placement plus CASSINI-style
	// start-time shifts that interleave communication phases of jobs
	// sharing a bottleneck.
	PolicyPhaseAware Policy = "phase-aware"
)

// Policies returns every placement policy, in sweep order.
func Policies() []Policy {
	return []Policy{PolicyRandom, PolicyPack, PolicySpread,
		PolicyNetworkAware, PolicyContentionAware, PolicyPhaseAware}
}

// ParsePolicy validates a policy name ("" = spread, matching
// cluster.ParseStrategy's default).
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case "":
		return PolicySpread, nil
	case PolicyRandom, PolicyPack, PolicySpread, PolicyNetworkAware,
		PolicyContentionAware, PolicyPhaseAware:
		return Policy(s), nil
	}
	return "", fmt.Errorf("scheduler: unknown placement policy %q (want random, pack, spread, network-aware, contention-aware or phase-aware)", s)
}

// Kind classifies the job's communication pattern, which decides how
// the load model charges rack uplinks.
type Kind int

const (
	// KindCollective is a bucketized ring all-reduce: every rank sends
	// 2(N-1)/N * UpdateBytes per iteration to its ring successor.
	KindCollective Kind = iota
	// KindPS is a parameter-server job: every worker pushes one
	// gradient update up and pulls one model update down per iteration.
	KindPS
)

// String names the kind for traces and error messages.
func (k Kind) String() string {
	switch k {
	case KindCollective:
		return "collective"
	case KindPS:
		return "ps"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// JobReq describes an arriving job to the scheduler.
type JobReq struct {
	ID    int
	Kind  Kind
	Model dl.Model
	// Tasks is the ring size for KindCollective and the worker count
	// for KindPS (the PS process itself occupies one extra host, chosen
	// by the scheduler as Hosts[0]).
	Tasks      int
	LocalBatch int
}

// taskCount is the number of hosts the request occupies.
func (r JobReq) taskCount() int {
	if r.Kind == KindPS {
		return r.Tasks + 1
	}
	return r.Tasks
}

// Decision is the scheduler's answer for one arrival.
type Decision struct {
	// Hosts lists the occupied hosts. For KindCollective it is the ring
	// order (same-rack hosts grouped so the ring crosses each rack
	// boundary once); for KindPS, Hosts[0] is the PS and the rest are
	// workers.
	Hosts []int
	// Score is the predicted maximum rack-uplink load (bytes/second)
	// after placing the job — the quantity contention-aware placement
	// minimizes. Count-based policies report it too, for tracing.
	Score float64
	// ShiftSec delays the job's start to interleave its communication
	// phase with its bottleneck neighbors (phase-aware only).
	ShiftSec float64
}

// Config sizes the scheduler.
type Config struct {
	// Hosts is the cluster size; Topo its topology (flat topologies
	// collapse every policy to host-count balancing).
	Hosts int
	Topo  simnet.TopologyConfig
	// LinkRateBps is the access-link rate used to normalize expected
	// per-iteration bytes into bytes/second (default 10 Gbps, matching
	// simnet's default).
	LinkRateBps float64
	Policy      Policy
	// Slots is the phase-shift search resolution (default 16 candidate
	// shifts per period).
	Slots int
	// RNG supplies PolicyRandom's draws; the scheduler derives its own
	// "scheduler" stream so placement randomness never perturbs the
	// simulation's other streams. Required only for PolicyRandom.
	RNG *sim.RNG
	// Feedback, when non-nil, supplies measured per-iteration periods
	// (the phase EWMA) and last-progress anchors for running jobs; the
	// phase-aware policy falls back to the analytic model for jobs the
	// collector has not converged on yet.
	Feedback *policy.Feedback
	// Tracer, when non-nil, receives sched_place / sched_shift events.
	Tracer trace.Tracer
}

// placedJob is the scheduler's record of one admitted job.
type placedJob struct {
	req    JobReq
	hosts  []int
	load   []float64 // expected bytes/sec added to each rack uplink
	period float64   // analytic seconds/iteration
	burst  float64   // analytic communication seconds/iteration
	start  float64   // scheduled start time (anchor fallback)
}

// Scheduler is the online placer. Not safe for concurrent use: it is
// driven from simulation events, which are single-threaded per kernel.
type Scheduler struct {
	cfg          Config
	racks        int
	hostsPerRack int
	rng          *sim.RNG

	hostTasks []int     // placed task count per host
	hostLoad  []float64 // expected NIC tx bytes/sec per host
	rackUp    []float64 // expected uplink bytes/sec per rack
	active    map[int]*placedJob

	shifted    int
	shiftTotal float64
}

// New builds a scheduler for an empty cluster.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Hosts <= 0 {
		return nil, fmt.Errorf("scheduler: need >=1 host, got %d", cfg.Hosts)
	}
	if err := cfg.Topo.ValidateFor(cfg.Hosts); err != nil {
		return nil, err
	}
	if _, err := ParsePolicy(string(cfg.Policy)); err != nil {
		return nil, err
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicySpread
	}
	if cfg.LinkRateBps <= 0 {
		cfg.LinkRateBps = 10e9
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 16
	}
	racks := cfg.Topo.NumRacksFor(cfg.Hosts)
	if racks < 1 {
		racks = 1
	}
	s := &Scheduler{
		cfg:          cfg,
		racks:        racks,
		hostsPerRack: cfg.Hosts / racks,
		hostTasks:    make([]int, cfg.Hosts),
		hostLoad:     make([]float64, cfg.Hosts),
		rackUp:       make([]float64, racks),
		active:       map[int]*placedJob{},
	}
	if cfg.RNG != nil {
		s.rng = cfg.RNG.Stream("scheduler")
	}
	return s, nil
}

// Policy returns the configured placement policy.
func (s *Scheduler) Policy() Policy { return s.cfg.Policy }

// Shifts reports how many placements were delayed and the total delay.
func (s *Scheduler) Shifts() (jobs int, totalSec float64) {
	return s.shifted, s.shiftTotal
}

// RackLoads returns a copy of the modeled per-rack uplink loads
// (bytes/second) of all active jobs.
func (s *Scheduler) RackLoads() []float64 {
	out := make([]float64, len(s.rackUp))
	copy(out, s.rackUp)
	return out
}

// HostTasks returns a copy of the per-host placed task counts.
func (s *Scheduler) HostTasks() []int {
	out := make([]int, len(s.hostTasks))
	copy(out, s.hostTasks)
	return out
}

func (s *Scheduler) rackOf(h int) int {
	return s.cfg.Topo.RackOfHost(h, s.cfg.Hosts)
}

// Place admits a job at simulation time now and returns its placement.
func (s *Scheduler) Place(req JobReq, now float64) (Decision, error) {
	if _, ok := s.active[req.ID]; ok {
		return Decision{}, fmt.Errorf("scheduler: job %d already placed", req.ID)
	}
	minTasks := 2
	if req.Kind == KindPS {
		minTasks = 1
	}
	if req.Tasks < minTasks {
		return Decision{}, fmt.Errorf("scheduler: job %d needs >=%d tasks, got %d",
			req.ID, minTasks, req.Tasks)
	}
	n := req.taskCount()
	if n > s.cfg.Hosts {
		return Decision{}, fmt.Errorf("scheduler: job %d needs %d hosts, cluster has %d",
			req.ID, n, s.cfg.Hosts)
	}
	if req.Model.Params <= 0 {
		return Decision{}, fmt.Errorf("scheduler: job %d has an empty model", req.ID)
	}

	var hosts []int
	switch s.cfg.Policy {
	case PolicyRandom:
		if s.rng == nil {
			return Decision{}, fmt.Errorf("scheduler: %s placement needs Config.RNG", s.cfg.Policy)
		}
		hosts = append(hosts, s.rng.Perm(s.cfg.Hosts)[:n]...)
	case PolicyPack:
		hosts = s.pickPacked(n)
	case PolicySpread:
		hosts = s.pickSpread(n)
	case PolicyNetworkAware:
		hosts = s.pickPreferRack(s.leastTaskedRack(), n)
	case PolicyContentionAware, PolicyPhaseAware:
		hosts = s.pickContentionAware(req, n)
	default:
		return Decision{}, fmt.Errorf("scheduler: unknown placement policy %q", s.cfg.Policy)
	}
	if req.Kind == KindCollective {
		// Group same-rack hosts consecutively so the ring crosses each
		// rack boundary at most once — any real launcher would.
		hosts = cluster.OrderRingByRack(hosts, s.cfg.Hosts, s.cfg.Topo)
	}

	pj := s.admit(req, hosts, now)
	score := s.maxRackLoad()
	dec := Decision{Hosts: hosts, Score: score}
	if s.cfg.Policy == PolicyPhaseAware {
		dec.ShiftSec = s.interleave(pj, now)
		if dec.ShiftSec > 0 {
			s.shifted++
			s.shiftTotal += dec.ShiftSec
			pj.start = now + dec.ShiftSec
		}
	}
	if s.cfg.Tracer != nil {
		s.cfg.Tracer.Emit(trace.Event{
			At: now, Kind: trace.KindSchedPlace, Job: req.ID, Host: hosts[0],
			Value:  score,
			Detail: fmt.Sprintf("policy=%s hosts=%v", s.cfg.Policy, hosts),
		})
		if dec.ShiftSec > 0 {
			s.cfg.Tracer.Emit(trace.Event{
				At: now, Kind: trace.KindSchedShift, Job: req.ID, Host: hosts[0],
				Value:  dec.ShiftSec,
				Detail: fmt.Sprintf("period=%.4f burst=%.4f", pj.period, pj.burst),
			})
		}
	}
	return dec, nil
}

// Release frees a finished job's hosts and modeled load.
func (s *Scheduler) Release(id int) {
	pj, ok := s.active[id]
	if !ok {
		return
	}
	delete(s.active, id)
	for i, h := range pj.hosts {
		s.hostTasks[h]--
		s.hostLoad[h] -= s.nicLoad(pj.req, i)
	}
	for r, l := range pj.load {
		s.rackUp[r] -= l
	}
}

// admit commits the placement to the scheduler's load model.
func (s *Scheduler) admit(req JobReq, hosts []int, now float64) *placedJob {
	pj := &placedJob{
		req:    req,
		hosts:  hosts,
		load:   s.uplinkLoad(req, hosts),
		period: s.iterationSec(req),
		burst:  s.commSec(req),
		start:  now,
	}
	s.active[req.ID] = pj
	for i, h := range hosts {
		s.hostTasks[h]++
		s.hostLoad[h] += s.nicLoad(req, i)
	}
	for r, l := range pj.load {
		s.rackUp[r] += l
	}
	return pj
}

// --- analytic load model ---------------------------------------------

// commBytesPerTask is the bytes one task transmits per iteration: a
// ring rank forwards 2(N-1) segments of UpdateBytes/N each; a PS pushes
// one model update per worker; a PS worker pushes one gradient.
func commBytesPerTask(req JobReq, taskIdx int) float64 {
	ub := float64(req.Model.UpdateBytes())
	switch req.Kind {
	case KindCollective:
		n := float64(req.Tasks)
		return 2 * (n - 1) / n * ub
	case KindPS:
		if taskIdx == 0 {
			return float64(req.Tasks) * ub
		}
		return ub
	}
	return 0
}

// commSec estimates the serialized communication seconds per iteration
// through the job's busiest NIC at the access-link rate.
func (s *Scheduler) commSec(req JobReq) float64 {
	rate := s.cfg.LinkRateBps / 8
	return commBytesPerTask(req, 0) / rate
}

// iterationSec is the analytic seconds per iteration: local compute
// plus the busiest task's communication time. It normalizes expected
// per-iteration bytes into bytes/second without having observed the
// job run.
func (s *Scheduler) iterationSec(req JobReq) float64 {
	return req.Model.StepComputeSec(req.LocalBatch) + s.commSec(req)
}

// nicLoad is the expected NIC tx bytes/second of the job's task i.
func (s *Scheduler) nicLoad(req JobReq, taskIdx int) float64 {
	return commBytesPerTask(req, taskIdx) / s.iterationSec(req)
}

// uplinkLoad predicts the bytes/second the placement adds to each
// rack's uplinks. Ring edges whose endpoints sit in different racks
// charge the sender's rack; a PS worker in a different rack than its
// PS charges both its own rack (gradient up) and the PS's rack (model
// update down).
func (s *Scheduler) uplinkLoad(req JobReq, hosts []int) []float64 {
	load := make([]float64, s.racks)
	if s.racks <= 1 {
		return load
	}
	iter := s.iterationSec(req)
	ub := float64(req.Model.UpdateBytes())
	switch req.Kind {
	case KindCollective:
		n := len(hosts)
		edge := 2 * float64(n-1) / float64(n) * ub / iter
		for i, h := range hosts {
			next := hosts[(i+1)%n]
			if s.rackOf(h) != s.rackOf(next) {
				load[s.rackOf(h)] += edge
			}
		}
	case KindPS:
		ps := hosts[0]
		per := ub / iter
		for _, w := range hosts[1:] {
			if s.rackOf(w) != s.rackOf(ps) {
				load[s.rackOf(w)] += per
				load[s.rackOf(ps)] += per
			}
		}
	}
	return load
}

// maxRackLoad is the busiest modeled uplink load (bytes/second).
func (s *Scheduler) maxRackLoad() float64 {
	max := 0.0
	for _, l := range s.rackUp {
		if l > max {
			max = l
		}
	}
	return max
}

// --- placement candidate generation ----------------------------------

// byLoad orders host ids ascending by (placed tasks, modeled NIC load,
// id) — the shared "least loaded first" comparator.
func (s *Scheduler) byLoad(ids []int) {
	sort.Slice(ids, func(a, b int) bool {
		ha, hb := ids[a], ids[b]
		if s.hostTasks[ha] != s.hostTasks[hb] {
			return s.hostTasks[ha] < s.hostTasks[hb]
		}
		if s.hostLoad[ha] != s.hostLoad[hb] {
			return s.hostLoad[ha] < s.hostLoad[hb]
		}
		return ha < hb
	})
}

// pickPacked fills racks in index order, least-loaded hosts first
// within a rack.
func (s *Scheduler) pickPacked(n int) []int {
	ids := make([]int, s.cfg.Hosts)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		ha, hb := ids[a], ids[b]
		ra, rb := s.rackOf(ha), s.rackOf(hb)
		if ra != rb {
			return ra < rb
		}
		if s.hostTasks[ha] != s.hostTasks[hb] {
			return s.hostTasks[ha] < s.hostTasks[hb]
		}
		return ha < hb
	})
	return append([]int(nil), ids[:n]...)
}

// pickSpread puts task k in rack k mod racks, least-loaded host within.
func (s *Scheduler) pickSpread(n int) []int {
	perRack := make([][]int, s.racks)
	for h := 0; h < s.cfg.Hosts; h++ {
		r := s.rackOf(h)
		perRack[r] = append(perRack[r], h)
	}
	for r := range perRack {
		s.byLoad(perRack[r])
	}
	taken := make([]int, s.racks)
	hosts := make([]int, 0, n)
	for k := 0; k < n; k++ {
		r := k % s.racks
		// Skip full racks (possible when n approaches the cluster size).
		for taken[r] >= len(perRack[r]) {
			r = (r + 1) % s.racks
		}
		hosts = append(hosts, perRack[r][taken[r]])
		taken[r]++
	}
	return hosts
}

// leastTaskedRack returns the rack with the fewest placed tasks.
func (s *Scheduler) leastTaskedRack() int {
	perRack := make([]int, s.racks)
	for h, t := range s.hostTasks {
		perRack[s.rackOf(h)] += t
	}
	best := 0
	for r := 1; r < s.racks; r++ {
		if perRack[r] < perRack[best] {
			best = r
		}
	}
	return best
}

// pickPreferRack takes the n least-loaded hosts of rack r first,
// spilling to the least-loaded hosts of other racks when r is full.
func (s *Scheduler) pickPreferRack(r, n int) []int {
	var in, out []int
	for h := 0; h < s.cfg.Hosts; h++ {
		if s.rackOf(h) == r {
			in = append(in, h)
		} else {
			out = append(out, h)
		}
	}
	s.byLoad(in)
	s.byLoad(out)
	hosts := append([]int(nil), in...)
	hosts = append(hosts, out...)
	return hosts[:n]
}

// pickContentionAware tries one candidate placement per primary rack
// (that rack's least-loaded hosts, spilling by load) and keeps the one
// minimizing the predicted maximum rack-uplink load. Ties break toward
// the candidate on less loaded hosts, then the lower rack index, so
// the choice is deterministic and NIC pressure stays balanced even
// when no candidate adds core traffic.
func (s *Scheduler) pickContentionAware(req JobReq, n int) []int {
	var best []int
	bestScore, bestNic := 0.0, 0.0
	for r := 0; r < s.racks; r++ {
		cand := s.pickPreferRack(r, n)
		if req.Kind == KindCollective {
			cand = cluster.OrderRingByRack(cand, s.cfg.Hosts, s.cfg.Topo)
		}
		load := s.uplinkLoad(req, cand)
		score := 0.0
		for rr := range load {
			if t := s.rackUp[rr] + load[rr]; t > score {
				score = t
			}
		}
		nic := 0.0
		for i, h := range cand {
			nic += s.hostLoad[h] + s.nicLoad(req, i)
		}
		if best == nil || score < bestScore-1e-9 ||
			(score <= bestScore+1e-9 && nic < bestNic-1e-9) {
			best, bestScore, bestNic = cand, score, nic
		}
	}
	return best
}

// --- phase interleaving ----------------------------------------------

// bottleneck resources are keyed as host ids for NICs and
// uplinkKeyBase+rack for rack uplinks.
const uplinkKeyBase = 1 << 20

// bottlenecks returns the set of contended resources a placed job
// occupies: its hosts' NICs always, plus the uplinks of racks its
// traffic model actually charges.
func (s *Scheduler) bottlenecks(pj *placedJob) map[int]bool {
	set := make(map[int]bool, len(pj.hosts)+2)
	for _, h := range pj.hosts {
		set[h] = true
	}
	for r, l := range pj.load {
		if l > 0 {
			set[uplinkKeyBase+r] = true
		}
	}
	return set
}

// interleave computes the CASSINI start-time shift for a just-admitted
// job: every other active job sharing a bottleneck contributes a
// PhaseJob weighted by the number of shared resources (the affinity
// edge weight), with its measured period and last-progress anchor from
// the Feedback collector when available and the analytic model
// otherwise. The new job's burst is anchored at the end of its first
// iteration's compute, which is where its communication would land if
// started now.
func (s *Scheduler) interleave(pj *placedJob, now float64) float64 {
	mine := s.bottlenecks(pj)
	var others []PhaseJob
	ids := make([]int, 0, len(s.active))
	for id := range s.active {
		if id != pj.req.ID {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids) // deterministic accumulation order
	for _, id := range ids {
		o := s.active[id]
		shared := 0
		for b := range s.bottlenecks(o) {
			if mine[b] {
				shared++
			}
		}
		if shared == 0 {
			continue
		}
		period, anchor := o.period, o.start+o.period-o.burst
		if s.cfg.Feedback != nil {
			if p, ok := s.cfg.Feedback.Period(id); ok {
				period = p
				if at, ok := s.cfg.Feedback.LastProgressAt(id); ok {
					// Progress fires at iteration end, i.e. the end of a
					// burst: the burst occupies [at-burst, at) mod period.
					anchor = at - o.burst
				}
			}
		}
		others = append(others, PhaseJob{
			PeriodSec: period,
			AnchorSec: anchor,
			BurstSec:  o.burst,
			Weight:    float64(shared),
		})
	}
	return InterleaveShift(PhaseJob{
		PeriodSec: pj.period,
		AnchorSec: now + pj.period - pj.burst,
		BurstSec:  pj.burst,
	}, others, s.cfg.Slots)
}
