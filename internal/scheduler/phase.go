package scheduler

import "math"

// PhaseJob models one job's periodic communication pattern as seen by
// the interleaver: every PeriodSec seconds the job opens a burst of
// BurstSec seconds on the links it occupies, the first burst beginning
// at AnchorSec. Weight scales the job's contribution to the overlap
// cost — the scheduler sets it to the number of bottleneck links the
// job shares with the arriving job, which is the edge weight of the
// CASSINI affinity graph between the two jobs.
type PhaseJob struct {
	PeriodSec float64
	AnchorSec float64
	BurstSec  float64
	Weight    float64
}

// fraction maps an absolute time onto the job's unit circle: the
// position in [0, 1) of t within the job's own period.
func (p PhaseJob) fraction(t float64) float64 {
	f := math.Mod(t/p.PeriodSec, 1)
	if f < 0 {
		f += 1
	}
	return f
}

// arcLen is the burst's length on the unit circle, capped at a full
// revolution (a burst longer than the period occupies the whole link).
func (p PhaseJob) arcLen() float64 {
	l := p.BurstSec / p.PeriodSec
	if l > 1 {
		return 1
	}
	return l
}

// InterleaveShift returns the start delay in [0, job.PeriodSec) that
// minimizes the weighted burst overlap between job and others, CASSINI
// style: each job's timeline is normalized onto a unit circle (position
// = (t mod P_i)/P_i, so jobs with different periods are compared by
// phase fraction — the paper's unified-circle approximation), the new
// job's burst arc is rotated through `slots` evenly spaced candidate
// shifts of its own period, and the shift with the smallest total
// arc-overlap wins. Ties break toward the smallest shift, so the result
// is deterministic and a conflict-free arrival starts immediately.
//
// The returned shift is a pure start-time delay: the scheduler realizes
// it by postponing the job's launch, which rotates every subsequent
// burst by the same phase.
func InterleaveShift(job PhaseJob, others []PhaseJob, slots int) float64 {
	if job.PeriodSec <= 0 || job.BurstSec <= 0 || len(others) == 0 {
		return 0
	}
	if slots < 2 {
		slots = 16
	}
	newLen := job.arcLen()
	bestSlot, bestCost := 0, math.Inf(1)
	for k := 0; k < slots; k++ {
		shift := float64(k) * job.PeriodSec / float64(slots)
		cost := 0.0
		for _, o := range others {
			if o.PeriodSec <= 0 || o.BurstSec <= 0 {
				continue
			}
			w := o.Weight
			if w <= 0 {
				w = 1
			}
			cost += w * circularOverlap(
				job.fraction(job.AnchorSec+shift), newLen,
				o.fraction(o.AnchorSec), o.arcLen())
		}
		// Strict improvement only: equal-cost later slots lose to the
		// earliest one, keeping shifts minimal and deterministic.
		if cost < bestCost-1e-12 {
			bestSlot, bestCost = k, cost
		}
		if bestCost <= 1e-12 && bestSlot == 0 {
			return 0
		}
	}
	return float64(bestSlot) * job.PeriodSec / float64(slots)
}

// circularOverlap returns the overlap of two arcs [a1, a1+l1) and
// [a2, a2+l2) on the unit circle, with positions in [0, 1) and lengths
// in [0, 1]. Unrolling arc 2 to the three linear copies that can touch
// arc 1 covers every wraparound case.
func circularOverlap(a1, l1, a2, l2 float64) float64 {
	total := 0.0
	for _, off := range [3]float64{-1, 0, 1} {
		lo := math.Max(a1, a2+off)
		hi := math.Min(a1+l1, a2+off+l2)
		if hi > lo {
			total += hi - lo
		}
	}
	if total > math.Min(l1, l2) {
		total = math.Min(l1, l2)
	}
	return total
}
