package scheduler

import (
	"reflect"
	"testing"

	"repro/internal/dl"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// testTopo is a 3-rack leaf-spine over 12 hosts (4 per rack).
func testTopo() simnet.TopologyConfig {
	return simnet.TopologyConfig{
		Kind:             simnet.TopologyLeafSpine,
		Racks:            3,
		UplinksPerLeaf:   2,
		Oversubscription: 2,
	}
}

func newTestScheduler(t *testing.T, pol Policy) *Scheduler {
	t.Helper()
	s, err := New(Config{
		Hosts:  12,
		Topo:   testTopo(),
		Policy: pol,
		RNG:    sim.NewRNG(7),
	})
	if err != nil {
		t.Fatalf("New(%s): %v", pol, err)
	}
	return s
}

func ringReq(id int, m dl.Model, ranks int) JobReq {
	return JobReq{ID: id, Kind: KindCollective, Model: m, Tasks: ranks, LocalBatch: 1}
}

func psReq(id int, m dl.Model, workers int) JobReq {
	return JobReq{ID: id, Kind: KindPS, Model: m, Tasks: workers, LocalBatch: 4}
}

func rackOf(h int) int { return testTopo().RackOfHost(h, 12) }

func racksUsed(hosts []int) map[int]bool {
	set := map[int]bool{}
	for _, h := range hosts {
		set[rackOf(h)] = true
	}
	return set
}

func TestParsePolicy(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(string(p))
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p, got, err)
		}
	}
	if got, err := ParsePolicy(""); err != nil || got != PolicySpread {
		t.Errorf("ParsePolicy(\"\") = %v, %v; want spread", got, err)
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy(bogus) should fail")
	}
}

func TestPackStaysInFirstRack(t *testing.T) {
	s := newTestScheduler(t, PolicyPack)
	dec, err := s.Place(ringReq(1, dl.AlexNet, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range dec.Hosts {
		if rackOf(h) != 0 {
			t.Fatalf("pack placed host %d outside rack 0: %v", h, dec.Hosts)
		}
	}
	// A second ring still packs into rack 0 (it has a free host slot).
	dec2, err := s.Place(ringReq(2, dl.AlexNet, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := racksUsed(dec2.Hosts); len(got) != 1 || !got[0] {
		t.Fatalf("pack's second ring left rack 0: %v", dec2.Hosts)
	}
}

func TestSpreadCrossesRacks(t *testing.T) {
	s := newTestScheduler(t, PolicySpread)
	dec, err := s.Place(ringReq(1, dl.AlexNet, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := racksUsed(dec.Hosts); len(got) != 3 {
		t.Fatalf("spread should hit all 3 racks, got %v", dec.Hosts)
	}
}

func TestNetworkAwareBalancesRacks(t *testing.T) {
	s := newTestScheduler(t, PolicyNetworkAware)
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		dec, err := s.Place(ringReq(i+1, dl.AlexNet, 3), 0)
		if err != nil {
			t.Fatal(err)
		}
		racks := racksUsed(dec.Hosts)
		if len(racks) != 1 {
			t.Fatalf("ring %d split across racks: %v", i, dec.Hosts)
		}
		for r := range racks {
			if seen[r] {
				t.Fatalf("ring %d landed on already-used rack %d", i, r)
			}
			seen[r] = true
		}
	}
}

func TestContentionAwareKeepsRingsOffCore(t *testing.T) {
	s := newTestScheduler(t, PolicyContentionAware)
	for i := 0; i < 3; i++ {
		dec, err := s.Place(ringReq(i+1, dl.AlexNet, 3), 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := racksUsed(dec.Hosts); len(got) != 1 {
			t.Fatalf("contention-aware split ring %d across racks: %v", i, dec.Hosts)
		}
		if dec.Score != 0 {
			t.Fatalf("ring %d should add no modeled core load, score %g", i, dec.Score)
		}
	}
	// Rack loads stay zero: every ring is intra-rack.
	for r, l := range s.RackLoads() {
		if l != 0 {
			t.Fatalf("rack %d has modeled uplink load %g", r, l)
		}
	}
}

func TestContentionAwarePSChoosesQuietRack(t *testing.T) {
	s := newTestScheduler(t, PolicyContentionAware)
	// Fill racks 0 and 1 with intra-rack rings so their hosts are busy.
	if _, err := s.Place(ringReq(1, dl.AlexNet, 4), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(ringReq(2, dl.AlexNet, 4), 0); err != nil {
		t.Fatal(err)
	}
	// A 3-worker PS job fits entirely in rack 2: contention-aware must
	// find the zero-core-traffic placement there.
	dec, err := s.Place(psReq(3, dl.ResNet56, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := racksUsed(dec.Hosts); len(got) != 1 || !got[2] {
		t.Fatalf("PS job should land in idle rack 2, got %v", dec.Hosts)
	}
}

func TestReleaseRestoresState(t *testing.T) {
	s := newTestScheduler(t, PolicyContentionAware)
	before := append([]int(nil), s.HostTasks()...)
	dec, err := s.Place(psReq(1, dl.AlexNet, 6), 0) // must cross racks
	if err != nil {
		t.Fatal(err)
	}
	if dec.Score <= 0 {
		t.Fatalf("7-host PS job cannot avoid core traffic, score %g", dec.Score)
	}
	s.Release(1)
	if !reflect.DeepEqual(before, s.HostTasks()) {
		t.Fatalf("Release left host tasks %v, want %v", s.HostTasks(), before)
	}
	for r, l := range s.RackLoads() {
		if l > 1e-9 || l < -1e-9 {
			t.Fatalf("Release left rack %d load %g", r, l)
		}
	}
	// Releasing twice (or an unknown id) is a no-op.
	s.Release(1)
	s.Release(99)
}

func TestPhaseAwareShiftsCollidingJob(t *testing.T) {
	s := newTestScheduler(t, PolicyPhaseAware)
	// Two PS jobs too big to fit in one rack: both charge the core, so
	// the second shares bottleneck uplinks with the first and should be
	// phase-shifted.
	d1, err := s.Place(psReq(1, dl.AlexNet, 6), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d1.ShiftSec != 0 {
		t.Fatalf("first job should not shift, got %g", d1.ShiftSec)
	}
	d2, err := s.Place(psReq(2, dl.AlexNet, 6), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d2.ShiftSec <= 0 {
		t.Fatalf("second colliding job should shift, got %g", d2.ShiftSec)
	}
	jobs, total := s.Shifts()
	if jobs != 1 || total != d2.ShiftSec {
		t.Fatalf("Shifts() = %d, %g; want 1, %g", jobs, total, d2.ShiftSec)
	}
}

func TestPhaseAwareUsesFeedbackPeriod(t *testing.T) {
	k := sim.NewKernel()
	fb := policy.NewFeedback(k, policy.FeedbackConfig{})
	s, err := New(Config{
		Hosts: 12, Topo: testTopo(), Policy: PolicyPhaseAware, Feedback: fb,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(psReq(1, dl.AlexNet, 6), 0); err != nil {
		t.Fatal(err)
	}
	// Feed the collector a measured period for job 1 wildly different
	// from the analytic one; the second job must still get a shift
	// bounded by its own period.
	fb.JobArrived(1)
	k.Post(3.0, func() { fb.OnProgress(1, 1) })
	k.Post(6.0, func() { fb.OnProgress(1, 2) })
	// RunUntil, not Run: the collector's recurring sampling loop keeps
	// the event queue non-empty forever.
	k.RunUntil(7.0)
	if p, ok := fb.Period(1); !ok || p < 2.99 || p > 3.01 {
		t.Fatalf("Feedback period = %g, %v; want 3", p, ok)
	}
	d2, err := s.Place(psReq(2, dl.AlexNet, 6), k.Now())
	if err != nil {
		t.Fatal(err)
	}
	if d2.ShiftSec < 0 || d2.ShiftSec >= s.active[2].period {
		t.Fatalf("shift %g outside [0, own period %g)", d2.ShiftSec, s.active[2].period)
	}
}

func TestPlaceEmitsTraceEvents(t *testing.T) {
	buf := &trace.Buffer{}
	s, err := New(Config{
		Hosts: 12, Topo: testTopo(), Policy: PolicyPhaseAware, Tracer: buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(psReq(1, dl.AlexNet, 6), 1.5); err != nil {
		t.Fatal(err)
	}
	d2, err := s.Place(psReq(2, dl.AlexNet, 6), 2.5)
	if err != nil {
		t.Fatal(err)
	}
	places := buf.Filter(func(e trace.Event) bool { return e.Kind == trace.KindSchedPlace })
	if len(places) != 2 {
		t.Fatalf("want 2 sched_place events, got %d", len(places))
	}
	if places[0].At != 1.5 || places[0].Job != 1 {
		t.Fatalf("bad first place event: %+v", places[0])
	}
	shifts := buf.Filter(func(e trace.Event) bool { return e.Kind == trace.KindSchedShift })
	if d2.ShiftSec > 0 && (len(shifts) != 1 || shifts[0].Value != d2.ShiftSec) {
		t.Fatalf("want 1 sched_shift with value %g, got %+v", d2.ShiftSec, shifts)
	}
}

func TestRandomIsSeedDeterministic(t *testing.T) {
	place := func() [][]int {
		s, err := New(Config{
			Hosts: 12, Topo: testTopo(), Policy: PolicyRandom, RNG: sim.NewRNG(42),
		})
		if err != nil {
			t.Fatal(err)
		}
		var out [][]int
		for i := 0; i < 4; i++ {
			dec, err := s.Place(ringReq(i+1, dl.ResNet50, 3), float64(i))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, dec.Hosts)
		}
		return out
	}
	if a, b := place(), place(); !reflect.DeepEqual(a, b) {
		t.Fatalf("random placement not seed-deterministic: %v vs %v", a, b)
	}
}

func TestPlaceValidation(t *testing.T) {
	s := newTestScheduler(t, PolicySpread)
	if _, err := s.Place(ringReq(1, dl.AlexNet, 1), 0); err == nil {
		t.Error("1-rank ring should fail")
	}
	if _, err := s.Place(ringReq(1, dl.AlexNet, 13), 0); err == nil {
		t.Error("oversized ring should fail")
	}
	if _, err := s.Place(JobReq{ID: 1, Kind: KindCollective, Tasks: 3}, 0); err == nil {
		t.Error("empty model should fail")
	}
	if _, err := s.Place(ringReq(1, dl.AlexNet, 3), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(ringReq(1, dl.AlexNet, 3), 0); err == nil {
		t.Error("duplicate id should fail")
	}
	if _, err := New(Config{Hosts: 0}); err == nil {
		t.Error("New with 0 hosts should fail")
	}
	if _, err := New(Config{Hosts: 12, Policy: "bogus"}); err == nil {
		t.Error("New with bogus policy should fail")
	}
	r, err := New(Config{Hosts: 12, Topo: testTopo(), Policy: PolicyRandom})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Place(ringReq(1, dl.AlexNet, 3), 0); err == nil {
		t.Error("random without RNG should fail")
	}
}
