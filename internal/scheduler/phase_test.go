package scheduler

import (
	"math"
	"testing"
)

func TestCircularOverlap(t *testing.T) {
	cases := []struct {
		a1, l1, a2, l2, want float64
	}{
		{0, 0.25, 0.5, 0.25, 0},        // disjoint
		{0, 0.25, 0, 0.25, 0.25},       // identical
		{0, 0.5, 0.25, 0.5, 0.25},      // half overlap
		{0.9, 0.2, 0, 0.05, 0.05},      // wraparound arc 1 covers arc 2
		{0, 0.05, 0.9, 0.2, 0.05},      // symmetric case
		{0, 1, 0.3, 0.4, 0.4},          // full circle vs arc
		{0.75, 0.5, 0.2, 0.1, 0.05},    // wrap partial
		{0.1, 0.2, 0.25, 0.2, 0.05},    // plain partial
	}
	for i, c := range cases {
		got := circularOverlap(c.a1, c.l1, c.a2, c.l2)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: overlap(%g,%g,%g,%g) = %g, want %g",
				i, c.a1, c.l1, c.a2, c.l2, got, c.want)
		}
		// Overlap is symmetric.
		rev := circularOverlap(c.a2, c.l2, c.a1, c.l1)
		if math.Abs(got-rev) > 1e-12 {
			t.Errorf("case %d: overlap not symmetric: %g vs %g", i, got, rev)
		}
	}
}

func TestInterleaveShiftAvoidsCollision(t *testing.T) {
	// Two jobs, identical period 1 s, burst 0.25 s, same anchor: the
	// new job should shift away from the incumbent's burst.
	other := PhaseJob{PeriodSec: 1, AnchorSec: 0, BurstSec: 0.25, Weight: 1}
	job := PhaseJob{PeriodSec: 1, AnchorSec: 0, BurstSec: 0.25}
	shift := InterleaveShift(job, []PhaseJob{other}, 16)
	if shift <= 0 || shift >= 1 {
		t.Fatalf("expected shift in (0, 1), got %g", shift)
	}
	// After shifting, the bursts must not overlap.
	ov := circularOverlap(job.fraction(job.AnchorSec+shift), job.arcLen(),
		other.fraction(other.AnchorSec), other.arcLen())
	if ov > 1e-12 {
		t.Fatalf("shifted job still overlaps incumbent by %g", ov)
	}
}

func TestInterleaveShiftZeroWhenClear(t *testing.T) {
	// Incumbent's burst sits in the second half of the period; the new
	// job's burst already lands in the first half — no shift needed.
	other := PhaseJob{PeriodSec: 1, AnchorSec: 0.5, BurstSec: 0.2, Weight: 1}
	job := PhaseJob{PeriodSec: 1, AnchorSec: 0, BurstSec: 0.2}
	if shift := InterleaveShift(job, []PhaseJob{other}, 16); shift != 0 {
		t.Fatalf("expected no shift, got %g", shift)
	}
}

func TestInterleaveShiftNoNeighbors(t *testing.T) {
	job := PhaseJob{PeriodSec: 1, AnchorSec: 0, BurstSec: 0.5}
	if shift := InterleaveShift(job, nil, 16); shift != 0 {
		t.Fatalf("expected no shift with no neighbors, got %g", shift)
	}
	if shift := InterleaveShift(PhaseJob{}, []PhaseJob{job}, 16); shift != 0 {
		t.Fatalf("expected no shift for degenerate job, got %g", shift)
	}
}

func TestInterleaveShiftWeighted(t *testing.T) {
	// Bursts cover the whole circle between them; the heavier neighbor
	// must be the one avoided.
	heavy := PhaseJob{PeriodSec: 1, AnchorSec: 0, BurstSec: 0.5, Weight: 3}
	light := PhaseJob{PeriodSec: 1, AnchorSec: 0.5, BurstSec: 0.5, Weight: 1}
	job := PhaseJob{PeriodSec: 1, AnchorSec: 0, BurstSec: 0.25}
	shift := InterleaveShift(job, []PhaseJob{heavy, light}, 16)
	pos := job.fraction(job.AnchorSec + shift)
	if pos < 0.5 || pos+job.arcLen() > 1+1e-12 {
		t.Fatalf("expected burst inside the light job's half, got position %g", pos)
	}
}

func TestInterleaveShiftDeterministicTies(t *testing.T) {
	// All slots equally bad (incumbent covers the full circle): the
	// earliest slot — zero shift — must win.
	other := PhaseJob{PeriodSec: 1, AnchorSec: 0, BurstSec: 1, Weight: 1}
	job := PhaseJob{PeriodSec: 1, AnchorSec: 0, BurstSec: 0.25}
	if shift := InterleaveShift(job, []PhaseJob{other}, 16); shift != 0 {
		t.Fatalf("expected tie to break to zero shift, got %g", shift)
	}
}

func TestInterleaveShiftDifferentPeriods(t *testing.T) {
	// A neighbor with a different period is compared by phase fraction:
	// a job colliding in fraction space should still move.
	other := PhaseJob{PeriodSec: 2, AnchorSec: 0, BurstSec: 0.5, Weight: 1}
	job := PhaseJob{PeriodSec: 1, AnchorSec: 0, BurstSec: 0.25}
	shift := InterleaveShift(job, []PhaseJob{other}, 16)
	if shift <= 0 {
		t.Fatalf("expected a positive shift, got %g", shift)
	}
	if shift >= job.PeriodSec {
		t.Fatalf("shift %g exceeds the job's own period", shift)
	}
}
