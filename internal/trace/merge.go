package trace

import "sort"

// Canonical event ordering. A sharded run records each shard's events in
// its own Buffer; concatenating those buffers yields the same multiset
// of events as a one-shard run but in a different emission order. The
// canonical order below is a total order on the full event tuple, so
// sorting any per-shard partition of a stream reproduces one byte-stable
// sequence — the basis of the sharded-vs-sequential equivalence tests.

// LessCanonical reports whether a orders before b under the canonical
// (At, Kind, Job, Host, Worker, Value, Detail) lexicographic order.
func LessCanonical(a, b Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Job != b.Job {
		return a.Job < b.Job
	}
	if a.Host != b.Host {
		return a.Host < b.Host
	}
	if a.Worker != b.Worker {
		return a.Worker < b.Worker
	}
	if a.Value != b.Value {
		return a.Value < b.Value
	}
	return a.Detail < b.Detail
}

// SortCanonical sorts events in place into the canonical order.
func SortCanonical(events []Event) {
	sort.Slice(events, func(i, k int) bool { return LessCanonical(events[i], events[k]) })
}

// MergeCanonical concatenates the streams and returns them as one new
// slice in canonical order. Inputs are not modified.
func MergeCanonical(streams ...[]Event) []Event {
	n := 0
	for _, s := range streams {
		n += len(s)
	}
	out := make([]Event, 0, n)
	for _, s := range streams {
		out = append(out, s...)
	}
	SortCanonical(out)
	return out
}
