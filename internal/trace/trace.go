// Package trace provides structured event recording for simulation runs
// and CSV/JSON exporters for experiment records. Tracing is optional:
// model components emit events only when a Tracer is installed, so the
// hot path pays a single nil check when tracing is off.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Kind classifies events.
type Kind string

// Event kinds emitted by the simulation layers.
const (
	KindJobStart       Kind = "job_start"
	KindJobFinish      Kind = "job_finish"
	KindBarrierRelease Kind = "barrier_release"
	KindGradientRecv   Kind = "gradient_recv"
	KindModelRecv      Kind = "model_recv"
	KindFlowDone       Kind = "flow_done"
	KindTcConfig       Kind = "tc_config"
	KindPriorityRotate Kind = "priority_rotate"
	KindCustom         Kind = "custom"

	// Fault-injection and recovery kinds (see internal/faults).
	KindLinkDown      Kind = "link_down"
	KindLinkUp        Kind = "link_up"
	KindChunkDrop     Kind = "chunk_drop"
	KindWorkerCrash   Kind = "worker_crash"
	KindWorkerRestart Kind = "worker_restart"
	KindWorkerDegrade Kind = "worker_degrade"
	KindJobFail       Kind = "job_fail"
	KindTcError       Kind = "tc_error"
	KindTcFallback    Kind = "tc_fallback"
	KindTcRepair      Kind = "tc_repair"

	// Collective-communication kinds (see internal/collective).
	// ring_step fires when every rank of a job has received a given
	// all-reduce step of a bucket; bucket_done when a bucket is fully
	// reduced at all ranks; ring_stall when a crashed peer is detected
	// wedging the collective (the ring analogue of a barrier straggler).
	KindRingStep   Kind = "ring_step"
	KindBucketDone Kind = "bucket_done"
	KindRingStall  Kind = "ring_stall"

	// Policy-engine kinds (see internal/policy). policy_rank records an
	// adaptive policy's ranking decision for one host (Detail carries
	// the job:band assignment), so `tlsim -trace` shows why a band
	// changed; feedback_sample records one telemetry round for one job
	// (Value = cumulative attributed service bytes).
	KindPolicyRank     Kind = "policy_rank"
	KindFeedbackSample Kind = "feedback_sample"

	// Topology kind (see internal/metrics). link_util records one
	// utilization sample for one fabric core link (Host = link ID,
	// Value = busy fraction since the previous sample, Detail = link
	// name), emitted when a UtilizationSampler has a Tracer attached.
	KindLinkUtil Kind = "link_util"

	// Cluster-scheduler kinds (see internal/scheduler). sched_place
	// records one placement decision (Job = job id, Host = first placed
	// host, Value = the decision's expected-contention score, Detail =
	// policy and host list); sched_shift records one phase-interleaving
	// time shift (Value = the shift in seconds, Detail = the period and
	// burst the shift was derived from).
	KindSchedPlace Kind = "sched_place"
	KindSchedShift Kind = "sched_shift"
)

// allKinds is the registry of every event kind the simulation layers
// emit. Kinds and Registered read it; the trace tests assert that each
// declared constant is registered, so a newly added kind that is not
// listed here fails the build's tests rather than silently producing
// unregistered events.
var allKinds = []Kind{
	KindJobStart, KindJobFinish, KindBarrierRelease, KindGradientRecv,
	KindModelRecv, KindFlowDone, KindTcConfig, KindPriorityRotate,
	KindCustom,
	KindLinkDown, KindLinkUp, KindChunkDrop, KindWorkerCrash,
	KindWorkerRestart, KindWorkerDegrade, KindJobFail, KindTcError,
	KindTcFallback, KindTcRepair,
	KindRingStep, KindBucketDone, KindRingStall,
	KindPolicyRank, KindFeedbackSample,
	KindLinkUtil,
	KindSchedPlace, KindSchedShift,
}

// Kinds returns every registered event kind, in registration order.
func Kinds() []Kind {
	out := make([]Kind, len(allKinds))
	copy(out, allKinds)
	return out
}

// Registered reports whether k is a registered event kind.
func Registered(k Kind) bool {
	for _, r := range allKinds {
		if r == k {
			return true
		}
	}
	return false
}

// Event is one trace record.
type Event struct {
	At     float64 `json:"at"`
	Kind   Kind    `json:"kind"`
	Job    int     `json:"job"`
	Host   int     `json:"host"`
	Worker int     `json:"worker"`
	Value  float64 `json:"value"`
	Detail string  `json:"detail,omitempty"`
}

// Tracer receives events.
type Tracer interface {
	Emit(Event)
}

// Buffer is an in-memory tracer. The zero value is ready to use. When
// Cap > 0 it keeps only the most recent Cap events (ring semantics).
//
// Buffer is safe for concurrent use: sweep's parallel Engine may hand
// the same RunConfig.Tracer to trials running on different goroutines,
// so Emit and the readers serialize on an internal mutex. Events from
// concurrent trials interleave in lock-acquisition order — callers
// wanting one deterministic stream per trial should give each trial its
// own Buffer. Cap must be set before the first Emit and not changed.
type Buffer struct {
	Cap    int
	mu     sync.Mutex
	events []Event
	start  int
	total  uint64
}

// Emit records the event.
func (b *Buffer) Emit(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.total++
	if b.Cap > 0 && len(b.events) == b.Cap {
		b.events[b.start] = e
		b.start = (b.start + 1) % b.Cap
		return
	}
	b.events = append(b.events, e)
}

// Len returns the number of retained events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Total returns the number of events ever emitted.
func (b *Buffer) Total() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Events returns a copy of retained events in emission order.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, 0, len(b.events))
	out = append(out, b.events[b.start:]...)
	out = append(out, b.events[:b.start]...)
	return out
}

// Filter returns retained events matching the predicate, in order.
func (b *Buffer) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range b.Events() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Reset drops all retained events.
func (b *Buffer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = b.events[:0]
	b.start = 0
}

// WriteCSV writes retained events as CSV with a header row.
func (b *Buffer) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "at,kind,job,host,worker,value,detail"); err != nil {
		return err
	}
	for _, e := range b.Events() {
		detail := strings.ReplaceAll(e.Detail, ",", ";")
		if _, err := fmt.Fprintf(w, "%.9f,%s,%d,%d,%d,%g,%s\n",
			e.At, e.Kind, e.Job, e.Host, e.Worker, e.Value, detail); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes retained events as a JSON array.
func (b *Buffer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(b.Events())
}

// CountByKind tallies retained events per kind, sorted by kind name.
func (b *Buffer) CountByKind() []struct {
	Kind  Kind
	Count int
} {
	m := map[Kind]int{}
	for _, e := range b.Events() {
		m[e.Kind]++
	}
	kinds := make([]Kind, 0, len(m))
	for k := range m {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	out := make([]struct {
		Kind  Kind
		Count int
	}, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, struct {
			Kind  Kind
			Count int
		}{k, m[k]})
	}
	return out
}

// MultiTracer fans events out to several tracers. It adds no locking of
// its own: it is as goroutine-safe as its least safe child.
type MultiTracer []Tracer

// Emit forwards to every child tracer.
func (m MultiTracer) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}

// FuncTracer adapts a function to the Tracer interface.
type FuncTracer func(Event)

// Emit calls the wrapped function.
func (f FuncTracer) Emit(e Event) { f(e) }
