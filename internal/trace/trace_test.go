package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func ev(at float64, kind Kind, job int) Event {
	return Event{At: at, Kind: kind, Job: job, Host: -1, Worker: -1}
}

func TestBufferBasics(t *testing.T) {
	b := &Buffer{}
	for i := 0; i < 5; i++ {
		b.Emit(ev(float64(i), KindJobStart, i))
	}
	if b.Len() != 5 || b.Total() != 5 {
		t.Fatalf("len %d total %d", b.Len(), b.Total())
	}
	events := b.Events()
	for i, e := range events {
		if e.Job != i {
			t.Fatal("order broken")
		}
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("reset")
	}
}

func TestBufferRing(t *testing.T) {
	b := &Buffer{Cap: 3}
	for i := 0; i < 10; i++ {
		b.Emit(ev(float64(i), KindCustom, i))
	}
	if b.Len() != 3 || b.Total() != 10 {
		t.Fatalf("len %d total %d", b.Len(), b.Total())
	}
	events := b.Events()
	want := []int{7, 8, 9}
	for i, e := range events {
		if e.Job != want[i] {
			t.Fatalf("ring order %v", events)
		}
	}
}

func TestBufferFilter(t *testing.T) {
	b := &Buffer{}
	b.Emit(ev(1, KindJobStart, 0))
	b.Emit(ev(2, KindJobFinish, 0))
	b.Emit(ev(3, KindJobStart, 1))
	starts := b.Filter(func(e Event) bool { return e.Kind == KindJobStart })
	if len(starts) != 2 {
		t.Fatalf("filter %d", len(starts))
	}
}

func TestCountByKind(t *testing.T) {
	b := &Buffer{}
	b.Emit(ev(1, KindJobStart, 0))
	b.Emit(ev(2, KindJobStart, 1))
	b.Emit(ev(3, KindBarrierRelease, 0))
	counts := b.CountByKind()
	if len(counts) != 2 {
		t.Fatalf("%v", counts)
	}
	// Sorted by kind name: barrier_release < job_start.
	if counts[0].Kind != KindBarrierRelease || counts[0].Count != 1 {
		t.Fatalf("%v", counts)
	}
	if counts[1].Kind != KindJobStart || counts[1].Count != 2 {
		t.Fatalf("%v", counts)
	}
}

func TestWriteCSV(t *testing.T) {
	b := &Buffer{}
	b.Emit(Event{At: 1.5, Kind: KindTcConfig, Job: -1, Host: 3, Worker: -1, Value: 2, Detail: "a,b"})
	var out bytes.Buffer
	if err := b.WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.HasPrefix(s, "at,kind,job,host,worker,value,detail\n") {
		t.Fatalf("header missing: %q", s)
	}
	if !strings.Contains(s, "tc_config") || !strings.Contains(s, "a;b") {
		t.Fatalf("row wrong: %q", s)
	}
}

func TestWriteJSON(t *testing.T) {
	b := &Buffer{}
	b.Emit(ev(1, KindFlowDone, 7))
	var out bytes.Buffer
	if err := b.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	var events []Event
	if err := json.Unmarshal(out.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Job != 7 || events[0].Kind != KindFlowDone {
		t.Fatalf("%+v", events)
	}
}

func TestKindsRegistry(t *testing.T) {
	kinds := Kinds()
	if len(kinds) == 0 {
		t.Fatal("empty registry")
	}
	seen := map[Kind]bool{}
	for _, k := range kinds {
		if seen[k] {
			t.Fatalf("duplicate kind %q", k)
		}
		seen[k] = true
		if !Registered(k) {
			t.Fatalf("Kinds() lists %q but Registered says no", k)
		}
	}
	for _, k := range []Kind{KindRingStep, KindBucketDone, KindRingStall} {
		if !Registered(k) {
			t.Fatalf("collective kind %q not registered", k)
		}
	}
	for _, k := range []Kind{KindPolicyRank, KindFeedbackSample} {
		if !Registered(k) {
			t.Fatalf("policy kind %q not registered", k)
		}
	}
	if Registered(Kind("no_such_kind")) {
		t.Fatal("unknown kind reported registered")
	}
	// Mutating the returned slice must not corrupt the registry.
	kinds[0] = Kind("clobbered")
	if !Registered(Kinds()[0]) {
		t.Fatal("Kinds() exposes internal registry storage")
	}
}

func TestBufferRingJSONRoundTrip(t *testing.T) {
	b := &Buffer{Cap: 4}
	kinds := []Kind{KindRingStep, KindBucketDone, KindRingStall}
	for i := 0; i < 11; i++ {
		b.Emit(Event{
			At: float64(i) * 0.5, Kind: kinds[i%len(kinds)],
			Job: 1000 + i, Host: i % 3, Worker: i % 2,
			Value: float64(i), Detail: "bucket",
		})
	}
	if b.Len() != 4 || b.Total() != 11 {
		t.Fatalf("len %d total %d", b.Len(), b.Total())
	}
	var out bytes.Buffer
	if err := b.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	var decoded []Event
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	want := b.Events()
	if len(decoded) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(decoded), len(want))
	}
	for i := range want {
		if decoded[i] != want[i] {
			t.Fatalf("event %d: got %+v want %+v", i, decoded[i], want[i])
		}
		// Oldest retained event must be the 8th emitted (11 - 4 = 7).
		if decoded[i].Job != 1000+7+i {
			t.Fatalf("ring dropped wrong events: %+v", decoded)
		}
		if !Registered(decoded[i].Kind) {
			t.Fatalf("round-tripped unregistered kind %q", decoded[i].Kind)
		}
	}
}

func TestMultiAndFuncTracer(t *testing.T) {
	var got []Event
	fn := FuncTracer(func(e Event) { got = append(got, e) })
	buf := &Buffer{}
	m := MultiTracer{fn, buf}
	m.Emit(ev(1, KindModelRecv, 2))
	if len(got) != 1 || buf.Len() != 1 {
		t.Fatal("fan-out failed")
	}
}
